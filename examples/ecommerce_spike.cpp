// Scenario from the paper's introduction: an e-commerce site on FaaS that
// sees a 10x holiday traffic spike. The provisioning method must scale its
// decisions with the burst and keep latency low while the workload is hot,
// without pinning memory once traffic subsides.
//
// This example builds the scenario trace by hand — a storefront HTTP
// function, a checkout chain (cart -> payment -> receipt), and a nightly
// reconciliation timer — injects a 10x spike on the final day, and shows
// how SPES's categorization serves the spike warm while evicting promptly
// afterwards.

#include <cstdio>

#include "common/rng.h"
#include "core/spes_policy.h"
#include "metrics/report.h"
#include "sim/scenario.h"
#include "trace/trace.h"

namespace {

using namespace spes;

constexpr int kDays = 6;
constexpr int kHorizon = kDays * kMinutesPerDay;
constexpr int kSpikeStart = (kDays - 1) * kMinutesPerDay;  // final day

FunctionTrace MakeFunction(const char* name, TriggerType trigger) {
  FunctionTrace f;
  f.meta.owner = "shop-owner";
  f.meta.app = "shop-app";
  f.meta.name = name;
  f.meta.trigger = trigger;
  f.counts.assign(kHorizon, 0);
  return f;
}

}  // namespace

int main() {
  Rng rng(7);

  // Storefront: Poisson browsing traffic, 10x during the spike.
  FunctionTrace storefront = MakeFunction("storefront", TriggerType::kHttp);
  for (int t = 0; t < kHorizon; ++t) {
    const double base = t >= kSpikeStart ? 30.0 : 3.0;
    storefront.counts[static_cast<size_t>(t)] =
        static_cast<uint32_t>(rng.Poisson(base));
  }

  // Checkout chain: cart fires on ~5% of storefront minutes; payment and
  // receipt follow 1 and 2 minutes later.
  FunctionTrace cart = MakeFunction("cart", TriggerType::kHttp);
  FunctionTrace payment = MakeFunction("payment", TriggerType::kQueue);
  FunctionTrace receipt = MakeFunction("receipt", TriggerType::kQueue);
  for (int t = 0; t + 2 < kHorizon; ++t) {
    if (storefront.counts[static_cast<size_t>(t)] == 0) continue;
    const double p = t >= kSpikeStart ? 0.5 : 0.05;
    if (rng.Bernoulli(p)) {
      cart.counts[static_cast<size_t>(t)] += 1;
      payment.counts[static_cast<size_t>(t + 1)] += 1;
      receipt.counts[static_cast<size_t>(t + 2)] += 1;
    }
  }

  // Nightly reconciliation: a timer at 03:00 every day.
  FunctionTrace nightly = MakeFunction("nightly-recon", TriggerType::kTimer);
  for (int d = 0; d < kDays; ++d) {
    nightly.counts[static_cast<size_t>(d * kMinutesPerDay + 180)] = 1;
  }

  Trace trace(kHorizon);
  trace.Add(std::move(storefront)).CheckOK();
  trace.Add(std::move(cart)).CheckOK();
  trace.Add(std::move(payment)).CheckOK();
  trace.Add(std::move(receipt)).CheckOK();
  trace.Add(std::move(nightly)).CheckOK();

  // The hand-built trace is the workload; the policies are specs.
  ScenarioSpec scenario;
  scenario.options.train_minutes = 4 * kMinutesPerDay;  // spike NOT trained

  scenario.policy = {"spes", {}};
  const ScenarioOutcome spes_run = RunScenario(trace, scenario).ValueOrDie();
  const auto& spes = dynamic_cast<const SpesPolicy&>(*spes_run.policy);

  std::printf("e-commerce app under a 10x final-day spike\n");
  std::printf("==========================================\n\n");
  std::printf("%-15s %-14s %12s %12s %8s\n", "function", "SPES type",
              "invocations", "cold starts", "CSR");
  for (size_t f = 0; f < trace.num_functions(); ++f) {
    const FunctionAccount& acc = spes_run.outcome.accounts[f];
    std::printf("%-15s %-14s %12llu %12llu %8.4f\n",
                trace.function(f).meta.name.c_str(),
                FunctionTypeToString(spes.TypeOf(f)),
                static_cast<unsigned long long>(acc.invocations),
                static_cast<unsigned long long>(acc.cold_starts),
                acc.ColdStartRate());
  }

  scenario.policy = {"fixed_keepalive", {{"minutes", 10}}};
  const ScenarioOutcome fixed_run = RunScenario(trace, scenario).ValueOrDie();

  std::printf("\naggregate (simulated window, incl. spike):\n");
  BuildComparisonTable(
      {spes_run.outcome.metrics, fixed_run.outcome.metrics}, "SPES")
      .Print();
  std::printf(
      "\nSPES rides the spike warm (dense/correlated categorization) and"
      "\npre-warms the nightly timer right before 03:00, while the fixed"
      "\npolicy pays a cold start per checkout lull and keeps idle"
      "\ninstances loaded for 10 minutes each.\n");
  return 0;
}
