// Suite smoke: run a whole policy suite — a vector of ScenarioSpecs —
// over a small generated fleet through the parallel SuiteRunner, with a
// progress callback, and print the cross-policy comparison table.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/suite_smoke

#include <cstdio>
#include <vector>

#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"

int main() {
  using namespace spes;

  // 1. A small fleet: 600 functions over 5 days.
  GeneratorConfig generator;
  generator.num_functions = 600;
  generator.days = 5;
  generator.seed = 7;
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(generator)).ValueOrDie();
  std::printf("fleet: %zu functions, %d minutes\n\n",
              session.trace().num_functions(), session.trace().num_minutes());

  // 2. Train on the first 3 days, simulate the last 2; one spec per
  //    policy — the whole suite is data.
  SimOptions options;
  options.train_minutes = 3 * kMinutesPerDay;
  std::vector<ScenarioSpec> specs;
  for (const char* policy :
       {"spes", "defuse", "hybrid_histogram{granularity=function}",
        "fixed_keepalive{minutes=10}", "oracle"}) {
    ScenarioSpec spec;
    spec.policy = ParsePolicySpec(policy).ValueOrDie();
    spec.options = options;
    specs.push_back(spec);
  }

  // 3. Fan out across the hardware; report each job as it lands.
  SuiteRunnerOptions runner_options;
  runner_options.progress = [](size_t finished, size_t total,
                               const JobResult& result) {
    std::printf("[%zu/%zu] %-16s %s\n", finished, total, result.label.c_str(),
                result.status.ok() ? "done" : result.status.ToString().c_str());
  };
  SuiteRunner runner(runner_options);
  std::printf("running %zu policies on %d threads\n", specs.size(),
              runner.EffectiveThreads(specs.size()));
  const std::vector<JobResult> results = runner.Run(session.trace(), specs);

  // 4. Comparison table, normalized against SPES.
  std::printf("\n");
  BuildComparisonTable(CollectMetrics(results), "SPES").Print();
  return 0;
}
