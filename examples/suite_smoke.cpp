// Suite smoke: run the whole policy suite over a small generated fleet
// through the parallel SuiteRunner, with a progress callback, and print
// the cross-policy comparison table.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/suite_smoke

#include <cstdio>
#include <memory>
#include <vector>

#include "core/spes_policy.h"
#include "metrics/report.h"
#include "policies/defuse.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"
#include "policies/oracle.h"
#include "runner/suite_runner.h"
#include "trace/generator.h"

int main() {
  using namespace spes;

  // 1. A small fleet: 600 functions over 5 days.
  GeneratorConfig generator;
  generator.num_functions = 600;
  generator.days = 5;
  generator.seed = 7;
  const GeneratedTrace fleet = GenerateTrace(generator).ValueOrDie();
  std::printf("fleet: %zu functions, %d minutes\n\n",
              fleet.trace.num_functions(), fleet.trace.num_minutes());

  // 2. Train on the first 3 days, simulate the last 2.
  SimOptions options;
  options.train_minutes = 3 * kMinutesPerDay;

  // 3. One job per policy; each job owns its own fresh policy instance.
  std::vector<SuiteJob> jobs;
  jobs.push_back({"", [] { return std::make_unique<SpesPolicy>(); }, options});
  jobs.push_back({"", [] { return std::make_unique<DefusePolicy>(); },
                  options});
  jobs.push_back({"", [] {
                    return std::make_unique<HybridHistogramPolicy>(
                        HybridGranularity::kFunction);
                  },
                  options});
  jobs.push_back({"", [] { return std::make_unique<FixedKeepAlivePolicy>(10); },
                  options});
  jobs.push_back({"", [] { return std::make_unique<OraclePolicy>(); },
                  options});

  // 4. Fan out across the hardware; report each job as it lands.
  SuiteRunnerOptions runner_options;
  runner_options.progress = [](size_t finished, size_t total,
                               const JobResult& result) {
    std::printf("[%zu/%zu] %-16s %s\n", finished, total, result.label.c_str(),
                result.status.ok() ? "done" : result.status.ToString().c_str());
  };
  SuiteRunner runner(runner_options);
  std::printf("running %zu policies on %d threads\n", jobs.size(),
              runner.EffectiveThreads(jobs.size()));
  const std::vector<JobResult> results =
      runner.Run(fleet.trace, std::move(jobs));

  // 5. Comparison table, normalized against SPES.
  std::printf("\n");
  BuildComparisonTable(CollectMetrics(results), "SPES").Print();
  return 0;
}
