// Cluster tour: a ScenarioSpec with a `cluster` block end to end.
//
// A small generated fleet is sharded across a 4-node cluster with the
// locality router and a per-node memory cap, then survives a lifecycle
// timeline — one node drains, one fails, a replacement joins. The same
// workload also runs as a plain single-fleet scenario and as a 1-node
// cluster to show the cluster layer collapsing to the paper's setting.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/cluster_tour

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "common/table.h"
#include "metrics/report.h"
#include "sim/scenario.h"
#include "trace/generator.h"

using namespace spes;

int main() {
  GeneratorConfig generator;
  generator.num_functions = 300;
  generator.days = 4;
  generator.seed = 7;

  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;

  // One realized workload, three topologies.
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(generator)).ValueOrDie();

  ScenarioSpec plain;
  plain.label = "single fleet (no cluster)";
  plain.policy = {"spes", {}};
  plain.options = options;

  ScenarioSpec one_node = plain;
  one_node.label = "1-node hash cluster";
  one_node.cluster = ClusterSpec{};  // defaults: 1 node, uncapped, hash

  ScenarioSpec four_node = plain;
  four_node.label = "4-node locality cluster + lifecycle";
  four_node.cluster = ClusterSpec{};
  four_node.cluster->nodes = 4;
  four_node.cluster->node_capacity = 120;
  four_node.cluster->router =
      ParseRouterSpec("locality{pressure=0.9}").ValueOrDie();
  // Minute anchors inside the simulated window (which starts at 2880):
  // drain node 0 after four hours, fail node 1 four hours later, and
  // bring a fresh replacement up at the same minute.
  four_node.cluster->events =
      ParseNodeEventTimeline(
          "drain{at=3120,node=0} | fail{at=3360,node=1} | "
          "add{at=3360,capacity=120}")
          .ValueOrDie();

  std::printf("workload: %zu functions, %d minutes (train %d)\n\n",
              session.trace().num_functions(), session.trace().num_minutes(),
              options.train_minutes);

  Table fleet_table({"scenario", "cold starts", "Q3-CSR", "avg mem",
                     "peak mem", "WMT", "reroutes"});
  for (const ScenarioSpec* spec : {&plain, &one_node, &four_node}) {
    const ScenarioOutcome run = session.Run(*spec).ValueOrDie();
    const FleetMetrics& m = run.outcome.metrics;
    fleet_table.AddRow(
        {spec->label, std::to_string(m.total_cold_starts),
         FormatDouble(m.q3_csr, 4), FormatDouble(m.average_memory, 1),
         std::to_string(m.max_memory),
         std::to_string(m.wasted_memory_minutes),
         run.cluster ? std::to_string(run.cluster->reroutes) : "-"});
    if (spec == &four_node) {
      std::printf("fleet view (single node == plain engine, bit for bit):\n\n");
      fleet_table.Print();

      const ClusterImbalance imbalance =
          ComputeClusterImbalance(*run.cluster);
      std::printf("\nper-node breakdown of '%s'\n(invocation CV %.3f, "
                  "peak/mean %.2f):\n\n",
                  spec->label.c_str(), imbalance.invocation_cv,
                  imbalance.invocation_peak_ratio);
      BuildClusterNodeTable(*run.cluster).Print();
    }
  }

  std::printf(
      "\nwhat happened: the drained node winds down warm instances without\n"
      "a cold-start storm; the failed node's functions re-route and pay\n"
      "cold starts on their new homes; the added node fills up as the\n"
      "locality router spills pressured functions onto it.\n");
  return 0;
}
