// Working with the Azure Functions 2019 trace format.
//
// This example writes a synthetic fleet in the exact public-dataset CSV
// schema (one invocations_per_function_md.anon.dNN.csv per day), reads it
// back, and runs SPES on the re-loaded trace — the same path you would use
// to run this library on the real Microsoft Azure dataset: drop the
// dataset's CSVs into a directory and point ReadAzureTraceDir at it.

#include <cstdio>
#include <filesystem>

#include "sim/scenario.h"
#include "trace/azure_csv.h"
#include "trace/generator.h"

int main() {
  using namespace spes;

  GeneratorConfig config;
  config.num_functions = 300;
  config.days = 4;
  config.seed = 99;
  const GeneratedTrace fleet = GenerateTrace(config).ValueOrDie();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "spes_example_trace")
          .string();
  WriteAzureTraceDir(fleet.trace, dir).CheckOK();
  std::printf("wrote %d day files to %s\n", config.days, dir.c_str());
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::printf("  %s (%lld bytes)\n",
                entry.path().filename().string().c_str(),
                static_cast<long long>(entry.file_size()));
  }

  // Read it back through a fully declarative scenario: the CSV directory
  // is the trace source — exactly how the real dataset would be loaded.
  ScenarioSpec scenario;
  scenario.trace = TraceSpec::FromAzureCsvDir(dir);
  scenario.policy = {"spes", {}};
  scenario.options.train_minutes = (config.days - 1) * kMinutesPerDay;

  const ScenarioSession session =
      ScenarioSession::Open(scenario.trace).ValueOrDie();
  std::printf("\nreloaded: %zu functions, %d minutes, %zu apps\n",
              session.trace().num_functions(), session.trace().num_minutes(),
              session.trace().CountApps());

  const ScenarioOutcome run = session.Run(scenario).ValueOrDie();
  const FleetMetrics& metrics = run.outcome.metrics;
  std::printf(
      "\nSPES on the reloaded trace: Q3-CSR %.4f, always-cold %.2f%%, "
      "avg memory %.1f instances\n",
      metrics.q3_csr, metrics.always_cold_fraction * 100.0,
      metrics.average_memory);

  std::filesystem::remove_all(dir);
  std::printf("\n(to run on the real dataset: download the Azure Functions"
              "\n 2019 trace and call ReadAzureTraceDir on its directory)\n");
  return 0;
}
