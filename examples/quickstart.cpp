// Quickstart: describe a scenario as data — a generated fleet, a train
// window and a policy spec — run it through the Scenario API, and print
// the headline metrics next to the industry-default fixed keep-alive
// policy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart

#include <cstdio>

#include "core/spes_policy.h"
#include "metrics/report.h"
#include "sim/scenario.h"
#include "trace/generator.h"

int main() {
  using namespace spes;

  // 1. A fleet of 800 serverless functions over 6 days, calibrated to the
  //    Azure Functions population statistics (trigger mix, heavy-tailed
  //    invocation totals, bursts, workflow chains, concept shifts). The
  //    session realizes the trace once; every scenario below reuses it.
  GeneratorConfig generator;
  generator.num_functions = 800;
  generator.days = 6;
  generator.seed = 42;
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(generator)).ValueOrDie();
  std::printf("fleet: %zu functions, %zu apps, %zu owners, %d minutes\n\n",
              session.trace().num_functions(), session.trace().CountApps(),
              session.trace().CountOwners(), session.trace().num_minutes());

  // 2. Train on the first 4 days, simulate the last 2.
  ScenarioSpec scenario;
  scenario.options.train_minutes = 4 * kMinutesPerDay;

  // 3. SPES: categorize every function and provision by prediction.
  scenario.policy = {"spes", {}};
  const ScenarioOutcome spes_run = session.Run(scenario).ValueOrDie();

  std::printf("SPES function categorization:\n");
  const auto& spes = dynamic_cast<const SpesPolicy&>(*spes_run.policy);
  const auto types = spes.CountByType();
  for (int k = 0; k < kNumFunctionTypes; ++k) {
    if (types[static_cast<size_t>(k)] == 0) continue;
    std::printf("  %-15s %5lld\n",
                FunctionTypeToString(static_cast<FunctionType>(k)),
                static_cast<long long>(types[static_cast<size_t>(k)]));
  }
  std::printf("\n");

  // 4. Baseline for contrast, by spec string: keep instances alive 10
  //    minutes after use.
  scenario.policy = ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  const ScenarioOutcome fixed_run = session.Run(scenario).ValueOrDie();

  const FleetMetrics& spes_metrics = spes_run.outcome.metrics;
  const FleetMetrics& fixed_metrics = fixed_run.outcome.metrics;
  BuildComparisonTable({spes_metrics, fixed_metrics}, "SPES").Print();

  std::printf(
      "\nSPES cut the 75th-percentile cold-start rate from %.4f to %.4f\n"
      "while keeping average memory at %.1f instances (fixed: %.1f).\n",
      fixed_metrics.q3_csr, spes_metrics.q3_csr,
      spes_metrics.average_memory, fixed_metrics.average_memory);
  return 0;
}
