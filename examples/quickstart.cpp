// Quickstart: generate a small synthetic fleet, train SPES on the first
// days, replay the rest, and print the headline metrics next to the
// industry-default fixed keep-alive policy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/spes_policy.h"
#include "metrics/report.h"
#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "trace/generator.h"

int main() {
  using namespace spes;

  // 1. A fleet of 800 serverless functions over 6 days, calibrated to the
  //    Azure Functions population statistics (trigger mix, heavy-tailed
  //    invocation totals, bursts, workflow chains, concept shifts).
  GeneratorConfig generator;
  generator.num_functions = 800;
  generator.days = 6;
  generator.seed = 42;
  const GeneratedTrace fleet = GenerateTrace(generator).ValueOrDie();
  std::printf("fleet: %zu functions, %zu apps, %zu owners, %d minutes\n\n",
              fleet.trace.num_functions(), fleet.trace.CountApps(),
              fleet.trace.CountOwners(), fleet.trace.num_minutes());

  // 2. Train on the first 4 days, simulate the last 2.
  SimOptions options;
  options.train_minutes = 4 * kMinutesPerDay;

  // 3. SPES: categorize every function and provision by prediction.
  SpesPolicy spes;
  const SimulationOutcome spes_outcome =
      Simulate(fleet.trace, &spes, options).ValueOrDie();

  std::printf("SPES function categorization:\n");
  const auto types = spes.CountByType();
  for (int k = 0; k < kNumFunctionTypes; ++k) {
    if (types[static_cast<size_t>(k)] == 0) continue;
    std::printf("  %-15s %5lld\n",
                FunctionTypeToString(static_cast<FunctionType>(k)),
                static_cast<long long>(types[static_cast<size_t>(k)]));
  }
  std::printf("\n");

  // 4. Baseline for contrast: keep instances alive 10 minutes after use.
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome fixed_outcome =
      Simulate(fleet.trace, &fixed, options).ValueOrDie();

  BuildComparisonTable({spes_outcome.metrics, fixed_outcome.metrics}, "SPES")
      .Print();

  std::printf(
      "\nSPES cut the 75th-percentile cold-start rate from %.4f to %.4f\n"
      "while keeping average memory at %.1f instances (fixed: %.1f).\n",
      fixed_outcome.metrics.q3_csr, spes_outcome.metrics.q3_csr,
      spes_outcome.metrics.average_memory,
      fixed_outcome.metrics.average_memory);
  return 0;
}
