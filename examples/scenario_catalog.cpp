// Scenario catalog: registry introspection. Lists every registered policy,
// every registered trace transform, every registered cluster router and
// every registered latency model (plus the `queue{...}` admission schema)
// with its typed parameter schema and defaults — the complete vocabulary
// available to ScenarioSpecs and spec strings — then runs one
// default-parameter scenario per policy on a small generated fleet, and
// finally one *transformed* scenario end-to-end (the same fleet under 2x
// load with an injected burst).
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/scenario_catalog

#include <cstdio>
#include <vector>

#include "cluster/router.h"
#include "common/table.h"
#include "core/policy_registry.h"
#include "latency/latency.h"
#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"
#include "trace/transform.h"

namespace {

using namespace spes;

void PrintSchema(const std::string& name, const std::string& summary,
                 const std::vector<ParamSpec>& params) {
  std::printf("%s — %s\n", name.c_str(), summary.c_str());
  if (params.empty()) {
    std::printf("  (no parameters)\n\n");
    return;
  }
  Table table({"parameter", "type", "default", "description"});
  for (const ParamSpec& param : params) {
    table.AddRow({param.name, ParamTypeToString(param.type),
                  FormatParamValue(param.default_value), param.description});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  const PolicyRegistry& policies = PolicyRegistry::Global();
  const TransformRegistry& transforms = TransformRegistry::Global();
  const RouterRegistry& routers = RouterRegistry::Global();

  // 1. The catalog: every canonical name with its parameter schema.
  std::printf("registered policies\n");
  std::printf("===================\n\n");
  for (const std::string& name : policies.Names()) {
    const PolicyRegistry::Entry* entry = policies.Find(name);
    PrintSchema(name, entry->summary, entry->params);
  }

  std::printf("registered trace transforms\n");
  std::printf("===========================\n\n");
  for (const std::string& name : transforms.Names()) {
    const TransformRegistry::Entry* entry = transforms.Find(name);
    PrintSchema(name, entry->summary, entry->params);
  }

  std::printf("registered cluster routers\n");
  std::printf("==========================\n\n");
  for (const std::string& name : routers.Names()) {
    const RouterRegistry::Entry* entry = routers.Find(name);
    PrintSchema(name, entry->summary, entry->params);
  }

  std::printf("registered latency models\n");
  std::printf("=========================\n\n");
  const LatencyModelRegistry& latency_models = LatencyModelRegistry::Global();
  for (const std::string& name : latency_models.Names()) {
    const LatencyModelRegistry::Entry* entry = latency_models.Find(name);
    PrintSchema(name, entry->summary, entry->params);
  }
  // The admission side of a latency block: `<model> @ queue{...}`.
  PrintSchema("queue",
              "per-lane/per-node admission control for latency blocks",
              LatencyQueueParamSchema());

  // 2. One default-parameter scenario per registered policy on a small
  //    fleet (300 functions, 4 days; train 2, simulate 2).
  GeneratorConfig generator;
  generator.num_functions = 300;
  generator.days = 4;
  generator.seed = 7;
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(generator)).ValueOrDie();

  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  std::vector<ScenarioSpec> specs;
  for (const std::string& name : policies.Names()) {
    ScenarioSpec spec;
    spec.policy.name = name;
    spec.options = options;
    specs.push_back(spec);
  }

  std::printf("running every policy with default parameters on %zu "
              "functions, %d minutes\n\n",
              session.trace().num_functions(),
              session.trace().num_minutes());
  const std::vector<JobResult> results =
      SuiteRunner().Run(session.trace(), specs);
  for (const JobResult& result : results) result.status.CheckOK();
  BuildComparisonTable(CollectMetrics(results), "SPES").Print();

  // 3. The same fleet through a transform chain — a stressed scenario as
  //    pure data. The session caches the transformed variant, so running
  //    it again would cost only the simulation.
  const char* kChain =
      "load_scale{factor=2.0} | "
      "inject_burst{at=3000,width=20,amplitude=40,fraction=0.25,seed=5}";
  std::printf("\ntransformed scenario: spes on [%s]\n\n", kChain);
  ScenarioSpec stressed;
  stressed.label = "spes / stressed";
  stressed.policy.name = "spes";
  stressed.options = options;
  stressed.trace.transforms = ParseTransformChain(kChain).ValueOrDie();
  ScenarioSpec baseline;
  baseline.label = "spes / base";
  baseline.policy.name = "spes";
  baseline.options = options;
  const ScenarioOutcome base = session.Run(baseline).ValueOrDie();
  const ScenarioOutcome burst = session.Run(stressed).ValueOrDie();
  Table stress({"scenario", "invocations", "cold starts", "Q3-CSR",
                "avg memory"});
  for (const auto* run : {&base, &burst}) {
    const FleetMetrics& m = run->outcome.metrics;
    stress.AddRow({run == &base ? "spes / base" : "spes / stressed",
                   std::to_string(m.total_invocations),
                   std::to_string(m.total_cold_starts),
                   FormatDouble(m.q3_csr, 4),
                   FormatDouble(m.average_memory, 1)});
  }
  stress.Print();
  return 0;
}
