// Scenario catalog: registry introspection. Lists every registered policy
// with its typed parameter schema and defaults — the vocabulary available
// to ScenarioSpecs and spec strings — then runs one default-parameter
// scenario per policy on a small generated fleet.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/scenario_catalog

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/policy_registry.h"
#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"

int main() {
  using namespace spes;

  const PolicyRegistry& registry = PolicyRegistry::Global();

  // 1. The catalog: every canonical name with its parameter schema.
  std::printf("registered policies\n");
  std::printf("===================\n\n");
  for (const std::string& name : registry.Names()) {
    const PolicyRegistry::Entry* entry = registry.Find(name);
    std::printf("%s — %s\n", name.c_str(), entry->summary.c_str());
    if (entry->params.empty()) {
      std::printf("  (no parameters)\n\n");
      continue;
    }
    Table table({"parameter", "type", "default", "description"});
    for (const ParamSpec& param : entry->params) {
      table.AddRow({param.name, ParamTypeToString(param.type),
                    FormatParamValue(param.default_value),
                    param.description});
    }
    table.Print();
    std::printf("\n");
  }

  // 2. One default-parameter scenario per registered policy on a small
  //    fleet (300 functions, 4 days; train 2, simulate 2).
  GeneratorConfig generator;
  generator.num_functions = 300;
  generator.days = 4;
  generator.seed = 7;
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(generator)).ValueOrDie();

  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  std::vector<ScenarioSpec> specs;
  for (const std::string& name : registry.Names()) {
    ScenarioSpec spec;
    spec.policy.name = name;
    spec.options = options;
    specs.push_back(spec);
  }

  std::printf("running every policy with default parameters on %zu "
              "functions, %d minutes\n\n",
              session.trace().num_functions(),
              session.trace().num_minutes());
  const std::vector<JobResult> results =
      SuiteRunner().Run(session.trace(), specs);
  for (const JobResult& result : results) result.status.CheckOK();
  BuildComparisonTable(CollectMetrics(results), "SPES").Print();
  return 0;
}
