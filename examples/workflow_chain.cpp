// Multi-stage processing workflow (paper §I / §III-B2): functions within
// an application are invoked in turn, so an upstream function's arrival
// predicts its successors. This example builds a 4-stage pipeline whose
// tail stages fire only for a fraction of events — too rarely for interval
// rules, but perfectly predictable through SPES's T-lagged co-occurrence.

#include <cstdio>

#include "common/rng.h"
#include "core/correlation.h"
#include "core/spes_policy.h"
#include "sim/scenario.h"
#include "trace/trace.h"

namespace {

using namespace spes;

constexpr int kDays = 8;
constexpr int kHorizon = kDays * kMinutesPerDay;

FunctionTrace MakeFunction(const char* name, TriggerType trigger) {
  FunctionTrace f;
  f.meta.owner = "etl-owner";
  f.meta.app = "etl-pipeline";
  f.meta.name = name;
  f.meta.trigger = trigger;
  f.counts.assign(kHorizon, 0);
  return f;
}

}  // namespace

int main() {
  Rng rng(11);

  // Stage 1 — ingest: a new data batch lands every ~45 minutes (queue).
  FunctionTrace ingest = MakeFunction("ingest", TriggerType::kQueue);
  // Stage 2 — transform: runs 2 minutes after every ingest.
  FunctionTrace transform = MakeFunction("transform", TriggerType::kQueue);
  // Stage 3 — enrich: runs 4 minutes after ingest for ~40% of batches.
  FunctionTrace enrich = MakeFunction("enrich", TriggerType::kQueue);
  // Stage 4 — alert: runs 5 minutes after ingest for ~10% of batches
  // (anomalous ones), at unpredictable batch positions.
  FunctionTrace alert = MakeFunction("alert", TriggerType::kQueue);

  int t = 5;
  while (t + 5 < kHorizon) {
    ingest.counts[static_cast<size_t>(t)] += 1;
    transform.counts[static_cast<size_t>(t + 2)] += 1;
    if (rng.Bernoulli(0.4)) enrich.counts[static_cast<size_t>(t + 4)] += 1;
    if (rng.Bernoulli(0.1)) alert.counts[static_cast<size_t>(t + 5)] += 1;
    t += 40 + static_cast<int>(rng.UniformInt(0, 10));
  }

  Trace trace(kHorizon);
  trace.Add(std::move(ingest)).CheckOK();
  trace.Add(std::move(transform)).CheckOK();
  trace.Add(std::move(enrich)).CheckOK();
  trace.Add(std::move(alert)).CheckOK();

  // Show the raw signal SPES mines: the T-lagged co-occurrence of each
  // downstream stage with the ingest function.
  std::printf("T-lagged co-occurrence with 'ingest' (training window):\n");
  for (size_t f = 1; f < trace.num_functions(); ++f) {
    const BestLag best =
        BestLaggedCor(trace.function(f).counts, trace.function(0).counts,
                      /*max_lag=*/10);
    std::printf("  %-10s best lag %2d, T-COR %.3f\n",
                trace.function(f).meta.name.c_str(), best.lag, best.cor);
  }

  ScenarioSpec scenario;
  scenario.options.train_minutes = 6 * kMinutesPerDay;

  scenario.policy = {"spes", {}};
  const ScenarioOutcome spes_run = RunScenario(trace, scenario).ValueOrDie();
  const auto& spes = dynamic_cast<const SpesPolicy&>(*spes_run.policy);
  scenario.policy = {"defuse", {}};
  const ScenarioOutcome defuse_run = RunScenario(trace, scenario).ValueOrDie();
  const SimulationOutcome& spes_outcome = spes_run.outcome;
  const SimulationOutcome& defuse_outcome = defuse_run.outcome;

  std::printf("\nper-stage results over the simulated window:\n");
  std::printf("%-10s %-14s | %18s | %18s\n", "stage", "SPES type",
              "SPES cold/invoked", "Defuse cold/invoked");
  for (size_t f = 0; f < trace.num_functions(); ++f) {
    const FunctionAccount& s = spes_outcome.accounts[f];
    const FunctionAccount& d = defuse_outcome.accounts[f];
    std::printf("%-10s %-14s | %8llu / %7llu | %8llu / %7llu\n",
                trace.function(f).meta.name.c_str(),
                FunctionTypeToString(spes.TypeOf(f)),
                static_cast<unsigned long long>(s.cold_starts),
                static_cast<unsigned long long>(s.invocations),
                static_cast<unsigned long long>(d.cold_starts),
                static_cast<unsigned long long>(d.invocations));
  }
  std::printf(
      "\nwasted memory (instance-minutes): SPES %llu vs Defuse %llu\n",
      static_cast<unsigned long long>(
          spes_outcome.metrics.wasted_memory_minutes),
      static_cast<unsigned long long>(
          defuse_outcome.metrics.wasted_memory_minutes));
  std::printf(
      "\nthe rare tail stages ride the ingest signal: SPES links them via"
      "\nT-COR and pre-warms only when a batch is actually in flight.\n");
  return 0;
}
