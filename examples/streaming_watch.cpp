// Streaming engine tour: drive a simulation minute-by-minute instead of
// run-to-completion — watch it live through observers, stop it early on a
// predicate, checkpoint it mid-window, resume the checkpoint in a fresh
// stream, and race several policies in lockstep over ONE trace walk.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/streaming_watch

#include <cstdio>
#include <string>

#include "metrics/report.h"
#include "sim/observers.h"
#include "sim/scenario.h"
#include "sim/stream.h"
#include "trace/generator.h"

int main() {
  using namespace spes;

  // A small fleet: 2 days of training, 1 day simulated.
  GeneratorConfig generator;
  generator.num_functions = 400;
  generator.days = 3;
  generator.seed = 7;
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(generator)).ValueOrDie();
  const Trace& trace = session.trace();

  ScenarioSpec scenario;
  scenario.options.train_minutes = 2 * kMinutesPerDay;
  scenario.policy = {"spes", {}};

  // ---------------------------------------------------------------------
  // 1. Observe a run in flight: progress lines every 6 simulated hours,
  //    plus an hourly time-series capture rendered as a table afterwards.
  // ---------------------------------------------------------------------
  std::printf("== 1. observed run ==\n");
  ProgressObserver progress(6 * 60);
  TimeSeriesObserver hourly(60);
  scenario.observers = {&progress, &hourly};
  const ScenarioOutcome watched = session.Run(scenario).ValueOrDie();
  std::printf("\nhourly timeline (first 6 samples):\n");
  Table timeline = BuildTimelineTable(
      {"SPES"}, {{hourly.series()[0].begin(), hourly.series()[0].begin() + 6}});
  timeline.Print();
  std::printf("full run: %llu cold starts\n\n",
              static_cast<unsigned long long>(
                  watched.outcome.metrics.total_cold_starts));
  scenario.observers.clear();

  // ---------------------------------------------------------------------
  // 2. Early stop: halt as soon as the fleet pays 300 cold starts, then
  //    read the partial-window metrics.
  // ---------------------------------------------------------------------
  std::printf("== 2. early stop ==\n");
  CallbackObserver stop_at_300_cold([](const MinuteView& view) {
    return view.totals.cold_starts < 300;  // false => halt the stream
  });
  scenario.observers = {&stop_at_300_cold};
  ScenarioStream open = OpenScenario(trace, scenario).ValueOrDie();
  // An observer stop surfaces as Cancelled — the partial outcome is
  // still available through Finish().
  const Status run = open.stream.RunToEnd();
  if (!run.ok() && run.code() != StatusCode::kCancelled) run.CheckOK();
  std::printf("stopped early: %s, cursor at minute %d of [%d, %d)\n",
              open.stream.stopped_early() ? "yes" : "no",
              open.stream.cursor(), open.stream.start_minute(),
              open.stream.end_minute());
  const SimulationOutcome partial = open.stream.Finish().ValueOrDie();
  std::printf("partial window: %llu cold starts over %zu minutes\n\n",
              static_cast<unsigned long long>(
                  partial.metrics.total_cold_starts),
              partial.memory_series.size());
  scenario.observers.clear();

  // ---------------------------------------------------------------------
  // 3. Checkpoint mid-window, serialize to bytes, resume in a new stream.
  // ---------------------------------------------------------------------
  std::printf("== 3. checkpoint / resume ==\n");
  ScenarioStream first = OpenScenario(trace, scenario).ValueOrDie();
  const int midpoint = first.stream.start_minute() +
                       (first.stream.end_minute() -
                        first.stream.start_minute()) / 2;
  first.stream.RunUntil(midpoint).CheckOK();
  const std::string bytes =
      SerializeCheckpoint(first.stream.Checkpoint().ValueOrDie());
  std::printf("checkpointed at minute %d (%zu bytes)\n",
              first.stream.cursor(), bytes.size());

  ScenarioStream resumed = OpenScenario(trace, scenario).ValueOrDie();
  resumed.stream.Restore(ParseCheckpoint(bytes).ValueOrDie()).CheckOK();
  const SimulationOutcome resumed_outcome =
      resumed.stream.Finish().ValueOrDie();
  const SimulationOutcome full_outcome =
      first.stream.Finish().ValueOrDie();  // the original, run to the end
  const bool resume_matches =
      resumed_outcome.metrics.total_cold_starts ==
          full_outcome.metrics.total_cold_starts &&
      resumed_outcome.memory_series == full_outcome.memory_series;
  std::printf("resumed run matches the uninterrupted one: %s\n\n",
              resume_matches ? "yes" : "NO — BUG");
  if (!resume_matches) {
    std::fprintf(stderr, "BUG: checkpoint resume diverged from the "
                         "uninterrupted run\n");
    return 1;  // let CI smoke runs fail on stream-vs-batch drift
  }

  // ---------------------------------------------------------------------
  // 4. Lockstep: race SPES against two baselines over ONE trace walk.
  // ---------------------------------------------------------------------
  std::printf("== 4. lockstep multi-policy ==\n");
  std::vector<ScenarioSpec> lanes(3, scenario);
  lanes[1].policy = ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  lanes[2].policy = {"oracle", {}};
  const std::vector<ScenarioOutcome> raced =
      session.RunLockstep(lanes).ValueOrDie();
  Table race({"policy", "Q3-CSR", "avg memory", "cold starts"});
  for (const ScenarioOutcome& lane : raced) {
    const FleetMetrics& m = lane.outcome.metrics;
    race.AddRow({m.policy_name, FormatDouble(m.q3_csr, 4),
                 FormatDouble(m.average_memory, 1),
                 std::to_string(m.total_cold_starts)});
  }
  race.Print();
  return 0;
}
