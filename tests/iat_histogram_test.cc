#include "policies/iat_histogram.h"

#include <gtest/gtest.h>

namespace spes {
namespace {

TEST(IatHistogramTest, StartsEmpty) {
  IatHistogram hist(240);
  EXPECT_EQ(hist.TotalCount(), 0);
  EXPECT_EQ(hist.OutOfBoundsCount(), 0);
  EXPECT_DOUBLE_EQ(hist.OutOfBoundsFraction(), 0.0);
  EXPECT_EQ(hist.PercentileMinute(50.0), 0);
  EXPECT_FALSE(hist.Representative());
}

TEST(IatHistogramTest, IgnoresNonPositive) {
  IatHistogram hist(240);
  hist.Record(0);
  hist.Record(-3);
  EXPECT_EQ(hist.TotalCount(), 0);
}

TEST(IatHistogramTest, CountsOutOfBounds) {
  IatHistogram hist(10);
  hist.Record(5);
  hist.Record(11);
  hist.Record(100);
  EXPECT_EQ(hist.TotalCount(), 3);
  EXPECT_EQ(hist.OutOfBoundsCount(), 2);
  EXPECT_NEAR(hist.OutOfBoundsFraction(), 2.0 / 3.0, 1e-12);
}

TEST(IatHistogramTest, BoundaryValueIsInRange) {
  IatHistogram hist(10);
  hist.Record(10);
  EXPECT_EQ(hist.OutOfBoundsCount(), 0);
}

TEST(IatHistogramTest, PercentilesOfConstantStream) {
  IatHistogram hist(240);
  for (int i = 0; i < 100; ++i) hist.Record(30);
  EXPECT_EQ(hist.PercentileMinute(5.0), 30);
  EXPECT_EQ(hist.PercentileMinute(50.0), 30);
  EXPECT_EQ(hist.PercentileMinute(99.0), 30);
}

TEST(IatHistogramTest, PercentilesOfBimodalStream) {
  IatHistogram hist(240);
  for (int i = 0; i < 90; ++i) hist.Record(5);
  for (int i = 0; i < 10; ++i) hist.Record(200);
  EXPECT_EQ(hist.PercentileMinute(5.0), 5);
  EXPECT_EQ(hist.PercentileMinute(50.0), 5);
  EXPECT_EQ(hist.PercentileMinute(99.0), 200);
}

TEST(IatHistogramTest, RepresentativenessGates) {
  IatHistogram hist(240);
  for (int i = 0; i < 9; ++i) hist.Record(10);
  EXPECT_FALSE(hist.Representative(10, 0.5));  // too few samples
  hist.Record(10);
  EXPECT_TRUE(hist.Representative(10, 0.5));
  // Flood with out-of-bounds: representativeness lost.
  for (int i = 0; i < 20; ++i) hist.Record(999);
  EXPECT_FALSE(hist.Representative(10, 0.5));
}

TEST(IatHistogramTest, PercentileExcludesOobMass) {
  IatHistogram hist(10);
  for (int i = 0; i < 10; ++i) hist.Record(3);
  for (int i = 0; i < 50; ++i) hist.Record(99);  // OOB
  // Percentiles are over in-range mass only.
  EXPECT_EQ(hist.PercentileMinute(99.0), 3);
}

TEST(IatHistogramTest, MinimumRangeClamped) {
  IatHistogram hist(0);
  EXPECT_EQ(hist.range_minutes(), 1);
}

}  // namespace
}  // namespace spes
