// Differential test for the columnar minute-major kernel: SimStream's
// outcome must be bitwise-equal to the kept naive reference loop
// (sim/reference_kernel.h) on random fleets across seeds, sparse and
// dense arrival mixes, and pinning on/off. The two implementations share
// no hot-path code, so any columnar bookkeeping bug (interval accrual,
// decode order, bitset diffing) shows up as a counter mismatch here.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/spes_policy.h"
#include "policies/faascache.h"
#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "sim/reference_kernel.h"
#include "sim/stream.h"
#include "trace/generator.h"

namespace spes {
namespace {

struct FleetCase {
  std::string label;
  GeneratorConfig config;
};

std::vector<FleetCase> FleetCases() {
  std::vector<FleetCase> cases;
  for (const uint64_t seed : {7u, 123u, 2026u}) {
    GeneratorConfig dense;
    dense.num_functions = 120;
    dense.days = 3;
    dense.seed = seed;
    dense.intensity_zipf_exponent = 1.1;  // fat head: arrivals most minutes
    cases.push_back({"dense-seed" + std::to_string(seed), dense});

    GeneratorConfig sparse;
    sparse.num_functions = 200;
    sparse.days = 3;
    sparse.seed = seed;
    sparse.intensity_zipf_exponent = 2.4;  // long tail: mostly idle fleet
    cases.push_back({"sparse-seed" + std::to_string(seed), sparse});
  }
  return cases;
}

/// One policy instance per kernel — both freshly constructed the same way.
std::vector<std::unique_ptr<Policy>> MakePolicyPair(const std::string& name) {
  std::vector<std::unique_ptr<Policy>> pair;
  for (int i = 0; i < 2; ++i) {
    if (name == "spes") {
      pair.push_back(std::make_unique<SpesPolicy>());
    } else if (name == "fixed") {
      pair.push_back(std::make_unique<FixedKeepAlivePolicy>(10));
    } else {
      // A tight capacity forces the eviction scan every minute.
      pair.push_back(std::make_unique<FaasCachePolicy>(16));
    }
  }
  return pair;
}

void ExpectBitwiseEqualOutcomes(const SimulationOutcome& columnar,
                                const SimulationOutcome& reference,
                                const std::string& context) {
  ASSERT_EQ(columnar.accounts.size(), reference.accounts.size()) << context;
  for (size_t f = 0; f < columnar.accounts.size(); ++f) {
    const FunctionAccount& a = columnar.accounts[f];
    const FunctionAccount& b = reference.accounts[f];
    ASSERT_EQ(a.invocations, b.invocations) << context << " f=" << f;
    ASSERT_EQ(a.invoked_minutes, b.invoked_minutes) << context << " f=" << f;
    ASSERT_EQ(a.cold_starts, b.cold_starts) << context << " f=" << f;
    ASSERT_EQ(a.loaded_minutes, b.loaded_minutes) << context << " f=" << f;
    ASSERT_EQ(a.wasted_minutes, b.wasted_minutes) << context << " f=" << f;
  }
  ASSERT_EQ(columnar.memory_series, reference.memory_series) << context;
  const FleetMetrics& m = columnar.metrics;
  const FleetMetrics& r = reference.metrics;
  EXPECT_EQ(m.total_invocations, r.total_invocations) << context;
  EXPECT_EQ(m.total_cold_starts, r.total_cold_starts) << context;
  EXPECT_EQ(m.loaded_instance_minutes, r.loaded_instance_minutes) << context;
  EXPECT_EQ(m.wasted_memory_minutes, r.wasted_memory_minutes) << context;
  EXPECT_EQ(m.max_memory, r.max_memory) << context;
  EXPECT_EQ(m.csr, r.csr) << context;
}

TEST(ColumnarDiffTest, MatchesReferenceAcrossFleetsPoliciesAndPinning) {
  for (const FleetCase& fleet : FleetCases()) {
    const Trace trace =
        std::move(GenerateTrace(fleet.config).ValueOrDie().trace);
    for (const std::string policy_name : {"spes", "fixed", "faascache"}) {
      for (const bool pin : {true, false}) {
        SimOptions options;
        options.train_minutes = kMinutesPerDay;
        options.pin_executing_functions = pin;

        auto policies = MakePolicyPair(policy_name);
        SimStream stream =
            SimStream::Create(trace, policies[0].get(), options)
                .ValueOrDie();
        const SimulationOutcome columnar = stream.Finish().ValueOrDie();
        const SimulationOutcome reference =
            SimulateReference(trace, policies[1].get(), options)
                .ValueOrDie();

        ExpectBitwiseEqualOutcomes(
            columnar, reference,
            fleet.label + "/" + policy_name + (pin ? "/pin" : "/nopin"));
      }
    }
  }
}

TEST(ColumnarDiffTest, LiveTotalsMatchReferenceMidWindow) {
  // Snapshot mid-window so open residency intervals (not just the final
  // materialization) are compared against the reference's running counters.
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 3;
  config.seed = 42;
  const Trace trace = std::move(GenerateTrace(config).ValueOrDie().trace);

  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  const int midpoint = options.train_minutes + 517;  // deliberately odd

  FixedKeepAlivePolicy streamed(10);
  SimStream stream =
      SimStream::Create(trace, &streamed, options).ValueOrDie();
  ASSERT_TRUE(stream.RunUntil(midpoint).ok());
  const FleetMetrics snapshot = stream.SnapshotMetrics(0);

  SimOptions clipped = options;
  clipped.end_minute = midpoint;
  FixedKeepAlivePolicy reference(10);
  const SimulationOutcome ref =
      SimulateReference(trace, &reference, clipped).ValueOrDie();
  EXPECT_EQ(snapshot.total_invocations, ref.metrics.total_invocations);
  EXPECT_EQ(snapshot.total_cold_starts, ref.metrics.total_cold_starts);
  EXPECT_EQ(snapshot.loaded_instance_minutes,
            ref.metrics.loaded_instance_minutes);
  EXPECT_EQ(snapshot.wasted_memory_minutes,
            ref.metrics.wasted_memory_minutes);
  EXPECT_EQ(snapshot.max_memory, ref.metrics.max_memory);
}

}  // namespace
}  // namespace spes
