#include "common/ks_test.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace spes {
namespace {

TEST(KolmogorovSurvivalTest, Boundaries) {
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(-1.0), 1.0);
  EXPECT_LT(KolmogorovSurvival(2.0), 0.001);
}

TEST(KolmogorovSurvivalTest, KnownValue) {
  // Q(1.36) ~ 0.049: the classic 5% critical value.
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.002);
}

TEST(KolmogorovSurvivalTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = KolmogorovSurvival(x);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(KsTest, UniformSampleConsistentWithUniformCdf) {
  Rng rng(101);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.UniformDouble());
  const KsResult r = KsTest(xs, [](double x) {
    if (x < 0.0) return 0.0;
    if (x > 1.0) return 1.0;
    return x;
  });
  EXPECT_TRUE(r.consistent);
  EXPECT_LT(r.statistic, 0.1);
}

TEST(KsTest, UniformSampleRejectsWrongCdf) {
  Rng rng(103);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.UniformDouble());
  // Exponential CDF is far from the uniform sample.
  const KsResult r =
      KsTest(xs, [](double x) { return 1.0 - std::exp(-5.0 * x); });
  EXPECT_FALSE(r.consistent);
}

TEST(KsTest, EmptySample) {
  const KsResult r = KsTest({}, [](double) { return 0.5; });
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_FALSE(r.consistent);
}

TEST(KsTestPeriodic, PerfectlyPeriodicGapsAreConsistent) {
  std::vector<int64_t> gaps(100, 15);
  const KsResult r = KsTestPeriodic(gaps);
  EXPECT_TRUE(r.consistent);
}

TEST(KsTestPeriodic, QuasiPeriodicGapsAreConsistent) {
  // Gaps hop between 14 and 16 around a 15-minute timer.
  std::vector<int64_t> gaps;
  for (int i = 0; i < 100; ++i) gaps.push_back(i % 2 == 0 ? 15 : 16);
  const KsResult r = KsTestPeriodic(gaps);
  EXPECT_TRUE(r.consistent);
}

TEST(KsTestPeriodic, WildGapsAreNotPeriodic) {
  Rng rng(107);
  std::vector<int64_t> gaps;
  for (int i = 0; i < 300; ++i) {
    gaps.push_back(1 + static_cast<int64_t>(rng.Exponential(0.02)));
  }
  const KsResult r = KsTestPeriodic(gaps);
  EXPECT_FALSE(r.consistent);
}

TEST(KsTestExponential, ExponentialGapsAreConsistent) {
  Rng rng(109);
  std::vector<int64_t> gaps;
  for (int i = 0; i < 400; ++i) {
    gaps.push_back(static_cast<int64_t>(rng.Exponential(0.1)));
  }
  const KsResult r = KsTestExponential(gaps);
  EXPECT_TRUE(r.consistent);
}

TEST(KsTestExponential, ConstantGapsAreNotExponential) {
  std::vector<int64_t> gaps(200, 30);
  const KsResult r = KsTestExponential(gaps);
  EXPECT_FALSE(r.consistent);
}

TEST(KsTestExponential, EmptyGaps) {
  EXPECT_FALSE(KsTestExponential({}).consistent);
}

}  // namespace
}  // namespace spes
