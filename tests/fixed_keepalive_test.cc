#include "policies/fixed_keepalive.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace spes {
namespace {

Trace OneFunction(std::vector<uint32_t> counts) {
  Trace trace(static_cast<int>(counts.size()));
  FunctionTrace f;
  f.meta.name = "f0";
  f.meta.app = "a";
  f.meta.owner = "o";
  f.counts = std::move(counts);
  EXPECT_TRUE(trace.Add(std::move(f)).ok());
  return trace;
}

TEST(FixedKeepAliveTest, NameIncludesWindow) {
  EXPECT_EQ(FixedKeepAlivePolicy(10).name(), "Fixed-10min");
  EXPECT_EQ(FixedKeepAlivePolicy(3).name(), "Fixed-3min");
}

TEST(FixedKeepAliveTest, ClampsNonPositiveWindow) {
  EXPECT_EQ(FixedKeepAlivePolicy(0).keepalive_minutes(), 1);
  EXPECT_EQ(FixedKeepAlivePolicy(-5).keepalive_minutes(), 1);
}

TEST(FixedKeepAliveTest, ArrivalWithinWindowIsWarm) {
  // Arrivals 3 minutes apart with a 5-minute keep-alive: warm after first.
  std::vector<uint32_t> counts(30, 0);
  for (int t = 0; t < 30; t += 3) counts[static_cast<size_t>(t)] = 1;
  Trace trace = OneFunction(std::move(counts));
  FixedKeepAlivePolicy policy(5);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].cold_starts, 1u);
}

TEST(FixedKeepAliveTest, ArrivalBeyondWindowIsCold) {
  // Arrivals 10 minutes apart with a 5-minute keep-alive: every one cold.
  std::vector<uint32_t> counts(60, 0);
  for (int t = 0; t < 60; t += 10) counts[static_cast<size_t>(t)] = 1;
  Trace trace = OneFunction(std::move(counts));
  FixedKeepAlivePolicy policy(5);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].cold_starts, 6u);
}

TEST(FixedKeepAliveTest, WastedMinutesEqualKeepAliveTail) {
  // A single arrival then silence: the instance idles keepalive-1 minutes
  // after its execution minute before eviction.
  std::vector<uint32_t> counts(30, 0);
  counts[2] = 1;
  Trace trace = OneFunction(std::move(counts));
  FixedKeepAlivePolicy policy(7);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  EXPECT_EQ(acc.cold_starts, 1u);
  EXPECT_EQ(acc.wasted_minutes, 6u);
  EXPECT_EQ(acc.loaded_minutes, 7u);
}

TEST(FixedKeepAliveTest, LargerWindowNeverIncreasesColdStarts) {
  std::vector<uint32_t> counts(500, 0);
  for (int t = 0; t < 500; t += 13) counts[static_cast<size_t>(t)] = 1;
  Trace trace = OneFunction(std::move(counts));
  uint64_t prev_cold = UINT64_MAX;
  for (int window : {1, 5, 10, 20, 40}) {
    FixedKeepAlivePolicy policy(window);
    SimOptions options;
    options.train_minutes = 0;
    const auto outcome = Simulate(trace, &policy, options);
    ASSERT_TRUE(outcome.ok());
    const uint64_t cold = outcome.ValueOrDie().accounts[0].cold_starts;
    EXPECT_LE(cold, prev_cold) << "window " << window;
    prev_cold = cold;
  }
}

}  // namespace
}  // namespace spes
