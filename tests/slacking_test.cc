#include "core/slacking.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace spes {
namespace {

TEST(TrimBoundaryWtsTest, DropsFirstAndLast) {
  EXPECT_EQ(TrimBoundaryWts({1, 2, 3, 4}), (std::vector<int64_t>{2, 3}));
}

TEST(TrimBoundaryWtsTest, TooShortBecomesEmpty) {
  EXPECT_TRUE(TrimBoundaryWts({1, 2}).empty());
  EXPECT_TRUE(TrimBoundaryWts({}).empty());
}

TEST(MergeAnchorModeTest, PrefersLargerValueOnTies) {
  // 1439, 1438 and 1 each occur twice: the anchor is the largest.
  EXPECT_EQ(MergeAnchorMode({1439, 1438, 1, 1439, 1438, 1}), 1439);
}

TEST(MergeAnchorModeTest, PlainModeWins) {
  EXPECT_EQ(MergeAnchorMode({5, 5, 5, 9}), 5);
  EXPECT_EQ(MergeAnchorMode({}), 0);
}

TEST(MergeAdjacentSmallWtsTest, PaperExample) {
  // §IV-A2: (1439, 1438, 1, 1439, 1438, 1) -> (1439, 1439, 1439, 1439).
  const std::vector<int64_t> wts = {1439, 1438, 1, 1439, 1438, 1};
  EXPECT_EQ(MergeAdjacentSmallWts(wts),
            (std::vector<int64_t>{1439, 1439, 1439, 1439}));
}

TEST(MergeAdjacentSmallWtsTest, AlreadyRegularUnchanged) {
  const std::vector<int64_t> wts = {10, 10, 10, 10};
  EXPECT_EQ(MergeAdjacentSmallWts(wts), wts);
}

TEST(MergeAdjacentSmallWtsTest, LargeWtPassesThrough) {
  // A WT far above the mode is neither absorbed nor an anchor.
  const std::vector<int64_t> wts = {10, 10, 500, 10};
  const auto merged = MergeAdjacentSmallWts(wts);
  EXPECT_EQ(merged, (std::vector<int64_t>{10, 10, 500, 10}));
}

TEST(MergeAdjacentSmallWtsTest, LeadingSmallMergesForwardIntoAnchor) {
  // A fragment ahead of a mode-sized WT merges into it (1 + 10 = 11,
  // within tolerance of the mode).
  const std::vector<int64_t> wts = {1, 10, 10, 10};
  const auto merged = MergeAdjacentSmallWts(wts, 1);
  EXPECT_EQ(merged, (std::vector<int64_t>{11, 10, 10}));
}

TEST(MergeAdjacentSmallWtsTest, MassIsConserved) {
  // Property: merging never changes the total idle time.
  const std::vector<int64_t> wts = {30, 29, 1, 2, 30, 28, 1, 1, 30, 5};
  const auto merged = MergeAdjacentSmallWts(wts);
  const int64_t before = std::accumulate(wts.begin(), wts.end(), int64_t{0});
  const int64_t after =
      std::accumulate(merged.begin(), merged.end(), int64_t{0});
  EXPECT_EQ(before, after);
  EXPECT_LE(merged.size(), wts.size());
}

TEST(MergeAdjacentSmallWtsTest, ShortSequencesUntouched) {
  EXPECT_EQ(MergeAdjacentSmallWts({7}), (std::vector<int64_t>{7}));
  EXPECT_TRUE(MergeAdjacentSmallWts({}).empty());
}

TEST(MergeAdjacentSmallWtsTest, ExplicitTolerance) {
  // With a generous tolerance, 8 counts as close to mode 10.
  const std::vector<int64_t> wts = {10, 8, 2, 10};
  const auto merged = MergeAdjacentSmallWts(wts, 2);
  EXPECT_EQ(merged, (std::vector<int64_t>{10, 10, 10}));
}

class MergeConservationTest
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(MergeConservationTest, SumPreservedAndNotLonger) {
  const std::vector<int64_t>& wts = GetParam();
  const auto merged = MergeAdjacentSmallWts(wts);
  EXPECT_EQ(std::accumulate(wts.begin(), wts.end(), int64_t{0}),
            std::accumulate(merged.begin(), merged.end(), int64_t{0}));
  EXPECT_LE(merged.size(), wts.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeConservationTest,
    ::testing::Values(std::vector<int64_t>{1439, 1438, 1, 1439, 1438, 1},
                      std::vector<int64_t>{5, 5, 5},
                      std::vector<int64_t>{100, 1, 1, 1, 97, 100},
                      std::vector<int64_t>{2, 2, 2, 2, 50},
                      std::vector<int64_t>{60, 58, 2, 60, 59, 1, 60},
                      std::vector<int64_t>{1, 1, 1, 1}));

}  // namespace
}  // namespace spes
