#include "policies/defuse.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows,
                std::vector<std::string> apps) {
  Trace trace(static_cast<int>(rows[0].size()));
  for (size_t k = 0; k < rows.size(); ++k) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k);
    f.meta.app = apps[k];
    f.meta.owner = "o";
    f.counts = std::move(rows[k]);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

TEST(DefuseTest, MinesChainDependency) {
  // B fires 2 minutes after A, 50+ times in training.
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> a(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> b(static_cast<size_t>(horizon), 0);
  for (int t = 0; t + 2 < horizon; t += 25) {
    a[static_cast<size_t>(t)] = 1;
    b[static_cast<size_t>(t + 2)] = 1;
  }
  Trace trace = MakeTrace({std::move(a), std::move(b)}, {"app", "app"});
  DefusePolicy policy;
  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  // A -> B must be mined.
  ASSERT_FALSE(policy.successors()[0].empty());
  EXPECT_EQ(policy.successors()[0][0], 1u);
  // B is pre-warmed by A's arrivals: essentially no cold starts.
  EXPECT_LE(outcome.ValueOrDie().accounts[1].ColdStartRate(), 0.02);
}

TEST(DefuseTest, NoDependencyAcrossApps) {
  const int horizon = kMinutesPerDay;
  std::vector<uint32_t> a(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> b(static_cast<size_t>(horizon), 0);
  for (int t = 0; t + 2 < horizon; t += 25) {
    a[static_cast<size_t>(t)] = 1;
    b[static_cast<size_t>(t + 2)] = 1;
  }
  Trace trace = MakeTrace({std::move(a), std::move(b)}, {"app1", "app2"});
  DefusePolicy policy;
  policy.Train(trace, horizon);
  EXPECT_TRUE(policy.successors()[0].empty());
}

TEST(DefuseTest, LowConfidencePairsNotLinked) {
  // B follows A only 20% of the time.
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> a(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> b(static_cast<size_t>(horizon), 0);
  int k = 0;
  for (int t = 0; t + 2 < horizon; t += 25) {
    a[static_cast<size_t>(t)] = 1;
    if (++k % 5 == 0) b[static_cast<size_t>(t + 2)] = 1;
  }
  Trace trace = MakeTrace({std::move(a), std::move(b)}, {"app", "app"});
  DefusePolicy policy;
  policy.Train(trace, horizon);
  EXPECT_TRUE(policy.successors()[0].empty());
}

TEST(DefuseTest, SparseFunctionsUseFallback) {
  const int horizon = kMinutesPerDay;
  std::vector<uint32_t> sparse(static_cast<size_t>(horizon), 0);
  sparse[10] = 1;
  sparse[500] = 1;
  Trace trace = MakeTrace({std::move(sparse)}, {"app"});
  DefusePolicy policy;
  policy.Train(trace, horizon);
  EXPECT_EQ(policy.CountFallbackFunctions(), 1);
}

TEST(DefuseTest, HistogramKeepAliveCoversRegularGaps) {
  const int horizon = 3 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  for (int t = 0; t < horizon; t += 12) counts[static_cast<size_t>(t)] = 1;
  Trace trace = MakeTrace({std::move(counts)}, {"app"});
  DefusePolicy policy;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  // Defuse keeps the instance alive through the P99 IAT (12 min), so all
  // simulated arrivals are warm.
  EXPECT_LE(outcome.ValueOrDie().accounts[0].ColdStartRate(), 0.01);
}

}  // namespace
}  // namespace spes
