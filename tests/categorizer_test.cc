#include "core/categorizer.h"

#include <gtest/gtest.h>

#include <vector>

#include "trace/trace.h"

namespace spes {
namespace {

/// Builds a horizon of `n` slots with an arrival every `period` slots.
std::vector<uint32_t> Periodic(int n, int period, int phase = 0) {
  std::vector<uint32_t> counts(static_cast<size_t>(n), 0);
  for (int t = phase; t < n; t += period) {
    counts[static_cast<size_t>(t)] = 1;
  }
  return counts;
}

SpesConfig DefaultConfig() { return SpesConfig{}; }

TEST(CategorizerTest, NeverInvokedIsUnknown) {
  const std::vector<uint32_t> counts(2000, 0);
  EXPECT_EQ(CategorizeDeterministic(counts, DefaultConfig()).type,
            FunctionType::kUnknown);
}

TEST(CategorizerTest, EverySlotInvokedIsAlwaysWarm) {
  const std::vector<uint32_t> counts(2000, 2);
  EXPECT_EQ(CategorizeDeterministic(counts, DefaultConfig()).type,
            FunctionType::kAlwaysWarm);
}

TEST(CategorizerTest, TinyIdleShareIsStillAlwaysWarm) {
  // One idle slot in 2000 (< 1/1000 of the window).
  std::vector<uint32_t> counts(2000, 1);
  counts[777] = 0;
  EXPECT_EQ(CategorizeDeterministic(counts, DefaultConfig()).type,
            FunctionType::kAlwaysWarm);
}

TEST(CategorizerTest, StrictPeriodIsRegularWithMedianValue) {
  const auto counts = Periodic(2000, 10);
  const PredictiveModel model =
      CategorizeDeterministic(counts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kRegular);
  ASSERT_EQ(model.values.size(), 1u);
  EXPECT_EQ(model.values[0], 9);  // WT between arrivals 10 apart is 9
}

TEST(CategorizerTest, FragmentedPeriodIsRegularAfterMerging) {
  // A daily timer whose gap is occasionally split by a stray event:
  // WTs look like (199, 150, 48, 199, ...) — merging restores 199.
  std::vector<uint32_t> counts(4000, 0);
  int t = 0;
  bool split = false;
  while (t < 4000) {
    counts[static_cast<size_t>(t)] = 1;
    if (split && t + 151 < 4000) {
      counts[static_cast<size_t>(t + 151)] = 1;  // stray mid-gap event
    }
    split = !split;
    t += 200;
  }
  const PredictiveModel model =
      CategorizeDeterministic(counts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kRegular);
}

TEST(CategorizerTest, QuasiPeriodicIsApproRegular) {
  // Gaps cycle 3-4-5: three modes cover 100% of WTs but the percentile
  // band is 2 and the CV is large, so it is appro-regular, not regular.
  std::vector<uint32_t> counts(3000, 0);
  int t = 0;
  int k = 0;
  const int gaps[3] = {4, 5, 6};
  while (t < 3000) {
    counts[static_cast<size_t>(t)] = 1;
    t += gaps[k % 3];
    ++k;
  }
  const PredictiveModel model =
      CategorizeDeterministic(counts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kApproRegular);
  EXPECT_FALSE(model.values.empty());
}

TEST(CategorizerTest, FrequentIrregularIsDense) {
  // Mostly 2-minute gaps with ~8% 6-minute lulls: P90(WT) = 1 <= 2 (dense)
  // but P95 - P5 = 4 and CV is large, so the regular rule does not fire.
  std::vector<uint32_t> counts(3000, 0);
  int t = 0;
  int k = 0;
  while (t < 3000) {
    counts[static_cast<size_t>(t)] = 1 + static_cast<uint32_t>(k % 3);
    t += (k % 12 == 11) ? 6 : 2;
    ++k;
  }
  const PredictiveModel model =
      CategorizeDeterministic(counts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kDense);
  EXPECT_TRUE(model.continuous);
  EXPECT_LE(model.range_lo, model.range_hi);
}

TEST(CategorizerTest, BurstyWavesAreSuccessive) {
  // Waves of 4 consecutive active slots with >= 8 arrivals, IRREGULARLY
  // spaced (regular spacing would satisfy the higher-priority regular
  // rule on the WT sequence).
  std::vector<uint32_t> counts(8000, 0);
  const int starts[8] = {200, 650, 1800, 2200, 3900, 4350, 6100, 7500};
  for (int start : starts) {
    for (int s = 0; s < 4; ++s) {
      counts[static_cast<size_t>(start + s)] = 3;
    }
  }
  const PredictiveModel model =
      CategorizeDeterministic(counts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kSuccessive);
}

TEST(CategorizerTest, ShortWavesAreNotSuccessive) {
  // 1-slot waves: min(AT) < gamma1.
  std::vector<uint32_t> counts(6000, 0);
  for (int wave = 0; wave < 8; ++wave) {
    counts[static_cast<size_t>(200 + wave * 700)] = 9;
  }
  EXPECT_NE(CategorizeDeterministic(counts, DefaultConfig()).type,
            FunctionType::kSuccessive);
}

TEST(CategorizerTest, PriorityRegularBeatsDense) {
  // A strict 2-minute period also satisfies the dense test, but the
  // regular definition has priority.
  const auto counts = Periodic(2000, 2);
  EXPECT_EQ(CategorizeDeterministic(counts, DefaultConfig()).type,
            FunctionType::kRegular);
}

TEST(CategorizerTest, SparseRandomIsUnknown) {
  std::vector<uint32_t> counts(20000, 0);
  counts[123] = 1;
  counts[7777] = 1;
  counts[15000] = 1;
  EXPECT_EQ(CategorizeDeterministic(counts, DefaultConfig()).type,
            FunctionType::kUnknown);
}

namespace {

/// 4 days of wildly varying gaps, then 4 days of a clean 10-minute timer.
/// The noisy prefix contributes ~40% of all WTs across 10 distinct values,
/// defeating every deterministic rule on the full window; the suffix alone
/// is textbook regular.
std::vector<uint32_t> ShiftedWorkload() {
  const int days = 8;
  const int shift = 4 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(days) * kMinutesPerDay, 0);
  const int noise_gaps[10] = {5, 7, 9, 11, 13, 15, 17, 19, 21, 23};
  int t = 0, k = 0;
  while (t < shift) {
    counts[static_cast<size_t>(t)] = 1;
    t += noise_gaps[k++ % 10];
  }
  for (int s = shift; s < days * kMinutesPerDay; s += 10) {
    counts[static_cast<size_t>(s)] = 1;
  }
  return counts;
}

}  // namespace

TEST(CategorizerForgettingTest, RecoversPostShiftRegularity) {
  const std::vector<uint32_t> counts = ShiftedWorkload();
  SpesConfig config = DefaultConfig();
  EXPECT_EQ(CategorizeDeterministic(counts, config).type,
            FunctionType::kUnknown);
  const PredictiveModel model = CategorizeWithForgetting(counts, config);
  EXPECT_EQ(model.type, FunctionType::kRegular);
  EXPECT_GT(model.forgotten_prefix_minutes, 0);
}

TEST(CategorizerForgettingTest, DisabledFlagSkipsForgetting) {
  const std::vector<uint32_t> counts = ShiftedWorkload();
  SpesConfig config = DefaultConfig();
  config.enable_forgetting = false;
  EXPECT_EQ(CategorizeWithForgetting(counts, config).type,
            FunctionType::kUnknown);
}

TEST(FitPossibleModelTest, RepeatedWtsBecomePredictiveValues) {
  const std::vector<int64_t> wts = {360, 1440, 360, 77, 1440, 360};
  const PredictiveModel model = FitPossibleModel(wts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kPossible);
  ASSERT_EQ(model.values.size(), 2u);
  EXPECT_EQ(model.values[0], 360);
  EXPECT_EQ(model.values[1], 1440);
  EXPECT_FALSE(model.continuous);  // range 1080 > threshold
}

TEST(FitPossibleModelTest, NarrowRangeBecomesContinuous) {
  const std::vector<int64_t> wts = {30, 32, 30, 32, 31, 31};
  const PredictiveModel model = FitPossibleModel(wts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kPossible);
  EXPECT_TRUE(model.continuous);
  EXPECT_EQ(model.range_lo, 30);
  EXPECT_EQ(model.range_hi, 32);
}

TEST(FitPossibleModelTest, NoRepeatsMeansUnknown) {
  EXPECT_EQ(FitPossibleModel({5, 9, 100}, DefaultConfig()).type,
            FunctionType::kUnknown);
}

TEST(WtsLookRegularTest, BandAndCvRules) {
  SpesConfig config = DefaultConfig();
  EXPECT_TRUE(WtsLookRegular({10, 10, 10, 11}, config));   // band <= 1
  EXPECT_FALSE(WtsLookRegular({10, 20, 30, 40}, config));  // wide band
  EXPECT_FALSE(WtsLookRegular({}, config));
  // CV rule: large but nearly constant values with band > 1 need CV small.
  std::vector<int64_t> wts(200, 1000);
  wts[0] = 1003;  // band 3 but tiny CV
  EXPECT_TRUE(WtsLookRegular(wts, config));
}

class PeriodSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSweepTest, AnyStrictPeriodIsRegular) {
  const int period = GetParam();
  const auto counts = Periodic(8 * period + 1, period);
  const PredictiveModel model =
      CategorizeDeterministic(counts, DefaultConfig());
  EXPECT_EQ(model.type, FunctionType::kRegular) << "period " << period;
  ASSERT_FALSE(model.values.empty());
  EXPECT_EQ(model.values[0], period - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodSweepTest,
                         ::testing::Values(3, 5, 7, 15, 60, 240, 1440));

}  // namespace
}  // namespace spes
