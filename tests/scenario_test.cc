// Scenario API: up-front spec validation (field-naming errors), trace
// realization from generator/CSV sources, RunScenario equivalence with the
// low-level Simulate() shim, ScenarioSession reuse, and the SuiteRunner
// spec-batch overload (error isolation + thread-count determinism).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "policies/fixed_keepalive.h"
#include "runner/suite_runner.h"
#include "sim/observers.h"
#include "sim/scenario.h"
#include "trace/azure_csv.h"
#include "trace/generator.h"

namespace spes {
namespace {

GeneratorConfig SmallFleetConfig() {
  GeneratorConfig config;
  config.num_functions = 120;
  config.days = 3;
  config.seed = 23;
  return config;
}

ScenarioSpec SmallScenario(PolicySpec policy) {
  ScenarioSpec spec;
  spec.trace = TraceSpec::FromGenerator(SmallFleetConfig());
  spec.policy = std::move(policy);
  spec.options.train_minutes = kMinutesPerDay;
  return spec;
}

TEST(ValidateSimOptionsTest, ErrorsNameTheBadField) {
  SimOptions options;
  options.train_minutes = -5;
  Status status = ValidateSimOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("train_minutes"), std::string::npos);

  options = SimOptions{};
  options.end_minute = -1;
  status = ValidateSimOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("end_minute"), std::string::npos);

  options = SimOptions{};
  options.train_minutes = 100;
  options.end_minute = 50;
  status = ValidateSimOptions(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("end_minute"), std::string::npos);
  EXPECT_NE(status.message().find("train_minutes"), std::string::npos);

  EXPECT_TRUE(ValidateSimOptions(SimOptions{}).ok());
}

TEST(ValidateScenarioSpecTest, EmptyPolicyNameNamesTheField) {
  ScenarioSpec spec = SmallScenario({"", {}});
  const Status status = ValidateScenarioSpec(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("policy.name"), std::string::npos);
}

TEST(ValidateScenarioSpecTest, BadWindowIsRejectedBeforeAnyTraceExists) {
  ScenarioSpec spec = SmallScenario({"spes", {}});
  spec.options.train_minutes = -1;
  EXPECT_EQ(ValidateScenarioSpec(spec).code(), StatusCode::kInvalidArgument);
  // RunScenario surfaces the same error without realizing the trace.
  EXPECT_EQ(RunScenario(spec).status().code(), StatusCode::kInvalidArgument);
}

TEST(RealizeTraceTest, ProvidedSourceIsAnError) {
  const auto result = RealizeTrace(TraceSpec{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RealizeTraceTest, EmptyCsvDirIsAnError) {
  const auto result = RealizeTrace(TraceSpec::FromAzureCsvDir(""));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("csv_dir"), std::string::npos);
}

TEST(RunScenarioTest, MatchesTheLowLevelSimulateShim) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  const ScenarioSpec spec =
      SmallScenario({"fixed_keepalive", {{"minutes", 10}}});

  const ScenarioOutcome via_spec =
      RunScenario(fleet.trace, spec).ValueOrDie();

  FixedKeepAlivePolicy direct(10);
  const SimulationOutcome via_shim =
      Simulate(fleet.trace, &direct, spec.options).ValueOrDie();

  EXPECT_EQ(via_spec.outcome.memory_series, via_shim.memory_series);
  EXPECT_EQ(via_spec.outcome.metrics.total_cold_starts,
            via_shim.metrics.total_cold_starts);
  EXPECT_EQ(via_spec.outcome.metrics.wasted_memory_minutes,
            via_shim.metrics.wasted_memory_minutes);
  EXPECT_EQ(via_spec.policy->name(), direct.name());
}

TEST(RunScenarioTest, RealizesGeneratorSource) {
  const ScenarioOutcome run =
      RunScenario(SmallScenario({"oracle", {}})).ValueOrDie();
  EXPECT_EQ(run.outcome.memory_series.size(),
            static_cast<size_t>(2 * kMinutesPerDay));
  EXPECT_EQ(run.policy->name(), "Oracle");
}

TEST(RunScenarioTest, RegistryErrorsPropagate) {
  const auto unknown = RunScenario(SmallScenario({"no_such_policy", {}}));
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  const auto bad_param =
      RunScenario(SmallScenario({"fixed_keepalive", {{"minutes", 0}}}));
  EXPECT_EQ(bad_param.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioSessionTest, ReusesOneRealizedTrace) {
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(SmallFleetConfig()))
          .ValueOrDie();
  EXPECT_EQ(session.trace().num_functions(), 120u);

  ScenarioSpec spec = SmallScenario({"fixed_keepalive", {}});
  const ScenarioOutcome a = session.Run(spec).ValueOrDie();
  const ScenarioOutcome b = session.Run(spec).ValueOrDie();
  EXPECT_EQ(a.outcome.memory_series, b.outcome.memory_series);
}

TEST(ScenarioSessionTest, RoundTripsThroughAzureCsvSource) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spes_scenario_test_csv")
          .string();
  WriteAzureTraceDir(fleet.trace, dir).CheckOK();

  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromAzureCsvDir(dir)).ValueOrDie();
  EXPECT_EQ(session.trace().num_functions(), fleet.trace.num_functions());
  EXPECT_EQ(session.trace().num_minutes(), fleet.trace.num_minutes());
  std::filesystem::remove_all(dir);
}

TEST(SuiteRunnerSpecBatchTest, InvalidSlotsKeepPreciseErrorsAndSiblingsRun) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  SimOptions options;
  options.train_minutes = kMinutesPerDay;

  std::vector<ScenarioSpec> specs(4);
  specs[0].policy = {"fixed_keepalive", {}};
  specs[1].policy = {"no_such_policy", {}};
  specs[2].policy = {"fixed_keepalive", {{"minuets", 10}}};
  specs[3].policy = {"oracle", {}};
  for (ScenarioSpec& spec : specs) spec.options = options;

  // The progress callback must also see the precise per-slot error.
  size_t failed_callbacks = 0;
  SuiteRunnerOptions runner_options;
  runner_options.progress = [&failed_callbacks](size_t, size_t,
                                                const JobResult& result) {
    if (!result.status.ok()) {
      ++failed_callbacks;
      EXPECT_NE(result.status.code(), StatusCode::kInternal);
      EXPECT_FALSE(result.status.message().empty());
      EXPECT_EQ(result.status.message().find("policy factory"),
                std::string::npos);
    }
  };
  const std::vector<JobResult> results =
      SuiteRunner(runner_options).Run(fleet.trace, specs);
  EXPECT_EQ(failed_callbacks, 2u);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kNotFound);
  EXPECT_NE(results[1].status.message().find("no_such_policy"),
            std::string::npos);
  EXPECT_EQ(results[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(results[2].status.message().find("minuets"), std::string::npos);
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_EQ(results[3].label, "Oracle");
}

TEST(ScenarioObserverTest, SpecObserversRideEveryEntryPoint) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  ScenarioSpec spec = SmallScenario({"fixed_keepalive", {{"minutes", 5}}});

  size_t run_minutes = 0;
  CallbackObserver counter([&](const MinuteView& view) {
    (void)view;
    ++run_minutes;
    return true;
  });
  spec.observers = {&counter, nullptr};  // null entries are ignored

  const int window = fleet.trace.num_minutes() - kMinutesPerDay;
  ASSERT_TRUE(RunScenario(fleet.trace, spec).ok());
  EXPECT_EQ(run_minutes, static_cast<size_t>(window));

  run_minutes = 0;
  ScenarioSession session(fleet.trace);
  ASSERT_TRUE(session.Run(spec).ok());
  EXPECT_EQ(run_minutes, static_cast<size_t>(window));

  // OpenScenario hands back the stream un-drained; the observer fires as
  // the caller drives it.
  run_minutes = 0;
  ScenarioStream open = OpenScenario(fleet.trace, spec).ValueOrDie();
  ASSERT_TRUE(open.stream.RunUntil(kMinutesPerDay + 10).ok());
  EXPECT_EQ(run_minutes, 10u);
}

TEST(RunLockstepTest, MatchesPerPolicyRunsOverOneWalk) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  std::vector<ScenarioSpec> specs;
  specs.push_back(SmallScenario({"fixed_keepalive", {{"minutes", 10}}}));
  specs.push_back(SmallScenario({"oracle", {}}));
  specs.push_back(SmallScenario({"fixed_keepalive", {{"minutes", 3}}}));

  const std::vector<ScenarioOutcome> lockstep =
      RunLockstep(fleet.trace, specs).ValueOrDie();
  ASSERT_EQ(lockstep.size(), 3u);
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScenarioOutcome solo =
        RunScenario(fleet.trace, specs[i]).ValueOrDie();
    EXPECT_EQ(lockstep[i].outcome.memory_series,
              solo.outcome.memory_series);
    EXPECT_EQ(lockstep[i].outcome.metrics.total_cold_starts,
              solo.outcome.metrics.total_cold_starts);
    // The trained policy instance comes back, as with RunScenario.
    ASSERT_NE(lockstep[i].policy, nullptr);
    EXPECT_EQ(lockstep[i].policy->name(),
              lockstep[i].outcome.metrics.policy_name);
  }
}

TEST(RunLockstepTest, RejectsMismatchedWindowsNamingSpecAndValues) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  std::vector<ScenarioSpec> specs;
  specs.push_back(SmallScenario({"oracle", {}}));
  specs.push_back(SmallScenario({"oracle", {}}));
  specs[1].options.train_minutes = 2 * kMinutesPerDay;

  const auto result = RunLockstep(fleet.trace, specs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("spec 1"), std::string::npos);
  EXPECT_NE(result.status().message().find("(=2880)"), std::string::npos);
  EXPECT_NE(result.status().message().find("(=1440)"), std::string::npos);
}

TEST(RunLockstepTest, RejectsInvalidSpecNamingSlotAndLabel) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  std::vector<ScenarioSpec> specs;
  specs.push_back(SmallScenario({"oracle", {}}));
  specs.push_back(SmallScenario({"", {}}));
  specs[1].label = "broken";

  const auto result = RunLockstep(fleet.trace, specs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("lockstep spec 1"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("broken"), std::string::npos);

  EXPECT_TRUE(RunLockstep(fleet.trace, {}).ValueOrDie().empty());
}

TEST(RunLockstepTest, SessionLockstepRequiresOneSharedChain) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  ScenarioSession session(fleet.trace);

  std::vector<ScenarioSpec> specs;
  specs.push_back(SmallScenario({"oracle", {}}));
  specs.push_back(SmallScenario({"fixed_keepalive", {{"minutes", 10}}}));
  specs[0].trace.transforms =
      ParseTransformChain("load_scale{factor=2.0}").ValueOrDie();

  const auto mismatch = session.RunLockstep(specs);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("transform chain"),
            std::string::npos);

  // With the chain shared, the lockstep run matches per-spec session runs
  // on the same stressed workload.
  specs[1].trace.transforms = specs[0].trace.transforms;
  const std::vector<ScenarioOutcome> lockstep =
      session.RunLockstep(specs).ValueOrDie();
  ASSERT_EQ(lockstep.size(), 2u);
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScenarioOutcome solo = session.Run(specs[i]).ValueOrDie();
    EXPECT_EQ(lockstep[i].outcome.memory_series,
              solo.outcome.memory_series);
  }
}

TEST(SuiteRunnerSpecBatchTest, ResultsAreIdenticalAtAnyThreadCount) {
  const GeneratedTrace fleet =
      GenerateTrace(SmallFleetConfig()).ValueOrDie();
  SimOptions options;
  options.train_minutes = kMinutesPerDay;

  std::vector<ScenarioSpec> specs;
  for (int theta : {1, 2, 3, 5}) {
    ScenarioSpec spec;
    spec.label = "prewarm=" + std::to_string(theta);
    spec.policy = {"spes", {{"theta_prewarm", theta}}};
    spec.options = options;
    specs.push_back(spec);
  }

  SuiteRunnerOptions serial_options;
  serial_options.num_threads = 1;
  const std::vector<JobResult> serial =
      SuiteRunner(serial_options).Run(fleet.trace, specs);
  SuiteRunnerOptions parallel_options;
  parallel_options.num_threads = 4;
  const std::vector<JobResult> parallel =
      SuiteRunner(parallel_options).Run(fleet.trace, specs);

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_TRUE(serial[i].status.ok());
    EXPECT_TRUE(parallel[i].status.ok());
    EXPECT_EQ(serial[i].outcome.memory_series,
              parallel[i].outcome.memory_series);
    EXPECT_EQ(serial[i].outcome.metrics.total_cold_starts,
              parallel[i].outcome.metrics.total_cold_starts);
  }
}

}  // namespace
}  // namespace spes
