// Unit tests for the observability subsystem (src/obs): the hardened
// JSON / run-log parsers over hostile input, the RunRecorder span and
// event emitters under an injected deterministic clock, and the Chrome
// trace export. The end-to-end golden contract (recorder-enabled runs
// bitwise-identical to disabled) lives in golden_metrics_test.cc.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/recorder.h"
#include "obs/run_log.h"

namespace spes {
namespace {

// ---------------------------------------------------------------------
// Injected clock: RunRecorder::ClockFn is a plain function pointer, so
// the fake advances through a file-static.
// ---------------------------------------------------------------------

double g_fake_now = 0.0;
double FakeClock() { return g_fake_now; }

RunRecorder::Options TestOptions(const std::string& label = "") {
  RunRecorder::Options options;
  options.label = label;
  return options;
}

// ---------------------------------------------------------------------
// JSON parser: hostile input
// ---------------------------------------------------------------------

TEST(JsonParserTest, ParsesScalarsObjectsAndArrays) {
  const JsonValue v =
      ParseJson(R"({"a":1.5,"b":"x","c":[true,false,null],"d":{}})")
          .ValueOrDie();
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(v.Find("a")->number_value, 1.5);
  EXPECT_EQ(v.Find("b")->string_value, "x");
  ASSERT_EQ(v.Find("c")->array_items.size(), 3u);
  EXPECT_TRUE(v.Find("c")->array_items[0].bool_value);
  EXPECT_EQ(v.Find("c")->array_items[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("d")->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, ObjectsPreserveMemberOrder) {
  const JsonValue v =
      ParseJson(R"({"z":1,"a":2,"m":3})").ValueOrDie();
  ASSERT_EQ(v.object_items.size(), 3u);
  EXPECT_EQ(v.object_items[0].first, "z");
  EXPECT_EQ(v.object_items[1].first, "a");
  EXPECT_EQ(v.object_items[2].first, "m");
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs) {
  // \u00e9 decodes to é; \ud83d\ude00 is the surrogate pair for U+1F600.
  const JsonValue v =
      ParseJson(R"({"s":"a\"b\\c\nd\u00e9\ud83d\ude00"})").ValueOrDie();
  EXPECT_EQ(v.Find("s")->string_value,
            std::string("a\"b\\c\nd\xC3\xA9\xF0\x9F\x98\x80"));
}

TEST(JsonParserTest, LoneSurrogateDoesNotCrash) {
  // A high surrogate with no low half is hostile but must parse (the
  // code point is encoded as-is) — never a crash.
  const Result<JsonValue> v = ParseJson(R"({"s":"\ud800x"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
}

TEST(JsonParserTest, RejectsMalformedInput) {
  const char* hostile[] = {
      "",                        // empty
      "{",                       // unterminated object
      "[1,2",                    // unterminated array
      "{\"a\":}",                // missing value
      "{\"a\" 1}",               // missing colon
      "{\"a\":1,}",              // trailing comma
      "\"unterminated",          // unterminated string
      "\"bad\\qescape\"",        // invalid escape
      "\"tr\\u12\"",             // truncated \u
      "1e999",                   // overflow
      "nul",                     // truncated literal
      "1 2",                     // trailing bytes
      "{\"a\":1}x",              // trailing garbage
      "\"raw\ncontrol\"",        // raw control char in string
      "--5",                     // malformed number
  };
  for (const char* text : hostile) {
    const Result<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_FALSE(parsed.status().message().empty());
  }
}

TEST(JsonParserTest, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  const Result<JsonValue> parsed = ParseJson(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("deep"), std::string::npos);
}

// ---------------------------------------------------------------------
// Run-log parser: structure and hostile input
// ---------------------------------------------------------------------

constexpr char kHeader[] = "{\"ev\":\"run_start\",\"schema\":1,\"t\":0}\n";

TEST(RunLogParserTest, EmptyLogIsAnError) {
  const Result<ParsedRunLog> parsed = ParseRunLog("");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("run_start"), std::string::npos);
}

TEST(RunLogParserTest, HeaderOnlyLogParses) {
  const ParsedRunLog log = ParseRunLog(kHeader).ValueOrDie();
  EXPECT_EQ(log.schema, kRunLogSchemaVersion);
  EXPECT_EQ(log.num_events, 1u);
  EXPECT_FALSE(log.saw_run_end);  // truncated, still analyzable
}

TEST(RunLogParserTest, RejectsBadSchemaVersionWithLineNumber) {
  const Result<ParsedRunLog> parsed =
      ParseRunLog("{\"ev\":\"run_start\",\"schema\":99,\"t\":0}\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("schema version 99"),
            std::string::npos);
}

TEST(RunLogParserTest, RejectsMissingHeader) {
  const Result<ParsedRunLog> parsed = ParseRunLog(
      "{\"ev\":\"span\",\"t\":0,\"dur\":1,\"name\":\"train\"}\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("first event must be run_start"),
            std::string::npos);
}

TEST(RunLogParserTest, RejectsDuplicateHeader) {
  const Result<ParsedRunLog> parsed =
      ParseRunLog(std::string(kHeader) + kHeader);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos);
}

TEST(RunLogParserTest, RejectsCorruptJsonLineWithLineNumber) {
  const Result<ParsedRunLog> parsed =
      ParseRunLog(std::string(kHeader) + "{not json at all}\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(RunLogParserTest, RejectsLineTruncatedMidJson) {
  // A writer that died mid-line leaves malformed JSON — a hard error
  // (the line number tells the operator where the log went bad).
  const Result<ParsedRunLog> parsed = ParseRunLog(
      std::string(kHeader) + "{\"ev\":\"heartbeat\",\"t\":0.1,\"minu");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(RunLogParserTest, RejectsWrongTypeAndBadOps) {
  const char* hostile[] = {
      // span with a non-string name
      "{\"ev\":\"span\",\"t\":0,\"dur\":1,\"name\":5}",
      // heartbeat with a negative counter
      "{\"ev\":\"heartbeat\",\"t\":0,\"minute\":1,"
      "\"invocations\":-3,\"cold_starts\":0}",
      // heartbeat with a fractional minute
      "{\"ev\":\"heartbeat\",\"t\":0,\"minute\":1.5,"
      "\"invocations\":1,\"cold_starts\":0}",
      // unknown cache / checkpoint ops
      "{\"ev\":\"cache\",\"t\":0,\"op\":\"evict\",\"key\":\"k\"}",
      "{\"ev\":\"checkpoint\",\"t\":0,\"op\":\"zap\",\"slot\":0,"
      "\"cursor\":1}",
      // event line that is a bare array, not an object
      "[1,2,3]",
      // event without an "ev" kind
      "{\"t\":0.5}",
  };
  for (const char* line : hostile) {
    const Result<ParsedRunLog> parsed =
        ParseRunLog(std::string(kHeader) + line + "\n");
    EXPECT_FALSE(parsed.ok()) << "accepted: " << line;
    EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
        << parsed.status().message();
  }
}

TEST(RunLogParserTest, SkipsUnknownEventKinds) {
  const ParsedRunLog log =
      ParseRunLog(std::string(kHeader) +
                  "{\"ev\":\"mystery\",\"t\":0.5,\"payload\":[1,2]}\n")
          .ValueOrDie();
  EXPECT_EQ(log.num_events, 2u);
  EXPECT_TRUE(log.spans.empty());
}

TEST(RunLogParserTest, BlankLinesAreTolerated) {
  const ParsedRunLog log =
      ParseRunLog(std::string(kHeader) + "\n" +
                  "{\"ev\":\"cache\",\"t\":1,\"op\":\"hit\",\"key\":\"k\"}\n")
          .ValueOrDie();
  EXPECT_EQ(log.num_events, 2u);
  EXPECT_EQ(log.cache.hits, 1u);
}

TEST(RunLogParserTest, AggregatesTypedEvents) {
  const std::string text =
      std::string(kHeader) +
      "{\"ev\":\"config\",\"t\":0,\"key\":\"policy\",\"value\":\"spes\"}\n"
      "{\"ev\":\"span\",\"t\":0.5,\"dur\":0.25,\"name\":\"train\","
      "\"slot\":2,\"lane\":3,\"detail\":\"SPES\"}\n"
      "{\"ev\":\"heartbeat\",\"t\":1,\"slot\":2,\"lane\":1,\"minute\":60,"
      "\"invocations\":100,\"cold_starts\":5,"
      "\"loaded_instance_minutes\":40,\"wasted_memory_minutes\":7,"
      "\"loaded\":12,\"queue_depth\":4}\n"
      "{\"ev\":\"cache\",\"t\":1,\"op\":\"hit\",\"key\":\"a\"}\n"
      "{\"ev\":\"cache\",\"t\":1,\"op\":\"miss\",\"key\":\"b\"}\n"
      "{\"ev\":\"cache\",\"t\":1,\"op\":\"pack\",\"key\":\"b\"}\n"
      "{\"ev\":\"decoder\",\"t\":2,\"slot\":0,\"blocks\":3,"
      "\"invocations\":999}\n"
      "{\"ev\":\"checkpoint\",\"t\":2,\"op\":\"save\",\"slot\":0,"
      "\"cursor\":120}\n"
      "{\"ev\":\"checkpoint\",\"t\":2,\"op\":\"restore\",\"slot\":0,"
      "\"cursor\":120}\n"
      "{\"ev\":\"run_end\",\"t\":3,\"spans\":1,\"events\":10,"
      "\"duration_seconds\":3.5}\n";
  const ParsedRunLog log = ParseRunLog(text).ValueOrDie();

  ASSERT_EQ(log.config.size(), 1u);
  EXPECT_EQ(log.config[0].first, "policy");
  EXPECT_EQ(log.config[0].second, "spes");

  ASSERT_EQ(log.spans.size(), 1u);
  EXPECT_EQ(log.spans[0].name, "train");
  EXPECT_EQ(log.spans[0].detail, "SPES");
  EXPECT_EQ(log.spans[0].slot, 2);
  EXPECT_EQ(log.spans[0].lane, 3);
  EXPECT_DOUBLE_EQ(log.spans[0].t, 0.5);
  EXPECT_DOUBLE_EQ(log.spans[0].dur, 0.25);

  ASSERT_EQ(log.heartbeats.size(), 1u);
  const HeartbeatRecord& hb = log.heartbeats[0];
  EXPECT_EQ(hb.minute, 60);
  EXPECT_EQ(hb.invocations, 100u);
  EXPECT_EQ(hb.cold_starts, 5u);
  EXPECT_EQ(hb.loaded_instance_minutes, 40u);
  EXPECT_EQ(hb.wasted_memory_minutes, 7u);
  EXPECT_EQ(hb.loaded_instances, 12u);
  EXPECT_EQ(hb.queue_depth, 4u);

  EXPECT_EQ(log.cache.hits, 1u);
  EXPECT_EQ(log.cache.misses, 1u);
  EXPECT_EQ(log.cache.packs, 1u);
  EXPECT_EQ(log.decoder.blocks, 3u);
  EXPECT_EQ(log.decoder.invocations, 999u);
  EXPECT_EQ(log.checkpoint_saves, 1u);
  EXPECT_EQ(log.checkpoint_restores, 1u);
  EXPECT_TRUE(log.saw_run_end);
  EXPECT_DOUBLE_EQ(log.duration_seconds, 3.5);
  EXPECT_EQ(log.num_events, 11u);
}

TEST(RunLogParserTest, OptionalFieldsDefaultWhenAbsent) {
  const ParsedRunLog log =
      ParseRunLog(std::string(kHeader) +
                  "{\"ev\":\"heartbeat\",\"t\":1,\"minute\":5,"
                  "\"invocations\":1,\"cold_starts\":0}\n")
          .ValueOrDie();
  ASSERT_EQ(log.heartbeats.size(), 1u);
  EXPECT_EQ(log.heartbeats[0].slot, 0);
  EXPECT_EQ(log.heartbeats[0].lane, 0);
  EXPECT_EQ(log.heartbeats[0].queue_depth, 0u);
}

// ---------------------------------------------------------------------
// RunRecorder under the fake clock
// ---------------------------------------------------------------------

TEST(RunRecorderTest, EmitsHeaderLabelAndRunEnd) {
  g_fake_now = 10.0;
  StringLogSink sink;
  {
    RunRecorder recorder(&sink, TestOptions("golden run"), &FakeClock);
    g_fake_now = 12.5;
    recorder.Finish();
  }
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_EQ(log.schema, kRunLogSchemaVersion);
  EXPECT_EQ(log.label, "golden run");
  EXPECT_TRUE(log.saw_run_end);
  EXPECT_DOUBLE_EQ(log.duration_seconds, 2.5);
  EXPECT_EQ(log.num_events, 2u);
}

TEST(RunRecorderTest, SpanTimesComeFromTheInjectedClock) {
  g_fake_now = 100.0;
  StringLogSink sink;
  RunRecorder recorder(&sink, TestOptions(), &FakeClock);
  g_fake_now = 101.0;
  const uint64_t outer = recorder.BeginSpan("simulate", 1, 2, "spes");
  g_fake_now = 101.25;
  const uint64_t inner = recorder.BeginSpan("finish", 1, 0);
  g_fake_now = 101.75;
  recorder.EndSpan(inner);
  g_fake_now = 103.0;
  recorder.EndSpan(outer);
  recorder.Finish();

  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  ASSERT_EQ(log.spans.size(), 2u);
  // Spans close inner-first; timestamps are relative to construction.
  EXPECT_EQ(log.spans[0].name, "finish");
  EXPECT_DOUBLE_EQ(log.spans[0].t, 1.25);
  EXPECT_DOUBLE_EQ(log.spans[0].dur, 0.5);
  EXPECT_EQ(log.spans[1].name, "simulate");
  EXPECT_EQ(log.spans[1].detail, "spes");
  EXPECT_EQ(log.spans[1].slot, 1);
  EXPECT_EQ(log.spans[1].lane, 2);
  EXPECT_DOUBLE_EQ(log.spans[1].t, 1.0);
  EXPECT_DOUBLE_EQ(log.spans[1].dur, 2.0);
  // spans() snapshot matches what the log records.
  EXPECT_EQ(recorder.spans(), log.spans);
}

TEST(RunRecorderTest, UnknownSpanTokensAreIgnored) {
  g_fake_now = 0.0;
  StringLogSink sink;
  RunRecorder recorder(&sink, TestOptions(), &FakeClock);
  recorder.EndSpan(12345);  // never opened
  recorder.EndSpan(0);      // null token
  recorder.Finish();
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_TRUE(log.spans.empty());
}

TEST(RunRecorderTest, EventsAfterFinishAreDropped) {
  g_fake_now = 0.0;
  StringLogSink sink;
  RunRecorder recorder(&sink, TestOptions(), &FakeClock);
  recorder.Finish();
  recorder.Config("k", "v");
  recorder.CacheEvent("hit", "k");
  recorder.EmitHeartbeat({});
  recorder.EndSpan(recorder.BeginSpan("late", 0, 0));
  recorder.Finish();  // idempotent

  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_EQ(log.num_events, 2u);  // run_start + run_end only
  EXPECT_TRUE(log.config.empty());
  EXPECT_EQ(log.cache.hits, 0u);
  EXPECT_TRUE(log.heartbeats.empty());
}

TEST(RunRecorderTest, HeartbeatStrideIsClampedToOne) {
  RunRecorder::Options options;
  options.heartbeat_minute_stride = -5;
  StringLogSink sink;
  RunRecorder recorder(&sink, options, &FakeClock);
  EXPECT_EQ(recorder.heartbeat_minute_stride(), 1);
}

TEST(RunRecorderTest, ScopedSpanClosesOnDestructionAndIsMoveSafe) {
  g_fake_now = 0.0;
  StringLogSink sink;
  RunRecorder recorder(&sink, TestOptions(), &FakeClock);
  {
    ScopedSpan null_span(nullptr, "noop", 0, 0);  // branch-free no-op
    ScopedSpan span(&recorder, "train", 0, 1, "spes");
    g_fake_now = 1.0;
    ScopedSpan moved = std::move(span);
    moved.End();
    moved.End();  // idempotent
    ScopedSpan assigned;
    assigned = ScopedSpan(&recorder, "pack", 0, 0);
    g_fake_now = 2.0;
  }  // `assigned` closes here
  recorder.Finish();
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  ASSERT_EQ(log.spans.size(), 2u);
  EXPECT_EQ(log.spans[0].name, "train");
  EXPECT_DOUBLE_EQ(log.spans[0].dur, 1.0);
  EXPECT_EQ(log.spans[1].name, "pack");
  EXPECT_DOUBLE_EQ(log.spans[1].t, 1.0);
  EXPECT_DOUBLE_EQ(log.spans[1].dur, 1.0);
}

TEST(RunRecorderTest, DestructorFinishesTheLog) {
  StringLogSink sink;
  { RunRecorder recorder(&sink, TestOptions(), &FakeClock); }
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_TRUE(log.saw_run_end);
}

// ---------------------------------------------------------------------
// File sink and file reader
// ---------------------------------------------------------------------

TEST(FileLogSinkTest, RoundTripsThroughDisk) {
  const std::string path =
      testing::TempDir() + "/obs_test_roundtrip.jsonl";
  {
    FileLogSink sink(path);
    ASSERT_TRUE(sink.ok());
    g_fake_now = 0.0;
    RunRecorder recorder(&sink, TestOptions("disk"), &FakeClock);
    recorder.CacheEvent("miss", "gen{seed=99}");
    recorder.Finish();
  }
  const ParsedRunLog log = ReadRunLogFile(path).ValueOrDie();
  EXPECT_EQ(log.label, "disk");
  EXPECT_EQ(log.cache.misses, 1u);
  std::remove(path.c_str());
}

TEST(FileLogSinkTest, UnopenablePathFailsSoftly) {
  FileLogSink sink("/nonexistent-dir-xyz/run.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.WriteLine("{}");  // dropped, not a crash
  sink.Flush();
}

TEST(ReadRunLogFileTest, MissingFileIsAnIOError) {
  const Result<ParsedRunLog> parsed =
      ReadRunLogFile("/nonexistent-dir-xyz/run.jsonl");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST(ChromeTraceTest, ExportsTracksAndCompleteEvents) {
  std::vector<SpanRecord> spans;
  spans.push_back({"train", "spes", 0, 1, 0.5, 0.25});
  spans.push_back({"simulate", "", 2, 3, 1.0, 2.0});
  spans.push_back({"finish", "", 0, 1, 3.0, 0.125});  // track repeats

  const std::string json = ChromeTraceJson(spans);
  const JsonValue v = ParseJson(json).ValueOrDie();
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.Find("displayTimeUnit")->string_value, "ms");

  const JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 distinct (slot, lane) tracks -> 2 metadata events + 3 spans.
  ASSERT_EQ(events->array_items.size(), 5u);

  const JsonValue& meta = events->array_items[0];
  EXPECT_EQ(meta.Find("ph")->string_value, "M");
  EXPECT_DOUBLE_EQ(meta.Find("tid")->number_value, 0 * 1024 + 1);
  EXPECT_EQ(meta.Find("args")->Find("name")->string_value,
            "slot 0 / lane 1");
  EXPECT_DOUBLE_EQ(events->array_items[1].Find("tid")->number_value,
                   2 * 1024 + 3);

  const JsonValue& x = events->array_items[2];
  EXPECT_EQ(x.Find("ph")->string_value, "X");
  EXPECT_EQ(x.Find("name")->string_value, "train");
  EXPECT_DOUBLE_EQ(x.Find("ts")->number_value, 0.5e6);   // microseconds
  EXPECT_DOUBLE_EQ(x.Find("dur")->number_value, 0.25e6);
  EXPECT_EQ(x.Find("args")->Find("detail")->string_value, "spes");
  // Detail-less spans omit args entirely.
  EXPECT_EQ(events->array_items[3].Find("args"), nullptr);
}

TEST(ChromeTraceTest, EmptySpanListIsAValidDocument) {
  const JsonValue v = ParseJson(ChromeTraceJson({})).ValueOrDie();
  EXPECT_TRUE(v.Find("traceEvents")->array_items.empty());
}

// ---------------------------------------------------------------------
// Monotonic clock sanity
// ---------------------------------------------------------------------

TEST(ClockTest, MonotonicSecondsNeverGoesBackwards) {
  const double a = MonotonicSeconds();
  const double b = MonotonicSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace spes
