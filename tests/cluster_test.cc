// Cluster subsystem tests: RouterRegistry schemas and errors, the
// node-event grammar, ClusterSpec validation, routing semantics of the
// built-in strategies, per-node capacity pressure, node lifecycle events,
// and the Scenario/SuiteRunner integration points. The exact-counter
// cluster goldens live in golden_metrics_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/router.h"
#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/observers.h"
#include "sim/scenario.h"
#include "trace/trace.h"

namespace spes {
namespace {

// ---------------------------------------------------------------------
// RouterRegistry
// ---------------------------------------------------------------------

TEST(RouterRegistryTest, BuiltinRoutersAreRegistered) {
  const RouterRegistry& registry = RouterRegistry::Global();
  EXPECT_TRUE(registry.Contains("hash"));
  EXPECT_TRUE(registry.Contains("least_loaded"));
  EXPECT_TRUE(registry.Contains("locality"));
  const std::vector<std::string> names = registry.Names();
  EXPECT_EQ(names, (std::vector<std::string>{"hash", "least_loaded",
                                             "locality"}));
  const RouterRegistry::Entry* entry = registry.Find("locality");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->params.size(), 2u);
  EXPECT_EQ(entry->params[0].name, "pressure");
}

TEST(RouterRegistryTest, UnknownRouterListsAlternatives) {
  const Result<std::unique_ptr<Router>> result =
      RouterRegistry::Global().Create({"round_robin", {}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("hash, least_loaded, locality"),
            std::string::npos);
}

TEST(RouterRegistryTest, RejectsUnknownAndIllTypedParameters) {
  const Result<std::unique_ptr<Router>> unknown =
      RouterRegistry::Global().Create({"hash", {{"buckets", 4}}});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().message().find("buckets"), std::string::npos);

  const Result<std::unique_ptr<Router>> ill_typed =
      RouterRegistry::Global().Create({"locality", {{"pressure", "high"}}});
  ASSERT_FALSE(ill_typed.ok());
  EXPECT_EQ(ill_typed.status().code(), StatusCode::kInvalidArgument);

  const Result<std::unique_ptr<Router>> out_of_domain =
      RouterRegistry::Global().Create({"locality", {{"pressure", 1.5}}});
  ASSERT_FALSE(out_of_domain.ok());
  EXPECT_NE(out_of_domain.status().message().find("pressure"),
            std::string::npos);
}

TEST(RouterRegistryTest, SpecStringRoundTrips) {
  const RouterSpec spec =
      ParseRouterSpec("locality{pressure=0.9,seed=7}").ValueOrDie();
  EXPECT_EQ(spec.name, "locality");
  EXPECT_EQ(FormatRouterSpec(spec), "locality{pressure=0.9,seed=7}");
  const std::unique_ptr<Router> router =
      RouterRegistry::Global().CreateFromString("least_loaded").ValueOrDie();
  EXPECT_EQ(router->name(), "least_loaded");
}

// ---------------------------------------------------------------------
// Router semantics (routers are pure functions of the RoutingContext)
// ---------------------------------------------------------------------

std::vector<NodeView> MakeViews(const std::vector<size_t>& loads,
                                int capacity = 0) {
  std::vector<NodeView> views;
  for (size_t k = 0; k < loads.size(); ++k) {
    views.push_back({static_cast<int>(k), true, capacity, loads[k]});
  }
  return views;
}

RoutingContext MakeContext(const std::string& name,
                           const std::vector<NodeView>& views,
                           int previous = -1) {
  RoutingContext context;
  context.function = 0;
  context.function_name = &name;
  context.previous_node = previous;
  context.nodes = &views;
  return context;
}

TEST(RouterSemanticsTest, HashIsStableAndRespectsRoutableSet) {
  const std::unique_ptr<Router> router =
      RouterRegistry::Global().CreateFromString("hash").ValueOrDie();
  std::vector<NodeView> views = MakeViews({0, 0, 0, 0});
  const std::string name = "fn-abc";
  const int first = router->Route(MakeContext(name, views));
  EXPECT_EQ(router->Route(MakeContext(name, views)), first);  // stable
  // Previous assignment is irrelevant: hash is purely functional.
  EXPECT_EQ(router->Route(MakeContext(name, views, (first + 1) % 4)), first);
  // Knocking the chosen node out re-routes to a still-routable node.
  views[static_cast<size_t>(first)].routable = false;
  const int rerouted = router->Route(MakeContext(name, views));
  EXPECT_NE(rerouted, first);
  EXPECT_TRUE(views[static_cast<size_t>(rerouted)].routable);
}

TEST(RouterSemanticsTest, HashSpreadsDistinctNames) {
  const std::unique_ptr<Router> router =
      RouterRegistry::Global().CreateFromString("hash").ValueOrDie();
  const std::vector<NodeView> views = MakeViews({0, 0, 0, 0});
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 64; ++i) {
    const std::string name = "fn-" + std::to_string(i);
    ++hits[static_cast<size_t>(router->Route(MakeContext(name, views)))];
  }
  for (int h : hits) EXPECT_GT(h, 0);  // every node gets some share
}

TEST(RouterSemanticsTest, LeastLoadedPicksMinimumAndStaysSticky) {
  const std::unique_ptr<Router> router =
      RouterRegistry::Global().CreateFromString("least_loaded").ValueOrDie();
  const std::string name = "fn";
  const std::vector<NodeView> views = MakeViews({5, 2, 2, 9});
  // Minimum load, ties to the lowest id.
  EXPECT_EQ(router->Route(MakeContext(name, views)), 1);
  // A live previous assignment wins regardless of load.
  EXPECT_EQ(router->Route(MakeContext(name, views, 3)), 3);
}

TEST(RouterSemanticsTest, LocalityStaysUntilPressuredThenSpills) {
  const std::unique_ptr<Router> router = RouterRegistry::Global()
                                             .CreateFromString(
                                                 "locality{pressure=0.8}")
                                             .ValueOrDie();
  const std::string name = "fn";
  // Home node 0 under threshold (7 < 0.8 * 10): stay.
  EXPECT_EQ(router->Route(MakeContext(name, MakeViews({7, 0}, 10), 0)), 0);
  // Home node at threshold (8 >= 0.8 * 10): spill to the least loaded
  // node with headroom.
  EXPECT_EQ(router->Route(MakeContext(name, MakeViews({8, 3}, 10), 0)), 1);
  // Every node pressured: overall least loaded wins.
  EXPECT_EQ(router->Route(MakeContext(name, MakeViews({9, 8}, 10), 0)), 1);
  // Uncapped nodes are never pressured.
  EXPECT_EQ(router->Route(MakeContext(name, MakeViews({900, 0}, 0), 0)), 0);
}

// ---------------------------------------------------------------------
// Node-event grammar
// ---------------------------------------------------------------------

TEST(NodeEventTest, ParsesEveryKind) {
  const NodeEvent fail = ParseNodeEvent("fail{at=2980,node=1}").ValueOrDie();
  EXPECT_EQ(fail.kind, NodeEvent::Kind::kFail);
  EXPECT_EQ(fail.minute, 2980);
  EXPECT_EQ(fail.node, 1);

  const NodeEvent drain = ParseNodeEvent("drain{at=10,node=0}").ValueOrDie();
  EXPECT_EQ(drain.kind, NodeEvent::Kind::kDrain);

  const NodeEvent add = ParseNodeEvent("add{at=3000,capacity=40}").ValueOrDie();
  EXPECT_EQ(add.kind, NodeEvent::Kind::kAdd);
  EXPECT_EQ(add.capacity, 40);
  const NodeEvent add_default = ParseNodeEvent("add{at=3000}").ValueOrDie();
  EXPECT_EQ(add_default.capacity, -1);  // cluster default
}

TEST(NodeEventTest, RejectsBadEvents) {
  EXPECT_FALSE(ParseNodeEvent("reboot{at=10,node=0}").ok());
  EXPECT_FALSE(ParseNodeEvent("fail{node=0}").ok());          // missing at
  EXPECT_FALSE(ParseNodeEvent("fail{at=10}").ok());           // missing node
  EXPECT_FALSE(ParseNodeEvent("add{at=10,node=2}").ok());     // add has no node
  EXPECT_FALSE(ParseNodeEvent("fail{at=10,node=0,capacity=4}").ok());
  EXPECT_FALSE(ParseNodeEvent("fail{at=-1,node=0}").ok());
  EXPECT_FALSE(ParseNodeEvent("fail{at=ten,node=0}").ok());   // ill-typed
  // Values past INT_MAX are rejected, not silently truncated.
  EXPECT_FALSE(ParseNodeEvent("fail{at=4294967296,node=0}").ok());
  EXPECT_FALSE(ParseNodeEvent("add{at=10,capacity=4294967296}").ok());
  const Status missing = ParseNodeEvent("drain{at=10}").status();
  EXPECT_NE(missing.message().find("node"), std::string::npos);
}

TEST(NodeEventTest, TimelineRoundTrips) {
  const std::string text =
      "drain{at=2900,node=0} | fail{at=2980,node=1} | add{at=3000,capacity=8}";
  const std::vector<NodeEvent> events =
      ParseNodeEventTimeline(text).ValueOrDie();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(FormatNodeEventTimeline(events), text);
  EXPECT_TRUE(ParseNodeEventTimeline("  ").ValueOrDie().empty());
  EXPECT_FALSE(ParseNodeEventTimeline("fail{at=1,node=0} | ").ok());
}

// ---------------------------------------------------------------------
// ClusterSpec validation
// ---------------------------------------------------------------------

TEST(ClusterSpecTest, ValidatesStructure) {
  ClusterSpec spec;
  EXPECT_TRUE(ValidateClusterSpec(spec).ok());

  spec.nodes = 0;
  EXPECT_NE(ValidateClusterSpec(spec).message().find("nodes"),
            std::string::npos);
  spec.nodes = 2;
  spec.node_capacity = -1;
  EXPECT_NE(ValidateClusterSpec(spec).message().find("node_capacity"),
            std::string::npos);
}

TEST(ClusterSpecTest, ValidatesEventTimelineAgainstEvolvingNodeSet) {
  ClusterSpec spec;
  spec.nodes = 2;

  // Sorted, in-range, alive targets: OK — including a target id that
  // only exists because an add precedes it.
  spec.events = ParseNodeEventTimeline(
                    "drain{at=100,node=0} | add{at=200} | fail{at=300,node=2}")
                    .ValueOrDie();
  EXPECT_TRUE(ValidateClusterSpec(spec).ok());

  // Unsorted.
  spec.events =
      ParseNodeEventTimeline("fail{at=200,node=0} | drain{at=100,node=1}")
          .ValueOrDie();
  EXPECT_NE(ValidateClusterSpec(spec).message().find("sorted"),
            std::string::npos);

  // Out-of-range target.
  spec.events = ParseNodeEventTimeline("fail{at=100,node=5}").ValueOrDie();
  EXPECT_NE(ValidateClusterSpec(spec).message().find("out of range"),
            std::string::npos);

  // Double drain / fail-after-fail.
  spec.events =
      ParseNodeEventTimeline("drain{at=100,node=0} | drain{at=200,node=0}")
          .ValueOrDie();
  EXPECT_NE(ValidateClusterSpec(spec).message().find("already draining"),
            std::string::npos);
  spec.events =
      ParseNodeEventTimeline("fail{at=100,node=0} | fail{at=200,node=0}")
          .ValueOrDie();
  EXPECT_NE(ValidateClusterSpec(spec).message().find("already failed"),
            std::string::npos);

  // Removing the last routable node.
  spec.events =
      ParseNodeEventTimeline("fail{at=100,node=0} | drain{at=200,node=1}")
          .ValueOrDie();
  EXPECT_NE(ValidateClusterSpec(spec).message().find("no routable node"),
            std::string::npos);
  // A draining node may still fail.
  spec.events = ParseNodeEventTimeline(
                    "add{at=50} | drain{at=100,node=0} | fail{at=200,node=0}")
                    .ValueOrDie();
  EXPECT_TRUE(ValidateClusterSpec(spec).ok());
}

// ---------------------------------------------------------------------
// ClusterSession semantics on hand-built fleets
// ---------------------------------------------------------------------

/// A fleet where function f arrives every `period[f]` minutes (offset so
/// minute 0 counts arrivals for every function).
Trace MakeFleet(const std::vector<int>& periods, int minutes) {
  Trace trace(minutes);
  for (size_t f = 0; f < periods.size(); ++f) {
    FunctionTrace function;
    function.meta.owner = "owner";
    function.meta.app = "app" + std::to_string(f);
    function.meta.name = "fn" + std::to_string(f);
    function.meta.trigger = TriggerType::kHttp;
    function.counts.assign(static_cast<size_t>(minutes), 0);
    for (int t = 0; t < minutes; t += periods[f]) {
      function.counts[static_cast<size_t>(t)] = 1;
    }
    trace.Add(std::move(function)).CheckOK();
  }
  return trace;
}

ScenarioSpec KeepAliveClusterSpec(int nodes, const std::string& router) {
  ScenarioSpec spec;
  spec.policy = ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  spec.options.train_minutes = 0;
  spec.cluster = ClusterSpec{};
  spec.cluster->nodes = nodes;
  spec.cluster->router = ParseRouterSpec(router).ValueOrDie();
  return spec;
}

TEST(ClusterSessionTest, LeastLoadedSpreadsSimultaneousArrivals) {
  // Two always-on functions arrive in the same minute: the projected
  // load bump routes them to different nodes, deterministically f0 ->
  // node 0, f1 -> node 1.
  const Trace trace = MakeFleet({1, 1}, 60);
  const ScenarioOutcome run =
      RunScenario(trace, KeepAliveClusterSpec(2, "least_loaded"))
          .ValueOrDie();
  ASSERT_NE(run.cluster, nullptr);
  EXPECT_EQ(run.cluster->nodes[0].sim.metrics.total_invocations, 60u);
  EXPECT_EQ(run.cluster->nodes[1].sim.metrics.total_invocations, 60u);
  EXPECT_EQ(run.cluster->nodes[0].sim.accounts[0].invocations, 60u);
  EXPECT_EQ(run.cluster->nodes[1].sim.accounts[1].invocations, 60u);
  // One cold start each, then sticky and warm.
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 2u);
  EXPECT_EQ(run.cluster->reroutes, 0u);
}

TEST(ClusterSessionTest, CapacityPressureEvictsIdleInstancesLru) {
  // One node, capacity 1: f0 arrives every minute (executing, pinned,
  // never evictable), f1 every 3rd minute. The keep-alive policy holds
  // f1 warm, but pressure evicts it the first idle minute, so every f1
  // arrival cold-starts.
  const Trace trace = MakeFleet({1, 3}, 90);
  ScenarioSpec spec = KeepAliveClusterSpec(1, "hash");
  spec.cluster->node_capacity = 1;
  const ScenarioOutcome run = RunScenario(trace, spec).ValueOrDie();
  ASSERT_NE(run.cluster, nullptr);
  const NodeOutcome& node = run.cluster->nodes[0];
  EXPECT_EQ(node.sim.accounts[0].cold_starts, 1u);  // f0 stays resident
  EXPECT_EQ(node.sim.accounts[1].cold_starts, 30u);  // every arrival cold
  EXPECT_EQ(node.pressure_evictions, 30u);  // evicted after each arrival
  // The arrival minute itself holds both instances (executions occupy
  // memory above capacity); every other minute fits the cap.
  EXPECT_EQ(node.sim.metrics.max_memory, 2u);
}

TEST(ClusterSessionTest, UncappedNodesNeverPressureEvict) {
  const Trace trace = MakeFleet({1, 3}, 90);
  const ScenarioOutcome run =
      RunScenario(trace, KeepAliveClusterSpec(1, "hash")).ValueOrDie();
  EXPECT_EQ(run.cluster->nodes[0].pressure_evictions, 0u);
  EXPECT_EQ(run.cluster->nodes[0].sim.accounts[1].cold_starts, 1u);
}

TEST(ClusterSessionTest, DrainKeepsWarmFunctionsAndFailDropsThem) {
  // f0 and f1 land on different nodes (least_loaded). Draining f1's node
  // mid-window keeps serving the warm instance there — no new cold
  // starts; failing it instead forces a re-route plus a cold start.
  const Trace trace = MakeFleet({1, 1}, 120);

  ScenarioSpec drain = KeepAliveClusterSpec(2, "least_loaded");
  drain.cluster->events =
      ParseNodeEventTimeline("drain{at=60,node=1}").ValueOrDie();
  const ScenarioOutcome drained = RunScenario(trace, drain).ValueOrDie();
  EXPECT_EQ(drained.outcome.metrics.total_cold_starts, 2u);  // initial only
  EXPECT_EQ(drained.cluster->reroutes, 0u);
  EXPECT_EQ(drained.cluster->nodes[1].final_state, "draining");
  EXPECT_EQ(drained.cluster->nodes[1].sim.metrics.total_invocations, 120u);

  ScenarioSpec fail = KeepAliveClusterSpec(2, "least_loaded");
  fail.cluster->events =
      ParseNodeEventTimeline("fail{at=60,node=1}").ValueOrDie();
  const ScenarioOutcome failed = RunScenario(trace, fail).ValueOrDie();
  EXPECT_EQ(failed.outcome.metrics.total_cold_starts, 3u);  // one re-route
  EXPECT_EQ(failed.cluster->reroutes, 1u);
  EXPECT_EQ(failed.cluster->nodes[1].sim.metrics.total_invocations, 60u);
  EXPECT_EQ(failed.cluster->nodes[0].reroutes_in, 1u);
  // After the fail, node 0 serves both functions.
  EXPECT_EQ(failed.cluster->nodes[0].sim.metrics.total_invocations, 180u);
}

TEST(ClusterSessionTest, AddedNodeJoinsAndServesAfterItsEvent) {
  // A hash cluster growing 1 -> 2 mid-window: the mod-N rehash moves a
  // share of the fleet onto the new node (each move is a re-route with a
  // cold start on the new home).
  const Trace trace = MakeFleet({1, 1, 1, 1, 1, 1, 1, 1}, 120);
  ScenarioSpec spec = KeepAliveClusterSpec(1, "hash");
  spec.cluster->events = ParseNodeEventTimeline("add{at=60}").ValueOrDie();
  const ScenarioOutcome run = RunScenario(trace, spec).ValueOrDie();
  ASSERT_EQ(run.cluster->nodes.size(), 2u);
  const NodeOutcome& joined = run.cluster->nodes[1];
  EXPECT_EQ(joined.final_state, "routable");
  EXPECT_GT(joined.sim.metrics.total_invocations, 0u);
  EXPECT_EQ(joined.reroutes_in, run.cluster->reroutes);
  // Before its join minute the node held nothing.
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(joined.sim.memory_series[static_cast<size_t>(i)], 0u) << i;
  }
  // Work is conserved across the resize.
  EXPECT_EQ(run.outcome.metrics.total_invocations, 8u * 120u);
}

TEST(ClusterSessionTest, SharedDecodeAndObserverLanes) {
  const Trace trace = MakeFleet({1, 2}, 30);
  ClusterSession session =
      ClusterSession::Create(
          trace, ClusterSpec{2, 0, {"least_loaded", {}}, {}},
          ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie(),
          SimOptions{0, 0, true, {}})
          .ValueOrDie();
  TimeSeriesObserver series;
  size_t minute_views = 0;
  CallbackObserver counter([&](const MinuteView& view) {
    ++minute_views;
    EXPECT_LT(view.lane, 2u);
    return true;
  });
  session.AddObserver(&series);
  session.AddObserver(&counter);
  const ClusterOutcome outcome = session.Finish().ValueOrDie();
  // ONE arrival decode per minute serves both nodes...
  EXPECT_EQ(session.minutes_decoded(), 30);
  // ...while observers see one view per live node per minute.
  EXPECT_EQ(minute_views, 60u);
  ASSERT_EQ(series.series().size(), 2u);
  EXPECT_EQ(series.series()[0].size(), 30u);
  EXPECT_EQ(outcome.fleet.metrics.total_invocations, 30u + 15u);
}

TEST(ClusterSessionTest, ObserverEarlyStopHaltsTheSession) {
  const Trace trace = MakeFleet({1}, 100);
  ClusterSession session =
      ClusterSession::Create(
          trace, ClusterSpec{},
          ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie(),
          SimOptions{0, 0, true, {}})
          .ValueOrDie();
  CallbackObserver stopper(
      [](const MinuteView& view) { return view.minute < 10; });
  session.AddObserver(&stopper);
  const ClusterOutcome outcome = session.Finish().ValueOrDie();
  EXPECT_TRUE(session.stopped_early());
  EXPECT_EQ(outcome.fleet.memory_series.size(), 11u);
}

TEST(ClusterSessionTest, EarlyStopSignalsCancelledLikeSimStream) {
  const Trace trace = MakeFleet({1}, 100);
  ClusterSession session =
      ClusterSession::Create(
          trace, ClusterSpec{},
          ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie(),
          SimOptions{0, 0, true, {}})
          .ValueOrDie();
  CallbackObserver stopper(
      [](const MinuteView& view) { return view.minute < 5; });
  session.AddObserver(&stopper);
  EXPECT_EQ(session.RunUntil(session.end_minute()).code(),
            StatusCode::kCancelled);
  EXPECT_TRUE(session.stopped_early());
  EXPECT_EQ(session.Step().code(), StatusCode::kCancelled);
  // Finish() still returns the partial-window outcome after the stop.
  const ClusterOutcome outcome = session.Finish().ValueOrDie();
  EXPECT_EQ(outcome.fleet.memory_series.size(), 6u);
}

// ---------------------------------------------------------------------
// Scenario / SuiteRunner integration
// ---------------------------------------------------------------------

TEST(ClusterScenarioTest, ValidateScenarioSpecChecksTheClusterBlock) {
  ScenarioSpec spec;
  spec.policy = {"spes", {}};
  spec.cluster = ClusterSpec{};
  spec.cluster->nodes = 0;
  const Status status = ValidateScenarioSpec(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ClusterSpec.nodes"), std::string::npos);
}

TEST(ClusterScenarioTest, OpenScenarioAndLockstepRejectClusterSpecs) {
  const Trace trace = MakeFleet({1}, 30);
  ScenarioSpec spec;
  spec.policy = {"spes", {}};
  spec.options.train_minutes = 0;
  spec.cluster = ClusterSpec{};

  const Result<ScenarioStream> open = OpenScenario(trace, spec);
  ASSERT_FALSE(open.ok());
  EXPECT_NE(open.status().message().find("ClusterSession"),
            std::string::npos);

  const Result<std::vector<ScenarioOutcome>> lockstep =
      RunLockstep(trace, {spec});
  ASSERT_FALSE(lockstep.ok());
  EXPECT_NE(lockstep.status().message().find("lockstep"), std::string::npos);
}

TEST(ClusterScenarioTest, SuiteRunnerIsolatesBadClusterSpecs) {
  const Trace trace = MakeFleet({1, 1}, 30);
  std::vector<ScenarioSpec> specs;
  specs.push_back(KeepAliveClusterSpec(2, "least_loaded"));
  specs.push_back(KeepAliveClusterSpec(2, "no_such_router"));
  specs.push_back(KeepAliveClusterSpec(2, "least_loaded"));
  specs[2].policy = {"no_such_policy", {}};

  const std::vector<JobResult> results =
      SuiteRunner({1, nullptr}).Run(trace, specs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok()) << results[0].status.ToString();
  ASSERT_NE(results[0].cluster, nullptr);
  EXPECT_EQ(results[1].status.code(), StatusCode::kNotFound);
  EXPECT_NE(results[1].status.message().find("no_such_router"),
            std::string::npos);
  EXPECT_EQ(results[2].status.code(), StatusCode::kNotFound);
  EXPECT_NE(results[2].status.message().find("no_such_policy"),
            std::string::npos);
}

TEST(ClusterScenarioTest, RunLockstepBatchMatchesPooledForMixedSpecs) {
  // A batch mixing plain and cluster specs: RunLockstep runs clusters
  // standalone and lanes the rest; results must be bitwise identical to
  // the pooled path, slot for slot.
  const Trace trace = MakeFleet({1, 2, 3, 4}, 120);
  std::vector<ScenarioSpec> specs;
  ScenarioSpec plain;
  plain.policy = ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  plain.options.train_minutes = 0;
  specs.push_back(plain);
  specs.push_back(KeepAliveClusterSpec(2, "least_loaded"));
  plain.policy = ParsePolicySpec("fixed_keepalive{minutes=5}").ValueOrDie();
  specs.push_back(plain);

  const SuiteRunner runner({1, nullptr});
  const std::vector<JobResult> pooled = runner.Run(trace, specs);
  const std::vector<JobResult> lockstep = runner.RunLockstep(trace, specs);
  ASSERT_EQ(pooled.size(), lockstep.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    ASSERT_TRUE(pooled[i].status.ok()) << pooled[i].status.ToString();
    ASSERT_TRUE(lockstep[i].status.ok()) << lockstep[i].status.ToString();
    EXPECT_EQ(pooled[i].outcome.memory_series,
              lockstep[i].outcome.memory_series)
        << i;
    EXPECT_EQ(pooled[i].outcome.metrics.total_cold_starts,
              lockstep[i].outcome.metrics.total_cold_starts)
        << i;
    EXPECT_EQ(pooled[i].cluster != nullptr, lockstep[i].cluster != nullptr);
  }
  ASSERT_NE(lockstep[1].cluster, nullptr);
  EXPECT_EQ(lockstep[1].cluster->nodes.size(), 2u);
}

TEST(ClusterScenarioTest, SessionRunAppliesTransformsBeforeTheCluster) {
  // ScenarioSession::Run with a cluster spec composes with the transform
  // pipeline: the chain reshapes the workload, then the cluster shards it.
  const ScenarioSession session(MakeFleet({1, 1}, 60));
  ScenarioSpec spec = KeepAliveClusterSpec(2, "least_loaded");
  spec.trace.transforms =
      ParseTransformChain("load_scale{factor=3.0}").ValueOrDie();
  const ScenarioOutcome run = session.Run(spec).ValueOrDie();
  ASSERT_NE(run.cluster, nullptr);
  EXPECT_EQ(run.outcome.metrics.total_invocations, 2u * 60u * 3u);
}

TEST(ClusterReportTest, NodeTableAndImbalanceStats) {
  const Trace trace = MakeFleet({1, 1, 1, 1}, 60);
  const ScenarioOutcome run =
      RunScenario(trace, KeepAliveClusterSpec(2, "least_loaded"))
          .ValueOrDie();
  ASSERT_NE(run.cluster, nullptr);

  const Table table = BuildClusterNodeTable(*run.cluster);
  EXPECT_EQ(table.num_rows(), 3u);  // 2 nodes + fleet summary

  const ClusterImbalance imbalance = ComputeClusterImbalance(*run.cluster);
  EXPECT_EQ(imbalance.num_nodes, 2);
  // 4 always-on functions spread 2/2: perfectly even.
  EXPECT_DOUBLE_EQ(imbalance.invocation_cv, 0.0);
  EXPECT_DOUBLE_EQ(imbalance.invocation_peak_ratio, 1.0);
  EXPECT_DOUBLE_EQ(imbalance.cold_start_peak_share, 0.5);
}

}  // namespace
}  // namespace spes
