#include "core/correlation.h"

#include <gtest/gtest.h>

#include <vector>

namespace spes {
namespace {

std::vector<uint32_t> Seq(std::initializer_list<uint32_t> xs) { return xs; }

TEST(CorTest, IdenticalSeriesHaveCorOne) {
  const auto a = Seq({1, 0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(CoOccurrenceRate(a, a), 1.0);
}

TEST(CorTest, DisjointSeriesHaveCorZero) {
  const auto target = Seq({1, 0, 1, 0});
  const auto candidate = Seq({0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(CoOccurrenceRate(target, candidate), 0.0);
}

TEST(CorTest, PartialOverlap) {
  const auto target = Seq({1, 1, 1, 1});
  const auto candidate = Seq({1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(CoOccurrenceRate(target, candidate), 0.5);
}

TEST(CorTest, NeverInvokedTargetIsZero) {
  const auto target = Seq({0, 0, 0});
  const auto candidate = Seq({1, 1, 1});
  EXPECT_DOUBLE_EQ(CoOccurrenceRate(target, candidate), 0.0);
}

TEST(CorTest, AsymmetricDefinition) {
  // COR is normalized by the *target's* invocations, so it is asymmetric.
  const auto busy = Seq({1, 1, 1, 1});
  const auto rare = Seq({1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(CoOccurrenceRate(rare, busy), 1.0);
  EXPECT_DOUBLE_EQ(CoOccurrenceRate(busy, rare), 0.25);
}

TEST(LaggedCorTest, ExactLagDetected) {
  // Candidate fires at t, target at t+3.
  std::vector<uint32_t> candidate(50, 0), target(50, 0);
  for (int t = 0; t < 40; t += 10) {
    candidate[static_cast<size_t>(t)] = 1;
    target[static_cast<size_t>(t + 3)] = 1;
  }
  EXPECT_DOUBLE_EQ(LaggedCoOccurrenceRate(target, candidate, 3), 1.0);
  EXPECT_DOUBLE_EQ(LaggedCoOccurrenceRate(target, candidate, 0), 0.0);
}

TEST(LaggedCorTest, NegativeLagTreatedAsZero) {
  const auto a = Seq({1, 1});
  EXPECT_DOUBLE_EQ(LaggedCoOccurrenceRate(a, a, -5),
                   LaggedCoOccurrenceRate(a, a, 0));
}

TEST(BestLaggedCorTest, FindsBestLag) {
  std::vector<uint32_t> candidate(100, 0), target(100, 0);
  for (int t = 0; t < 90; t += 9) {
    candidate[static_cast<size_t>(t)] = 1;
    target[static_cast<size_t>(t + 4)] = 1;
  }
  const BestLag best = BestLaggedCor(target, candidate, 10);
  EXPECT_EQ(best.lag, 4);
  EXPECT_DOUBLE_EQ(best.cor, 1.0);
}

TEST(BestLaggedCorTest, SlotsVariantMatchesSeriesVariant) {
  std::vector<uint32_t> candidate(200, 0), target(200, 0);
  for (int t = 5; t < 200; t += 17) {
    candidate[static_cast<size_t>(t - 5)] = 2;
    if (t % 2 == 0) target[static_cast<size_t>(t)] = 1;
  }
  std::vector<int> slots;
  for (size_t t = 0; t < target.size(); ++t) {
    if (target[t] > 0) slots.push_back(static_cast<int>(t));
  }
  const BestLag a = BestLaggedCor(target, candidate, 10);
  const BestLag b = BestLaggedCorFromSlots(slots, candidate, 10);
  EXPECT_EQ(a.lag, b.lag);
  EXPECT_DOUBLE_EQ(a.cor, b.cor);
}

TEST(BestLaggedCorTest, EmptyTargetSlots) {
  const auto candidate = Seq({1, 1, 1});
  const BestLag best = BestLaggedCorFromSlots({}, candidate, 10);
  EXPECT_DOUBLE_EQ(best.cor, 0.0);
}

class LagSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LagSweepTest, RecoversInjectedLag) {
  const int lag = GetParam();
  std::vector<uint32_t> candidate(300, 0), target(300, 0);
  for (int t = 0; t + lag < 300; t += 23) {
    candidate[static_cast<size_t>(t)] = 1;
    target[static_cast<size_t>(t + lag)] = 1;
  }
  std::vector<int> slots;
  for (size_t t = 0; t < target.size(); ++t) {
    if (target[t] > 0) slots.push_back(static_cast<int>(t));
  }
  const BestLag best = BestLaggedCorFromSlots(slots, candidate, 10);
  EXPECT_EQ(best.lag, lag);
  EXPECT_DOUBLE_EQ(best.cor, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LagSweepTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 10));

}  // namespace
}  // namespace spes
