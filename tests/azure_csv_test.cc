#include "trace/azure_csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "trace/generator.h"

namespace spes {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("spes_csv_") + tag);
  fs::remove_all(dir);
  return dir.string();
}

TEST(ParseAzureCsvLineTest, ParsesMetadataAndCounts) {
  const std::string line = "own1,app1,fn1,timer,0,3,0,1";
  const Result<FunctionTrace> parsed = ParseAzureCsvLine(line, 4);
  ASSERT_TRUE(parsed.ok());
  const FunctionTrace& f = parsed.ValueOrDie();
  EXPECT_EQ(f.meta.owner, "own1");
  EXPECT_EQ(f.meta.app, "app1");
  EXPECT_EQ(f.meta.name, "fn1");
  EXPECT_EQ(f.meta.trigger, TriggerType::kTimer);
  EXPECT_EQ(f.counts, (std::vector<uint32_t>{0, 3, 0, 1}));
}

TEST(ParseAzureCsvLineTest, RejectsWrongSlotCount) {
  EXPECT_FALSE(ParseAzureCsvLine("o,a,f,http,1,2", 4).ok());
}

TEST(ParseAzureCsvLineTest, RejectsGarbageCounts) {
  EXPECT_FALSE(ParseAzureCsvLine("o,a,f,http,1,x,3,4", 4).ok());
}

TEST(FormatAzureCsvLineTest, RoundTripsThroughParse) {
  const FunctionMeta meta{"oo", "aa", "ff", TriggerType::kQueue};
  const uint32_t counts[4] = {7, 0, 0, 9};
  const std::string line = FormatAzureCsvLine(meta, counts, 4);
  const Result<FunctionTrace> parsed = ParseAzureCsvLine(line, 4);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().meta.trigger, TriggerType::kQueue);
  EXPECT_EQ(parsed.ValueOrDie().counts[3], 9u);
}

TEST(AzureTraceDirTest, WriteThenReadRoundTrips) {
  GeneratorConfig config;
  config.num_functions = 60;
  config.days = 2;
  config.seed = 7;
  const Result<GeneratedTrace> generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const Trace& original = generated.ValueOrDie().trace;

  const std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(WriteAzureTraceDir(original, dir).ok());

  const Result<Trace> reread = ReadAzureTraceDir(dir);
  ASSERT_TRUE(reread.ok());
  const Trace& copy = reread.ValueOrDie();

  ASSERT_EQ(copy.num_functions(), original.num_functions());
  ASSERT_EQ(copy.num_minutes(), original.num_minutes());
  for (size_t i = 0; i < original.num_functions(); ++i) {
    const FunctionTrace& f = original.function(i);
    const int64_t j = copy.FindByName(f.meta.name);
    ASSERT_GE(j, 0) << "missing " << f.meta.name;
    const FunctionTrace& g = copy.function(static_cast<size_t>(j));
    EXPECT_EQ(g.meta.app, f.meta.app);
    EXPECT_EQ(g.meta.owner, f.meta.owner);
    EXPECT_EQ(g.meta.trigger, f.meta.trigger);
    EXPECT_EQ(g.counts, f.counts) << "counts differ for " << f.meta.name;
  }
  fs::remove_all(dir);
}

TEST(AzureTraceDirTest, RejectsPartialDays) {
  Trace trace(100);  // not a multiple of 1440
  EXPECT_EQ(WriteAzureTraceDir(trace, TempDir("partial")).code(),
            StatusCode::kInvalidArgument);
}

TEST(AzureTraceDirTest, ReadMissingDirFails) {
  const Result<Trace> r = ReadAzureTraceDir("/nonexistent/spes/dir");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(AzureTraceDirTest, ReadEmptyDirFails) {
  const std::string dir = TempDir("empty");
  fs::create_directories(dir);
  EXPECT_EQ(ReadAzureTraceDir(dir).status().code(), StatusCode::kNotFound);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace spes
