#include "trace/summary.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows) {
  Trace trace(static_cast<int>(rows[0].size()));
  int k = 0;
  for (auto& row : rows) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k++);
    f.meta.app = "a";
    f.meta.owner = "o";
    f.meta.trigger = TriggerType::kHttp;
    f.counts = std::move(row);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

TEST(InvocationHistogramTest, DecadeBuckets) {
  // Totals: 0, 5, 50, 500.
  Trace trace = MakeTrace({
      std::vector<uint32_t>(1000, 0),
      [] { std::vector<uint32_t> v(1000, 0); for (int i = 0; i < 5; ++i) v[static_cast<size_t>(i * 7)] = 1; return v; }(),
      [] { std::vector<uint32_t> v(1000, 0); for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i * 3)] = 1; return v; }(),
      [] { std::vector<uint32_t> v(1000, 0); for (int i = 0; i < 500; ++i) v[static_cast<size_t>(i)] = 1; return v; }(),
  });
  const InvocationHistogram hist = ComputeInvocationHistogram(trace);
  EXPECT_EQ(hist.zero_functions, 1);
  EXPECT_EQ(hist.total_functions, 4);
  ASSERT_GE(hist.buckets.size(), 3u);
  EXPECT_EQ(hist.buckets[0], 1);  // 5 in [1,10)
  EXPECT_EQ(hist.buckets[1], 1);  // 50 in [10,100)
  EXPECT_EQ(hist.buckets[2], 1);  // 500 in [100,1000)
  EXPECT_EQ(hist.total_invocations, 555u);
}

TEST(TriggerMixTest, SumsToOne) {
  const auto generated = [&] {
    GeneratorConfig config;
    config.num_functions = 500;
    config.days = 2;
    return GenerateTrace(config).ValueOrDie();
  }();
  const auto mix = ComputeTriggerMix(generated.trace);
  double sum = 0;
  for (double m : mix) sum += m;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ConceptShiftExamplesTest, FindsInjectedShift) {
  // One function goes from busy to silent at half-time.
  std::vector<uint32_t> shifting(2000, 0);
  for (int t = 0; t < 1000; ++t) shifting[static_cast<size_t>(t)] = 1;
  std::vector<uint32_t> steady(2000, 1);
  Trace trace = MakeTrace({shifting, steady});
  const auto examples = FindConceptShiftExamples(trace, 1);
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0], 0u);
}

TEST(TemporalLocalityExamplesTest, PrefersConcentratedRuns) {
  // Concentrated: 30 invocations in 3 runs of 10 consecutive slots.
  std::vector<uint32_t> bursty(10000, 0);
  for (int run = 0; run < 3; ++run) {
    for (int s = 0; s < 10; ++s) {
      bursty[static_cast<size_t>(1000 + run * 3000 + s)] = 1;
    }
  }
  // Spread: 30 singleton invocations far apart.
  std::vector<uint32_t> spread(10000, 0);
  for (int k = 0; k < 30; ++k) spread[static_cast<size_t>(k * 320)] = 1;
  Trace trace = MakeTrace({bursty, spread});
  const auto examples = FindTemporalLocalityExamples(trace, 5, 10, 100);
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0], 0u);
}

TEST(BinSeriesTest, SumsPreserved) {
  std::vector<uint32_t> counts(100);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<uint32_t>(i % 3);
  }
  const auto bins = BinSeries(counts, 10);
  ASSERT_EQ(bins.size(), 10u);
  uint64_t total_bins = 0, total_counts = 0;
  for (uint64_t b : bins) total_bins += b;
  for (uint32_t c : counts) total_counts += c;
  EXPECT_EQ(total_bins, total_counts);
}

TEST(BinSeriesTest, EmptyInput) {
  const auto bins = BinSeries({}, 5);
  ASSERT_EQ(bins.size(), 5u);
  for (uint64_t b : bins) EXPECT_EQ(b, 0u);
}

}  // namespace
}  // namespace spes
