#include "policies/faascache.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows) {
  Trace trace(static_cast<int>(rows[0].size()));
  for (size_t k = 0; k < rows.size(); ++k) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k);
    f.meta.app = "a";
    f.meta.owner = "o";
    f.counts = std::move(rows[k]);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

TEST(FaasCacheTest, CapacityClampedToOne) {
  EXPECT_EQ(FaasCachePolicy(0).capacity(), 1u);
}

TEST(FaasCacheTest, KeepsEverythingUnderCapacity) {
  Trace trace = MakeTrace({{1, 0, 0, 0, 1}, {0, 1, 0, 0, 0}});
  FaasCachePolicy policy(10);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  // No memory pressure: nothing evicted, second arrival of f0 is warm.
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].cold_starts, 1u);
}

TEST(FaasCacheTest, EnforcesCapacity) {
  // Three functions, capacity 2: after every minute at most 2 loaded.
  Trace trace = MakeTrace({{1, 0, 0, 1, 0, 0},
                           {0, 1, 0, 0, 1, 0},
                           {0, 0, 1, 0, 0, 1}});
  FaasCachePolicy policy(2);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  for (uint32_t used : outcome.ValueOrDie().memory_series) {
    EXPECT_LE(used, 2u);
  }
}

TEST(FaasCacheTest, EvictsLowFrequencyVictimFirst) {
  // f0 is hot (fires every minute), f1 fired once, f2 arrives under
  // capacity pressure: the GDSF victim must be f1, not hot f0.
  const int horizon = 12;
  std::vector<uint32_t> hot(horizon, 1);
  std::vector<uint32_t> once(horizon, 0);
  once[0] = 1;
  std::vector<uint32_t> late(horizon, 0);
  late[5] = 1;
  Trace trace = MakeTrace({hot, once, late});
  FaasCachePolicy policy(2);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const auto& accounts = outcome.ValueOrDie().accounts;
  // Hot f0 cold only at t=0.
  EXPECT_EQ(accounts[0].cold_starts, 1u);
  // f1 was evicted when f2 arrived; it stays out afterwards.
  EXPECT_EQ(accounts[1].loaded_minutes + accounts[2].loaded_minutes +
                accounts[0].loaded_minutes,
            outcome.ValueOrDie().metrics.loaded_instance_minutes);
}

TEST(FaasCacheTest, ClockAgesOnEviction) {
  Trace trace = MakeTrace({{1, 1, 0, 0}, {0, 1, 1, 0}, {0, 0, 1, 1}});
  FaasCachePolicy policy(2);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(policy.clock(), 0.0);
}

TEST(FaasCacheTest, NeverEvictsExecutingFunctions) {
  // Capacity 1 but two functions fire in the same minute: both must be
  // loaded that minute (executions are pinned); the cap re-applies later.
  Trace trace = MakeTrace({{1, 0, 0}, {1, 0, 0}});
  FaasCachePolicy policy(1);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().memory_series[0], 2u);
  EXPECT_LE(outcome.ValueOrDie().memory_series[1], 1u);
}

}  // namespace
}  // namespace spes
