// Differential and hostile-input tests for the packed binary trace format
// (trace/trace_file.h).
//
// The differential half pins that the streamed disk path is bitwise
// interchangeable with the in-memory path: write -> open -> stream
// round-trips arrivals, counts, metadata and population summaries exactly,
// and the seed-99 golden runs (plain, lockstep, 4-node cluster, mid-window
// checkpoint/restore) reproduce the golden_metrics_test numbers when the
// engine is fed from a packed file.
//
// The hostile half feeds the parser truncated, corrupted and maliciously
// crafted images and requires InvalidArgument with a message every time —
// never a crash, hang or out-of-bounds access (fuzz/fuzz_trace_file.cc
// continues where these hand-picked cases leave off).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "core/policy_registry.h"
#include "core/spes_policy.h"
#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "sim/stream.h"
#include "trace/generator.h"
#include "trace/summary.h"
#include "trace/trace_file.h"
#include "trace/trace_source.h"

namespace spes {
namespace {

// ---------------------------------------------------------------------
// Fixtures: the same seed-99 golden fleet golden_metrics_test pins.
// ---------------------------------------------------------------------

Trace GoldenTrace() {
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;
  return std::move(GenerateTrace(config).ValueOrDie().trace);
}

SimOptions GoldenOptions() {
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  return options;
}

uint64_t SeriesSum(const std::vector<uint32_t>& series) {
  return std::accumulate(series.begin(), series.end(), uint64_t{0});
}

std::string PackToBytes(const Trace& trace, bool compress,
                        TraceFileStats* stats = nullptr) {
  TraceFileOptions options;
  options.compress = compress;
  TraceFileWriter writer =
      TraceFileWriter::Create(trace.num_minutes(), options).ValueOrDie();
  for (size_t f = 0; f < trace.num_functions(); ++f) {
    writer.Add(trace.function(f).meta, trace.function(f).counts).CheckOK();
  }
  return writer.ToBytes(stats).ValueOrDie();
}

/// Packs the golden fleet to a temp file and returns its path.
std::string PackGoldenToFile(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  WriteTraceFile(GoldenTrace(), path).ValueOrDie();
  return path;
}

void ExpectBitwiseIdenticalBehaviour(const SimulationOutcome& a,
                                     const SimulationOutcome& b) {
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations) << f;
    EXPECT_EQ(a.accounts[f].invoked_minutes, b.accounts[f].invoked_minutes)
        << f;
    EXPECT_EQ(a.accounts[f].cold_starts, b.accounts[f].cold_starts) << f;
    EXPECT_EQ(a.accounts[f].loaded_minutes, b.accounts[f].loaded_minutes)
        << f;
    EXPECT_EQ(a.accounts[f].wasted_minutes, b.accounts[f].wasted_minutes)
        << f;
  }
  EXPECT_EQ(a.memory_series, b.memory_series);
  EXPECT_EQ(a.metrics.csr, b.metrics.csr);
  EXPECT_EQ(a.metrics.q3_csr, b.metrics.q3_csr);
  EXPECT_EQ(a.metrics.total_cold_starts, b.metrics.total_cold_starts);
  EXPECT_EQ(a.metrics.total_invocations, b.metrics.total_invocations);
  EXPECT_EQ(a.metrics.wasted_memory_minutes, b.metrics.wasted_memory_minutes);
  EXPECT_EQ(a.metrics.loaded_instance_minutes,
            b.metrics.loaded_instance_minutes);
  EXPECT_EQ(a.metrics.max_memory, b.metrics.max_memory);
  EXPECT_EQ(a.metrics.emcr, b.metrics.emcr);
}

// ---------------------------------------------------------------------
// Round-trip differential: disk path == in-memory path, bit for bit.
// ---------------------------------------------------------------------

class TraceFileRoundTripTest : public ::testing::TestWithParam<bool> {};

TEST_P(TraceFileRoundTripTest, StreamedArrivalsMatchInMemoryTransposeExactly) {
  const bool compress = GetParam();
  const Trace trace = GoldenTrace();
  std::unique_ptr<TraceFileSource> from_disk =
      TraceFileSource::FromBytes(PackToBytes(trace, compress)).ValueOrDie();
  InMemoryTraceSource in_memory(trace);

  ASSERT_EQ(from_disk->num_minutes(), trace.num_minutes());
  ASSERT_EQ(from_disk->num_functions(), trace.num_functions());

  // Windows deliberately misaligned with the 256-minute block grid, so
  // every FillArrivals call crosses block boundaries.
  std::vector<std::vector<Invocation>> disk_buckets;
  std::vector<std::vector<Invocation>> memory_buckets;
  const int window = 173;
  for (int begin = 0; begin < trace.num_minutes(); begin += window) {
    const int end = std::min(begin + window, trace.num_minutes());
    ASSERT_TRUE(from_disk->FillArrivals(begin, end, &disk_buckets).ok());
    ASSERT_TRUE(in_memory.FillArrivals(begin, end, &memory_buckets).ok());
    for (int i = 0; i < end - begin; ++i) {
      const auto& a = disk_buckets[static_cast<size_t>(i)];
      const auto& b = memory_buckets[static_cast<size_t>(i)];
      ASSERT_EQ(a.size(), b.size()) << "minute " << begin + i;
      for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].function, b[j].function) << "minute " << begin + i;
        EXPECT_EQ(a[j].count, b[j].count) << "minute " << begin + i;
      }
    }
  }
}

TEST_P(TraceFileRoundTripTest, MaterializedTraceAndSummariesMatchOriginal) {
  const bool compress = GetParam();
  const Trace original = GoldenTrace();
  std::unique_ptr<TraceFileSource> source =
      TraceFileSource::FromBytes(PackToBytes(original, compress))
          .ValueOrDie();
  const Trace reloaded =
      source->MaterializePrefix(original.num_minutes()).ValueOrDie();

  ASSERT_EQ(reloaded.num_functions(), original.num_functions());
  ASSERT_EQ(reloaded.num_minutes(), original.num_minutes());
  for (size_t f = 0; f < original.num_functions(); ++f) {
    const FunctionTrace& a = original.function(f);
    const FunctionTrace& b = reloaded.function(f);
    EXPECT_EQ(a.meta.owner, b.meta.owner) << f;
    EXPECT_EQ(a.meta.app, b.meta.app) << f;
    EXPECT_EQ(a.meta.name, b.meta.name) << f;
    EXPECT_EQ(a.meta.trigger, b.meta.trigger) << f;
    ASSERT_EQ(a.counts, b.counts) << f;
  }

  // Population summaries are derived, so they must agree too.
  const InvocationHistogram ha = ComputeInvocationHistogram(original);
  const InvocationHistogram hb = ComputeInvocationHistogram(reloaded);
  EXPECT_EQ(ha.buckets, hb.buckets);
  EXPECT_EQ(ha.zero_functions, hb.zero_functions);
  EXPECT_EQ(ha.total_invocations, hb.total_invocations);
  EXPECT_EQ(ComputeTriggerMix(original), ComputeTriggerMix(reloaded));
}

TEST_P(TraceFileRoundTripTest, MaterializePrefixMatchesCountPrefix) {
  const bool compress = GetParam();
  const Trace original = GoldenTrace();
  std::unique_ptr<TraceFileSource> source =
      TraceFileSource::FromBytes(PackToBytes(original, compress))
          .ValueOrDie();
  const int prefix = 2 * kMinutesPerDay;
  const Trace train = source->MaterializePrefix(prefix).ValueOrDie();
  ASSERT_EQ(train.num_minutes(), prefix);
  ASSERT_EQ(train.num_functions(), original.num_functions());
  for (size_t f = 0; f < original.num_functions(); ++f) {
    const std::vector<uint32_t>& full = original.function(f).counts;
    const std::vector<uint32_t>& cut = train.function(f).counts;
    ASSERT_EQ(cut.size(), static_cast<size_t>(prefix)) << f;
    EXPECT_TRUE(std::equal(cut.begin(), cut.end(), full.begin())) << f;
  }
}

INSTANTIATE_TEST_SUITE_P(CompressedAndRaw, TraceFileRoundTripTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Compressed" : "Raw";
                         });

TEST(TraceFileTest, StatsAccountForCompressionAndFileLayout) {
  const Trace trace = GoldenTrace();
  TraceFileStats raw_stats;
  TraceFileStats lz_stats;
  const std::string raw = PackToBytes(trace, /*compress=*/false, &raw_stats);
  const std::string lz = PackToBytes(trace, /*compress=*/true, &lz_stats);

  EXPECT_EQ(raw_stats.file_bytes, raw.size());
  EXPECT_EQ(lz_stats.file_bytes, lz.size());
  EXPECT_EQ(raw_stats.payload_stored_bytes, raw_stats.payload_raw_bytes);
  EXPECT_LT(lz_stats.payload_stored_bytes, lz_stats.payload_raw_bytes);
  EXPECT_LT(lz.size(), raw.size());
  EXPECT_GT(lz_stats.CompressionRatio(), 1.0);
  EXPECT_EQ(lz_stats.num_functions, trace.num_functions());
  EXPECT_EQ(lz_stats.num_minutes,
            static_cast<uint32_t>(trace.num_minutes()));

  // The opened source recomputes the same accounting from the file.
  std::unique_ptr<TraceFileSource> source =
      TraceFileSource::FromBytes(lz).ValueOrDie();
  EXPECT_EQ(source->stats().file_bytes, lz_stats.file_bytes);
  EXPECT_EQ(source->stats().total_invocations, lz_stats.total_invocations);
  EXPECT_EQ(source->stats().payload_stored_bytes,
            lz_stats.payload_stored_bytes);
}

// ---------------------------------------------------------------------
// Seed-99 golden runs, served from disk: every driving mode must hit the
// exact numbers golden_metrics_test pins for the in-memory engine.
// ---------------------------------------------------------------------

TEST(TraceFileGoldenTest, StreamedPlainRunMatchesBatchGoldens) {
  const std::string path = PackGoldenToFile("spes_tf_golden_plain.spt");
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();

  SpesPolicy streamed;
  SimStream stream =
      SimStream::Create(*source, &streamed, GoldenOptions()).ValueOrDie();
  const SimulationOutcome outcome = stream.Finish().ValueOrDie();
  EXPECT_EQ(outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(outcome.metrics.wasted_memory_minutes, 82418u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 212568u);
  EXPECT_DOUBLE_EQ(outcome.metrics.q3_csr, 0.051625753660637382);

  SpesPolicy batch;
  const Trace fleet = GoldenTrace();
  ExpectBitwiseIdenticalBehaviour(
      Simulate(fleet, &batch, GoldenOptions()).ValueOrDie(), outcome);
  std::filesystem::remove(path);
}

TEST(TraceFileGoldenTest, StreamedLockstepMatchesBatchGoldens) {
  const std::string path = PackGoldenToFile("spes_tf_golden_lockstep.spt");
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();

  SpesPolicy spes;
  FixedKeepAlivePolicy fixed(10);
  SimStream stream =
      SimStream::Create(*source, {&spes, &fixed}, GoldenOptions())
          .ValueOrDie();
  const std::vector<SimulationOutcome> outcomes =
      stream.FinishAll().ValueOrDie();
  EXPECT_EQ(stream.minutes_decoded(), 2880);

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(outcomes[0].memory_series), 212568u);
  EXPECT_EQ(outcomes[1].metrics.total_cold_starts, 1574u);
  EXPECT_EQ(SeriesSum(outcomes[1].memory_series), 210020u);
  std::filesystem::remove(path);
}

TEST(TraceFileGoldenTest, StreamedFourNodeClusterMatchesGoldens) {
  const std::string path = PackGoldenToFile("spes_tf_golden_cluster.spt");
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();

  ScenarioSpec spec;
  spec.policy = {"spes", {}};
  spec.options = GoldenOptions();
  spec.cluster = ClusterSpec{};
  spec.cluster->nodes = 4;

  const ScenarioOutcome run =
      RunScenarioStreamed(*source, spec).ValueOrDie();
  EXPECT_EQ(run.outcome.metrics.total_invocations, 505234u);
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 1535u);
  EXPECT_EQ(run.outcome.metrics.wasted_memory_minutes, 576460u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 706610u);
  ASSERT_NE(run.cluster, nullptr);
  ASSERT_EQ(run.cluster->nodes.size(), 4u);
  const uint64_t node_cold_starts[] = {190u, 796u, 413u, 136u};
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(run.cluster->nodes[k].sim.metrics.total_cold_starts,
              node_cold_starts[k])
        << k;
  }
  std::filesystem::remove(path);
}

TEST(TraceFileGoldenTest, StreamedCheckpointRestoreMatchesBatchGoldens) {
  const std::string path = PackGoldenToFile("spes_tf_golden_ckpt.spt");
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();
  const int midpoint = 3 * kMinutesPerDay;

  SpesPolicy original;
  SimStream first =
      SimStream::Create(*source, &original, GoldenOptions()).ValueOrDie();
  ASSERT_TRUE(first.RunUntil(midpoint).ok());
  const std::string bytes =
      SerializeCheckpoint(first.Checkpoint().ValueOrDie());

  // Restore onto a second stream over a *fresh* handle of the same file —
  // the cross-process resume story, entirely disk-backed.
  std::unique_ptr<TraceFileSource> reopened =
      OpenTraceFile(path).ValueOrDie();
  SpesPolicy fresh;
  SimStream second =
      SimStream::Create(*reopened, &fresh, GoldenOptions()).ValueOrDie();
  ASSERT_TRUE(second.Restore(ParseCheckpoint(bytes).ValueOrDie()).ok());
  const SimulationOutcome resumed = second.Finish().ValueOrDie();

  EXPECT_EQ(resumed.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(resumed.memory_series), 212568u);
  SpesPolicy batch;
  const Trace fleet = GoldenTrace();
  ExpectBitwiseIdenticalBehaviour(
      Simulate(fleet, &batch, GoldenOptions()).ValueOrDie(), resumed);
  std::filesystem::remove(path);
}

TEST(TraceFileGoldenTest, OracleIsRejectedOnStreamedPaths) {
  const std::string path = PackGoldenToFile("spes_tf_golden_oracle.spt");
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();

  // The oracle reads minutes beyond the train prefix from its retained
  // trace pointer, which a streamed source never materializes.
  std::unique_ptr<Policy> oracle =
      PolicyRegistry::Global().CreateFromString("oracle").ValueOrDie();
  ASSERT_TRUE(oracle->RequiresFullTrace());

  auto stream = SimStream::Create(*source, oracle.get(), GoldenOptions());
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stream.status().message().find("full realized trace"),
            std::string::npos);

  ScenarioSpec cluster_spec;
  cluster_spec.policy = {"oracle", {}};
  cluster_spec.options = GoldenOptions();
  cluster_spec.cluster = ClusterSpec{};
  auto cluster_run = RunScenarioStreamed(*source, cluster_spec);
  ASSERT_FALSE(cluster_run.ok());
  EXPECT_EQ(cluster_run.status().code(), StatusCode::kInvalidArgument);

  // The same policy over the same workload realized in memory is fine.
  const Trace fleet = GoldenTrace();
  std::unique_ptr<Policy> in_memory_oracle =
      PolicyRegistry::Global().CreateFromString("oracle").ValueOrDie();
  EXPECT_TRUE(
      SimStream::Create(fleet, in_memory_oracle.get(), GoldenOptions())
          .ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Declarative stack: trace_file sources and the disk-backed cache tier.
// ---------------------------------------------------------------------

TEST(TraceFileScenarioTest, TraceFileSourceKindRealizesAndRuns) {
  const std::string path = PackGoldenToFile("spes_tf_scenario.spt");

  ScenarioSpec spec;
  spec.trace = TraceSpec::FromTraceFile(path);
  spec.policy = {"spes", {}};
  spec.options = GoldenOptions();
  EXPECT_EQ(TraceSpecKey(spec.trace), "trace_file{path=" + path + "}");

  const ScenarioOutcome run = RunScenario(spec).ValueOrDie();
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 212568u);

  // Missing path names the field.
  ScenarioSpec empty = spec;
  empty.trace.trace_file.clear();
  const auto bad = RunScenario(empty);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("trace_file"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TraceFileScenarioTest, DiskBackedTraceCachePacksOnceAndReopens) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spes_tf_cache").string();
  std::filesystem::remove_all(dir);

  TraceSpec spec;
  spec.source = TraceSpec::Source::kGenerator;
  spec.generator.num_functions = 150;
  spec.generator.days = 4;
  spec.generator.seed = 99;

  TraceCache cache(dir);
  const std::string packed = cache.EnsurePacked(spec).ValueOrDie();
  ASSERT_TRUE(std::filesystem::exists(packed));
  const auto first_write = std::filesystem::last_write_time(packed);

  // Get() serves the packed bytes and they are the realized trace exactly.
  const std::shared_ptr<const Trace> cached = cache.Get(spec).ValueOrDie();
  const Trace direct = RealizeTrace(spec).ValueOrDie();
  ASSERT_EQ(cached->num_functions(), direct.num_functions());
  for (size_t f = 0; f < direct.num_functions(); ++f) {
    ASSERT_EQ(cached->function(f).counts, direct.function(f).counts) << f;
    EXPECT_EQ(cached->function(f).meta.name, direct.function(f).meta.name);
  }

  // A second cache over the same directory reopens, never re-packs.
  TraceCache second(dir);
  (void)second.Get(spec).ValueOrDie();
  EXPECT_EQ(std::filesystem::last_write_time(packed), first_write);

  // OpenStream hands out a streaming source over the packed file whose
  // golden run matches the in-memory numbers.
  std::unique_ptr<TraceSource> streamed =
      cache.OpenStream(spec).ValueOrDie();
  ScenarioSpec scenario;
  scenario.policy = {"spes", {}};
  scenario.options = GoldenOptions();
  const ScenarioOutcome run =
      RunScenarioStreamed(*streamed, scenario).ValueOrDie();
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 212568u);

  // Without a disk tier the pack entry points say so.
  TraceCache memory_only;
  const auto no_tier = memory_only.EnsurePacked(spec);
  ASSERT_FALSE(no_tier.ok());
  EXPECT_NE(no_tier.status().message().find("disk tier"),
            std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(TraceFileScenarioTest, StreamedScenarioRejectsTransformChains) {
  const std::string path = PackGoldenToFile("spes_tf_transforms.spt");
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();
  ScenarioSpec spec;
  spec.policy = {"spes", {}};
  spec.options = GoldenOptions();
  spec.trace.transforms.push_back({"load_scale", {{"factor", 2.0}}});
  const auto run = RunScenarioStreamed(*source, spec);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("transform"), std::string::npos);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Hostile input: every malformation is InvalidArgument with a message.
// ---------------------------------------------------------------------

/// A tiny but fully featured fleet: several functions, several blocks.
Trace SmallTrace() {
  GeneratorConfig config;
  config.num_functions = 12;
  config.days = 2;
  config.seed = 7;
  return std::move(GenerateTrace(config).ValueOrDie().trace);
}

void PokeU32(std::string* bytes, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PokeU64(std::string* bytes, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

uint64_t PeekU64(const std::string& bytes, size_t offset) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  }
  return value;
}

/// Header offsets (see docs/trace_format.md): magic@0, version@8, flags@12,
/// num_minutes@16, block_minutes@20, num_functions@24, total@32,
/// table_offset@40, index_offset@48, blocks_offset@56, file_size@64.
constexpr size_t kOffVersion = 8;
constexpr size_t kOffFlags = 12;
constexpr size_t kOffNumMinutes = 16;
constexpr size_t kOffBlockMinutes = 20;
constexpr size_t kOffNumFunctions = 24;
constexpr size_t kOffIndexOffset = 48;
constexpr size_t kOffFileSize = 64;

void ExpectParseFails(std::string bytes, const char* what) {
  const auto parsed = TraceFileSource::FromBytes(std::move(bytes));
  ASSERT_FALSE(parsed.ok()) << what;
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << what;
  EXPECT_FALSE(parsed.status().message().empty()) << what;
}

TEST(TraceFileHostileTest, EveryTruncationFailsCleanly) {
  const std::string valid = PackToBytes(SmallTrace(), /*compress=*/true);
  // A representative sweep: empty, sub-header, header-only, mid-table,
  // mid-index, one byte short of complete.
  for (const size_t len :
       {size_t{0}, size_t{8}, size_t{71}, size_t{72}, size_t{100},
        valid.size() / 2, valid.size() - 1}) {
    ExpectParseFails(valid.substr(0, len), "truncated");
  }
}

TEST(TraceFileHostileTest, BadMagicVersionAndFlagsAreRejected) {
  const std::string valid = PackToBytes(SmallTrace(), /*compress=*/true);

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  ExpectParseFails(std::move(bad_magic), "magic");

  std::string bad_version = valid;
  PokeU32(&bad_version, kOffVersion, 99);
  ExpectParseFails(std::move(bad_version), "version");

  std::string bad_flags = valid;
  PokeU32(&bad_flags, kOffFlags, 0x4);
  ExpectParseFails(std::move(bad_flags), "flags");
}

TEST(TraceFileHostileTest, CorruptHeaderGeometryIsRejected) {
  const std::string valid = PackToBytes(SmallTrace(), /*compress=*/true);

  std::string zero_minutes = valid;
  PokeU32(&zero_minutes, kOffNumMinutes, 0);
  ExpectParseFails(std::move(zero_minutes), "num_minutes=0");

  std::string zero_block = valid;
  PokeU32(&zero_block, kOffBlockMinutes, 0);
  ExpectParseFails(std::move(zero_block), "block_minutes=0");

  // file_size lies about the actual image size.
  std::string wrong_size = valid;
  PokeU64(&wrong_size, kOffFileSize, valid.size() + 8);
  ExpectParseFails(std::move(wrong_size), "file_size");

  // More functions than the table can possibly hold: the per-entry
  // minimum size bound must catch it before any allocation.
  std::string fn_bomb = valid;
  PokeU64(&fn_bomb, kOffNumFunctions, uint64_t{1} << 32);
  ExpectParseFails(std::move(fn_bomb), "num_functions over u32");
  std::string fn_off_by_one = valid;
  PokeU64(&fn_off_by_one, kOffNumFunctions,
          PeekU64(valid, kOffNumFunctions) + 1);
  ExpectParseFails(std::move(fn_off_by_one), "num_functions+1");
}

TEST(TraceFileHostileTest, CorruptIndexEntriesAreRejected) {
  const std::string valid = PackToBytes(SmallTrace(), /*compress=*/true);
  const size_t index_offset =
      static_cast<size_t>(PeekU64(valid, kOffIndexOffset));

  // Index past EOF / overlapping blocks: any offset break violates the
  // contiguity invariant.
  std::string bad_offset = valid;
  PokeU64(&bad_offset, index_offset,
          PeekU64(valid, index_offset) + 1);
  ExpectParseFails(std::move(bad_offset), "index offset");

  // stored@+8: stored bytes that disagree with the layout shift every
  // later block off its recorded offset.
  std::string bad_stored = valid;
  PokeU32(&bad_stored, index_offset + 8, 0xffffffffu);
  ExpectParseFails(std::move(bad_stored), "stored bytes");

  // raw@+12: a decompression bomb claim over the hard cap.
  std::string bomb = valid;
  PokeU32(&bomb, index_offset + 12, (1u << 28) + 1);
  ExpectParseFails(std::move(bomb), "raw over cap");

  // codec@+16: unknown codec id.
  std::string bad_codec = valid;
  bad_codec[index_offset + 16] = 7;
  ExpectParseFails(std::move(bad_codec), "codec");
}

TEST(TraceFileHostileTest, CorruptBlockPayloadFailsAtDecodeTime) {
  // Raw blocks so payload offsets are stable; zero the first block's
  // bytes. Metadata still parses — the damage is only in the payload, so
  // Open succeeds and the *decode* must fail cleanly.
  const std::string valid = PackToBytes(SmallTrace(), /*compress=*/false);
  const size_t blocks_offset = static_cast<size_t>(PeekU64(valid, 56));
  std::string corrupt = valid;
  for (size_t i = blocks_offset; i < std::min(blocks_offset + 64, corrupt.size());
       ++i) {
    corrupt[i] = 0;
  }
  auto parsed = TraceFileSource::FromBytes(std::move(corrupt));
  ASSERT_TRUE(parsed.ok());
  std::unique_ptr<TraceFileSource> source = std::move(parsed).ValueOrDie();
  std::vector<std::vector<Invocation>> buckets;
  const Status decoded = source->FillArrivals(0, 16, &buckets);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(decoded.message().empty());

  // And the decoder surface stays sticky-failed instead of crashing.
  ArrivalDecoder decoder(source.get());
  EXPECT_TRUE(decoder.Decode(0).empty());
  EXPECT_FALSE(decoder.status().ok());
}

TEST(TraceFileHostileTest, GarbageAndEmptyImagesAreRejected) {
  ExpectParseFails(std::string(), "empty");
  ExpectParseFails(std::string(4096, '\xff'), "all 0xff");
  ExpectParseFails(std::string("SPESTRCF"), "magic only");
  std::string nulls(256, '\0');
  ExpectParseFails(std::move(nulls), "all zero");
}

// ---------------------------------------------------------------------
// Hardened varint primitives (common/binary_io.h extensions).
// ---------------------------------------------------------------------

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (uint64_t{1} << 32) - 1,
                             uint64_t{1} << 32,
                             uint64_t{1} << 63,
                             ~uint64_t{0}};
  BinaryWriter writer;
  for (const uint64_t v : values) writer.PutVarU64(v);
  const std::string bytes = writer.Take();
  BinaryReader reader(bytes);
  for (const uint64_t v : values) {
    EXPECT_EQ(reader.VarU64().ValueOrDie(), v);
  }
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(VarintTest, RejectsOverflowAndNonMinimalForms) {
  {
    // 10 continuation groups followed by a value bit that overflows bit 64.
    const std::string overflow(
        "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x02", 10);
    BinaryReader reader(overflow);
    const auto result = reader.VarU64();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Eleven bytes of continuation: past the 10-byte maximum.
    const std::string runaway(11, '\x80');
    BinaryReader reader(runaway);
    EXPECT_FALSE(reader.VarU64().ok());
  }
  {
    // 0x80 0x00 encodes 0 in two bytes: non-minimal, must be rejected.
    const std::string padded("\x80\x00", 2);
    BinaryReader reader(padded);
    const auto result = reader.VarU64();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("non-minimal"),
              std::string::npos);
  }
  {
    // Truncated mid-varint.
    const std::string cut("\x80", 1);
    BinaryReader reader(cut);
    EXPECT_FALSE(reader.VarU64().ok());
  }
}

TEST(VarintTest, VarU32AndVarBytesEnforceBounds) {
  BinaryWriter writer;
  writer.PutVarU64(uint64_t{1} << 33);
  const std::string too_big = writer.Take();
  BinaryReader reader(too_big);
  EXPECT_FALSE(reader.VarU32().ok());

  BinaryWriter ok_writer;
  ok_writer.PutVarBytes("hello");
  const std::string bytes = ok_writer.Take();
  BinaryReader bytes_reader(bytes);
  EXPECT_EQ(bytes_reader.VarBytes().ValueOrDie(), "hello");

  // Length prefix promising more than the buffer holds.
  BinaryWriter lying;
  lying.PutVarU64(1000);
  const std::string lie = lying.Take();
  BinaryReader lie_reader(lie);
  EXPECT_FALSE(lie_reader.VarBytes().ok());
}

}  // namespace
}  // namespace spes
