// Latency subsystem unit tests: the model registry and its built-ins,
// the `<model> @ queue{...}` spec grammar, ConcurrencyQueue admission
// semantics (hand-computable with the constant model), LatencyLane
// determinism and save/restore, and the SimStream / ClusterSession
// integration including checkpoint round-trips. The seed-99 latency
// golden pins live in golden_metrics_test.cc.

#include "latency/latency.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/binary_io.h"
#include "core/policy_registry.h"
#include "latency/latency_model.h"
#include "latency/queue.h"
#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "sim/stream.h"
#include "trace/trace.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows) {
  Trace trace(static_cast<int>(rows[0].size()));
  int k = 0;
  for (auto& row : rows) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k++);
    f.meta.app = "a";
    f.meta.owner = "o";
    f.counts = std::move(row);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

SimOptions Window(int train, const std::string& latency_block = "") {
  SimOptions options;
  options.train_minutes = train;
  if (!latency_block.empty()) {
    options.latency = ParseLatencySpec(latency_block).ValueOrDie();
  }
  return options;
}

// ---------------------------------------------------------------------
// LatencyModelRegistry + built-in models
// ---------------------------------------------------------------------

TEST(LatencyModelRegistryTest, ConstantDefaultsAndOverrides) {
  auto& registry = LatencyModelRegistry::Global();
  const auto defaults = registry.CreateFromString("constant").ValueOrDie();
  EXPECT_EQ(defaults->name(), "constant");
  EXPECT_EQ(defaults->SampleMs(true, 7), 1000.0);
  EXPECT_EQ(defaults->SampleMs(false, 7), 10.0);

  const auto tuned =
      registry.CreateFromString("constant{cold_ms=500,warm_ms=5}")
          .ValueOrDie();
  EXPECT_EQ(tuned->SampleMs(true, 99), 500.0);
  EXPECT_EQ(tuned->SampleMs(false, 99), 5.0);
}

TEST(LatencyModelRegistryTest, LognormalIsAPureFunctionOfTheKey) {
  const auto model =
      LatencyModelRegistry::Global().CreateFromString("lognormal")
          .ValueOrDie();
  const double warm = model->SampleMs(false, 42);
  EXPECT_EQ(model->SampleMs(false, 42), warm);  // no carried state
  EXPECT_NE(model->SampleMs(false, 43), warm);
  // Cold and warm are independent streams even at the same key.
  EXPECT_NE(model->SampleMs(true, 42), warm);
  EXPECT_GT(warm, 0.0);
}

TEST(LatencyModelRegistryTest, LognormalSigmaZeroDegeneratesToMedians) {
  const auto model = LatencyModelRegistry::Global()
                         .CreateFromString(
                             "lognormal{cold_median_ms=900,cold_sigma=0,"
                             "warm_median_ms=9,warm_sigma=0}")
                         .ValueOrDie();
  EXPECT_EQ(model->SampleMs(true, 1), 900.0);
  EXPECT_EQ(model->SampleMs(false, 2), 9.0);
}

TEST(LatencyModelRegistryTest, UnknownModelListsAlternatives) {
  const auto result =
      LatencyModelRegistry::Global().CreateFromString("pareto");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("constant"), std::string::npos);
  EXPECT_NE(result.status().message().find("lognormal"), std::string::npos);
}

TEST(LatencyModelRegistryTest, BadParametersNameTheField) {
  auto& registry = LatencyModelRegistry::Global();
  const auto unknown = registry.CreateFromString("constant{bogus=1}");
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().message().find("bogus"), std::string::npos);

  const auto negative = registry.CreateFromString("constant{cold_ms=-1}");
  EXPECT_FALSE(negative.ok());
  EXPECT_NE(negative.status().message().find("cold_ms"), std::string::npos);
}

TEST(LatencyModelRegistryTest, IntrospectionSurfacesTheBuiltins) {
  auto& registry = LatencyModelRegistry::Global();
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"constant", "lognormal"}));
  EXPECT_TRUE(registry.Contains("lognormal"));
  EXPECT_FALSE(registry.Contains("pareto"));
  const auto* entry = registry.Find("lognormal");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->params.size(), 4u);
  EXPECT_EQ(registry.Find("pareto"), nullptr);
}

// ---------------------------------------------------------------------
// LatencySpec grammar
// ---------------------------------------------------------------------

TEST(LatencySpecTest, ParseBareModelLeavesQueueOff) {
  const LatencySpec spec = ParseLatencySpec("constant").ValueOrDie();
  EXPECT_EQ(spec.model.name, "constant");
  EXPECT_EQ(spec.concurrency, 0);
  EXPECT_EQ(spec.queue_capacity, 0);
  EXPECT_EQ(spec.timeout_ms, 0.0);
  EXPECT_EQ(spec.seed, 0u);
  EXPECT_EQ(FormatLatencySpec(spec), "constant");
  EXPECT_TRUE(ValidateLatencySpec(spec).ok());
}

TEST(LatencySpecTest, ParseFullBlockRoundTrips) {
  const std::string text =
      "lognormal{cold_median_ms=900} @ "
      "queue{capacity=256,concurrency=16,seed=42,timeout_ms=2000}";
  const LatencySpec spec = ParseLatencySpec(text).ValueOrDie();
  EXPECT_EQ(spec.model.name, "lognormal");
  EXPECT_EQ(spec.concurrency, 16);
  EXPECT_EQ(spec.queue_capacity, 256);
  EXPECT_EQ(spec.timeout_ms, 2000.0);
  EXPECT_EQ(spec.seed, 42u);
  // Canonical form is a fixed point of format -> reparse.
  const std::string canonical = FormatLatencySpec(spec);
  const LatencySpec reparsed = ParseLatencySpec(canonical).ValueOrDie();
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(FormatLatencySpec(reparsed), canonical);
  EXPECT_TRUE(ValidateLatencySpec(spec).ok());
}

TEST(LatencySpecTest, RejectsNonQueueBlockAfterAt) {
  const auto result = ParseLatencySpec("constant @ pool{concurrency=4}");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("queue"), std::string::npos);
}

TEST(LatencySpecTest, RejectsUnknownQueueParameter) {
  const auto result = ParseLatencySpec("constant @ queue{burst=9}");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("burst"), std::string::npos);
}

TEST(LatencySpecTest, ValidateRejectsQueueKnobsWithoutConcurrency) {
  const LatencySpec capacity_only =
      ParseLatencySpec("constant @ queue{capacity=10}").ValueOrDie();
  EXPECT_EQ(ValidateLatencySpec(capacity_only).code(),
            StatusCode::kInvalidArgument);
  const LatencySpec timeout_only =
      ParseLatencySpec("constant @ queue{timeout_ms=100}").ValueOrDie();
  EXPECT_EQ(ValidateLatencySpec(timeout_only).code(),
            StatusCode::kInvalidArgument);
}

TEST(LatencySpecTest, ValidateRejectsUnknownModel) {
  LatencySpec spec;
  spec.model.name = "pareto";
  EXPECT_EQ(ValidateLatencySpec(spec).code(), StatusCode::kNotFound);
}

TEST(LatencySpecTest, QueueSchemaMatchesTheParser) {
  std::vector<std::string> names;
  for (const ParamSpec& param : LatencyQueueParamSchema()) {
    names.push_back(param.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"concurrency", "capacity",
                                             "timeout_ms", "seed"}));
}

// ---------------------------------------------------------------------
// ConcurrencyQueue admission semantics
// ---------------------------------------------------------------------

TEST(ConcurrencyQueueTest, UnlimitedSlotsAreAPassthrough) {
  ConcurrencyQueue queue;  // zero config: no limits
  for (int i = 0; i < 5; ++i) {
    const QueueOutcome out = queue.Offer(0.0, 100.0);
    EXPECT_EQ(out.admission, Admission::kServed);
    EXPECT_EQ(out.end_to_end_ms, 100.0);
  }
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ConcurrencyQueueTest, SingleServerWaitAccumulates) {
  ConcurrencyQueue queue(QueueConfig{1, 0, 0.0});
  EXPECT_EQ(queue.Offer(0.0, 100.0).end_to_end_ms, 100.0);
  EXPECT_EQ(queue.Offer(0.0, 100.0).end_to_end_ms, 200.0);  // waits 100
  EXPECT_EQ(queue.Offer(0.0, 100.0).end_to_end_ms, 300.0);  // waits 200
  EXPECT_EQ(queue.depth(), 2u);  // two waiters, leaving at 100 and 200
  EXPECT_EQ(queue.DrainUntil(100.0), 1u);
  EXPECT_EQ(queue.DrainUntil(250.0), 0u);
}

TEST(ConcurrencyQueueTest, IdleServersAbsorbLateArrivals) {
  ConcurrencyQueue queue(QueueConfig{1, 0, 0.0});
  EXPECT_EQ(queue.Offer(0.0, 100.0).end_to_end_ms, 100.0);
  // Arrives after the server freed up: no wait.
  const QueueOutcome out = queue.Offer(150.0, 50.0);
  EXPECT_EQ(out.admission, Admission::kServed);
  EXPECT_EQ(out.end_to_end_ms, 50.0);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ConcurrencyQueueTest, WaitPastTimeoutAbandons) {
  ConcurrencyQueue queue(QueueConfig{1, 0, 150.0});
  EXPECT_EQ(queue.Offer(0.0, 100.0).admission, Admission::kServed);
  // Wait of 100 is tolerated...
  EXPECT_EQ(queue.Offer(0.0, 100.0).end_to_end_ms, 200.0);
  // ...a wait of 200 is not: the request abandons at t=150 without ever
  // occupying a server.
  const QueueOutcome out = queue.Offer(0.0, 100.0);
  EXPECT_EQ(out.admission, Admission::kTimedOut);
  EXPECT_EQ(queue.depth(), 2u);  // the waiter (until 100) + the abandoner
  EXPECT_EQ(queue.DrainUntil(150.0), 0u);
  // The abandoner never held a slot: a fourth request starts at 200.
  EXPECT_EQ(queue.Offer(160.0, 10.0).end_to_end_ms, 50.0);
}

TEST(ConcurrencyQueueTest, FullQueueSheds) {
  ConcurrencyQueue queue(QueueConfig{1, 1, 0.0});
  EXPECT_EQ(queue.Offer(0.0, 1000.0).admission, Admission::kServed);
  EXPECT_EQ(queue.Offer(0.0, 10.0).admission, Admission::kServed);
  EXPECT_EQ(queue.depth(), 1u);  // at capacity
  EXPECT_EQ(queue.Offer(0.0, 10.0).admission, Admission::kShed);
  // Once the waiter starts (t=1000), admission resumes.
  EXPECT_EQ(queue.Offer(1000.0, 10.0).admission, Admission::kServed);
}

TEST(ConcurrencyQueueTest, SerializeRoundTripsMidBurst) {
  ConcurrencyQueue queue(QueueConfig{2, 8, 500.0});
  for (int i = 0; i < 6; ++i) queue.Offer(static_cast<double>(i), 300.0);
  BinaryWriter writer;
  queue.SerializeTo(&writer);
  const std::string bytes = writer.Take();

  BinaryReader reader(bytes);
  ConcurrencyQueue restored = ConcurrencyQueue::ParseFrom(&reader).ValueOrDie();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(restored == queue);
  // The restored queue behaves identically, not just compares equal.
  const QueueOutcome a = queue.Offer(6.0, 300.0);
  const QueueOutcome b = restored.Offer(6.0, 300.0);
  EXPECT_EQ(a.admission, b.admission);
  EXPECT_EQ(a.end_to_end_ms, b.end_to_end_ms);
}

TEST(ConcurrencyQueueTest, ParseRejectsTruncatedAndCorruptBytes) {
  ConcurrencyQueue queue(QueueConfig{2, 4, 100.0});
  queue.Offer(0.0, 50.0);
  queue.Offer(0.0, 50.0);
  queue.Offer(0.0, 50.0);
  BinaryWriter writer;
  queue.SerializeTo(&writer);
  const std::string bytes = writer.Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    BinaryReader reader(prefix);
    const auto result = ConcurrencyQueue::ParseFrom(&reader);
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_FALSE(result.status().message().empty());
  }
  // More busy servers than slots.
  ConcurrencyQueue busy(QueueConfig{3, 0, 0.0});
  busy.Offer(0.0, 10.0);
  busy.Offer(0.0, 10.0);
  BinaryWriter bad_writer;
  busy.SerializeTo(&bad_writer);
  std::string bad = bad_writer.Take();
  bad[0] = 1;  // concurrency 3 -> 1 (varint, single byte)
  BinaryReader reader(bad);
  const auto result = ConcurrencyQueue::ParseFrom(&reader);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("busy servers"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// LatencyLane
// ---------------------------------------------------------------------

LatencySpec ConstantLaneSpec() {
  return ParseLatencySpec("constant").ValueOrDie();
}

std::shared_ptr<const std::vector<uint64_t>> TwoHashes() {
  return std::make_shared<const std::vector<uint64_t>>(
      std::vector<uint64_t>{0x1111, 0x2222});
}

TEST(LatencyLaneTest, ColdChargesOnlyTheArrivalsFirstRequest) {
  auto lane = CreateLatencyLane(ConstantLaneSpec(), TwoHashes()).ValueOrDie();
  // One cold arrival with 3 concurrent requests: SPES V-A says they share
  // the freshly started instance, so exactly one pays the cold start.
  lane->OnMinute(5, {{0, 3}}, {1});
  const LatencyOutcome outcome = lane->TakeOutcome();
  EXPECT_EQ(outcome.served, 3u);
  EXPECT_EQ(outcome.cold_served, 1u);
  EXPECT_EQ(outcome.timeouts, 0u);
  EXPECT_EQ(outcome.shed, 0u);
  // constant: one 1000ms draw + two 10ms draws, exact in the histogram.
  EXPECT_EQ(outcome.max_ms, 1000.0);
  EXPECT_EQ(outcome.mean_ms, 340.0);
  EXPECT_EQ(outcome.queue_depth_series, (std::vector<uint32_t>{0}));
  EXPECT_EQ(outcome.max_queue_depth, 0u);
}

TEST(LatencyLaneTest, WarmArrivalNeverSamplesCold) {
  auto lane = CreateLatencyLane(ConstantLaneSpec(), TwoHashes()).ValueOrDie();
  lane->OnMinute(0, {{0, 2}, {1, 1}}, {0, 0});
  const LatencyOutcome outcome = lane->TakeOutcome();
  EXPECT_EQ(outcome.served, 3u);
  EXPECT_EQ(outcome.cold_served, 0u);
  EXPECT_EQ(outcome.max_ms, 10.0);
}

TEST(LatencyLaneTest, IdenticalInputsGiveIdenticalOutcomes) {
  const LatencySpec spec =
      ParseLatencySpec(
          "lognormal @ queue{concurrency=2,capacity=8,timeout_ms=500,seed=7}")
          .ValueOrDie();
  auto a = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  auto b = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  for (int minute = 0; minute < 4; ++minute) {
    const std::vector<Invocation> arrivals = {{0, 40}, {1, 25}};
    const std::vector<uint8_t> cold = {static_cast<uint8_t>(minute == 0), 0};
    a->OnMinute(minute, arrivals, cold);
    b->OnMinute(minute, arrivals, cold);
    EXPECT_EQ(a->live(), b->live());
  }
  EXPECT_EQ(a->TakeOutcome(), b->TakeOutcome());
}

TEST(LatencyLaneTest, LiveTotalsTrackTheOutcome) {
  // 100 requests spread over one minute arrive every 600ms; at 2000ms
  // per service the single server falls behind and the 2-slot queue
  // starts shedding.
  const LatencySpec spec =
      ParseLatencySpec(
          "constant{cold_ms=2000,warm_ms=2000} @ "
          "queue{concurrency=1,capacity=2}")
          .ValueOrDie();
  auto lane = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  lane->OnMinute(0, {{0, 100}}, {1});
  const LatencyLiveTotals live = lane->live();
  const LatencyOutcome outcome = lane->TakeOutcome();
  EXPECT_EQ(live.served, outcome.served);
  EXPECT_EQ(live.timeouts, outcome.timeouts);
  EXPECT_EQ(live.shed, outcome.shed);
  EXPECT_GT(outcome.shed, 0u);  // 100 requests, 1 slot, 2 queue slots
  EXPECT_EQ(outcome.offered(), 100u);
}

TEST(LatencyLaneTest, SaveRestoreResumesExactly) {
  const LatencySpec spec =
      ParseLatencySpec(
          "lognormal @ queue{concurrency=2,capacity=8,timeout_ms=500,seed=7}")
          .ValueOrDie();
  auto original = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  const std::vector<Invocation> arrivals = {{0, 40}, {1, 25}};
  original->OnMinute(0, arrivals, {1, 1});
  original->OnMinute(1, arrivals, {0, 0});
  const std::string blob = original->SaveState();

  auto restored = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  ASSERT_TRUE(restored->RestoreState(blob, 2).ok());
  original->OnMinute(2, arrivals, {0, 1});
  restored->OnMinute(2, arrivals, {0, 1});
  EXPECT_EQ(original->TakeOutcome(), restored->TakeOutcome());
}

TEST(LatencyLaneTest, RestoreValidatesTheBlob) {
  const LatencySpec spec = ConstantLaneSpec();
  auto lane = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  lane->OnMinute(0, {{0, 2}}, {1});
  const std::string blob = lane->SaveState();

  auto target = CreateLatencyLane(spec, TwoHashes()).ValueOrDie();
  // Minute count mismatch: the blob covers 1 minute, not 5.
  const Status wrong_minutes = target->RestoreState(blob, 5);
  EXPECT_EQ(wrong_minutes.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong_minutes.message().find("minutes"), std::string::npos);
  // Queue config mismatch.
  const LatencySpec other =
      ParseLatencySpec("constant @ queue{concurrency=4}").ValueOrDie();
  auto other_lane = CreateLatencyLane(other, TwoHashes()).ValueOrDie();
  EXPECT_EQ(other_lane->RestoreState(blob, 1).code(),
            StatusCode::kInvalidArgument);
  // Truncations never parse.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(target->RestoreState(blob.substr(0, len), 1).ok());
  }
}

// ---------------------------------------------------------------------
// SimStream integration
// ---------------------------------------------------------------------

TEST(LatencyStreamTest, DisabledRunsCarryNoLatencyOutcome) {
  Trace trace = MakeTrace({{1, 0, 2, 0, 3, 0}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1)).ValueOrDie();
  const SimulationOutcome outcome = stream.Finish().ValueOrDie();
  EXPECT_EQ(outcome.latency, nullptr);
}

TEST(LatencyStreamTest, EnabledRunsAccountEveryArrival) {
  Trace trace = MakeTrace({{1, 0, 2, 0, 3, 0}, {0, 1, 0, 1, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1, "constant")).ValueOrDie();
  const SimulationOutcome outcome = stream.Finish().ValueOrDie();
  ASSERT_NE(outcome.latency, nullptr);
  // Simulated window is minutes 1..5: 5 arrivals on f0, 3 on f1.
  EXPECT_EQ(outcome.latency->offered(), 8u);
  EXPECT_EQ(outcome.latency->served, 8u);
  EXPECT_EQ(outcome.latency->timeouts, 0u);
  EXPECT_EQ(outcome.latency->shed, 0u);
  EXPECT_EQ(outcome.latency->histogram.TotalCount(), 8u);
  EXPECT_EQ(outcome.latency->queue_depth_series.size(), 5u);
  EXPECT_EQ(outcome.metrics.total_invocations, 8u);
  // Cold-served mirrors the engine's cold-start accounting: each cold
  // arrival-minute pays exactly one cold draw.
  EXPECT_EQ(outcome.latency->cold_served, outcome.metrics.total_cold_starts);
}

TEST(LatencyStreamTest, LatencyPathDoesNotPerturbAccounting) {
  Trace trace = MakeTrace({{2, 0, 1, 3, 0, 1, 0, 2}, {1, 1, 0, 0, 2, 0, 1, 0}});
  FixedKeepAlivePolicy plain_policy(3);
  FixedKeepAlivePolicy latency_policy(3);
  SimStream plain =
      SimStream::Create(trace, &plain_policy, Window(2)).ValueOrDie();
  SimStream with_latency =
      SimStream::Create(trace, &latency_policy,
                        Window(2, "lognormal @ queue{concurrency=1,"
                                  "timeout_ms=50,seed=3}"))
          .ValueOrDie();
  const SimulationOutcome a = plain.Finish().ValueOrDie();
  const SimulationOutcome b = with_latency.Finish().ValueOrDie();
  EXPECT_EQ(a.metrics.total_invocations, b.metrics.total_invocations);
  EXPECT_EQ(a.metrics.total_cold_starts, b.metrics.total_cold_starts);
  EXPECT_EQ(a.memory_series, b.memory_series);
  EXPECT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations) << f;
    EXPECT_EQ(a.accounts[f].cold_starts, b.accounts[f].cold_starts) << f;
  }
}

TEST(LatencyStreamTest, CreateRejectsABadLatencyBlock) {
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimOptions options = Window(0);
  options.latency = LatencySpec{};
  options.latency->model.name = "pareto";
  const auto stream = SimStream::Create(trace, &policy, options);
  EXPECT_FALSE(stream.ok());
  EXPECT_NE(stream.status().message().find("pareto"), std::string::npos);
}

TEST(LatencyStreamTest, LockstepLanesShareTheDecodeAndSampleAlike) {
  Trace trace = MakeTrace({{1, 2, 0, 3, 1, 0}, {0, 1, 1, 0, 2, 1}});
  FixedKeepAlivePolicy a(2), b(2);
  SimStream stream =
      SimStream::Create(trace, {&a, &b}, Window(1, "constant")).ValueOrDie();
  const std::vector<SimulationOutcome> outcomes =
      stream.FinishAll().ValueOrDie();
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_NE(outcomes[0].latency, nullptr);
  ASSERT_NE(outcomes[1].latency, nullptr);
  // Identical policies see identical cold flags, so the whole latency
  // outcome matches lane for lane.
  EXPECT_EQ(*outcomes[0].latency, *outcomes[1].latency);
}

TEST(LatencyStreamTest, CheckpointRoundTripsThroughBytes) {
  Trace trace = MakeTrace({{2, 1, 0, 3, 1, 0, 2, 1, 0, 4},
                           {0, 1, 2, 0, 1, 2, 0, 1, 2, 0}});
  const std::string block =
      "lognormal @ queue{concurrency=1,capacity=4,timeout_ms=200,seed=5}";
  FixedKeepAlivePolicy original_policy(2);
  SimStream original =
      SimStream::Create(trace, &original_policy, Window(1, block))
          .ValueOrDie();
  ASSERT_TRUE(original.RunUntil(5).ok());
  const SimCheckpoint checkpoint = original.Checkpoint().ValueOrDie();
  ASSERT_EQ(checkpoint.lanes.size(), 1u);
  EXPECT_FALSE(checkpoint.lanes[0].latency_state.empty());
  const std::string bytes = SerializeCheckpoint(checkpoint);
  const SimCheckpoint parsed = ParseCheckpoint(bytes).ValueOrDie();

  FixedKeepAlivePolicy resumed_policy(2);
  SimStream resumed =
      SimStream::Create(trace, &resumed_policy, Window(1, block))
          .ValueOrDie();
  ASSERT_TRUE(resumed.Restore(parsed).ok());
  const SimulationOutcome from_start = original.Finish().ValueOrDie();
  const SimulationOutcome from_restore = resumed.Finish().ValueOrDie();
  ASSERT_NE(from_start.latency, nullptr);
  ASSERT_NE(from_restore.latency, nullptr);
  EXPECT_EQ(*from_start.latency, *from_restore.latency);
  EXPECT_EQ(from_start.metrics.total_cold_starts, from_restore.metrics.total_cold_starts);
  EXPECT_EQ(from_start.memory_series, from_restore.memory_series);
}

TEST(LatencyStreamTest, DisabledCheckpointsStayLatencyFree) {
  Trace trace = MakeTrace({{1, 0, 2, 0, 3, 0}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1)).ValueOrDie();
  ASSERT_TRUE(stream.RunUntil(3).ok());
  const SimCheckpoint checkpoint = stream.Checkpoint().ValueOrDie();
  ASSERT_EQ(checkpoint.lanes.size(), 1u);
  EXPECT_TRUE(checkpoint.lanes[0].latency_state.empty());
  // And the byte form still parses (version-1 layout).
  const SimCheckpoint parsed =
      ParseCheckpoint(SerializeCheckpoint(checkpoint)).ValueOrDie();
  EXPECT_TRUE(parsed.lanes[0].latency_state.empty());
}

TEST(LatencyStreamTest, RestoreRejectsALatencyMismatch) {
  Trace trace = MakeTrace({{1, 0, 2, 0, 3, 0}});
  FixedKeepAlivePolicy with_policy(2);
  SimStream with_latency =
      SimStream::Create(trace, &with_policy, Window(1, "constant"))
          .ValueOrDie();
  ASSERT_TRUE(with_latency.RunUntil(3).ok());
  const SimCheckpoint checkpoint = with_latency.Checkpoint().ValueOrDie();

  FixedKeepAlivePolicy without_policy(2);
  SimStream without_latency =
      SimStream::Create(trace, &without_policy, Window(1)).ValueOrDie();
  const Status mismatch = without_latency.Restore(checkpoint);
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// ClusterSession integration
// ---------------------------------------------------------------------

Trace MakeFleet(int functions, int minutes) {
  std::vector<std::vector<uint32_t>> rows;
  for (int f = 0; f < functions; ++f) {
    std::vector<uint32_t> row;
    row.reserve(static_cast<size_t>(minutes));
    for (int t = 0; t < minutes; ++t) {
      row.push_back(static_cast<uint32_t>((t + f) % 3 == 0 ? 2 : 1));
    }
    rows.push_back(std::move(row));
  }
  return MakeTrace(std::move(rows));
}

TEST(LatencyClusterTest, PerNodeOutcomesMergeExactlyIntoTheFleet) {
  const Trace trace = MakeFleet(8, 40);
  ClusterSession session =
      ClusterSession::Create(
          trace, ClusterSpec{2, 0, {"hash", {}}, {}},
          ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie(),
          Window(2, "constant @ queue{concurrency=2,capacity=16,"
                    "timeout_ms=5000}"))
          .ValueOrDie();
  const ClusterOutcome outcome = session.Finish().ValueOrDie();
  ASSERT_NE(outcome.fleet.latency, nullptr);
  uint64_t served = 0, timeouts = 0, shed = 0;
  FixedBucketHistogram merged;
  for (const NodeOutcome& node : outcome.nodes) {
    ASSERT_NE(node.sim.latency, nullptr);
    served += node.sim.latency->served;
    timeouts += node.sim.latency->timeouts;
    shed += node.sim.latency->shed;
    merged.Merge(node.sim.latency->histogram);
  }
  EXPECT_EQ(outcome.fleet.latency->served, served);
  EXPECT_EQ(outcome.fleet.latency->timeouts, timeouts);
  EXPECT_EQ(outcome.fleet.latency->shed, shed);
  EXPECT_EQ(outcome.fleet.latency->histogram, merged);
  EXPECT_EQ(outcome.fleet.latency->offered(),
            outcome.fleet.metrics.total_invocations);
  // Fleet depth series sums the per-node series minute by minute.
  EXPECT_EQ(outcome.fleet.latency->queue_depth_series.size(), 38u);
}

TEST(LatencyClusterTest, SingleNodeClusterMatchesAPlainStream) {
  const Trace trace = MakeFleet(4, 30);
  const std::string block =
      "lognormal @ queue{concurrency=2,capacity=8,timeout_ms=300,seed=11}";
  ClusterSession session =
      ClusterSession::Create(
          trace, ClusterSpec{},
          ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie(),
          Window(2, block))
          .ValueOrDie();
  const ClusterOutcome cluster = session.Finish().ValueOrDie();

  FixedKeepAlivePolicy policy(10);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(2, block)).ValueOrDie();
  const SimulationOutcome plain = stream.Finish().ValueOrDie();
  ASSERT_NE(cluster.fleet.latency, nullptr);
  ASSERT_NE(plain.latency, nullptr);
  EXPECT_EQ(*cluster.fleet.latency, *plain.latency);
}

TEST(LatencyClusterTest, CheckpointRoundTripsThroughBytes) {
  const Trace trace = MakeFleet(8, 60);
  const ClusterSpec cluster{3, 0, {"hash", {}}, {}};
  const PolicySpec policy =
      ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  const SimOptions options =
      Window(2, "lognormal @ queue{concurrency=1,capacity=4,"
                "timeout_ms=200,seed=5}");
  ClusterSession original =
      ClusterSession::Create(trace, cluster, policy, options).ValueOrDie();
  ASSERT_TRUE(original.RunUntil(30).ok());
  const ClusterCheckpoint checkpoint = original.Checkpoint().ValueOrDie();
  ASSERT_EQ(checkpoint.nodes.size(), 3u);
  for (const auto& node : checkpoint.nodes) {
    EXPECT_FALSE(node.latency_state.empty());
  }
  const std::string bytes = SerializeClusterCheckpoint(checkpoint);
  const ClusterCheckpoint parsed =
      ParseClusterCheckpoint(bytes).ValueOrDie();

  ClusterSession resumed =
      ClusterSession::Create(trace, cluster, policy, options).ValueOrDie();
  ASSERT_TRUE(resumed.Restore(parsed).ok());
  const ClusterOutcome from_start = original.Finish().ValueOrDie();
  const ClusterOutcome from_restore = resumed.Finish().ValueOrDie();
  ASSERT_NE(from_start.fleet.latency, nullptr);
  ASSERT_NE(from_restore.fleet.latency, nullptr);
  EXPECT_EQ(*from_start.fleet.latency, *from_restore.fleet.latency);
  ASSERT_EQ(from_start.nodes.size(), from_restore.nodes.size());
  for (size_t i = 0; i < from_start.nodes.size(); ++i) {
    ASSERT_NE(from_start.nodes[i].sim.latency, nullptr);
    ASSERT_NE(from_restore.nodes[i].sim.latency, nullptr);
    EXPECT_EQ(*from_start.nodes[i].sim.latency,
              *from_restore.nodes[i].sim.latency)
        << "node " << i;
    EXPECT_EQ(from_start.nodes[i].sim.metrics.total_cold_starts,
              from_restore.nodes[i].sim.metrics.total_cold_starts);
  }
  EXPECT_EQ(from_start.reroutes, from_restore.reroutes);
}

TEST(LatencyClusterTest, CheckpointParseRejectsCorruptBytes) {
  const Trace trace = MakeFleet(4, 20);
  ClusterSession session =
      ClusterSession::Create(
          trace, ClusterSpec{2, 0, {"hash", {}}, {}},
          ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie(),
          Window(2, "constant"))
          .ValueOrDie();
  ASSERT_TRUE(session.RunUntil(10).ok());
  const std::string bytes =
      SerializeClusterCheckpoint(session.Checkpoint().ValueOrDie());
  EXPECT_FALSE(ParseClusterCheckpoint("").ok());
  EXPECT_FALSE(ParseClusterCheckpoint(bytes.substr(0, 4)).ok());
  EXPECT_FALSE(ParseClusterCheckpoint(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(ParseClusterCheckpoint(bytes + "x").ok());
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  const auto result = ParseClusterCheckpoint(bad_magic);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LatencyClusterTest, RestoreRejectsACheckpointFromAnotherShape) {
  const Trace trace = MakeFleet(4, 20);
  const PolicySpec policy =
      ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  ClusterSession two_nodes =
      ClusterSession::Create(trace, ClusterSpec{2, 0, {"hash", {}}, {}},
                             policy, Window(2, "constant"))
          .ValueOrDie();
  ASSERT_TRUE(two_nodes.RunUntil(10).ok());
  const ClusterCheckpoint checkpoint = two_nodes.Checkpoint().ValueOrDie();

  ClusterSession three_nodes =
      ClusterSession::Create(trace, ClusterSpec{3, 0, {"hash", {}}, {}},
                             policy, Window(2, "constant"))
          .ValueOrDie();
  EXPECT_EQ(three_nodes.Restore(checkpoint).code(),
            StatusCode::kInvalidArgument);

  ClusterSession no_latency =
      ClusterSession::Create(trace, ClusterSpec{2, 0, {"hash", {}}, {}},
                             policy, Window(2))
          .ValueOrDie();
  EXPECT_EQ(no_latency.Restore(checkpoint).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace spes
