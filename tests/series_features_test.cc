#include "core/series_features.h"

#include <gtest/gtest.h>

#include <vector>

namespace spes {
namespace {

std::vector<uint32_t> Seq(std::initializer_list<uint32_t> xs) { return xs; }

TEST(SeriesFeaturesTest, PaperWorkedExample) {
  // §IV: (28, 0, 12, 1, 0, 0, 0, 7) -> WT=(1,3), AT=(1,2,1), AN=(28,13,7).
  const auto counts = Seq({28, 0, 12, 1, 0, 0, 0, 7});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_EQ(f.wts, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(f.ats, (std::vector<int64_t>{1, 2, 1}));
  EXPECT_EQ(f.ans, (std::vector<int64_t>{28, 13, 7}));
  EXPECT_EQ(f.total_invocations, 48u);
  EXPECT_EQ(f.active_slots, 4);
  EXPECT_EQ(f.first_invoked, 0);
  EXPECT_EQ(f.last_invoked, 7);
}

TEST(SeriesFeaturesTest, EmptySequence) {
  const SeriesFeatures f = ExtractSeriesFeatures(std::vector<uint32_t>{});
  EXPECT_TRUE(f.wts.empty());
  EXPECT_TRUE(f.ats.empty());
  EXPECT_EQ(f.total_invocations, 0u);
  EXPECT_EQ(f.first_invoked, -1);
  EXPECT_EQ(f.last_invoked, -1);
}

TEST(SeriesFeaturesTest, AllZeros) {
  const auto counts = Seq({0, 0, 0, 0});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_TRUE(f.wts.empty());
  EXPECT_TRUE(f.ats.empty());
  EXPECT_EQ(f.first_invoked, -1);
}

TEST(SeriesFeaturesTest, LeadingIdleIsNotAWaitingTime) {
  const auto counts = Seq({0, 0, 5, 0, 3});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_EQ(f.wts, (std::vector<int64_t>{1}));
  EXPECT_EQ(f.first_invoked, 2);
}

TEST(SeriesFeaturesTest, TrailingIdleIsNotAWaitingTime) {
  const auto counts = Seq({5, 0, 0, 0});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_TRUE(f.wts.empty());
  EXPECT_EQ(f.ats, (std::vector<int64_t>{1}));
  EXPECT_EQ(f.last_invoked, 0);
}

TEST(SeriesFeaturesTest, SingleLongActiveRun) {
  const auto counts = Seq({1, 2, 3, 4});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_TRUE(f.wts.empty());
  EXPECT_EQ(f.ats, (std::vector<int64_t>{4}));
  EXPECT_EQ(f.ans, (std::vector<int64_t>{10}));
}

TEST(SeriesFeaturesTest, AlternatingPattern) {
  const auto counts = Seq({1, 0, 1, 0, 1});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_EQ(f.wts, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(f.ats, (std::vector<int64_t>{1, 1, 1}));
}

TEST(SeriesFeaturesTest, InvariantSumsHold) {
  // Property: sum(AT) == active slots; sum(AN) == total invocations;
  // |WT| == |AT| - 1 when the sequence starts and ends with activity.
  const auto counts = Seq({2, 0, 0, 1, 1, 0, 4, 0, 0, 0, 1});
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  int64_t at_sum = 0;
  for (int64_t a : f.ats) at_sum += a;
  EXPECT_EQ(at_sum, f.active_slots);
  uint64_t an_sum = 0;
  for (int64_t a : f.ans) an_sum += static_cast<uint64_t>(a);
  EXPECT_EQ(an_sum, f.total_invocations);
  EXPECT_EQ(f.wts.size(), f.ats.size() - 1);
}

TEST(InvokedSlotsTest, ListsNonZeroSlots) {
  const auto counts = Seq({0, 3, 0, 1});
  EXPECT_EQ(InvokedSlots(counts), (std::vector<int>{1, 3}));
}

TEST(InvokedSlotsTest, EmptyForAllZero) {
  const auto counts = Seq({0, 0});
  EXPECT_TRUE(InvokedSlots(counts).empty());
}

}  // namespace
}  // namespace spes
