#include "common/stats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/binary_io.h"

namespace spes {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<int64_t>{1, 2, 3}), 2.0);
}

TEST(StatsTest, StdDevBasics) {
  EXPECT_DOUBLE_EQ(StdDev(std::vector<int64_t>{5}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(std::vector<int64_t>{3, 3, 3}), 0.0);
  // Population stddev of {2, 4} is 1.
  EXPECT_DOUBLE_EQ(StdDev(std::vector<int64_t>{2, 4}), 1.0);
}

TEST(StatsTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({10, 10, 10}), 0.0);
  const double cv = CoefficientOfVariation({8, 12});
  EXPECT_NEAR(cv, 2.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<int64_t> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.0);
  // numpy.percentile([1,2,3,4,5], 10) == 1.4
  EXPECT_NEAR(Percentile(xs, 10.0), 1.4, 1e-12);
}

TEST(StatsTest, PercentileUnsortedInput) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
}

TEST(StatsTest, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(Percentile(std::vector<int64_t>{}, 50.0), 0.0);
}

TEST(StatsTest, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, TopModesOrderedByCountThenValue) {
  std::vector<int64_t> xs = {5, 5, 5, 2, 2, 9, 9, 1};
  const auto modes = TopModes(xs, 3);
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0].value, 5);
  EXPECT_EQ(modes[0].count, 3);
  // 2 and 9 tie on count; smaller value first.
  EXPECT_EQ(modes[1].value, 2);
  EXPECT_EQ(modes[2].value, 9);
}

TEST(StatsTest, TopModesHandlesSmallInputs) {
  EXPECT_TRUE(TopModes({}, 3).empty());
  EXPECT_TRUE(TopModes({1, 2, 3}, 0).empty());
  const auto modes = TopModes({7}, 5);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_EQ(modes[0].value, 7);
}

TEST(StatsTest, RepeatedValuesFiltersSingletons) {
  const auto repeated = RepeatedValues({4, 4, 9, 1, 1, 1, 8});
  ASSERT_EQ(repeated.size(), 2u);
  EXPECT_EQ(repeated[0].value, 1);
  EXPECT_EQ(repeated[0].count, 3);
  EXPECT_EQ(repeated[1].value, 4);
}

TEST(StatsTest, RepeatedValuesEmptyWhenAllUnique) {
  EXPECT_TRUE(RepeatedValues({1, 2, 3}).empty());
}

TEST(StatsTest, EmpiricalCdfStepsAndDedup) {
  const auto cdf = EmpiricalCdf({1.0, 1.0, 2.0, 4.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(StatsTest, FitLineRecoversExactLine) {
  std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(-0.5 * x + 2.0);
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, -0.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(StatsTest, FitLineDegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitLine({1.0}, {2.0}).slope, 0.0);
  // Vertical data: sxx == 0.
  EXPECT_DOUBLE_EQ(FitLine({2.0, 2.0}, {1.0, 3.0}).slope, 0.0);
}

TEST(StatsTest, QuantileMatchesPercentile) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), Percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(std::vector<int64_t>{1, 2, 3, 4, 5}, 0.1),
                   Percentile(std::vector<int64_t>{1, 2, 3, 4, 5}, 10.0));
}

TEST(StatsTest, QuantileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Quantile(std::vector<double>{}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(std::vector<double>{7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Quantile(std::vector<double>{7.0}, 1.0), 7.0);
}

TEST(HistogramTest, EmptyHistogram) {
  FixedBucketHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(HistogramTest, SingleValueAllQuantiles) {
  FixedBucketHistogram h;
  h.Record(42);
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.Min(), 42u);
  EXPECT_EQ(h.Max(), 42u);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), 42u) << "q=" << q;
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below kSubBuckets land in unit buckets: quantiles are exact.
  FixedBucketHistogram h;
  for (uint64_t v = 0; v < FixedBucketHistogram::kSubBuckets; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.ValueAtQuantile(0.5), 15u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 31u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Sum(), 31u * 32u / 2u);
}

TEST(HistogramTest, DuplicateValues) {
  FixedBucketHistogram h;
  h.RecordMany(1000, 99);
  h.Record(5000);
  EXPECT_EQ(h.TotalCount(), 100u);
  // 99% of mass sits at 1000: p50/p95 land in its bucket (relative error
  // bounded by the 1/32 sub-bucket width), p100 is the exact max.
  const uint64_t p50 = h.ValueAtQuantile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 1000.0, 1000.0 / 32.0 + 1.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), h.ValueAtQuantile(0.95));
  EXPECT_EQ(h.ValueAtQuantile(1.0), 5000u);
}

TEST(HistogramTest, QuantileRelativeErrorIsBounded) {
  FixedBucketHistogram h;
  for (uint64_t v = 1; v <= 100000; v += 7) h.Record(v);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double exact = q * 100000.0;
    const double approx = static_cast<double>(h.ValueAtQuantile(q));
    // Bucket relative width is 1/32; the stride adds a little slack.
    EXPECT_NEAR(approx, exact, exact / 16.0 + 8.0) << "q=" << q;
  }
}

TEST(HistogramTest, MergeIsExact) {
  FixedBucketHistogram a;
  FixedBucketHistogram b;
  FixedBucketHistogram whole;
  for (uint64_t v = 0; v < 5000; ++v) {
    ((v % 3 == 0) ? a : b).Record(v * 13);
    whole.Record(v * 13);
  }
  a.Merge(b);
  EXPECT_EQ(a, whole);
}

TEST(HistogramTest, MergeWithEmpty) {
  FixedBucketHistogram a;
  a.Record(7);
  FixedBucketHistogram empty;
  FixedBucketHistogram merged = a;
  merged.Merge(empty);
  EXPECT_EQ(merged, a);
  empty.Merge(a);
  EXPECT_EQ(empty, a);
}

TEST(HistogramTest, SerializeRoundTrip) {
  FixedBucketHistogram h;
  h.RecordMany(3, 4);
  h.Record(123456789);
  h.Record(0);
  BinaryWriter w;
  h.SerializeTo(&w);
  const std::string bytes = w.Take();
  BinaryReader r(bytes);
  const Result<FixedBucketHistogram> parsed =
      FixedBucketHistogram::ParseFrom(&r);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.ValueOrDie(), h);
  EXPECT_TRUE(r.AtEnd());
}

TEST(HistogramTest, SerializeRoundTripEmpty) {
  FixedBucketHistogram h;
  BinaryWriter w;
  h.SerializeTo(&w);
  const std::string bytes = w.Take();
  BinaryReader r(bytes);
  const Result<FixedBucketHistogram> parsed =
      FixedBucketHistogram::ParseFrom(&r);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.ValueOrDie(), h);
}

TEST(HistogramTest, ParseRejectsCorruptBytes) {
  FixedBucketHistogram h;
  h.RecordMany(100, 10);
  BinaryWriter w;
  h.SerializeTo(&w);
  const std::string bytes = w.Take();
  // Truncations at every prefix must fail loudly, never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    BinaryReader r(prefix);
    const Result<FixedBucketHistogram> parsed =
        FixedBucketHistogram::ParseFrom(&r);
    if (parsed.ok()) {
      // A shorter prefix can only parse if it is not a strict prefix of
      // the canonical encoding — which varint framing rules out.
      ADD_FAILURE() << "truncated prefix of length " << len << " parsed";
    } else {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

class PercentileMonotonicTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotonicTest, PercentileIsMonotoneInP) {
  std::vector<int64_t> xs = {9, 1, 7, 3, 3, 8, 2, 10, 4};
  const double p = GetParam();
  EXPECT_LE(Percentile(xs, p), Percentile(xs, p + 5.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotonicTest,
                         ::testing::Values(0.0, 5.0, 25.0, 50.0, 75.0, 90.0,
                                           95.0));

}  // namespace
}  // namespace spes
