#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace spes {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<int64_t>{1, 2, 3}), 2.0);
}

TEST(StatsTest, StdDevBasics) {
  EXPECT_DOUBLE_EQ(StdDev(std::vector<int64_t>{5}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(std::vector<int64_t>{3, 3, 3}), 0.0);
  // Population stddev of {2, 4} is 1.
  EXPECT_DOUBLE_EQ(StdDev(std::vector<int64_t>{2, 4}), 1.0);
}

TEST(StatsTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({10, 10, 10}), 0.0);
  const double cv = CoefficientOfVariation({8, 12});
  EXPECT_NEAR(cv, 2.0 / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<int64_t> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.0);
  // numpy.percentile([1,2,3,4,5], 10) == 1.4
  EXPECT_NEAR(Percentile(xs, 10.0), 1.4, 1e-12);
}

TEST(StatsTest, PercentileUnsortedInput) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
}

TEST(StatsTest, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(Percentile(std::vector<int64_t>{}, 50.0), 0.0);
}

TEST(StatsTest, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, TopModesOrderedByCountThenValue) {
  std::vector<int64_t> xs = {5, 5, 5, 2, 2, 9, 9, 1};
  const auto modes = TopModes(xs, 3);
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0].value, 5);
  EXPECT_EQ(modes[0].count, 3);
  // 2 and 9 tie on count; smaller value first.
  EXPECT_EQ(modes[1].value, 2);
  EXPECT_EQ(modes[2].value, 9);
}

TEST(StatsTest, TopModesHandlesSmallInputs) {
  EXPECT_TRUE(TopModes({}, 3).empty());
  EXPECT_TRUE(TopModes({1, 2, 3}, 0).empty());
  const auto modes = TopModes({7}, 5);
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_EQ(modes[0].value, 7);
}

TEST(StatsTest, RepeatedValuesFiltersSingletons) {
  const auto repeated = RepeatedValues({4, 4, 9, 1, 1, 1, 8});
  ASSERT_EQ(repeated.size(), 2u);
  EXPECT_EQ(repeated[0].value, 1);
  EXPECT_EQ(repeated[0].count, 3);
  EXPECT_EQ(repeated[1].value, 4);
}

TEST(StatsTest, RepeatedValuesEmptyWhenAllUnique) {
  EXPECT_TRUE(RepeatedValues({1, 2, 3}).empty());
}

TEST(StatsTest, EmpiricalCdfStepsAndDedup) {
  const auto cdf = EmpiricalCdf({1.0, 1.0, 2.0, 4.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(StatsTest, FitLineRecoversExactLine) {
  std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(-0.5 * x + 2.0);
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, -0.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(StatsTest, FitLineDegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitLine({1.0}, {2.0}).slope, 0.0);
  // Vertical data: sxx == 0.
  EXPECT_DOUBLE_EQ(FitLine({2.0, 2.0}, {1.0, 3.0}).slope, 0.0);
}

class PercentileMonotonicTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotonicTest, PercentileIsMonotoneInP) {
  std::vector<int64_t> xs = {9, 1, 7, 3, 3, 8, 2, 10, 4};
  const double p = GetParam();
  EXPECT_LE(Percentile(xs, p), Percentile(xs, p + 5.0));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotonicTest,
                         ::testing::Values(0.0, 5.0, 25.0, 50.0, 75.0, 90.0,
                                           95.0));

}  // namespace
}  // namespace spes
