// Registry error paths (unknown policy, duplicate registration, unknown /
// ill-typed / out-of-domain parameters), spec-string parsing, and the
// canonical-name round trip: every registered spec builds a policy whose
// name() matches the expected display name.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "core/policy_registry.h"
#include "policies/fixed_keepalive.h"

namespace spes {
namespace {

TEST(ParamValueTest, LiteralsPickTheRightAlternative) {
  EXPECT_EQ(ParamValue(true).type(), ParamType::kBool);
  EXPECT_EQ(ParamValue(10).type(), ParamType::kInt);
  EXPECT_EQ(ParamValue(0.5).type(), ParamType::kDouble);
  // A string literal must become a string, not decay to bool.
  EXPECT_EQ(ParamValue("function").type(), ParamType::kString);
  EXPECT_EQ(ParamValue("function").AsString(), "function");
}

TEST(ParsePolicySpecTest, BareNameAndBracedParams) {
  const PolicySpec bare = ParsePolicySpec("oracle").ValueOrDie();
  EXPECT_EQ(bare.name, "oracle");
  EXPECT_TRUE(bare.params.empty());

  const PolicySpec spec =
      ParsePolicySpec("fixed_keepalive{minutes=10}").ValueOrDie();
  EXPECT_EQ(spec.name, "fixed_keepalive");
  ASSERT_EQ(spec.params.size(), 1u);
  EXPECT_EQ(spec.params.at("minutes"), ParamValue(10));
}

TEST(ParsePolicySpecTest, ValueGrammarCoversAllTypes) {
  const PolicySpec spec =
      ParsePolicySpec(
          "spes{theta_prewarm=3, alpha=0.25, enable_adjusting=false}")
          .ValueOrDie();
  EXPECT_EQ(spec.params.at("theta_prewarm"), ParamValue(3));
  EXPECT_EQ(spec.params.at("alpha"), ParamValue(0.25));
  EXPECT_EQ(spec.params.at("enable_adjusting"), ParamValue(false));

  const PolicySpec strings =
      ParsePolicySpec("hybrid_histogram{granularity=application}")
          .ValueOrDie();
  EXPECT_EQ(strings.params.at("granularity"), ParamValue("application"));
}

TEST(ParsePolicySpecTest, MalformedSpecsAreInvalidArgument) {
  for (const char* bad :
       {"", "fixed_keepalive{minutes=10", "fixed_keepalive{minutes}",
        "fixed_keepalive{minutes=}", "fixed_keepalive{minutes=1,minutes=2}",
        "fixed keepalive", "name{bad key=1}", "spes{theta_prewarm=2}}",
        "spes{{theta_prewarm=2}"}) {
    const auto result = ParsePolicySpec(bad);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(FormatPolicySpecTest, RoundTripsThroughParse) {
  PolicySpec spec;
  spec.name = "spes";
  spec.params["theta_prewarm"] = ParamValue(3);
  spec.params["alpha"] = ParamValue(0.1);
  spec.params["enable_correlated"] = ParamValue(false);
  const std::string text = FormatPolicySpec(spec);
  const PolicySpec reparsed = ParsePolicySpec(text).ValueOrDie();
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(reparsed.params, spec.params);

  // Doubles keep their double-ness even when integral-valued.
  EXPECT_EQ(FormatParamValue(ParamValue(5.0)), "5.0");
  EXPECT_EQ(ParsePolicySpec("p{x=5.0}").ValueOrDie().params.at("x").type(),
            ParamType::kDouble);
}

TEST(PolicyRegistryTest, GlobalKnowsAllBuiltinPolicies) {
  const PolicyRegistry& registry = PolicyRegistry::Global();
  for (const char* name : {"spes", "defuse", "faascache", "fixed_keepalive",
                           "hybrid_histogram", "oracle"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    ASSERT_NE(registry.Find(name), nullptr) << name;
    EXPECT_EQ(registry.Find(name)->canonical_name, name);
  }
  EXPECT_EQ(registry.Names().size(), 6u);
}

TEST(PolicyRegistryTest, SpecRoundTripsToCanonicalDisplayName) {
  // spec -> policy -> name(): the registry entry must build the policy it
  // canonically names.
  const struct {
    const char* spec;
    const char* display_name;
  } kCases[] = {
      {"spes", "SPES"},
      {"defuse", "Defuse"},
      {"faascache", "FaasCache"},
      {"fixed_keepalive", "Fixed-10min"},
      {"fixed_keepalive{minutes=25}", "Fixed-25min"},
      {"hybrid_histogram", "Hybrid-Function"},
      {"hybrid_histogram{granularity=application}", "Hybrid-Application"},
      {"oracle", "Oracle"},
  };
  for (const auto& test_case : kCases) {
    const auto policy =
        PolicyRegistry::Global().CreateFromString(test_case.spec);
    ASSERT_TRUE(policy.ok()) << test_case.spec << ": "
                             << policy.status().ToString();
    EXPECT_EQ(policy.ValueOrDie()->name(), test_case.display_name)
        << test_case.spec;
  }
}

TEST(PolicyRegistryTest, UnknownPolicyIsNotFound) {
  const auto result = PolicyRegistry::Global().Create({"no_such_policy", {}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("no_such_policy"),
            std::string::npos);
  // The error lists the registered alternatives.
  EXPECT_NE(result.status().message().find("spes"), std::string::npos);
}

TEST(PolicyRegistryTest, EmptyPolicyNameIsInvalidArgument) {
  const auto result = PolicyRegistry::Global().Create({"", {}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyRegistryTest, UnknownParameterIsInvalidArgument) {
  const auto result = PolicyRegistry::Global().Create(
      {"fixed_keepalive", {{"minuets", 10}}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("minuets"), std::string::npos);
  // The error lists the accepted parameter names.
  EXPECT_NE(result.status().message().find("minutes"), std::string::npos);
}

TEST(PolicyRegistryTest, IllTypedParameterIsInvalidArgument) {
  const auto string_for_int = PolicyRegistry::Global().Create(
      {"fixed_keepalive", {{"minutes", "ten"}}});
  ASSERT_FALSE(string_for_int.ok());
  EXPECT_EQ(string_for_int.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(string_for_int.status().message().find("expects int"),
            std::string::npos);

  const auto int_for_bool = PolicyRegistry::Global().Create(
      {"spes", {{"enable_correlated", 3}}});
  ASSERT_FALSE(int_for_bool.ok());
  EXPECT_EQ(int_for_bool.status().code(), StatusCode::kInvalidArgument);

  const auto bool_for_string = PolicyRegistry::Global().Create(
      {"hybrid_histogram", {{"granularity", true}}});
  ASSERT_FALSE(bool_for_string.ok());
  EXPECT_EQ(bool_for_string.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyRegistryTest, IntCoercesToDoubleButNotConversely) {
  EXPECT_TRUE(PolicyRegistry::Global()
                  .Create({"spes", {{"alpha", 1}}})
                  .ok());
  const auto result = PolicyRegistry::Global().Create(
      {"spes", {{"theta_prewarm", 2.5}}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyRegistryTest, OutOfDomainValuesAreInvalidArgument) {
  const struct {
    const char* spec;
    const char* mentions;
  } kCases[] = {
      {"fixed_keepalive{minutes=0}", "minutes"},
      {"faascache{capacity=0}", "capacity"},
      {"faascache{capacity=-3}", "capacity"},
      {"hybrid_histogram{granularity=bogus}", "granularity"},
      {"spes{givenup_scaler=0}", "givenup_scaler"},
      {"spes{theta_prewarm=-1}", "theta_prewarm"},
      {"spes{theta_givenup_default=-1}", "theta_givenup_default"},
      // Values beyond INT_MAX must error, not truncate to int.
      {"fixed_keepalive{minutes=4294967297}", "minutes"},
      {"hybrid_histogram{range_minutes=9999999999}", "range_minutes"},
      // Double parameters have domains too (80 would mean 8000%).
      {"defuse{min_confidence=80}", "min_confidence"},
      {"hybrid_histogram{tail_percentile=101}", "tail_percentile"},
      {"hybrid_histogram{margin_fraction=-0.1}", "margin_fraction"},
      {"spes{alpha=0}", "alpha"},
  };
  for (const auto& test_case : kCases) {
    const auto result =
        PolicyRegistry::Global().CreateFromString(test_case.spec);
    ASSERT_FALSE(result.ok()) << test_case.spec;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << test_case.spec;
    EXPECT_NE(result.status().message().find(test_case.mentions),
              std::string::npos)
        << test_case.spec;
  }
}

PolicyRegistry::Entry DummyEntry(const std::string& name) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = name;
  entry.factory =
      [](const PolicyParams&) -> Result<std::unique_ptr<Policy>> {
    return std::unique_ptr<Policy>(std::make_unique<FixedKeepAlivePolicy>(5));
  };
  return entry;
}

TEST(PolicyRegistryTest, DuplicateRegistrationIsAlreadyExists) {
  PolicyRegistry registry;
  EXPECT_TRUE(registry.Register(DummyEntry("custom")).ok());
  const Status dup = registry.Register(DummyEntry("custom"));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("custom"), std::string::npos);
  // The original entry survives the rejected re-registration.
  EXPECT_TRUE(registry.Create({"custom", {}}).ok());
}

TEST(PolicyRegistryTest, BadRegistrationsAreRejected) {
  PolicyRegistry registry;
  EXPECT_EQ(registry.Register(DummyEntry("")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(DummyEntry("bad name")).code(),
            StatusCode::kInvalidArgument);

  PolicyRegistry::Entry no_factory;
  no_factory.canonical_name = "no_factory";
  EXPECT_EQ(registry.Register(std::move(no_factory)).code(),
            StatusCode::kInvalidArgument);

  PolicyRegistry::Entry dup_param = DummyEntry("dup_param");
  dup_param.params = {
      {"x", ParamType::kInt, ParamValue(1), ""},
      {"x", ParamType::kInt, ParamValue(2), ""},
  };
  EXPECT_EQ(registry.Register(std::move(dup_param)).code(),
            StatusCode::kInvalidArgument);

  PolicyRegistry::Entry mistyped_default = DummyEntry("mistyped_default");
  mistyped_default.params = {{"x", ParamType::kInt, ParamValue(0.5), ""}};
  EXPECT_EQ(registry.Register(std::move(mistyped_default)).code(),
            StatusCode::kInvalidArgument);
}

TEST(PolicyRegistryTest, DefaultsMergeUnderOverrides) {
  // Overriding one parameter leaves the others at their registered
  // defaults: a 10-minute default window with only the granularity
  // overridden still builds (and the display name proves which unit won).
  const auto policy = PolicyRegistry::Global().Create(
      {"fixed_keepalive", {}});
  EXPECT_EQ(policy.ValueOrDie()->name(), "Fixed-10min");

  const auto overridden = PolicyRegistry::Global().Create(
      {"fixed_keepalive", {{"minutes", 3}}});
  EXPECT_EQ(overridden.ValueOrDie()->name(), "Fixed-3min");
}

}  // namespace
}  // namespace spes
