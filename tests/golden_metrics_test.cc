// Golden-metrics regression harness: a fixed-seed generated fleet run
// through SPES and the fixed keep-alive baseline must reproduce these
// exact counter and memory-series values. Any engine or policy refactor
// that shifts simulated behaviour — even by one cold start or one loaded
// minute — fails this test loudly instead of silently drifting the paper's
// figures.
//
// If a change *intentionally* alters behaviour, rerun the fleet below,
// confirm the new numbers are correct, and update the goldens in the same
// commit with a note in CHANGES.md.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>

#include "core/policy_registry.h"
#include "core/spes_policy.h"
#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "trace/generator.h"
#include "trace/transform.h"

namespace spes {
namespace {

/// The golden fleet: small enough to simulate in well under a second,
/// large enough to exercise every generator archetype and SPES rule.
SimulationOutcome RunGoldenFleet(Policy* policy) {
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;
  const GeneratedTrace fleet = GenerateTrace(config).ValueOrDie();
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  return Simulate(fleet.trace, policy, options).ValueOrDie();
}

uint64_t SeriesSum(const std::vector<uint32_t>& series) {
  return std::accumulate(series.begin(), series.end(), uint64_t{0});
}

TEST(GoldenMetricsTest, SpesReproducesGoldenValues) {
  SpesPolicy spes;
  const SimulationOutcome outcome = RunGoldenFleet(&spes);
  const FleetMetrics& m = outcome.metrics;

  EXPECT_EQ(m.policy_name, "SPES");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 631u);
  EXPECT_EQ(m.wasted_memory_minutes, 82418u);
  EXPECT_EQ(m.loaded_instance_minutes, 212568u);
  EXPECT_EQ(m.max_memory, 87u);
  EXPECT_EQ(m.csr.size(), 147u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 0.051625753660637382);
  EXPECT_DOUBLE_EQ(m.median_csr, 8.730574471800244e-05);
  EXPECT_DOUBLE_EQ(m.average_memory, 73.808333333333337);
  EXPECT_DOUBLE_EQ(m.emcr, 0.61227466034398403);

  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 212568u);
  EXPECT_EQ(outcome.memory_series.front(), 72u);
  EXPECT_EQ(outcome.memory_series[1440], 74u);
  EXPECT_EQ(outcome.memory_series.back(), 72u);

  const FunctionAccount& first = outcome.accounts[0];
  EXPECT_EQ(first.invocations, 10792u);
  EXPECT_EQ(first.cold_starts, 1u);
  EXPECT_EQ(first.loaded_minutes, 2880u);
  EXPECT_EQ(first.wasted_minutes, 141u);
}

TEST(GoldenMetricsTest, FixedKeepaliveReproducesGoldenValues) {
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome outcome = RunGoldenFleet(&fixed);
  const FleetMetrics& m = outcome.metrics;

  EXPECT_EQ(m.policy_name, "Fixed-10min");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 1574u);
  EXPECT_EQ(m.wasted_memory_minutes, 79870u);
  EXPECT_EQ(m.loaded_instance_minutes, 210020u);
  EXPECT_EQ(m.max_memory, 84u);
  EXPECT_EQ(m.csr.size(), 147u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 1.0);
  EXPECT_DOUBLE_EQ(m.median_csr, 0.04878048780487805);
  EXPECT_DOUBLE_EQ(m.average_memory, 72.923611111111114);
  EXPECT_DOUBLE_EQ(m.emcr, 0.61970288543948193);

  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 210020u);
  EXPECT_EQ(outcome.memory_series.front(), 43u);
  EXPECT_EQ(outcome.memory_series[1440], 79u);
  EXPECT_EQ(outcome.memory_series.back(), 71u);
}

/// Asserts two outcomes describe bitwise-identical simulated behaviour:
/// every per-function counter, the full memory series, and every derived
/// metric except the wall-clock overhead measurements.
void ExpectBitwiseIdenticalBehaviour(const SimulationOutcome& a,
                                     const SimulationOutcome& b) {
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations) << f;
    EXPECT_EQ(a.accounts[f].invoked_minutes, b.accounts[f].invoked_minutes)
        << f;
    EXPECT_EQ(a.accounts[f].cold_starts, b.accounts[f].cold_starts) << f;
    EXPECT_EQ(a.accounts[f].loaded_minutes, b.accounts[f].loaded_minutes)
        << f;
    EXPECT_EQ(a.accounts[f].wasted_minutes, b.accounts[f].wasted_minutes)
        << f;
  }
  EXPECT_EQ(a.memory_series, b.memory_series);

  const FleetMetrics& ma = a.metrics;
  const FleetMetrics& mb = b.metrics;
  EXPECT_EQ(ma.policy_name, mb.policy_name);
  EXPECT_EQ(ma.csr, mb.csr);
  EXPECT_EQ(ma.q3_csr, mb.q3_csr);
  EXPECT_EQ(ma.p90_csr, mb.p90_csr);
  EXPECT_EQ(ma.median_csr, mb.median_csr);
  EXPECT_EQ(ma.always_cold_fraction, mb.always_cold_fraction);
  EXPECT_EQ(ma.zero_cold_fraction, mb.zero_cold_fraction);
  EXPECT_EQ(ma.total_cold_starts, mb.total_cold_starts);
  EXPECT_EQ(ma.total_invocations, mb.total_invocations);
  EXPECT_EQ(ma.wasted_memory_minutes, mb.wasted_memory_minutes);
  EXPECT_EQ(ma.loaded_instance_minutes, mb.loaded_instance_minutes);
  EXPECT_EQ(ma.average_memory, mb.average_memory);
  EXPECT_EQ(ma.max_memory, mb.max_memory);
  EXPECT_EQ(ma.emcr, mb.emcr);
}

TEST(GoldenMetricsTest, RegistryBuiltSpesMatchesDirectConstructionBitwise) {
  SpesPolicy direct;
  const SimulationOutcome direct_outcome = RunGoldenFleet(&direct);

  const std::unique_ptr<Policy> from_registry =
      PolicyRegistry::Global().Create({"spes", {}}).ValueOrDie();
  const SimulationOutcome registry_outcome =
      RunGoldenFleet(from_registry.get());

  ExpectBitwiseIdenticalBehaviour(direct_outcome, registry_outcome);
  // Anchor against the goldens above, not just each other.
  EXPECT_EQ(registry_outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(registry_outcome.memory_series), 212568u);
}

TEST(GoldenMetricsTest,
     RegistryBuiltFixedKeepaliveMatchesDirectConstructionBitwise) {
  FixedKeepAlivePolicy direct(10);
  const SimulationOutcome direct_outcome = RunGoldenFleet(&direct);

  const std::unique_ptr<Policy> from_registry =
      PolicyRegistry::Global()
          .CreateFromString("fixed_keepalive{minutes=10}")
          .ValueOrDie();
  const SimulationOutcome registry_outcome =
      RunGoldenFleet(from_registry.get());

  ExpectBitwiseIdenticalBehaviour(direct_outcome, registry_outcome);
  EXPECT_EQ(registry_outcome.metrics.total_cold_starts, 1574u);
  EXPECT_EQ(SeriesSum(registry_outcome.memory_series), 210020u);
}

TEST(GoldenMetricsTest, TransformedChainReproducesGoldenValues) {
  // The golden fleet under a stress chain: 2x load plus a flash crowd in
  // the simulation window. Pins that the transform pipeline itself is
  // deterministic end to end — the chain realizes the exact same workload
  // (and therefore the exact same simulation) on every run.
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;

  ScenarioSpec spec;
  spec.trace = TraceSpec::FromGenerator(config);
  spec.trace.transforms =
      ParseTransformChain(
          "load_scale{factor=2.0} | "
          "inject_burst{at=2900,width=15,amplitude=40,fraction=0.25,seed=7}")
          .ValueOrDie();
  spec.policy = {"fixed_keepalive", {{"minutes", 10}}};
  spec.options.train_minutes = 2 * kMinutesPerDay;

  const ScenarioOutcome run = RunScenario(spec).ValueOrDie();
  const FleetMetrics& m = run.outcome.metrics;
  EXPECT_EQ(m.policy_name, "Fixed-10min");
  EXPECT_EQ(m.total_invocations, 1031468u);
  EXPECT_EQ(m.total_cold_starts, 1588u);
  EXPECT_EQ(m.wasted_memory_minutes, 79913u);
  EXPECT_EQ(m.loaded_instance_minutes, 210407u);
  EXPECT_EQ(m.max_memory, 91u);
  ASSERT_EQ(run.outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 210407u);

  // And the same spec realizes bitwise the same workload again.
  const ScenarioOutcome again = RunScenario(spec).ValueOrDie();
  ExpectBitwiseIdenticalBehaviour(run.outcome, again.outcome);
}

TEST(GoldenMetricsTest, BothPoliciesSeeTheSameWorkload) {
  // The goldens above encode it, but assert the invariant directly: the
  // trace (and thus the arrival stream) is policy-independent.
  SpesPolicy spes;
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome a = RunGoldenFleet(&spes);
  const SimulationOutcome b = RunGoldenFleet(&fixed);
  EXPECT_EQ(a.metrics.total_invocations, b.metrics.total_invocations);
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations);
    EXPECT_EQ(a.accounts[f].invoked_minutes, b.accounts[f].invoked_minutes);
  }
}

}  // namespace
}  // namespace spes
