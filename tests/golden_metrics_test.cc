// Golden-metrics regression harness: a fixed-seed generated fleet run
// through SPES and the fixed keep-alive baseline must reproduce these
// exact counter and memory-series values. Any engine or policy refactor
// that shifts simulated behaviour — even by one cold start or one loaded
// minute — fails this test loudly instead of silently drifting the paper's
// figures.
//
// If a change *intentionally* alters behaviour, rerun the fleet below,
// confirm the new numbers are correct, and update the goldens in the same
// commit with a note in CHANGES.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>

#include "cluster/cluster.h"
#include "core/policy_registry.h"
#include "core/spes_policy.h"
#include "latency/latency.h"
#include "obs/recorder.h"
#include "obs/run_log.h"
#include "policies/fixed_keepalive.h"
#include "runner/suite_runner.h"
#include "sim/engine.h"
#include "sim/reference_kernel.h"
#include "sim/scenario.h"
#include "sim/stream.h"
#include "trace/generator.h"
#include "trace/transform.h"

namespace spes {
namespace {

/// The golden fleet: small enough to simulate in well under a second,
/// large enough to exercise every generator archetype and SPES rule.
Trace GoldenTrace() {
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;
  return std::move(GenerateTrace(config).ValueOrDie().trace);
}

SimOptions GoldenOptions() {
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  return options;
}

SimulationOutcome RunGoldenFleet(Policy* policy) {
  const Trace fleet = GoldenTrace();
  return Simulate(fleet, policy, GoldenOptions()).ValueOrDie();
}

uint64_t SeriesSum(const std::vector<uint32_t>& series) {
  return std::accumulate(series.begin(), series.end(), uint64_t{0});
}

TEST(GoldenMetricsTest, SpesReproducesGoldenValues) {
  SpesPolicy spes;
  const SimulationOutcome outcome = RunGoldenFleet(&spes);
  const FleetMetrics& m = outcome.metrics;

  EXPECT_EQ(m.policy_name, "SPES");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 631u);
  EXPECT_EQ(m.wasted_memory_minutes, 82418u);
  EXPECT_EQ(m.loaded_instance_minutes, 212568u);
  EXPECT_EQ(m.max_memory, 87u);
  EXPECT_EQ(m.csr.size(), 147u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 0.051625753660637382);
  EXPECT_DOUBLE_EQ(m.median_csr, 8.730574471800244e-05);
  EXPECT_DOUBLE_EQ(m.average_memory, 73.808333333333337);
  EXPECT_DOUBLE_EQ(m.emcr, 0.61227466034398403);

  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 212568u);
  EXPECT_EQ(outcome.memory_series.front(), 72u);
  EXPECT_EQ(outcome.memory_series[1440], 74u);
  EXPECT_EQ(outcome.memory_series.back(), 72u);

  const FunctionAccount& first = outcome.accounts[0];
  EXPECT_EQ(first.invocations, 10792u);
  EXPECT_EQ(first.cold_starts, 1u);
  EXPECT_EQ(first.loaded_minutes, 2880u);
  EXPECT_EQ(first.wasted_minutes, 141u);
}

TEST(GoldenMetricsTest, FixedKeepaliveReproducesGoldenValues) {
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome outcome = RunGoldenFleet(&fixed);
  const FleetMetrics& m = outcome.metrics;

  EXPECT_EQ(m.policy_name, "Fixed-10min");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 1574u);
  EXPECT_EQ(m.wasted_memory_minutes, 79870u);
  EXPECT_EQ(m.loaded_instance_minutes, 210020u);
  EXPECT_EQ(m.max_memory, 84u);
  EXPECT_EQ(m.csr.size(), 147u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 1.0);
  EXPECT_DOUBLE_EQ(m.median_csr, 0.04878048780487805);
  EXPECT_DOUBLE_EQ(m.average_memory, 72.923611111111114);
  EXPECT_DOUBLE_EQ(m.emcr, 0.61970288543948193);

  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 210020u);
  EXPECT_EQ(outcome.memory_series.front(), 43u);
  EXPECT_EQ(outcome.memory_series[1440], 79u);
  EXPECT_EQ(outcome.memory_series.back(), 71u);
}

TEST(GoldenMetricsTest, NaiveReferenceKernelReproducesGoldenValues) {
  // The kept per-function reference loop must hit the exact same pinned
  // numbers as the columnar kernel behind Simulate()/SimStream — both
  // implementations are anchored to one golden truth.
  SpesPolicy spes;
  const Trace fleet = GoldenTrace();
  const SimulationOutcome outcome =
      SimulateReference(fleet, &spes, GoldenOptions()).ValueOrDie();
  const FleetMetrics& m = outcome.metrics;
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 631u);
  EXPECT_EQ(m.wasted_memory_minutes, 82418u);
  EXPECT_EQ(m.loaded_instance_minutes, 212568u);
  EXPECT_EQ(m.max_memory, 87u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 0.051625753660637382);
  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(outcome.memory_series.front(), 72u);
  EXPECT_EQ(outcome.memory_series.back(), 72u);
  EXPECT_EQ(outcome.accounts[0].invocations, 10792u);
  EXPECT_EQ(outcome.accounts[0].loaded_minutes, 2880u);
  EXPECT_EQ(outcome.accounts[0].wasted_minutes, 141u);
}

/// Asserts two outcomes describe bitwise-identical simulated behaviour:
/// every per-function counter, the full memory series, and every derived
/// metric except the wall-clock overhead measurements.
void ExpectBitwiseIdenticalBehaviour(const SimulationOutcome& a,
                                     const SimulationOutcome& b) {
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations) << f;
    EXPECT_EQ(a.accounts[f].invoked_minutes, b.accounts[f].invoked_minutes)
        << f;
    EXPECT_EQ(a.accounts[f].cold_starts, b.accounts[f].cold_starts) << f;
    EXPECT_EQ(a.accounts[f].loaded_minutes, b.accounts[f].loaded_minutes)
        << f;
    EXPECT_EQ(a.accounts[f].wasted_minutes, b.accounts[f].wasted_minutes)
        << f;
  }
  EXPECT_EQ(a.memory_series, b.memory_series);

  const FleetMetrics& ma = a.metrics;
  const FleetMetrics& mb = b.metrics;
  EXPECT_EQ(ma.policy_name, mb.policy_name);
  EXPECT_EQ(ma.csr, mb.csr);
  EXPECT_EQ(ma.q3_csr, mb.q3_csr);
  EXPECT_EQ(ma.p90_csr, mb.p90_csr);
  EXPECT_EQ(ma.median_csr, mb.median_csr);
  EXPECT_EQ(ma.always_cold_fraction, mb.always_cold_fraction);
  EXPECT_EQ(ma.zero_cold_fraction, mb.zero_cold_fraction);
  EXPECT_EQ(ma.total_cold_starts, mb.total_cold_starts);
  EXPECT_EQ(ma.total_invocations, mb.total_invocations);
  EXPECT_EQ(ma.wasted_memory_minutes, mb.wasted_memory_minutes);
  EXPECT_EQ(ma.loaded_instance_minutes, mb.loaded_instance_minutes);
  EXPECT_EQ(ma.average_memory, mb.average_memory);
  EXPECT_EQ(ma.max_memory, mb.max_memory);
  EXPECT_EQ(ma.emcr, mb.emcr);
}

TEST(GoldenMetricsTest, RegistryBuiltSpesMatchesDirectConstructionBitwise) {
  SpesPolicy direct;
  const SimulationOutcome direct_outcome = RunGoldenFleet(&direct);

  const std::unique_ptr<Policy> from_registry =
      PolicyRegistry::Global().Create({"spes", {}}).ValueOrDie();
  const SimulationOutcome registry_outcome =
      RunGoldenFleet(from_registry.get());

  ExpectBitwiseIdenticalBehaviour(direct_outcome, registry_outcome);
  // Anchor against the goldens above, not just each other.
  EXPECT_EQ(registry_outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(registry_outcome.memory_series), 212568u);
}

TEST(GoldenMetricsTest,
     RegistryBuiltFixedKeepaliveMatchesDirectConstructionBitwise) {
  FixedKeepAlivePolicy direct(10);
  const SimulationOutcome direct_outcome = RunGoldenFleet(&direct);

  const std::unique_ptr<Policy> from_registry =
      PolicyRegistry::Global()
          .CreateFromString("fixed_keepalive{minutes=10}")
          .ValueOrDie();
  const SimulationOutcome registry_outcome =
      RunGoldenFleet(from_registry.get());

  ExpectBitwiseIdenticalBehaviour(direct_outcome, registry_outcome);
  EXPECT_EQ(registry_outcome.metrics.total_cold_starts, 1574u);
  EXPECT_EQ(SeriesSum(registry_outcome.memory_series), 210020u);
}

TEST(GoldenMetricsTest, TransformedChainReproducesGoldenValues) {
  // The golden fleet under a stress chain: 2x load plus a flash crowd in
  // the simulation window. Pins that the transform pipeline itself is
  // deterministic end to end — the chain realizes the exact same workload
  // (and therefore the exact same simulation) on every run.
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;

  ScenarioSpec spec;
  spec.trace = TraceSpec::FromGenerator(config);
  spec.trace.transforms =
      ParseTransformChain(
          "load_scale{factor=2.0} | "
          "inject_burst{at=2900,width=15,amplitude=40,fraction=0.25,seed=7}")
          .ValueOrDie();
  spec.policy = {"fixed_keepalive", {{"minutes", 10}}};
  spec.options.train_minutes = 2 * kMinutesPerDay;

  const ScenarioOutcome run = RunScenario(spec).ValueOrDie();
  const FleetMetrics& m = run.outcome.metrics;
  EXPECT_EQ(m.policy_name, "Fixed-10min");
  EXPECT_EQ(m.total_invocations, 1031468u);
  EXPECT_EQ(m.total_cold_starts, 1588u);
  EXPECT_EQ(m.wasted_memory_minutes, 79913u);
  EXPECT_EQ(m.loaded_instance_minutes, 210407u);
  EXPECT_EQ(m.max_memory, 91u);
  ASSERT_EQ(run.outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 210407u);

  // And the same spec realizes bitwise the same workload again.
  const ScenarioOutcome again = RunScenario(spec).ValueOrDie();
  ExpectBitwiseIdenticalBehaviour(run.outcome, again.outcome);
}

// ---------------------------------------------------------------------
// Streaming-vs-batch equivalence: the SimStream session API must
// reproduce the Simulate() goldens above bit for bit, however the
// window is driven — full run, checkpoint + restore at mid-window, or
// lockstep multi-policy lanes.
// ---------------------------------------------------------------------

TEST(GoldenMetricsTest, StreamedFullRunMatchesBatchGoldens) {
  const Trace fleet = GoldenTrace();

  SpesPolicy spes;
  SimStream spes_stream =
      SimStream::Create(fleet, &spes, GoldenOptions()).ValueOrDie();
  const SimulationOutcome spes_outcome = spes_stream.Finish().ValueOrDie();
  EXPECT_EQ(spes_outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(spes_outcome.memory_series), 212568u);

  SpesPolicy spes_batch;
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&spes_batch), spes_outcome);

  // Step-by-step driving is the same engine: alternate single steps and
  // RunUntil hops, then finish.
  FixedKeepAlivePolicy fixed(10);
  SimStream fixed_stream =
      SimStream::Create(fleet, &fixed, GoldenOptions()).ValueOrDie();
  EXPECT_TRUE(fixed_stream.Step().ok());
  EXPECT_TRUE(fixed_stream.RunUntil(3 * kMinutesPerDay).ok());
  EXPECT_TRUE(fixed_stream.Step().ok());
  const SimulationOutcome fixed_outcome =
      fixed_stream.Finish().ValueOrDie();
  EXPECT_EQ(fixed_outcome.metrics.total_cold_starts, 1574u);
  EXPECT_EQ(SeriesSum(fixed_outcome.memory_series), 210020u);

  FixedKeepAlivePolicy fixed_batch(10);
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&fixed_batch),
                                  fixed_outcome);
}

TEST(GoldenMetricsTest, CheckpointRestoreMidWindowMatchesBatchGoldens) {
  const Trace fleet = GoldenTrace();
  // Mid-window: one simulated day in, one to go.
  const int midpoint = 3 * kMinutesPerDay;

  {
    SpesPolicy original;
    SimStream first =
        SimStream::Create(fleet, &original, GoldenOptions()).ValueOrDie();
    EXPECT_TRUE(first.RunUntil(midpoint).ok());
    // Through bytes, as a cross-process resume would go.
    const std::string bytes =
        SerializeCheckpoint(first.Checkpoint().ValueOrDie());

    SpesPolicy fresh;
    SimStream second =
        SimStream::Create(fleet, &fresh, GoldenOptions()).ValueOrDie();
    EXPECT_TRUE(
        second.Restore(ParseCheckpoint(bytes).ValueOrDie()).ok());
    const SimulationOutcome resumed = second.Finish().ValueOrDie();
    EXPECT_EQ(resumed.metrics.total_cold_starts, 631u);
    EXPECT_EQ(resumed.metrics.wasted_memory_minutes, 82418u);
    EXPECT_EQ(SeriesSum(resumed.memory_series), 212568u);

    SpesPolicy batch;
    ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&batch), resumed);
  }
  {
    FixedKeepAlivePolicy original(10);
    SimStream first =
        SimStream::Create(fleet, &original, GoldenOptions()).ValueOrDie();
    EXPECT_TRUE(first.RunUntil(midpoint).ok());
    const SimCheckpoint checkpoint = first.Checkpoint().ValueOrDie();

    FixedKeepAlivePolicy fresh(10);
    SimStream second =
        SimStream::Create(fleet, &fresh, GoldenOptions()).ValueOrDie();
    EXPECT_TRUE(second.Restore(checkpoint).ok());
    const SimulationOutcome resumed = second.Finish().ValueOrDie();
    EXPECT_EQ(resumed.metrics.total_cold_starts, 1574u);
    EXPECT_EQ(SeriesSum(resumed.memory_series), 210020u);

    FixedKeepAlivePolicy batch(10);
    ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&batch), resumed);
  }
}

TEST(GoldenMetricsTest, LockstepLanesMatchBatchGoldensOverOneTraceWalk) {
  const Trace fleet = GoldenTrace();
  SpesPolicy spes;
  FixedKeepAlivePolicy fixed(10);
  SimStream stream =
      SimStream::Create(fleet, {&spes, &fixed}, GoldenOptions())
          .ValueOrDie();
  const std::vector<SimulationOutcome> outcomes =
      stream.FinishAll().ValueOrDie();

  // One shared arrival decode per minute for both lanes.
  EXPECT_EQ(stream.minutes_decoded(), 2880);

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(outcomes[0].memory_series), 212568u);
  EXPECT_EQ(outcomes[1].metrics.total_cold_starts, 1574u);
  EXPECT_EQ(SeriesSum(outcomes[1].memory_series), 210020u);

  SpesPolicy spes_batch;
  FixedKeepAlivePolicy fixed_batch(10);
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&spes_batch), outcomes[0]);
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&fixed_batch), outcomes[1]);
}

TEST(GoldenMetricsTest, Fig13StyleLockstepSweepMatchesPerPolicyGoldens) {
  // A miniature Fig. 13 sweep routed through SuiteRunner::RunLockstep:
  // one trace walk for the whole grid, results bitwise identical to the
  // per-policy thread-pool path and anchored to the goldens above.
  const Trace fleet = GoldenTrace();
  std::vector<ScenarioSpec> grid;
  for (const char* spec : {"spes", "spes{theta_prewarm=5}",
                           "fixed_keepalive{minutes=10}"}) {
    ScenarioSpec scenario;
    scenario.policy = ParsePolicySpec(spec).ValueOrDie();
    scenario.options = GoldenOptions();
    grid.push_back(std::move(scenario));
  }

  SuiteRunner runner({1, nullptr});
  const std::vector<JobResult> pooled = runner.Run(fleet, grid);
  const std::vector<JobResult> lockstep = runner.RunLockstep(fleet, grid);

  ASSERT_EQ(pooled.size(), lockstep.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    ASSERT_TRUE(pooled[i].status.ok()) << pooled[i].status.ToString();
    ASSERT_TRUE(lockstep[i].status.ok()) << lockstep[i].status.ToString();
    EXPECT_EQ(pooled[i].label, lockstep[i].label);
    ExpectBitwiseIdenticalBehaviour(pooled[i].outcome, lockstep[i].outcome);
  }
  // Anchor against the absolute goldens, not just each other.
  EXPECT_EQ(lockstep[0].outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(lockstep[0].outcome.memory_series), 212568u);
  EXPECT_EQ(lockstep[2].outcome.metrics.total_cold_starts, 1574u);
  EXPECT_EQ(SeriesSum(lockstep[2].outcome.memory_series), 210020u);
}

// ---------------------------------------------------------------------
// Cluster goldens: the cluster layer (cluster/cluster.h) must collapse
// to the plain engine for a single node, and the sharded fleet must
// reproduce these exact counters — routing, per-node accounting and
// node events are all deterministic.
// ---------------------------------------------------------------------

ScenarioSpec GoldenClusterSpec(int nodes) {
  ScenarioSpec spec;
  spec.policy = {"spes", {}};
  spec.options = GoldenOptions();
  spec.cluster = ClusterSpec{};
  spec.cluster->nodes = nodes;
  return spec;
}

TEST(GoldenMetricsTest, SingleNodeHashClusterMatchesBatchGoldensBitwise) {
  const Trace fleet = GoldenTrace();
  const ScenarioOutcome run =
      RunScenario(fleet, GoldenClusterSpec(1)).ValueOrDie();

  SpesPolicy batch;
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&batch), run.outcome);
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 212568u);

  ASSERT_NE(run.cluster, nullptr);
  EXPECT_EQ(run.cluster->nodes.size(), 1u);
  EXPECT_EQ(run.cluster->reroutes, 0u);
  ExpectBitwiseIdenticalBehaviour(run.cluster->nodes[0].sim, run.outcome);
}

TEST(GoldenMetricsTest, FourNodeHashClusterReproducesGoldenValues) {
  const Trace fleet = GoldenTrace();
  const ScenarioOutcome run =
      RunScenario(fleet, GoldenClusterSpec(4)).ValueOrDie();
  const FleetMetrics& m = run.outcome.metrics;

  // Sharding splits each node's arrival stream, so per-node SPES models
  // see less history (more cold starts) and every routing-unaware node
  // pre-warms its full predicted set (more memory + waste) — the
  // motivating observation for per-node capacity pressure.
  EXPECT_EQ(m.policy_name, "SPES");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 1535u);
  EXPECT_EQ(m.wasted_memory_minutes, 576460u);
  EXPECT_EQ(m.loaded_instance_minutes, 706610u);
  EXPECT_EQ(m.max_memory, 290u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 0.10325027085590466);
  EXPECT_DOUBLE_EQ(m.emcr, 0.18418929819844043);

  ASSERT_EQ(run.outcome.memory_series.size(), 2880u);
  EXPECT_EQ(run.outcome.memory_series.front(), 261u);
  EXPECT_EQ(SeriesSum(run.outcome.memory_series), 706610u);

  ASSERT_NE(run.cluster, nullptr);
  ASSERT_EQ(run.cluster->nodes.size(), 4u);
  EXPECT_EQ(run.cluster->reroutes, 0u);  // hash is stable: nothing moves
  const uint64_t node_invocations[] = {124002u, 144464u, 113387u, 123381u};
  const uint64_t node_cold_starts[] = {190u, 796u, 413u, 136u};
  for (size_t k = 0; k < 4; ++k) {
    const NodeOutcome& node = run.cluster->nodes[k];
    EXPECT_EQ(node.final_state, "routable");
    EXPECT_EQ(node.sim.metrics.total_invocations, node_invocations[k]) << k;
    EXPECT_EQ(node.sim.metrics.total_cold_starts, node_cold_starts[k]) << k;
    EXPECT_EQ(node.pressure_evictions, 0u);  // uncapped
  }
}

TEST(GoldenMetricsTest, NodeFailEventReroutesWithColdStartConsequences) {
  const Trace fleet = GoldenTrace();
  // Node 1 dies one simulated day in (minute 3360 = 2 days train + 1 day).
  ScenarioSpec spec = GoldenClusterSpec(4);
  spec.cluster->events =
      ParseNodeEventTimeline("fail{at=3360,node=1}").ValueOrDie();
  const ScenarioOutcome run = RunScenario(fleet, spec).ValueOrDie();

  ASSERT_NE(run.cluster, nullptr);
  // Every function node 1 served re-routes (mod-3 rehash) and pays a
  // cold start on its new home: strictly worse than the stable cluster.
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 1987u);
  EXPECT_EQ(run.cluster->reroutes, 102u);
  const NodeOutcome& failed = run.cluster->nodes[1];
  EXPECT_EQ(failed.final_state, "failed");
  // The failed node's memory is lost at the fail minute and stays empty.
  ASSERT_EQ(failed.sim.memory_series.size(), 2880u);
  EXPECT_GT(failed.sim.memory_series[3360 - 2880 - 1], 0u);
  for (size_t i = 3360 - 2880; i < failed.sim.memory_series.size(); ++i) {
    EXPECT_EQ(failed.sim.memory_series[i], 0u) << i;
  }
  // Invocations are conserved: re-routing moves work, never drops it.
  EXPECT_EQ(run.outcome.metrics.total_invocations, 505234u);
}

TEST(GoldenMetricsTest, ClusterSuiteIsBitwiseDeterministicAcrossThreads) {
  const Trace fleet = GoldenTrace();
  std::vector<ScenarioSpec> specs;
  specs.push_back(GoldenClusterSpec(4));
  specs.back().label = "hash4";
  specs.push_back(GoldenClusterSpec(4));
  specs.back().label = "least4";
  specs.back().cluster->router = {"least_loaded", {}};
  specs.push_back(GoldenClusterSpec(2));
  specs.back().label = "locality2-pressure";
  specs.back().cluster->router = {"locality", {{"pressure", 0.9}}};
  specs.back().cluster->node_capacity = 60;
  specs.back().cluster->events =
      ParseNodeEventTimeline("drain{at=3600,node=0} | add{at=3600}")
          .ValueOrDie();

  const std::vector<JobResult> serial =
      SuiteRunner({1, nullptr}).Run(fleet, specs);
  const std::vector<JobResult> parallel =
      SuiteRunner({4, nullptr}).Run(fleet, specs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].status.ok()) << serial[i].status.ToString();
    ASSERT_TRUE(parallel[i].status.ok()) << parallel[i].status.ToString();
    ExpectBitwiseIdenticalBehaviour(serial[i].outcome, parallel[i].outcome);
    ASSERT_NE(serial[i].cluster, nullptr);
    ASSERT_NE(parallel[i].cluster, nullptr);
    ASSERT_EQ(serial[i].cluster->nodes.size(),
              parallel[i].cluster->nodes.size());
    EXPECT_EQ(serial[i].cluster->reroutes, parallel[i].cluster->reroutes);
    for (size_t k = 0; k < serial[i].cluster->nodes.size(); ++k) {
      const NodeOutcome& a = serial[i].cluster->nodes[k];
      const NodeOutcome& b = parallel[i].cluster->nodes[k];
      EXPECT_EQ(a.final_state, b.final_state);
      EXPECT_EQ(a.pressure_evictions, b.pressure_evictions);
      EXPECT_EQ(a.reroutes_in, b.reroutes_in);
      ExpectBitwiseIdenticalBehaviour(a.sim, b.sim);
    }
  }
  // The hash cluster anchors against the absolute goldens above.
  EXPECT_EQ(serial[0].outcome.metrics.total_cold_starts, 1535u);
  EXPECT_EQ(SeriesSum(serial[0].outcome.memory_series), 706610u);
}

// ---------------------------------------------------------------------
// Latency subsystem goldens: the same stress chain as above with an
// opt-in latency block. Two contracts at once: the engine-side counters
// must match the latency-free goldens exactly (the subsystem observes
// the run without perturbing it), and the SLO summary itself is pinned —
// any change to sampling, queueing or histogram geometry fails loudly.
// ---------------------------------------------------------------------

constexpr char kLatencyChain[] =
    "load_scale{factor=2.0} | "
    "inject_burst{at=2900,width=15,amplitude=40,fraction=0.25,seed=7}";
/// Tight enough (one slot, 4 queue slots, 250ms patience) that the burst
/// produces all three admission classes: served, timed out, shed.
constexpr char kLatencyBlock[] =
    "lognormal{warm_median_ms=40,warm_sigma=0.4} @ "
    "queue{capacity=4,concurrency=1,seed=42,timeout_ms=250}";

ScenarioSpec LatencyChainSpec() {
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;
  ScenarioSpec spec;
  spec.trace = TraceSpec::FromGenerator(config);
  spec.trace.transforms = ParseTransformChain(kLatencyChain).ValueOrDie();
  spec.policy = {"fixed_keepalive", {{"minutes", 10}}};
  spec.options.train_minutes = 2 * kMinutesPerDay;
  spec.options.latency = ParseLatencySpec(kLatencyBlock).ValueOrDie();
  return spec;
}

ScenarioSpec LatencyClusterSpec() {
  ScenarioSpec spec = LatencyChainSpec();
  spec.policy = {"spes", {}};
  spec.cluster = ClusterSpec{};
  spec.cluster->nodes = 4;
  return spec;
}

TEST(GoldenMetricsTest, LatencyEnabledChainReproducesGoldenValues) {
  const ScenarioOutcome run = RunScenario(LatencyChainSpec()).ValueOrDie();

  // Engine-side counters match TransformedChainReproducesGoldenValues
  // bit for bit: enabling the latency block perturbs nothing.
  const FleetMetrics& m = run.outcome.metrics;
  EXPECT_EQ(m.total_invocations, 1031468u);
  EXPECT_EQ(m.total_cold_starts, 1588u);
  EXPECT_EQ(m.wasted_memory_minutes, 79913u);
  EXPECT_EQ(m.loaded_instance_minutes, 210407u);
  EXPECT_EQ(m.max_memory, 91u);

  ASSERT_NE(run.outcome.latency, nullptr);
  const LatencyOutcome& l = *run.outcome.latency;
  EXPECT_EQ(l.offered(), 1031468u);  // every arrival is accounted for
  EXPECT_EQ(l.served, 1020800u);
  EXPECT_EQ(l.cold_served, 1502u);  // cold arrivals whose first request ran
  EXPECT_EQ(l.timeouts, 5266u);
  EXPECT_EQ(l.shed, 5402u);
  EXPECT_EQ(l.histogram.TotalCount(), l.served);
  EXPECT_DOUBLE_EQ(l.p50_ms, 40.448);
  EXPECT_DOUBLE_EQ(l.p95_ms, 87.040000000000006);
  EXPECT_DOUBLE_EQ(l.p99_ms, 202.75200000000001);
  EXPECT_DOUBLE_EQ(l.max_ms, 4346.7759999999998);
  EXPECT_EQ(l.max_queue_depth, 4u);  // pinned at capacity: sheds happened
  EXPECT_EQ(l.queue_depth_series.size(), 2880u);
}

TEST(GoldenMetricsTest, LatencyEnabledFourNodeClusterReproducesGoldenValues) {
  const ScenarioOutcome run = RunScenario(LatencyClusterSpec()).ValueOrDie();
  EXPECT_EQ(run.outcome.metrics.total_invocations, 1031468u);
  EXPECT_EQ(run.outcome.metrics.total_cold_starts, 1556u);
  ASSERT_NE(run.cluster, nullptr);
  EXPECT_EQ(run.cluster->reroutes, 0u);

  // Fleet summary: per-node queues see only their routed quarter of the
  // load, so far fewer requests time out than in the single-lane run.
  ASSERT_NE(run.outcome.latency, nullptr);
  const LatencyOutcome& fleet = *run.outcome.latency;
  EXPECT_EQ(fleet.offered(), 1031468u);
  EXPECT_EQ(fleet.served, 1030521u);
  EXPECT_EQ(fleet.cold_served, 1554u);
  EXPECT_EQ(fleet.timeouts, 947u);
  EXPECT_EQ(fleet.shed, 0u);
  EXPECT_DOUBLE_EQ(fleet.p50_ms, 40.448);
  EXPECT_DOUBLE_EQ(fleet.p95_ms, 76.799999999999997);
  EXPECT_DOUBLE_EQ(fleet.p99_ms, 105.47199999999999);
  EXPECT_DOUBLE_EQ(fleet.max_ms, 4013.0100000000002);
  EXPECT_EQ(fleet.max_queue_depth, 1u);

  // Per-node breakdown: the hash split concentrates the burst's queueing
  // damage (node 1 pays 577 of the 947 timeouts).
  ASSERT_EQ(run.cluster->nodes.size(), 4u);
  const uint64_t node_served[] = {252104u, 294951u, 230800u, 252666u};
  const uint64_t node_timeouts[] = {100u, 577u, 174u, 96u};
  const uint64_t node_cold_served[] = {192u, 802u, 417u, 143u};
  uint64_t served_sum = 0, timeout_sum = 0;
  for (size_t k = 0; k < 4; ++k) {
    const NodeOutcome& node = run.cluster->nodes[k];
    ASSERT_NE(node.sim.latency, nullptr) << k;
    EXPECT_EQ(node.sim.latency->served, node_served[k]) << k;
    EXPECT_EQ(node.sim.latency->timeouts, node_timeouts[k]) << k;
    EXPECT_EQ(node.sim.latency->cold_served, node_cold_served[k]) << k;
    EXPECT_EQ(node.sim.latency->shed, 0u) << k;
    served_sum += node.sim.latency->served;
    timeout_sum += node.sim.latency->timeouts;
  }
  EXPECT_EQ(served_sum, fleet.served);
  EXPECT_EQ(timeout_sum, fleet.timeouts);
}

TEST(GoldenMetricsTest, LatencySuiteIsBitwiseDeterministicAcrossThreads) {
  std::vector<ScenarioSpec> specs = {LatencyChainSpec(),
                                     LatencyClusterSpec()};
  const std::vector<JobResult> serial = SuiteRunner({1, nullptr}).Run(specs);
  const std::vector<JobResult> parallel =
      SuiteRunner({4, nullptr}).Run(specs);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].status.ok()) << serial[i].status.ToString();
    ASSERT_TRUE(parallel[i].status.ok()) << parallel[i].status.ToString();
    ASSERT_NE(serial[i].outcome.latency, nullptr);
    ASSERT_NE(parallel[i].outcome.latency, nullptr);
    EXPECT_EQ(*serial[i].outcome.latency, *parallel[i].outcome.latency) << i;
  }
  // Anchored to the absolute goldens above.
  EXPECT_EQ(serial[0].outcome.latency->timeouts, 5266u);
  EXPECT_EQ(serial[1].outcome.latency->timeouts, 947u);
}

TEST(GoldenMetricsTest, LatencyStreamCheckpointRestoreMatchesGoldens) {
  const ScenarioSpec spec = LatencyChainSpec();
  const Trace trace = RealizeTrace(spec.trace).ValueOrDie();
  const int midpoint = 3 * kMinutesPerDay;  // inside the burst's aftermath

  FixedKeepAlivePolicy original_policy(10);
  SimStream original =
      SimStream::Create(trace, &original_policy, spec.options).ValueOrDie();
  ASSERT_TRUE(original.RunUntil(midpoint).ok());
  const std::string bytes =
      SerializeCheckpoint(original.Checkpoint().ValueOrDie());

  FixedKeepAlivePolicy fresh_policy(10);
  SimStream resumed =
      SimStream::Create(trace, &fresh_policy, spec.options).ValueOrDie();
  ASSERT_TRUE(resumed.Restore(ParseCheckpoint(bytes).ValueOrDie()).ok());
  const SimulationOutcome from_start = original.Finish().ValueOrDie();
  const SimulationOutcome from_restore = resumed.Finish().ValueOrDie();

  ASSERT_NE(from_start.latency, nullptr);
  ASSERT_NE(from_restore.latency, nullptr);
  EXPECT_EQ(*from_start.latency, *from_restore.latency);
  ExpectBitwiseIdenticalBehaviour(from_start, from_restore);
  EXPECT_EQ(from_restore.latency->served, 1020800u);
  EXPECT_EQ(from_restore.latency->timeouts, 5266u);
  EXPECT_EQ(from_restore.latency->shed, 5402u);
}

TEST(GoldenMetricsTest, LatencyClusterCheckpointRestoreMatchesGoldens) {
  const ScenarioSpec spec = LatencyClusterSpec();
  const Trace trace = RealizeTrace(spec.trace).ValueOrDie();
  const int midpoint = 3 * kMinutesPerDay;

  ClusterSession original =
      ClusterSession::Create(trace, *spec.cluster, spec.policy, spec.options)
          .ValueOrDie();
  ASSERT_TRUE(original.RunUntil(midpoint).ok());
  const std::string bytes =
      SerializeClusterCheckpoint(original.Checkpoint().ValueOrDie());

  ClusterSession resumed =
      ClusterSession::Create(trace, *spec.cluster, spec.policy, spec.options)
          .ValueOrDie();
  ASSERT_TRUE(
      resumed.Restore(ParseClusterCheckpoint(bytes).ValueOrDie()).ok());
  const ClusterOutcome from_start = original.Finish().ValueOrDie();
  const ClusterOutcome from_restore = resumed.Finish().ValueOrDie();

  ASSERT_NE(from_start.fleet.latency, nullptr);
  ASSERT_NE(from_restore.fleet.latency, nullptr);
  EXPECT_EQ(*from_start.fleet.latency, *from_restore.fleet.latency);
  ExpectBitwiseIdenticalBehaviour(from_start.fleet, from_restore.fleet);
  ASSERT_EQ(from_restore.nodes.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    ASSERT_NE(from_start.nodes[k].sim.latency, nullptr) << k;
    ASSERT_NE(from_restore.nodes[k].sim.latency, nullptr) << k;
    EXPECT_EQ(*from_start.nodes[k].sim.latency,
              *from_restore.nodes[k].sim.latency)
        << k;
  }
  // Anchored to the cluster goldens above.
  EXPECT_EQ(from_restore.fleet.latency->served, 1030521u);
  EXPECT_EQ(from_restore.fleet.latency->timeouts, 947u);
  EXPECT_EQ(from_restore.nodes[1].sim.latency->timeouts, 577u);
}

// ---------------------------------------------------------------------
// Observability goldens: attaching a RunRecorder (obs/recorder.h) must
// never perturb the simulation. Each shape of run — plain batch,
// lockstep lanes, sharded cluster — is replayed with a recorder attached
// and must stay bitwise identical to the recorder-free goldens above,
// while the run log itself parses and samples the documented sim-minute
// boundaries.
// ---------------------------------------------------------------------

TEST(GoldenMetricsTest, RecorderAttachedBatchRunMatchesGoldensBitwise) {
  const Trace fleet = GoldenTrace();

  StringLogSink sink;
  RunRecorder::Options rec_options;
  rec_options.label = "golden batch";
  RunRecorder recorder(&sink, rec_options);
  SimOptions options = GoldenOptions();
  options.recorder = &recorder;

  SpesPolicy recorded_policy;
  const SimulationOutcome recorded =
      Simulate(fleet, &recorded_policy, options).ValueOrDie();
  recorder.Finish();

  SpesPolicy plain_policy;
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&plain_policy), recorded);
  EXPECT_EQ(recorded.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(recorded.memory_series), 212568u);

  // The emitted log parses and has the documented shape: train +
  // simulate + finish spans, and 2880 simulated minutes at the default
  // 60-minute stride = 48 heartbeats whose final sample carries the
  // full-run totals (heartbeats are pure functions of sim state).
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_EQ(log.label, "golden batch");
  EXPECT_TRUE(log.saw_run_end);
  ASSERT_EQ(log.spans.size(), 3u);
  EXPECT_EQ(log.spans[0].name, "train");
  EXPECT_EQ(log.spans[1].name, "simulate");
  EXPECT_EQ(log.spans[2].name, "finish");
  ASSERT_EQ(log.heartbeats.size(), 48u);
  EXPECT_EQ(log.heartbeats.back().invocations, 505234u);
  EXPECT_EQ(log.heartbeats.back().cold_starts, 631u);
  EXPECT_EQ(log.heartbeats.back().loaded_instance_minutes, 212568u);
  // Decoder counters tally decoded arrival records and 240-minute
  // blocks (columnar.h), not raw invocation counts — pinned all the
  // same: they are a pure function of the seed-99 workload.
  EXPECT_EQ(log.decoder.blocks, 12u);
  EXPECT_EQ(log.decoder.invocations, 132950u);
}

TEST(GoldenMetricsTest, RecorderAttachedLockstepLanesMatchGoldensBitwise) {
  const Trace fleet = GoldenTrace();

  StringLogSink sink;
  RunRecorder recorder(&sink);
  SimOptions options = GoldenOptions();
  options.recorder = &recorder;

  SpesPolicy spes;
  FixedKeepAlivePolicy fixed(10);
  SimStream stream =
      SimStream::Create(fleet, {&spes, &fixed}, options).ValueOrDie();
  const std::vector<SimulationOutcome> outcomes =
      stream.FinishAll().ValueOrDie();
  recorder.Finish();

  ASSERT_EQ(outcomes.size(), 2u);
  SpesPolicy spes_batch;
  FixedKeepAlivePolicy fixed_batch(10);
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&spes_batch), outcomes[0]);
  ExpectBitwiseIdenticalBehaviour(RunGoldenFleet(&fixed_batch), outcomes[1]);
  EXPECT_EQ(outcomes[0].metrics.total_cold_starts, 631u);
  EXPECT_EQ(outcomes[1].metrics.total_cold_starts, 1574u);

  // Two lanes: one train span each, one shared simulate + finish span,
  // and 48 heartbeats per lane tagged with the lane index.
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_EQ(log.spans.size(), 4u);
  ASSERT_EQ(log.heartbeats.size(), 96u);
  uint64_t lane_totals[2] = {0, 0};
  for (const HeartbeatRecord& hb : log.heartbeats) {
    ASSERT_TRUE(hb.lane == 0 || hb.lane == 1);
    lane_totals[hb.lane] =
        std::max<uint64_t>(lane_totals[hb.lane], hb.cold_starts);
  }
  EXPECT_EQ(lane_totals[0], 631u);
  EXPECT_EQ(lane_totals[1], 1574u);
}

TEST(GoldenMetricsTest, RecorderAttachedFourNodeClusterMatchesGoldensBitwise) {
  const Trace fleet = GoldenTrace();

  const ScenarioOutcome plain =
      RunScenario(fleet, GoldenClusterSpec(4)).ValueOrDie();

  StringLogSink sink;
  RunRecorder recorder(&sink);
  ScenarioSpec spec = GoldenClusterSpec(4);
  spec.options.recorder = &recorder;
  const ScenarioOutcome recorded = RunScenario(fleet, spec).ValueOrDie();
  recorder.Finish();

  ExpectBitwiseIdenticalBehaviour(plain.outcome, recorded.outcome);
  EXPECT_EQ(recorded.outcome.metrics.total_cold_starts, 1535u);
  EXPECT_EQ(SeriesSum(recorded.outcome.memory_series), 706610u);
  ASSERT_NE(recorded.cluster, nullptr);
  ASSERT_EQ(recorded.cluster->nodes.size(), 4u);
  const uint64_t node_cold_starts[] = {190u, 796u, 413u, 136u};
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(recorded.cluster->nodes[k].sim.metrics.total_cold_starts,
              node_cold_starts[k])
        << k;
    ExpectBitwiseIdenticalBehaviour(plain.cluster->nodes[k].sim,
                                    recorded.cluster->nodes[k].sim);
  }

  // Node heartbeats ride the lane field: every node reports, and each
  // node's final sample matches its pinned per-node counters.
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_TRUE(log.saw_run_end);
  EXPECT_GE(log.spans.size(), 1u);
  uint64_t node_finals[4] = {0, 0, 0, 0};
  for (const HeartbeatRecord& hb : log.heartbeats) {
    ASSERT_GE(hb.lane, 0);
    ASSERT_LT(hb.lane, 4);
    node_finals[hb.lane] =
        std::max<uint64_t>(node_finals[hb.lane], hb.cold_starts);
  }
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(node_finals[k], node_cold_starts[k]) << k;
  }
}

TEST(GoldenMetricsTest, RecorderAttachedCheckpointBytesMatchDisabledPath) {
  // Checkpoint emission is observability only: the serialized bytes of a
  // recorder-attached stream are byte-identical to the disabled path
  // (modulo the wall-clock overhead field, which differs between any two
  // runs by design), and resuming from them still lands on the goldens.
  const Trace fleet = GoldenTrace();
  const int midpoint = 3 * kMinutesPerDay;

  SpesPolicy plain_policy;
  SimStream plain =
      SimStream::Create(fleet, &plain_policy, GoldenOptions()).ValueOrDie();
  ASSERT_TRUE(plain.RunUntil(midpoint).ok());
  SimCheckpoint plain_checkpoint = plain.Checkpoint().ValueOrDie();

  StringLogSink sink;
  RunRecorder recorder(&sink);
  SimOptions options = GoldenOptions();
  options.recorder = &recorder;
  SpesPolicy recorded_policy;
  SimStream recorded =
      SimStream::Create(fleet, &recorded_policy, options).ValueOrDie();
  ASSERT_TRUE(recorded.RunUntil(midpoint).ok());
  SimCheckpoint recorded_checkpoint = recorded.Checkpoint().ValueOrDie();
  const std::string recorded_bytes =
      SerializeCheckpoint(recorded_checkpoint);

  for (auto& lane : plain_checkpoint.lanes) lane.overhead_seconds = 0.0;
  for (auto& lane : recorded_checkpoint.lanes) lane.overhead_seconds = 0.0;
  EXPECT_EQ(SerializeCheckpoint(plain_checkpoint),
            SerializeCheckpoint(recorded_checkpoint));

  // Resume the recorded stream's checkpoint on a recorder-free stream.
  SpesPolicy fresh;
  SimStream resumed =
      SimStream::Create(fleet, &fresh, GoldenOptions()).ValueOrDie();
  ASSERT_TRUE(
      resumed.Restore(ParseCheckpoint(recorded_bytes).ValueOrDie()).ok());
  const SimulationOutcome outcome = resumed.Finish().ValueOrDie();
  EXPECT_EQ(outcome.metrics.total_cold_starts, 631u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 212568u);

  ASSERT_TRUE(recorded.Finish().ok());
  recorder.Finish();
  const ParsedRunLog log = ParseRunLog(sink.contents()).ValueOrDie();
  EXPECT_EQ(log.checkpoint_saves, 1u);
}

TEST(GoldenMetricsTest, BothPoliciesSeeTheSameWorkload) {
  // The goldens above encode it, but assert the invariant directly: the
  // trace (and thus the arrival stream) is policy-independent.
  SpesPolicy spes;
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome a = RunGoldenFleet(&spes);
  const SimulationOutcome b = RunGoldenFleet(&fixed);
  EXPECT_EQ(a.metrics.total_invocations, b.metrics.total_invocations);
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations);
    EXPECT_EQ(a.accounts[f].invoked_minutes, b.accounts[f].invoked_minutes);
  }
}

}  // namespace
}  // namespace spes
