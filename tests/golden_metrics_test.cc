// Golden-metrics regression harness: a fixed-seed generated fleet run
// through SPES and the fixed keep-alive baseline must reproduce these
// exact counter and memory-series values. Any engine or policy refactor
// that shifts simulated behaviour — even by one cold start or one loaded
// minute — fails this test loudly instead of silently drifting the paper's
// figures.
//
// If a change *intentionally* alters behaviour, rerun the fleet below,
// confirm the new numbers are correct, and update the goldens in the same
// commit with a note in CHANGES.md.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/spes_policy.h"
#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace {

/// The golden fleet: small enough to simulate in well under a second,
/// large enough to exercise every generator archetype and SPES rule.
SimulationOutcome RunGoldenFleet(Policy* policy) {
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 4;
  config.seed = 99;
  const GeneratedTrace fleet = GenerateTrace(config).ValueOrDie();
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  return Simulate(fleet.trace, policy, options).ValueOrDie();
}

uint64_t SeriesSum(const std::vector<uint32_t>& series) {
  return std::accumulate(series.begin(), series.end(), uint64_t{0});
}

TEST(GoldenMetricsTest, SpesReproducesGoldenValues) {
  SpesPolicy spes;
  const SimulationOutcome outcome = RunGoldenFleet(&spes);
  const FleetMetrics& m = outcome.metrics;

  EXPECT_EQ(m.policy_name, "SPES");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 631u);
  EXPECT_EQ(m.wasted_memory_minutes, 82418u);
  EXPECT_EQ(m.loaded_instance_minutes, 212568u);
  EXPECT_EQ(m.max_memory, 87u);
  EXPECT_EQ(m.csr.size(), 147u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 0.051625753660637382);
  EXPECT_DOUBLE_EQ(m.median_csr, 8.730574471800244e-05);
  EXPECT_DOUBLE_EQ(m.average_memory, 73.808333333333337);
  EXPECT_DOUBLE_EQ(m.emcr, 0.61227466034398403);

  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 212568u);
  EXPECT_EQ(outcome.memory_series.front(), 72u);
  EXPECT_EQ(outcome.memory_series[1440], 74u);
  EXPECT_EQ(outcome.memory_series.back(), 72u);

  const FunctionAccount& first = outcome.accounts[0];
  EXPECT_EQ(first.invocations, 10792u);
  EXPECT_EQ(first.cold_starts, 1u);
  EXPECT_EQ(first.loaded_minutes, 2880u);
  EXPECT_EQ(first.wasted_minutes, 141u);
}

TEST(GoldenMetricsTest, FixedKeepaliveReproducesGoldenValues) {
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome outcome = RunGoldenFleet(&fixed);
  const FleetMetrics& m = outcome.metrics;

  EXPECT_EQ(m.policy_name, "Fixed-10min");
  EXPECT_EQ(m.total_invocations, 505234u);
  EXPECT_EQ(m.total_cold_starts, 1574u);
  EXPECT_EQ(m.wasted_memory_minutes, 79870u);
  EXPECT_EQ(m.loaded_instance_minutes, 210020u);
  EXPECT_EQ(m.max_memory, 84u);
  EXPECT_EQ(m.csr.size(), 147u);
  EXPECT_DOUBLE_EQ(m.q3_csr, 1.0);
  EXPECT_DOUBLE_EQ(m.median_csr, 0.04878048780487805);
  EXPECT_DOUBLE_EQ(m.average_memory, 72.923611111111114);
  EXPECT_DOUBLE_EQ(m.emcr, 0.61970288543948193);

  ASSERT_EQ(outcome.memory_series.size(), 2880u);
  EXPECT_EQ(SeriesSum(outcome.memory_series), 210020u);
  EXPECT_EQ(outcome.memory_series.front(), 43u);
  EXPECT_EQ(outcome.memory_series[1440], 79u);
  EXPECT_EQ(outcome.memory_series.back(), 71u);
}

TEST(GoldenMetricsTest, BothPoliciesSeeTheSameWorkload) {
  // The goldens above encode it, but assert the invariant directly: the
  // trace (and thus the arrival stream) is policy-independent.
  SpesPolicy spes;
  FixedKeepAlivePolicy fixed(10);
  const SimulationOutcome a = RunGoldenFleet(&spes);
  const SimulationOutcome b = RunGoldenFleet(&fixed);
  EXPECT_EQ(a.metrics.total_invocations, b.metrics.total_invocations);
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (size_t f = 0; f < a.accounts.size(); ++f) {
    EXPECT_EQ(a.accounts[f].invocations, b.accounts[f].invocations);
    EXPECT_EQ(a.accounts[f].invoked_minutes, b.accounts[f].invoked_minutes);
  }
}

}  // namespace
}  // namespace spes
