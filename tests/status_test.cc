#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "IOError: disk");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).ValueOrDie();
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SPES_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::Internal("nope");
  return 5;
}

Result<int> UseAssign(bool fail) {
  SPES_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(StatusMacroTest, AssignOrReturn) {
  Result<int> ok = UseAssign(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 6);
  Result<int> bad = UseAssign(true);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------
// [[nodiscard]] semantics. The compile-time side — that a discarded
// Status/Result FAILS to build under -Werror=unused-result — is covered
// by tools/check_nodiscard.py (run in CI); these tests pin the sanctioned
// ways to consume or deliberately drop one.
// ---------------------------------------------------------------------

TEST(NoDiscardTest, VoidCastIsTheSanctionedDiscard) {
  // Deliberate discard must stay expressible for fire-and-forget paths
  // (and must compile warning-free, which -Werror enforces in CI).
  (void)Status::InvalidArgument("intentionally dropped");
  (void)MakeValue(true);
}

TEST(NoDiscardTest, MoveOutOfResultLeavesNoDangling) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  // Rvalue ValueOrDie moves the payload out in one step.
  const std::vector<int> taken = std::move(r).ValueOrDie();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
}

TEST(NoDiscardTest, MovedFromResultStillReportsOk) {
  Result<std::string> r = std::string("payload");
  const std::string taken = std::move(r).ValueOrDie();
  EXPECT_EQ(taken, "payload");
  // The variant still holds the (moved-from) T alternative: ok() stays
  // true and status() is OK — moving out never fabricates an error.
  EXPECT_TRUE(r.ok());  // NOLINT(bugprone-use-after-move): pinned API
  EXPECT_TRUE(r.status().ok());
}

Result<std::string> PropagateTwice(bool fail) {
  SPES_ASSIGN_OR_RETURN(std::string v, [&]() -> Result<std::string> {
    if (fail) return Status::NotFound("inner miss");
    return std::string("inner");
  }());
  return v + "+outer";
}

TEST(NoDiscardTest, ErrorPropagationPreservesCodeAndMessage) {
  Result<std::string> ok = PropagateTwice(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), "inner+outer");
  Result<std::string> bad = PropagateTwice(true);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.status().message(), "inner miss");
}

TEST(NoDiscardTest, ValueOrFallsBackOnlyOnError) {
  EXPECT_EQ(MakeValue(false).ValueOr(-1), 5);
  EXPECT_EQ(MakeValue(true).ValueOr(-1), -1);
}

}  // namespace
}  // namespace spes
