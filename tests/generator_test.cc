#include "trace/generator.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/series_features.h"
#include "trace/summary.h"

namespace spes {
namespace {

GeneratorConfig SmallConfig(int functions = 300, int days = 4,
                            uint64_t seed = 42) {
  GeneratorConfig config;
  config.num_functions = functions;
  config.days = days;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  const auto generated = GenerateTrace(SmallConfig());
  ASSERT_TRUE(generated.ok());
  const GeneratedTrace& g = generated.ValueOrDie();
  EXPECT_EQ(g.trace.num_functions(), 300u);
  EXPECT_EQ(g.trace.num_minutes(), 4 * kMinutesPerDay);
  EXPECT_EQ(g.truth.size(), 300u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const auto a = GenerateTrace(SmallConfig(120, 3, 9));
  const auto b = GenerateTrace(SmallConfig(120, 3, 9));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Trace& ta = a.ValueOrDie().trace;
  const Trace& tb = b.ValueOrDie().trace;
  ASSERT_EQ(ta.num_functions(), tb.num_functions());
  for (size_t i = 0; i < ta.num_functions(); ++i) {
    EXPECT_EQ(ta.function(i).meta.name, tb.function(i).meta.name);
    EXPECT_EQ(ta.function(i).counts, tb.function(i).counts);
  }
}

TEST(GeneratorTest, RareFractionForcesTailHeavyPopulation) {
  // rare_fraction = 0 must consume no random draws (the default mix is
  // pinned by the goldens); 0.9 must push most of the fleet onto the rare
  // archetypes, thinning fleet-wide arrivals accordingly.
  GeneratorConfig config = SmallConfig(400, 3, 7);
  const Trace dense = std::move(GenerateTrace(config).ValueOrDie().trace);
  config.rare_fraction = 0.9;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const GeneratedTrace& g = generated.ValueOrDie();

  size_t rare = 0;
  for (const GroundTruth& truth : g.truth) {
    if (truth.kind == PatternKind::kRarePossible ||
        truth.kind == PatternKind::kRareRandom) {
      ++rare;
    }
  }
  // 90% forced rare plus whatever the base mix contributes.
  EXPECT_GE(rare, g.truth.size() * 8 / 10);

  uint64_t dense_total = 0, rare_total = 0;
  for (size_t f = 0; f < dense.num_functions(); ++f) {
    dense_total += dense.function(f).TotalInvocations();
    rare_total += g.trace.function(f).TotalInvocations();
  }
  EXPECT_LT(rare_total, dense_total / 4);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = GenerateTrace(SmallConfig(120, 3, 1));
  const auto b = GenerateTrace(SmallConfig(120, 3, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  uint64_t total_a = 0, total_b = 0;
  for (const auto& f : a.ValueOrDie().trace.functions()) {
    total_a += f.TotalInvocations();
  }
  for (const auto& f : b.ValueOrDie().trace.functions()) {
    total_b += f.TotalInvocations();
  }
  EXPECT_NE(total_a, total_b);
}

TEST(GeneratorTest, RejectsBadConfig) {
  GeneratorConfig config = SmallConfig();
  config.num_functions = 0;
  EXPECT_FALSE(GenerateTrace(config).ok());
  config = SmallConfig();
  config.days = 1;
  EXPECT_FALSE(GenerateTrace(config).ok());
}

TEST(GeneratorTest, TriggerMixApproximatesFig5) {
  const auto generated = GenerateTrace(SmallConfig(4000, 2, 5));
  ASSERT_TRUE(generated.ok());
  const auto mix = ComputeTriggerMix(generated.ValueOrDie().trace);
  // Loose band: the mix is sampled per app, not per function.
  EXPECT_NEAR(mix[static_cast<size_t>(TriggerType::kHttp)], 0.41, 0.08);
  EXPECT_NEAR(mix[static_cast<size_t>(TriggerType::kTimer)], 0.27, 0.08);
  EXPECT_NEAR(mix[static_cast<size_t>(TriggerType::kQueue)], 0.14, 0.06);
}

TEST(GeneratorTest, UnseenFunctionsSilentBeforeFinalDays) {
  GeneratorConfig config = SmallConfig(2000, 5, 11);
  config.unseen_fraction = 0.05;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const GeneratedTrace& g = generated.ValueOrDie();
  const int unseen_begin =
      g.trace.num_minutes() - config.unseen_days * kMinutesPerDay;
  int64_t unseen_count = 0;
  for (size_t i = 0; i < g.truth.size(); ++i) {
    if (g.truth[i].kind != PatternKind::kUnseen) continue;
    ++unseen_count;
    const auto& counts = g.trace.function(i).counts;
    for (int t = 0; t < unseen_begin; ++t) {
      ASSERT_EQ(counts[static_cast<size_t>(t)], 0u)
          << "unseen function active before the unseen window";
    }
  }
  EXPECT_GT(unseen_count, 0);
}

TEST(GeneratorTest, ChainFollowersLagTheirDriver) {
  GeneratorConfig config = SmallConfig(2000, 3, 13);
  config.chain_app_fraction = 0.9;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const GeneratedTrace& g = generated.ValueOrDie();
  int64_t followers = 0;
  for (size_t i = 0; i < g.truth.size(); ++i) {
    const GroundTruth& truth = g.truth[i];
    if (truth.kind != PatternKind::kChainFollower) continue;
    ++followers;
    ASSERT_GE(truth.chain_driver, 0);
    ASSERT_GT(truth.chain_lag, 0);
    ASSERT_LE(truth.chain_lag, config.chain_max_lag);
    // Spot-check: most follower arrivals sit `lag` after a driver arrival.
    const auto& follower = g.trace.function(i).counts;
    const auto& driver =
        g.trace.function(static_cast<size_t>(truth.chain_driver)).counts;
    int64_t matched = 0, total = 0;
    for (size_t t = 0; t < follower.size(); ++t) {
      if (follower[t] == 0) continue;
      ++total;
      const int64_t s = static_cast<int64_t>(t) - truth.chain_lag;
      if (s >= 0 && driver[static_cast<size_t>(s)] > 0) ++matched;
    }
    if (total >= 10) {
      EXPECT_GT(static_cast<double>(matched) / static_cast<double>(total),
                0.6);
    }
  }
  EXPECT_GT(followers, 0);
}

TEST(GeneratorTest, HeavyTailedInvocationTotals) {
  const auto generated = GenerateTrace(SmallConfig(3000, 3, 17));
  ASSERT_TRUE(generated.ok());
  const InvocationHistogram hist =
      ComputeInvocationHistogram(generated.ValueOrDie().trace);
  // The distribution must span at least 4 decades (Fig. 3 shape).
  EXPECT_GE(hist.buckets.size(), 4u);
  // And the low decades must dominate the high ones.
  EXPECT_GT(hist.buckets[0] + hist.buckets[1],
            hist.buckets[hist.buckets.size() - 1]);
}

TEST(SynthAlwaysWarmTest, NearlyEverySlotActive) {
  Rng rng(1);
  std::vector<uint32_t> counts(5000, 0);
  SynthAlwaysWarm(&rng, &counts, 0);
  int64_t active = 0;
  for (uint32_t c : counts) active += c > 0 ? 1 : 0;
  EXPECT_GT(active, 4950);
}

TEST(SynthRegularTest, GapsMatchPeriod) {
  Rng rng(2);
  std::vector<uint32_t> counts(6000, 0);
  SynthRegular(&rng, 20, &counts, 0);
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  ASSERT_GT(f.wts.size(), 50u);
  // The dominant WT is period - 1.
  const auto modes = TopModes(f.wts, 1);
  EXPECT_EQ(modes[0].value, 19);
}

TEST(SynthDensePoissonTest, ShortGaps) {
  Rng rng(3);
  std::vector<uint32_t> counts(4000, 0);
  SynthDensePoisson(&rng, 2.0, &counts, 0);
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  EXPECT_LE(Percentile(f.wts, 90.0), 3.0);
}

TEST(SynthSuccessiveBurstTest, WavesSatisfyGammaFloors) {
  Rng rng(4);
  std::vector<uint32_t> counts(20000, 0);
  SynthSuccessiveBurst(&rng, 400.0, 4, 8, &counts, 0);
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  ASSERT_GE(f.ats.size(), 2u);
  for (size_t i = 0; i + 1 < f.ats.size(); ++i) {
    // Interior waves obey the floors (the last may be horizon-truncated).
    EXPECT_GE(f.ats[i], 4);
    EXPECT_GE(f.ans[i], 8);
  }
}

TEST(SynthRarePossibleTest, WtsHaveRepeatedModes) {
  Rng rng(5);
  std::vector<uint32_t> counts(30000, 0);
  SynthRarePossible(&rng, 600, &counts, 0);
  const SeriesFeatures f = ExtractSeriesFeatures(counts);
  ASSERT_GE(f.wts.size(), 4u);
  EXPECT_FALSE(RepeatedValues(f.wts).empty());
}

TEST(SynthRareRandomTest, BoundedEventCount) {
  Rng rng(6);
  std::vector<uint32_t> counts(10000, 0);
  SynthRareRandom(&rng, 3, &counts, 0);
  uint64_t total = 0;
  for (uint32_t c : counts) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(PatternKindTest, AllKindsHaveNames) {
  for (int k = 0; k < kNumPatternKinds; ++k) {
    EXPECT_STRNE(PatternKindToString(static_cast<PatternKind>(k)), "?");
  }
}

}  // namespace
}  // namespace spes
