#include "policies/hybrid_histogram.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows,
                std::vector<std::string> apps = {}) {
  Trace trace(static_cast<int>(rows[0].size()));
  for (size_t k = 0; k < rows.size(); ++k) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k);
    f.meta.app = apps.empty() ? "a" + std::to_string(k) : apps[k];
    f.meta.owner = "o";
    f.counts = std::move(rows[k]);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

std::vector<uint32_t> PeriodicRow(int n, int period) {
  std::vector<uint32_t> counts(static_cast<size_t>(n), 0);
  for (int t = 0; t < n; t += period) counts[static_cast<size_t>(t)] = 1;
  return counts;
}

TEST(HybridHistogramTest, Names) {
  EXPECT_EQ(
      HybridHistogramPolicy(HybridGranularity::kApplication).name(),
      "Hybrid-Application");
  EXPECT_EQ(HybridHistogramPolicy(HybridGranularity::kFunction).name(),
            "Hybrid-Function");
}

TEST(HybridHistogramTest, PeriodicFunctionGetsPrewarmedNotColdStarted) {
  // 30-minute period, 2 days training + replay.
  const int horizon = 3 * kMinutesPerDay;
  Trace trace = MakeTrace({PeriodicRow(horizon, 30)});
  HybridHistogramPolicy policy(HybridGranularity::kFunction);
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  // With a representative histogram the policy pre-warms near the head
  // percentile, so nearly every arrival is warm.
  EXPECT_LE(acc.ColdStartRate(), 0.05);
  // But it should NOT keep the instance loaded the whole time.
  EXPECT_LT(acc.loaded_minutes,
            static_cast<uint64_t>(kMinutesPerDay));
}

TEST(HybridHistogramTest, SparseFunctionFallsBackToFixedWindow) {
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> sparse(static_cast<size_t>(horizon), 0);
  sparse[100] = 1;                    // training
  sparse[kMinutesPerDay + 500] = 1;   // simulation
  Trace trace = MakeTrace({std::move(sparse)});
  HybridHistogramPolicy policy(HybridGranularity::kFunction);
  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.CountFallbackUnits(), 1);
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  // The lone simulated arrival is cold; afterwards the fallback window
  // keeps the instance loaded for the standard 20-minute window.
  EXPECT_EQ(acc.cold_starts, 1u);
  EXPECT_EQ(acc.loaded_minutes, 20u);
}

TEST(HybridHistogramTest, ApplicationGranularitySharesWarmth) {
  // Two functions of one app alternate; at app granularity each arrival
  // keeps the *app* warm so both functions stay loaded.
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> a(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> b(static_cast<size_t>(horizon), 0);
  for (int t = 0; t < horizon; t += 20) {
    a[static_cast<size_t>(t)] = 1;
    if (t + 10 < horizon) b[static_cast<size_t>(t + 10)] = 1;
  }
  Trace trace = MakeTrace({std::move(a), std::move(b)}, {"app", "app"});
  HybridHistogramPolicy policy(HybridGranularity::kApplication);
  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const auto& accounts = outcome.ValueOrDie().accounts;
  // The app-level IAT is 10 minutes: both functions nearly always warm.
  EXPECT_LE(accounts[0].ColdStartRate(), 0.02);
  EXPECT_LE(accounts[1].ColdStartRate(), 0.02);
}

TEST(HybridHistogramTest, ApplicationGranularityUsesMoreMemory) {
  // Function-level scheduling should not load the app's idle sibling.
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> busy(static_cast<size_t>(horizon), 0);
  for (int t = 0; t < horizon; t += 15) busy[static_cast<size_t>(t)] = 1;
  std::vector<uint32_t> silent(static_cast<size_t>(horizon), 0);
  silent[50] = 1;  // one arrival in training only

  SimOptions options;
  options.train_minutes = kMinutesPerDay;

  Trace trace_ha =
      MakeTrace({busy, silent}, {"app", "app"});
  HybridHistogramPolicy ha(HybridGranularity::kApplication);
  const auto out_ha = Simulate(trace_ha, &ha, options);
  ASSERT_TRUE(out_ha.ok());

  Trace trace_hf = MakeTrace({busy, silent}, {"app", "app"});
  HybridHistogramPolicy hf(HybridGranularity::kFunction);
  const auto out_hf = Simulate(trace_hf, &hf, options);
  ASSERT_TRUE(out_hf.ok());

  EXPECT_GT(out_ha.ValueOrDie().metrics.average_memory,
            out_hf.ValueOrDie().metrics.average_memory);
}

TEST(HybridHistogramTest, OnlineUpdatesAdaptToNewPeriod) {
  // Training shows a 60-minute period; the simulation switches to 15.
  const int horizon = 4 * kMinutesPerDay;
  const int train = 2 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  for (int t = 0; t < train; t += 60) counts[static_cast<size_t>(t)] = 1;
  for (int t = train; t < horizon; t += 15) {
    counts[static_cast<size_t>(t)] = 1;
  }
  Trace trace = MakeTrace({std::move(counts)});
  HybridHistogramPolicy policy(HybridGranularity::kFunction);
  SimOptions options;
  options.train_minutes = train;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  // The histogram absorbs the new 15-minute IATs online, so cold starts
  // stay rare despite the shift.
  EXPECT_LE(outcome.ValueOrDie().accounts[0].ColdStartRate(), 0.25);
}

}  // namespace
}  // namespace spes
