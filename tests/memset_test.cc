#include "sim/memset.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace spes {
namespace {

TEST(MemSetTest, StartsEmpty) {
  MemSet mem(10);
  EXPECT_EQ(mem.Count(), 0u);
  EXPECT_EQ(mem.Capacity(), 10u);
  for (size_t f = 0; f < 10; ++f) EXPECT_FALSE(mem.Contains(f));
}

TEST(MemSetTest, AddRemoveContains) {
  MemSet mem(5);
  mem.Add(2);
  EXPECT_TRUE(mem.Contains(2));
  EXPECT_EQ(mem.Count(), 1u);
  mem.Remove(2);
  EXPECT_FALSE(mem.Contains(2));
  EXPECT_EQ(mem.Count(), 0u);
}

TEST(MemSetTest, AddIsIdempotent) {
  MemSet mem(5);
  mem.Add(1);
  mem.Add(1);
  mem.Add(1);
  EXPECT_EQ(mem.Count(), 1u);
}

TEST(MemSetTest, RemoveAbsentIsNoOp) {
  MemSet mem(5);
  mem.Remove(3);
  EXPECT_EQ(mem.Count(), 0u);
}

TEST(MemSetTest, WordsMirrorMembership) {
  MemSet mem(4);
  mem.Add(0);
  mem.Add(3);
  ASSERT_EQ(mem.words().size(), 1u);
  EXPECT_EQ(mem.words()[0], uint64_t{0b1001});
}

TEST(MemSetTest, WordsSpanMultipleWords) {
  MemSet mem(130);
  mem.Add(0);
  mem.Add(63);
  mem.Add(64);
  mem.Add(129);
  ASSERT_EQ(mem.words().size(), 3u);
  EXPECT_EQ(mem.words()[0], (uint64_t{1} << 63) | 1);
  EXPECT_EQ(mem.words()[1], uint64_t{1});
  EXPECT_EQ(mem.words()[2], uint64_t{1} << 1);
  EXPECT_EQ(mem.Count(), 4u);
}

TEST(MemSetTest, ForEachLoadedVisitsAscendingAndAllowsRemove) {
  MemSet mem(200);
  for (size_t f : {3u, 64u, 65u, 130u, 199u}) mem.Add(f);
  std::vector<size_t> seen;
  mem.ForEachLoaded([&](size_t f) {
    seen.push_back(f);
    if (f == 65) mem.Remove(f);  // removing the visited id is allowed
  });
  EXPECT_EQ(seen, (std::vector<size_t>{3, 64, 65, 130, 199}));
  EXPECT_EQ(mem.Count(), 4u);
  EXPECT_FALSE(mem.Contains(65));
}

TEST(MemSetTest, ToBytesMatchesMembership) {
  MemSet mem(70);
  mem.Add(1);
  mem.Add(69);
  const std::vector<uint8_t> bytes = mem.ToBytes();
  ASSERT_EQ(bytes.size(), 70u);
  for (size_t f = 0; f < 70; ++f) {
    EXPECT_EQ(bytes[f], (f == 1 || f == 69) ? 1 : 0) << "f=" << f;
  }
}

#ifndef NDEBUG
TEST(MemSetDeathTest, OutOfRangeIdsAssertInDebugBuilds) {
  MemSet mem(10);
  EXPECT_DEATH(mem.Add(10), "out of range");
  EXPECT_DEATH(mem.Remove(64), "out of range");
  EXPECT_DEATH((void)mem.Contains(1000), "out of range");
}
#endif  // NDEBUG

TEST(MemSetTest, CountTracksManyOperations) {
  MemSet mem(100);
  for (size_t f = 0; f < 100; f += 2) mem.Add(f);
  EXPECT_EQ(mem.Count(), 50u);
  for (size_t f = 0; f < 100; f += 4) mem.Remove(f);
  EXPECT_EQ(mem.Count(), 25u);
}

}  // namespace
}  // namespace spes
