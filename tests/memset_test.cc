#include "sim/memset.h"

#include <gtest/gtest.h>

namespace spes {
namespace {

TEST(MemSetTest, StartsEmpty) {
  MemSet mem(10);
  EXPECT_EQ(mem.Count(), 0u);
  EXPECT_EQ(mem.Capacity(), 10u);
  for (size_t f = 0; f < 10; ++f) EXPECT_FALSE(mem.Contains(f));
}

TEST(MemSetTest, AddRemoveContains) {
  MemSet mem(5);
  mem.Add(2);
  EXPECT_TRUE(mem.Contains(2));
  EXPECT_EQ(mem.Count(), 1u);
  mem.Remove(2);
  EXPECT_FALSE(mem.Contains(2));
  EXPECT_EQ(mem.Count(), 0u);
}

TEST(MemSetTest, AddIsIdempotent) {
  MemSet mem(5);
  mem.Add(1);
  mem.Add(1);
  mem.Add(1);
  EXPECT_EQ(mem.Count(), 1u);
}

TEST(MemSetTest, RemoveAbsentIsNoOp) {
  MemSet mem(5);
  mem.Remove(3);
  EXPECT_EQ(mem.Count(), 0u);
}

TEST(MemSetTest, RawMirrorsMembership) {
  MemSet mem(4);
  mem.Add(0);
  mem.Add(3);
  const auto& raw = mem.raw();
  EXPECT_EQ(raw[0], 1);
  EXPECT_EQ(raw[1], 0);
  EXPECT_EQ(raw[2], 0);
  EXPECT_EQ(raw[3], 1);
}

TEST(MemSetTest, CountTracksManyOperations) {
  MemSet mem(100);
  for (size_t f = 0; f < 100; f += 2) mem.Add(f);
  EXPECT_EQ(mem.Count(), 50u);
  for (size_t f = 0; f < 100; f += 4) mem.Remove(f);
  EXPECT_EQ(mem.Count(), 25u);
}

}  // namespace
}  // namespace spes
