#include "policies/oracle.h"

#include <gtest/gtest.h>

#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace {

TEST(OracleTest, ZeroColdStartsOnGeneratedTraceAfterWarmup) {
  GeneratorConfig config;
  config.num_functions = 150;
  config.days = 3;
  config.seed = 77;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const Trace& trace = generated.ValueOrDie().trace;

  OraclePolicy policy;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());

  // Only the very first simulated minute can be cold.
  uint64_t cold = 0;
  for (const auto& acc : outcome.ValueOrDie().accounts) {
    cold += acc.cold_starts;
  }
  uint64_t first_minute_arrivals = 0;
  for (size_t f = 0; f < trace.num_functions(); ++f) {
    if (trace.function(f)
            .counts[static_cast<size_t>(options.train_minutes)] > 0) {
      ++first_minute_arrivals;
    }
  }
  EXPECT_LE(cold, first_minute_arrivals);
}

TEST(OracleTest, WasteNeverExceedsOnePrewarmMinutePerArrivalMinute) {
  // Every idle loaded minute under the oracle is the pre-warm minute of an
  // arrival in the NEXT minute, so per function waste <= invoked minutes.
  GeneratorConfig config;
  config.num_functions = 100;
  config.days = 3;
  config.seed = 78;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());

  OraclePolicy policy;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome =
      Simulate(generated.ValueOrDie().trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  for (const auto& acc : outcome.ValueOrDie().accounts) {
    EXPECT_LE(acc.wasted_minutes, acc.invoked_minutes);
  }
}

TEST(OracleTest, LowerBoundsEveryPolicyOnColdStarts) {
  // Sanity: oracle cold starts <= fixed keep-alive cold starts.
  GeneratorConfig config;
  config.num_functions = 120;
  config.days = 3;
  config.seed = 79;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const Trace& trace = generated.ValueOrDie().trace;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;

  OraclePolicy oracle;
  const auto oracle_out = Simulate(trace, &oracle, options);
  ASSERT_TRUE(oracle_out.ok());

  FixedKeepAlivePolicy fixed(10);
  const auto fixed_out = Simulate(trace, &fixed, options);
  ASSERT_TRUE(fixed_out.ok());

  EXPECT_LE(oracle_out.ValueOrDie().metrics.total_cold_starts,
            fixed_out.ValueOrDie().metrics.total_cold_starts);
}

}  // namespace
}  // namespace spes
