#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace spes {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::map<int64_t, int> seen;
  for (int i = 0; i < 20000; ++i) ++seen[rng.UniformInt(0, 9)];
  ASSERT_EQ(seen.size(), 10u);
  for (const auto& [v, count] : seen) {
    EXPECT_GT(count, 1500) << "value " << v;  // expected 2000 each
    EXPECT_LT(count, 2500) << "value " << v;
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanSmall) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);  // mean = 1/rate
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(31);
  int64_t ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.Zipf(1000, 1.5);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    if (v == 1) ++ones;
  }
  // With s = 1.5, rank 1 carries a large share of the mass.
  EXPECT_GT(static_cast<double>(ones) / n, 0.3);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::map<size_t, int> seen;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++seen[rng.WeightedIndex(w)];
  EXPECT_EQ(seen.count(1), 0u);
  EXPECT_NEAR(static_cast<double>(seen[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(seen[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // The child stream should not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

}  // namespace
}  // namespace spes
