#include "core/validation.h"

#include <gtest/gtest.h>

#include <vector>

namespace spes {
namespace {

std::vector<uint32_t> Seq(std::initializer_list<uint32_t> xs) { return xs; }

TEST(ReplayPulsedTest, ColdPerBurstAndBoundedWaste) {
  // Two bursts of 3 slots, far apart; theta = 5.
  std::vector<uint32_t> v(100, 0);
  for (int s = 10; s < 13; ++s) v[static_cast<size_t>(s)] = 1;
  for (int s = 60; s < 63; ++s) v[static_cast<size_t>(s)] = 1;
  const StrategyCost cost = ReplayPulsed(v, 5);
  EXPECT_TRUE(cost.feasible);
  EXPECT_EQ(cost.cold_starts, 2);  // one per burst
  EXPECT_EQ(cost.wasted_minutes, 2 * 4);  // 4 idle held minutes per burst
}

TEST(ReplayPulsedTest, EverySlotInvokedMeansOneCold) {
  std::vector<uint32_t> v(20, 1);
  const StrategyCost cost = ReplayPulsed(v, 5);
  EXPECT_EQ(cost.cold_starts, 1);
  EXPECT_EQ(cost.wasted_minutes, 0);
}

TEST(ReplayPulsedTest, EmptyWindow) {
  const StrategyCost cost = ReplayPulsed(std::vector<uint32_t>{}, 5);
  EXPECT_EQ(cost.cold_starts, 0);
  EXPECT_EQ(cost.wasted_minutes, 0);
}

TEST(ReplayCorrelatedTest, InfeasibleWithoutCandidates) {
  const auto v = Seq({1, 0, 1});
  const StrategyCost cost = ReplayCorrelated(v, {}, {}, 10, 2);
  EXPECT_FALSE(cost.feasible);
}

TEST(ReplayCorrelatedTest, PerfectPredictorKillsColdStarts) {
  // Candidate fires 3 minutes before every target invocation.
  std::vector<uint32_t> target(120, 0), cand(120, 0);
  for (int t = 20; t < 120; t += 30) {
    target[static_cast<size_t>(t)] = 1;
    cand[static_cast<size_t>(t - 3)] = 1;
  }
  std::vector<std::span<const uint32_t>> cands = {cand};
  const StrategyCost cost = ReplayCorrelated(target, cands, {3}, 6, 2);
  EXPECT_TRUE(cost.feasible);
  EXPECT_EQ(cost.cold_starts, 0);
  EXPECT_GT(cost.wasted_minutes, 0);  // the hold costs some idle minutes
}

TEST(ReplayCorrelatedTest, UselessPredictorLeavesColdStarts) {
  std::vector<uint32_t> target(120, 0), cand(120, 0);
  for (int t = 20; t < 120; t += 30) target[static_cast<size_t>(t)] = 1;
  // Candidate never fires.
  std::vector<std::span<const uint32_t>> cands = {cand};
  const StrategyCost cost = ReplayCorrelated(target, cands, {3}, 6, 2);
  EXPECT_EQ(cost.cold_starts, 4);
}

TEST(ReplayPossibleTest, InfeasibleWithoutRepeatedWts) {
  PredictiveModel model;  // kUnknown
  const auto v = Seq({1, 0, 1});
  EXPECT_FALSE(ReplayPossible(v, model, SpesConfig{}).feasible);
}

TEST(ReplayPossibleTest, AccuratePredictionAvoidsColdStarts) {
  SpesConfig config;
  PredictiveModel model;
  model.type = FunctionType::kPossible;
  model.values = {30};
  // Invocations every 30 minutes starting at t=0: WT = 29... predictions
  // use last + 30 with +/-2 tolerance, so t=30 arrival is prewarmed.
  std::vector<uint32_t> v(200, 0);
  for (int t = 0; t < 200; t += 30) v[static_cast<size_t>(t)] = 1;
  const StrategyCost cost = ReplayPossible(v, model, config);
  EXPECT_TRUE(cost.feasible);
  EXPECT_EQ(cost.cold_starts, 1);  // only the first arrival is cold
}

TEST(ReplayPossibleTest, ContinuousRangePrediction) {
  SpesConfig config;
  PredictiveModel model;
  model.type = FunctionType::kPossible;
  model.continuous = true;
  model.range_lo = 28;
  model.range_hi = 32;
  std::vector<uint32_t> v(200, 0);
  for (int t = 0; t < 200; t += 30) v[static_cast<size_t>(t)] = 1;
  const StrategyCost cost = ReplayPossible(v, model, config);
  EXPECT_EQ(cost.cold_starts, 1);
}

TEST(ChooseAssignmentTest, AllInfeasibleIsUnknown) {
  StrategyCost none;
  EXPECT_EQ(ChooseAssignment(none, none, none, 0.5).type,
            FunctionType::kUnknown);
}

TEST(ChooseAssignmentTest, DominantWinnerTakesAll) {
  StrategyCost pulsed{/*cs=*/5, /*wm=*/100, true};
  StrategyCost correlated{2, 50, true};  // best on both
  StrategyCost possible{9, 200, true};
  EXPECT_EQ(ChooseAssignment(pulsed, correlated, possible, 0.5).type,
            FunctionType::kCorrelated);
}

TEST(ChooseAssignmentTest, RiseRateRulePrefersColdStartWinnerWithSmallAlpha) {
  // pulsed: fewest cold starts (marginally); possible: far less waste.
  StrategyCost pulsed{9, 200, true};
  StrategyCost correlated;  // infeasible
  StrategyCost possible{10, 100, true};
  // dcs = (10-9)/9 = 0.111; dwm = (200-100)/100 = 1.0.
  // alpha = 0.05: 0.111 >= 0.055 -> cold-start winner (pulsed).
  EXPECT_EQ(ChooseAssignment(pulsed, correlated, possible, 0.05).type,
            FunctionType::kPulsed);
  // alpha = 0.9: 0.111 < 0.9 -> memory winner (possible).
  EXPECT_EQ(ChooseAssignment(pulsed, correlated, possible, 0.9).type,
            FunctionType::kPossible);
}

TEST(ChooseAssignmentTest, PerfectColdStartWinnerIsNotPunished) {
  // A strategy with ZERO validation cold starts must win against a
  // moderately-cheaper-on-memory alternative (the paper's "aggressive
  // prediction attempts for possible functions").
  StrategyCost pulsed{60, 240, true};     // wm winner
  StrategyCost correlated;                // infeasible
  StrategyCost possible{0, 840, true};    // cs winner, 3.5x the waste
  EXPECT_EQ(ChooseAssignment(pulsed, correlated, possible, 0.5).type,
            FunctionType::kPossible);
}

TEST(ChooseAssignmentTest, InfeasibleStrategyNeverWins) {
  StrategyCost pulsed{100, 1000, true};
  StrategyCost correlated;  // infeasible
  StrategyCost possible;    // infeasible
  EXPECT_EQ(ChooseAssignment(pulsed, correlated, possible, 0.5).type,
            FunctionType::kPulsed);
}

}  // namespace
}  // namespace spes
