// End-to-end integration: generate a calibrated fleet, run SPES and every
// baseline through the engine, and check the qualitative orderings the
// paper reports (the "shape" acceptance criteria of DESIGN.md §5).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/spes_policy.h"
#include "policies/defuse.h"
#include "policies/faascache.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"
#include "policies/oracle.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.num_functions = 1200;
    config.days = 6;
    config.seed = 2024;
    auto generated = GenerateTrace(config);
    ASSERT_TRUE(generated.ok());
    trace_ = new Trace(std::move(generated.ValueOrDie().trace));

    options_.train_minutes = 4 * kMinutesPerDay;

    // SPES first: FaasCache's capacity comes from SPES's peak memory.
    spes_policy_ = new SpesPolicy();
    auto spes_out = Simulate(*trace_, spes_policy_, options_);
    ASSERT_TRUE(spes_out.ok());
    spes_ = new SimulationOutcome(std::move(spes_out).ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete spes_;
    delete spes_policy_;
    delete trace_;
    spes_ = nullptr;
    spes_policy_ = nullptr;
    trace_ = nullptr;
  }

  static FleetMetrics Run(Policy* policy) {
    auto outcome = Simulate(*trace_, policy, options_);
    EXPECT_TRUE(outcome.ok());
    return outcome.ValueOrDie().metrics;
  }

  static Trace* trace_;
  static SpesPolicy* spes_policy_;
  static SimulationOutcome* spes_;
  static SimOptions options_;
};

Trace* IntegrationTest::trace_ = nullptr;
SpesPolicy* IntegrationTest::spes_policy_ = nullptr;
SimulationOutcome* IntegrationTest::spes_ = nullptr;
SimOptions IntegrationTest::options_;

TEST_F(IntegrationTest, SpesBeatsFixedOnColdStarts) {
  FixedKeepAlivePolicy fixed(10);
  const FleetMetrics fm = Run(&fixed);
  EXPECT_LT(spes_->metrics.q3_csr, fm.q3_csr);
}

TEST_F(IntegrationTest, SpesBeatsHybridFunctionOnColdStarts) {
  HybridHistogramPolicy hf(HybridGranularity::kFunction);
  const FleetMetrics m = Run(&hf);
  EXPECT_LE(spes_->metrics.q3_csr, m.q3_csr);
}

TEST_F(IntegrationTest, SpesBeatsDefuseOnWastedMemory) {
  DefusePolicy defuse;
  const FleetMetrics m = Run(&defuse);
  EXPECT_LT(spes_->metrics.wasted_memory_minutes, m.wasted_memory_minutes);
}

TEST_F(IntegrationTest, SpesMemoryCloseToFixed) {
  FixedKeepAlivePolicy fixed(10);
  const FleetMetrics fm = Run(&fixed);
  // Paper: SPES uses only ~8% more memory than Fixed-10min; allow slack.
  EXPECT_LT(spes_->metrics.average_memory, fm.average_memory * 1.8);
}

TEST_F(IntegrationTest, SpesEmcrIsHighest) {
  FixedKeepAlivePolicy fixed(10);
  HybridHistogramPolicy hf(HybridGranularity::kFunction);
  DefusePolicy defuse;
  EXPECT_GT(spes_->metrics.emcr, Run(&fixed).emcr);
  EXPECT_GT(spes_->metrics.emcr, Run(&hf).emcr);
  EXPECT_GT(spes_->metrics.emcr, Run(&defuse).emcr);
}

TEST_F(IntegrationTest, FaasCacheRespectsSpesPeakMemoryCap) {
  FaasCachePolicy faascache(spes_->metrics.max_memory);
  auto outcome = Simulate(*trace_, &faascache, options_);
  ASSERT_TRUE(outcome.ok());
  // Capacity violations can only come from same-minute executions.
  const auto& series = outcome.ValueOrDie().memory_series;
  int64_t above = 0;
  for (uint32_t used : series) {
    if (used > spes_->metrics.max_memory) ++above;
  }
  EXPECT_LT(static_cast<double>(above) / static_cast<double>(series.size()),
            0.05);
}

TEST_F(IntegrationTest, OracleLowerBoundsSpes) {
  OraclePolicy oracle;
  const FleetMetrics m = Run(&oracle);
  EXPECT_LE(m.total_cold_starts, spes_->metrics.total_cold_starts);
  EXPECT_LE(m.wasted_memory_minutes, spes_->metrics.wasted_memory_minutes);
}

TEST_F(IntegrationTest, SpesHasMostFullyWarmFunctionsAmongFunctionGranular) {
  // Paper: 57.99% of functions experience no cold start under SPES, more
  // than any baseline except none. At our fleet scale the absolute number
  // is smaller (fewer ultra-sparse one-shot functions that live entirely
  // inside a pre-warm window), so we assert the ordering and a floor.
  EXPECT_GT(spes_->metrics.zero_cold_fraction, 0.20);
  FixedKeepAlivePolicy fixed(10);
  HybridHistogramPolicy hf(HybridGranularity::kFunction);
  DefusePolicy defuse;
  EXPECT_GT(spes_->metrics.zero_cold_fraction, Run(&fixed).zero_cold_fraction);
  EXPECT_GT(spes_->metrics.zero_cold_fraction, Run(&hf).zero_cold_fraction);
  EXPECT_GT(spes_->metrics.zero_cold_fraction,
            Run(&defuse).zero_cold_fraction);
}

TEST_F(IntegrationTest, AblationCorrDoesNotHurtColdStarts) {
  SpesConfig no_corr;
  no_corr.enable_correlated = false;
  no_corr.enable_online_corr = false;
  SpesPolicy ablated(no_corr);
  const FleetMetrics m = Run(&ablated);
  // Removing the correlation machinery must not reduce cold starts.
  EXPECT_GE(m.q3_csr + 1e-9, spes_->metrics.q3_csr);
}

TEST_F(IntegrationTest, EngineInvariantColdStartsNeverExceedInvokedMinutes) {
  for (const auto& acc : spes_->accounts) {
    EXPECT_LE(acc.cold_starts, acc.invoked_minutes);
    EXPECT_LE(acc.invoked_minutes, acc.loaded_minutes);
  }
}

}  // namespace
}  // namespace spes
