#include "runner/suite_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/spes_policy.h"
#include "policies/defuse.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"
#include "policies/oracle.h"
#include "sim/observers.h"
#include "sim/scenario.h"
#include "trace/generator.h"

namespace spes {
namespace {

GeneratedTrace MakeFleet() {
  GeneratorConfig config;
  config.num_functions = 200;
  config.days = 3;
  config.seed = 20240317;
  return GenerateTrace(config).ValueOrDie();
}

SimOptions Options() {
  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  return options;
}

SuiteJob MakeJob(PolicyFactory factory, const SimOptions& options) {
  SuiteJob job;
  job.factory = std::move(factory);
  job.options = options;
  return job;
}

std::vector<SuiteJob> PolicyJobs(const SimOptions& options) {
  std::vector<SuiteJob> jobs;
  jobs.push_back(
      MakeJob([] { return std::make_unique<SpesPolicy>(); }, options));
  jobs.push_back(
      MakeJob([] { return std::make_unique<DefusePolicy>(); }, options));
  jobs.push_back(MakeJob(
      [] {
        return std::make_unique<HybridHistogramPolicy>(
            HybridGranularity::kFunction);
      },
      options));
  jobs.push_back(MakeJob(
      [] { return std::make_unique<FixedKeepAlivePolicy>(10); }, options));
  jobs.push_back(
      MakeJob([] { return std::make_unique<OraclePolicy>(); }, options));
  return jobs;
}

/// Everything in FleetMetrics except the wall-clock overhead fields, which
/// legitimately vary run to run.
void ExpectSameDeterministicMetrics(const FleetMetrics& a,
                                    const FleetMetrics& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.csr, b.csr);
  EXPECT_EQ(a.q3_csr, b.q3_csr);
  EXPECT_EQ(a.p90_csr, b.p90_csr);
  EXPECT_EQ(a.median_csr, b.median_csr);
  EXPECT_EQ(a.always_cold_fraction, b.always_cold_fraction);
  EXPECT_EQ(a.zero_cold_fraction, b.zero_cold_fraction);
  EXPECT_EQ(a.total_cold_starts, b.total_cold_starts);
  EXPECT_EQ(a.total_invocations, b.total_invocations);
  EXPECT_EQ(a.wasted_memory_minutes, b.wasted_memory_minutes);
  EXPECT_EQ(a.loaded_instance_minutes, b.loaded_instance_minutes);
  EXPECT_EQ(a.average_memory, b.average_memory);
  EXPECT_EQ(a.max_memory, b.max_memory);
  EXPECT_EQ(a.emcr, b.emcr);
}

TEST(SuiteRunnerTest, ThreadCountDoesNotChangeResults) {
  const GeneratedTrace fleet = MakeFleet();
  const SimOptions options = Options();

  std::vector<std::vector<JobResult>> runs;
  for (int threads : {1, 4, 8}) {
    SuiteRunnerOptions runner_options;
    runner_options.num_threads = threads;
    SuiteRunner runner(runner_options);
    runs.push_back(runner.Run(fleet.trace, PolicyJobs(options)));
  }

  const std::vector<JobResult>& reference = runs[0];
  ASSERT_EQ(reference.size(), 5u);
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      const JobResult& a = reference[i];
      const JobResult& b = runs[run][i];
      ASSERT_TRUE(a.status.ok()) << a.status;
      ASSERT_TRUE(b.status.ok()) << b.status;
      EXPECT_EQ(a.label, b.label);
      ExpectSameDeterministicMetrics(a.outcome.metrics, b.outcome.metrics);
      EXPECT_EQ(a.outcome.memory_series, b.outcome.memory_series);
    }
  }
}

TEST(SuiteRunnerTest, ResultsArriveInJobOrder) {
  const GeneratedTrace fleet = MakeFleet();
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = 4;
  SuiteRunner runner(runner_options);
  const std::vector<JobResult> results =
      runner.Run(fleet.trace, PolicyJobs(Options()));
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].label, "SPES");
  EXPECT_EQ(results[3].label, "Fixed-10min");
  EXPECT_EQ(results[4].label, "Oracle");
}

TEST(SuiteRunnerTest, FailingJobDoesNotPoisonSiblings) {
  const GeneratedTrace fleet = MakeFleet();
  const SimOptions good = Options();
  SimOptions bad = good;
  bad.train_minutes = fleet.trace.num_minutes() + 1;  // rejected by engine

  std::vector<SuiteJob> jobs;
  jobs.push_back(MakeJob(
      [] { return std::make_unique<FixedKeepAlivePolicy>(10); }, good));
  jobs.push_back(MakeJob(
      [] { return std::make_unique<FixedKeepAlivePolicy>(10); }, bad));
  jobs.back().label = "bad-window";
  jobs.push_back(
      MakeJob([]() -> std::unique_ptr<Policy> { return nullptr; }, good));
  jobs.back().label = "null-factory";
  jobs.push_back(MakeJob([] { return std::make_unique<OraclePolicy>(); }, good));

  SuiteRunnerOptions runner_options;
  runner_options.num_threads = 4;
  SuiteRunner runner(runner_options);
  const std::vector<JobResult> results = runner.Run(fleet.trace, std::move(jobs));

  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[3].status.ok());

  // The successful slots carry full outcomes.
  EXPECT_GT(results[0].outcome.metrics.total_invocations, 0u);
  EXPECT_GT(results[3].outcome.metrics.total_invocations, 0u);

  // And CollectMetrics keeps only the successes, in order.
  const std::vector<FleetMetrics> metrics = CollectMetrics(results);
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].policy_name, "Fixed-10min");
  EXPECT_EQ(metrics[1].policy_name, "Oracle");
}

TEST(SuiteRunnerTest, ProgressReportsEveryJobExactlyOnce) {
  const GeneratedTrace fleet = MakeFleet();
  std::atomic<size_t> calls{0};
  size_t last_total = 0;
  size_t last_finished = 0;
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = 3;
  runner_options.progress = [&](size_t finished, size_t total,
                                const JobResult& result) {
    calls.fetch_add(1);
    last_total = total;
    // Callbacks are serialized and the count is monotonic: each call sees
    // exactly one more finished job than the previous one.
    EXPECT_EQ(finished, last_finished + 1);
    last_finished = finished;
    EXPECT_LE(finished, total);
    EXPECT_FALSE(result.label.empty());
  };
  SuiteRunner runner(runner_options);
  const std::vector<JobResult> results =
      runner.Run(fleet.trace, PolicyJobs(Options()));
  EXPECT_EQ(results.size(), 5u);
  EXPECT_EQ(calls.load(), 5u);
  EXPECT_EQ(last_total, 5u);
}

TEST(SuiteRunnerLockstepTest, MixedWindowsGroupAndFailedSlotsAreIsolated) {
  const GeneratedTrace fleet = MakeFleet();
  SimOptions day1;
  day1.train_minutes = kMinutesPerDay;
  SimOptions day2;
  day2.train_minutes = 2 * kMinutesPerDay;

  // Two window groups plus one broken slot in the middle: the lockstep
  // runner forms one stream per distinct window and the bad spec fails
  // only its own slot.
  std::vector<ScenarioSpec> specs(5);
  specs[0].policy = {"fixed_keepalive", {{"minutes", 10}}};
  specs[0].options = day1;
  specs[1].policy = {"oracle", {}};
  specs[1].options = day2;
  specs[2].policy = {"no_such_policy", {}};
  specs[2].options = day1;
  specs[3].policy = {"oracle", {}};
  specs[3].options = day1;
  specs[4].policy = {"fixed_keepalive", {{"minutes", 10}}};
  specs[4].options = day2;

  size_t progress_calls = 0;
  size_t last_finished = 0;
  SuiteRunnerOptions runner_options;
  runner_options.progress = [&](size_t finished, size_t total,
                                const JobResult&) {
    ++progress_calls;
    EXPECT_EQ(finished, last_finished + 1);
    last_finished = finished;
    EXPECT_EQ(total, 5u);
  };
  SuiteRunner runner(runner_options);
  const std::vector<JobResult> lockstep =
      runner.RunLockstep(fleet.trace, specs);
  EXPECT_EQ(progress_calls, 5u);

  ASSERT_EQ(lockstep.size(), 5u);
  EXPECT_EQ(lockstep[2].status.code(), StatusCode::kNotFound);
  EXPECT_NE(lockstep[2].status.message().find("no_such_policy"),
            std::string::npos);

  // Every healthy slot is bitwise identical to the thread-pool path
  // (compared through a fresh runner so the progress expectations above
  // only see the lockstep batch).
  const std::vector<JobResult> pooled = SuiteRunner().Run(fleet.trace, specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(lockstep[i].status.ok()) << lockstep[i].status.ToString();
    EXPECT_EQ(lockstep[i].label, pooled[i].label);
    EXPECT_EQ(lockstep[i].outcome.memory_series,
              pooled[i].outcome.memory_series);
    EXPECT_EQ(lockstep[i].outcome.metrics.total_cold_starts,
              pooled[i].outcome.metrics.total_cold_starts);
    // The trained policy instance is kept alive for breakdowns.
    EXPECT_NE(lockstep[i].policy, nullptr);
  }
}

TEST(SuiteRunnerLockstepTest, SpecObserversAreSlotScoped) {
  const GeneratedTrace fleet = MakeFleet();
  SimOptions options;
  options.train_minutes = kMinutesPerDay;

  // Three specs in one window group; only spec 2 carries observers. They
  // must see exactly their own spec's run, presented as a single-lane
  // stream — so the stock observers work for any slot.
  std::vector<ScenarioSpec> specs(3);
  specs[0].policy = {"fixed_keepalive", {{"minutes", 10}}};
  specs[1].policy = {"oracle", {}};
  specs[2].policy = {"fixed_keepalive", {{"minutes", 3}}};
  for (ScenarioSpec& spec : specs) spec.options = options;

  size_t minutes_seen = 0;
  CallbackObserver observer([&](const MinuteView& view) {
    EXPECT_EQ(view.lane, 0u);
    EXPECT_EQ(view.policy->name(), "Fixed-3min");
    ++minutes_seen;
    return true;
  });
  TimeSeriesObserver capture(60);
  specs[2].observers = {&observer, &capture};

  SuiteRunner runner;
  const std::vector<JobResult> results =
      runner.RunLockstep(fleet.trace, specs);
  for (const JobResult& r : results) ASSERT_TRUE(r.status.ok());
  const size_t window =
      static_cast<size_t>(fleet.trace.num_minutes() - kMinutesPerDay);
  EXPECT_EQ(minutes_seen, window);
  // The stock capture observer fills lane 0 of its own virtual stream.
  ASSERT_EQ(capture.series().size(), 1u);
  EXPECT_EQ(capture.series()[0].size(), window / 60);

  // The thread-pool spec batch honours observers too (each job opens its
  // own stream) with the same single-lane presentation.
  minutes_seen = 0;
  const std::vector<JobResult> pooled = runner.Run(fleet.trace, specs);
  for (const JobResult& r : pooled) ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(minutes_seen, window);
}

TEST(SuiteRunnerTest, EmptyJobListReturnsEmpty) {
  const GeneratedTrace fleet = MakeFleet();
  SuiteRunner runner;
  EXPECT_TRUE(runner.Run(fleet.trace, std::vector<SuiteJob>{}).empty());
  EXPECT_TRUE(runner.Run(fleet.trace, std::vector<ScenarioSpec>{}).empty());
}

TEST(SuiteRunnerTest, EffectiveThreadsIsClampedToJobCount) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = 16;
  SuiteRunner runner(runner_options);
  EXPECT_EQ(runner.EffectiveThreads(3), 3);
  EXPECT_EQ(runner.EffectiveThreads(100), 16);
  EXPECT_EQ(runner.EffectiveThreads(0), 1);
}

}  // namespace
}  // namespace spes
