// Trace-transform registry and operators: parse/format round trips (specs
// and chains), registry error paths (unknown transform, unknown/ill-typed/
// out-of-domain parameters), per-operator semantics on a hand-built fleet,
// seeded reproducibility of the stochastic operators, and determinism of a
// transformed SuiteRunner sweep across thread counts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runner/suite_runner.h"
#include "sim/scenario.h"
#include "trace/generator.h"
#include "trace/trace.h"
#include "trace/transform.h"

namespace spes {
namespace {

FunctionTrace Fn(const std::string& name, TriggerType trigger,
                 std::vector<uint32_t> counts) {
  FunctionTrace function;
  function.meta.owner = "owner_" + name;
  function.meta.app = "app_" + name;
  function.meta.name = name;
  function.meta.trigger = trigger;
  function.counts = std::move(counts);
  return function;
}

/// Four functions over 10 minutes: two http (one sparse, one always-busy),
/// a timer, and a never-invoked queue function.
Trace TinyTrace() {
  Trace trace(10);
  trace.Add(Fn("a", TriggerType::kHttp, {1, 0, 2, 0, 0, 0, 0, 0, 0, 1}))
      .CheckOK();
  trace.Add(Fn("b", TriggerType::kTimer, {0, 1, 0, 1, 0, 1, 0, 1, 0, 1}))
      .CheckOK();
  trace.Add(Fn("c", TriggerType::kQueue, std::vector<uint32_t>(10, 0)))
      .CheckOK();
  trace.Add(Fn("d", TriggerType::kHttp, std::vector<uint32_t>(10, 5)))
      .CheckOK();
  return trace;
}

uint64_t FleetTotal(const Trace& trace) {
  uint64_t total = 0;
  for (const FunctionTrace& f : trace.functions()) {
    total += f.TotalInvocations();
  }
  return total;
}

Trace Apply(const Trace& trace, const std::string& chain_text) {
  const std::vector<TransformSpec> chain =
      ParseTransformChain(chain_text).ValueOrDie();
  return ApplyTransforms(trace, chain).ValueOrDie();
}

TEST(TransformRegistryTest, GlobalKnowsAllBuiltinTransforms) {
  const TransformRegistry& registry = TransformRegistry::Global();
  for (const char* name :
       {"time_scale", "load_scale", "slice", "filter_trigger", "merge",
        "inject_burst", "inject_drift", "thin", "top_k"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    ASSERT_NE(registry.Find(name), nullptr) << name;
    EXPECT_EQ(registry.Find(name)->canonical_name, name);
    EXPECT_FALSE(registry.Find(name)->summary.empty()) << name;
  }
  EXPECT_GE(registry.Names().size(), 9u);
}

TEST(TransformSpecTest, ParseFormatRoundTrip) {
  const TransformSpec spec =
      ParseTransformSpec("thin{keep_prob=0.25,seed=7}").ValueOrDie();
  EXPECT_EQ(spec.name, "thin");
  EXPECT_EQ(spec.params.at("keep_prob"), ParamValue(0.25));
  EXPECT_EQ(spec.params.at("seed"), ParamValue(7));

  const std::string text = FormatTransformSpec(spec);
  const TransformSpec reparsed = ParseTransformSpec(text).ValueOrDie();
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(reparsed.params, spec.params);

  // Errors use the "transform" noun, not "policy".
  const auto bad = ParseTransformSpec("thin{keep_prob=0.5");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("transform spec"), std::string::npos);
}

TEST(TransformChainTest, ParseFormatRoundTrip) {
  const std::vector<TransformSpec> chain =
      ParseTransformChain("load_scale{factor=2.0} | thin{seed=3}")
          .ValueOrDie();
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].name, "load_scale");
  EXPECT_EQ(chain[1].name, "thin");

  const std::string text = FormatTransformChain(chain);
  const std::vector<TransformSpec> reparsed =
      ParseTransformChain(text).ValueOrDie();
  ASSERT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed[0].params, chain[0].params);
  EXPECT_EQ(reparsed[1].params, chain[1].params);

  EXPECT_TRUE(ParseTransformChain("").ValueOrDie().empty());
  EXPECT_TRUE(ParseTransformChain("  ").ValueOrDie().empty());
  EXPECT_FALSE(ParseTransformChain("thin||merge").ok());
  EXPECT_FALSE(ParseTransformChain("|thin").ok());
}

TEST(TransformRegistryTest, UnknownTransformIsNotFound) {
  const auto result = TransformRegistry::Global().Create({"no_such", {}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("no_such"), std::string::npos);
  // The error lists the registered alternatives.
  EXPECT_NE(result.status().message().find("load_scale"), std::string::npos);
}

TEST(TransformRegistryTest, UnknownParameterNamesTheField) {
  const auto result =
      TransformRegistry::Global().Create({"thin", {{"keepprob", 0.5}}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("keepprob"), std::string::npos);
  // The error lists the accepted parameter names.
  EXPECT_NE(result.status().message().find("keep_prob"), std::string::npos);
}

TEST(TransformRegistryTest, IllTypedParameterIsInvalidArgument) {
  const auto string_for_double =
      TransformRegistry::Global().Create({"thin", {{"keep_prob", "half"}}});
  ASSERT_FALSE(string_for_double.ok());
  EXPECT_EQ(string_for_double.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(string_for_double.status().message().find("expects double"),
            std::string::npos);

  const auto int_for_string =
      TransformRegistry::Global().Create({"top_k", {{"by", 7}}});
  ASSERT_FALSE(int_for_string.ok());
  EXPECT_EQ(int_for_string.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransformRegistryTest, OutOfDomainValuesNameTheField) {
  const struct {
    const char* spec;
    const char* mentions;
  } kCases[] = {
      {"load_scale{factor=0.0}", "factor"},
      {"time_scale{factor=-1.0}", "factor"},
      {"thin{keep_prob=1.5}", "keep_prob"},
      {"merge{copies=0}", "copies"},
      {"merge{copies=65}", "copies"},
      {"top_k{k=0}", "k"},
      {"top_k{by=bogus}", "by"},
      {"filter_trigger{types=bogus}", "bogus"},
      {"inject_burst{amplitude=0}", "amplitude"},
      {"inject_burst{fraction=2.0}", "fraction"},
      {"inject_drift{at=-1}", "at"},
      {"slice{start_minute=-1}", "start_minute"},
  };
  for (const auto& test_case : kCases) {
    const auto result =
        TransformRegistry::Global().CreateFromString(test_case.spec);
    ASSERT_FALSE(result.ok()) << test_case.spec;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << test_case.spec;
    EXPECT_NE(result.status().message().find(test_case.mentions),
              std::string::npos)
        << test_case.spec;
  }
}

TEST(TimeScaleTest, CompressionMergesMinutesAndConservesTotals) {
  const Trace trace = TinyTrace();
  const Trace compressed = Apply(trace, "time_scale{factor=2.0}");
  EXPECT_EQ(compressed.num_minutes(), 5);
  EXPECT_EQ(FleetTotal(compressed), FleetTotal(trace));
  // d was 5 per minute; pairs of source minutes land in one slot.
  const int64_t d = compressed.FindByName("d");
  ASSERT_GE(d, 0);
  EXPECT_EQ(compressed.function(d).counts,
            (std::vector<uint32_t>{10, 10, 10, 10, 10}));
}

TEST(TimeScaleTest, StretchingSpreadsMinutesAndConservesTotals) {
  const Trace trace = TinyTrace();
  const Trace stretched = Apply(trace, "time_scale{factor=0.5}");
  EXPECT_EQ(stretched.num_minutes(), 20);
  EXPECT_EQ(FleetTotal(stretched), FleetTotal(trace));
  const int64_t d = stretched.FindByName("d");
  ASSERT_GE(d, 0);
  // Source minutes map to every other destination slot.
  EXPECT_EQ(stretched.function(d).counts[0], 5u);
  EXPECT_EQ(stretched.function(d).counts[1], 0u);
  EXPECT_EQ(stretched.function(d).counts[2], 5u);
}

TEST(LoadScaleTest, ScalesCountsAndNeverErasesActiveMinutes) {
  const Trace trace = TinyTrace();
  const Trace doubled = Apply(trace, "load_scale{factor=2.0}");
  EXPECT_EQ(FleetTotal(doubled), 2 * FleetTotal(trace));

  // Scaling far down still keeps every active minute at >= 1.
  const Trace floored = Apply(trace, "load_scale{factor=0.01}");
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    EXPECT_EQ(floored.function(i).InvokedMinutes(),
              trace.function(i).InvokedMinutes());
  }
}

TEST(SliceTest, RestrictsTheHorizon) {
  const Trace trace = TinyTrace();
  const Trace window = Apply(trace, "slice{start_minute=2,end_minute=6}");
  EXPECT_EQ(window.num_minutes(), 4);
  const int64_t a = window.FindByName("a");
  ASSERT_GE(a, 0);
  EXPECT_EQ(window.function(a).counts, (std::vector<uint32_t>{2, 0, 0, 0}));

  // end_minute=0 means the trace horizon.
  EXPECT_EQ(Apply(trace, "slice{start_minute=5}").num_minutes(), 5);
}

TEST(SliceTest, ApplyTimeWindowErrorsNameTheFieldAndHorizon) {
  const Trace trace = TinyTrace();
  const auto past_end =
      ApplyTransforms(trace, {TransformSpec{"slice", {{"end_minute", 99}}}});
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(past_end.status().message().find("end_minute"),
            std::string::npos);
  EXPECT_NE(past_end.status().message().find("10"), std::string::npos);

  const auto inverted = ApplyTransforms(
      trace,
      {TransformSpec{"slice", {{"start_minute", 6}, {"end_minute", 6}}}});
  ASSERT_FALSE(inverted.ok());
  EXPECT_NE(inverted.status().message().find("start_minute"),
            std::string::npos);
}

TEST(FilterTriggerTest, KeepsOnlyListedTypes) {
  const Trace trace = TinyTrace();
  const Trace http = Apply(trace, "filter_trigger{types=http}");
  EXPECT_EQ(http.num_functions(), 2u);
  EXPECT_GE(http.FindByName("a"), 0);
  EXPECT_GE(http.FindByName("d"), 0);

  const Trace mixed = Apply(trace, "filter_trigger{types=http+timer}");
  EXPECT_EQ(mixed.num_functions(), 3u);
  EXPECT_EQ(mixed.FindByName("c"), -1);
}

TEST(MergeTest, ClonesTheFleetUnderFreshNames) {
  const Trace trace = TinyTrace();
  const Trace merged = Apply(trace, "merge{copies=3}");
  EXPECT_EQ(merged.num_functions(), 3 * trace.num_functions());
  EXPECT_EQ(FleetTotal(merged), 3 * FleetTotal(trace));
  EXPECT_GE(merged.FindByName("a"), 0);
  EXPECT_GE(merged.FindByName("a#1"), 0);
  EXPECT_GE(merged.FindByName("a#2"), 0);
  // Copies get distinct apps/owners too, so grouping stays meaningful.
  EXPECT_EQ(merged.CountApps(), 3 * trace.CountApps());
}

TEST(MergeTracesTest, CombinesDistinctFleets) {
  const Trace a = TinyTrace();
  Trace b(10);
  b.Add(Fn("x", TriggerType::kEvent, std::vector<uint32_t>(10, 1))).CheckOK();
  const Trace merged = MergeTraces({&a, &b}).ValueOrDie();
  EXPECT_EQ(merged.num_functions(), 5u);
  EXPECT_EQ(FleetTotal(merged), FleetTotal(a) + FleetTotal(b));

  Trace short_trace(5);
  const auto mismatch = MergeTraces({&a, &short_trace});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);

  const auto duplicate = MergeTraces({&a, &a});
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
}

TEST(InjectBurstTest, AddsLoadOnlyInsideTheWindow) {
  const Trace trace = TinyTrace();
  const Trace burst = Apply(
      trace, "inject_burst{at=4,width=3,amplitude=7,fraction=1.0}");
  EXPECT_EQ(burst.num_minutes(), trace.num_minutes());
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    for (int t = 0; t < trace.num_minutes(); ++t) {
      const uint32_t expected = trace.function(i).counts[t] +
                                (t >= 4 && t < 7 ? 7u : 0u);
      EXPECT_EQ(burst.function(i).counts[t], expected) << i << "@" << t;
    }
  }
}

TEST(InjectBurstTest, BurstBeyondHorizonNamesTheField) {
  const auto result = ApplyTransforms(
      TinyTrace(), {TransformSpec{"inject_burst", {{"at", 10}}}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("'at'"), std::string::npos);
  // Chain context names the failing step.
  EXPECT_NE(result.status().message().find("inject_burst"),
            std::string::npos);
}

TEST(InjectDriftTest, SwapsBehaviourTailsConservingFleetTotals) {
  const Trace trace = TinyTrace();
  const Trace drifted =
      Apply(trace, "inject_drift{at=5,fraction=1.0}");
  EXPECT_EQ(FleetTotal(drifted), FleetTotal(trace));
  // Nothing changes before the drift point...
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    for (int t = 0; t < 5; ++t) {
      EXPECT_EQ(drifted.function(i).counts[t], trace.function(i).counts[t]);
    }
  }
  // ... and at least one function behaves differently after it.
  bool changed = false;
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    if (drifted.function(i).counts != trace.function(i).counts) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(ThinTest, SeededThinningIsReproducible) {
  GeneratorConfig config;
  config.num_functions = 80;
  config.days = 2;
  config.seed = 11;
  const Trace trace = GenerateTrace(config).ValueOrDie().trace;

  const Trace once = Apply(trace, "thin{keep_prob=0.5,seed=9}");
  const Trace twice = Apply(trace, "thin{keep_prob=0.5,seed=9}");
  ASSERT_EQ(once.num_functions(), twice.num_functions());
  for (size_t i = 0; i < once.num_functions(); ++i) {
    EXPECT_EQ(once.function(i).counts, twice.function(i).counts) << i;
  }

  // A different seed draws a different subsample...
  const Trace other = Apply(trace, "thin{keep_prob=0.5,seed=10}");
  bool differs = false;
  for (size_t i = 0; i < once.num_functions(); ++i) {
    if (other.function(i).counts != once.function(i).counts) differs = true;
  }
  EXPECT_TRUE(differs);
  // ... every minute is a subsample of the original ...
  for (size_t i = 0; i < trace.num_functions(); ++i) {
    for (int t = 0; t < trace.num_minutes(); ++t) {
      EXPECT_LE(once.function(i).counts[t], trace.function(i).counts[t]);
    }
  }
  // ... and the degenerate probabilities are exact.
  EXPECT_EQ(FleetTotal(Apply(trace, "thin{keep_prob=1.0}")),
            FleetTotal(trace));
  EXPECT_EQ(FleetTotal(Apply(trace, "thin{keep_prob=0.0}")), 0u);
}

TEST(TopKTest, KeepsTheBusiestFunctionsInFleetOrder) {
  const Trace trace = TinyTrace();  // totals: a=4, b=5, c=0, d=50
  const Trace top2 = Apply(trace, "top_k{k=2}");
  ASSERT_EQ(top2.num_functions(), 2u);
  EXPECT_EQ(top2.function(0).meta.name, "b");  // original order preserved
  EXPECT_EQ(top2.function(1).meta.name, "d");

  const Trace by_peak = Apply(trace, "top_k{k=2,by=peak}");
  ASSERT_EQ(by_peak.num_functions(), 2u);  // peaks: a=2, b=1, c=0, d=5
  EXPECT_EQ(by_peak.function(0).meta.name, "a");
  EXPECT_EQ(by_peak.function(1).meta.name, "d");

  // k beyond the fleet keeps everything.
  EXPECT_EQ(Apply(trace, "top_k{k=100}").num_functions(),
            trace.num_functions());
}

TEST(ApplyTransformsTest, ChainErrorsNameTheStep) {
  const Trace trace = TinyTrace();
  std::vector<TransformSpec> chain;
  chain.push_back({"load_scale", {{"factor", 2.0}}});
  chain.push_back({"no_such_transform", {}});
  const auto result = ApplyTransforms(trace, chain);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("step 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("no_such_transform"),
            std::string::npos);
}

TEST(ApplyTransformsTest, ChainAppliesInOrder) {
  const Trace trace = TinyTrace();
  // slice-then-scale == scale-then-slice for these operators, but
  // slice{end=5} after time_scale{2} reads a *different* window than
  // before it — pin the ordering explicitly.
  const Trace compressed_then_sliced =
      Apply(trace, "time_scale{factor=2.0} | slice{end_minute=2}");
  EXPECT_EQ(compressed_then_sliced.num_minutes(), 2);
  const int64_t d = compressed_then_sliced.FindByName("d");
  ASSERT_GE(d, 0);
  EXPECT_EQ(compressed_then_sliced.function(d).counts,
            (std::vector<uint32_t>{10, 10}));
}

TEST(TraceSpecTest, KeyCoversSourceAndChain) {
  GeneratorConfig config;
  config.num_functions = 50;
  config.days = 2;
  config.seed = 3;

  TraceSpec plain = TraceSpec::FromGenerator(config);
  TraceSpec stressed = TraceSpec::FromGenerator(config);
  stressed.Then({"load_scale", {{"factor", 2.0}}});

  EXPECT_NE(TraceSpecKey(plain), TraceSpecKey(stressed));
  EXPECT_EQ(TraceSpecKey(plain), TraceSpecKey(TraceSpec::FromGenerator(config)));
  EXPECT_NE(TraceSpecKey(plain).find("seed=3"), std::string::npos);
  EXPECT_NE(TraceSpecKey(stressed).find("load_scale"), std::string::npos);

  GeneratorConfig other = config;
  other.seed = 4;
  EXPECT_NE(TraceSpecKey(plain),
            TraceSpecKey(TraceSpec::FromGenerator(other)));
}

TEST(TraceCacheTest, SharesOneRealizationPerKey) {
  GeneratorConfig config;
  config.num_functions = 50;
  config.days = 2;
  config.seed = 3;

  TraceCache cache;
  const TraceSpec plain = TraceSpec::FromGenerator(config);
  TraceSpec stressed = TraceSpec::FromGenerator(config);
  stressed.Then({"top_k", {{"k", 10}}});

  const auto first = cache.Get(plain).ValueOrDie();
  const auto again = cache.Get(plain).ValueOrDie();
  EXPECT_EQ(first.get(), again.get());  // same realized trace, not a copy
  EXPECT_EQ(cache.size(), 1u);

  const auto transformed = cache.Get(stressed).ValueOrDie();
  EXPECT_NE(first.get(), transformed.get());
  EXPECT_EQ(transformed->num_functions(), 10u);
  EXPECT_EQ(cache.size(), 2u);

  // Nothing to realize for a provided source.
  EXPECT_EQ(cache.Get(TraceSpec{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScenarioSessionTest, CachesTransformedVariantsPerChain) {
  GeneratorConfig config;
  config.num_functions = 60;
  config.days = 2;
  config.seed = 5;
  const ScenarioSession session =
      ScenarioSession::Open(TraceSpec::FromGenerator(config)).ValueOrDie();

  const std::vector<TransformSpec> chain = {{"load_scale", {{"factor", 3.0}}}};
  const auto variant = session.TransformedTrace(chain).ValueOrDie();
  const auto cached = session.TransformedTrace(chain).ValueOrDie();
  EXPECT_EQ(variant.get(), cached.get());
  EXPECT_EQ(session.TransformedTrace({}).ValueOrDie().get(),
            &session.trace());

  // Run() applies the spec's transforms on top of the session base.
  ScenarioSpec spec;
  spec.policy = {"fixed_keepalive", {}};
  spec.options.train_minutes = kMinutesPerDay;
  const ScenarioOutcome base = session.Run(spec).ValueOrDie();
  spec.trace.transforms = chain;
  const ScenarioOutcome stressed = session.Run(spec).ValueOrDie();
  EXPECT_GT(stressed.outcome.metrics.total_invocations,
            base.outcome.metrics.total_invocations);
}

TEST(RealizeTraceTest, AppliesTheTransformChain) {
  GeneratorConfig config;
  config.num_functions = 40;
  config.days = 2;
  config.seed = 6;
  TraceSpec spec = TraceSpec::FromGenerator(config);
  spec.Then({"top_k", {{"k", 10}}}).Then({"merge", {{"copies", 2}}});
  const Trace trace = RealizeTrace(spec).ValueOrDie();
  EXPECT_EQ(trace.num_functions(), 20u);

  // A failing chain propagates the precise step error.
  TraceSpec bad = TraceSpec::FromGenerator(config);
  bad.Then({"slice", {{"end_minute", 10 * kMinutesPerDay}}});
  const auto result = RealizeTrace(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("end_minute"), std::string::npos);
}

TEST(SuiteRunnerTransformSweepTest, TraceLessBatchIsThreadCountInvariant) {
  GeneratorConfig config;
  config.num_functions = 120;
  config.days = 3;
  config.seed = 23;

  SimOptions options;
  options.train_minutes = kMinutesPerDay;

  // One policy across four workload variants — the stressed-figure sweep
  // as pure data: no trace is passed, each spec realizes its own.
  const char* kChains[] = {
      "",
      "load_scale{factor=2.0}",
      "load_scale{factor=2.0} | inject_burst{at=2000,width=20,amplitude=30,"
      "fraction=0.3}",
      "thin{keep_prob=0.5,seed=4}",
  };
  std::vector<ScenarioSpec> specs;
  for (const char* chain : kChains) {
    ScenarioSpec spec;
    spec.label = chain[0] == '\0' ? "baseline" : chain;
    spec.trace = TraceSpec::FromGenerator(config);
    spec.trace.transforms = ParseTransformChain(chain).ValueOrDie();
    spec.policy = {"spes", {}};
    spec.options = options;
    specs.push_back(std::move(spec));
  }
  // An invalid chain fails only its own slot.
  ScenarioSpec broken;
  broken.label = "broken";
  broken.trace = TraceSpec::FromGenerator(config);
  broken.trace.transforms = {{"no_such_transform", {}}};
  broken.policy = {"spes", {}};
  broken.options = options;
  specs.push_back(std::move(broken));

  SuiteRunnerOptions serial_options;
  serial_options.num_threads = 1;
  const std::vector<JobResult> serial =
      SuiteRunner(serial_options).Run(specs);
  SuiteRunnerOptions parallel_options;
  parallel_options.num_threads = 4;
  const std::vector<JobResult> parallel =
      SuiteRunner(parallel_options).Run(specs);

  ASSERT_EQ(serial.size(), 5u);
  ASSERT_EQ(parallel.size(), 5u);
  for (size_t i = 0; i + 1 < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].status.ok()) << serial[i].status.ToString();
    ASSERT_TRUE(parallel[i].status.ok());
    // Bitwise-identical runs at any thread count.
    EXPECT_EQ(serial[i].outcome.memory_series,
              parallel[i].outcome.memory_series)
        << specs[i].label;
    EXPECT_EQ(serial[i].outcome.metrics.total_cold_starts,
              parallel[i].outcome.metrics.total_cold_starts);
  }
  EXPECT_EQ(serial[4].status.code(), StatusCode::kNotFound);
  EXPECT_NE(serial[4].status.message().find("no_such_transform"),
            std::string::npos);

  // The stressed variants actually change the workload.
  EXPECT_GT(serial[1].outcome.metrics.total_invocations,
            serial[0].outcome.metrics.total_invocations);
  EXPECT_LT(serial[3].outcome.metrics.total_invocations,
            serial[0].outcome.metrics.total_invocations);
}

}  // namespace
}  // namespace spes
