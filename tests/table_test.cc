#include "common/table.h"

#include <gtest/gtest.h>

namespace spes {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator uses dashes.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ColumnsAlign) {
  Table t({"a", "b"});
  t.AddRow({"xxxxx", "y"});
  const std::string out = t.ToString();
  // Each line within the table ends cleanly with \n.
  size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);  // header + separator + one row
}

TEST(FormatDoubleTest, RespectsDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatPercentTest, ConvertsFraction) {
  EXPECT_EQ(FormatPercent(0.4977, 2), "49.77%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(TableCsvTest, RendersHeaderAndRows) {
  Table table({"policy", "Q3-CSR"});
  table.AddRow({"SPES", "0.1080"});
  table.AddRow({"Fixed-10min", "0.2150"});
  EXPECT_EQ(table.ToCsv(),
            "policy,Q3-CSR\nSPES,0.1080\nFixed-10min,0.2150\n");
}

TEST(TableCsvTest, QuotesCellsThatNeedIt) {
  Table table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  table.AddRow({"line\nbreak", "plain"});
  EXPECT_EQ(table.ToCsv(),
            "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n\"line\nbreak\","
            "plain\n");
}

TEST(TableJsonTest, RendersRowObjectsKeyedByHeader) {
  Table table({"policy", "Q3-CSR"});
  table.AddRow({"SPES", "0.1080"});
  table.AddRow({"Fixed-10min", "0.2150"});
  EXPECT_EQ(table.ToJson(),
            "[{\"policy\":\"SPES\",\"Q3-CSR\":\"0.1080\"},"
            "{\"policy\":\"Fixed-10min\",\"Q3-CSR\":\"0.2150\"}]");
}

TEST(TableJsonTest, EscapesSpecialCharacters) {
  Table table({"k\"ey"});
  table.AddRow({"back\\slash\nand\ttab"});
  EXPECT_EQ(table.ToJson(),
            "[{\"k\\\"ey\":\"back\\\\slash\\nand\\ttab\"}]");
  EXPECT_EQ(JsonEscape(std::string("\x01")), "\"\\u0001\"");
}

TEST(TableJsonTest, EmptyTableIsAnEmptyArray) {
  Table table({"a", "b"});
  EXPECT_EQ(table.ToJson(), "[]");
  EXPECT_EQ(table.ToCsv(), "a,b\n");
}

TEST(AsciiBarTest, WidthAndFill) {
  EXPECT_EQ(AsciiBar(0.0, 4), "    ");
  EXPECT_EQ(AsciiBar(1.0, 4), "####");
  EXPECT_EQ(AsciiBar(0.5, 4), "##  ");
  // Clamped outside [0, 1].
  EXPECT_EQ(AsciiBar(2.0, 3), "###");
  EXPECT_EQ(AsciiBar(-1.0, 3), "   ");
}

}  // namespace
}  // namespace spes
