#include "core/spes_policy.h"

#include <gtest/gtest.h>

#include "policies/fixed_keepalive.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows,
                std::vector<std::string> apps = {},
                std::vector<TriggerType> triggers = {}) {
  Trace trace(static_cast<int>(rows[0].size()));
  for (size_t k = 0; k < rows.size(); ++k) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k);
    f.meta.app = apps.empty() ? "a" + std::to_string(k) : apps[k];
    f.meta.owner = "o";
    f.meta.trigger =
        triggers.empty() ? TriggerType::kHttp : triggers[k];
    f.counts = std::move(rows[k]);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

std::vector<uint32_t> PeriodicRow(int n, int period, int phase = 0) {
  std::vector<uint32_t> counts(static_cast<size_t>(n), 0);
  for (int t = phase; t < n; t += period) counts[static_cast<size_t>(t)] = 1;
  return counts;
}

TEST(SpesPolicyTest, CategorizesRegularAndServesItWarmCheaply) {
  const int horizon = 3 * kMinutesPerDay;
  const int train = 2 * kMinutesPerDay;
  Trace trace = MakeTrace({PeriodicRow(horizon, 30)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = train;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kRegular);
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  // Prediction-driven pre-warm: nearly all arrivals warm...
  EXPECT_LE(acc.ColdStartRate(), 0.05);
  // ...while the instance is only resident around predictions
  // (theta_prewarm window + execution), far below full residency.
  EXPECT_LT(acc.loaded_minutes, static_cast<uint64_t>(kMinutesPerDay / 3));
}

TEST(SpesPolicyTest, AlwaysWarmNeverEvicted) {
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 1);
  Trace trace = MakeTrace({std::move(counts)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kAlwaysWarm);
  // Memory starts empty, so only the very first simulated minute can be
  // cold; thereafter the function is never evicted.
  EXPECT_LE(outcome.ValueOrDie().accounts[0].cold_starts, 1u);
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].loaded_minutes,
            static_cast<uint64_t>(kMinutesPerDay));
}

TEST(SpesPolicyTest, DenseStaysLoadedThroughShortGaps) {
  const int horizon = 3 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  // Mostly 2-minute gaps with occasional 6-minute lulls: dense, but too
  // spread for the regular rule.
  int t = 0, k = 0;
  while (t < horizon) {
    counts[static_cast<size_t>(t)] = 1;
    t += (k++ % 12 == 11) ? 6 : 2;
  }
  Trace trace = MakeTrace({std::move(counts)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kDense);
  EXPECT_LE(outcome.ValueOrDie().accounts[0].ColdStartRate(), 0.02);
}

TEST(SpesPolicyTest, SuccessiveRidesWaves) {
  const int horizon = 4 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  // Irregularly spaced waves (regular spacing would look "regular").
  int start = 100;
  int k = 0;
  const int spacings[5] = {410, 770, 1310, 560, 990};
  while (start + 5 < horizon) {
    for (int s = 0; s < 5; ++s) {
      counts[static_cast<size_t>(start + s)] = 2;
    }
    start += spacings[k++ % 5];
  }
  Trace trace = MakeTrace({std::move(counts)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kSuccessive);
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  // One tolerated cold start per wave; the rest of each wave is warm.
  const uint64_t waves = acc.cold_starts;
  EXPECT_LE(waves, 5u);
  EXPECT_LT(acc.ColdStartRate(), 0.25);
}

TEST(SpesPolicyTest, CorrelatedTargetPrewarmedByDriver) {
  // Driver: 20-minute timer. Target: fires 3 minutes after an aperiodic
  // subset of driver events — its own WTs are too scattered for any
  // deterministic rule, but the driver predicts it perfectly.
  const int horizon = 4 * kMinutesPerDay;
  std::vector<uint32_t> driver(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> target(static_cast<size_t>(horizon), 0);
  int k = 0;
  for (int t = 0; t + 3 < horizon; t += 20) {
    driver[static_cast<size_t>(t)] = 1;
    const int r = k % 23;
    if (r == 0 || r == 5 || r == 9 || r == 16 || r == 21) {
      target[static_cast<size_t>(t + 3)] = 1;
    }
    ++k;
  }
  Trace trace =
      MakeTrace({std::move(driver), std::move(target)}, {"app", "app"});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(1), FunctionType::kCorrelated);
  EXPECT_LE(outcome.ValueOrDie().accounts[1].ColdStartRate(), 0.05);
}

TEST(SpesPolicyTest, DisablingCorrelationRemovesLinks) {
  const int horizon = 4 * kMinutesPerDay;
  std::vector<uint32_t> driver(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> target(static_cast<size_t>(horizon), 0);
  int k = 0;
  for (int t = 0; t + 3 < horizon; t += 20) {
    driver[static_cast<size_t>(t)] = 1;
    if (++k % 3 == 0) target[static_cast<size_t>(t + 3)] = 1;
  }
  Trace trace =
      MakeTrace({std::move(driver), std::move(target)}, {"app", "app"});
  SpesConfig config;
  config.enable_correlated = false;
  SpesPolicy policy(config);
  policy.Train(trace, 2 * kMinutesPerDay);
  EXPECT_NE(policy.TypeOf(1), FunctionType::kCorrelated);
  for (const auto& links : policy.links_by_candidate()) {
    EXPECT_TRUE(links.empty());
  }
}

TEST(SpesPolicyTest, PossibleFunctionPredictedFromRepeatedGaps) {
  // Three 300-minute gaps then one unique long gap, repeating: the 299 WT
  // mode repeats (a predictive value) but covers only ~75% of the WTs, so
  // the appro-regular rule does not fire and the function lands in the
  // indeterminate pool, where the "possible" replay dominates.
  const int horizon = 10 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  int t = 50;
  int k = 0;
  while (t < horizon) {
    counts[static_cast<size_t>(t)] = 1;
    if (k % 4 == 3) {
      t += 400 + 37 * k;  // a fresh long gap each cycle
    } else {
      t += 300;
    }
    ++k;
  }
  Trace trace = MakeTrace({std::move(counts)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = 8 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kPossible);
  // Prediction by the repeated mode keeps ~3/4 of arrivals warm.
  EXPECT_LE(outcome.ValueOrDie().accounts[0].ColdStartRate(), 0.40);
}

TEST(SpesPolicyTest, UnknownFunctionsAreNotPreloaded) {
  const int horizon = 2 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  counts[100] = 1;  // training: one arrival
  counts[kMinutesPerDay + 700] = 1;  // simulation: one arrival
  Trace trace = MakeTrace({std::move(counts)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kUnknown);
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  EXPECT_EQ(acc.cold_starts, 1u);
  // theta_givenup = 1 for unknown: almost no waste.
  EXPECT_LE(acc.wasted_minutes, 2u);
}

TEST(SpesPolicyTest, AdjustingLateCategorizesUnknownToNewlyPossible) {
  const int horizon = 4 * kMinutesPerDay;
  const int train = kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  counts[500] = 1;  // lone training arrival -> unknown
  // Online: a clean 100-minute cadence (repeated WT = 99).
  for (int t = train; t < horizon; t += 100) {
    counts[static_cast<size_t>(t)] = 1;
  }
  Trace trace = MakeTrace({std::move(counts)});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = train;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kNewlyPossible);
  EXPECT_GE(policy.online_recategorized(), 1);
}

TEST(SpesPolicyTest, AdjustingDisabledKeepsUnknown) {
  const int horizon = 4 * kMinutesPerDay;
  const int train = kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  counts[500] = 1;
  for (int t = train; t < horizon; t += 100) {
    counts[static_cast<size_t>(t)] = 1;
  }
  Trace trace = MakeTrace({std::move(counts)});
  SpesConfig config;
  config.enable_adjusting = false;
  SpesPolicy policy(config);
  SimOptions options;
  options.train_minutes = train;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(policy.TypeOf(0), FunctionType::kUnknown);
}

TEST(SpesPolicyTest, AdjustingTracksDriftingPeriod) {
  // Training: 30-minute period. Simulation: drifts to 40 minutes.
  const int horizon = 6 * kMinutesPerDay;
  const int train = 3 * kMinutesPerDay;
  std::vector<uint32_t> counts(static_cast<size_t>(horizon), 0);
  for (int t = 0; t < train; t += 30) counts[static_cast<size_t>(t)] = 1;
  for (int t = train; t < horizon; t += 40) {
    counts[static_cast<size_t>(t)] = 1;
  }
  Trace trace = MakeTrace({std::move(counts)});

  SpesConfig with;  // adjusting on
  SpesPolicy policy_with(with);
  SimOptions options;
  options.train_minutes = train;
  const auto out_with = Simulate(trace, &policy_with, options);
  ASSERT_TRUE(out_with.ok());

  SpesConfig without;
  without.enable_adjusting = false;
  SpesPolicy policy_without(without);
  const auto out_without = Simulate(trace, &policy_without, options);
  ASSERT_TRUE(out_without.ok());

  EXPECT_LE(out_with.ValueOrDie().accounts[0].cold_starts,
            out_without.ValueOrDie().accounts[0].cold_starts);
}

TEST(SpesPolicyTest, UnseenFunctionPrewarmedByOnlineCorrelation) {
  // Candidate fires every 25 min throughout. The unseen target starts
  // firing only in the simulation window, 2 minutes after the candidate.
  const int horizon = 3 * kMinutesPerDay;
  const int train = 2 * kMinutesPerDay;
  std::vector<uint32_t> candidate(static_cast<size_t>(horizon), 0);
  std::vector<uint32_t> target(static_cast<size_t>(horizon), 0);
  for (int t = 0; t + 2 < horizon; t += 25) {
    candidate[static_cast<size_t>(t)] = 1;
    if (t >= train) target[static_cast<size_t>(t + 2)] = 1;
  }
  Trace trace = MakeTrace({std::move(candidate), std::move(target)},
                          {"app", "app"},
                          {TriggerType::kQueue, TriggerType::kQueue});
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = train;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  // Online correlation pre-warms the unseen target from candidate firings.
  EXPECT_LE(outcome.ValueOrDie().accounts[1].ColdStartRate(), 0.30);
}

TEST(SpesPolicyTest, CountByTypeCoversAllFunctions) {
  GeneratorConfig config;
  config.num_functions = 400;
  config.days = 4;
  config.seed = 21;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  SpesPolicy policy;
  policy.Train(generated.ValueOrDie().trace, 3 * kMinutesPerDay);
  const auto counts = policy.CountByType();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, 400);
  // A realistic mix categorizes a solid share of the fleet.
  EXPECT_LT(counts[static_cast<size_t>(FunctionType::kUnknown)], 300);
}

TEST(SpesPolicyTest, GivenupScalerIncreasesMemoryAndCutsColdStarts) {
  GeneratorConfig gen;
  gen.num_functions = 300;
  gen.days = 4;
  gen.seed = 33;
  const auto generated = GenerateTrace(gen);
  ASSERT_TRUE(generated.ok());
  const Trace& trace = generated.ValueOrDie().trace;
  SimOptions options;
  options.train_minutes = 3 * kMinutesPerDay;

  SpesConfig c1;
  SpesPolicy p1(c1);
  const auto o1 = Simulate(trace, &p1, options);
  ASSERT_TRUE(o1.ok());

  SpesConfig c4 = c1;
  c4.givenup_scaler = 4;
  SpesPolicy p4(c4);
  const auto o4 = Simulate(trace, &p4, options);
  ASSERT_TRUE(o4.ok());

  EXPECT_GE(o4.ValueOrDie().metrics.average_memory,
            o1.ValueOrDie().metrics.average_memory);
  EXPECT_LE(o4.ValueOrDie().metrics.total_cold_starts,
            o1.ValueOrDie().metrics.total_cold_starts);
}

class PrewarmSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PrewarmSweepTest, RegularFunctionStaysWarmAcrossThetas) {
  const int theta = GetParam();
  const int horizon = 3 * kMinutesPerDay;
  Trace trace = MakeTrace({PeriodicRow(horizon, 45)});
  SpesConfig config;
  config.theta_prewarm = theta;
  SpesPolicy policy(config);
  SimOptions options;
  options.train_minutes = 2 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.ValueOrDie().accounts[0].ColdStartRate(), 0.10)
      << "theta_prewarm=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrewarmSweepTest,
                         ::testing::Values(1, 2, 3, 5, 10));

}  // namespace
}  // namespace spes
