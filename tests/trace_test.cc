#include "trace/trace.h"

#include <gtest/gtest.h>

namespace spes {
namespace {

FunctionTrace MakeFunction(const std::string& name, const std::string& app,
                           const std::string& owner,
                           std::vector<uint32_t> counts,
                           TriggerType trigger = TriggerType::kHttp) {
  FunctionTrace f;
  f.meta.name = name;
  f.meta.app = app;
  f.meta.owner = owner;
  f.meta.trigger = trigger;
  f.counts = std::move(counts);
  return f;
}

TEST(TriggerTypeTest, RoundTripsAllNames) {
  for (int k = 0; k < kNumTriggerTypes; ++k) {
    const TriggerType t = static_cast<TriggerType>(k);
    EXPECT_EQ(TriggerTypeFromString(TriggerTypeToString(t)), t);
  }
}

TEST(TriggerTypeTest, UnknownNameMapsToOthers) {
  EXPECT_EQ(TriggerTypeFromString("nonsense"), TriggerType::kOthers);
  EXPECT_EQ(TriggerTypeFromString(""), TriggerType::kOthers);
}

TEST(FunctionTraceTest, TotalsAndInvokedMinutes) {
  const FunctionTrace f =
      MakeFunction("f1", "a1", "o1", {0, 3, 0, 2, 0});
  EXPECT_EQ(f.TotalInvocations(), 5u);
  EXPECT_EQ(f.InvokedMinutes(), 2);
}

TEST(TraceTest, AddValidatesLength) {
  Trace trace(4);
  EXPECT_TRUE(trace.Add(MakeFunction("f1", "a", "o", {1, 0, 0, 1})).ok());
  const Status bad = trace.Add(MakeFunction("f2", "a", "o", {1, 0}));
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(TraceTest, AddRejectsDuplicateNames) {
  Trace trace(2);
  EXPECT_TRUE(trace.Add(MakeFunction("dup", "a", "o", {1, 0})).ok());
  EXPECT_EQ(trace.Add(MakeFunction("dup", "a", "o", {0, 1})).code(),
            StatusCode::kAlreadyExists);
}

TEST(TraceTest, FindByName) {
  Trace trace(2);
  ASSERT_TRUE(trace.Add(MakeFunction("x", "a", "o", {1, 0})).ok());
  ASSERT_TRUE(trace.Add(MakeFunction("y", "a", "o", {0, 1})).ok());
  EXPECT_EQ(trace.FindByName("x"), 0);
  EXPECT_EQ(trace.FindByName("y"), 1);
  EXPECT_EQ(trace.FindByName("zzz"), -1);
}

TEST(TraceTest, GroupByAppAndOwner) {
  Trace trace(1);
  ASSERT_TRUE(trace.Add(MakeFunction("f1", "appA", "own1", {1})).ok());
  ASSERT_TRUE(trace.Add(MakeFunction("f2", "appA", "own1", {1})).ok());
  ASSERT_TRUE(trace.Add(MakeFunction("f3", "appB", "own2", {1})).ok());
  const auto by_app = trace.GroupByApp();
  EXPECT_EQ(by_app.at("appA").size(), 2u);
  EXPECT_EQ(by_app.at("appB").size(), 1u);
  const auto by_owner = trace.GroupByOwner();
  EXPECT_EQ(by_owner.at("own1").size(), 2u);
  EXPECT_EQ(trace.CountApps(), 2u);
  EXPECT_EQ(trace.CountOwners(), 2u);
}

TEST(TraceTest, SliceClampsAndViews) {
  Trace trace(5);
  ASSERT_TRUE(trace.Add(MakeFunction("f", "a", "o", {1, 2, 3, 4, 5})).ok());
  const auto mid = trace.Slice(0, 1, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], 2u);
  EXPECT_EQ(mid[1], 3u);
  EXPECT_EQ(trace.Slice(0, -10, 99).size(), 5u);
  EXPECT_EQ(trace.Slice(0, 4, 2).size(), 0u);
}

}  // namespace
}  // namespace spes
