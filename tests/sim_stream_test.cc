// SimStream unit tests: incremental stepping semantics, observer hooks
// and early stop, checkpoint/restore (including the serialized byte
// form and its failure modes), and lockstep multi-policy lanes. The
// bitwise streaming-vs-batch equivalence on the golden fleet lives in
// golden_metrics_test.cc.

#include "sim/stream.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "policies/fixed_keepalive.h"
#include "policies/oracle.h"
#include "sim/engine.h"
#include "sim/observers.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows) {
  Trace trace(static_cast<int>(rows[0].size()));
  int k = 0;
  for (auto& row : rows) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k++);
    f.meta.app = "a";
    f.meta.owner = "o";
    f.counts = std::move(row);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

SimOptions Window(int train, int end = 0) {
  SimOptions options;
  options.train_minutes = train;
  options.end_minute = end;
  return options;
}

TEST(SimStreamTest, StepAdvancesCursorAndStopsAtEnd) {
  Trace trace = MakeTrace({{1, 0, 1, 0, 1, 0}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1)).ValueOrDie();
  EXPECT_EQ(stream.cursor(), 1);
  EXPECT_EQ(stream.start_minute(), 1);
  EXPECT_EQ(stream.end_minute(), 6);
  EXPECT_FALSE(stream.done());

  EXPECT_TRUE(stream.Step().ok());
  EXPECT_EQ(stream.cursor(), 2);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(stream.Step().ok());
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(stream.minutes_decoded(), 5);

  const Status past_end = stream.Step();
  EXPECT_EQ(past_end.code(), StatusCode::kOutOfRange);
  EXPECT_NE(past_end.message().find("end_minute (=6)"), std::string::npos);
}

TEST(SimStreamTest, RunUntilClampsAndIsIdempotent) {
  Trace trace = MakeTrace({{1, 0, 1, 0, 1, 0, 1, 0}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  EXPECT_TRUE(stream.RunUntil(3).ok());
  EXPECT_EQ(stream.cursor(), 3);
  // At or before the cursor: a no-op, not an error.
  EXPECT_TRUE(stream.RunUntil(2).ok());
  EXPECT_EQ(stream.cursor(), 3);
  // Past the end: clamps.
  EXPECT_TRUE(stream.RunUntil(1000).ok());
  EXPECT_EQ(stream.cursor(), 8);
  EXPECT_TRUE(stream.done());
}

TEST(SimStreamTest, CreateRejectsNullAndDuplicateLanes) {
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy policy(2);

  const auto null_single = SimStream::Create(trace, nullptr, Window(0));
  EXPECT_EQ(null_single.status().code(), StatusCode::kInvalidArgument);

  const auto null_lane = SimStream::Create(
      trace, std::vector<Policy*>{&policy, nullptr}, Window(0));
  EXPECT_NE(null_lane.status().message().find("lane 1"), std::string::npos);

  const auto duplicate = SimStream::Create(
      trace, std::vector<Policy*>{&policy, &policy}, Window(0));
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(duplicate.status().message().find("distinct"), std::string::npos);

  const auto empty =
      SimStream::Create(trace, std::vector<Policy*>{}, Window(0));
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimStreamTest, FinishOnMultiLaneStreamIsAnError) {
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy a(2), b(3);
  SimStream stream =
      SimStream::Create(trace, {&a, &b}, Window(0)).ValueOrDie();
  const auto outcome = stream.Finish();
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(outcome.status().message().find("FinishAll"), std::string::npos);
}

TEST(SimStreamTest, FinishConsumesTheStream) {
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  EXPECT_TRUE(stream.Finish().ok());
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(stream.Finish().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stream.Step().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stream.Checkpoint().status().code(), StatusCode::kOutOfRange);
}

TEST(SimStreamTest, ObserverSeesEveryMinuteInOrder) {
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1)).ValueOrDie();

  std::vector<int> minutes;
  std::vector<uint64_t> cumulative_invocations;
  CallbackObserver observer([&](const MinuteView& view) {
    minutes.push_back(view.minute);
    cumulative_invocations.push_back(view.totals.invocations);
    EXPECT_EQ(view.lane, 0u);
    EXPECT_EQ(view.policy->name(), "Fixed-2min");
    return true;
  });
  stream.AddObserver(&observer);
  EXPECT_TRUE(stream.RunToEnd().ok());

  EXPECT_EQ(minutes, (std::vector<int>{1, 2, 3, 4, 5}));
  // Arrivals after training: t=1 (1), t=3 (2), t=5 (1), cumulatively.
  EXPECT_EQ(cumulative_invocations,
            (std::vector<uint64_t>{1, 1, 3, 3, 4}));
}

TEST(SimStreamTest, StreamStartAndEndHooksFire) {
  Trace trace = MakeTrace({{1, 0, 1, 0}, {0, 1, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1, 3)).ValueOrDie();

  struct Recorder : SimObserver {
    StreamInfo info;
    int starts = 0;
    int ends = 0;
    uint64_t final_invocations = 0;
    void OnStreamStart(const StreamInfo& i) override {
      info = i;
      ++starts;
    }
    void OnStreamEnd(size_t lane, const SimulationOutcome& out) override {
      EXPECT_EQ(lane, 0u);
      final_invocations = out.metrics.total_invocations;
      ++ends;
    }
  } recorder;
  stream.AddObserver(&recorder);
  EXPECT_TRUE(stream.Finish().ok());

  EXPECT_EQ(recorder.starts, 1);
  EXPECT_EQ(recorder.ends, 1);
  EXPECT_EQ(recorder.info.train_minutes, 1);
  EXPECT_EQ(recorder.info.start_minute, 1);
  EXPECT_EQ(recorder.info.end_minute, 3);
  EXPECT_EQ(recorder.info.num_lanes, 1u);
  EXPECT_EQ(recorder.info.num_functions, 2u);
  EXPECT_EQ(recorder.final_invocations, 2u);  // t=1 (f1), t=2 (f0)
}

TEST(SimStreamTest, ZeroStepStreamStillPairsStartAndEndHooks) {
  // train == horizon: a valid empty window. Observers must still get
  // their OnStreamStart sizing hook before OnStreamEnd.
  Trace trace = MakeTrace({{1, 1, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(3)).ValueOrDie();
  TimeSeriesObserver capture(1);
  int ends = 0;
  struct EndCounter : SimObserver {
    int* ends;
    explicit EndCounter(int* e) : ends(e) {}
    void OnStreamEnd(size_t, const SimulationOutcome&) override {
      ++*ends;
    }
  } end_counter(&ends);
  stream.AddObserver(&capture);
  stream.AddObserver(&end_counter);
  const SimulationOutcome outcome = stream.Finish().ValueOrDie();
  EXPECT_TRUE(outcome.memory_series.empty());
  // The capture is sized (one empty lane), not left unallocated.
  ASSERT_EQ(capture.series().size(), 1u);
  EXPECT_TRUE(capture.series()[0].empty());
  EXPECT_EQ(ends, 1);
}

TEST(SimStreamTest, ObserverEarlyStopHaltsAfterTheCurrentMinute) {
  Trace trace = MakeTrace({{1, 1, 1, 1, 1, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  CallbackObserver stop_at_minute_2(
      [](const MinuteView& view) { return view.minute < 2; });
  stream.AddObserver(&stop_at_minute_2);
  // The unreached target is signalled, distinguishably from exhaustion.
  EXPECT_EQ(stream.RunToEnd().code(), StatusCode::kCancelled);
  EXPECT_TRUE(stream.stopped_early());
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(stream.cursor(), 3);  // minute 2 completed, then halted

  const SimulationOutcome outcome = stream.Finish().ValueOrDie();
  EXPECT_EQ(outcome.memory_series.size(), 3u);
  EXPECT_EQ(outcome.metrics.total_invocations, 3u);
}

TEST(SimStreamTest, EarlyStopSignalsCancelledFromStepAndRunUntilAlike) {
  // Regression test: RunUntil/RunToEnd used to return OK after an
  // observer stop while Step() returned OutOfRange. Both now report
  // Cancelled, and a reached target stays a no-op OK.
  Trace trace = MakeTrace({{1, 1, 1, 1, 1, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  CallbackObserver stop_at_minute_1(
      [](const MinuteView& view) { return view.minute < 1; });
  stream.AddObserver(&stop_at_minute_1);
  EXPECT_EQ(stream.RunToEnd().code(), StatusCode::kCancelled);
  EXPECT_EQ(stream.Step().code(), StatusCode::kCancelled);
  EXPECT_EQ(stream.RunUntil(stream.end_minute()).code(),
            StatusCode::kCancelled);
  // A target at or before the cursor is still a successful no-op.
  EXPECT_TRUE(stream.RunUntil(stream.cursor()).ok());
  // Exhaustion (not an early stop) still reads OutOfRange.
  SimulationOutcome ignored = stream.Finish().ValueOrDie();
  (void)ignored;
  EXPECT_EQ(stream.Step().code(), StatusCode::kOutOfRange);
}

TEST(SimStreamTest, RequestStopHaltsTheStream) {
  Trace trace = MakeTrace({{1, 1, 1, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  EXPECT_TRUE(stream.Step().ok());
  stream.RequestStop();
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(stream.Step().code(), StatusCode::kCancelled);
  const SimulationOutcome outcome = stream.Finish().ValueOrDie();
  EXPECT_EQ(outcome.memory_series.size(), 1u);
}

TEST(SimStreamTest, SnapshotMetricsTracksThePartialWindow) {
  Trace trace = MakeTrace({{1, 1, 1, 1, 1, 1}});
  FixedKeepAlivePolicy policy(10);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  EXPECT_TRUE(stream.RunUntil(2).ok());
  const FleetMetrics snapshot = stream.SnapshotMetrics(0);
  EXPECT_EQ(snapshot.total_invocations, 2u);
  EXPECT_EQ(snapshot.total_cold_starts, 1u);  // only the t=0 arrival
  // The stream keeps running after a snapshot.
  EXPECT_TRUE(stream.RunToEnd().ok());
  EXPECT_EQ(stream.SnapshotMetrics(0).total_invocations, 6u);
}

TEST(SimStreamTest, LockstepLanesMatchIndividualRunsAndDecodeOnce) {
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1, 1, 0},
                           {0, 1, 1, 0, 0, 1, 0, 1},
                           {1, 0, 0, 0, 1, 0, 0, 0}});
  const SimOptions options = Window(2);

  FixedKeepAlivePolicy solo_fixed(2);
  OraclePolicy solo_oracle;
  const SimulationOutcome batch_fixed =
      Simulate(trace, &solo_fixed, options).ValueOrDie();
  const SimulationOutcome batch_oracle =
      Simulate(trace, &solo_oracle, options).ValueOrDie();

  FixedKeepAlivePolicy lane_fixed(2);
  OraclePolicy lane_oracle;
  SimStream stream =
      SimStream::Create(trace, {&lane_fixed, &lane_oracle}, options)
          .ValueOrDie();
  EXPECT_EQ(stream.num_lanes(), 2u);
  const std::vector<SimulationOutcome> outcomes =
      stream.FinishAll().ValueOrDie();

  // One shared decode per minute, not one per lane.
  EXPECT_EQ(stream.minutes_decoded(), 6);

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].memory_series, batch_fixed.memory_series);
  EXPECT_EQ(outcomes[1].memory_series, batch_oracle.memory_series);
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(outcomes[0].accounts[f].cold_starts,
              batch_fixed.accounts[f].cold_starts);
    EXPECT_EQ(outcomes[1].accounts[f].cold_starts,
              batch_oracle.accounts[f].cold_starts);
  }
}

TEST(SimStreamTest, LockstepObserverSeesEveryLane) {
  Trace trace = MakeTrace({{1, 0, 1, 0}});
  FixedKeepAlivePolicy a(1), b(3);
  SimStream stream =
      SimStream::Create(trace, {&a, &b}, Window(1)).ValueOrDie();
  std::vector<std::pair<int, size_t>> seen;  // (minute, lane)
  CallbackObserver observer([&](const MinuteView& view) {
    seen.emplace_back(view.minute, view.lane);
    return true;
  });
  stream.AddObserver(&observer);
  EXPECT_TRUE(stream.FinishAll().ok());
  EXPECT_EQ(seen, (std::vector<std::pair<int, size_t>>{
                      {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}}));
}

TEST(SimStreamTest, CheckpointRequiresCheckpointablePolicies) {
  // An anonymous policy without checkpoint support.
  class OpaquePolicy : public Policy {
   public:
    std::string name() const override { return "Opaque"; }
    void Train(const Trace&, int) override {}
    void OnMinute(int, const std::vector<Invocation>&, MemSet*) override {}
  };
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy fixed(2);
  OpaquePolicy opaque;
  SimStream stream =
      SimStream::Create(trace, {&fixed, &opaque}, Window(0)).ValueOrDie();
  const auto checkpoint = stream.Checkpoint();
  EXPECT_EQ(checkpoint.status().code(), StatusCode::kNotImplemented);
  EXPECT_NE(checkpoint.status().message().find("Opaque"), std::string::npos);
  EXPECT_NE(checkpoint.status().message().find("lane 1"), std::string::npos);
}

TEST(SimStreamTest, CheckpointRestoreResumesExactly) {
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1, 1, 0},
                           {0, 1, 1, 0, 0, 1, 0, 1}});
  const SimOptions options = Window(1);

  FixedKeepAlivePolicy reference_policy(2);
  const SimulationOutcome reference =
      Simulate(trace, &reference_policy, options).ValueOrDie();

  FixedKeepAlivePolicy original(2);
  SimStream first =
      SimStream::Create(trace, &original, options).ValueOrDie();
  EXPECT_TRUE(first.RunUntil(4).ok());
  const SimCheckpoint checkpoint = first.Checkpoint().ValueOrDie();
  EXPECT_EQ(checkpoint.cursor, 4);

  FixedKeepAlivePolicy fresh(2);
  SimStream second = SimStream::Create(trace, &fresh, options).ValueOrDie();
  EXPECT_TRUE(second.Restore(checkpoint).ok());
  EXPECT_EQ(second.cursor(), 4);
  const SimulationOutcome resumed = second.Finish().ValueOrDie();

  EXPECT_EQ(resumed.memory_series, reference.memory_series);
  for (size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(resumed.accounts[f].invocations,
              reference.accounts[f].invocations);
    EXPECT_EQ(resumed.accounts[f].cold_starts,
              reference.accounts[f].cold_starts);
    EXPECT_EQ(resumed.accounts[f].loaded_minutes,
              reference.accounts[f].loaded_minutes);
    EXPECT_EQ(resumed.accounts[f].wasted_minutes,
              reference.accounts[f].wasted_minutes);
  }
}

TEST(SimStreamTest, SerializedCheckpointRoundTrips) {
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  EXPECT_TRUE(stream.RunUntil(3).ok());
  const SimCheckpoint checkpoint = stream.Checkpoint().ValueOrDie();
  const std::string bytes = SerializeCheckpoint(checkpoint);

  const SimCheckpoint parsed = ParseCheckpoint(bytes).ValueOrDie();
  EXPECT_EQ(parsed.cursor, checkpoint.cursor);
  EXPECT_EQ(parsed.train_minutes, checkpoint.train_minutes);
  EXPECT_EQ(parsed.end_minute, checkpoint.end_minute);
  EXPECT_EQ(parsed.num_functions, checkpoint.num_functions);
  ASSERT_EQ(parsed.lanes.size(), 1u);
  EXPECT_EQ(parsed.lanes[0].policy_name, "Fixed-2min");
  EXPECT_EQ(parsed.lanes[0].memory_series,
            checkpoint.lanes[0].memory_series);
  EXPECT_EQ(parsed.lanes[0].loaded, checkpoint.lanes[0].loaded);
  EXPECT_EQ(parsed.lanes[0].policy_state, checkpoint.lanes[0].policy_state);

  FixedKeepAlivePolicy fresh(2);
  SimStream resumed =
      SimStream::Create(trace, &fresh, Window(0)).ValueOrDie();
  EXPECT_TRUE(resumed.Restore(parsed).ok());
  EXPECT_EQ(resumed.cursor(), 3);
  EXPECT_TRUE(resumed.Finish().ok());
}

TEST(SimStreamTest, ParseCheckpointRejectsCorruptBytes) {
  EXPECT_EQ(ParseCheckpoint("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCheckpoint("definitely not a checkpoint").status().code(),
            StatusCode::kInvalidArgument);

  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(0)).ValueOrDie();
  EXPECT_TRUE(stream.Step().ok());
  std::string bytes = SerializeCheckpoint(stream.Checkpoint().ValueOrDie());
  // Truncation is detected, never UB.
  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_EQ(ParseCheckpoint(truncated).status().code(),
            StatusCode::kInvalidArgument);
  // Trailing garbage is rejected too.
  EXPECT_EQ(ParseCheckpoint(bytes + "x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimStreamTest, RestoreValidatesShapeAndLineup) {
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(1)).ValueOrDie();
  EXPECT_TRUE(stream.RunUntil(3).ok());
  const SimCheckpoint checkpoint = stream.Checkpoint().ValueOrDie();

  {
    // Different window.
    FixedKeepAlivePolicy p(2);
    SimStream other = SimStream::Create(trace, &p, Window(2)).ValueOrDie();
    const Status status = other.Restore(checkpoint);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("train_minutes (=1)"),
              std::string::npos);
  }
  {
    // Different policy line-up.
    OraclePolicy oracle;
    SimStream other =
        SimStream::Create(trace, &oracle, Window(1)).ValueOrDie();
    const Status status = other.Restore(checkpoint);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("Fixed-2min"), std::string::npos);
  }
  {
    // Different fleet size.
    Trace small = MakeTrace({{1, 1, 0, 2, 0, 1}, {0, 0, 1, 0, 1, 0}});
    FixedKeepAlivePolicy p(2);
    SimStream other = SimStream::Create(small, &p, Window(1)).ValueOrDie();
    const Status status = other.Restore(checkpoint);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("num_functions"), std::string::npos);
  }
  {
    // Mismatching policy parameters: caught by the lane name check (the
    // fixed keep-alive's name embeds its window).
    FixedKeepAlivePolicy p(5);
    SimStream other = SimStream::Create(trace, &p, Window(1)).ValueOrDie();
    const Status status = other.Restore(checkpoint);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("Fixed-2min"), std::string::npos);
    EXPECT_NE(status.message().find("Fixed-5min"), std::string::npos);
  }
}

TEST(SimStreamTest, PolicyRestoreStateRejectsMismatchedFleetSize) {
  // A blob saved from a different fleet must be rejected, not indexed
  // out of bounds by the next OnMinute.
  FixedKeepAlivePolicy saved(2), target(2);
  Trace small = MakeTrace({{1, 0, 1}});
  Trace large = MakeTrace({{1, 0, 1}, {0, 1, 0}});
  saved.Train(small, 0);
  target.Train(large, 0);
  const Status status =
      target.RestoreState(saved.SaveState().ValueOrDie());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("(=1)"), std::string::npos);
  EXPECT_NE(status.message().find("(=2)"), std::string::npos);
}

TEST(SimStreamTest, PolicyRestoreStateRejectsMismatchedParameters) {
  // Drive RestoreState directly: the blob pins the keep-alive window it
  // was saved with.
  FixedKeepAlivePolicy saved(2), target(5);
  Trace trace = MakeTrace({{1, 0, 1}});
  saved.Train(trace, 0);
  target.Train(trace, 0);
  const std::string blob = saved.SaveState().ValueOrDie();
  const Status status = target.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("(=2)"), std::string::npos);
  EXPECT_NE(status.message().find("(=5)"), std::string::npos);
}

TEST(SimStreamTest, TimeSeriesObserverCapturesStridedSamples) {
  Trace trace = MakeTrace({{1, 1, 1, 1, 1, 1, 1, 1}});
  FixedKeepAlivePolicy policy(10);
  SimStream stream =
      SimStream::Create(trace, &policy, Window(2)).ValueOrDie();
  TimeSeriesObserver capture(3);
  stream.AddObserver(&capture);
  EXPECT_TRUE(stream.Finish().ok());
  ASSERT_EQ(capture.series().size(), 1u);
  const std::vector<MinuteSample>& samples = capture.series()[0];
  ASSERT_EQ(samples.size(), 2u);  // minutes 2 and 5
  EXPECT_EQ(samples[0].minute, 2);
  EXPECT_EQ(samples[1].minute, 5);
  EXPECT_EQ(samples[1].invocations, 4u);
  EXPECT_EQ(samples[0].loaded_instances, 1u);
}

}  // namespace
}  // namespace spes
