// Tests for the little-endian checkpoint codec, with emphasis on the
// belt-and-braces bounds/overflow behaviour the checkpoint fuzzer leans
// on: hostile length fields must yield InvalidArgument, never a wrapped
// cursor, a huge allocation, or undefined behaviour.

#include "common/binary_io.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "sim/stream.h"

namespace spes {
namespace {

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutBool(true);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutI64(std::numeric_limits<int64_t>::min());
  w.PutDouble(-0.125);
  w.PutBytes("payload");

  const std::string blob = w.data();
  BinaryReader r(blob);
  EXPECT_EQ(r.U8().ValueOrDie(), 0xab);
  EXPECT_TRUE(r.Bool().ValueOrDie());
  EXPECT_EQ(r.U32().ValueOrDie(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().ValueOrDie(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I32().ValueOrDie(), -42);
  EXPECT_EQ(r.I64().ValueOrDie(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r.Double().ValueOrDie(), -0.125);
  EXPECT_EQ(r.Bytes().ValueOrDie(), "payload");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, DoubleRoundTripIsBitwise) {
  // NaN payload bits and signed zero must survive exactly.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  BinaryWriter w;
  w.PutDouble(nan);
  w.PutDouble(-0.0);
  BinaryReader r(w.data());
  const double nan_back = r.Double().ValueOrDie();
  EXPECT_NE(nan_back, nan_back);  // still a NaN
  const double zero_back = r.Double().ValueOrDie();
  EXPECT_EQ(zero_back, 0.0);
  EXPECT_TRUE(std::signbit(zero_back));
}

TEST(BinaryIoTest, TruncatedPrimitiveIsInvalidArgument) {
  const std::string three_bytes("\x01\x02\x03", 3);
  BinaryReader r(three_bytes);
  const auto v = r.U32();
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(v.status().message().find("truncated"), std::string::npos);
}

TEST(BinaryIoTest, MaxU64LengthFieldCannotWrapTheCursor) {
  // A Bytes() length of UINT64_MAX: adding it to the cursor would wrap
  // to a small value if the check were done in wrapped arithmetic.
  BinaryWriter w;
  w.PutU64(std::numeric_limits<uint64_t>::max());
  w.PutU8(0x7f);  // one actual payload byte
  BinaryReader r(w.data());
  const auto bytes = r.Bytes();
  EXPECT_EQ(bytes.status().code(), StatusCode::kInvalidArgument);
  // The reader did not advance past the length field, so the payload
  // byte is still readable: the cursor never wrapped.
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_EQ(r.U8().ValueOrDie(), 0x7f);
}

TEST(BinaryIoTest, NearMaxLengthFieldIsRejectedToo) {
  // SIZE_MAX - small: still astronomically larger than the buffer; the
  // comparison must happen in u64 space, not after size_t narrowing.
  BinaryWriter w;
  w.PutU64(std::numeric_limits<uint64_t>::max() - 7);
  BinaryReader r(w.data());
  EXPECT_EQ(r.Bytes().status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryIoTest, LengthBoundsElementCountAgainstRemainingBytes) {
  BinaryWriter w;
  w.PutU64(1000);  // announce 1000 elements...
  w.PutU32(0);     // ...but provide 4 bytes
  BinaryReader r(w.data());
  const auto count = r.Length(/*min_element_bytes=*/40);
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(count.status().message().find("element count"),
            std::string::npos);
}

TEST(BinaryIoTest, LengthOverflowProofForHugeCounts) {
  // count * min_element_bytes would overflow u64; the division phrasing
  // must still reject it.
  BinaryWriter w;
  w.PutU64(std::numeric_limits<uint64_t>::max() / 2);
  BinaryReader r(w.data());
  EXPECT_EQ(r.Length(40).status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryIoTest, LengthAcceptsExactFit) {
  BinaryWriter w;
  w.PutU64(3);
  w.PutU32(1);
  w.PutU32(2);
  w.PutU32(3);
  BinaryReader r(w.data());
  EXPECT_EQ(r.Length(4).ValueOrDie(), 3u);
}

TEST(BinaryIoTest, LengthRejectsZeroMinElementBytes) {
  BinaryWriter w;
  w.PutU64(1);
  BinaryReader r(w.data());
  // A zero element size would disable the allocation bound entirely;
  // that is a caller bug, reported as Internal.
  EXPECT_EQ(r.Length(0).status().code(), StatusCode::kInternal);
}

TEST(BinaryIoTest, EmptyBufferReportsPositionInErrors) {
  // NB: BinaryReader borrows its buffer, so it must be a named lvalue —
  // BinaryReader(std::string("...")) is a deleted overload by design.
  const std::string empty;
  BinaryReader r(empty);
  const auto v = r.U64();
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(v.status().message().find("offset 0"), std::string::npos);
  EXPECT_TRUE(r.AtEnd());
}

// A hostile checkpoint header: valid magic + version, then a lane count
// of UINT64_MAX. ParseCheckpoint must reject via the Length() bound
// instead of attempting a ~10^18-entry reserve.
TEST(BinaryIoTest, HostileCheckpointLaneCountIsRejected) {
  BinaryWriter w;
  w.PutBytes("SPESCKPT");
  w.PutU32(1);                      // version
  w.PutI32(0);                      // cursor
  w.PutI32(0);                      // train_minutes
  w.PutI32(0);                      // end_minute
  w.PutBool(true);                  // pin_executing_functions
  w.PutU64(0);                      // num_functions
  w.PutBool(false);                 // stopped
  w.PutU64(std::numeric_limits<uint64_t>::max());  // lane count
  const auto parsed = ParseCheckpoint(w.data());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("element count"),
            std::string::npos);
}

}  // namespace
}  // namespace spes
