#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "policies/fixed_keepalive.h"
#include "policies/oracle.h"

namespace spes {
namespace {

Trace MakeTrace(std::vector<std::vector<uint32_t>> rows) {
  Trace trace(static_cast<int>(rows[0].size()));
  int k = 0;
  for (auto& row : rows) {
    FunctionTrace f;
    f.meta.name = "f" + std::to_string(k++);
    f.meta.app = "a";
    f.meta.owner = "o";
    f.counts = std::move(row);
    EXPECT_TRUE(trace.Add(std::move(f)).ok());
  }
  return trace;
}

/// Policy that never keeps anything loaded: every arrival is cold.
class EvictAllPolicy : public Policy {
 public:
  std::string name() const override { return "EvictAll"; }
  void Train(const Trace& trace, int) override { n_ = trace.num_functions(); }
  void OnMinute(int, const std::vector<Invocation>&, MemSet* mem) override {
    for (size_t f = 0; f < n_; ++f) mem->Remove(f);
  }

 private:
  size_t n_ = 0;
};

/// Policy that keeps everything loaded forever.
class KeepAllPolicy : public Policy {
 public:
  std::string name() const override { return "KeepAll"; }
  void Train(const Trace& trace, int) override { n_ = trace.num_functions(); }
  void OnMinute(int, const std::vector<Invocation>&, MemSet* mem) override {
    for (size_t f = 0; f < n_; ++f) mem->Add(f);
  }

 private:
  size_t n_ = 0;
};

TEST(EngineTest, RejectsNullPolicy) {
  Trace trace = MakeTrace({{1, 0, 1}});
  EXPECT_FALSE(Simulate(trace, nullptr, SimOptions{0, 0, true, {}}).ok());
}

TEST(EngineTest, RejectsBadWindow) {
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy policy(10);
  SimOptions options;
  options.train_minutes = 99;
  EXPECT_FALSE(Simulate(trace, &policy, options).ok());
}

TEST(EngineTest, WindowErrorsNameTheBadField) {
  Trace trace = MakeTrace({{1, 0, 1}});
  FixedKeepAlivePolicy policy(10);

  // Every window error carries the rejected value(s), not just the field
  // name, in the uniform `field (=value)` form.
  SimOptions negative_train;
  negative_train.train_minutes = -3;
  const auto train_result = Simulate(trace, &policy, negative_train);
  ASSERT_FALSE(train_result.ok());
  EXPECT_EQ(train_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(train_result.status().message().find("train_minutes (=-3)"),
            std::string::npos);

  SimOptions end_before_train;
  end_before_train.train_minutes = 2;
  end_before_train.end_minute = 1;
  const auto end_result = Simulate(trace, &policy, end_before_train);
  ASSERT_FALSE(end_result.ok());
  EXPECT_EQ(end_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(end_result.status().message().find("end_minute (=1)"),
            std::string::npos);
  EXPECT_NE(end_result.status().message().find("train_minutes (=2)"),
            std::string::npos);

  SimOptions negative_end;
  negative_end.train_minutes = 0;
  negative_end.end_minute = -7;
  const auto negative_end_result = Simulate(trace, &policy, negative_end);
  ASSERT_FALSE(negative_end_result.ok());
  EXPECT_NE(negative_end_result.status().message().find("end_minute (=-7)"),
            std::string::npos);

  SimOptions beyond_horizon;
  beyond_horizon.train_minutes = 99;
  const auto horizon_result = Simulate(trace, &policy, beyond_horizon);
  ASSERT_FALSE(horizon_result.ok());
  EXPECT_NE(horizon_result.status().message().find("train_minutes (=99)"),
            std::string::npos);
  EXPECT_NE(horizon_result.status().message().find("trace horizon (=3"),
            std::string::npos);
}

TEST(EngineTest, EvictAllMakesEveryIsolatedArrivalCold) {
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1}});
  EvictAllPolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  EXPECT_EQ(acc.invocations, 5u);     // 1+1+2+1
  EXPECT_EQ(acc.invoked_minutes, 4u);
  // The t=1 arrival is warm: the t=0 execution pins the instance through
  // its minute, so back-to-back arrivals share it even under eviction.
  EXPECT_EQ(acc.cold_starts, 3u);  // t=0, t=3, t=5
  EXPECT_EQ(acc.ColdStartRate(), 3.0 / 5.0);
}

TEST(EngineTest, ExecutionPinsInstanceForItsMinute) {
  // Even though EvictAll removes everything, the engine pins executing
  // functions, so arrival minutes count as loaded (and not wasted).
  Trace trace = MakeTrace({{1, 0, 1, 0}});
  EvictAllPolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  EXPECT_EQ(acc.loaded_minutes, 2u);
  EXPECT_EQ(acc.wasted_minutes, 0u);
}

TEST(EngineTest, KeepAllWarmAfterFirstMinute) {
  Trace trace = MakeTrace({{0, 1, 0, 1, 1, 0}});
  KeepAllPolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  // First arrival at t=1: memory was empty until the t=0 policy step ran,
  // which loaded everything; so no cold start at all.
  EXPECT_EQ(acc.cold_starts, 0u);
  // Loaded all 6 minutes; 3 of them had no arrival.
  EXPECT_EQ(acc.loaded_minutes, 6u);
  EXPECT_EQ(acc.wasted_minutes, 3u);
}

TEST(EngineTest, AccountingConservation) {
  // invoked_minutes + wasted_minutes == loaded_minutes for KeepAll.
  Trace trace = MakeTrace({{1, 0, 1, 1, 0, 0, 1, 0}, {0, 0, 1, 0, 0, 1, 0, 0}});
  KeepAllPolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  for (const FunctionAccount& acc : outcome.ValueOrDie().accounts) {
    EXPECT_EQ(acc.invoked_minutes + acc.wasted_minutes, acc.loaded_minutes);
  }
}

TEST(EngineTest, MemorySeriesLengthMatchesWindow) {
  Trace trace = MakeTrace({{1, 0, 1, 0, 1, 0, 1, 0}});
  FixedKeepAlivePolicy policy(2);
  SimOptions options;
  options.train_minutes = 2;
  options.end_minute = 7;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().memory_series.size(), 5u);
}

TEST(EngineTest, TrainingWindowIsExcludedFromAccounting) {
  Trace trace = MakeTrace({{1, 1, 1, 1, 0, 0, 0, 0}});
  FixedKeepAlivePolicy policy(10);
  SimOptions options;
  options.train_minutes = 4;  // all arrivals are in training
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].invocations, 0u);
  EXPECT_EQ(outcome.ValueOrDie().metrics.total_invocations, 0u);
}

TEST(EngineTest, OracleHasNoColdStartsAfterFirstMinute) {
  Trace trace = MakeTrace({{0, 1, 0, 1, 0, 1, 1, 0, 0, 1},
                           {1, 0, 0, 0, 1, 0, 0, 0, 1, 0}});
  OraclePolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  // Arrivals at t=0 are unavoidably cold (no earlier step existed).
  uint64_t cold = 0;
  for (const auto& acc : outcome.ValueOrDie().accounts) {
    cold += acc.cold_starts;
  }
  EXPECT_EQ(cold, 1u);  // only function 1 fires at t=0
}

TEST(EngineTest, OracleWasteBoundedByOnePrewarmMinutePerArrivalRun) {
  // A minute-granular scheduler must be resident by the END of minute t-1
  // to serve minute t warm, so even the oracle pays one idle loaded minute
  // ahead of each isolated arrival run — and never more.
  Trace trace = MakeTrace({{0, 1, 0, 1, 0, 1, 1, 0, 0, 1}});
  OraclePolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  // Arrival runs start at t=1, 3, 5, 9: four pre-warm minutes.
  EXPECT_EQ(acc.wasted_minutes, 4u);
  EXPECT_LE(acc.wasted_minutes, acc.invoked_minutes);
}

TEST(EngineTest, TrainMinutesEqualToHorizonYieldsEmptyWindow) {
  // A window of length zero is valid: everything is training, nothing is
  // simulated.
  Trace trace = MakeTrace({{1, 1, 1, 1}});
  FixedKeepAlivePolicy policy(10);
  SimOptions options;
  options.train_minutes = 4;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.ValueOrDie().memory_series.empty());
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].invocations, 0u);
  EXPECT_EQ(outcome.ValueOrDie().metrics.total_invocations, 0u);
  EXPECT_EQ(outcome.ValueOrDie().metrics.average_memory, 0.0);
}

TEST(EngineTest, EndMinuteBeyondHorizonIsClampedToIt) {
  Trace trace = MakeTrace({{1, 0, 1, 0, 1, 0}});
  FixedKeepAlivePolicy policy(2);
  SimOptions clamped;
  clamped.train_minutes = 1;
  clamped.end_minute = 1000;  // far past the 6-minute horizon
  const auto outcome = Simulate(trace, &policy, clamped);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().memory_series.size(), 5u);

  // The clamped run is indistinguishable from an explicit full-horizon run.
  SimOptions full = clamped;
  full.end_minute = 0;
  FixedKeepAlivePolicy policy2(2);
  const auto full_outcome = Simulate(trace, &policy2, full);
  ASSERT_TRUE(full_outcome.ok());
  EXPECT_EQ(outcome.ValueOrDie().memory_series,
            full_outcome.ValueOrDie().memory_series);
  EXPECT_EQ(outcome.ValueOrDie().accounts[0].cold_starts,
            full_outcome.ValueOrDie().accounts[0].cold_starts);
}

TEST(EngineTest, UnpinnedExecutionLetsThePolicyEvictArrivals) {
  // Without pinning, EvictAll empties memory every minute, so even the
  // back-to-back t=1 arrival is cold and no minute counts as loaded.
  Trace trace = MakeTrace({{1, 1, 0, 2, 0, 1}});
  EvictAllPolicy policy;
  SimOptions options;
  options.train_minutes = 0;
  options.pin_executing_functions = false;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FunctionAccount& acc = outcome.ValueOrDie().accounts[0];
  EXPECT_EQ(acc.invocations, 5u);
  EXPECT_EQ(acc.cold_starts, 4u);  // t=0, 1, 3, 5
  EXPECT_EQ(acc.loaded_minutes, 0u);
  EXPECT_EQ(acc.wasted_minutes, 0u);
}

TEST(EngineTest, EmptyTraceSimulatesToZeroedMetrics) {
  Trace trace(8);  // a horizon with no functions at all
  FixedKeepAlivePolicy policy(10);
  SimOptions options;
  options.train_minutes = 2;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const SimulationOutcome& out = outcome.ValueOrDie();
  EXPECT_TRUE(out.accounts.empty());
  EXPECT_EQ(out.memory_series.size(), 6u);
  for (uint32_t loaded : out.memory_series) EXPECT_EQ(loaded, 0u);
  const FleetMetrics& m = out.metrics;
  EXPECT_TRUE(m.csr.empty());
  EXPECT_EQ(m.total_invocations, 0u);
  EXPECT_EQ(m.max_memory, 0u);
  EXPECT_EQ(m.emcr, 0.0);
}

TEST(EngineTest, FleetMetricsComputedFromAccounts) {
  Trace trace = MakeTrace({{1, 0, 0, 0, 1, 0}, {0, 1, 1, 1, 0, 1}});
  FixedKeepAlivePolicy policy(2);
  SimOptions options;
  options.train_minutes = 0;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());
  const FleetMetrics& m = outcome.ValueOrDie().metrics;
  EXPECT_EQ(m.policy_name, "Fixed-2min");
  EXPECT_EQ(m.csr.size(), 2u);
  EXPECT_GT(m.total_invocations, 0u);
  EXPECT_GE(m.max_memory, 1u);
}

}  // namespace
}  // namespace spes
