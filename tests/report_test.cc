#include "metrics/report.h"

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace {

FleetMetrics FakeMetrics(const std::string& name, double q3, double mem,
                         uint64_t wmt) {
  FleetMetrics m;
  m.policy_name = name;
  m.q3_csr = q3;
  m.csr = {0.0, q3 / 2, q3, 1.0};
  m.average_memory = mem;
  m.wasted_memory_minutes = wmt;
  m.always_cold_fraction = 0.25;
  m.zero_cold_fraction = 0.25;
  m.emcr = 0.4;
  return m;
}

TEST(RelativeReductionTest, Basics) {
  EXPECT_NEAR(RelativeReduction(0.215, 0.108), 0.4977, 0.001);
  EXPECT_DOUBLE_EQ(RelativeReduction(0.0, 0.5), 0.0);
  EXPECT_LT(RelativeReduction(0.1, 0.2), 0.0);  // regression, not reduction
}

TEST(ComparisonTableTest, NormalizesAgainstReference) {
  std::vector<FleetMetrics> metrics = {FakeMetrics("SPES", 0.1, 100.0, 1000),
                                       FakeMetrics("Other", 0.2, 200.0, 3000)};
  Table table = BuildComparisonTable(metrics, "SPES");
  const std::string out = table.ToString();
  EXPECT_NE(out.find("SPES"), std::string::npos);
  EXPECT_NE(out.find("Other"), std::string::npos);
  // Other's normalized memory = 2.000, WMT = 3.000.
  EXPECT_NE(out.find("2.000"), std::string::npos);
  EXPECT_NE(out.find("3.000"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ComparisonTableTest, MissingReferenceFallsBackToRaw) {
  std::vector<FleetMetrics> metrics = {FakeMetrics("A", 0.1, 50.0, 10)};
  Table table = BuildComparisonTable(metrics, "nope");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(CsrCdfTableTest, OneRowPerPolicy) {
  std::vector<FleetMetrics> metrics = {FakeMetrics("A", 0.1, 1, 1),
                                       FakeMetrics("B", 0.3, 1, 1),
                                       FakeMetrics("C", 0.6, 1, 1)};
  Table table = BuildCsrCdfTable(metrics);
  EXPECT_EQ(table.num_rows(), 3u);
}

TEST(BreakdownByTypeTest, AggregatesRealRun) {
  GeneratorConfig config;
  config.num_functions = 300;
  config.days = 4;
  config.seed = 55;
  const auto generated = GenerateTrace(config);
  ASSERT_TRUE(generated.ok());
  const Trace& trace = generated.ValueOrDie().trace;
  SpesPolicy policy;
  SimOptions options;
  options.train_minutes = 3 * kMinutesPerDay;
  const auto outcome = Simulate(trace, &policy, options);
  ASSERT_TRUE(outcome.ok());

  const auto rows = BreakdownByType(policy, outcome.ValueOrDie().accounts);
  ASSERT_EQ(rows.size(), static_cast<size_t>(kNumFunctionTypes));
  int64_t total_functions = 0;
  uint64_t total_cold = 0;
  for (const auto& row : rows) {
    total_functions += row.num_functions;
    total_cold += row.cold_starts;
    EXPECT_GE(row.mean_csr, 0.0);
    EXPECT_LE(row.mean_csr, 1.0);
  }
  EXPECT_EQ(total_functions, 300);
  EXPECT_EQ(total_cold, outcome.ValueOrDie().metrics.total_cold_starts);

  Table table = BuildTypeBreakdownTable(rows);
  EXPECT_GT(table.num_rows(), 0u);
}

}  // namespace
}  // namespace spes
