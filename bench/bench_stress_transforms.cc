// Stress-transform sweep: the trade-off experiment of Fig. 13 re-run on
// data-driven workload variants. Every row below is a plain ScenarioSpec
// whose TraceSpec carries a transform chain (trace/transform.h) — doubled
// load, a flash-crowd burst in the simulation window, a mid-window concept
// drift storm, a 50% thinned fleet — so the whole stressed-figure sweep is
// pure data through the trace-less SuiteRunner overload: each distinct
// (source, chain) realizes once, simulations fan out, and the tables are
// bitwise identical at any thread count.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "common/table.h"
#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"
#include "trace/transform.h"

namespace {

using namespace spes;

struct Variant {
  std::string label;
  std::string chain;
};

// The burst and drift land inside the simulated window (the last two days
// of the horizon), where they actually stress the online policy.
std::vector<Variant> MakeVariants(int train_minutes) {
  return {
      {"baseline", ""},
      {"load 2x", "load_scale{factor=2.0}"},
      {"burst storm",
       "load_scale{factor=2.0} | inject_burst{at=" +
           std::to_string(train_minutes + 240) +
           ",width=30,amplitude=60,fraction=0.2,seed=13}"},
      {"drift storm", "inject_drift{at=" +
                          std::to_string(train_minutes + 480) +
                          ",fraction=0.5,seed=13}"},
      {"thinned 50%", "thin{keep_prob=0.5,seed=13}"},
  };
}

std::vector<ScenarioSpec> MakeSweep(const GeneratorConfig& config,
                                    const SimOptions& options) {
  std::vector<ScenarioSpec> specs;
  // (a) SPES across every workload variant.
  const std::vector<Variant> variants = MakeVariants(options.train_minutes);
  for (const Variant& variant : variants) {
    ScenarioSpec spec;
    spec.label = "spes / " + variant.label;
    spec.trace = TraceSpec::FromGenerator(config);
    spec.trace.transforms = ParseTransformChain(variant.chain).ValueOrDie();
    spec.policy = {"spes", {}};
    spec.options = options;
    specs.push_back(std::move(spec));
  }
  // (b) Fig. 13's theta_prewarm sweep, repeated under the burst storm —
  // all six specs share one realized stressed trace via the batch cache.
  const Variant& burst = variants[2];
  for (int theta : {1, 2, 3, 5, 10}) {
    ScenarioSpec spec;
    spec.label = "prewarm=" + std::to_string(theta) + " / " + burst.label;
    spec.trace = TraceSpec::FromGenerator(config);
    spec.trace.transforms = ParseTransformChain(burst.chain).ValueOrDie();
    spec.policy = {"spes", {{"theta_prewarm", theta}}};
    spec.options = options;
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct SweepRun {
  std::vector<JobResult> results;
  double wall_seconds = 0.0;
};

SweepRun RunSweep(const std::vector<ScenarioSpec>& specs, int num_threads) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = num_threads;
  SuiteRunner runner(runner_options);
  const auto start = std::chrono::steady_clock::now();
  SweepRun run;
  run.results = runner.Run(specs);
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const JobResult& result : run.results) result.status.CheckOK();
  return run;
}

bool SameTables(const SweepRun& a, const SweepRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].outcome.memory_series !=
            b.results[i].outcome.memory_series ||
        a.results[i].outcome.metrics.total_cold_starts !=
            b.results[i].outcome.metrics.total_cold_starts) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_stress_transforms",
                  "Fig. 13-style sweep under transformed (stressed) "
                  "workloads",
                  config);
  }
  const SimOptions options = bench::DefaultSimOptions(config);
  const std::vector<ScenarioSpec> specs = MakeSweep(config, options);

  SuiteRunner probe({bench::DefaultBenchThreads(), nullptr});
  const int parallel_threads = probe.EffectiveThreads(specs.size());

  const SweepRun serial = RunSweep(specs, 1);
  const SweepRun parallel = RunSweep(specs, parallel_threads);
  if (!bench::MachineReadable(format)) {
    std::printf("sweep: %zu specs | serial %.2fs | %d threads %.2fs "
                "(speedup %.2fx) | tables identical: %s\n\n",
                specs.size(), serial.wall_seconds, parallel_threads,
                parallel.wall_seconds,
                serial.wall_seconds / parallel.wall_seconds,
                SameTables(serial, parallel) ? "yes" : "NO — BUG");
  }

  Table table({"scenario", "invocations", "cold starts", "Q3-CSR",
               "avg memory", "WMT"});
  for (const JobResult& result : parallel.results) {
    const FleetMetrics& m = result.outcome.metrics;
    table.AddRow({result.label, std::to_string(m.total_invocations),
                  std::to_string(m.total_cold_starts),
                  FormatDouble(m.q3_csr, 4), FormatDouble(m.average_memory, 1),
                  std::to_string(m.wasted_memory_minutes)});
  }
  bench::EmitTable("stressed-workload sweep (transform chains)", table,
                   format);

  if (!bench::MachineReadable(format)) {
    std::printf(
        "\nexpected shape: doubled load and the burst raise memory and cold\n"
        "starts; the drift storm degrades SPES's trained categories mid-\n"
        "window; thinning shrinks the workload. The theta_prewarm rows show\n"
        "Fig. 13's resource/latency trade-off persisting under stress.\n");
  }
  return 0;
}
