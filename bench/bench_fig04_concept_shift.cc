// Fig. 4: concept shifts — three functions whose invocation behaviour
// changes distinctly over the trace. The harness selects the three
// strongest half-vs-half rate changes and prints their binned series.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "trace/summary.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig04_concept_shift",
                "Fig. 4 — concept shifts in function invocations", config);
  const GeneratedTrace fleet = bench::MakeFleet(config);

  const std::vector<size_t> examples =
      FindConceptShiftExamples(fleet.trace, 3);
  if (examples.empty()) {
    std::printf("no shifting function found (fleet too small?)\n");
    return 1;
  }
  const int kBins = 28;  // two bins per day at the default horizon
  for (size_t i = 0; i < examples.size(); ++i) {
    const size_t f = examples[i];
    const auto& function = fleet.trace.function(f);
    std::printf("function %zu (%s, trigger=%s, ground truth=%s, shift@min %d)\n",
                i + 1, function.meta.name.c_str(),
                TriggerTypeToString(function.meta.trigger),
                PatternKindToString(fleet.truth[f].kind),
                fleet.truth[f].shift_minute);
    const std::vector<uint64_t> bins = BinSeries(function.counts, kBins);
    uint64_t peak = 1;
    for (uint64_t b : bins) peak = std::max(peak, b);
    for (int b = 0; b < kBins; ++b) {
      std::printf("  t=%5d  %8llu |%s\n", b * fleet.trace.num_minutes() / kBins,
                  static_cast<unsigned long long>(bins[static_cast<size_t>(b)]),
                  AsciiBar(static_cast<double>(bins[static_cast<size_t>(b)]) /
                               static_cast<double>(peak),
                           40)
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("expected shape (paper): visible regime changes within each"
              "\nfunction's series (rate or pattern switches mid-trace).\n");
  return 0;
}
