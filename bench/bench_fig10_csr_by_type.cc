// Fig. 10 (RQ1): average cold-start rate per SPES function type.
// Paper: "unknown" contributes most to cold starts (~0.75), "pulsed" also
// high (~0.45); the deterministic types are near zero.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace spes;
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_fig10_csr_by_type",
                  "Fig. 10 — average cold-start rate of each type", config);
  }
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  const ScenarioOutcome result =
      RunScenario(fleet.trace, bench::MakeScenario({"spes", {}}, options))
          .ValueOrDie();
  const auto& policy = dynamic_cast<const SpesPolicy&>(*result.policy);
  const auto rows = BreakdownByType(policy, result.outcome.accounts);

  Table table({"type", "functions", "mean CSR", "bar"});
  for (const TypeBreakdownRow& row : rows) {
    if (row.num_functions == 0) continue;
    table.AddRow({FunctionTypeToString(row.type),
                  std::to_string(row.num_functions),
                  FormatDouble(row.mean_csr, 4),
                  AsciiBar(row.mean_csr, 40)});
  }
  bench::EmitTable("Fig. 10 — mean cold-start rate by SPES type", table,
                   format);
  if (!bench::MachineReadable(format)) {
    std::printf("expected shape (paper): unknown >> pulsed/possible > the"
                "\ndeterministic types; always-warm/regular/dense near zero.\n");
  }
  return 0;
}
