// RQ2-2: scheduling overhead — wall-clock seconds each policy spends
// deciding provision per simulated minute. Paper: the fixed keep-alive is
// fastest (0.024 s/min on their workstation at 83k functions); SPES adds
// 0.44 s/min, ~6.8% below FaasCache; histogram policies are the slowest.
// Absolute values depend on fleet size and hardware; compare ordering.
//
// The suite goes through SuiteRunner but defaults to ONE worker thread:
// the overhead clock is wall time around Policy::OnMinute, and concurrent
// sibling policies contending for cores would inflate it non-uniformly.
// Set SPES_BENCH_THREADS>1 only to trade timing fidelity for speed.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace spes;
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_rq2_overhead",
                  "RQ2 — provisioning overhead per simulated minute", config);
  }
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);
  // Serial by default: this bench measures time, so jobs must not contend.
  const int threads = static_cast<int>(GetEnvInt("SPES_BENCH_THREADS", 1));
  const bench::SuiteResult suite =
      bench::RunPolicySuite(fleet.trace, options, {"spes", {}}, threads);

  Table table({"policy", "total overhead (s)", "overhead (s/sim-minute)",
               "complexity per minute"});
  const char* complexity[] = {
      "O(n) rule lookups",          // SPES
      "O(n) + histogram updates",   // Defuse
      "O(n) histogram windows",     // HF
      "O(apps) histogram windows",  // HA
      "O(resident) timer scan",            // Fixed
      "O(resident) GDSF scan on pressure"  // FaasCache
  };
  for (size_t i = 0; i < suite.outcomes.size(); ++i) {
    const FleetMetrics& m = suite.outcomes[i].metrics;
    table.AddRow({m.policy_name, FormatDouble(m.overhead_seconds, 3),
                  FormatDouble(m.overhead_seconds_per_minute, 6),
                  complexity[i]});
  }
  bench::EmitTable("provisioning overhead per policy", table, format);
  if (!bench::MachineReadable(format)) {
    std::printf("expected shape (paper): fixed keep-alive cheapest; SPES's"
                "\nrule-based overhead is inconsequential relative to typical"
                "\nserverless platform latencies.\n");
  }
  return 0;
}
