// Fig. 13 (RQ3): the resource/latency trade-off under (a) theta_prewarm in
// {1, 2, 3, 5, 10} and (b) the theta_givenup scaler in {1..5}. The paper
// observes an approximately linear relation between normalized memory and
// Q3-CSR for theta_prewarm (fit y = -0.1845x + 0.3163 on their data), and
// diminishing returns for larger theta_givenup (y = -0.0427x + 0.1686).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

namespace {

struct SweepPoint {
  int parameter;
  double norm_memory;
  double q3_csr;
};

void PrintSweep(const char* title, const std::vector<SweepPoint>& points,
                const char* paper_fit) {
  using namespace spes;
  std::printf("%s\n\n", title);
  Table table({"value", "norm memory", "Q3-CSR"});
  std::vector<double> xs, ys;
  for (const SweepPoint& p : points) {
    table.AddRow({std::to_string(p.parameter), FormatDouble(p.norm_memory, 4),
                  FormatDouble(p.q3_csr, 4)});
    xs.push_back(p.norm_memory);
    ys.push_back(p.q3_csr);
  }
  table.Print();
  const LinearFit fit = FitLine(xs, ys);
  std::printf("\nlinear fit: y = %.4f x + %.4f (R^2 = %.3f)\n", fit.slope,
              fit.intercept, fit.r_squared);
  std::printf("paper fit : %s\n\n", paper_fit);
}

}  // namespace

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig13_tradeoff_sweep",
                "Fig. 13 — trading off resources and latency (RQ3)", config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  // Reference run: the paper's default setting (star marker in Fig. 13).
  SpesConfig base_config;
  SpesPolicy base(base_config);
  const SimulationOutcome base_outcome =
      Simulate(fleet.trace, &base, options).ValueOrDie();
  const double base_memory = base_outcome.metrics.average_memory;
  std::printf("reference (theta_prewarm=2, scaler=1): memory %.1f, "
              "Q3-CSR %.4f\n\n",
              base_memory, base_outcome.metrics.q3_csr);

  // (a) theta_prewarm sweep.
  std::vector<SweepPoint> prewarm_points;
  for (int theta : {1, 2, 3, 5, 10}) {
    SpesConfig c;
    c.theta_prewarm = theta;
    SpesPolicy policy(c);
    const SimulationOutcome outcome =
        Simulate(fleet.trace, &policy, options).ValueOrDie();
    prewarm_points.push_back({theta,
                              outcome.metrics.average_memory / base_memory,
                              outcome.metrics.q3_csr});
  }
  PrintSweep("(a) theta_prewarm in {1, 2, 3, 5, 10}:", prewarm_points,
             "y = -0.1845 x + 0.3163");

  // (b) theta_givenup scaler sweep.
  std::vector<SweepPoint> givenup_points;
  for (int scaler : {1, 2, 3, 4, 5}) {
    SpesConfig c;
    c.givenup_scaler = scaler;
    SpesPolicy policy(c);
    const SimulationOutcome outcome =
        Simulate(fleet.trace, &policy, options).ValueOrDie();
    givenup_points.push_back({scaler,
                              outcome.metrics.average_memory / base_memory,
                              outcome.metrics.q3_csr});
  }
  PrintSweep("(b) theta_givenup scaler in {1..5}:", givenup_points,
             "y = -0.0427 x + 0.1686");

  std::printf("expected shape (paper): memory and Q3-CSR roughly linear in"
              "\ntheta_prewarm; growing theta_givenup buys much less cold-"
              "\nstart reduction per unit of memory (idle functions should"
              "\nbe evicted promptly).\n");
  return 0;
}
