// Fig. 13 (RQ3): the resource/latency trade-off under (a) theta_prewarm in
// {1, 2, 3, 5, 10} and (b) the theta_givenup scaler in {1..5}. The paper
// observes an approximately linear relation between normalized memory and
// Q3-CSR for theta_prewarm (fit y = -0.1845x + 0.3163 on their data), and
// diminishing returns for larger theta_givenup (y = -0.0427x + 0.1686).
//
// The (policy config) grid is embarrassingly parallel and purely
// declarative: a vector<ScenarioSpec> — one registry-built "spes" spec per
// grid point. It runs three ways and must produce identical tables:
//   serial    — SuiteRunner, 1 worker thread, one trace walk per policy;
//   parallel  — SuiteRunner, N worker threads, one trace walk per policy;
//   lockstep  — SuiteRunner::RunLockstep: ONE SimStream walks the trace
//               once, all 11 policies advancing as lanes over a shared
//               per-minute arrival decode (sim/stream.h).
// Results are collected by slot index, so neither thread count nor the
// execution strategy can reorder or perturb them.
//
// `--format=csv|json` emits the sweep tables as machine-readable
// artifacts (bench_common.h) instead of pretty-printing them.

#include <chrono>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "common/stats.h"
#include "common/table.h"
#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"

namespace {

using namespace spes;

struct SweepPoint {
  int parameter;
  double norm_memory;
  double q3_csr;
};

Table SweepTable(const std::vector<SweepPoint>& points) {
  Table table({"value", "norm memory", "Q3-CSR"});
  for (const SweepPoint& p : points) {
    table.AddRow({std::to_string(p.parameter), FormatDouble(p.norm_memory, 4),
                  FormatDouble(p.q3_csr, 4)});
  }
  return table;
}

void PrintFit(const std::vector<SweepPoint>& points, const char* paper_fit) {
  std::vector<double> xs, ys;
  for (const SweepPoint& p : points) {
    xs.push_back(p.norm_memory);
    ys.push_back(p.q3_csr);
  }
  const LinearFit fit = FitLine(xs, ys);
  std::printf("linear fit: y = %.4f x + %.4f (R^2 = %.3f)\n", fit.slope,
              fit.intercept, fit.r_squared);
  std::printf("paper fit : %s\n\n", paper_fit);
}

// The full grid: slot 0 is the reference run (paper defaults, the star
// marker in Fig. 13), slots 1-5 the theta_prewarm sweep, 6-10 the
// theta_givenup sweep.
constexpr int kPrewarmValues[] = {1, 2, 3, 5, 10};
constexpr int kGivenupScalers[] = {1, 2, 3, 4, 5};

std::vector<ScenarioSpec> MakeGrid(const SimOptions& options) {
  std::vector<ScenarioSpec> specs;
  specs.push_back(bench::MakeScenario({"spes", {}}, options, "reference"));
  for (int theta : kPrewarmValues) {
    specs.push_back(
        bench::MakeScenario({"spes", {{"theta_prewarm", theta}}}, options,
                            "prewarm=" + std::to_string(theta)));
  }
  for (int scaler : kGivenupScalers) {
    specs.push_back(
        bench::MakeScenario({"spes", {{"givenup_scaler", scaler}}}, options,
                            "givenup=" + std::to_string(scaler)));
  }
  return specs;
}

struct GridRun {
  std::vector<FleetMetrics> metrics;  // one per grid slot, in slot order
  double wall_seconds = 0.0;
};

enum class Strategy { kPooled, kLockstep };

GridRun RunGrid(const Trace& trace, const SimOptions& options,
                int num_threads, Strategy strategy) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = num_threads;
  SuiteRunner runner(runner_options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<JobResult> results =
      strategy == Strategy::kLockstep
          ? runner.RunLockstep(trace, MakeGrid(options))
          : runner.Run(trace, MakeGrid(options));
  const auto stop = std::chrono::steady_clock::now();

  GridRun run;
  run.wall_seconds = std::chrono::duration<double>(stop - start).count();
  for (const JobResult& r : results) r.status.CheckOK();
  run.metrics = CollectMetrics(results);
  return run;
}

// The deterministic table inputs: normalized memory and Q3-CSR per slot.
bool SameTable(const GridRun& a, const GridRun& b) {
  if (a.metrics.size() != b.metrics.size()) return false;
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    if (a.metrics[i].average_memory != b.metrics[i].average_memory ||
        a.metrics[i].q3_csr != b.metrics[i].q3_csr) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const bool pretty = !bench::MachineReadable(format);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (pretty) {
    bench::Banner("bench_fig13_tradeoff_sweep",
                  "Fig. 13 — trading off resources and latency (RQ3)",
                  config);
  }
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  SuiteRunner probe({bench::DefaultBenchThreads(), nullptr});
  const int parallel_threads = probe.EffectiveThreads(MakeGrid(options).size());

  const GridRun serial =
      RunGrid(fleet.trace, options, 1, Strategy::kPooled);
  const GridRun parallel =
      RunGrid(fleet.trace, options, parallel_threads, Strategy::kPooled);
  const GridRun lockstep =
      RunGrid(fleet.trace, options, 1, Strategy::kLockstep);

  const bool identical =
      SameTable(serial, parallel) && SameTable(serial, lockstep);
  if (pretty) {
    std::printf(
        "grid: %zu configs | serial %.2fs | %d threads %.2fs (speedup "
        "%.2fx) | lockstep (1 trace walk) %.2fs | tables identical: %s\n\n",
        serial.metrics.size(), serial.wall_seconds, parallel_threads,
        parallel.wall_seconds, serial.wall_seconds / parallel.wall_seconds,
        lockstep.wall_seconds, identical ? "yes" : "NO — BUG");
  }
  if (!identical) {
    std::fprintf(stderr, "BUG: grid strategies disagree\n");
    return 1;
  }

  const double base_memory = lockstep.metrics[0].average_memory;
  if (pretty) {
    std::printf("reference (theta_prewarm=2, scaler=1): memory %.1f, "
                "Q3-CSR %.4f\n\n",
                base_memory, lockstep.metrics[0].q3_csr);
  }

  std::vector<SweepPoint> prewarm_points;
  for (size_t i = 0; i < std::size(kPrewarmValues); ++i) {
    const FleetMetrics& m = lockstep.metrics[1 + i];
    prewarm_points.push_back({kPrewarmValues[i],
                              m.average_memory / base_memory, m.q3_csr});
  }
  bench::EmitTable("(a) theta_prewarm in {1, 2, 3, 5, 10}",
                   SweepTable(prewarm_points), format);
  if (pretty) PrintFit(prewarm_points, "y = -0.1845 x + 0.3163");

  std::vector<SweepPoint> givenup_points;
  for (size_t i = 0; i < std::size(kGivenupScalers); ++i) {
    const FleetMetrics& m =
        lockstep.metrics[1 + std::size(kPrewarmValues) + i];
    givenup_points.push_back({kGivenupScalers[i],
                              m.average_memory / base_memory, m.q3_csr});
  }
  bench::EmitTable("(b) theta_givenup scaler in {1..5}",
                   SweepTable(givenup_points), format);
  if (pretty) {
    PrintFit(givenup_points, "y = -0.0427 x + 0.1686");
    std::printf("expected shape (paper): memory and Q3-CSR roughly linear in"
                "\ntheta_prewarm; growing theta_givenup buys much less cold-"
                "\nstart reduction per unit of memory (idle functions should"
                "\nbe evicted promptly).\n");
  }
  return 0;
}
