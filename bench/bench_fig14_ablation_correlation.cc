// Fig. 14 (RQ4): ablation of the inter-function correlation designs.
//   w/o Corr        — no training-time "correlated" assignment (those
//                     functions fall back to pulsed/possible/unknown);
//                     online correlation for unseen functions kept.
//   w/o Online-Corr — unseen functions treated as unknown; training-time
//                     correlated links kept.
// Paper: removing Corr raises Q3-CSR substantially (4.71% of functions are
// correlated); removing Online-Corr has a slighter effect (1.89% unseen).

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "common/table.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig14_ablation_correlation",
                "Fig. 14 — impact of inter-function correlation (RQ4)",
                config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  // The ablation sweep as data: the full policy and one spec per disabled
  // design, fanned out through the suite runner.
  std::vector<ScenarioSpec> variants;
  variants.push_back(bench::MakeScenario({"spes", {}}, options,
                                         "SPES (full)"));
  variants.push_back(bench::MakeScenario(
      {"spes", {{"enable_correlated", false}}}, options, "w/o Corr"));
  variants.push_back(bench::MakeScenario(
      {"spes", {{"enable_online_corr", false}}}, options, "w/o Online-Corr"));

  SuiteRunner runner({bench::DefaultBenchThreads(), nullptr});
  const std::vector<JobResult> results = runner.Run(fleet.trace, variants);
  for (const JobResult& r : results) r.status.CheckOK();

  Table table({"variant", "Q3-CSR", "total colds", "norm memory",
               "norm WMT", "correlated fns"});
  const double base_memory = results[0].outcome.metrics.average_memory;
  const double base_wmt =
      static_cast<double>(results[0].outcome.metrics.wasted_memory_minutes);
  for (const JobResult& result : results) {
    const FleetMetrics& m = result.outcome.metrics;
    const auto& policy = dynamic_cast<const SpesPolicy&>(*result.policy);
    const auto types = policy.CountByType();
    table.AddRow(
        {result.label, FormatDouble(m.q3_csr, 4),
         std::to_string(m.total_cold_starts),
         FormatDouble(m.average_memory / base_memory, 3),
         FormatDouble(
             base_wmt > 0
                 ? static_cast<double>(m.wasted_memory_minutes) / base_wmt
                 : 0.0,
             3),
         std::to_string(
             types[static_cast<size_t>(FunctionType::kCorrelated)])});
  }
  table.Print();
  std::printf("\nexpected shape (paper): both ablations raise Q3-CSR;"
              "\nremoving the training-time correlation hurts more than"
              "\nremoving the online variant (it touches more functions).\n");
  return 0;
}
