// Fig. 14 (RQ4): ablation of the inter-function correlation designs.
//   w/o Corr        — no training-time "correlated" assignment (those
//                     functions fall back to pulsed/possible/unknown);
//                     online correlation for unseen functions kept.
//   w/o Online-Corr — unseen functions treated as unknown; training-time
//                     correlated links kept.
// Paper: removing Corr raises Q3-CSR substantially (4.71% of functions are
// correlated); removing Online-Corr has a slighter effect (1.89% unseen).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig14_ablation_correlation",
                "Fig. 14 — impact of inter-function correlation (RQ4)",
                config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  struct Variant {
    const char* label;
    SpesConfig config;
  };
  std::vector<Variant> variants(3);
  variants[0].label = "SPES (full)";
  variants[1].label = "w/o Corr";
  variants[1].config.enable_correlated = false;
  variants[2].label = "w/o Online-Corr";
  variants[2].config.enable_online_corr = false;

  Table table({"variant", "Q3-CSR", "total colds", "norm memory",
               "norm WMT", "correlated fns"});
  double base_memory = 0.0, base_wmt = 0.0;
  for (size_t i = 0; i < variants.size(); ++i) {
    SpesPolicy policy(variants[i].config);
    const SimulationOutcome outcome =
        Simulate(fleet.trace, &policy, options).ValueOrDie();
    if (i == 0) {
      base_memory = outcome.metrics.average_memory;
      base_wmt = static_cast<double>(outcome.metrics.wasted_memory_minutes);
    }
    const auto types = policy.CountByType();
    table.AddRow(
        {variants[i].label, FormatDouble(outcome.metrics.q3_csr, 4),
         std::to_string(outcome.metrics.total_cold_starts),
         FormatDouble(outcome.metrics.average_memory / base_memory, 3),
         FormatDouble(base_wmt > 0
                          ? static_cast<double>(
                                outcome.metrics.wasted_memory_minutes) /
                                base_wmt
                          : 0.0,
                      3),
         std::to_string(
             types[static_cast<size_t>(FunctionType::kCorrelated)])});
  }
  table.Print();
  std::printf("\nexpected shape (paper): both ablations raise Q3-CSR;"
              "\nremoving the training-time correlation hurts more than"
              "\nremoving the online variant (it touches more functions).\n");
  return 0;
}
