// Micro-benchmarks (google-benchmark) for SPES's hot paths: WT extraction,
// deterministic categorization, the per-minute provision step and the IAT
// histogram update. These back the RQ2 overhead discussion: every per-
// invocation operation must be O(1)-ish for the unbillable scheduling
// window.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/categorizer.h"
#include "core/policy_registry.h"
#include "core/series_features.h"
#include "policies/iat_histogram.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace {

std::vector<uint32_t> PeriodicCounts(int n, int period) {
  std::vector<uint32_t> counts(static_cast<size_t>(n), 0);
  for (int t = 0; t < n; t += period) counts[static_cast<size_t>(t)] = 1;
  return counts;
}

void BM_ExtractSeriesFeatures(benchmark::State& state) {
  const auto counts =
      PeriodicCounts(static_cast<int>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractSeriesFeatures(counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtractSeriesFeatures)->Arg(1440)->Arg(20160);

void BM_CategorizeDeterministic(benchmark::State& state) {
  const auto counts =
      PeriodicCounts(static_cast<int>(state.range(0)), 31);
  const SpesConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CategorizeDeterministic(counts, config));
  }
}
BENCHMARK(BM_CategorizeDeterministic)->Arg(1440)->Arg(20160);

void BM_IatHistogramRecordAndQuery(benchmark::State& state) {
  IatHistogram hist(240);
  int iat = 1;
  for (auto _ : state) {
    hist.Record(iat);
    iat = iat % 240 + 1;
    benchmark::DoNotOptimize(hist.PercentileMinute(99.0));
  }
}
BENCHMARK(BM_IatHistogramRecordAndQuery);

void BM_SpesProvisionMinute(benchmark::State& state) {
  GeneratorConfig config;
  config.num_functions = static_cast<int>(state.range(0));
  config.days = 3;
  config.seed = 7;
  const GeneratedTrace fleet = GenerateTrace(config).ValueOrDie();
  const std::unique_ptr<Policy> policy =
      PolicyRegistry::Global().Create({"spes", {}}).ValueOrDie();
  const int train = 2 * kMinutesPerDay;
  policy->Train(fleet.trace, train);
  MemSet mem(fleet.trace.num_functions());
  std::vector<Invocation> arrivals;
  int t = train;
  for (auto _ : state) {
    arrivals.clear();
    for (size_t f = 0; f < fleet.trace.num_functions(); ++f) {
      const uint32_t c = fleet.trace.function(f).counts[
          static_cast<size_t>(t)];
      if (c > 0) arrivals.push_back({static_cast<uint32_t>(f), c});
    }
    policy->OnMinute(t, arrivals, &mem);
    t = train + (t + 1 - train) % (fleet.trace.num_minutes() - train);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpesProvisionMinute)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace spes

BENCHMARK_MAIN();
