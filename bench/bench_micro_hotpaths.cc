// Micro-benchmarks (google-benchmark) for SPES's hot paths: WT extraction,
// deterministic categorization, arrival decode, the per-minute provision
// step and the IAT histogram update, plus the end-to-end simulation kernel
// (columnar SimStream vs the kept naive reference loop). These back the
// RQ2 overhead discussion — every per-invocation operation must be
// O(1)-ish for the unbillable scheduling window — and pin the simulator's
// own throughput trajectory (BENCH_micro_hotpaths.json).
//
// Scale knobs: SPES_BENCH_FUNCTIONS overrides the fleet sizes of the
// decode/provision/kernel benches (e.g. SPES_BENCH_FUNCTIONS=1000000 for
// the Azure-scale single-thread run); SPES_BENCH_DAYS (default 3) sets the
// horizon — the last day is simulated, the rest trains.
// SPES_BENCH_RARE_PCT (default 0) forces that percentage of the fleet onto
// the rarely-invoked archetypes: the default mix is calibrated at laptop
// scale where ~a third of the fleet fires every minute, which extrapolated
// to 1M functions would be an unrealistic ~475M invocations/day — the
// Azure-scale runs pair SPES_BENCH_FUNCTIONS=1000000 with
// SPES_BENCH_RARE_PCT=90 to match the real trace's tail-heavy population.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/env.h"
#include "core/categorizer.h"
#include "core/policy_registry.h"
#include "core/series_features.h"
#include "policies/fixed_keepalive.h"
#include "policies/iat_histogram.h"
#include "sim/columnar.h"
#include "sim/engine.h"
#include "sim/reference_kernel.h"
#include "sim/stream.h"
#include "trace/generator.h"
#include "trace/trace_file.h"
#include "trace/trace_source.h"

#include <filesystem>
#include <string>

namespace spes {
namespace {

std::vector<uint32_t> PeriodicCounts(int n, int period) {
  std::vector<uint32_t> counts(static_cast<size_t>(n), 0);
  for (int t = 0; t < n; t += period) counts[static_cast<size_t>(t)] = 1;
  return counts;
}

/// One generated fleet per size, shared across benches (generation at
/// 1M functions is minutes of work; pay it once).
const GeneratedTrace& SharedFleet(int64_t num_functions) {
  static std::map<int64_t, std::unique_ptr<GeneratedTrace>> cache;
  std::unique_ptr<GeneratedTrace>& slot = cache[num_functions];
  if (slot == nullptr) {
    GeneratorConfig config;
    config.num_functions = static_cast<int>(num_functions);
    config.days = static_cast<int>(GetEnvInt("SPES_BENCH_DAYS", 3));
    if (config.days < 2) config.days = 2;
    config.seed = 7;
    config.rare_fraction =
        static_cast<double>(GetEnvInt("SPES_BENCH_RARE_PCT", 0)) / 100.0;
    slot = std::make_unique<GeneratedTrace>(
        std::move(GenerateTrace(config).ValueOrDie()));
  }
  return *slot;
}

int TrainMinutes(const Trace& trace) {
  return trace.num_minutes() - kMinutesPerDay;  // simulate the last day
}

/// Fleet sizes: SPES_BENCH_FUNCTIONS when set, else the default ladder.
void FleetArgs(benchmark::internal::Benchmark* bench) {
  const int64_t env = GetEnvInt("SPES_BENCH_FUNCTIONS", 0);
  if (env > 0) {
    bench->Arg(env);
    return;
  }
  bench->Arg(1000)->Arg(4000);
}

void BM_ExtractSeriesFeatures(benchmark::State& state) {
  const auto counts =
      PeriodicCounts(static_cast<int>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractSeriesFeatures(counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtractSeriesFeatures)->Arg(1440)->Arg(20160);

void BM_CategorizeDeterministic(benchmark::State& state) {
  const auto counts =
      PeriodicCounts(static_cast<int>(state.range(0)), 31);
  const SpesConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CategorizeDeterministic(counts, config));
  }
}
BENCHMARK(BM_CategorizeDeterministic)->Arg(1440)->Arg(20160);

void BM_IatHistogramRecordAndQuery(benchmark::State& state) {
  IatHistogram hist(240);
  int iat = 1;
  for (auto _ : state) {
    hist.Record(iat);
    iat = iat % 240 + 1;
    benchmark::DoNotOptimize(hist.PercentileMinute(99.0));
  }
}
BENCHMARK(BM_IatHistogramRecordAndQuery);

// --------------------------------------------------------------------------
// Arrival decode: the naive O(n)-per-minute scan vs the block-transposing
// ArrivalDecoder. Items/sec counts function-minutes, so the two series are
// directly comparable (and comparable with the provision step below).
// --------------------------------------------------------------------------

void BM_ArrivalDecodeNaive(benchmark::State& state) {
  const GeneratedTrace& fleet = SharedFleet(state.range(0));
  const int train = TrainMinutes(fleet.trace);
  const size_t n = fleet.trace.num_functions();
  std::vector<Invocation> arrivals;
  int t = train;
  for (auto _ : state) {
    arrivals.clear();
    for (size_t f = 0; f < n; ++f) {
      const uint32_t c =
          fleet.trace.function(f).counts[static_cast<size_t>(t)];
      if (c > 0) arrivals.push_back({static_cast<uint32_t>(f), c});
    }
    benchmark::DoNotOptimize(arrivals.data());
    t = train + (t + 1 - train) % (fleet.trace.num_minutes() - train);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArrivalDecodeNaive)->Apply(FleetArgs);

void BM_ArrivalDecodeColumnar(benchmark::State& state) {
  const GeneratedTrace& fleet = SharedFleet(state.range(0));
  ArrivalDecoder decoder(fleet.trace);
  // One iteration = one full block of minutes, cycling through distinct
  // blocks so every iteration pays (and amortizes) a real block transpose.
  // Items/sec stays in function-minutes, comparable with the naive scan.
  constexpr int kBlock = ArrivalDecoder::kDefaultBlockMinutes;
  const int num_blocks = fleet.trace.num_minutes() / kBlock;
  int block = 0;
  for (auto _ : state) {
    const int start = block * kBlock;
    uint64_t arrivals = 0;
    for (int t = start; t < start + kBlock; ++t) {
      arrivals += decoder.Decode(t).size();
    }
    benchmark::DoNotOptimize(arrivals);
    block = (block + 1) % num_blocks;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * kBlock);
}
BENCHMARK(BM_ArrivalDecodeColumnar)->Apply(FleetArgs);

// --------------------------------------------------------------------------
// Packed-file streaming decode vs the in-memory source. Both go through
// the same ArrivalDecoder block transpose; the streamed variant adds the
// trace_file read + varint/LZ block decode, so the items/sec gap IS the
// out-of-core overhead. check_bench_regression.py gates that gap
// (--max-stream-overhead). Counters record the packed file size and its
// compression ratio vs the dense u32 matrix.
// --------------------------------------------------------------------------

/// Packs the shared fleet once per size; reopened by every iteration set.
const std::string& SharedPackedFleet(int64_t num_functions,
                                     TraceFileStats* stats) {
  static std::map<int64_t, std::pair<std::string, TraceFileStats>> cache;
  std::pair<std::string, TraceFileStats>& slot = cache[num_functions];
  if (slot.first.empty()) {
    slot.first = (std::filesystem::temp_directory_path() /
                  ("spes_bench_" + std::to_string(num_functions) + ".spt"))
                     .string();
    slot.second =
        WriteTraceFile(SharedFleet(num_functions).trace, slot.first)
            .ValueOrDie();
  }
  if (stats != nullptr) *stats = slot.second;
  return slot.first;
}

/// Decodes every minute of one 256-minute block per iteration through
/// `decoder`, cycling blocks; items/sec counts function-minutes, directly
/// comparable between the two sources (and with BM_ArrivalDecodeColumnar).
template <typename MakeDecoder>
void DecodeBlocksLoop(benchmark::State& state, int num_minutes,
                      MakeDecoder make_decoder) {
  ArrivalDecoder decoder = make_decoder();
  constexpr int kBlock = ArrivalDecoder::kDefaultBlockMinutes;
  const int num_blocks = num_minutes / kBlock;
  int block = 0;
  for (auto _ : state) {
    const int start = block * kBlock;
    uint64_t arrivals = 0;
    for (int t = start; t < start + kBlock; ++t) {
      arrivals += decoder.Decode(t).size();
    }
    benchmark::DoNotOptimize(arrivals);
    block = (block + 1) % num_blocks;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * kBlock);
}

void BM_InMemoryDecode(benchmark::State& state) {
  const GeneratedTrace& fleet = SharedFleet(state.range(0));
  InMemoryTraceSource source(fleet.trace);
  DecodeBlocksLoop(state, fleet.trace.num_minutes(),
                   [&source] { return ArrivalDecoder(&source); });
}
BENCHMARK(BM_InMemoryDecode)->Apply(FleetArgs);

void BM_TraceFileStreamDecode(benchmark::State& state) {
  TraceFileStats stats;
  const std::string& path = SharedPackedFleet(state.range(0), &stats);
  std::unique_ptr<TraceFileSource> source =
      OpenTraceFile(path).ValueOrDie();
  DecodeBlocksLoop(state, source->num_minutes(),
                   [&source] { return ArrivalDecoder(source.get()); });
  state.counters["file_bytes"] = static_cast<double>(stats.file_bytes);
  state.counters["compression_ratio"] = stats.CompressionRatio();
}
BENCHMARK(BM_TraceFileStreamDecode)->Apply(FleetArgs);

// --------------------------------------------------------------------------
// SPES provision step. Arrivals are pre-decoded OUTSIDE the timed region —
// the old version re-ran the O(n) decode inside the loop, so at large
// fleets it measured decode, not the policy step.
// --------------------------------------------------------------------------

void BM_SpesProvisionMinute(benchmark::State& state) {
  const GeneratedTrace& fleet = SharedFleet(state.range(0));
  const std::unique_ptr<Policy> policy =
      PolicyRegistry::Global().Create({"spes", {}}).ValueOrDie();
  const int train = TrainMinutes(fleet.trace);
  policy->Train(fleet.trace, train);
  // Pre-decode every simulated minute once, outside the measurement.
  const int sim_minutes = fleet.trace.num_minutes() - train;
  std::vector<std::vector<Invocation>> decoded(
      static_cast<size_t>(sim_minutes));
  {
    ArrivalDecoder decoder(fleet.trace);
    for (int m = 0; m < sim_minutes; ++m) {
      const auto span = decoder.Decode(train + m);
      decoded[static_cast<size_t>(m)].assign(span.begin(), span.end());
    }
  }
  MemSet mem(fleet.trace.num_functions());
  int m = 0;
  for (auto _ : state) {
    policy->OnMinute(train + m, decoded[static_cast<size_t>(m)], &mem);
    m = (m + 1) % sim_minutes;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpesProvisionMinute)->Apply(FleetArgs);

// --------------------------------------------------------------------------
// End-to-end simulation kernel over the last trace day: the columnar
// SimStream vs the kept naive reference loop driving a pre-refactor-style
// policy. Items/sec counts simulated function-minutes; the
// columnar/reference items-per-second ratio is the PR's ≥10x headline
// number, and tools/check_bench_regression.py gates on BM_SimKernelColumnar.
// --------------------------------------------------------------------------

/// Fixed keep-alive exactly as the pre-columnar engine ran it: an O(n)
/// membership scan every minute instead of walking only the loaded ids.
/// Same semantics as FixedKeepAlivePolicy (identical outcomes), kept here
/// so BM_SimKernelReference measures the full pre-refactor cost profile.
class PreRefactorKeepAlive : public Policy {
 public:
  explicit PreRefactorKeepAlive(int keepalive_minutes)
      : keepalive_minutes_(keepalive_minutes) {}
  std::string name() const override {
    return "Fixed-" + std::to_string(keepalive_minutes_) + "min";
  }
  void Train(const Trace& trace, int) override {
    last_arrival_.assign(trace.num_functions(), -1);
  }
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override {
    for (const Invocation& inv : arrivals) last_arrival_[inv.function] = t;
    const size_t n = last_arrival_.size();
    for (size_t f = 0; f < n; ++f) {
      if (!mem->Contains(f)) continue;
      const int last = last_arrival_[f];
      if (last < 0 || t - last >= keepalive_minutes_) mem->Remove(f);
    }
  }

 private:
  int keepalive_minutes_;
  std::vector<int> last_arrival_;
};

void BM_SimKernelColumnar(benchmark::State& state) {
  const GeneratedTrace& fleet = SharedFleet(state.range(0));
  SimOptions options;
  options.train_minutes = TrainMinutes(fleet.trace);
  for (auto _ : state) {
    FixedKeepAlivePolicy policy(10);
    SimStream stream =
        SimStream::Create(fleet.trace, &policy, options).ValueOrDie();
    const SimulationOutcome outcome = stream.Finish().ValueOrDie();
    benchmark::DoNotOptimize(outcome.metrics.total_invocations);
  }
  const int sim_minutes = fleet.trace.num_minutes() - options.train_minutes;
  state.SetItemsProcessed(state.iterations() * state.range(0) * sim_minutes);
}
BENCHMARK(BM_SimKernelColumnar)
    ->Apply(FleetArgs)
    ->Unit(benchmark::kMillisecond);

void BM_SimKernelReference(benchmark::State& state) {
  const GeneratedTrace& fleet = SharedFleet(state.range(0));
  SimOptions options;
  options.train_minutes = TrainMinutes(fleet.trace);
  for (auto _ : state) {
    PreRefactorKeepAlive policy(10);
    const SimulationOutcome outcome =
        SimulateReference(fleet.trace, &policy, options).ValueOrDie();
    benchmark::DoNotOptimize(outcome.metrics.total_invocations);
  }
  const int sim_minutes = fleet.trace.num_minutes() - options.train_minutes;
  state.SetItemsProcessed(state.iterations() * state.range(0) * sim_minutes);
}
BENCHMARK(BM_SimKernelReference)
    ->Apply(FleetArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spes

BENCHMARK_MAIN();
