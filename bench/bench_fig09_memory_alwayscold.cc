// Fig. 9 (RQ1): (a) memory usage normalized to SPES's average and
// (b) the percentage of always-cold functions (CSR == 1.0).
// Paper: SPES uses only ~8% more memory than the fixed keep-alive policy
// and 36-56% less than the other baselines; its always-cold share is
// under 8%, with HA the closest baseline and Defuse/HF the worst.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "metrics/report.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig09_memory_alwayscold",
                "Fig. 9 — normalized memory usage and always-cold share",
                config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);
  const bench::SuiteResult suite = bench::RunPolicySuite(fleet.trace, options);
  const std::vector<FleetMetrics> metrics = bench::SuiteMetrics(suite);

  const double spes_memory = metrics[0].average_memory;
  Table table({"policy", "avg memory", "norm memory (a)", "peak memory",
               "always-cold (b)"});
  for (const FleetMetrics& m : metrics) {
    table.AddRow({m.policy_name, FormatDouble(m.average_memory, 1),
                  FormatDouble(m.average_memory / spes_memory, 3),
                  std::to_string(m.max_memory),
                  FormatPercent(m.always_cold_fraction, 2)});
  }
  table.Print();

  std::printf("\nexpected shape (paper): SPES's memory within ~10%% of the"
              "\nmost frugal policy (Fixed) and well below Defuse/HA;"
              "\nSPES's always-cold share the lowest of the function-"
              "\ngranular policies, HA the closest baseline.\n");
  return 0;
}
