// §III-B2 statistics: co-occurrence rates. Paper: candidate functions
// (sharing an app/user) average COR 0.2312 vs 0.0504 for negative samples
// (~4.6x); same-trigger candidates average 0.2710 vs 0.1307 for
// different-trigger candidates.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/correlation.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_sec3_cooccurrence",
                "Sec. III-B2 — co-occurrence rate (COR) statistics", config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const Trace& trace = fleet.trace;
  Rng rng(config.seed ^ 0xc0ffee);

  std::vector<double> candidate_cors, negative_cors;
  std::vector<double> same_trigger_cors, diff_trigger_cors;

  const auto by_app = trace.GroupByApp();
  const auto by_owner = trace.GroupByOwner();

  for (size_t f = 0; f < trace.num_functions(); ++f) {
    const FunctionTrace& target = trace.function(f);
    if (target.InvokedMinutes() < 5) continue;

    // Candidate functions: share the app or owner.
    std::vector<size_t> candidates;
    auto app_it = by_app.find(target.meta.app);
    if (app_it != by_app.end()) {
      for (size_t c : app_it->second) {
        if (c != f) candidates.push_back(c);
      }
    }
    auto owner_it = by_owner.find(target.meta.owner);
    if (owner_it != by_owner.end()) {
      for (size_t c : owner_it->second) {
        if (c != f && trace.function(c).meta.app != target.meta.app) {
          candidates.push_back(c);
        }
      }
    }
    if (candidates.empty()) continue;

    for (size_t c : candidates) {
      const double cor =
          CoOccurrenceRate(target.counts, trace.function(c).counts);
      candidate_cors.push_back(cor);
      if (trace.function(c).meta.trigger == target.meta.trigger) {
        same_trigger_cors.push_back(cor);
      } else {
        diff_trigger_cors.push_back(cor);
      }
    }
    // Negative samples: functions with no app/owner overlap (paper uses 50
    // per target; a handful suffices at our fleet size).
    for (int k = 0; k < 10; ++k) {
      const size_t c = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(trace.num_functions()) - 1));
      if (c == f || trace.function(c).meta.app == target.meta.app ||
          trace.function(c).meta.owner == target.meta.owner) {
        continue;
      }
      negative_cors.push_back(
          CoOccurrenceRate(target.counts, trace.function(c).counts));
    }
  }

  const double cand = Mean(candidate_cors);
  const double neg = Mean(negative_cors);
  Table table({"population", "samples", "mean COR", "paper"});
  table.AddRow({"candidates (shared app/owner)",
                std::to_string(candidate_cors.size()), FormatDouble(cand, 4),
                "0.2312"});
  table.AddRow({"negative samples", std::to_string(negative_cors.size()),
                FormatDouble(neg, 4), "0.0504"});
  table.AddRow({"same-trigger candidates",
                std::to_string(same_trigger_cors.size()),
                FormatDouble(Mean(same_trigger_cors), 4), "0.2710"});
  table.AddRow({"different-trigger candidates",
                std::to_string(diff_trigger_cors.size()),
                FormatDouble(Mean(diff_trigger_cors), 4), "0.1307"});
  table.Print();
  if (neg > 0.0) {
    std::printf("\ncandidate/negative ratio: %.2fx (paper: ~4.6x)\n",
                cand / neg);
  }
  std::printf("\nexpected shape (paper): candidates co-occur several times"
              "\nmore than negatives; same-trigger candidates the most.\n");
  return 0;
}
