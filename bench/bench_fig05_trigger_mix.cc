// Fig. 5: the proportion of trigger types among functions.
// Paper values: http 41.19%, timer 26.64%, queue 14.40%, orchestration
// 7.76%, others 2.72% (+2.60% combination), event 2.52%, storage 2.19%.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "trace/summary.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig05_trigger_mix",
                "Fig. 5 — proportion of trigger types among functions",
                config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const auto mix = ComputeTriggerMix(fleet.trace);

  // Paper reference values; "combination" (2.60%) is folded into others.
  const double paper[kNumTriggerTypes] = {0.4119, 0.2664, 0.1440, 0.0219,
                                          0.0252, 0.0776, 0.0532};

  Table table({"trigger", "measured", "paper", "bar"});
  for (int k = 0; k < kNumTriggerTypes; ++k) {
    const TriggerType trigger = static_cast<TriggerType>(k);
    table.AddRow({TriggerTypeToString(trigger),
                  FormatPercent(mix[static_cast<size_t>(k)], 2),
                  FormatPercent(paper[k], 2),
                  AsciiBar(mix[static_cast<size_t>(k)], 40)});
  }
  table.Print();
  std::printf("\nexpected shape (paper): http dominates, then timer and"
              "\nqueue; storage/event are small single-digit shares.\n");
  return 0;
}
