// Cluster scaling sweep: node counts x routers under a burst-storm
// workload. Every point is a plain ScenarioSpec whose TraceSpec carries
// the stress chain and whose `cluster` block names the topology and
// router, so the whole sweep is pure data through the trace-less
// SuiteRunner overload — the stressed trace realizes once, cluster jobs
// fan out across threads, and the tables are bitwise identical at any
// thread count.
//
// Per-node capacity is num_functions / nodes (total fleet capacity stays
// constant as the cluster grows), so sharding exposes the cost of
// routing-unaware pre-warming: every node's policy warms its full
// predicted set, and the capacity pressure + LRU eviction trims what the
// router never sends there. A second table replays the 4-node cluster
// under a drain/fail/add timeline to price node-lifecycle re-routing.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "metrics/report.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"
#include "trace/transform.h"

namespace {

using namespace spes;

std::vector<TransformSpec> BurstStorm(int train_minutes) {
  return ParseTransformChain(
             "load_scale{factor=2.0} | inject_burst{at=" +
             std::to_string(train_minutes + 240) +
             ",width=30,amplitude=60,fraction=0.2,seed=13}")
      .ValueOrDie();
}

ScenarioSpec ClusterPoint(const GeneratorConfig& config,
                          const SimOptions& options, int nodes,
                          const std::string& router,
                          const std::string& events = "") {
  ScenarioSpec spec;
  spec.label = std::to_string(nodes) + " / " + router;
  spec.trace = TraceSpec::FromGenerator(config);
  spec.trace.transforms = BurstStorm(options.train_minutes);
  spec.policy = {"spes", {}};
  spec.options = options;
  spec.cluster = ClusterSpec{};
  spec.cluster->nodes = nodes;
  spec.cluster->node_capacity =
      std::max(8, config.num_functions / std::max(1, nodes));
  spec.cluster->router = ParseRouterSpec(router).ValueOrDie();
  spec.cluster->events = ParseNodeEventTimeline(events).ValueOrDie();
  return spec;
}

struct SweepRun {
  std::vector<JobResult> results;
  double wall_seconds = 0.0;
};

SweepRun RunSweep(const std::vector<ScenarioSpec>& specs, int num_threads) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = num_threads;
  SuiteRunner runner(runner_options);
  const auto start = std::chrono::steady_clock::now();
  SweepRun run;
  run.results = runner.Run(specs);
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const JobResult& result : run.results) result.status.CheckOK();
  return run;
}

bool SameTables(const SweepRun& a, const SweepRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].outcome.memory_series !=
            b.results[i].outcome.memory_series ||
        a.results[i].outcome.metrics.total_cold_starts !=
            b.results[i].outcome.metrics.total_cold_starts ||
        a.results[i].cluster->reroutes != b.results[i].cluster->reroutes) {
      return false;
    }
  }
  return true;
}

uint64_t SumPressure(const ClusterOutcome& cluster) {
  uint64_t total = 0;
  for (const NodeOutcome& node : cluster.nodes) {
    total += node.pressure_evictions;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_cluster_scaling",
                  "cluster extension — node counts x routers under a "
                  "burst storm",
                  config);
  }
  const SimOptions options = bench::DefaultSimOptions(config);

  const std::vector<int> node_counts = {1, 2, 4, 8};
  const std::vector<std::string> routers = {"hash", "least_loaded",
                                            "locality{pressure=0.9}"};
  std::vector<ScenarioSpec> specs;
  for (int nodes : node_counts) {
    for (const std::string& router : routers) {
      specs.push_back(ClusterPoint(config, options, nodes, router));
    }
  }
  // Node lifecycle pricing: the 4-node hash cluster loses node 1 early in
  // the simulated window, drains node 2 mid-window, and grows a
  // replacement — every change re-routes a share of the fleet.
  const int t0 = options.train_minutes;
  specs.push_back(ClusterPoint(
      config, options, 4, "hash",
      "fail{at=" + std::to_string(t0 + 300) + ",node=1} | drain{at=" +
          std::to_string(t0 + 900) + ",node=2} | add{at=" +
          std::to_string(t0 + 900) + "}"));
  specs.back().label = "4 / hash + fail,drain,add";

  SuiteRunner probe({bench::DefaultBenchThreads(), nullptr});
  const int parallel_threads = probe.EffectiveThreads(specs.size());

  const SweepRun serial = RunSweep(specs, 1);
  const SweepRun parallel = RunSweep(specs, parallel_threads);
  if (!bench::MachineReadable(format)) {
    std::printf("sweep: %zu cluster jobs | serial %.2fs | %d threads %.2fs "
                "(speedup %.2fx) | tables identical: %s\n\n",
                specs.size(), serial.wall_seconds, parallel_threads,
                parallel.wall_seconds,
                serial.wall_seconds / parallel.wall_seconds,
                SameTables(serial, parallel) ? "yes" : "NO — BUG");
  }

  Table table({"nodes", "router", "cold starts", "Q3-CSR", "avg mem", "WMT",
               "pressure evict", "reroutes", "inv CV", "peak/mean"});
  for (const JobResult& result : parallel.results) {
    const FleetMetrics& m = result.outcome.metrics;
    const ClusterOutcome& cluster = *result.cluster;
    const ClusterImbalance imbalance = ComputeClusterImbalance(cluster);
    const size_t slash = result.label.find(" / ");
    table.AddRow({result.label.substr(0, slash),
                  result.label.substr(slash + 3),
                  std::to_string(m.total_cold_starts),
                  FormatDouble(m.q3_csr, 4), FormatDouble(m.average_memory, 1),
                  std::to_string(m.wasted_memory_minutes),
                  std::to_string(SumPressure(cluster)),
                  std::to_string(cluster.reroutes),
                  FormatDouble(imbalance.invocation_cv, 3),
                  FormatDouble(imbalance.invocation_peak_ratio, 2)});
  }
  bench::EmitTable("cluster scaling: nodes x router under the burst storm",
                   table, format);

  // Per-node breakdown of the lifecycle scenario.
  const JobResult& lifecycle = parallel.results.back();
  bench::EmitTable("per-node breakdown: " + lifecycle.label,
                   BuildClusterNodeTable(*lifecycle.cluster), format);

  if (!bench::MachineReadable(format)) {
    std::printf(
        "\nexpected shape: a single node reproduces the plain engine; more\n"
        "nodes split each policy's arrival view (cold starts rise) while\n"
        "per-node caps squeeze routing-unaware pre-warming (pressure\n"
        "evictions rise with node count). locality spills before the cap\n"
        "bites; hash pays mod-N re-route storms on fail/add events.\n");
  }
  return 0;
}
