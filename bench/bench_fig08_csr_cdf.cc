// Fig. 8 (RQ1): the cumulative distribution of function-wise cold-start
// rates under SPES and all baselines, plus the Q3-CSR headline comparison.
// Paper: SPES's CDF lies left of every baseline; Q3-CSR drops from 0.215
// (Defuse, the best baseline) to 0.108 (-49.77%), and by 64.06%-89.20%
// vs the other baselines; 57.99% of functions see no cold start at all.
//
// `--format=csv|json` emits the two tables as machine-readable artifacts
// (bench_common.h) instead of pretty-printing them.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace spes;
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_fig08_csr_cdf",
                  "Fig. 8 — CDF of function-wise cold-start rate (RQ1)",
                  config);
  }
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);
  const bench::SuiteResult suite = bench::RunPolicySuite(fleet.trace, options);
  const std::vector<FleetMetrics> metrics = bench::SuiteMetrics(suite);

  bench::EmitTable("CSR value at CDF fractions (lower is better)",
                   BuildCsrCdfTable(metrics), format);

  const double spes_q3 = metrics[0].q3_csr;
  Table table({"baseline", "Q3-CSR", "SPES Q3-CSR", "reduction"});
  for (size_t i = 1; i < metrics.size(); ++i) {
    table.AddRow({metrics[i].policy_name, FormatDouble(metrics[i].q3_csr, 4),
                  FormatDouble(spes_q3, 4),
                  FormatPercent(RelativeReduction(metrics[i].q3_csr, spes_q3),
                                2)});
  }
  bench::EmitTable("Q3-CSR (75th percentile) reductions achieved by SPES",
                   table, format);

  if (!bench::MachineReadable(format)) {
    std::printf("expected shape (paper): SPES's CDF dominates; Q3-CSR about"
                "\nhalved vs the best baseline (Defuse: -49.77%%) and reduced"
                "\n64-89%% vs the rest; largest zero-cold share.\n");
  }
  return 0;
}
