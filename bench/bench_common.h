// Shared setup for the figure-reproduction harnesses.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// on the calibrated synthetic fleet. The default scale (functions, days,
// seed) is shared so figures are cross-consistent, and can be overridden
// with SPES_BENCH_FUNCTIONS / SPES_BENCH_DAYS / SPES_BENCH_SEED.

#ifndef SPES_BENCH_BENCH_COMMON_H_
#define SPES_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.h"
#include "common/table.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace bench {

/// \brief How a bench emits its tables: human-diffable ASCII (default),
/// or machine-readable CSV / JSON-lines artifacts via `--format=csv|json`.
enum class OutputFormat { kPretty, kCsv, kJson };

/// \brief Parses `--format=csv|json|pretty` from argv; exits with a usage
/// message on an unknown format or flag so CI fails loudly, not quietly
/// with a half-parsed artifact.
inline OutputFormat BenchFormat(int argc, char** argv) {
  OutputFormat format = OutputFormat::kPretty;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--format=", 9) == 0) {
      const char* value = arg + 9;
      if (std::strcmp(value, "pretty") == 0) {
        format = OutputFormat::kPretty;
      } else if (std::strcmp(value, "csv") == 0) {
        format = OutputFormat::kCsv;
      } else if (std::strcmp(value, "json") == 0) {
        format = OutputFormat::kJson;
      } else {
        std::fprintf(stderr,
                     "unknown --format value '%s' (expected pretty, csv or "
                     "json)\n",
                     value);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s' (only --format=... is "
                           "accepted)\n",
                   arg);
      std::exit(2);
    }
  }
  return format;
}

/// \brief True when the format wants the human chatter (banners, fits,
/// commentary) suppressed so the artifact is cleanly parseable.
inline bool MachineReadable(OutputFormat format) {
  return format != OutputFormat::kPretty;
}

/// \brief Emits one named table in the chosen format: pretty prints the
/// title + ASCII table; csv prints a `# title` comment + CSV; json prints
/// one JSON-lines object `{"table": title, "rows": [...]}` per table.
inline void EmitTable(const std::string& title, const Table& table,
                      OutputFormat format) {
  switch (format) {
    case OutputFormat::kPretty:
      std::printf("%s\n\n", title.c_str());
      table.Print();
      std::printf("\n");
      return;
    case OutputFormat::kCsv:
      std::printf("# %s\n%s\n", title.c_str(), table.ToCsv().c_str());
      return;
    case OutputFormat::kJson:
      std::printf("{\"table\":%s,\"rows\":%s}\n", JsonEscape(title).c_str(),
                  table.ToJson().c_str());
      return;
  }
}

/// \brief Scale knobs resolved from the environment.
inline GeneratorConfig DefaultGeneratorConfig() {
  GeneratorConfig config;
  config.num_functions =
      static_cast<int>(GetEnvInt("SPES_BENCH_FUNCTIONS", 4000));
  config.days = static_cast<int>(GetEnvInt("SPES_BENCH_DAYS", 14));
  config.seed = static_cast<uint64_t>(GetEnvInt("SPES_BENCH_SEED", 20240317));
  return config;
}

/// \brief Paper split: the last two days are simulated, the rest trains.
inline SimOptions DefaultSimOptions(const GeneratorConfig& config) {
  SimOptions options;
  options.train_minutes = (config.days - 2) * kMinutesPerDay;
  return options;
}

/// \brief Generates the shared fleet (aborts on configuration errors).
inline GeneratedTrace MakeFleet(const GeneratorConfig& config) {
  Result<GeneratedTrace> generated = GenerateTrace(config);
  generated.status().CheckOK();
  return std::move(generated).ValueOrDie();
}

/// \brief Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_ref,
                   const GeneratorConfig& config) {
  std::printf("=== %s ===\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("fleet: %d functions, %d days (train %d + simulate 2), seed %llu\n\n",
              config.num_functions, config.days, config.days - 2,
              static_cast<unsigned long long>(config.seed));
}

}  // namespace bench
}  // namespace spes

#endif  // SPES_BENCH_BENCH_COMMON_H_
