// Shared setup for the figure-reproduction harnesses.
//
// Every bench binary regenerates one table/figure of the paper's evaluation
// on the calibrated synthetic fleet. The default scale (functions, days,
// seed) is shared so figures are cross-consistent, and can be overridden
// with SPES_BENCH_FUNCTIONS / SPES_BENCH_DAYS / SPES_BENCH_SEED.

#ifndef SPES_BENCH_BENCH_COMMON_H_
#define SPES_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "common/env.h"
#include "sim/engine.h"
#include "trace/generator.h"

namespace spes {
namespace bench {

/// \brief Scale knobs resolved from the environment.
inline GeneratorConfig DefaultGeneratorConfig() {
  GeneratorConfig config;
  config.num_functions =
      static_cast<int>(GetEnvInt("SPES_BENCH_FUNCTIONS", 4000));
  config.days = static_cast<int>(GetEnvInt("SPES_BENCH_DAYS", 14));
  config.seed = static_cast<uint64_t>(GetEnvInt("SPES_BENCH_SEED", 20240317));
  return config;
}

/// \brief Paper split: the last two days are simulated, the rest trains.
inline SimOptions DefaultSimOptions(const GeneratorConfig& config) {
  SimOptions options;
  options.train_minutes = (config.days - 2) * kMinutesPerDay;
  return options;
}

/// \brief Generates the shared fleet (aborts on configuration errors).
inline GeneratedTrace MakeFleet(const GeneratorConfig& config) {
  Result<GeneratedTrace> generated = GenerateTrace(config);
  generated.status().CheckOK();
  return std::move(generated).ValueOrDie();
}

/// \brief Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_ref,
                   const GeneratorConfig& config) {
  std::printf("=== %s ===\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("fleet: %d functions, %d days (train %d + simulate 2), seed %llu\n\n",
              config.num_functions, config.days, config.days - 2,
              static_cast<unsigned long long>(config.seed));
}

}  // namespace bench
}  // namespace spes

#endif  // SPES_BENCH_BENCH_COMMON_H_
