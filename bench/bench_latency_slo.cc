// User-visible latency / SLO sweep: policy x concurrency limit under a
// burst-storm workload, through the opt-in latency subsystem
// (latency/latency.h). Every cell is a plain ScenarioSpec whose options
// carry a latency block, fanned out through the trace-less SuiteRunner —
// the stressed trace realizes once, cells run across threads, and
// because every request's service time is a pure function of (function
// name, seed, minute, intra-minute index), the p50/p95/p99 tables are
// bitwise identical at any thread count (checked below).
//
// A second table breaks one 4-node cluster cell down per node: routing
// concentrates the burst on a subset of nodes, so per-node tails and
// shed counts spread far wider than the fleet summary suggests.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "cluster/cluster.h"
#include "common/table.h"
#include "latency/latency.h"
#include "metrics/slo.h"
#include "runner/suite_runner.h"
#include "sim/observers.h"
#include "sim/scenario.h"
#include "trace/transform.h"

namespace {

using namespace spes;

std::vector<TransformSpec> BurstStorm(int train_minutes) {
  return ParseTransformChain(
             "load_scale{factor=2.0} | inject_burst{at=" +
             std::to_string(train_minutes + 240) +
             ",width=30,amplitude=60,fraction=0.2,seed=13}")
      .ValueOrDie();
}

/// One sweep cell: `policy` under `latency_block` over the burst storm.
ScenarioSpec LatencyCell(const GeneratorConfig& config,
                         const SimOptions& options,
                         const std::string& policy,
                         const std::string& policy_label,
                         const std::string& latency_block,
                         const std::string& queue_label) {
  ScenarioSpec spec;
  spec.label = policy_label + " | " + queue_label;
  spec.trace = TraceSpec::FromGenerator(config);
  spec.trace.transforms = BurstStorm(options.train_minutes);
  spec.policy = ParsePolicySpec(policy).ValueOrDie();
  spec.options = options;
  spec.options.latency = ParseLatencySpec(latency_block).ValueOrDie();
  return spec;
}

struct SweepRun {
  std::vector<JobResult> results;
  double wall_seconds = 0.0;
};

SweepRun RunSweep(const std::vector<ScenarioSpec>& specs, int num_threads,
                  SimObserver* progress = nullptr) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads = num_threads;
  SuiteRunner runner(runner_options);
  std::vector<ScenarioSpec> jobs = specs;
  if (progress != nullptr) {
    for (ScenarioSpec& job : jobs) job.observers.push_back(progress);
  }
  const auto start = std::chrono::steady_clock::now();
  SweepRun run;
  run.results = runner.Run(jobs);
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const JobResult& result : run.results) result.status.CheckOK();
  return run;
}

/// Bitwise comparison of everything the SLO tables are built from.
bool SameLatency(const SweepRun& a, const SweepRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const auto& la = a.results[i].outcome.latency;
    const auto& lb = b.results[i].outcome.latency;
    if ((la == nullptr) != (lb == nullptr)) return false;
    if (la != nullptr && !(*la == *lb)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_latency_slo",
                  "latency subsystem — policy x concurrency limit under a "
                  "burst storm",
                  config);
  }
  const SimOptions options = bench::DefaultSimOptions(config);

  const std::vector<std::pair<std::string, std::string>> policies = {
      {"spes", "spes"},
      {"fixed_keepalive{minutes=10}", "fixed-10min"},
      {"defuse", "defuse"},
  };
  // Unlimited slots price pure service time; the limited cells add queue
  // wait, abandonment, and shedding once the waiters pile up. The
  // single-slot cell serializes the whole lane, so every fat cold draw
  // (~100x a warm one) backs arrivals up past its 250ms timeout.
  const std::vector<std::pair<std::string, std::string>> queues = {
      {"lognormal", "unlimited"},
      {"lognormal @ queue{capacity=256,concurrency=16,seed=42,"
       "timeout_ms=2000}",
       "c=16"},
      {"lognormal @ queue{capacity=256,concurrency=4,seed=42,"
       "timeout_ms=2000}",
       "c=4"},
      {"lognormal @ queue{capacity=64,concurrency=1,seed=42,"
       "timeout_ms=250}",
       "c=1, t/o 250ms"},
  };
  std::vector<ScenarioSpec> specs;
  for (const auto& [policy, policy_label] : policies) {
    for (const auto& [block, queue_label] : queues) {
      specs.push_back(LatencyCell(config, options, policy, policy_label,
                                  block, queue_label));
    }
  }
  // One cluster cell: the 4-node hash cluster shares the same latency
  // block per node, so node queues see only their routed share — and
  // the tight block concentrates the damage on the burst's nodes.
  specs.push_back(LatencyCell(config, options, "spes", "spes",
                              queues[3].first, "c=1, 4-node hash"));
  specs.back().cluster = ClusterSpec{};
  specs.back().cluster->nodes = 4;

  SuiteRunner probe({bench::DefaultBenchThreads(), nullptr});
  const int parallel_threads = probe.EffectiveThreads(specs.size());

  // Progress heartbeats (rate + ETA) ride the serial sweep only — one job
  // at a time, so the lines never interleave. `enabled` silences them
  // entirely under machine-readable output; the 2s wall throttle keeps
  // fast cells from spamming, and stderr keeps stdout pipeable.
  ProgressObserver progress(6 * 60, stderr, /*min_wall_seconds=*/2.0,
                            /*enabled=*/!bench::MachineReadable(format));
  const SweepRun serial = RunSweep(specs, 1, &progress);
  const SweepRun parallel = RunSweep(specs, parallel_threads);
  if (!bench::MachineReadable(format)) {
    std::printf("sweep: %zu latency cells | serial %.2fs | %d threads %.2fs "
                "(speedup %.2fx) | outcomes identical: %s\n\n",
                specs.size(), serial.wall_seconds, parallel_threads,
                parallel.wall_seconds,
                serial.wall_seconds / parallel.wall_seconds,
                SameLatency(serial, parallel) ? "yes" : "NO — BUG");
  }

  std::vector<LatencySloRow> rows;
  rows.reserve(parallel.results.size());
  for (const JobResult& result : parallel.results) {
    rows.push_back({result.label, result.outcome.latency.get()});
  }
  bench::EmitTable(
      "latency SLO: policy x concurrency limit under the burst storm",
      BuildLatencySloTable(rows), format);

  const JobResult& cluster_cell = parallel.results.back();
  bench::EmitTable("per-node SLO breakdown: " + cluster_cell.label,
                   BuildClusterLatencySloTable(*cluster_cell.cluster),
                   format);

  if (!bench::MachineReadable(format)) {
    std::printf(
        "\nexpected shape: with unlimited slots every policy pays only\n"
        "service time, and the p50/p99 gap prices each policy's cold-start\n"
        "rate (cold draws sit ~100x above warm). Tightening concurrency\n"
        "first stretches the p99 (queue wait), then converts the burst's\n"
        "overflow into timeouts and shed load; per-node queues in the\n"
        "cluster cell concentrate that damage on the burst's nodes.\n");
  }
  return 0;
}
