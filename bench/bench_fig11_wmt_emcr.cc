// Fig. 11 (RQ2): (a) wasted memory time normalized to SPES and (b) the
// effective memory consumption ratio. Paper: SPES cuts WMT by 10.89-63.50%
// vs all baselines (57.06% vs Defuse) and reaches EMCR 46.32%, 5.2-120.9%
// higher than the compared approaches.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace spes;
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_fig11_wmt_emcr",
                  "Fig. 11 — wasted memory time and EMCR (RQ2)", config);
  }
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);
  const bench::SuiteResult suite = bench::RunPolicySuite(fleet.trace, options);
  const std::vector<FleetMetrics> metrics = bench::SuiteMetrics(suite);

  const double spes_wmt =
      static_cast<double>(metrics[0].wasted_memory_minutes);
  Table table({"policy", "WMT (inst-min)", "norm WMT (a)", "EMCR (b)",
               "SPES WMT reduction"});
  for (const FleetMetrics& m : metrics) {
    const double wmt = static_cast<double>(m.wasted_memory_minutes);
    table.AddRow({m.policy_name, FormatDouble(wmt, 0),
                  FormatDouble(spes_wmt > 0 ? wmt / spes_wmt : 0.0, 3),
                  FormatPercent(m.emcr, 2),
                  m.policy_name == "SPES"
                      ? "-"
                      : FormatPercent(RelativeReduction(wmt, spes_wmt), 2)});
  }
  bench::EmitTable("Fig. 11 — wasted memory time and EMCR", table, format);
  if (!bench::MachineReadable(format)) {
    std::printf("expected shape (paper): SPES lowest WMT (every baseline"
                "\n> 1.0 normalized) and highest EMCR.\n");
  }
  return 0;
}
