// Fig. 15 (RQ4): ablation of the concept-shift designs.
//   w/o Forgetting — unknown functions are not re-checked on recent-only
//                    suffixes of the training window;
//   w/o Adjusting  — predictive values are never drift-corrected online
//                    and unknown functions are never late-categorized.
// Paper: forgetting matters more (it categorized 340 unknown functions vs
// adjusting's 174 + 499 predictive-value updates); both help.

#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "common/table.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig15_ablation_adaptivity",
                "Fig. 15 — impact of the adaptive designs (RQ4)", config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  std::vector<ScenarioSpec> variants;
  variants.push_back(bench::MakeScenario({"spes", {}}, options,
                                         "SPES (full)"));
  variants.push_back(bench::MakeScenario(
      {"spes", {{"enable_forgetting", false}}}, options, "w/o Forgetting"));
  variants.push_back(bench::MakeScenario(
      {"spes", {{"enable_adjusting", false}}}, options, "w/o Adjusting"));

  SuiteRunner runner({bench::DefaultBenchThreads(), nullptr});
  const std::vector<JobResult> results = runner.Run(fleet.trace, variants);
  for (const JobResult& r : results) r.status.CheckOK();

  Table table({"variant", "Q3-CSR", "total colds", "norm memory",
               "norm WMT", "recategorized (train)", "recategorized (online)"});
  const double base_memory = results[0].outcome.metrics.average_memory;
  const double base_wmt =
      static_cast<double>(results[0].outcome.metrics.wasted_memory_minutes);
  for (const JobResult& result : results) {
    const FleetMetrics& m = result.outcome.metrics;
    const auto& policy = dynamic_cast<const SpesPolicy&>(*result.policy);
    table.AddRow(
        {result.label, FormatDouble(m.q3_csr, 4),
         std::to_string(m.total_cold_starts),
         FormatDouble(m.average_memory / base_memory, 3),
         FormatDouble(
             base_wmt > 0
                 ? static_cast<double>(m.wasted_memory_minutes) / base_wmt
                 : 0.0,
             3),
         std::to_string(policy.forgetting_recategorized()),
         std::to_string(policy.online_recategorized())});
  }
  table.Print();
  std::printf("\nexpected shape (paper): both adaptive designs reduce the"
              "\nQ3-CSR; forgetting has the larger impact because it"
              "\nre-categorizes more functions during training.\n");
  return 0;
}
