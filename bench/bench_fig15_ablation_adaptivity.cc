// Fig. 15 (RQ4): ablation of the concept-shift designs.
//   w/o Forgetting — unknown functions are not re-checked on recent-only
//                    suffixes of the training window;
//   w/o Adjusting  — predictive values are never drift-corrected online
//                    and unknown functions are never late-categorized.
// Paper: forgetting matters more (it categorized 340 unknown functions vs
// adjusting's 174 + 499 predictive-value updates); both help.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig15_ablation_adaptivity",
                "Fig. 15 — impact of the adaptive designs (RQ4)", config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  struct Variant {
    const char* label;
    SpesConfig config;
  };
  std::vector<Variant> variants(3);
  variants[0].label = "SPES (full)";
  variants[1].label = "w/o Forgetting";
  variants[1].config.enable_forgetting = false;
  variants[2].label = "w/o Adjusting";
  variants[2].config.enable_adjusting = false;

  Table table({"variant", "Q3-CSR", "total colds", "norm memory",
               "norm WMT", "recategorized (train)", "recategorized (online)"});
  double base_memory = 0.0, base_wmt = 0.0;
  for (size_t i = 0; i < variants.size(); ++i) {
    SpesPolicy policy(variants[i].config);
    const SimulationOutcome outcome =
        Simulate(fleet.trace, &policy, options).ValueOrDie();
    if (i == 0) {
      base_memory = outcome.metrics.average_memory;
      base_wmt = static_cast<double>(outcome.metrics.wasted_memory_minutes);
    }
    table.AddRow(
        {variants[i].label, FormatDouble(outcome.metrics.q3_csr, 4),
         std::to_string(outcome.metrics.total_cold_starts),
         FormatDouble(outcome.metrics.average_memory / base_memory, 3),
         FormatDouble(base_wmt > 0
                          ? static_cast<double>(
                                outcome.metrics.wasted_memory_minutes) /
                                base_wmt
                          : 0.0,
                      3),
         std::to_string(policy.forgetting_recategorized()),
         std::to_string(policy.online_recategorized())});
  }
  table.Print();
  std::printf("\nexpected shape (paper): both adaptive designs reduce the"
              "\nQ3-CSR; forgetting has the larger impact because it"
              "\nre-categorizes more functions during training.\n");
  return 0;
}
