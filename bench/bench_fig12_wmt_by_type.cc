// Fig. 12 (RQ2): the ratio of wasted memory time (WMT divided by the
// number of invocations) per SPES function type. Paper: "possible"
// functions generate the most WMT per invocation — SPES deliberately
// predicts them aggressively — while wave-riding types are cheap.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_policies.h"
#include "core/spes_policy.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace spes;
  const bench::OutputFormat format = bench::BenchFormat(argc, argv);
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  if (!bench::MachineReadable(format)) {
    bench::Banner("bench_fig12_wmt_by_type",
                  "Fig. 12 — ratio of WMT of each function type", config);
  }
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const SimOptions options = bench::DefaultSimOptions(config);

  const ScenarioOutcome result =
      RunScenario(fleet.trace, bench::MakeScenario({"spes", {}}, options))
          .ValueOrDie();
  const auto& policy = dynamic_cast<const SpesPolicy&>(*result.policy);
  const auto rows = BreakdownByType(policy, result.outcome.accounts);

  double max_ratio = 0.0;
  for (const TypeBreakdownRow& row : rows) {
    max_ratio = std::max(max_ratio, row.wmt_per_invocation);
  }
  Table table({"type", "functions", "WMT/invocation", "bar"});
  for (const TypeBreakdownRow& row : rows) {
    if (row.num_functions == 0) continue;
    table.AddRow(
        {FunctionTypeToString(row.type), std::to_string(row.num_functions),
         FormatDouble(row.wmt_per_invocation, 3),
         AsciiBar(max_ratio > 0 ? row.wmt_per_invocation / max_ratio : 0.0,
                  40)});
  }
  bench::EmitTable("Fig. 12 — WMT per invocation by SPES type", table,
                   format);
  if (!bench::MachineReadable(format)) {
    std::printf("expected shape (paper): rare-but-predicted types (possible,"
                "\ncorrelated) pay the highest WMT per invocation; always-warm,"
                "\nsuccessive and dense are nearly free.\n");
  }
  return 0;
}
