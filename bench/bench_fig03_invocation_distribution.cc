// Fig. 3: the heavy-tailed distribution of per-function invocation totals.
// The paper's histogram spans 1 to ~10^10 invocations over 14 days with
// most functions in the lowest decades; this harness prints the decade
// histogram of the synthetic fleet so the tail shape can be compared.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "trace/summary.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig03_invocation_distribution",
                "Fig. 3 — distribution of function invocation totals",
                config);
  const GeneratedTrace fleet = bench::MakeFleet(config);
  const InvocationHistogram hist = ComputeInvocationHistogram(fleet.trace);

  Table table({"invocations", "functions", "share", "bar"});
  int64_t max_bucket = 1;
  for (int64_t b : hist.buckets) max_bucket = std::max(max_bucket, b);
  for (size_t k = 0; k < hist.buckets.size(); ++k) {
    char range[64];
    std::snprintf(range, sizeof(range), "[1e%zu, 1e%zu)", k, k + 1);
    const double share =
        static_cast<double>(hist.buckets[k]) /
        static_cast<double>(hist.total_functions);
    table.AddRow({range, std::to_string(hist.buckets[k]),
                  FormatPercent(share, 2),
                  AsciiBar(static_cast<double>(hist.buckets[k]) /
                               static_cast<double>(max_bucket),
                           40)});
  }
  table.Print();
  std::printf("\nnever-invoked functions : %lld\n",
              static_cast<long long>(hist.zero_functions));
  std::printf("total invocations       : %llu\n",
              static_cast<unsigned long long>(hist.total_invocations));
  std::printf("\nexpected shape (paper): highly non-uniform; the low decades"
              "\ndominate while a few functions reach 1e6+ invocations.\n");
  return 0;
}
