// Fig. 6: temporal locality — five infrequently invoked functions whose
// invocations concentrate into a few short windows.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/series_features.h"
#include "trace/summary.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_fig06_temporal_locality",
                "Fig. 6 — temporal locality of infrequent functions",
                config);
  const GeneratedTrace fleet = bench::MakeFleet(config);

  const std::vector<size_t> examples = FindTemporalLocalityExamples(
      fleet.trace, 5, /*min_total=*/20, /*max_total=*/400);
  if (examples.empty()) {
    std::printf("no temporally-local function found\n");
    return 1;
  }
  Table table({"function", "ground truth", "invocations", "active slots",
               "waves", "min AT", "min AN", "active share"});
  for (size_t f : examples) {
    const FunctionTrace& function = fleet.trace.function(f);
    const SeriesFeatures features = ExtractSeriesFeatures(function.counts);
    int64_t min_at = 0, min_an = 0;
    if (!features.ats.empty()) {
      min_at = *std::min_element(features.ats.begin(), features.ats.end());
      min_an = *std::min_element(features.ans.begin(), features.ans.end());
    }
    table.AddRow(
        {function.meta.name.substr(0, 12),
         PatternKindToString(fleet.truth[f].kind),
         std::to_string(features.total_invocations),
         std::to_string(features.active_slots),
         std::to_string(features.ats.size()), std::to_string(min_at),
         std::to_string(min_an),
         FormatPercent(static_cast<double>(features.active_slots) /
                           static_cast<double>(fleet.trace.num_minutes()),
                       3)});
  }
  table.Print();
  std::printf("\nexpected shape (paper): invocations of these functions are"
              "\nconsecutive and concentrated in a handful of short periods;"
              "\nkeeping them loaded briefly after a wave cuts cold starts"
              "\nwith minimal memory overhead.\n");
  return 0;
}
