// §III-B1 statistics: Kolmogorov-Smirnov regularity of invocations by
// trigger. Paper: 68.12% of timer-triggered functions (with > 10 samples)
// are (quasi-)periodic; 45.02% of HTTP-triggered functions follow a
// Poisson arrival process (exponential gaps).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/ks_test.h"
#include "common/table.h"
#include "core/series_features.h"

int main() {
  using namespace spes;
  const GeneratorConfig config = bench::DefaultGeneratorConfig();
  bench::Banner("bench_sec3_trigger_regularity",
                "Sec. III-B1 — KS-test regularity by trigger type", config);
  const GeneratedTrace fleet = bench::MakeFleet(config);

  int64_t timer_total = 0, timer_periodic = 0, timer_skipped = 0;
  int64_t http_total = 0, http_poisson = 0, http_skipped = 0;

  for (size_t f = 0; f < fleet.trace.num_functions(); ++f) {
    const FunctionTrace& function = fleet.trace.function(f);
    const SeriesFeatures features = ExtractSeriesFeatures(function.counts);
    // Gaps between consecutive arrival minutes (WT + 1 per §IV).
    std::vector<int64_t> gaps;
    gaps.reserve(features.wts.size());
    for (int64_t wt : features.wts) gaps.push_back(wt + 1);

    if (function.meta.trigger == TriggerType::kTimer) {
      if (features.total_invocations <= 10 || gaps.size() < 10) {
        ++timer_skipped;
        continue;
      }
      ++timer_total;
      if (KsTestPeriodic(gaps).consistent) ++timer_periodic;
    } else if (function.meta.trigger == TriggerType::kHttp) {
      if (features.total_invocations <= 10 || gaps.size() < 10) {
        ++http_skipped;
        continue;
      }
      ++http_total;
      if (KsTestExponential(gaps).consistent) ++http_poisson;
    }
  }

  Table table({"population", "tested", "consistent", "measured", "paper"});
  table.AddRow({"timer: (quasi-)periodic", std::to_string(timer_total),
                std::to_string(timer_periodic),
                FormatPercent(timer_total == 0
                                  ? 0.0
                                  : static_cast<double>(timer_periodic) /
                                        static_cast<double>(timer_total),
                              2),
                "68.12%"});
  table.AddRow({"http: Poisson arrivals", std::to_string(http_total),
                std::to_string(http_poisson),
                FormatPercent(http_total == 0
                                  ? 0.0
                                  : static_cast<double>(http_poisson) /
                                        static_cast<double>(http_total),
                              2),
                "45.02%"});
  table.Print();
  std::printf("\n(skipped for insufficient samples: %lld timer, %lld http;"
              "\n paper similarly excludes 6.65%% / 36.20%%)\n",
              static_cast<long long>(timer_skipped),
              static_cast<long long>(http_skipped));
  std::printf("\nexpected shape (paper): a majority of timers are periodic;"
              "\nroughly half of HTTP functions look Poisson.\n");
  return 0;
}
