// Helper running SPES plus the five baselines of §V-A1 on a fleet.

#ifndef SPES_BENCH_BENCH_POLICIES_H_
#define SPES_BENCH_BENCH_POLICIES_H_

#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/spes_policy.h"
#include "policies/defuse.h"
#include "policies/faascache.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"

namespace spes {
namespace bench {

/// \brief Outcome of running the full policy suite.
struct SuiteResult {
  /// SPES first, then Defuse, HF, HA, Fixed-10min, FaasCache (the paper's
  /// baseline set); FaasCache's capacity is SPES's peak memory, as in §V-A1.
  std::vector<SimulationOutcome> outcomes;
  /// The trained SPES policy (for per-type breakdowns).
  std::unique_ptr<SpesPolicy> spes;
};

inline SuiteResult RunPolicySuite(const Trace& trace,
                                  const SimOptions& options,
                                  const SpesConfig& spes_config = {}) {
  SuiteResult result;
  result.spes = std::make_unique<SpesPolicy>(spes_config);
  result.outcomes.push_back(
      Simulate(trace, result.spes.get(), options).ValueOrDie());
  const uint64_t spes_peak = result.outcomes[0].metrics.max_memory;

  DefusePolicy defuse;
  result.outcomes.push_back(Simulate(trace, &defuse, options).ValueOrDie());
  HybridHistogramPolicy hf(HybridGranularity::kFunction);
  result.outcomes.push_back(Simulate(trace, &hf, options).ValueOrDie());
  HybridHistogramPolicy ha(HybridGranularity::kApplication);
  result.outcomes.push_back(Simulate(trace, &ha, options).ValueOrDie());
  FixedKeepAlivePolicy fixed(10);
  result.outcomes.push_back(Simulate(trace, &fixed, options).ValueOrDie());
  FaasCachePolicy faascache(spes_peak);
  result.outcomes.push_back(
      Simulate(trace, &faascache, options).ValueOrDie());
  return result;
}

inline std::vector<FleetMetrics> SuiteMetrics(const SuiteResult& suite) {
  std::vector<FleetMetrics> metrics;
  metrics.reserve(suite.outcomes.size());
  for (const SimulationOutcome& outcome : suite.outcomes) {
    metrics.push_back(outcome.metrics);
  }
  return metrics;
}

}  // namespace bench
}  // namespace spes

#endif  // SPES_BENCH_BENCH_POLICIES_H_
