// Helper running SPES plus the five baselines of §V-A1 on a fleet.
//
// The suite fans out through SuiteRunner: SPES and the capacity-independent
// baselines run concurrently, then FaasCache (whose cache capacity is
// SPES's peak memory, as in §V-A1) runs once SPES has finished. Result
// order is fixed regardless of thread count, so every table built from a
// SuiteResult is identical to the serial run's.

#ifndef SPES_BENCH_BENCH_POLICIES_H_
#define SPES_BENCH_BENCH_POLICIES_H_

#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/spes_policy.h"
#include "policies/defuse.h"
#include "policies/faascache.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"
#include "runner/suite_runner.h"

namespace spes {
namespace bench {

/// \brief Worker-thread count resolved from the environment;
/// SPES_BENCH_THREADS <= 0 (the default) means hardware concurrency.
inline int DefaultBenchThreads() {
  return static_cast<int>(GetEnvInt("SPES_BENCH_THREADS", 0));
}

/// \brief Outcome of running the full policy suite.
struct SuiteResult {
  /// SPES first, then Defuse, HF, HA, Fixed-10min, FaasCache (the paper's
  /// baseline set); FaasCache's capacity is SPES's peak memory, as in §V-A1.
  std::vector<SimulationOutcome> outcomes;
  /// The trained SPES policy (for per-type breakdowns).
  std::unique_ptr<SpesPolicy> spes;
};

inline SuiteResult RunPolicySuite(const Trace& trace,
                                  const SimOptions& options,
                                  const SpesConfig& spes_config = {},
                                  int num_threads = 0) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads =
      num_threads > 0 ? num_threads : DefaultBenchThreads();
  SuiteRunner runner(runner_options);

  // Wave 1: SPES and every capacity-independent baseline, concurrently.
  std::vector<SuiteJob> jobs;
  jobs.push_back({"", [spes_config] {
                    return std::make_unique<SpesPolicy>(spes_config);
                  },
                  options});
  jobs.push_back({"", [] { return std::make_unique<DefusePolicy>(); },
                  options});
  jobs.push_back({"", [] {
                    return std::make_unique<HybridHistogramPolicy>(
                        HybridGranularity::kFunction);
                  },
                  options});
  jobs.push_back({"", [] {
                    return std::make_unique<HybridHistogramPolicy>(
                        HybridGranularity::kApplication);
                  },
                  options});
  jobs.push_back({"", [] { return std::make_unique<FixedKeepAlivePolicy>(10); },
                  options});
  std::vector<JobResult> wave1 = runner.Run(trace, std::move(jobs));
  for (const JobResult& r : wave1) r.status.CheckOK();
  const uint64_t spes_peak = wave1[0].outcome.metrics.max_memory;

  // Wave 2: FaasCache needs SPES's peak memory as its capacity.
  std::vector<SuiteJob> wave2;
  wave2.push_back({"", [spes_peak] {
                     return std::make_unique<FaasCachePolicy>(spes_peak);
                   },
                   options});
  std::vector<JobResult> faascache = runner.Run(trace, std::move(wave2));
  faascache[0].status.CheckOK();

  SuiteResult result;
  result.spes.reset(static_cast<SpesPolicy*>(wave1[0].policy.release()));
  result.outcomes.reserve(wave1.size() + 1);
  for (JobResult& r : wave1) result.outcomes.push_back(std::move(r.outcome));
  result.outcomes.push_back(std::move(faascache[0].outcome));
  return result;
}

inline std::vector<FleetMetrics> SuiteMetrics(const SuiteResult& suite) {
  std::vector<FleetMetrics> metrics;
  metrics.reserve(suite.outcomes.size());
  for (const SimulationOutcome& outcome : suite.outcomes) {
    metrics.push_back(outcome.metrics);
  }
  return metrics;
}

}  // namespace bench
}  // namespace spes

#endif  // SPES_BENCH_BENCH_POLICIES_H_
