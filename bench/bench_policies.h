// Helper running SPES plus the five baselines of §V-A1 on a fleet.
//
// The suite is a batch of ScenarioSpecs fanned out through SuiteRunner:
// SPES and the capacity-independent baselines run concurrently, then
// FaasCache (whose cache capacity is SPES's peak memory, as in §V-A1) runs
// once SPES has finished. Every policy is built from the registry — no
// bench constructs a concrete policy type. Result order is fixed
// regardless of thread count, so every table built from a SuiteResult is
// identical to the serial run's.

#ifndef SPES_BENCH_BENCH_POLICIES_H_
#define SPES_BENCH_BENCH_POLICIES_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "runner/suite_runner.h"
#include "sim/scenario.h"

namespace spes {
namespace bench {

/// \brief Worker-thread count resolved from the environment;
/// SPES_BENCH_THREADS <= 0 (the default) means hardware concurrency.
inline int DefaultBenchThreads() {
  return static_cast<int>(GetEnvInt("SPES_BENCH_THREADS", 0));
}

/// \brief A ScenarioSpec for `policy` with the shared engine options (the
/// sweep pattern: same workload and window, varying policy spec).
inline ScenarioSpec MakeScenario(PolicySpec policy, const SimOptions& options,
                                 std::string label = "") {
  ScenarioSpec spec;
  spec.label = std::move(label);
  spec.policy = std::move(policy);
  spec.options = options;
  return spec;
}

/// \brief Outcome of running the full policy suite. For per-type
/// breakdowns of a single policy, use RunScenario and downcast
/// ScenarioOutcome::policy instead (see bench_fig10_csr_by_type.cc).
struct SuiteResult {
  /// SPES first, then Defuse, HF, HA, Fixed-10min, FaasCache (the paper's
  /// baseline set); FaasCache's capacity is SPES's peak memory, as in §V-A1.
  std::vector<SimulationOutcome> outcomes;
};

inline SuiteResult RunPolicySuite(const Trace& trace,
                                  const SimOptions& options,
                                  const PolicySpec& spes_spec = {"spes", {}},
                                  int num_threads = 0) {
  SuiteRunnerOptions runner_options;
  runner_options.num_threads =
      num_threads > 0 ? num_threads : DefaultBenchThreads();
  SuiteRunner runner(runner_options);

  // Wave 1: SPES and every capacity-independent baseline, concurrently.
  std::vector<ScenarioSpec> specs;
  specs.push_back(MakeScenario(spes_spec, options));
  specs.push_back(MakeScenario({"defuse", {}}, options));
  specs.push_back(
      MakeScenario({"hybrid_histogram", {{"granularity", "function"}}},
                   options));
  specs.push_back(
      MakeScenario({"hybrid_histogram", {{"granularity", "application"}}},
                   options));
  specs.push_back(
      MakeScenario({"fixed_keepalive", {{"minutes", 10}}}, options));
  std::vector<JobResult> wave1 = runner.Run(trace, specs);
  for (const JobResult& r : wave1) r.status.CheckOK();
  // A fleet SPES never keeps warm yields peak 0; faascache requires a
  // positive capacity, so provision at least one instance.
  const uint64_t spes_peak =
      std::max<uint64_t>(1, wave1[0].outcome.metrics.max_memory);

  // Wave 2: FaasCache needs SPES's peak memory as its capacity.
  std::vector<ScenarioSpec> wave2_specs;
  wave2_specs.push_back(MakeScenario(
      {"faascache", {{"capacity", static_cast<int64_t>(spes_peak)}}},
      options));
  std::vector<JobResult> faascache = runner.Run(trace, wave2_specs);
  faascache[0].status.CheckOK();

  SuiteResult result;
  result.outcomes.reserve(wave1.size() + 1);
  for (JobResult& r : wave1) result.outcomes.push_back(std::move(r.outcome));
  result.outcomes.push_back(std::move(faascache[0].outcome));
  return result;
}

inline std::vector<FleetMetrics> SuiteMetrics(const SuiteResult& suite) {
  std::vector<FleetMetrics> metrics;
  metrics.reserve(suite.outcomes.size());
  for (const SimulationOutcome& outcome : suite.outcomes) {
    metrics.push_back(outcome.metrics);
  }
  return metrics;
}

}  // namespace bench
}  // namespace spes

#endif  // SPES_BENCH_BENCH_POLICIES_H_
