// SuiteRunner: fans a list of independent policy simulations out across a
// thread pool.
//
// Policies are stateful (Train() fills per-function models), so each job
// owns a fresh policy instance produced by its factory; nothing is shared
// between jobs except the read-only trace. Results are collected by slot
// index, so the output order — and therefore every report table built from
// it — is bitwise identical at any thread count.

#ifndef SPES_RUNNER_SUITE_RUNNER_H_
#define SPES_RUNNER_SUITE_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "sim/engine.h"
#include "sim/observer.h"
#include "sim/policy.h"
#include "trace/trace.h"

namespace spes {

struct ScenarioSpec;  // sim/scenario.h; spec-batch callers include it.

/// \brief Produces a fresh policy instance for one job. Called exactly once
/// per job, from the worker thread that runs it.
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

/// \brief One unit of work: a policy (by factory) plus its engine options.
struct SuiteJob {
  /// Display label; when empty the policy's name() is used.
  std::string label;
  PolicyFactory factory;
  SimOptions options;
  /// When non-OK the job is not run and its JobResult carries this status
  /// verbatim (used by the spec-batch overload to report precise
  /// validation/registry errors through the normal result path).
  Status precondition;
  /// Workload override: when set, this job simulates against *this* trace
  /// instead of the one passed to Run(). Set by the trace-less spec-batch
  /// overload so one batch can span several (transformed) workloads.
  std::shared_ptr<const Trace> trace;
  /// Per-minute observers attached to the job's stream (borrowed; null
  /// entries ignored). Populated from ScenarioSpec::observers by the
  /// spec-batch overloads. Jobs run concurrently, so an observer shared
  /// by several jobs must be thread-safe — or give each spec its own.
  std::vector<SimObserver*> observers;
  /// Cluster mode: when set, the job ignores `factory` and simulates the
  /// spec's cluster through a ClusterSession (per-node policies are built
  /// from spec.policy on the worker thread). Populated from ScenarioSpec
  /// by the spec-batch overloads whenever spec.cluster is set.
  std::shared_ptr<const ScenarioSpec> cluster_scenario;
};

/// \brief Outcome of one job. `outcome` is meaningful only when
/// `status.ok()`; `policy` is the trained instance (kept alive for
/// per-type breakdowns such as BreakdownByType). For cluster jobs,
/// `outcome` is the fleet-wide aggregate, `policy` is null, and `cluster`
/// carries the per-node breakdown.
struct JobResult {
  std::string label;
  Status status;
  SimulationOutcome outcome;
  std::unique_ptr<Policy> policy;
  std::shared_ptr<const ClusterOutcome> cluster;
};

/// \brief Progress callback: invoked after each job finishes with the
/// number of completed jobs, the total, and the finished job's result.
/// Serialized by the runner (never called concurrently).
using ProgressCallback =
    std::function<void(size_t finished, size_t total, const JobResult&)>;

/// \brief Runner knobs.
struct SuiteRunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int num_threads = 0;
  ProgressCallback progress;
};

/// \brief Fans independent Simulate() calls out across a thread pool.
class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteRunnerOptions options = {});

  /// \brief Runs every job against `trace` and returns results in job
  /// order. A job whose factory returns null or whose Simulate() errors
  /// yields a JobResult with a non-OK status; sibling jobs are unaffected.
  [[nodiscard]] std::vector<JobResult> Run(const Trace& trace,
                             std::vector<SuiteJob> jobs) const;

  /// \brief Spec-batch overload: a whole figure sweep as data. Each spec's
  /// policy is built through PolicyRegistry::Global() and validated up
  /// front on the calling thread; an invalid spec yields a JobResult
  /// carrying the precise registry/validation error in its slot while
  /// sibling specs still run. The specs' trace sources are ignored — the
  /// supplied trace is the workload for every slot.
  [[nodiscard]] std::vector<JobResult> Run(const Trace& trace,
                             const std::vector<ScenarioSpec>& specs) const;

  /// \brief Lockstep spec batch: instead of fanning one Simulate() per
  /// spec across threads, specs sharing identical SimOptions become lanes
  /// of ONE multi-policy SimStream, so each distinct window walks the
  /// trace once — one arrival decode per minute serves every policy in
  /// the group. Runs on the calling thread (the parallelism is across
  /// lanes within the walk, not across jobs). Results are slot-indexed
  /// and bitwise identical to Run(trace, specs); an invalid spec fails
  /// only its slot. Each spec's observers see only their own spec's run,
  /// presented as a single-lane stream (MinuteView::lane == 0, exactly
  /// as in the pooled Run) — but note that lanes in a window group share
  /// one cursor, so an early stop requested by ANY spec's observer halts
  /// that whole group and its sibling slots return partial-window
  /// outcomes (with OK status). The
  /// progress callback fires per slot, in slot order, as each group
  /// completes. Spec trace sources are ignored — `trace` is the workload
  /// for every slot. Cluster specs do not join a lane group (a cluster is
  /// already its own multi-lane session); they run standalone, before the
  /// groups, with results bitwise identical to Run(trace, specs).
  [[nodiscard]] std::vector<JobResult> RunLockstep(
      const Trace& trace, const std::vector<ScenarioSpec>& specs) const;

  /// \brief Trace-less spec batch: every spec realizes its *own* trace
  /// source with its transform chain applied, so one batch can sweep
  /// policies across stressed workload variants as pure data. Specs
  /// sharing a source + chain (see TraceSpecKey) share one realized
  /// trace, materialized once on the calling thread; a spec whose source
  /// or chain fails yields a JobResult carrying the precise error in its
  /// slot while sibling specs still run. Results stay slot-indexed and
  /// thread-count independent.
  [[nodiscard]] std::vector<JobResult> Run(const std::vector<ScenarioSpec>& specs) const;

  /// \brief Effective worker count for `num_jobs` jobs (>= 1).
  [[nodiscard]] int EffectiveThreads(size_t num_jobs) const;

 private:
  SuiteRunnerOptions options_;
};

/// \brief Convenience: metrics of every successful job, in job order
/// (failed jobs are skipped).
std::vector<FleetMetrics> CollectMetrics(const std::vector<JobResult>& results);

}  // namespace spes

#endif  // SPES_RUNNER_SUITE_RUNNER_H_
