#include "runner/suite_runner.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/scenario.h"

namespace spes {

SuiteRunner::SuiteRunner(SuiteRunnerOptions options)
    : options_(std::move(options)) {}

int SuiteRunner::EffectiveThreads(size_t num_jobs) const {
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<size_t>(threads) > num_jobs) {
    threads = static_cast<int>(num_jobs);
  }
  return threads < 1 ? 1 : threads;
}

std::vector<JobResult> SuiteRunner::Run(const Trace& trace,
                                        std::vector<SuiteJob> jobs) const {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  const int num_threads = EffectiveThreads(jobs.size());

  // Work queue: an atomic cursor over job slots. Each worker claims the
  // next slot, runs it to completion, and writes the result into its slot,
  // so result order never depends on scheduling.
  std::atomic<size_t> next{0};
  // Guarded by progress_mutex so callbacks see a monotonic count.
  size_t finished = 0;
  std::mutex progress_mutex;

  auto run_one = [&](size_t slot) {
    SuiteJob& job = jobs[slot];
    JobResult& result = results[slot];
    result.label = job.label;
    if (!job.precondition.ok()) {
      result.status = std::move(job.precondition);
    } else if (!job.factory) {
      result.status = Status::InvalidArgument("job has no policy factory");
    } else {
      result.policy = job.factory();
      if (result.policy == nullptr) {
        result.status =
            Status::InvalidArgument("policy factory returned null");
      } else {
        if (result.label.empty()) result.label = result.policy->name();
        const Trace& workload = job.trace ? *job.trace : trace;
        Result<SimulationOutcome> outcome =
            Simulate(workload, result.policy.get(), job.options);
        if (outcome.ok()) {
          result.outcome = std::move(outcome).ValueOrDie();
        } else {
          result.status = outcome.status();
        }
      }
    }
    if (options_.progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      options_.progress(++finished, jobs.size(), result);
    }
  };

  auto worker = [&] {
    while (true) {
      const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= jobs.size()) return;
      run_one(slot);
    }
  };

  if (num_threads == 1) {
    worker();
    return results;
  }

  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

namespace {

/// Shared spec -> job lowering: validation and registry errors become job
/// preconditions so each slot (and the progress callback) reports the
/// exact error while sibling specs still run.
SuiteJob JobFromSpec(const ScenarioSpec& spec) {
  SuiteJob job;
  job.label = spec.label;
  job.options = spec.options;
  job.precondition = ValidateScenarioSpec(spec);
  if (job.precondition.ok()) {
    Result<std::unique_ptr<Policy>> built =
        PolicyRegistry::Global().Create(spec.policy);
    if (built.ok()) {
      // SuiteJob factories are std::function (copyable), so the one-shot
      // instance travels in a shared holder; each factory runs once.
      auto holder = std::make_shared<std::unique_ptr<Policy>>(
          std::move(built).ValueOrDie());
      job.factory = [holder] { return std::move(*holder); };
    } else {
      job.precondition = built.status();
    }
  }
  return job;
}

}  // namespace

std::vector<JobResult> SuiteRunner::Run(
    const Trace& trace, const std::vector<ScenarioSpec>& specs) const {
  // Policies are built eagerly on the calling thread so registry errors
  // keep their precise message; Train()/Simulate() — the actual work —
  // still runs on the pool.
  std::vector<SuiteJob> jobs;
  jobs.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) jobs.push_back(JobFromSpec(spec));
  return Run(trace, std::move(jobs));
}

std::vector<JobResult> SuiteRunner::Run(
    const std::vector<ScenarioSpec>& specs) const {
  // Each spec brings its own workload: realize source + transform chain
  // through a per-batch TraceCache, so specs sharing a (source, chain)
  // key share one realized trace. Realization runs on the calling thread
  // — it is cached and ordering-sensitive — while the simulations fan
  // out; the shared_ptr overrides keep every trace alive for the run.
  TraceCache cache;
  std::vector<SuiteJob> jobs;
  jobs.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    SuiteJob job = JobFromSpec(spec);
    if (job.precondition.ok()) {
      Result<std::shared_ptr<const Trace>> trace = cache.Get(spec.trace);
      if (trace.ok()) {
        job.trace = std::move(trace).ValueOrDie();
      } else {
        job.precondition = trace.status();
      }
    }
    jobs.push_back(std::move(job));
  }
  // Every job carries its own trace; the common-trace argument is unused.
  static const Trace kNoCommonTrace;
  return Run(kNoCommonTrace, std::move(jobs));
}

std::vector<FleetMetrics> CollectMetrics(
    const std::vector<JobResult>& results) {
  std::vector<FleetMetrics> metrics;
  metrics.reserve(results.size());
  for (const JobResult& result : results) {
    if (result.status.ok()) metrics.push_back(result.outcome.metrics);
  }
  return metrics;
}

}  // namespace spes
