#include "runner/suite_runner.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/recorder.h"
#include "sim/scenario.h"
#include "sim/stream.h"

namespace spes {

namespace {

/// Runs one cluster job to completion over `workload`: per-node policies
/// are built inside ClusterSession::Create, the job's observers ride the
/// session, the fleet aggregate lands in JobResult::outcome and the
/// per-node breakdown in JobResult::cluster. Shared by the pooled worker
/// and the lockstep path so both produce bitwise-identical results.
void RunClusterJob(const Trace& workload, const ScenarioSpec& spec,
                   int recorder_slot,
                   const std::vector<SimObserver*>& observers,
                   JobResult* result) {
  // The spec's options drive the session; only the observability slot is
  // stamped per job so recorded events identify their slot.
  SimOptions options = spec.options;
  options.recorder_slot = recorder_slot;
  Result<ClusterSession> session = ClusterSession::Create(
      workload, *spec.cluster, spec.policy, options);
  if (!session.ok()) {
    result->status = session.status();
    return;
  }
  for (SimObserver* observer : observers) {
    session.ValueOrDie().AddObserver(observer);
  }
  Result<ClusterOutcome> outcome = session.ValueOrDie().Finish();
  if (!outcome.ok()) {
    result->status = outcome.status();
    return;
  }
  ClusterOutcome& cluster = outcome.ValueOrDie();
  result->outcome = cluster.fleet;  // per-node detail keeps its own copy
  result->cluster =
      std::make_shared<const ClusterOutcome>(std::move(cluster));
  if (result->label.empty()) {
    result->label = result->outcome.metrics.policy_name;
  }
}

/// Scopes an observer to one lane of a stream: views from other lanes
/// are filtered out and the surviving views are presented as a
/// single-lane stream (lane 0, num_lanes 1). A spec's observers thus
/// behave identically whether the batch ran pooled (one single-lane
/// stream per job) or lockstep (grouped multi-lane streams), and the
/// stock observers (TimeSeriesObserver, ProgressObserver) work
/// unchanged for any slot.
class LaneScopedObserver : public SimObserver {
 public:
  LaneScopedObserver(SimObserver* inner, size_t stream_lane)
      : inner_(inner), stream_lane_(stream_lane) {}

  void OnStreamStart(const StreamInfo& info) override {
    StreamInfo scoped = info;
    scoped.num_lanes = 1;
    inner_->OnStreamStart(scoped);
  }
  bool OnMinute(const MinuteView& view) override {
    if (view.lane != stream_lane_) return true;
    MinuteView scoped = view;
    scoped.lane = 0;
    return inner_->OnMinute(scoped);
  }
  void OnStreamEnd(size_t lane, const SimulationOutcome& outcome) override {
    if (lane == stream_lane_) inner_->OnStreamEnd(0, outcome);
  }

 private:
  SimObserver* inner_;
  size_t stream_lane_;
};

}  // namespace

SuiteRunner::SuiteRunner(SuiteRunnerOptions options)
    : options_(std::move(options)) {}

int SuiteRunner::EffectiveThreads(size_t num_jobs) const {
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<size_t>(threads) > num_jobs) {
    threads = static_cast<int>(num_jobs);
  }
  return threads < 1 ? 1 : threads;
}

std::vector<JobResult> SuiteRunner::Run(const Trace& trace,
                                        std::vector<SuiteJob> jobs) const {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  const int num_threads = EffectiveThreads(jobs.size());

  // Work queue: an atomic cursor over job slots. Each worker claims the
  // next slot, runs it to completion, and writes the result into its slot,
  // so result order never depends on scheduling.
  std::atomic<size_t> next{0};
  // Guarded by progress_mutex so callbacks see a monotonic count.
  size_t finished = 0;
  std::mutex progress_mutex;

  auto run_one = [&](size_t slot) {
    SuiteJob& job = jobs[slot];
    JobResult& result = results[slot];
    result.label = job.label;
    // Observability: every event this job emits carries its slot index —
    // a logical id, so recorded traces are identical at any thread count.
    job.options.recorder_slot = static_cast<int>(slot);
    const ScopedSpan job_span(job.options.recorder, "job",
                              static_cast<int>(slot), 0, job.label);
    if (!job.precondition.ok()) {
      result.status = std::move(job.precondition);
    } else if (job.cluster_scenario != nullptr) {
      const Trace& workload = job.trace ? *job.trace : trace;
      RunClusterJob(workload, *job.cluster_scenario,
                    static_cast<int>(slot), job.observers, &result);
    } else if (!job.factory) {
      result.status = Status::InvalidArgument("job has no policy factory");
    } else {
      result.policy = job.factory();
      if (result.policy == nullptr) {
        result.status =
            Status::InvalidArgument("policy factory returned null");
      } else {
        if (result.label.empty()) result.label = result.policy->name();
        const Trace& workload = job.trace ? *job.trace : trace;
        // Open the job's own stream so per-job observers ride along;
        // without observers this is exactly Simulate(). The stream is
        // already single-lane, so observers attach directly.
        Result<SimStream> stream =
            SimStream::Create(workload, result.policy.get(), job.options);
        if (stream.ok()) {
          for (SimObserver* observer : job.observers) {
            stream.ValueOrDie().AddObserver(observer);
          }
          Result<SimulationOutcome> outcome = stream.ValueOrDie().Finish();
          if (outcome.ok()) {
            result.outcome = std::move(outcome).ValueOrDie();
          } else {
            result.status = outcome.status();
          }
        } else {
          result.status = stream.status();
        }
      }
    }
    if (options_.progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      options_.progress(++finished, jobs.size(), result);
    }
  };

  auto worker = [&] {
    while (true) {
      const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= jobs.size()) return;
      run_one(slot);
    }
  };

  if (num_threads == 1) {
    worker();
    return results;
  }

  std::vector<std::thread> pool;
  pool.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

namespace {

/// Shared spec -> job lowering: validation and registry errors become job
/// preconditions so each slot (and the progress callback) reports the
/// exact error while sibling specs still run.
SuiteJob JobFromSpec(const ScenarioSpec& spec) {
  SuiteJob job;
  job.label = spec.label;
  job.options = spec.options;
  job.observers = spec.observers;
  job.precondition = ValidateScenarioSpec(spec);
  if (job.precondition.ok() && spec.cluster.has_value()) {
    // Catch registry problems on the calling thread, like the plain path:
    // a throwaway policy instance (un-trained, so cheap) and the router
    // validate the spec; the worker rebuilds per node.
    Result<std::unique_ptr<Policy>> probe =
        PolicyRegistry::Global().Create(spec.policy);
    if (probe.ok()) {
      Result<std::unique_ptr<Router>> router =
          RouterRegistry::Global().Create(spec.cluster->router);
      job.precondition = router.status();
    } else {
      job.precondition = probe.status();
    }
    if (job.precondition.ok()) {
      job.cluster_scenario = std::make_shared<const ScenarioSpec>(spec);
    }
    return job;
  }
  if (job.precondition.ok()) {
    Result<std::unique_ptr<Policy>> built =
        PolicyRegistry::Global().Create(spec.policy);
    if (built.ok()) {
      // SuiteJob factories are std::function (copyable), so the one-shot
      // instance travels in a shared holder; each factory runs once.
      auto holder = std::make_shared<std::unique_ptr<Policy>>(
          std::move(built).ValueOrDie());
      job.factory = [holder] { return std::move(*holder); };
    } else {
      job.precondition = built.status();
    }
  }
  return job;
}

}  // namespace

std::vector<JobResult> SuiteRunner::Run(
    const Trace& trace, const std::vector<ScenarioSpec>& specs) const {
  // Policies are built eagerly on the calling thread so registry errors
  // keep their precise message; Train()/Simulate() — the actual work —
  // still runs on the pool.
  std::vector<SuiteJob> jobs;
  jobs.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) jobs.push_back(JobFromSpec(spec));
  return Run(trace, std::move(jobs));
}

std::vector<JobResult> SuiteRunner::RunLockstep(
    const Trace& trace, const std::vector<ScenarioSpec>& specs) const {
  std::vector<JobResult> results(specs.size());

  // Lower every spec through the same JobFromSpec path as the pooled
  // batches (slot isolation: a bad spec only fails its own JobResult),
  // then group the healthy slots by engine options — lockstep lanes
  // share one cursor, so only identical windows can ride one stream.
  std::vector<std::unique_ptr<Policy>> policies(specs.size());
  std::vector<std::vector<size_t>> groups;
  std::vector<std::string> group_keys;
  std::vector<size_t> cluster_slots;
  std::vector<std::shared_ptr<const ScenarioSpec>> cluster_specs(specs.size());
  for (size_t slot = 0; slot < specs.size(); ++slot) {
    const ScenarioSpec& spec = specs[slot];
    JobResult& result = results[slot];
    SuiteJob job = JobFromSpec(spec);
    result.label = job.label;
    result.status = job.precondition;
    if (!result.status.ok()) continue;
    if (job.cluster_scenario != nullptr) {
      // A cluster is already its own multi-lane session; it runs
      // standalone instead of joining a lane group.
      cluster_slots.push_back(slot);
      cluster_specs[slot] = std::move(job.cluster_scenario);
      continue;
    }
    policies[slot] = job.factory();
    if (result.label.empty()) result.label = policies[slot]->name();
    const std::string key = std::to_string(spec.options.train_minutes) + "|" +
                            std::to_string(spec.options.end_minute) + "|" +
                            (spec.options.pin_executing_functions ? "1" : "0");
    size_t group = group_keys.size();
    for (size_t g = 0; g < group_keys.size(); ++g) {
      if (group_keys[g] == key) {
        group = g;
        break;
      }
    }
    if (group == group_keys.size()) {
      group_keys.push_back(key);
      groups.emplace_back();
    }
    groups[group].push_back(slot);
  }

  size_t finished = 0;
  auto report = [&](size_t slot) {
    if (options_.progress) {
      options_.progress(++finished, specs.size(), results[slot]);
    }
  };
  // Failed slots report first, in slot order, so `finished` stays
  // monotonic over the whole batch.
  for (size_t slot = 0; slot < specs.size(); ++slot) {
    if (!results[slot].status.ok()) report(slot);
  }

  for (size_t slot : cluster_slots) {
    RunClusterJob(trace, *cluster_specs[slot], static_cast<int>(slot),
                  specs[slot].observers, &results[slot]);
    report(slot);
  }

  for (const std::vector<size_t>& group : groups) {
    std::vector<Policy*> lanes;
    lanes.reserve(group.size());
    for (size_t slot : group) lanes.push_back(policies[slot].get());
    // Recorded events from a shared lockstep stream carry the group
    // leader's slot; lanes keep each member apart.
    SimOptions group_options = specs[group[0]].options;
    group_options.recorder_slot = static_cast<int>(group[0]);
    Result<SimStream> created =
        SimStream::Create(trace, std::move(lanes), group_options);
    if (created.ok()) {
      SimStream& stream = created.ValueOrDie();
      std::vector<std::unique_ptr<LaneScopedObserver>> scoped;
      for (size_t k = 0; k < group.size(); ++k) {
        for (SimObserver* observer : specs[group[k]].observers) {
          if (observer == nullptr) continue;
          scoped.push_back(
              std::make_unique<LaneScopedObserver>(observer, k));
          stream.AddObserver(scoped.back().get());
        }
      }
      Result<std::vector<SimulationOutcome>> outcomes = stream.FinishAll();
      if (outcomes.ok()) {
        std::vector<SimulationOutcome>& group_outcomes =
            outcomes.ValueOrDie();
        for (size_t k = 0; k < group.size(); ++k) {
          results[group[k]].outcome = std::move(group_outcomes[k]);
        }
      } else {
        for (size_t slot : group) results[slot].status = outcomes.status();
      }
    } else {
      for (size_t slot : group) results[slot].status = created.status();
    }
    for (size_t slot : group) {
      results[slot].policy = std::move(policies[slot]);
      report(slot);
    }
  }
  return results;
}

std::vector<JobResult> SuiteRunner::Run(
    const std::vector<ScenarioSpec>& specs) const {
  // Each spec brings its own workload: realize source + transform chain
  // through a per-batch TraceCache, so specs sharing a (source, chain)
  // key share one realized trace. Realization runs on the calling thread
  // — it is cached and ordering-sensitive — while the simulations fan
  // out; the shared_ptr overrides keep every trace alive for the run.
  TraceCache cache;
  // The batch cache reports hit/miss/realize to the first recorder any
  // spec carries (a batch shares at most one run log in practice).
  for (const ScenarioSpec& spec : specs) {
    if (spec.options.recorder != nullptr) {
      cache.set_recorder(spec.options.recorder);
      break;
    }
  }
  std::vector<SuiteJob> jobs;
  jobs.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    SuiteJob job = JobFromSpec(spec);
    if (job.precondition.ok()) {
      Result<std::shared_ptr<const Trace>> trace = cache.Get(spec.trace);
      if (trace.ok()) {
        job.trace = std::move(trace).ValueOrDie();
      } else {
        job.precondition = trace.status();
      }
    }
    jobs.push_back(std::move(job));
  }
  // Every job carries its own trace; the common-trace argument is unused.
  static const Trace kNoCommonTrace;
  return Run(kNoCommonTrace, std::move(jobs));
}

std::vector<FleetMetrics> CollectMetrics(
    const std::vector<JobResult>& results) {
  std::vector<FleetMetrics> metrics;
  metrics.reserve(results.size());
  for (const JobResult& result : results) {
    if (result.status.ok()) metrics.push_back(result.outcome.metrics);
  }
  return metrics;
}

}  // namespace spes
