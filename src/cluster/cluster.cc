#include "cluster/cluster.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/binary_io.h"
#include "obs/clock.h"
#include "obs/recorder.h"

namespace spes {

namespace {

/// Format tag of the serialized cluster checkpoint byte stream. The
/// format postdates the latency subsystem, so version 1 always carries
/// one latency-state blob per node (empty when the run has no latency
/// block) — no conditional layout like the SimStream checkpoint needs.
constexpr char kClusterCheckpointMagic[] = "SPESCLCK";
constexpr uint32_t kClusterCheckpointVersion = 1;

/// Typed accessor over a parsed node-event spec: `name` must be a declared
/// int parameter of the event kind; errors mirror the registry wording.
/// The ceiling keeps every accepted value representable as an `int`, so
/// the NodeEvent fields never truncate.
Result<int64_t> EventIntParam(const NamedSpec& spec, const std::string& name,
                              bool required, int64_t min_value) {
  constexpr int64_t kMaxValue = 2147483647;
  auto it = spec.params.find(name);
  if (it == spec.params.end()) {
    if (!required) return int64_t{-1};
    return Status::InvalidArgument("node event '" + spec.name +
                                   "' is missing required parameter '" +
                                   name + "'");
  }
  if (it->second.type() != ParamType::kInt) {
    return Status::InvalidArgument(
        "node event '" + spec.name + "' parameter '" + name +
        "' expects int, got " + ParamTypeToString(it->second.type()) + " (=" +
        FormatParamValue(it->second) + ")");
  }
  const int64_t value = it->second.AsInt();
  if (value < min_value || value > kMaxValue) {
    return Status::InvalidArgument(
        "node event '" + spec.name + "' parameter '" + name + "' (=" +
        std::to_string(value) + ") must be in [" +
        std::to_string(min_value) + ", " + std::to_string(kMaxValue) + "]");
  }
  return value;
}

}  // namespace

const char* NodeEventKindToString(NodeEvent::Kind kind) {
  switch (kind) {
    case NodeEvent::Kind::kAdd:
      return "add";
    case NodeEvent::Kind::kDrain:
      return "drain";
    case NodeEvent::Kind::kFail:
      return "fail";
  }
  return "unknown";
}

Result<NodeEvent> ParseNodeEvent(const std::string& text) {
  SPES_ASSIGN_OR_RETURN(const NamedSpec spec,
                        ParseNamedSpec(text, "node event"));
  NodeEvent event;
  if (spec.name == "add") {
    event.kind = NodeEvent::Kind::kAdd;
  } else if (spec.name == "drain") {
    event.kind = NodeEvent::Kind::kDrain;
  } else if (spec.name == "fail") {
    event.kind = NodeEvent::Kind::kFail;
  } else {
    return Status::InvalidArgument("unknown node event '" + spec.name +
                                   "'; expected add, drain or fail");
  }
  const bool is_add = event.kind == NodeEvent::Kind::kAdd;
  for (const auto& [key, value] : spec.params) {
    (void)value;
    const bool known =
        key == "at" || (is_add ? key == "capacity" : key == "node");
    if (!known) {
      return Status::InvalidArgument("node event '" + spec.name +
                                     "' does not accept parameter '" + key +
                                     "'");
    }
  }
  SPES_ASSIGN_OR_RETURN(const int64_t at,
                        EventIntParam(spec, "at", /*required=*/true, 0));
  event.minute = static_cast<int>(at);
  if (is_add) {
    SPES_ASSIGN_OR_RETURN(
        const int64_t capacity,
        EventIntParam(spec, "capacity", /*required=*/false, 0));
    event.capacity = static_cast<int>(capacity);
  } else {
    SPES_ASSIGN_OR_RETURN(const int64_t node,
                          EventIntParam(spec, "node", /*required=*/true, 0));
    event.node = static_cast<int>(node);
  }
  return event;
}

std::string FormatNodeEvent(const NodeEvent& event) {
  NamedSpec spec;
  spec.name = NodeEventKindToString(event.kind);
  spec.params.emplace("at", ParamValue(event.minute));
  if (event.kind == NodeEvent::Kind::kAdd) {
    if (event.capacity >= 0) {
      spec.params.emplace("capacity", ParamValue(event.capacity));
    }
  } else {
    spec.params.emplace("node", ParamValue(event.node));
  }
  return FormatNamedSpec(spec);
}

Result<std::vector<NodeEvent>> ParseNodeEventTimeline(
    const std::string& text) {
  std::vector<NodeEvent> events;
  // A fully blank string is the empty timeline; an empty segment between
  // bars ("a||b", "|a") is a syntax error.
  if (text.find_first_not_of(" \t") == std::string::npos) return events;
  size_t start = 0;
  while (true) {
    const size_t bar = text.find('|', start);
    const size_t item_end = bar == std::string::npos ? text.size() : bar;
    const std::string item = text.substr(start, item_end - start);
    if (item.find_first_not_of(" \t") == std::string::npos) {
      return Status::InvalidArgument("node event timeline '" + text +
                                     "' has an empty entry");
    }
    SPES_ASSIGN_OR_RETURN(NodeEvent event, ParseNodeEvent(item));
    events.push_back(event);
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return events;
}

std::string FormatNodeEventTimeline(const std::vector<NodeEvent>& events) {
  std::string text;
  for (const NodeEvent& event : events) {
    if (!text.empty()) text += " | ";
    text += FormatNodeEvent(event);
  }
  return text;
}

Status ValidateClusterSpec(const ClusterSpec& spec) {
  if (spec.nodes < 1) {
    return Status::InvalidArgument("ClusterSpec.nodes (=" +
                                   std::to_string(spec.nodes) +
                                   ") must be >= 1");
  }
  if (spec.node_capacity < 0) {
    return Status::InvalidArgument(
        "ClusterSpec.node_capacity (=" + std::to_string(spec.node_capacity) +
        ") must be >= 0 (0 = uncapped)");
  }
  if (spec.router.name.empty()) {
    return Status::InvalidArgument("ClusterSpec.router.name must not be "
                                   "empty");
  }
  // Replay the timeline over the evolving node set: every drain/fail must
  // target a node that exists and is still alive when the event fires,
  // and at least one routable node must remain at every point.
  int total = spec.nodes;
  int routable = spec.nodes;
  // 0 = routable, 1 = draining, 2 = failed.
  std::vector<int> state(static_cast<size_t>(spec.nodes), 0);
  int previous_minute = 0;
  for (size_t i = 0; i < spec.events.size(); ++i) {
    const NodeEvent& event = spec.events[i];
    const std::string where = "ClusterSpec.events[" + std::to_string(i) +
                              "] (" + FormatNodeEvent(event) + ")";
    if (event.minute < 0) {
      return Status::InvalidArgument(where + ": minute must be >= 0");
    }
    if (i > 0 && event.minute < previous_minute) {
      return Status::InvalidArgument(
          where + ": events must be sorted by minute (previous event is at "
                  "minute " +
          std::to_string(previous_minute) + ")");
    }
    previous_minute = event.minute;
    switch (event.kind) {
      case NodeEvent::Kind::kAdd:
        if (event.capacity < -1) {
          return Status::InvalidArgument(
              where + ": capacity must be >= 0, or -1 for the cluster "
                      "default");
        }
        state.push_back(0);
        ++total;
        ++routable;
        break;
      case NodeEvent::Kind::kDrain:
      case NodeEvent::Kind::kFail: {
        if (event.node < 0 || event.node >= total) {
          return Status::InvalidArgument(
              where + ": node is out of range (the cluster has " +
              std::to_string(total) + " nodes at that point)");
        }
        int& s = state[static_cast<size_t>(event.node)];
        if (s == 2) {
          return Status::InvalidArgument(where +
                                         ": node has already failed");
        }
        if (event.kind == NodeEvent::Kind::kDrain) {
          if (s == 1) {
            return Status::InvalidArgument(where +
                                           ": node is already draining");
          }
          s = 1;
          --routable;
        } else {
          if (s == 0) --routable;
          s = 2;
        }
        if (routable < 1) {
          return Status::InvalidArgument(
              where + ": the cluster would be left with no routable node");
        }
        break;
      }
    }
  }
  return Status::OK();
}

ClusterSession::ClusterSession(TraceSource* source,
                               std::unique_ptr<TraceSource> owned,
                               const SimOptions& options, int end)
    : owned_source_(std::move(owned)),
      source_(source),
      options_(options),
      start_(options.train_minutes),
      end_(end),
      cursor_(options.train_minutes),
      assignment_(source->num_functions(), -1),
      decoder_(source) {}

Result<ClusterSession> ClusterSession::CreateImpl(
    TraceSource* source, std::unique_ptr<TraceSource> owned,
    const Trace* full_trace, const ClusterSpec& cluster,
    const PolicySpec& policy, const SimOptions& options) {
  SPES_RETURN_NOT_OK(ValidateClusterSpec(cluster));
  SPES_RETURN_NOT_OK(ValidateSimOptions(options));
  const int horizon = source->num_minutes();
  if (options.train_minutes > horizon) {
    return Status::InvalidArgument(
        "SimOptions.train_minutes (=" + std::to_string(options.train_minutes) +
        ") exceeds the trace horizon (=" + std::to_string(horizon) +
        " minutes)");
  }
  const int end = options.end_minute > 0
                      ? std::min(options.end_minute, horizon)
                      : horizon;

  SPES_ASSIGN_OR_RETURN(std::unique_ptr<Router> router,
                        RouterRegistry::Global().Create(cluster.router));

  // Streamed sources only materialize the train prefix — once, shared by
  // every node's policy. The in-memory overload keeps handing policies
  // the real full trace, preserving oracle behaviour bit for bit.
  Trace train_prefix;
  if (full_trace == nullptr) {
    SPES_ASSIGN_OR_RETURN(train_prefix,
                          source->MaterializePrefix(options.train_minutes));
  }
  const Trace& training = full_trace != nullptr ? *full_trace : train_prefix;

  ClusterSession session(source, std::move(owned), options, end);
  session.router_ = std::move(router);
  session.events_ = cluster.events;

  // One trained policy per node id — including nodes that only join via
  // an add event, so a joining node is ready the minute it appears.
  const size_t n = source->num_functions();
  size_t total_nodes = static_cast<size_t>(cluster.nodes);
  for (const NodeEvent& event : cluster.events) {
    if (event.kind == NodeEvent::Kind::kAdd) ++total_nodes;
  }
  session.nodes_.reserve(total_nodes);
  size_t add_index = 0;
  for (size_t k = 0; k < total_nodes; ++k) {
    Node node;
    if (k < static_cast<size_t>(cluster.nodes)) {
      node.state = NodeState::kRoutable;
      node.capacity = cluster.node_capacity;
    } else {
      node.state = NodeState::kPending;
      // Pending ids map to add events in timeline order.
      while (session.events_[add_index].kind != NodeEvent::Kind::kAdd) {
        ++add_index;
      }
      const int capacity = session.events_[add_index].capacity;
      node.capacity = capacity >= 0 ? capacity : cluster.node_capacity;
      ++add_index;
    }
    SPES_ASSIGN_OR_RETURN(node.policy, PolicyRegistry::Global().Create(policy));
    if (full_trace == nullptr && node.policy->RequiresFullTrace()) {
      return Status::InvalidArgument(
          "policy '" + node.policy->name() +
          "' requires the full realized trace, but a streamed source only "
          "materializes the train prefix; run it over an in-memory Trace");
    }
    {
      const ScopedSpan span(options.recorder, "train", options.recorder_slot,
                            static_cast<int>(session.nodes_.size()),
                            node.policy->name());
      node.policy->Train(training, options.train_minutes);
    }
    node.mem = MemSet(n);
    node.accounts.assign(n, FunctionAccount{});
    node.last_used.assign(n, -1);
    node.memory_series.reserve(
        static_cast<size_t>(end - options.train_minutes));
    session.nodes_.push_back(std::move(node));
  }
  if (options.latency.has_value()) {
    const LatencySpec& latency = *options.latency;
    // One shared hash table: the keys depend only on function names and
    // the latency seed, never on placement, so every node samples the
    // same per-request stream a single-fleet run would.
    session.latency_hashes_ = std::make_shared<const std::vector<uint64_t>>(
        ComputeFunctionHashes(*source, latency.seed));
    for (Node& node : session.nodes_) {
      SPES_ASSIGN_OR_RETURN(
          node.latency, CreateLatencyLane(latency, session.latency_hashes_));
    }
  }
  return session;
}

Result<ClusterSession> ClusterSession::Create(const Trace& trace,
                                              const ClusterSpec& cluster,
                                              const PolicySpec& policy,
                                              const SimOptions& options) {
  auto owned = std::make_unique<InMemoryTraceSource>(trace);
  TraceSource* source = owned.get();
  return CreateImpl(source, std::move(owned), &trace, cluster, policy,
                    options);
}

Result<ClusterSession> ClusterSession::Create(TraceSource& source,
                                              const ClusterSpec& cluster,
                                              const PolicySpec& policy,
                                              const SimOptions& options) {
  return CreateImpl(&source, nullptr, /*full_trace=*/nullptr, cluster, policy,
                    options);
}

void ClusterSession::AddObserver(SimObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void ClusterSession::ApplyEvents(int t) {
  while (event_index_ < events_.size() &&
         events_[event_index_].minute <= t) {
    const NodeEvent& event = events_[event_index_++];
    switch (event.kind) {
      case NodeEvent::Kind::kAdd: {
        // Pending nodes activate in id order (ids were assigned in
        // timeline order at Create).
        for (Node& node : nodes_) {
          if (node.state == NodeState::kPending) {
            node.state = NodeState::kRoutable;
            break;
          }
        }
        break;
      }
      case NodeEvent::Kind::kDrain:
        nodes_[static_cast<size_t>(event.node)].state = NodeState::kDraining;
        break;
      case NodeEvent::Kind::kFail: {
        Node& node = nodes_[static_cast<size_t>(event.node)];
        node.state = NodeState::kFailed;
        node.mem = MemSet(source_->num_functions());  // instances lost
        break;
      }
    }
  }
}

void ClusterSession::EnforceCapacity(Node* node, int t) {
  if (node->capacity <= 0) return;
  const size_t capacity = static_cast<size_t>(node->capacity);
  if (node->mem.Count() <= capacity) return;

  // Idle instances (not executing this minute, unless pinning is off) in
  // LRU order by last arrival on this node; ties evict the lowest id.
  std::vector<std::pair<int32_t, uint32_t>> candidates;
  node->mem.ForEachLoaded([this, node, t, &candidates](size_t f) {
    if (options_.pin_executing_functions && node->last_used[f] == t) return;
    candidates.emplace_back(node->last_used[f], static_cast<uint32_t>(f));
  });
  size_t excess = node->mem.Count() - capacity;
  if (candidates.size() > excess) {
    std::partial_sort(candidates.begin(), candidates.begin() + excess,
                      candidates.end());
    candidates.resize(excess);
  } else {
    // Everything evictable goes; executing instances may keep the node
    // above capacity for this minute (executions occupy memory).
    std::sort(candidates.begin(), candidates.end());
  }
  for (const auto& [used, f] : candidates) {
    (void)used;
    node->mem.Remove(f);
    ++node->pressure_evictions;
  }
}

void ClusterSession::EnsureStarted() {
  if (started_) return;
  started_ = true;
  if (options_.recorder != nullptr) {
    simulate_span_ = options_.recorder->BeginSpan(
        "simulate", options_.recorder_slot, 0,
        std::to_string(nodes_.size()) + "-node cluster");
  }
  StreamInfo info;
  info.train_minutes = options_.train_minutes;
  info.start_minute = start_;
  info.end_minute = end_;
  info.num_lanes = nodes_.size();
  info.num_functions = source_->num_functions();
  for (SimObserver* observer : observers_) observer->OnStreamStart(info);
}

Status ClusterSession::StepLocked() {
  const int t = cursor_;

  ApplyEvents(t);

  // Decode this minute's arrivals ONCE; every node shares the decode. The
  // block-transposing decoder makes this O(arrivals) amortized.
  const std::span<const Invocation> decoded = decoder_.Decode(t);
  SPES_RETURN_NOT_OK(decoder_.status());
  arrivals_.assign(decoded.begin(), decoded.end());
  ++minutes_decoded_;

  // Routing views: live load at the start of the minute, bumped as
  // arrivals are routed so intra-minute bursts spread.
  views_.clear();
  views_.reserve(nodes_.size());
  for (size_t k = 0; k < nodes_.size(); ++k) {
    Node& node = nodes_[k];
    node.arrivals.clear();
    NodeView view;
    view.node = static_cast<int>(k);
    view.routable = node.state == NodeState::kRoutable;
    view.capacity = node.capacity;
    view.projected_load = NodeLive(node) ? node.mem.Count() : 0;
    views_.push_back(view);
  }

  for (const Invocation& inv : arrivals_) {
    const uint32_t f = inv.function;
    const int32_t prev = assignment_[f];
    int target = -1;
    if (prev >= 0) {
      Node& previous = nodes_[static_cast<size_t>(prev)];
      if (previous.state == NodeState::kDraining &&
          previous.mem.Contains(f)) {
        // Drain-sticky: the warm instance keeps serving; no new
        // assignment is made on a draining node.
        target = prev;
      }
    }
    if (target < 0) {
      RoutingContext context;
      context.function = f;
      context.function_name = &source_->function_meta(f).name;
      context.previous_node =
          (prev >= 0 &&
           nodes_[static_cast<size_t>(prev)].state == NodeState::kRoutable)
              ? prev
              : -1;
      context.nodes = &views_;
      target = router_->Route(context);
      if (target < 0 || target >= static_cast<int>(nodes_.size()) ||
          !views_[static_cast<size_t>(target)].routable) {
        return Status::Internal(
            "router '" + router_->name() + "' returned node (=" +
            std::to_string(target) + ") which is not routable at minute " +
            std::to_string(t));
      }
      if (prev >= 0 && target != prev) {
        ++reroutes_;
        ++nodes_[static_cast<size_t>(target)].reroutes_in;
      }
      assignment_[f] = static_cast<int32_t>(target);
    }
    Node& serving = nodes_[static_cast<size_t>(target)];
    if (!serving.mem.Contains(f)) {
      ++views_[static_cast<size_t>(target)].projected_load;
    }
    serving.arrivals.push_back(inv);
  }

  bool stop_requested = false;
  for (size_t k = 0; k < nodes_.size(); ++k) {
    Node& node = nodes_[k];
    if (!NodeLive(node)) {
      node.memory_series.push_back(0);
      if (node.latency != nullptr) {
        // No arrivals route here (node.arrivals was cleared above), but
        // the queue keeps draining: requests admitted before the node
        // died or drained still complete, and waiters still time out on
        // schedule.
        node.cold_flags.clear();
        node.latency->OnMinute(t, node.arrivals, node.cold_flags);
      }
      continue;
    }

    // 1-2. Cold-start accounting, then execution pins the instance —
    // identical to a SimStream lane over this node's routed arrivals.
    // The latency variant additionally records which arrivals were cold
    // (the flags feed LatencyLane::OnMinute below); the plain variant is
    // the original loop, untouched so disabled runs stay byte-identical.
    if (node.latency == nullptr) {
      for (const Invocation& inv : node.arrivals) {
        FunctionAccount& acc = node.accounts[inv.function];
        acc.invocations += inv.count;
        acc.invoked_minutes += 1;
        node.totals.invocations += inv.count;
        if (!node.mem.Contains(inv.function)) {
          acc.cold_starts += 1;
          node.totals.cold_starts += 1;
        }
        node.mem.Add(inv.function);
        node.last_used[inv.function] = t;
      }
    } else {
      node.cold_flags.assign(node.arrivals.size(), 0);
      for (size_t i = 0; i < node.arrivals.size(); ++i) {
        const Invocation& inv = node.arrivals[i];
        FunctionAccount& acc = node.accounts[inv.function];
        acc.invocations += inv.count;
        acc.invoked_minutes += 1;
        node.totals.invocations += inv.count;
        if (!node.mem.Contains(inv.function)) {
          acc.cold_starts += 1;
          node.totals.cold_starts += 1;
          node.cold_flags[i] = 1;
        }
        node.mem.Add(inv.function);
        node.last_used[inv.function] = t;
      }
    }

    // 3. Policy step (timed for the RQ2 overhead measurement; the
    // monotonic clock lives in obs/clock so the linter can confine it).
    const double start = MonotonicSeconds();
    node.policy->OnMinute(t, node.arrivals, &node.mem);
    node.overhead_seconds += MonotonicSeconds() - start;

    if (options_.pin_executing_functions) {
      for (const Invocation& inv : node.arrivals) node.mem.Add(inv.function);
    }

    // Cluster-only: the node sheds idle instances above its capacity.
    EnforceCapacity(&node, t);

    // 4. Residency accounting. "Idle" is node-local: an instance is
    // wasted on this node unless the function arrived *here* this minute
    // (a warm copy left behind on another node is pure waste). Only the
    // loaded ids are visited — word-at-a-time over the membership bitset.
    node.mem.ForEachLoaded([&node, t](size_t f) {
      FunctionAccount& acc = node.accounts[f];
      acc.loaded_minutes += 1;
      node.totals.loaded_instance_minutes += 1;
      if (node.last_used[f] != t) {
        acc.wasted_minutes += 1;
        node.totals.wasted_memory_minutes += 1;
      }
    });
    node.memory_series.push_back(static_cast<uint32_t>(node.mem.Count()));

    if (node.latency != nullptr) {
      node.latency->OnMinute(t, node.arrivals, node.cold_flags);
    }

    if (!observers_.empty()) {
      MinuteView view;
      view.minute = t;
      view.lane = k;
      view.policy = node.policy.get();
      view.arrivals = &node.arrivals;
      view.mem = &node.mem;
      view.accounts = &node.accounts;
      view.memory_series = &node.memory_series;
      view.totals = node.totals;
      if (node.latency != nullptr) view.latency = &node.latency->live();
      for (SimObserver* observer : observers_) {
        if (!observer->OnMinute(view)) stop_requested = true;
      }
    }

    if (options_.recorder != nullptr) {
      // Strided per-node heartbeat on simulated-minute boundaries: the
      // sampled counters are a pure function of sim state, so recorded
      // and unrecorded runs stay bitwise-identical.
      const int stride = options_.recorder->heartbeat_minute_stride();
      if ((t + 1 - start_) % stride == 0 || t + 1 == end_) {
        RunRecorder::Heartbeat heartbeat;
        heartbeat.slot = options_.recorder_slot;
        heartbeat.lane = static_cast<int>(k);
        heartbeat.minute = t;
        heartbeat.invocations = node.totals.invocations;
        heartbeat.cold_starts = node.totals.cold_starts;
        heartbeat.loaded_instance_minutes =
            node.totals.loaded_instance_minutes;
        heartbeat.wasted_memory_minutes = node.totals.wasted_memory_minutes;
        heartbeat.loaded_instances = static_cast<uint32_t>(node.mem.Count());
        if (node.latency != nullptr) {
          heartbeat.queue_depth = node.latency->live().queue_depth;
        }
        options_.recorder->EmitHeartbeat(heartbeat);
      }
    }
  }

  ++cursor_;
  if (stop_requested) stopped_ = true;
  return Status::OK();
}

Status ClusterSession::Step() {
  if (finished_) {
    return Status::OutOfRange("ClusterSession was consumed by Finish()");
  }
  if (stopped_) {
    return Status::Cancelled(
        "ClusterSession was stopped early at minute (=" +
        std::to_string(cursor_) + ")");
  }
  if (cursor_ >= end_) {
    return Status::OutOfRange(
        "ClusterSession is exhausted: cursor (=" + std::to_string(cursor_) +
        ") reached end_minute (=" + std::to_string(end_) + ")");
  }
  EnsureStarted();
  return StepLocked();
}

Status ClusterSession::RunUntil(int minute) {
  if (finished_) {
    return Status::OutOfRange("ClusterSession was consumed by Finish()");
  }
  const int target = std::min(minute, end_);
  while (cursor_ < target && !stopped_) {
    SPES_RETURN_NOT_OK(Step());
  }
  if (stopped_ && cursor_ < target) {
    // Same signal Step() gives: an early stop left the target unreached.
    return Status::Cancelled(
        "ClusterSession was stopped early at minute (=" +
        std::to_string(cursor_) + ") before reaching minute (=" +
        std::to_string(target) + ")");
  }
  return Status::OK();
}

Result<ClusterOutcome> ClusterSession::Finish() {
  if (finished_) {
    return Status::OutOfRange(
        "ClusterSession was already consumed by Finish()");
  }
  EnsureStarted();
  // An early stop still yields the partial-window outcome, so Cancelled
  // is success here — mirroring SimStream::FinishAll().
  const Status run = RunUntil(end_);
  if (!run.ok() && run.code() != StatusCode::kCancelled) return run;
  finished_ = true;
  if (options_.recorder != nullptr) {
    options_.recorder->EndSpan(simulate_span_);
    simulate_span_ = 0;
    options_.recorder->DecoderEvent(options_.recorder_slot,
                                    decoder_.blocks_decoded(),
                                    decoder_.invocations_decoded());
  }
  const ScopedSpan finish_span(options_.recorder, "finish",
                               options_.recorder_slot, 0);

  const size_t n = source_->num_functions();
  const std::string policy_name = nodes_[0].policy->name();

  ClusterOutcome outcome;
  outcome.reroutes = reroutes_;

  // Fleet-wide aggregate: per-function accounts and the memory series are
  // element-wise sums over nodes; every derived metric comes from the
  // sums, so a single-node cluster reproduces the plain engine exactly.
  std::vector<FunctionAccount> fleet_accounts(n);
  std::vector<uint32_t> fleet_series;
  double fleet_overhead = 0.0;
  // Fleet latency: the exact histogram merge of every node's outcome
  // (fixed bucket geometry makes the merge lossless).
  const bool has_latency = nodes_[0].latency != nullptr;
  LatencyOutcome fleet_latency;

  outcome.nodes.reserve(nodes_.size());
  for (size_t k = 0; k < nodes_.size(); ++k) {
    Node& node = nodes_[k];
    for (size_t f = 0; f < n; ++f) {
      const FunctionAccount& acc = node.accounts[f];
      FunctionAccount& agg = fleet_accounts[f];
      agg.invocations += acc.invocations;
      agg.invoked_minutes += acc.invoked_minutes;
      agg.cold_starts += acc.cold_starts;
      agg.loaded_minutes += acc.loaded_minutes;
      agg.wasted_minutes += acc.wasted_minutes;
    }
    if (fleet_series.size() < node.memory_series.size()) {
      fleet_series.resize(node.memory_series.size(), 0);
    }
    for (size_t i = 0; i < node.memory_series.size(); ++i) {
      fleet_series[i] += node.memory_series[i];
    }
    fleet_overhead += node.overhead_seconds;

    NodeOutcome out;
    out.node = static_cast<int>(k);
    switch (node.state) {
      case NodeState::kPending:
        out.final_state = "pending";
        break;
      case NodeState::kRoutable:
        out.final_state = "routable";
        break;
      case NodeState::kDraining:
        out.final_state = "draining";
        break;
      case NodeState::kFailed:
        out.final_state = "failed";
        break;
    }
    out.pressure_evictions = node.pressure_evictions;
    out.reroutes_in = node.reroutes_in;
    out.sim.metrics =
        ComputeFleetMetrics(policy_name, node.accounts, node.memory_series,
                            node.overhead_seconds);
    out.sim.accounts = std::move(node.accounts);
    out.sim.memory_series = std::move(node.memory_series);
    if (node.latency != nullptr) {
      LatencyOutcome node_latency = node.latency->TakeOutcome();
      MergeLatencyOutcome(&fleet_latency, node_latency);
      out.sim.latency =
          std::make_shared<const LatencyOutcome>(std::move(node_latency));
    }
    out.policy = std::move(node.policy);
    outcome.nodes.push_back(std::move(out));
  }

  outcome.fleet.metrics = ComputeFleetMetrics(policy_name, fleet_accounts,
                                              fleet_series, fleet_overhead);
  outcome.fleet.accounts = std::move(fleet_accounts);
  outcome.fleet.memory_series = std::move(fleet_series);
  if (has_latency) {
    FinalizeLatencyOutcome(&fleet_latency);
    outcome.fleet.latency =
        std::make_shared<const LatencyOutcome>(std::move(fleet_latency));
  }

  for (SimObserver* observer : observers_) {
    for (size_t k = 0; k < outcome.nodes.size(); ++k) {
      observer->OnStreamEnd(k, outcome.nodes[k].sim);
    }
  }
  return outcome;
}

Result<ClusterCheckpoint> ClusterSession::Checkpoint() const {
  if (finished_) {
    return Status::OutOfRange(
        "cannot Checkpoint a session consumed by Finish()");
  }
  for (size_t k = 0; k < nodes_.size(); ++k) {
    if (!nodes_[k].policy->SupportsCheckpoint()) {
      return Status::NotImplemented(
          "policy '" + nodes_[k].policy->name() + "' (node " +
          std::to_string(k) + ") does not support checkpointing");
    }
  }
  ClusterCheckpoint checkpoint;
  checkpoint.cursor = cursor_;
  checkpoint.train_minutes = options_.train_minutes;
  checkpoint.end_minute = end_;
  checkpoint.pin_executing_functions = options_.pin_executing_functions;
  checkpoint.num_functions = source_->num_functions();
  checkpoint.stopped = stopped_;
  checkpoint.reroutes = reroutes_;
  checkpoint.event_index = event_index_;
  checkpoint.assignment = assignment_;
  checkpoint.nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    ClusterCheckpoint::Node out;
    out.policy_name = node.policy->name();
    out.state = static_cast<uint8_t>(node.state);
    out.capacity = node.capacity;
    out.accounts = node.accounts;
    out.memory_series = node.memory_series;
    out.loaded = node.mem.ToBytes();
    out.last_used = node.last_used;
    out.totals = node.totals;
    out.overhead_seconds = node.overhead_seconds;
    out.pressure_evictions = node.pressure_evictions;
    out.reroutes_in = node.reroutes_in;
    SPES_ASSIGN_OR_RETURN(out.policy_state, node.policy->SaveState());
    if (node.latency != nullptr) out.latency_state = node.latency->SaveState();
    checkpoint.nodes.push_back(std::move(out));
  }
  if (options_.recorder != nullptr) {
    options_.recorder->CheckpointEvent("save", options_.recorder_slot,
                                       static_cast<uint64_t>(cursor_));
  }
  return checkpoint;
}

Status ClusterSession::Restore(const ClusterCheckpoint& checkpoint) {
  if (finished_) {
    return Status::OutOfRange(
        "cannot Restore a session consumed by Finish()");
  }
  const size_t n = source_->num_functions();
  if (checkpoint.num_functions != n) {
    return Status::InvalidArgument(
        "checkpoint num_functions (=" +
        std::to_string(checkpoint.num_functions) +
        ") does not match this session's trace (=" + std::to_string(n) + ")");
  }
  if (checkpoint.train_minutes != options_.train_minutes) {
    return Status::InvalidArgument(
        "checkpoint train_minutes (=" +
        std::to_string(checkpoint.train_minutes) +
        ") does not match this session (=" +
        std::to_string(options_.train_minutes) + ")");
  }
  if (checkpoint.end_minute != end_) {
    return Status::InvalidArgument(
        "checkpoint end_minute (=" + std::to_string(checkpoint.end_minute) +
        ") does not match this session (=" + std::to_string(end_) + ")");
  }
  if (checkpoint.pin_executing_functions !=
      options_.pin_executing_functions) {
    return Status::InvalidArgument(
        "checkpoint pin_executing_functions (=" +
        std::string(checkpoint.pin_executing_functions ? "true" : "false") +
        ") does not match this session");
  }
  if (checkpoint.cursor < start_ || checkpoint.cursor > end_) {
    return Status::InvalidArgument(
        "checkpoint cursor (=" + std::to_string(checkpoint.cursor) +
        ") is outside this session's window [" + std::to_string(start_) +
        ", " + std::to_string(end_) + "]");
  }
  if (checkpoint.event_index > events_.size()) {
    return Status::InvalidArgument(
        "checkpoint event_index (=" + std::to_string(checkpoint.event_index) +
        ") exceeds this session's timeline (=" +
        std::to_string(events_.size()) + " events)");
  }
  if (checkpoint.assignment.size() != n) {
    return Status::InvalidArgument(
        "checkpoint assignment is sized for (=" +
        std::to_string(checkpoint.assignment.size()) +
        ") functions, expected (=" + std::to_string(n) + ")");
  }
  if (checkpoint.nodes.size() != nodes_.size()) {
    return Status::InvalidArgument(
        "checkpoint has (=" + std::to_string(checkpoint.nodes.size()) +
        ") nodes but this session has (=" + std::to_string(nodes_.size()) +
        ")");
  }
  for (size_t f = 0; f < n; ++f) {
    const int32_t a = checkpoint.assignment[f];
    if (a < -1 || a >= static_cast<int32_t>(nodes_.size())) {
      return Status::InvalidArgument(
          "checkpoint assignment[" + std::to_string(f) + "] (=" +
          std::to_string(a) + ") is outside [-1, " +
          std::to_string(nodes_.size() - 1) + "]");
    }
  }
  const size_t expected_series =
      static_cast<size_t>(checkpoint.cursor - start_);
  for (size_t k = 0; k < nodes_.size(); ++k) {
    const ClusterCheckpoint::Node& in = checkpoint.nodes[k];
    if (in.policy_name != nodes_[k].policy->name()) {
      return Status::InvalidArgument(
          "checkpoint node " + std::to_string(k) + " holds policy '" +
          in.policy_name + "' but this session has '" +
          nodes_[k].policy->name() + "'");
    }
    if (in.state > static_cast<uint8_t>(NodeState::kFailed)) {
      return Status::InvalidArgument(
          "checkpoint node " + std::to_string(k) + " state (=" +
          std::to_string(in.state) + ") is not a node lifecycle state");
    }
    if (in.capacity != nodes_[k].capacity) {
      return Status::InvalidArgument(
          "checkpoint node " + std::to_string(k) + " capacity (=" +
          std::to_string(in.capacity) +
          ") does not match this session's cluster spec (=" +
          std::to_string(nodes_[k].capacity) + ")");
    }
    if (in.accounts.size() != n || in.loaded.size() != n ||
        in.last_used.size() != n) {
      return Status::InvalidArgument(
          "checkpoint node " + std::to_string(k) +
          " is sized for (=" + std::to_string(in.accounts.size()) +
          ") functions, expected (=" + std::to_string(n) + ")");
    }
    // Every node — live, pending or dead — pushes one series entry per
    // simulated minute, so the length pins the cursor for all of them.
    if (in.memory_series.size() != expected_series) {
      return Status::InvalidArgument(
          "checkpoint node " + std::to_string(k) + " memory series has (=" +
          std::to_string(in.memory_series.size()) +
          ") entries but the cursor implies (=" +
          std::to_string(expected_series) + ")");
    }
    // A LatencyLane blob is never empty, so presence of latency state is
    // exactly "the origin session ran with a latency block".
    if (in.latency_state.empty() != (nodes_[k].latency == nullptr)) {
      return Status::InvalidArgument(
          "checkpoint node " + std::to_string(k) +
          (in.latency_state.empty()
               ? " has no latency state but this session has a latency block"
               : " carries latency state but this session has no latency "
                 "block"));
    }
  }

  // Shape checks all passed; hand the policies (and latency lanes) their
  // state, then reinstate the engine-side counters. A failure here leaves
  // the session in an unspecified mix of old and new state — callers must
  // discard the session on a non-OK Restore.
  for (size_t k = 0; k < nodes_.size(); ++k) {
    SPES_RETURN_NOT_OK(
        nodes_[k].policy->RestoreState(checkpoint.nodes[k].policy_state));
    if (nodes_[k].latency != nullptr) {
      SPES_RETURN_NOT_OK(nodes_[k].latency->RestoreState(
          checkpoint.nodes[k].latency_state, expected_series));
    }
  }
  for (size_t k = 0; k < nodes_.size(); ++k) {
    const ClusterCheckpoint::Node& in = checkpoint.nodes[k];
    Node& node = nodes_[k];
    node.state = static_cast<NodeState>(in.state);
    node.accounts = in.accounts;
    node.memory_series = in.memory_series;
    MemSet mem(n);
    for (size_t f = 0; f < n; ++f) {
      if (in.loaded[f]) mem.Add(f);
    }
    node.mem = std::move(mem);
    node.last_used = in.last_used;
    node.totals = in.totals;
    node.overhead_seconds = in.overhead_seconds;
    node.pressure_evictions = in.pressure_evictions;
    node.reroutes_in = in.reroutes_in;
  }
  cursor_ = checkpoint.cursor;
  stopped_ = checkpoint.stopped;
  reroutes_ = checkpoint.reroutes;
  if (options_.recorder != nullptr) {
    options_.recorder->CheckpointEvent("restore", options_.recorder_slot,
                                       static_cast<uint64_t>(cursor_));
  }
  event_index_ = static_cast<size_t>(checkpoint.event_index);
  assignment_ = checkpoint.assignment;
  return Status::OK();
}

std::string SerializeClusterCheckpoint(const ClusterCheckpoint& checkpoint) {
  BinaryWriter w;
  w.PutBytes(kClusterCheckpointMagic);
  w.PutU32(kClusterCheckpointVersion);
  w.PutI32(checkpoint.cursor);
  w.PutI32(checkpoint.train_minutes);
  w.PutI32(checkpoint.end_minute);
  w.PutBool(checkpoint.pin_executing_functions);
  w.PutU64(checkpoint.num_functions);
  w.PutBool(checkpoint.stopped);
  w.PutU64(checkpoint.reroutes);
  w.PutU64(checkpoint.event_index);
  w.PutU64(checkpoint.assignment.size());
  for (int32_t a : checkpoint.assignment) w.PutI32(a);
  w.PutU64(checkpoint.nodes.size());
  for (const ClusterCheckpoint::Node& node : checkpoint.nodes) {
    w.PutBytes(node.policy_name);
    w.PutU8(node.state);
    w.PutI32(node.capacity);
    w.PutU64(node.accounts.size());
    for (const FunctionAccount& acc : node.accounts) {
      w.PutU64(acc.invocations);
      w.PutU64(acc.invoked_minutes);
      w.PutU64(acc.cold_starts);
      w.PutU64(acc.loaded_minutes);
      w.PutU64(acc.wasted_minutes);
    }
    w.PutU64(node.memory_series.size());
    for (uint32_t v : node.memory_series) w.PutU32(v);
    w.PutU64(node.loaded.size());
    for (uint8_t v : node.loaded) w.PutU8(v);
    w.PutU64(node.last_used.size());
    for (int32_t v : node.last_used) w.PutI32(v);
    w.PutU64(node.totals.invocations);
    w.PutU64(node.totals.cold_starts);
    w.PutU64(node.totals.loaded_instance_minutes);
    w.PutU64(node.totals.wasted_memory_minutes);
    w.PutDouble(node.overhead_seconds);
    w.PutU64(node.pressure_evictions);
    w.PutU64(node.reroutes_in);
    w.PutBytes(node.policy_state);
    w.PutBytes(node.latency_state);
  }
  return w.Take();
}

Result<ClusterCheckpoint> ParseClusterCheckpoint(const std::string& bytes) {
  BinaryReader r(bytes);
  SPES_ASSIGN_OR_RETURN(const std::string magic, r.Bytes());
  if (magic != kClusterCheckpointMagic) {
    return Status::InvalidArgument(
        "not a SPES cluster checkpoint (bad magic tag)");
  }
  SPES_ASSIGN_OR_RETURN(const uint32_t version, r.U32());
  if (version != kClusterCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported cluster checkpoint version (=" +
        std::to_string(version) + "), expected (=" +
        std::to_string(kClusterCheckpointVersion) + ")");
  }
  ClusterCheckpoint checkpoint;
  SPES_ASSIGN_OR_RETURN(checkpoint.cursor, r.I32());
  SPES_ASSIGN_OR_RETURN(checkpoint.train_minutes, r.I32());
  SPES_ASSIGN_OR_RETURN(checkpoint.end_minute, r.I32());
  SPES_ASSIGN_OR_RETURN(checkpoint.pin_executing_functions, r.Bool());
  SPES_ASSIGN_OR_RETURN(checkpoint.num_functions, r.U64());
  SPES_ASSIGN_OR_RETURN(checkpoint.stopped, r.Bool());
  SPES_ASSIGN_OR_RETURN(checkpoint.reroutes, r.U64());
  SPES_ASSIGN_OR_RETURN(checkpoint.event_index, r.U64());
  SPES_ASSIGN_OR_RETURN(const uint64_t num_assignment, r.Length(4));
  checkpoint.assignment.reserve(num_assignment);
  for (uint64_t f = 0; f < num_assignment; ++f) {
    SPES_ASSIGN_OR_RETURN(const int32_t a, r.I32());
    checkpoint.assignment.push_back(a);
  }
  // Minimal encoded node: 117 bytes (empty name/blob/vector prefixes +
  // state + capacity + totals + overhead + cluster counters) — bounds
  // reserve() against corrupt counts.
  SPES_ASSIGN_OR_RETURN(const uint64_t num_nodes, r.Length(117));
  checkpoint.nodes.reserve(num_nodes);
  for (uint64_t k = 0; k < num_nodes; ++k) {
    ClusterCheckpoint::Node node;
    SPES_ASSIGN_OR_RETURN(node.policy_name, r.Bytes());
    SPES_ASSIGN_OR_RETURN(node.state, r.U8());
    SPES_ASSIGN_OR_RETURN(node.capacity, r.I32());
    SPES_ASSIGN_OR_RETURN(const uint64_t num_accounts, r.Length(40));
    node.accounts.reserve(num_accounts);
    for (uint64_t i = 0; i < num_accounts; ++i) {
      FunctionAccount acc;
      SPES_ASSIGN_OR_RETURN(acc.invocations, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.invoked_minutes, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.cold_starts, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.loaded_minutes, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.wasted_minutes, r.U64());
      node.accounts.push_back(acc);
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t num_series, r.Length(4));
    node.memory_series.reserve(num_series);
    for (uint64_t i = 0; i < num_series; ++i) {
      SPES_ASSIGN_OR_RETURN(const uint32_t v, r.U32());
      node.memory_series.push_back(v);
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t num_loaded, r.Length(1));
    node.loaded.reserve(num_loaded);
    for (uint64_t i = 0; i < num_loaded; ++i) {
      SPES_ASSIGN_OR_RETURN(const uint8_t v, r.U8());
      node.loaded.push_back(v);
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t num_last_used, r.Length(4));
    node.last_used.reserve(num_last_used);
    for (uint64_t i = 0; i < num_last_used; ++i) {
      SPES_ASSIGN_OR_RETURN(const int32_t v, r.I32());
      node.last_used.push_back(v);
    }
    SPES_ASSIGN_OR_RETURN(node.totals.invocations, r.U64());
    SPES_ASSIGN_OR_RETURN(node.totals.cold_starts, r.U64());
    SPES_ASSIGN_OR_RETURN(node.totals.loaded_instance_minutes, r.U64());
    SPES_ASSIGN_OR_RETURN(node.totals.wasted_memory_minutes, r.U64());
    SPES_ASSIGN_OR_RETURN(node.overhead_seconds, r.Double());
    SPES_ASSIGN_OR_RETURN(node.pressure_evictions, r.U64());
    SPES_ASSIGN_OR_RETURN(node.reroutes_in, r.U64());
    SPES_ASSIGN_OR_RETURN(node.policy_state, r.Bytes());
    SPES_ASSIGN_OR_RETURN(node.latency_state, r.Bytes());
    checkpoint.nodes.push_back(std::move(node));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "cluster checkpoint has " + std::to_string(r.remaining()) +
        " trailing bytes");
  }
  return checkpoint;
}

}  // namespace spes
