#include "cluster/router.h"

#include <utility>

namespace spes {

Result<RouterSpec> ParseRouterSpec(const std::string& text) {
  return ParseNamedSpec(text, "router");
}

std::string FormatRouterSpec(const RouterSpec& spec) {
  return FormatNamedSpec(spec);
}

Status RouterRegistry::Register(Entry entry) {
  if (!IsSpecIdentifier(entry.canonical_name)) {
    return Status::InvalidArgument("router canonical name '" +
                                   entry.canonical_name +
                                   "' is not an identifier");
  }
  if (!entry.factory) {
    return Status::InvalidArgument("router '" + entry.canonical_name +
                                   "' registered without a factory");
  }
  SPES_RETURN_NOT_OK(
      ValidateParamSchema("router", entry.canonical_name, entry.params));
  const std::string name = entry.canonical_name;
  if (!entries_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("router '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Router>> RouterRegistry::Create(
    const RouterSpec& spec) const {
  if (spec.name.empty()) {
    return Status::InvalidArgument("RouterSpec.name must not be empty");
  }
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    return Status::NotFound("unknown router '" + spec.name +
                            "'; registered routers: " + JoinNames(Names()));
  }
  SPES_ASSIGN_OR_RETURN(RouterParams params,
                        MergeSpecParams("router", spec, entry->params));
  return entry->factory(params);
}

Result<std::unique_ptr<Router>> RouterRegistry::CreateFromString(
    const std::string& text) const {
  SPES_ASSIGN_OR_RETURN(const RouterSpec spec, ParseRouterSpec(text));
  return Create(spec);
}

bool RouterRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> RouterRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

const RouterRegistry::Entry* RouterRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

RouterRegistry& RouterRegistry::Global() {
  static RouterRegistry* registry = [] {
    auto* r = new RouterRegistry();
    RegisterBuiltinRouters(*r);
    return r;
  }();
  return *registry;
}

}  // namespace spes
