// Invocation routing for simulated clusters: which node serves a function.
//
// A Router is the cluster counterpart of a provisioning Policy: a small,
// stateless strategy object consulted once per arriving function per
// minute to pick the node that serves it. Routers self-register in a
// RouterRegistry mirroring PolicyRegistry (core/policy_registry.h):
// canonical lowercase names, typed ParamSpec schemas with defaults, and
// Result<> errors naming the offending field, so a ClusterSpec names its
// router as data — `hash`, `least_loaded{}`, `locality{pressure=0.9}`.
//
// Routers are deliberately stateless: the sticky function→node assignment
// map lives in the ClusterSession (cluster/cluster.h), which passes each
// decision the function's previous node. Determinism therefore only
// requires that Route() be a pure function of its context.

#ifndef SPES_CLUSTER_ROUTER_H_
#define SPES_CLUSTER_ROUTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/param_spec.h"

namespace spes {

/// \brief A router as data: canonical name plus parameter overrides.
/// Parameters not listed take the registered defaults.
using RouterSpec = NamedSpec;

/// \brief Validated parameters handed to a registered router factory.
using RouterParams = ParamMap;

/// \brief Parses `name{param=value,...}` into a RouterSpec (same grammar
/// as policy specs; errors say "router spec ...").
Result<RouterSpec> ParseRouterSpec(const std::string& text);

/// \brief Inverse of ParseRouterSpec: canonical `name{k=v,...}` form with
/// keys in lexicographic order; just `name` when no overrides.
std::string FormatRouterSpec(const RouterSpec& spec);

/// \brief Live, read-only facts about one node at routing time.
struct NodeView {
  int node = 0;          ///< stable node id (index into the cluster)
  bool routable = true;  ///< accepts new assignments this minute
  int capacity = 0;      ///< instance capacity; 0 means uncapped
  /// Loaded instances at the start of the minute plus arrivals already
  /// routed here this minute that will load a new instance — so routing
  /// an intra-minute burst spreads it instead of dog-piling one node.
  size_t projected_load = 0;
};

/// \brief Everything a router may consult for one routing decision.
/// Borrowed pointers are valid only for the duration of the Route() call.
struct RoutingContext {
  uint32_t function = 0;                       ///< fleet index
  const std::string* function_name = nullptr;  ///< hashed trace name
  /// The function's sticky node from earlier minutes, or -1 when it has
  /// none (first arrival, or its node drained/failed away).
  int previous_node = -1;
  /// Every node of the cluster, indexed by node id; at least one entry is
  /// routable (the session guarantees it).
  const std::vector<NodeView>* nodes = nullptr;
};

/// \brief Interface implemented by every routing strategy. Route() must
/// return the id of a routable node and must be a pure function of the
/// context (no internal state), so cluster runs stay deterministic.
class Router {
 public:
  virtual ~Router() = default;

  /// \brief Human-readable router name used in reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// \brief Picks the node that serves this arrival.
  [[nodiscard]] virtual int Route(const RoutingContext& context) const = 0;
};

/// \brief Builds a router instance from validated parameters. May reject
/// out-of-domain values (e.g. a pressure outside (0, 1]) with a Status.
using RouterFactory =
    std::function<Result<std::unique_ptr<Router>>(const RouterParams&)>;

/// \brief Name -> (schema, factory) table for cluster routers.
///
/// Global() holds every built-in router (`hash`, `least_loaded`,
/// `locality`); additional registries can be constructed freely, e.g. by
/// tests.
class RouterRegistry {
 public:
  /// \brief One registered router.
  struct Entry {
    /// Canonical lowercase identifier, e.g. "least_loaded".
    std::string canonical_name;
    /// One-line human description for catalogs.
    std::string summary;
    /// Accepted parameters with defaults; order is the display order.
    std::vector<ParamSpec> params;
    RouterFactory factory;
  };

  /// \brief Adds an entry. Fails with AlreadyExists when the name is taken
  /// and InvalidArgument on an empty name, a missing factory, or a
  /// duplicated parameter declaration.
  Status Register(Entry entry);

  /// \brief Builds a router from `spec`: unknown names yield NotFound
  /// (listing the registered alternatives); unknown parameters, type
  /// mismatches (ints coerce to doubles, nothing else converts) and
  /// rejected values yield InvalidArgument naming the offending field.
  [[nodiscard]] Result<std::unique_ptr<Router>> Create(const RouterSpec& spec) const;

  /// \brief Convenience: Create(ParseRouterSpec(text)).
  [[nodiscard]] Result<std::unique_ptr<Router>> CreateFromString(
      const std::string& text) const;

  /// \brief True when `name` is registered.
  [[nodiscard]] bool Contains(const std::string& name) const;

  /// \brief Registered canonical names in lexicographic order.
  [[nodiscard]] std::vector<std::string> Names() const;

  /// \brief Introspection: the entry for `name`, or nullptr when unknown.
  [[nodiscard]] const Entry* Find(const std::string& name) const;

  /// \brief The process-wide registry, with all built-in routers
  /// registered on first use. Registration of additional entries is not
  /// synchronized; do it before fanning out worker threads.
  static RouterRegistry& Global();

 private:
  std::map<std::string, Entry> entries_;
};

/// \brief Registers the built-in routers (called by Global()).
void RegisterBuiltinRouters(RouterRegistry& registry);

}  // namespace spes

#endif  // SPES_CLUSTER_ROUTER_H_
