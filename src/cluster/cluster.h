// Multi-node cluster simulation on top of the SimStream engine semantics.
//
// The single-fleet engine (sim/stream.h) models the paper's §V-A setting:
// one node with uncapped memory holds every instance. A ClusterSpec lifts
// that to what production FaaS platforms actually run: N invoker nodes,
// each with its own memory capacity and its own policy instance, with a
// pluggable Router (cluster/router.h) deciding which node serves each
// arriving function. A ClusterSession realizes the spec over a trace and
// drives one engine lane per node in lockstep over a single shared
// arrival decode per minute — per node, a minute is processed exactly
// like a SimStream lane (cold-start accounting, execution pinning, policy
// step, residency accounting), so a single-node `hash` cluster reproduces
// the non-cluster engine bit for bit.
//
// Two cluster-only mechanisms sit on top of the lane semantics:
//   * per-node memory pressure: when a node ends its minute above its
//     instance capacity, idle instances are evicted cross-function in
//     LRU order (executing instances are never evicted while pinning is
//     on) and counted as pressure evictions;
//   * a node-event timeline — `add{at=}`, `drain{at=,node=}` and
//     `fail{at=,node=}` — that changes the node set mid-window: failed
//     nodes lose their memory instantly, drained nodes keep serving the
//     functions still warm on them but accept no new assignments, and
//     either kind of departure invalidates sticky assignments so
//     re-routed functions pay cold starts on their new homes.

#ifndef SPES_CLUSTER_CLUSTER_H_
#define SPES_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common/status.h"
#include "core/policy_registry.h"
#include "sim/accounting.h"
#include "sim/columnar.h"
#include "sim/engine.h"
#include "sim/memset.h"
#include "sim/observer.h"
#include "sim/policy.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace spes {

/// \brief One node lifecycle change, applied when the cluster cursor
/// reaches `minute` (events scheduled before the simulated window apply
/// at its first minute).
struct NodeEvent {
  enum class Kind {
    kAdd,    ///< a new, empty, routable node joins the cluster
    kDrain,  ///< the node stops accepting new assignments; warm
             ///< functions keep being served there until their instance
             ///< is evicted, then re-route
    kFail,   ///< the node dies: memory cleared instantly, every arrival
             ///< it served re-routes and cold-starts elsewhere
  };

  int minute = 0;
  Kind kind = Kind::kFail;
  /// Target node id for drain/fail; ignored for add (the new node takes
  /// the next free id, in timeline order).
  int node = -1;
  /// Add only: the new node's instance capacity; -1 means the cluster's
  /// default `ClusterSpec.node_capacity`.
  int capacity = -1;
};

/// \brief Stable lowercase name of an event kind ("add", "drain", "fail").
const char* NodeEventKindToString(NodeEvent::Kind kind);

/// \brief Parses one event in the registry spec grammar:
///   `fail{at=2980,node=1}` | `drain{at=2900,node=0}` |
///   `add{at=3000,capacity=40}`
/// `at` is required; `node` is required for drain/fail and rejected for
/// add; `capacity` is accepted only by add. Unknown names and parameters
/// yield InvalidArgument naming the field.
Result<NodeEvent> ParseNodeEvent(const std::string& text);

/// \brief Inverse of ParseNodeEvent: canonical `kind{at=..,...}` form.
std::string FormatNodeEvent(const NodeEvent& event);

/// \brief Parses a '|'-separated event timeline, e.g.
/// `drain{at=2900,node=0} | add{at=3000}`. Whitespace around '|' is
/// ignored; an empty string yields an empty timeline.
Result<std::vector<NodeEvent>> ParseNodeEventTimeline(
    const std::string& text);

/// \brief Inverse of ParseNodeEventTimeline: events joined with " | ".
std::string FormatNodeEventTimeline(const std::vector<NodeEvent>& events);

/// \brief A simulated cluster as data: how many nodes, how much memory
/// each, which router, and what happens to the node set mid-window.
struct ClusterSpec {
  /// Nodes present from the first minute (>= 1).
  int nodes = 1;
  /// Instance capacity per node; 0 means uncapped (the paper's setting).
  int node_capacity = 0;
  /// Routing strategy, built through RouterRegistry::Global().
  RouterSpec router{"hash", {}};
  /// Lifecycle timeline, sorted by minute (ties apply in list order).
  std::vector<NodeEvent> events;
};

/// \brief Structural validation: nodes >= 1, capacity >= 0, a non-empty
/// router name, and a coherent event timeline (sorted minutes, targets
/// that exist and are still alive when their event fires, and at least
/// one routable node at every point). Router/policy registry problems
/// surface later, from ClusterSession::Create. Errors name the offending
/// field or event index.
Status ValidateClusterSpec(const ClusterSpec& spec);

/// \brief One node's share of a cluster run.
struct NodeOutcome {
  int node = 0;
  /// Lifecycle state at the end of the run: "routable", "draining",
  /// "failed", or "pending" for an add event that never fired.
  std::string final_state;
  /// Per-node accounts, memory series and FleetMetrics — the same shape
  /// as a single-fleet run, restricted to what this node served/held.
  SimulationOutcome sim;
  /// Instances evicted because the node exceeded its capacity.
  uint64_t pressure_evictions = 0;
  /// Sticky assignments that moved onto this node from another node
  /// (re-routes; first-ever assignments are not counted).
  uint64_t reroutes_in = 0;
  /// The node's trained policy instance, kept alive for inspection.
  std::unique_ptr<Policy> policy;
};

/// \brief Full outcome of a cluster run: the fleet-wide aggregate (the
/// element-wise sum of the per-node accounts and memory series, with
/// metrics derived from the sums) plus every node's breakdown. When the
/// run had a latency block, `fleet.latency` is the exact histogram merge
/// of every node's latency outcome.
struct ClusterOutcome {
  SimulationOutcome fleet;
  std::vector<NodeOutcome> nodes;  ///< in node-id order, added nodes last
  /// Total sticky assignments that moved between nodes mid-window.
  uint64_t reroutes = 0;
};

/// \brief A resumable snapshot of a ClusterSession: the cursor, the
/// routing state (sticky assignments, consumed events, reroute counters)
/// and, per node, every engine counter plus the policy's and latency
/// lane's serialized state. Produced by ClusterSession::Checkpoint(),
/// consumed by ClusterSession::Restore();
/// SerializeClusterCheckpoint()/ParseClusterCheckpoint() round-trip it
/// through bytes ("SPESCLCK" magic).
struct ClusterCheckpoint {
  /// Next minute to simulate when resumed.
  int cursor = 0;
  /// The window the session was created with (validated on Restore).
  int train_minutes = 0;
  int end_minute = 0;
  bool pin_executing_functions = true;
  uint64_t num_functions = 0;
  bool stopped = false;
  /// Routing state at the snapshot.
  uint64_t reroutes = 0;
  uint64_t event_index = 0;  ///< timeline events already applied
  std::vector<int32_t> assignment;  ///< sticky function->node; -1 = none

  struct Node {
    std::string policy_name;  ///< Policy::name(), validated on Restore
    /// Lifecycle state: 0 pending, 1 routable, 2 draining, 3 failed.
    uint8_t state = 1;
    int capacity = 0;  ///< structural; validated (not restored)
    std::vector<FunctionAccount> accounts;
    std::vector<uint32_t> memory_series;
    std::vector<uint8_t> loaded;     ///< MemSet membership bytes
    std::vector<int32_t> last_used;  ///< LRU clock; -1 = never
    LiveTotals totals;
    double overhead_seconds = 0.0;
    uint64_t pressure_evictions = 0;
    uint64_t reroutes_in = 0;
    std::string policy_state;   ///< Policy::SaveState() blob
    std::string latency_state;  ///< LatencyLane::SaveState(); empty = none
  };
  std::vector<Node> nodes;
};

/// \brief Byte form of a cluster checkpoint (magic-tagged, little-endian).
std::string SerializeClusterCheckpoint(const ClusterCheckpoint& checkpoint);

/// \brief Parses bytes produced by SerializeClusterCheckpoint(); truncated
/// or corrupt input yields InvalidArgument instead of undefined behaviour.
Result<ClusterCheckpoint> ParseClusterCheckpoint(const std::string& bytes);

/// \brief An open, incrementally drivable cluster simulation. Create()
/// builds one policy instance per node (including nodes that join later)
/// from `policy` through PolicyRegistry::Global(), trains each on the
/// trace prefix, builds the router, and positions the cursor at the
/// first simulated minute. The trace and observers are borrowed and must
/// outlive the session. Not thread-safe; drive each session from one
/// thread.
class ClusterSession {
 public:
  static Result<ClusterSession> Create(const Trace& trace,
                                       const ClusterSpec& cluster,
                                       const PolicySpec& policy,
                                       const SimOptions& options);

  /// \brief Streamed form over any TraceSource (e.g. a packed trace file):
  /// arrivals are pulled in chunked minute windows instead of from a
  /// realized Trace. The train prefix is materialized ONCE and shared by
  /// every node's policy; policies whose RequiresFullTrace() is true are
  /// rejected with InvalidArgument. The source must outlive the session.
  /// Outcomes are bitwise-identical to the in-memory overload.
  static Result<ClusterSession> Create(TraceSource& source,
                                       const ClusterSpec& cluster,
                                       const PolicySpec& policy,
                                       const SimOptions& options);

  /// \brief Attaches a per-minute observer (borrowed). Observers see one
  /// MinuteView per *live* node per minute, with MinuteView::lane equal
  /// to the node id; StreamInfo::num_lanes is the total node-id space
  /// (initial nodes plus scheduled adds). Returning false stops the
  /// session after the current minute, exactly as on a SimStream.
  void AddObserver(SimObserver* observer);

  /// \name Cursor state
  /// @{
  [[nodiscard]] int cursor() const { return cursor_; }       ///< next minute to run
  [[nodiscard]] int start_minute() const { return start_; }  ///< == train_minutes
  [[nodiscard]] int end_minute() const { return end_; }      ///< resolved end
  /// Total node-id space: initial nodes plus scheduled add events.
  [[nodiscard]] size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const Policy* policy(size_t node) const { return nodes_[node].policy.get(); }
  /// Minutes decoded so far: one arrival decode serves every node.
  [[nodiscard]] int64_t minutes_decoded() const { return minutes_decoded_; }
  [[nodiscard]] bool done() const { return finished_ || stopped_ || cursor_ >= end_; }
  [[nodiscard]] bool stopped_early() const { return stopped_; }
  /// @}

  /// \brief Simulates one minute across all live nodes. Cancelled once
  /// the session was stopped early by an observer, OutOfRange once it is
  /// exhausted or consumed by Finish().
  Status Step();

  /// \brief Steps until the cursor reaches min(minute, end_minute()).
  /// Cancelled when an observer stop halts the session short of the
  /// target, matching Step(); OutOfRange once consumed by Finish().
  Status RunUntil(int minute);

  /// \brief Runs to the end of the window (unless already stopped) and
  /// returns the aggregated + per-node outcome, consuming the session.
  Result<ClusterOutcome> Finish();

  /// \brief Snapshot of the cursor, routing state, per-node counters and
  /// policy/latency state. Every node's policy must support
  /// checkpointing (NotImplemented naming the first node that does not,
  /// otherwise). Fails once the session was consumed by Finish().
  [[nodiscard]] Result<ClusterCheckpoint> Checkpoint() const;

  /// \brief Rewinds/forwards this session to `checkpoint`. The session
  /// must have been created over the same trace, window, cluster spec and
  /// policy as the checkpoint's origin (validated field by field,
  /// InvalidArgument naming the mismatch). On a non-OK Restore the
  /// session may hold a mix of old and new state — discard it.
  Status Restore(const ClusterCheckpoint& checkpoint);

 private:
  enum class NodeState {
    kPending,   ///< scheduled by an add event, not joined yet
    kRoutable,  ///< serving and accepting new assignments
    kDraining,  ///< serving warm functions only
    kFailed,    ///< gone; memory lost
  };

  struct Node {
    std::unique_ptr<Policy> policy;
    NodeState state = NodeState::kRoutable;
    int capacity = 0;  ///< 0 = uncapped
    MemSet mem{0};
    std::vector<FunctionAccount> accounts;
    std::vector<uint32_t> memory_series;
    std::vector<int32_t> last_used;  ///< minute f last arrived here; -1 never
    LiveTotals totals;
    double overhead_seconds = 0.0;
    uint64_t pressure_evictions = 0;
    uint64_t reroutes_in = 0;
    /// This minute's arrivals routed here (scratch, rebuilt per minute).
    std::vector<Invocation> arrivals;
    /// Per-node latency/queue state when SimOptions.latency is set; null
    /// (and the latency path untouched) otherwise. A failed node's queue
    /// keeps draining — admitted requests complete even if the node dies
    /// later in the window.
    std::unique_ptr<LatencyLane> latency;
    /// Scratch: per-arrival cold flags for the latency path.
    std::vector<uint8_t> cold_flags;
  };

  ClusterSession(TraceSource* source, std::unique_ptr<TraceSource> owned,
                 const SimOptions& options, int end);

  /// Shared body of the Create() overloads. `full_trace` is non-null for
  /// the in-memory path (policies then train on the real full trace);
  /// when null, the train prefix is materialized from `source` and
  /// RequiresFullTrace() policies are rejected.
  static Result<ClusterSession> CreateImpl(TraceSource* source,
                                           std::unique_ptr<TraceSource> owned,
                                           const Trace* full_trace,
                                           const ClusterSpec& cluster,
                                           const PolicySpec& policy,
                                           const SimOptions& options);

  [[nodiscard]] bool NodeLive(const Node& node) const {
    return node.state == NodeState::kRoutable ||
           node.state == NodeState::kDraining;
  }

  /// Applies every event scheduled at or before minute `t`.
  void ApplyEvents(int t);

  /// Delivers OnStreamStart exactly once, before any other callback.
  void EnsureStarted();

  /// One simulated minute: shared decode, routing, then one engine-lane
  /// step plus pressure eviction per live node. Internal on a router
  /// that returns an unroutable node.
  Status StepLocked();

  /// Evicts idle instances in LRU order until `node` fits its capacity.
  void EnforceCapacity(Node* node, int t);

  /// The in-memory adapter when created from a Trace; null for borrowed
  /// sources. Heap-allocated so source_ stays stable across moves.
  std::unique_ptr<TraceSource> owned_source_;
  TraceSource* source_;
  SimOptions options_;
  int start_;
  int end_;
  int cursor_;
  bool started_ = false;
  bool stopped_ = false;
  bool finished_ = false;
  int64_t minutes_decoded_ = 0;
  uint64_t reroutes_ = 0;
  std::unique_ptr<Router> router_;
  std::vector<Node> nodes_;
  std::vector<NodeEvent> events_;  ///< sorted; consumed via event_index_
  size_t event_index_ = 0;
  /// Sticky function->node assignment; -1 = unassigned.
  std::vector<int32_t> assignment_;
  std::vector<SimObserver*> observers_;

  /// Block-transposed minute-major decode shared by every node.
  ArrivalDecoder decoder_;

  // Per-minute scratch, reused across steps.
  std::vector<Invocation> arrivals_;
  std::vector<NodeView> views_;

  /// Per-request sampling keys shared by every node's latency lane; null
  /// when the latency subsystem is disabled.
  std::shared_ptr<const std::vector<uint64_t>> latency_hashes_;

  /// Open "simulate" span token when SimOptions.recorder is set; closed
  /// by Finish(). Observability only — never feeds sim state.
  uint64_t simulate_span_ = 0;
};

}  // namespace spes

#endif  // SPES_CLUSTER_CLUSTER_H_
