// The built-in routing strategies: hash, least_loaded, locality.
//
// All three are pure functions of the RoutingContext. Tie-breaking is
// always "lowest node id", and the hash is FNV-1a over the function name
// (the same stable keying the trace transforms use), so every strategy is
// bitwise-deterministic across runs and independent of fleet ordering.

#include "cluster/router.h"

#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"

namespace spes {

namespace {

// Placement hashes use MixNameSeed (common/rng.h) — the same stable
// name-keyed mixing the stochastic trace transforms draw their
// per-function streams from.

/// The routable node with the smallest projected load; ties go to the
/// lowest id. `require_headroom` restricts the search to nodes whose
/// projected load is below `pressure` x capacity (uncapped nodes always
/// qualify); returns -1 when no routable node passes the restriction.
int LeastLoaded(const std::vector<NodeView>& nodes, bool require_headroom,
                double pressure) {
  int best = -1;
  size_t best_load = std::numeric_limits<size_t>::max();
  for (const NodeView& node : nodes) {
    if (!node.routable) continue;
    if (require_headroom && node.capacity > 0 &&
        static_cast<double>(node.projected_load) >=
            pressure * static_cast<double>(node.capacity)) {
      continue;
    }
    if (node.projected_load < best_load) {
      best = node.node;
      best_load = node.projected_load;
    }
  }
  return best;
}

/// `hash` — stable function→node assignment: the node is a pure function
/// of (function name, seed, routable set), so the mapping never moves
/// while the node set is stable. When the routable set changes (fail,
/// drain, add) the modulus changes and assignments reshuffle — the
/// classic mod-N rehash cost, surfaced as re-routed cold starts.
class HashRouter : public Router {
 public:
  explicit HashRouter(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "hash"; }

  int Route(const RoutingContext& context) const override {
    const std::vector<NodeView>& nodes = *context.nodes;
    size_t routable = 0;
    for (const NodeView& node : nodes) {
      if (node.routable) ++routable;
    }
    size_t pick = MixNameSeed(*context.function_name, seed_) % routable;
    for (const NodeView& node : nodes) {
      if (!node.routable) continue;
      if (pick == 0) return node.node;
      --pick;
    }
    return -1;  // unreachable: the session guarantees a routable node
  }

 private:
  uint64_t seed_;
};

/// `least_loaded` — route by live memory: a function keeps its sticky
/// node while it remains routable; (re)assignments go to the routable
/// node with the fewest projected instances.
class LeastLoadedRouter : public Router {
 public:
  std::string name() const override { return "least_loaded"; }

  int Route(const RoutingContext& context) const override {
    if (context.previous_node >= 0) return context.previous_node;
    return LeastLoaded(*context.nodes, /*require_headroom=*/false, 0.0);
  }
};

/// `locality` — sticky with spill-over on pressure: a function stays on
/// its node while that node has headroom (projected load below
/// `pressure` x capacity); otherwise the arrival spills to the least
/// loaded node with headroom (or the overall least loaded when every
/// node is pressured) and that node becomes the new sticky home. First
/// arrivals are hash-spread so the fleet starts out spatially balanced.
class LocalityRouter : public Router {
 public:
  LocalityRouter(double pressure, uint64_t seed)
      : pressure_(pressure), seed_(seed) {}

  std::string name() const override { return "locality"; }

  int Route(const RoutingContext& context) const override {
    const std::vector<NodeView>& nodes = *context.nodes;
    if (context.previous_node >= 0) {
      const NodeView& prev = nodes[static_cast<size_t>(context.previous_node)];
      if (prev.capacity == 0 ||
          static_cast<double>(prev.projected_load) <
              pressure_ * static_cast<double>(prev.capacity)) {
        return prev.node;
      }
      const int spill =
          LeastLoaded(nodes, /*require_headroom=*/true, pressure_);
      return spill >= 0 ? spill
                        : LeastLoaded(nodes, /*require_headroom=*/false, 0.0);
    }
    // No sticky home yet: hash-spread, preferring nodes with headroom.
    size_t candidates = 0;
    for (const NodeView& node : nodes) {
      if (node.routable) ++candidates;
    }
    size_t pick = MixNameSeed(*context.function_name, seed_) % candidates;
    for (const NodeView& node : nodes) {
      if (!node.routable) continue;
      if (pick == 0) {
        if (node.capacity == 0 ||
            static_cast<double>(node.projected_load) <
                pressure_ * static_cast<double>(node.capacity)) {
          return node.node;
        }
        const int spill =
            LeastLoaded(nodes, /*require_headroom=*/true, pressure_);
        return spill >= 0
                   ? spill
                   : LeastLoaded(nodes, /*require_headroom=*/false, 0.0);
      }
      --pick;
    }
    return -1;  // unreachable: the session guarantees a routable node
  }

 private:
  double pressure_;
  uint64_t seed_;
};

}  // namespace

void RegisterBuiltinRouters(RouterRegistry& registry) {
  registry
      .Register(
          {"hash",
           "stable function->node assignment by name hash (mod-N rehash "
           "when the node set changes)",
           {{"seed", ParamType::kInt, ParamValue(0),
             "hash seed; distinct seeds give distinct stable placements"}},
           [](const RouterParams& params) -> Result<std::unique_ptr<Router>> {
             SPES_ASSIGN_OR_RETURN(
                 const int64_t seed,
                 IntParamInRange(params, "hash", "seed", 0,
                                 std::numeric_limits<int64_t>::max()));
             return std::unique_ptr<Router>(
                 new HashRouter(static_cast<uint64_t>(seed)));
           }})
      .CheckOK();
  registry
      .Register(
          {"least_loaded",
           "sticky assignment; (re)assignments go to the node with the "
           "fewest live instances",
           {},
           [](const RouterParams&) -> Result<std::unique_ptr<Router>> {
             return std::unique_ptr<Router>(new LeastLoadedRouter());
           }})
      .CheckOK();
  registry
      .Register(
          {"locality",
           "sticky while the home node has headroom; spills to the least "
           "loaded node under memory pressure",
           {{"pressure", ParamType::kDouble, ParamValue(1.0),
             "spill threshold as a fraction of node capacity, in (0, 1]"},
            {"seed", ParamType::kInt, ParamValue(0),
             "hash seed for the initial spread of first arrivals"}},
           [](const RouterParams& params) -> Result<std::unique_ptr<Router>> {
             SPES_ASSIGN_OR_RETURN(
                 const double pressure,
                 DoubleParamInRange(params, "locality", "pressure", 1e-9,
                                    1.0));
             SPES_ASSIGN_OR_RETURN(
                 const int64_t seed,
                 IntParamInRange(params, "locality", "seed", 0,
                                 std::numeric_limits<int64_t>::max()));
             return std::unique_ptr<Router>(new LocalityRouter(
                 pressure, static_cast<uint64_t>(seed)));
           }})
      .CheckOK();
}

}  // namespace spes
