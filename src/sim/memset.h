// MemSet: the set of function instances currently loaded in memory.
//
// This mirrors the `MemSet` of the paper's Algorithm 1: policies add
// (pre-load) and remove (evict) function ids; the simulation engine reads
// membership to account cold starts, wasted-memory time and memory usage.
//
// Membership is stored as a packed bitset (64 functions per uint64_t) so
// the engine's residency pass and policy eviction scans run word-at-a-time
// over dense memory instead of striding a byte per function. words() exposes
// the packed view; ForEachLoaded() visits loaded ids in ascending order.

#ifndef SPES_SIM_MEMSET_H_
#define SPES_SIM_MEMSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spes {

/// \brief Dense membership set over function indices [0, n).
class MemSet {
 public:
  explicit MemSet(size_t num_functions)
      : num_functions_(num_functions),
        words_((num_functions + 63) / 64, 0),
        count_(0) {}

  /// \brief Loads function `f`; no-op if already loaded.
  void Add(size_t f) {
    assert(f < num_functions_ && "MemSet::Add: function id out of range");
    uint64_t& word = words_[f >> 6];
    const uint64_t bit = uint64_t{1} << (f & 63);
    count_ += (word & bit) == 0;
    word |= bit;
  }

  /// \brief Evicts function `f`; no-op if not loaded.
  void Remove(size_t f) {
    assert(f < num_functions_ && "MemSet::Remove: function id out of range");
    uint64_t& word = words_[f >> 6];
    const uint64_t bit = uint64_t{1} << (f & 63);
    count_ -= (word & bit) != 0;
    word &= ~bit;
  }

  /// \brief True when function `f` is currently loaded.
  [[nodiscard]] bool Contains(size_t f) const {
    assert(f < num_functions_ &&
           "MemSet::Contains: function id out of range");
    return (words_[f >> 6] >> (f & 63)) & 1;
  }

  /// \brief Number of loaded instances.
  [[nodiscard]] size_t Count() const { return count_; }

  /// \brief Total number of addressable functions [0, n).
  [[nodiscard]] size_t Capacity() const { return num_functions_; }

  /// \brief Packed membership words (bit f%64 of word f/64 = loaded), for
  /// word-at-a-time scans. Bits at or above Capacity() are always zero.
  [[nodiscard]] const std::vector<uint64_t>& words() const { return words_; }

  /// \brief Calls `fn(f)` for every loaded function, in ascending id
  /// order. `fn` may Remove() the id it was called with (or any already
  /// visited id); it must not Add() during the walk.
  template <typename Fn>
  void ForEachLoaded(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];  // snapshot: fn may clear bits in-place
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn((w << 6) + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// \brief Membership as one byte per function (1 = loaded) — the
  /// checkpoint wire format.
  [[nodiscard]] std::vector<uint8_t> ToBytes() const {
    std::vector<uint8_t> bytes(num_functions_, 0);
    ForEachLoaded([&bytes](size_t f) { bytes[f] = 1; });
    return bytes;
  }

 private:
  size_t num_functions_;
  std::vector<uint64_t> words_;
  size_t count_;
};

}  // namespace spes

#endif  // SPES_SIM_MEMSET_H_
