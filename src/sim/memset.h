// MemSet: the set of function instances currently loaded in memory.
//
// This mirrors the `MemSet` of the paper's Algorithm 1: policies add
// (pre-load) and remove (evict) function ids; the simulation engine reads
// membership to account cold starts, wasted-memory time and memory usage.

#ifndef SPES_SIM_MEMSET_H_
#define SPES_SIM_MEMSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spes {

/// \brief Dense membership set over function indices [0, n).
class MemSet {
 public:
  explicit MemSet(size_t num_functions)
      : loaded_(num_functions, 0), count_(0) {}

  /// \brief Loads function `f`; no-op if already loaded.
  void Add(size_t f) {
    if (!loaded_[f]) {
      loaded_[f] = 1;
      ++count_;
    }
  }

  /// \brief Evicts function `f`; no-op if not loaded.
  void Remove(size_t f) {
    if (loaded_[f]) {
      loaded_[f] = 0;
      --count_;
    }
  }

  /// \brief True when function `f` is currently loaded.
  bool Contains(size_t f) const { return loaded_[f] != 0; }

  /// \brief Number of loaded instances.
  size_t Count() const { return count_; }

  /// \brief Total number of addressable functions [0, n).
  size_t Capacity() const { return loaded_.size(); }

  /// \brief Raw membership bytes (1 = loaded), for fast scans.
  const std::vector<uint8_t>& raw() const { return loaded_; }

 private:
  std::vector<uint8_t> loaded_;
  size_t count_;
};

}  // namespace spes

#endif  // SPES_SIM_MEMSET_H_
