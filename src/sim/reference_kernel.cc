#include "sim/reference_kernel.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/clock.h"
#include "sim/memset.h"

namespace spes {

Result<SimulationOutcome> SimulateReference(const Trace& trace,
                                            Policy* policy,
                                            const SimOptions& options) {
  if (policy == nullptr) {
    return Status::InvalidArgument("policy must not be null");
  }
  SPES_RETURN_NOT_OK(ValidateSimOptions(options));
  const int horizon = trace.num_minutes();
  if (options.train_minutes > horizon) {
    return Status::InvalidArgument(
        "SimOptions.train_minutes (=" + std::to_string(options.train_minutes) +
        ") exceeds the trace horizon (=" + std::to_string(horizon) +
        " minutes)");
  }
  const int end = options.end_minute > 0
                      ? std::min(options.end_minute, horizon)
                      : horizon;

  policy->Train(trace, options.train_minutes);

  const size_t n = trace.num_functions();
  MemSet mem(n);
  std::vector<FunctionAccount> accounts(n);
  std::vector<uint32_t> memory_series;
  memory_series.reserve(static_cast<size_t>(end - options.train_minutes));
  std::vector<Invocation> arrivals;
  std::vector<uint8_t> invoked_now(n, 0);
  double overhead_seconds = 0.0;

  for (int t = options.train_minutes; t < end; ++t) {
    // Decode this minute's arrivals with a full scan over the fleet.
    arrivals.clear();
    for (size_t f = 0; f < n; ++f) {
      const uint32_t c = trace.function(f).counts[static_cast<size_t>(t)];
      invoked_now[f] = c > 0 ? 1 : 0;
      if (c > 0) {
        arrivals.push_back({static_cast<uint32_t>(f), c});
      }
    }

    // 1-2. Cold-start accounting, then execution pins the instance.
    for (const Invocation& inv : arrivals) {
      FunctionAccount& acc = accounts[inv.function];
      acc.invocations += inv.count;
      acc.invoked_minutes += 1;
      if (!mem.Contains(inv.function)) acc.cold_starts += 1;
      mem.Add(inv.function);
    }

    // 3. Policy step (timed for the RQ2 overhead measurement; the
    // monotonic clock lives in obs/clock so the linter can confine it).
    const double start = MonotonicSeconds();
    policy->OnMinute(t, arrivals, &mem);
    overhead_seconds += MonotonicSeconds() - start;

    if (options.pin_executing_functions) {
      for (const Invocation& inv : arrivals) mem.Add(inv.function);
    }

    // 4. Residency accounting: one membership probe per function.
    for (size_t f = 0; f < n; ++f) {
      if (!mem.Contains(f)) continue;
      FunctionAccount& acc = accounts[f];
      acc.loaded_minutes += 1;
      if (!invoked_now[f]) acc.wasted_minutes += 1;
    }
    memory_series.push_back(static_cast<uint32_t>(mem.Count()));
  }

  SimulationOutcome outcome;
  outcome.metrics = ComputeFleetMetrics(policy->name(), accounts,
                                        memory_series, overhead_seconds);
  outcome.accounts = std::move(accounts);
  outcome.memory_series = std::move(memory_series);
  return outcome;
}

}  // namespace spes
