#include "sim/columnar.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace spes {

ArrivalDecoder::ArrivalDecoder(const Trace& trace, int block_minutes)
    : owned_(std::make_unique<InMemoryTraceSource>(trace)),
      source_(owned_.get()),
      // Clamped so a block minute index always fits scatter_minute_'s u16.
      block_minutes_(std::clamp(block_minutes, 1, 65535)) {}

ArrivalDecoder::ArrivalDecoder(TraceSource* source, int block_minutes)
    : source_(source), block_minutes_(std::clamp(block_minutes, 1, 65535)) {}

std::span<const Invocation> ArrivalDecoder::Decode(int t) {
  assert(source_ != nullptr && "ArrivalDecoder used before construction");
  assert(t >= 0 && t < source_->num_minutes());
  if (!status_.ok()) return {};
  if (t < block_start_ || t >= block_end_) {
    // Blocks are aligned to multiples of block_minutes_ so repeated seeks
    // land on a stable grid — and so file-backed sources with the same
    // block size serve each decode from exactly one stored block.
    status_ = DecodeBlock(t - t % block_minutes_);
    if (!status_.ok()) {
      block_end_ = block_start_;  // nothing decoded
      return {};
    }
  }
  const std::vector<Invocation>& bucket =
      buckets_[static_cast<size_t>(t - block_start_)];
  return std::span<const Invocation>(bucket.data(), bucket.size());
}

Status ArrivalDecoder::DecodeBlock(int block_start) {
  block_start_ = block_start;
  block_end_ = std::min(block_start + block_minutes_, source_->num_minutes());
  SPES_RETURN_NOT_OK(
      source_->FillArrivals(block_start_, block_end_, &buckets_));
  ++blocks_decoded_;
  const size_t minutes = static_cast<size_t>(block_end_ - block_start_);
  for (size_t i = 0; i < minutes; ++i) {
    invocations_decoded_ += buckets_[i].size();
  }
  return Status::OK();
}

void LaneColumns::Reset(size_t num_functions) {
  invocations.assign(num_functions, 0);
  invoked_minutes.assign(num_functions, 0);
  cold_starts.assign(num_functions, 0);
  loaded_minutes.assign(num_functions, 0);
  invoked_loaded_minutes.assign(num_functions, 0);
  loaded_since.assign(num_functions, 0);
  prev_words.assign((num_functions + 63) / 64, 0);
}

void LaneColumns::AccrueResidency(int t, const MemSet& mem) {
  const std::vector<uint64_t>& words = mem.words();
  assert(words.size() == prev_words.size());
  for (size_t w = 0; w < words.size(); ++w) {
    const uint64_t cur = words[w];
    const uint64_t diff = cur ^ prev_words[w];
    if (diff == 0) continue;  // the common case: no transitions in 64 fns
    uint64_t gained = diff & cur;
    while (gained != 0) {
      const size_t f = (w << 6) + std::countr_zero(gained);
      loaded_since[f] = t;
      gained &= gained - 1;
    }
    uint64_t lost = diff & ~cur;
    while (lost != 0) {
      const size_t f = (w << 6) + std::countr_zero(lost);
      loaded_minutes[f] += static_cast<uint64_t>(t - loaded_since[f]);
      lost &= lost - 1;
    }
    prev_words[w] = cur;
  }
}

void LaneColumns::Materialize(int cursor, const MemSet& mem,
                              std::vector<FunctionAccount>* out) const {
  const size_t n = invocations.size();
  const std::vector<uint64_t>& words = mem.words();
  out->resize(n);
  for (size_t f = 0; f < n; ++f) {
    FunctionAccount& acc = (*out)[f];
    acc.invocations = invocations[f];
    acc.invoked_minutes = invoked_minutes[f];
    acc.cold_starts = cold_starts[f];
    uint64_t loaded = loaded_minutes[f];
    if ((words[f >> 6] >> (f & 63)) & 1) {
      loaded += static_cast<uint64_t>(cursor - loaded_since[f]);
    }
    acc.loaded_minutes = loaded;
    acc.wasted_minutes = loaded - invoked_loaded_minutes[f];
  }
}

void LaneColumns::LoadFrom(const std::vector<FunctionAccount>& accounts,
                           const MemSet& mem, int cursor) {
  const size_t n = accounts.size();
  Reset(n);
  for (size_t f = 0; f < n; ++f) {
    const FunctionAccount& acc = accounts[f];
    invocations[f] = acc.invocations;
    invoked_minutes[f] = acc.invoked_minutes;
    cold_starts[f] = acc.cold_starts;
    loaded_minutes[f] = acc.loaded_minutes;
    invoked_loaded_minutes[f] = acc.loaded_minutes - acc.wasted_minutes;
  }
  const std::vector<uint64_t>& words = mem.words();
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      loaded_since[(w << 6) + std::countr_zero(word)] = cursor;
      word &= word - 1;
    }
    prev_words[w] = words[w];
  }
}

}  // namespace spes
