#include "sim/observers.h"

#include <string>

#include "obs/clock.h"

namespace spes {

void TimeSeriesObserver::OnStreamStart(const StreamInfo& info) {
  start_minute_ = info.start_minute;
  series_.assign(info.num_lanes, {});
}

bool TimeSeriesObserver::OnMinute(const MinuteView& view) {
  if ((view.minute - start_minute_) % stride_ != 0) return true;
  if (view.lane >= series_.size()) series_.resize(view.lane + 1);
  MinuteSample sample;
  sample.minute = view.minute;
  sample.loaded_instances = view.loaded_instances();
  sample.invocations = view.totals.invocations;
  sample.cold_starts = view.totals.cold_starts;
  series_[view.lane].push_back(sample);
  return true;
}

namespace {

// "ETA 90s" below two minutes, "ETA 4.2m" otherwise; "ETA --" when the
// rate is too small to extrapolate from.
std::string FormatEta(double seconds) {
  char buf[32];
  if (seconds < 0.0) return "ETA --";
  if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "ETA %.0fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "ETA %.1fm", seconds / 60.0);
  }
  return buf;
}

}  // namespace

ProgressObserver::ProgressObserver(int every_minutes, std::FILE* out,
                                   double min_wall_seconds, bool enabled,
                                   ClockFn clock)
    : every_minutes_(every_minutes < 1 ? 1 : every_minutes),
      out_(out),
      min_wall_seconds_(min_wall_seconds < 0.0 ? 0.0 : min_wall_seconds),
      enabled_(enabled),
      clock_(clock != nullptr ? clock : &MonotonicSeconds) {}

void ProgressObserver::OnStreamStart(const StreamInfo& info) {
  info_ = info;
  start_wall_ = clock_();
  last_report_wall_ = start_wall_;
}

bool ProgressObserver::OnMinute(const MinuteView& view) {
  if (!enabled_ || view.lane != 0) return true;
  const int simulated = view.minute - info_.start_minute + 1;
  const int window = info_.end_minute - info_.start_minute;
  const bool final_minute = view.minute + 1 == info_.end_minute;
  if (simulated % every_minutes_ != 0 && !final_minute) return true;
  const double now = clock_();
  if (!final_minute && min_wall_seconds_ > 0.0 &&
      now - last_report_wall_ < min_wall_seconds_) {
    return true;
  }
  last_report_wall_ = now;
  const double elapsed = now - start_wall_;
  const double rate = elapsed > 0.0 ? simulated / elapsed : 0.0;
  const int remaining = window - simulated;
  const double eta = rate > 0.0 ? remaining / rate : -1.0;
  std::fprintf(out_,
               "minute %d/%d | %s: %u loaded, %llu cold starts, %llu "
               "invocations | %.0f min/s, %s\n",
               simulated, window, view.policy->name().c_str(),
               view.loaded_instances(),
               static_cast<unsigned long long>(view.totals.cold_starts),
               static_cast<unsigned long long>(view.totals.invocations), rate,
               FormatEta(eta).c_str());
  return true;
}

}  // namespace spes
