#include "sim/observers.h"

namespace spes {

void TimeSeriesObserver::OnStreamStart(const StreamInfo& info) {
  start_minute_ = info.start_minute;
  series_.assign(info.num_lanes, {});
}

bool TimeSeriesObserver::OnMinute(const MinuteView& view) {
  if ((view.minute - start_minute_) % stride_ != 0) return true;
  if (view.lane >= series_.size()) series_.resize(view.lane + 1);
  MinuteSample sample;
  sample.minute = view.minute;
  sample.loaded_instances = view.loaded_instances();
  sample.invocations = view.totals.invocations;
  sample.cold_starts = view.totals.cold_starts;
  series_[view.lane].push_back(sample);
  return true;
}

void ProgressObserver::OnStreamStart(const StreamInfo& info) { info_ = info; }

bool ProgressObserver::OnMinute(const MinuteView& view) {
  if (view.lane != 0) return true;
  const int simulated = view.minute - info_.start_minute + 1;
  const int window = info_.end_minute - info_.start_minute;
  if (simulated % every_minutes_ != 0 && view.minute + 1 != info_.end_minute) {
    return true;
  }
  std::fprintf(out_,
               "minute %d/%d | %s: %u loaded, %llu cold starts, %llu "
               "invocations\n",
               simulated, window, view.policy->name().c_str(),
               view.loaded_instances(),
               static_cast<unsigned long long>(view.totals.cold_starts),
               static_cast<unsigned long long>(view.totals.invocations));
  return true;
}

}  // namespace spes
