// Provisioning policy interface shared by SPES and all baselines.
//
// A policy is trained offline on the first `train_minutes` of a trace and
// then stepped once per simulated minute. Within a step it sees the minute's
// arrivals and mutates the MemSet (pre-loads and evictions). The engine —
// not the policy — accounts cold starts, so all policies are measured
// identically.

#ifndef SPES_SIM_POLICY_H_
#define SPES_SIM_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/memset.h"
#include "trace/trace.h"
#include "trace/trace_source.h"  // Invocation lives with the trace sources

namespace spes {

/// \brief Interface implemented by every provisioning strategy.
class Policy {
 public:
  virtual ~Policy() = default;

  /// \brief Human-readable policy name used in reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// \brief Offline phase: observe `trace` restricted to minutes
  /// [0, train_minutes). Called exactly once before any OnMinute().
  virtual void Train(const Trace& trace, int train_minutes) = 0;

  /// \brief Online step for minute `t` (absolute trace minute).
  ///
  /// The engine has already loaded every arriving function into `mem`
  /// (executions occupy memory regardless of policy); the policy applies
  /// its keep-alive / pre-warm / eviction logic. `arrivals` lists this
  /// minute's invoked functions with counts.
  virtual void OnMinute(int t, const std::vector<Invocation>& arrivals,
                        MemSet* mem) = 0;

  /// \name Checkpoint support (opt-in)
  ///
  /// A checkpointable policy can serialize everything OnMinute() mutates
  /// into an opaque blob and later restore it, so a SimStream holding the
  /// policy can snapshot mid-window and resume bit-for-bit (sim/stream.h).
  /// RestoreState() is called on a policy that was constructed with the
  /// same parameters and Train()ed on the same trace and window as the one
  /// that produced the blob; it only needs to reinstate online-mutable
  /// state. The default implementation opts out.
  /// @{
  /// \brief True when the policy retains a pointer into the trained trace
  /// and reads minutes beyond the train window at OnMinute() time (the
  /// oracle does). The streamed entry points — SimStream/ClusterSession
  /// over a TraceSource — materialize only the train prefix, so they
  /// reject such policies with InvalidArgument instead of silently feeding
  /// them a horizon that ends at the train boundary.
  [[nodiscard]] virtual bool RequiresFullTrace() const { return false; }

  [[nodiscard]] virtual bool SupportsCheckpoint() const { return false; }
  [[nodiscard]] virtual Result<std::string> SaveState() const {
    return Status::NotImplemented("policy '" + name() +
                                  "' does not support checkpointing");
  }
  virtual Status RestoreState(const std::string& blob) {
    (void)blob;
    return Status::NotImplemented("policy '" + name() +
                                  "' does not support checkpointing");
  }
  /// @}
};

}  // namespace spes

#endif  // SPES_SIM_POLICY_H_
