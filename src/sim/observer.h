// The SimObserver hook interface of the streaming engine (sim/stream.h).
//
// Observers are attached to a SimStream and receive one callback per
// simulated minute per lane, carrying a read-only view of that lane's
// arrivals, memory set and incremental counters. Time-series capture,
// live metric snapshots, progress reporting and early-stop predicates are
// all observers (see sim/observers.h for the stock ones) instead of logic
// baked into the engine loop.

#ifndef SPES_SIM_OBSERVER_H_
#define SPES_SIM_OBSERVER_H_

#include <cstddef>
#include <vector>

#include "sim/accounting.h"
#include "sim/memset.h"
#include "sim/policy.h"

namespace spes {

struct LatencyLiveTotals;  // latency/latency.h

/// \brief Static facts about a stream, delivered once before its first
/// simulated minute.
struct StreamInfo {
  int train_minutes = 0;   ///< training prefix length
  int start_minute = 0;    ///< first simulated minute (== train_minutes)
  int end_minute = 0;      ///< one past the last simulated minute (resolved)
  size_t num_lanes = 0;    ///< lockstep policy lanes (1 for single-policy)
  size_t num_functions = 0;
};

/// \brief Read-only view of one lane at the end of one simulated minute
/// (after the policy step, execution pinning and residency accounting).
/// Borrowed references are valid only for the duration of the callback.
struct MinuteView {
  int minute = 0;   ///< the absolute trace minute just simulated
  size_t lane = 0;  ///< which policy lane (0 for single-policy streams)
  const Policy* policy = nullptr;
  const std::vector<Invocation>* arrivals = nullptr;  ///< this minute's
  const MemSet* mem = nullptr;                        ///< post-step state
  const std::vector<FunctionAccount>* accounts = nullptr;  ///< incremental
  const std::vector<uint32_t>* memory_series = nullptr;    ///< so far
  LiveTotals totals;  ///< fleet-wide counters through this minute
  /// Live latency counters when the opt-in latency subsystem is enabled;
  /// null otherwise (latency/latency.h).
  const LatencyLiveTotals* latency = nullptr;

  /// \brief Instances loaded at the end of this minute.
  [[nodiscard]] uint32_t loaded_instances() const {
    return static_cast<uint32_t>(mem->Count());
  }
};

/// \brief Per-minute hook interface. Implementations must not retain the
/// borrowed pointers inside a MinuteView past the callback.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// \brief Called once, before the stream's first simulated minute
  /// (policies are already trained at this point).
  virtual void OnStreamStart(const StreamInfo& info) { (void)info; }

  /// \brief Called after each lane finishes each simulated minute, in
  /// lane order. Return false to request an early stop: the stream
  /// finishes the current minute across all lanes, then halts.
  virtual bool OnMinute(const MinuteView& view) {
    (void)view;
    return true;
  }

  /// \brief Called once per lane when the stream is finished (end of
  /// window or early stop), with the lane's final outcome.
  virtual void OnStreamEnd(size_t lane, const SimulationOutcome& outcome) {
    (void)lane;
    (void)outcome;
  }
};

}  // namespace spes

#endif  // SPES_SIM_OBSERVER_H_
