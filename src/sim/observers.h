// Stock SimObserver implementations: the pluggable replacements for what
// used to require editing the engine loop — time-series capture, progress
// reporting, and caller-defined per-minute logic including early-stop
// predicates (sim/observer.h defines the hook interface).

#ifndef SPES_SIM_OBSERVERS_H_
#define SPES_SIM_OBSERVERS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "sim/observer.h"

namespace spes {

/// \brief Adapts a std::function to the observer interface. The callback
/// returns false to early-stop the stream, which makes this the stock
/// early-stop predicate as well:
///   CallbackObserver stop_on_budget([](const MinuteView& v) {
///     return v.totals.cold_starts < 1000;  // false => halt the stream
///   });
class CallbackObserver : public SimObserver {
 public:
  using Callback = std::function<bool(const MinuteView&)>;

  explicit CallbackObserver(Callback on_minute)
      : on_minute_(std::move(on_minute)) {}

  bool OnMinute(const MinuteView& view) override {
    return on_minute_ ? on_minute_(view) : true;
  }

 private:
  Callback on_minute_;
};

/// \brief One captured point of a per-minute time series.
struct MinuteSample {
  int minute = 0;
  uint32_t loaded_instances = 0;
  uint64_t invocations = 0;   ///< cumulative through this minute
  uint64_t cold_starts = 0;   ///< cumulative through this minute
};

/// \brief Records a MinuteSample every `stride` minutes, one series per
/// lane — the pluggable replacement for ad-hoc time-series capture.
/// Samples are taken at minutes where (minute - start) % stride == 0.
class TimeSeriesObserver : public SimObserver {
 public:
  explicit TimeSeriesObserver(int stride = 1)
      : stride_(stride < 1 ? 1 : stride) {}

  void OnStreamStart(const StreamInfo& info) override;
  bool OnMinute(const MinuteView& view) override;

  /// \brief Captured series, indexed by lane.
  [[nodiscard]] const std::vector<std::vector<MinuteSample>>& series() const {
    return series_;
  }

 private:
  int stride_;
  int start_minute_ = 0;
  std::vector<std::vector<MinuteSample>> series_;
};

/// \brief Prints a single-line progress report every `every_minutes`
/// simulated minutes (lane 0 only, so lockstep streams do not multiply
/// the output), with the live simulation rate (sim-minutes per wall
/// second, from the obs/clock monotonic clock) and an ETA to the end of
/// the window. Intended for long interactive runs and examples.
///
/// Two quieting knobs:
///   * `min_wall_seconds` — on top of the minute stride, skip reports
///     closer than this many wall seconds to the previous one (the final
///     minute always reports), so a fast run prints a handful of lines
///     instead of hundreds;
///   * `enabled = false` — emit nothing at all. Machine-readable bench
///     runs pass `!bench::MachineReadable(format)` here so progress
///     chatter never lands in JSON/CSV output.
class ProgressObserver : public SimObserver {
 public:
  /// Clock hook returning monotonic seconds; injectable for
  /// deterministic tests. Null means spes::MonotonicSeconds.
  using ClockFn = double (*)();

  explicit ProgressObserver(int every_minutes = kMinutesPerDay,
                            std::FILE* out = stdout,
                            double min_wall_seconds = 0.0,
                            bool enabled = true, ClockFn clock = nullptr);

  void OnStreamStart(const StreamInfo& info) override;
  bool OnMinute(const MinuteView& view) override;

 private:
  int every_minutes_;
  std::FILE* out_;
  double min_wall_seconds_;
  bool enabled_;
  ClockFn clock_;
  StreamInfo info_;
  double start_wall_ = 0.0;
  double last_report_wall_ = 0.0;
};

}  // namespace spes

#endif  // SPES_SIM_OBSERVERS_H_
