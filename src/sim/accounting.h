// Per-function accounting and fleet-level metrics produced by a simulation:
// cold-start rate (CSR) distribution, wasted memory time (WMT), memory
// usage, effective memory consumption ratio (EMCR), always-cold ratio, and
// scheduler overhead — the quantities of RQ1-RQ3.

#ifndef SPES_SIM_ACCOUNTING_H_
#define SPES_SIM_ACCOUNTING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spes {

struct LatencyOutcome;  // latency/latency.h

/// \brief Counters kept by the engine for one function over the simulation
/// window.
struct FunctionAccount {
  /// Total arrivals (sum of per-minute counts).
  uint64_t invocations = 0;
  /// Minutes with at least one arrival.
  uint64_t invoked_minutes = 0;
  /// Arrival minutes at which the function was not loaded.
  uint64_t cold_starts = 0;
  /// Minutes the instance was resident in memory.
  uint64_t loaded_minutes = 0;
  /// Resident minutes with no arrival = wasted memory time contribution.
  uint64_t wasted_minutes = 0;

  /// \brief Function-wise cold-start rate: cold starts / invocations.
  ///
  /// Cold starts are counted per arrival-minute (at most one per minute —
  /// concurrent arrivals within a minute share the freshly started
  /// instance, per the paper's one-minute-execution simulation principle),
  /// while the denominator is total arrivals, matching §V-A2.
  [[nodiscard]] double ColdStartRate() const {
    return invocations == 0
               ? 0.0
               : static_cast<double>(cold_starts) /
                     static_cast<double>(invocations);
  }
};

/// \brief Monotone fleet-wide counters the streaming engine maintains
/// incrementally, so observers get O(1) live totals each minute without
/// re-summing the per-function accounts.
struct LiveTotals {
  uint64_t invocations = 0;
  uint64_t cold_starts = 0;
  uint64_t loaded_instance_minutes = 0;
  uint64_t wasted_memory_minutes = 0;
};

/// \brief Aggregate metrics for one policy run.
struct FleetMetrics {
  std::string policy_name;

  /// CSR per function with >= 1 invocation in the simulation window.
  std::vector<double> csr;

  double q3_csr = 0.0;     ///< 75th-percentile CSR (the paper's headline)
  double p90_csr = 0.0;    ///< 90th-percentile CSR
  double median_csr = 0.0;

  /// Fraction of invoked functions with CSR == 1.0 ("always cold").
  double always_cold_fraction = 0.0;
  /// Fraction of invoked functions with CSR == 0.0 (fully warm).
  double zero_cold_fraction = 0.0;

  uint64_t total_cold_starts = 0;
  uint64_t total_invocations = 0;

  /// Sum over minutes of idle loaded instances (WMT, in instance-minutes).
  uint64_t wasted_memory_minutes = 0;
  /// Sum over minutes of loaded instances (instance-minutes).
  uint64_t loaded_instance_minutes = 0;

  double average_memory = 0.0;  ///< mean loaded instances per minute
  uint64_t max_memory = 0;      ///< peak loaded instances in any minute

  /// EMCR: invoked loaded instance-minutes / loaded instance-minutes.
  double emcr = 0.0;

  /// Wall-clock seconds spent inside Policy::OnMinute, total and per
  /// simulated minute (the RQ2 overhead measurement).
  double overhead_seconds = 0.0;
  double overhead_seconds_per_minute = 0.0;
};

/// \brief Full outcome: per-function accounts + fleet metrics + the memory
/// time series (loaded instances at each simulated minute).
struct SimulationOutcome {
  std::vector<FunctionAccount> accounts;
  std::vector<uint32_t> memory_series;
  FleetMetrics metrics;
  /// Latency/SLO outcome when the opt-in latency subsystem was enabled
  /// for the run; null otherwise. Shared so outcomes stay cheap to copy.
  std::shared_ptr<const LatencyOutcome> latency;
};

/// \brief Derives FleetMetrics from raw accounts and the memory series.
FleetMetrics ComputeFleetMetrics(const std::string& policy_name,
                                 const std::vector<FunctionAccount>& accounts,
                                 const std::vector<uint32_t>& memory_series,
                                 double overhead_seconds);

}  // namespace spes

#endif  // SPES_SIM_ACCOUNTING_H_
