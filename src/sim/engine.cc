#include "sim/engine.h"

#include <string>

#include "sim/stream.h"

namespace spes {

Status ValidateSimOptions(const SimOptions& options) {
  if (options.train_minutes < 0) {
    return Status::InvalidArgument(
        "SimOptions.train_minutes (=" + std::to_string(options.train_minutes) +
        ") must be non-negative");
  }
  if (options.end_minute < 0) {
    return Status::InvalidArgument(
        "SimOptions.end_minute (=" + std::to_string(options.end_minute) +
        ") must be non-negative");
  }
  if (options.end_minute > 0 && options.end_minute < options.train_minutes) {
    return Status::InvalidArgument(
        "SimOptions.end_minute (=" + std::to_string(options.end_minute) +
        ") must not precede SimOptions.train_minutes (=" +
        std::to_string(options.train_minutes) + ")");
  }
  if (options.latency.has_value()) {
    SPES_RETURN_NOT_OK(ValidateLatencySpec(*options.latency));
  }
  if (options.recorder_slot < 0) {
    return Status::InvalidArgument(
        "SimOptions.recorder_slot (=" +
        std::to_string(options.recorder_slot) + ") must be non-negative");
  }
  return Status::OK();
}

Result<SimulationOutcome> Simulate(const Trace& trace, Policy* policy,
                                   const SimOptions& options) {
  // The batch entry point is a full-window streaming session: open a
  // single-lane SimStream and drain it. All simulation semantics live in
  // sim/stream.cc.
  SPES_ASSIGN_OR_RETURN(SimStream stream,
                        SimStream::Create(trace, policy, options));
  return stream.Finish();
}

}  // namespace spes
