#include "sim/engine.h"

#include <algorithm>
#include <chrono>

namespace spes {

Status ValidateSimOptions(const SimOptions& options) {
  if (options.train_minutes < 0) {
    return Status::InvalidArgument(
        "SimOptions.train_minutes must be non-negative, got " +
        std::to_string(options.train_minutes));
  }
  if (options.end_minute < 0) {
    return Status::InvalidArgument(
        "SimOptions.end_minute must be non-negative, got " +
        std::to_string(options.end_minute));
  }
  if (options.end_minute > 0 && options.end_minute < options.train_minutes) {
    return Status::InvalidArgument(
        "SimOptions.end_minute (" + std::to_string(options.end_minute) +
        ") must not precede SimOptions.train_minutes (" +
        std::to_string(options.train_minutes) + ")");
  }
  return Status::OK();
}

Result<SimulationOutcome> Simulate(const Trace& trace, Policy* policy,
                                   const SimOptions& options) {
  if (policy == nullptr) {
    return Status::InvalidArgument("policy must not be null");
  }
  SPES_RETURN_NOT_OK(ValidateSimOptions(options));
  const int horizon = trace.num_minutes();
  if (options.train_minutes > horizon) {
    return Status::InvalidArgument(
        "SimOptions.train_minutes (" + std::to_string(options.train_minutes) +
        ") exceeds the trace horizon (" + std::to_string(horizon) +
        " minutes)");
  }
  // end_minute == 0 means the trace horizon; a larger request clamps to it
  // (a policy cannot be replayed past the recorded trace).
  const int end = options.end_minute > 0
                      ? std::min(options.end_minute, horizon)
                      : horizon;
  const size_t n = trace.num_functions();

  policy->Train(trace, options.train_minutes);

  SimulationOutcome outcome;
  outcome.accounts.assign(n, FunctionAccount{});
  outcome.memory_series.reserve(
      static_cast<size_t>(end - options.train_minutes));

  MemSet mem(n);
  std::vector<Invocation> arrivals;
  std::vector<uint8_t> invoked_now(n, 0);
  double overhead_seconds = 0.0;

  for (int t = options.train_minutes; t < end; ++t) {
    // Gather this minute's arrivals.
    arrivals.clear();
    for (size_t f = 0; f < n; ++f) {
      const uint32_t c = trace.function(f).counts[static_cast<size_t>(t)];
      invoked_now[f] = c > 0 ? 1 : 0;
      if (c > 0) {
        arrivals.push_back(
            {static_cast<uint32_t>(f), c});
      }
    }

    // 1-2. Cold-start accounting, then execution pins the instance.
    for (const Invocation& inv : arrivals) {
      FunctionAccount& acc = outcome.accounts[inv.function];
      acc.invocations += inv.count;
      acc.invoked_minutes += 1;
      if (!mem.Contains(inv.function)) acc.cold_starts += 1;
      mem.Add(inv.function);
    }

    // 3. Policy step (timed).
    const auto start = std::chrono::steady_clock::now();
    policy->OnMinute(t, arrivals, &mem);
    const auto stop = std::chrono::steady_clock::now();
    overhead_seconds +=
        std::chrono::duration<double>(stop - start).count();

    if (options.pin_executing_functions) {
      for (const Invocation& inv : arrivals) mem.Add(inv.function);
    }

    // 4. Residency accounting.
    const std::vector<uint8_t>& loaded = mem.raw();
    for (size_t f = 0; f < n; ++f) {
      if (!loaded[f]) continue;
      FunctionAccount& acc = outcome.accounts[f];
      acc.loaded_minutes += 1;
      if (!invoked_now[f]) acc.wasted_minutes += 1;
    }
    outcome.memory_series.push_back(static_cast<uint32_t>(mem.Count()));
  }

  outcome.metrics = ComputeFleetMetrics(policy->name(), outcome.accounts,
                                        outcome.memory_series,
                                        overhead_seconds);
  return outcome;
}

}  // namespace spes
