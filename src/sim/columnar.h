// Minute-major columnar state backing the SimStream hot loop.
//
// The seed engine walked every function once per simulated minute, twice:
// an O(n) arrival decode over function-major count vectors, and an O(n)
// residency scan striding 40-byte FunctionAccount structs. This header
// holds the two structures that replace those scans:
//
//   * ArrivalDecoder — transposes a block of minutes of the function-major
//     trace into minute-major arrival buckets in one sequential pass, so
//     the per-minute decode is O(arrivals) amortized instead of O(n).
//     Arrivals within a minute are in ascending function id order,
//     exactly like the seed's per-minute scan produced them.
//
//   * LaneColumns — struct-of-arrays per-function counters plus deferred
//     residency accounting. Rather than touching every loaded function's
//     account each minute, residency is tracked as intervals: a bitset
//     diff (prev XOR current, word-at-a-time) detects load/evict
//     transitions, `loaded_since` remembers when the open interval
//     started, and Materialize() folds open intervals back into the
//     classic FunctionAccount view on demand (observers, checkpoints,
//     outcomes). Per-minute cost is O(n/64 + transitions + arrivals).
//
// Both are exact: every materialized account, live total and memory-series
// entry is bitwise-identical to the seed loop's (tests/columnar_diff_test
// and the seed-99 goldens pin this).

#ifndef SPES_SIM_COLUMNAR_H_
#define SPES_SIM_COLUMNAR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sim/accounting.h"
#include "sim/memset.h"
#include "sim/policy.h"
#include "trace/trace.h"

namespace spes {

/// \brief Batched minute-major arrival decode over a function-major trace.
///
/// Decode(t) returns minute t's arrivals in ascending function order. The
/// decoder reads the trace in blocks of `block_minutes`, visiting each
/// function's count vector once per block (sequential reads), so the
/// amortized per-minute cost is O(n / block_minutes + arrivals) instead of
/// the O(n) pointer-chasing scan the seed engine did.
class ArrivalDecoder {
 public:
  static constexpr int kDefaultBlockMinutes = 256;

  ArrivalDecoder() = default;
  explicit ArrivalDecoder(const Trace& trace,
                          int block_minutes = kDefaultBlockMinutes);

  /// \brief Arrivals of absolute minute `t` (ascending function id). The
  /// span is valid until the next Decode() call. Decoding a minute outside
  /// the current block (any seek, forward or backward) re-aims the block,
  /// so checkpoint restores just work.
  std::span<const Invocation> Decode(int t);

 private:
  void DecodeBlock(int block_start);

  const Trace* trace_ = nullptr;
  int block_minutes_ = kDefaultBlockMinutes;
  int block_start_ = 0;
  int block_end_ = 0;  ///< decoded minutes are [block_start_, block_end_)
  /// rows_[f] = f's count vector; caching the data pointers turns the
  /// per-function FunctionTrace chase (struct load -> vector load -> data)
  /// into independent loads the CPU can overlap across functions.
  std::vector<const uint32_t*> rows_;
  /// buckets_[i] = arrivals of block minute block_start_ + i, ascending by
  /// function id. Bucket capacity persists across blocks, so after the
  /// first block the transpose reads the trace once and appends without
  /// reallocating.
  std::vector<std::vector<Invocation>> buckets_;
};

/// \brief Struct-of-arrays per-function counters for one lane, with
/// interval-based residency accounting.
///
/// Invariants (valid between minutes, at engine cursor `c`):
///   * `loaded_since[f]` is meaningful iff f's bit is set in the lane's
///     MemSet; the open interval then spans samples
///     [loaded_since[f], c), contributing c - loaded_since[f] loaded
///     minutes on top of `loaded_minutes[f]`.
///   * `prev_words` mirrors the MemSet words as of the last
///     AccrueResidency() call.
///   * wasted minutes are derived, never stored:
///     wasted = total loaded minutes - invoked_loaded_minutes.
struct LaneColumns {
  std::vector<uint64_t> invocations;
  std::vector<uint64_t> invoked_minutes;
  std::vector<uint64_t> cold_starts;
  /// Loaded minutes from closed residency intervals only.
  std::vector<uint64_t> loaded_minutes;
  /// Residency samples at which the function was loaded AND invoked.
  std::vector<uint64_t> invoked_loaded_minutes;
  /// Start sample of the open residency interval (iff currently loaded).
  std::vector<int32_t> loaded_since;
  /// MemSet words at the previous residency sample.
  std::vector<uint64_t> prev_words;

  /// \brief Zeroes every column for a fleet of `num_functions`.
  void Reset(size_t num_functions);

  /// \brief Records the residency sample of minute `t`: XOR-diffs the
  /// current membership words against `prev_words`, opening intervals for
  /// newly loaded functions and closing them for evicted ones.
  void AccrueResidency(int t, const MemSet& mem);

  /// \brief Folds the columns (including open residency intervals, which
  /// at engine cursor `cursor` span samples [loaded_since[f], cursor))
  /// into the classic per-function account view.
  void Materialize(int cursor, const MemSet& mem,
                   std::vector<FunctionAccount>* out) const;

  /// \brief Inverse of Materialize(): reloads the columns from a
  /// checkpoint's accounts and membership, positioned at engine cursor
  /// `cursor`. Open intervals restart at `cursor`.
  void LoadFrom(const std::vector<FunctionAccount>& accounts,
                const MemSet& mem, int cursor);
};

}  // namespace spes

#endif  // SPES_SIM_COLUMNAR_H_
