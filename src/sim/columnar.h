// Minute-major columnar state backing the SimStream hot loop.
//
// The seed engine walked every function once per simulated minute, twice:
// an O(n) arrival decode over function-major count vectors, and an O(n)
// residency scan striding 40-byte FunctionAccount structs. This header
// holds the two structures that replace those scans:
//
//   * ArrivalDecoder — transposes a block of minutes of the function-major
//     trace into minute-major arrival buckets in one sequential pass, so
//     the per-minute decode is O(arrivals) amortized instead of O(n).
//     Arrivals within a minute are in ascending function id order,
//     exactly like the seed's per-minute scan produced them.
//
//   * LaneColumns — struct-of-arrays per-function counters plus deferred
//     residency accounting. Rather than touching every loaded function's
//     account each minute, residency is tracked as intervals: a bitset
//     diff (prev XOR current, word-at-a-time) detects load/evict
//     transitions, `loaded_since` remembers when the open interval
//     started, and Materialize() folds open intervals back into the
//     classic FunctionAccount view on demand (observers, checkpoints,
//     outcomes). Per-minute cost is O(n/64 + transitions + arrivals).
//
// Both are exact: every materialized account, live total and memory-series
// entry is bitwise-identical to the seed loop's (tests/columnar_diff_test
// and the seed-99 goldens pin this).

#ifndef SPES_SIM_COLUMNAR_H_
#define SPES_SIM_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "sim/accounting.h"
#include "sim/memset.h"
#include "sim/policy.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace spes {

/// \brief Batched minute-major arrival decode over any TraceSource.
///
/// Decode(t) returns minute t's arrivals in ascending function order. The
/// decoder pulls the source in aligned blocks of `block_minutes` (block k
/// covers minutes [k*block_minutes, (k+1)*block_minutes)), visiting each
/// function's counts once per block, so the amortized per-minute cost is
/// O(n / block_minutes + arrivals) instead of the O(n) pointer-chasing
/// scan the seed engine did. Over an in-memory trace that is the
/// sequential transpose it always was; over a packed trace file
/// (trace/trace_file.h) the aligned block grid coincides with the file's
/// block grid, so each file block is read and decompressed exactly once
/// per pass.
class ArrivalDecoder {
 public:
  static constexpr int kDefaultBlockMinutes = 256;

  ArrivalDecoder() = default;
  /// \brief Decodes a realized trace (owns the in-memory adapter).
  explicit ArrivalDecoder(const Trace& trace,
                          int block_minutes = kDefaultBlockMinutes);
  /// \brief Decodes a borrowed source, which must outlive the decoder.
  explicit ArrivalDecoder(TraceSource* source,
                          int block_minutes = kDefaultBlockMinutes);

  /// \brief Arrivals of absolute minute `t` (ascending function id). The
  /// span is valid until the next Decode() call. Decoding a minute outside
  /// the current block (any seek, forward or backward) re-aims the block,
  /// so checkpoint restores just work. On a source error the span is empty
  /// and status() reports the failure (and stays failed — engines check it
  /// once per step).
  std::span<const Invocation> Decode(int t);

  /// \brief OK until a source read/decode fails; sticky thereafter.
  [[nodiscard]] const Status& status() const { return status_; }

  /// \name Work counters (observability only — never feed sim state).
  /// Blocks transposed and arrival records bucketed since construction;
  /// seeks that re-decode a block count again, mirroring real work done.
  /// @{
  [[nodiscard]] uint64_t blocks_decoded() const { return blocks_decoded_; }
  [[nodiscard]] uint64_t invocations_decoded() const {
    return invocations_decoded_;
  }
  /// @}

 private:
  Status DecodeBlock(int block_start);

  /// Set when constructed from a Trace: the adapter the decoder owns. A
  /// unique_ptr keeps `source_` stable across moves of the decoder.
  std::unique_ptr<TraceSource> owned_;
  TraceSource* source_ = nullptr;
  Status status_;
  int block_minutes_ = kDefaultBlockMinutes;
  int block_start_ = 0;
  int block_end_ = 0;  ///< decoded minutes are [block_start_, block_end_)
  uint64_t blocks_decoded_ = 0;
  uint64_t invocations_decoded_ = 0;
  /// buckets_[i] = arrivals of block minute block_start_ + i, ascending by
  /// function id. Bucket capacity persists across blocks, so after the
  /// first block the transpose reads the trace once and appends without
  /// reallocating.
  std::vector<std::vector<Invocation>> buckets_;
};

/// \brief Struct-of-arrays per-function counters for one lane, with
/// interval-based residency accounting.
///
/// Invariants (valid between minutes, at engine cursor `c`):
///   * `loaded_since[f]` is meaningful iff f's bit is set in the lane's
///     MemSet; the open interval then spans samples
///     [loaded_since[f], c), contributing c - loaded_since[f] loaded
///     minutes on top of `loaded_minutes[f]`.
///   * `prev_words` mirrors the MemSet words as of the last
///     AccrueResidency() call.
///   * wasted minutes are derived, never stored:
///     wasted = total loaded minutes - invoked_loaded_minutes.
struct LaneColumns {
  std::vector<uint64_t> invocations;
  std::vector<uint64_t> invoked_minutes;
  std::vector<uint64_t> cold_starts;
  /// Loaded minutes from closed residency intervals only.
  std::vector<uint64_t> loaded_minutes;
  /// Residency samples at which the function was loaded AND invoked.
  std::vector<uint64_t> invoked_loaded_minutes;
  /// Start sample of the open residency interval (iff currently loaded).
  std::vector<int32_t> loaded_since;
  /// MemSet words at the previous residency sample.
  std::vector<uint64_t> prev_words;

  /// \brief Zeroes every column for a fleet of `num_functions`.
  void Reset(size_t num_functions);

  /// \brief Records the residency sample of minute `t`: XOR-diffs the
  /// current membership words against `prev_words`, opening intervals for
  /// newly loaded functions and closing them for evicted ones.
  void AccrueResidency(int t, const MemSet& mem);

  /// \brief Folds the columns (including open residency intervals, which
  /// at engine cursor `cursor` span samples [loaded_since[f], cursor))
  /// into the classic per-function account view.
  void Materialize(int cursor, const MemSet& mem,
                   std::vector<FunctionAccount>* out) const;

  /// \brief Inverse of Materialize(): reloads the columns from a
  /// checkpoint's accounts and membership, positioned at engine cursor
  /// `cursor`. Open intervals restart at `cursor`.
  void LoadFrom(const std::vector<FunctionAccount>& accounts,
                const MemSet& mem, int cursor);
};

}  // namespace spes

#endif  // SPES_SIM_COLUMNAR_H_
