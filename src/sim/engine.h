// The trace-driven simulation engine.
//
// Follows the simulation principles of §V-A (inherited from Shahrad et al.):
// every execution completes within its arrival minute, cold-start latency is
// uniform, memory is uncapped (one node holds all instances), and each
// function instance consumes one memory unit. Under these principles the
// engine only needs to track, per minute, which instances are loaded, which
// functions arrive, and how long the policy's step takes.

#ifndef SPES_SIM_ENGINE_H_
#define SPES_SIM_ENGINE_H_

#include <optional>

#include "common/status.h"
#include "latency/latency.h"
#include "sim/accounting.h"
#include "sim/policy.h"
#include "trace/trace.h"

namespace spes {

class RunRecorder;  // obs/recorder.h

/// \brief Engine knobs.
struct SimOptions {
  /// First simulated minute; the policy trains on [0, train_minutes).
  int train_minutes = 12 * kMinutesPerDay;
  /// One past the last simulated minute; 0 means the trace horizon, and
  /// values beyond the horizon are clamped to it.
  int end_minute = 0;
  /// When true (default), the engine re-loads every arriving function after
  /// the policy step: an instance that just executed occupies memory at
  /// least through its arrival minute, whatever the policy decided.
  bool pin_executing_functions = true;
  /// Opt-in latency subsystem (latency/latency.h): when set, every lane
  /// (or cluster node) samples per-request service times, runs them
  /// through its concurrency queue and reports SLO metrics. When unset
  /// (the default) the latency path is never touched and runs are
  /// byte-identical to an engine without the subsystem.
  std::optional<LatencySpec> latency;
  /// Opt-in observability (obs/recorder.h): when set, the engine emits
  /// wall-clock spans, strided heartbeats and subsystem events to the
  /// recorder. Strictly write-only — the recorder never feeds
  /// simulation state, so recorded runs are bitwise-identical to
  /// unrecorded ones (golden-pinned). Not owned; must outlive the run.
  RunRecorder* recorder = nullptr;
  /// Logical SuiteRunner job slot stamped into recorded events so
  /// traces are stable at any thread count. Ignored when recorder is
  /// null; must be non-negative.
  int recorder_slot = 0;
};

/// \brief Trace-independent validation of the engine knobs: a negative
/// train_minutes or end_minute, an end_minute before train_minutes, or an
/// invalid latency block yields InvalidArgument naming the offending
/// field. Shared by the engine and by ScenarioSpec validation
/// (sim/scenario.h) so bad windows are rejected up front, before any
/// trace is realized.
Status ValidateSimOptions(const SimOptions& options);

/// \brief Trains `policy` on the trace prefix and replays the rest.
///
/// Per simulated minute t:
///   1. every arriving function not in memory records a cold start;
///   2. arriving functions are loaded (execution occupies memory);
///   3. the policy's OnMinute mutates the MemSet (timed for RQ2 overhead);
///   4. residency/waste/memory counters are updated.
///
/// Deterministic given (trace, policy behaviour); only the overhead
/// measurement depends on the wall clock.
///
/// Simulate() is a thin wrapper that opens a full-window SimStream
/// (sim/stream.h) and drains it; the loop above lives in the stream. Use
/// SimStream directly for incremental stepping, observers, checkpoints
/// or lockstep multi-policy runs.
///
/// This is the low-level entry point, kept as a compatibility shim for
/// callers that construct Policy instances by hand. New code should
/// describe the run as a ScenarioSpec and use RunScenario() from
/// sim/scenario.h — or SuiteRunner::Run(trace, specs) from
/// runner/suite_runner.h for batches — which build policies through the
/// registry and validate the spec up front.
Result<SimulationOutcome> Simulate(const Trace& trace, Policy* policy,
                                   const SimOptions& options);

}  // namespace spes

#endif  // SPES_SIM_ENGINE_H_
