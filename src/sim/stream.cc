#include "sim/stream.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"
#include "obs/clock.h"
#include "obs/recorder.h"

namespace spes {

namespace {

/// Format tag of the serialized checkpoint byte stream. Version 1 is the
/// pre-latency layout; version 2 appends one latency-state blob per lane.
/// Streams without a latency block still serialize as version 1, byte for
/// byte, so existing checkpoint goldens (and old readers) are unaffected.
constexpr char kCheckpointMagic[] = "SPESCKPT";
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kCheckpointVersionLatency = 2;

/// Shared lane validation of the Create() overloads.
Status ValidateStreamPolicies(const std::vector<Policy*>& policies) {
  if (policies.empty()) {
    return Status::InvalidArgument("a SimStream needs at least one policy");
  }
  for (size_t i = 0; i < policies.size(); ++i) {
    if (policies[i] == nullptr) {
      return Status::InvalidArgument(
          policies.size() == 1
              ? "policy must not be null"
              : "policy must not be null (lane " + std::to_string(i) + ")");
    }
    for (size_t j = 0; j < i; ++j) {
      if (policies[j] == policies[i]) {
        return Status::InvalidArgument(
            "lockstep lanes must hold distinct policy instances (lanes " +
            std::to_string(j) + " and " + std::to_string(i) +
            " share one)");
      }
    }
  }
  return Status::OK();
}

/// Validates the options against `horizon` and resolves the end minute.
Result<int> ResolveStreamWindow(int horizon, const SimOptions& options) {
  SPES_RETURN_NOT_OK(ValidateSimOptions(options));
  if (options.train_minutes > horizon) {
    return Status::InvalidArgument(
        "SimOptions.train_minutes (=" + std::to_string(options.train_minutes) +
        ") exceeds the trace horizon (=" + std::to_string(horizon) +
        " minutes)");
  }
  // end_minute == 0 means the trace horizon; a larger request clamps to it
  // (a policy cannot be replayed past the recorded trace).
  return options.end_minute > 0 ? std::min(options.end_minute, horizon)
                                : horizon;
}

}  // namespace

SimStream::SimStream(TraceSource* source, std::unique_ptr<TraceSource> owned,
                     const SimOptions& options, int end)
    : owned_source_(std::move(owned)),
      source_(source),
      options_(options),
      start_(options.train_minutes),
      end_(end),
      cursor_(options.train_minutes),
      decoder_(source) {}

Result<SimStream> SimStream::Create(const Trace& trace, Policy* policy,
                                    const SimOptions& options) {
  return Create(trace, std::vector<Policy*>{policy}, options);
}

Result<SimStream> SimStream::Create(TraceSource& source, Policy* policy,
                                    const SimOptions& options) {
  return Create(source, std::vector<Policy*>{policy}, options);
}

Result<SimStream> SimStream::Create(const Trace& trace,
                                    std::vector<Policy*> policies,
                                    const SimOptions& options) {
  SPES_RETURN_NOT_OK(ValidateStreamPolicies(policies));
  SPES_ASSIGN_OR_RETURN(const int end,
                        ResolveStreamWindow(trace.num_minutes(), options));

  auto owned = std::make_unique<InMemoryTraceSource>(trace);
  TraceSource* source = owned.get();
  SimStream stream(source, std::move(owned), options, end);
  const size_t n = trace.num_functions();
  stream.lanes_.reserve(policies.size());
  for (Policy* policy : policies) {
    const ScopedSpan span(options.recorder, "train", options.recorder_slot,
                          static_cast<int>(stream.lanes_.size()),
                          policy->name());
    // In-memory streams train on the real full trace, so policies that
    // peek past the train window (the oracle) keep their exact behaviour.
    policy->Train(trace, options.train_minutes);
    Lane lane;
    lane.policy = policy;
    lane.mem = MemSet(n);
    lane.cols.Reset(n);
    lane.memory_series.reserve(static_cast<size_t>(end -
                                                   options.train_minutes));
    stream.lanes_.push_back(std::move(lane));
  }
  SPES_RETURN_NOT_OK(stream.EnableLatency());
  return stream;
}

Result<SimStream> SimStream::Create(TraceSource& source,
                                    std::vector<Policy*> policies,
                                    const SimOptions& options) {
  SPES_RETURN_NOT_OK(ValidateStreamPolicies(policies));
  for (size_t i = 0; i < policies.size(); ++i) {
    if (policies[i]->RequiresFullTrace()) {
      return Status::InvalidArgument(
          "policy '" + policies[i]->name() + "'" +
          (policies.size() == 1 ? std::string()
                                : " (lane " + std::to_string(i) + ")") +
          " requires the full realized trace, but a streamed source only "
          "materializes the train prefix; run it over an in-memory Trace");
    }
  }
  SPES_ASSIGN_OR_RETURN(const int end,
                        ResolveStreamWindow(source.num_minutes(), options));
  // Policies train on a materialized prefix — exactly the minutes the
  // Train() contract allows them to observe — shared across lanes.
  SPES_ASSIGN_OR_RETURN(const Trace train_prefix,
                        source.MaterializePrefix(options.train_minutes));

  SimStream stream(&source, nullptr, options, end);
  const size_t n = source.num_functions();
  stream.lanes_.reserve(policies.size());
  for (Policy* policy : policies) {
    const ScopedSpan span(options.recorder, "train", options.recorder_slot,
                          static_cast<int>(stream.lanes_.size()),
                          policy->name());
    policy->Train(train_prefix, options.train_minutes);
    Lane lane;
    lane.policy = policy;
    lane.mem = MemSet(n);
    lane.cols.Reset(n);
    lane.memory_series.reserve(static_cast<size_t>(end -
                                                   options.train_minutes));
    stream.lanes_.push_back(std::move(lane));
  }
  SPES_RETURN_NOT_OK(stream.EnableLatency());
  return stream;
}

Status SimStream::EnableLatency() {
  if (!options_.latency.has_value()) return Status::OK();
  const LatencySpec& spec = *options_.latency;
  // One shared hash table: the keys depend only on function names and the
  // latency seed, so lockstep lanes (and a cluster's nodes) sample
  // identical per-request streams regardless of placement.
  latency_hashes_ = std::make_shared<const std::vector<uint64_t>>(
      ComputeFunctionHashes(*source_, spec.seed));
  for (Lane& lane : lanes_) {
    SPES_ASSIGN_OR_RETURN(lane.latency,
                          CreateLatencyLane(spec, latency_hashes_));
  }
  return Status::OK();
}

void SimStream::AddObserver(SimObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

Status SimStream::StepLocked() {
  const int t = cursor_;

  // Decode this minute's arrivals ONCE; every lane shares the decode. The
  // decoder transposes a whole block of minutes at a time, so this is
  // O(arrivals) amortized; the copy feeds the vector-taking Policy API.
  // A failed decode (corrupt/vanished disk block) aborts the step before
  // any lane state changes, so the cursor stays consistent.
  const std::span<const Invocation> decoded = decoder_.Decode(t);
  SPES_RETURN_NOT_OK(decoder_.status());
  arrivals_.assign(decoded.begin(), decoded.end());
  ++minutes_decoded_;

  bool stop_requested = false;
  for (size_t lane_index = 0; lane_index < lanes_.size(); ++lane_index) {
    Lane& lane = lanes_[lane_index];
    LaneColumns& cols = lane.cols;

    // 1-2. Cold-start accounting, then execution pins the instance. The
    // latency variant additionally records which arrivals were cold (the
    // flags feed LatencyLane::OnMinute below); the plain variant is the
    // original loop, untouched so disabled runs stay byte-identical.
    if (lane.latency == nullptr) {
      for (const Invocation& inv : arrivals_) {
        cols.invocations[inv.function] += inv.count;
        cols.invoked_minutes[inv.function] += 1;
        lane.totals.invocations += inv.count;
        if (!lane.mem.Contains(inv.function)) {
          cols.cold_starts[inv.function] += 1;
          lane.totals.cold_starts += 1;
        }
        lane.mem.Add(inv.function);
      }
    } else {
      cold_flags_.assign(arrivals_.size(), 0);
      for (size_t i = 0; i < arrivals_.size(); ++i) {
        const Invocation& inv = arrivals_[i];
        cols.invocations[inv.function] += inv.count;
        cols.invoked_minutes[inv.function] += 1;
        lane.totals.invocations += inv.count;
        if (!lane.mem.Contains(inv.function)) {
          cols.cold_starts[inv.function] += 1;
          lane.totals.cold_starts += 1;
          cold_flags_[i] = 1;
        }
        lane.mem.Add(inv.function);
      }
    }

    // 3. Policy step (timed for the RQ2 overhead measurement; the
    // monotonic clock lives in obs/clock so the linter can confine it).
    const double start = MonotonicSeconds();
    lane.policy->OnMinute(t, arrivals_, &lane.mem);
    lane.overhead_seconds += MonotonicSeconds() - start;

    if (options_.pin_executing_functions) {
      for (const Invocation& inv : arrivals_) lane.mem.Add(inv.function);
    }

    // 4. Residency accounting: a word-at-a-time bitset diff opens/closes
    // residency intervals, live totals come from the maintained popcount,
    // and the wasted count follows from the arrivals that are loaded at
    // this sample. Equivalent to the per-function scan, minute by minute.
    cols.AccrueResidency(t, lane.mem);
    const uint64_t live = lane.mem.Count();
    lane.totals.loaded_instance_minutes += live;
    uint64_t invoked_loaded_now = 0;
    for (const Invocation& inv : arrivals_) {
      if (lane.mem.Contains(inv.function)) {
        cols.invoked_loaded_minutes[inv.function] += 1;
        ++invoked_loaded_now;
      }
    }
    lane.totals.wasted_memory_minutes += live - invoked_loaded_now;
    lane.memory_series.push_back(static_cast<uint32_t>(live));

    if (lane.latency != nullptr) {
      lane.latency->OnMinute(t, arrivals_, cold_flags_);
    }

    if (!observers_.empty()) {
      // Observers see the classic account view; materializing it per
      // minute is the documented cost of attaching one.
      cols.Materialize(t + 1, lane.mem, &lane.scratch_accounts);
      MinuteView view;
      view.minute = t;
      view.lane = lane_index;
      view.policy = lane.policy;
      view.arrivals = &arrivals_;
      view.mem = &lane.mem;
      view.accounts = &lane.scratch_accounts;
      view.memory_series = &lane.memory_series;
      view.totals = lane.totals;
      if (lane.latency != nullptr) view.latency = &lane.latency->live();
      for (SimObserver* observer : observers_) {
        if (!observer->OnMinute(view)) stop_requested = true;
      }
    }

    if (options_.recorder != nullptr) {
      // Strided heartbeat: sampled on simulated-minute boundaries (plus
      // the final minute), so the recorded counters are a pure function
      // of sim state — wall-clock speed never changes what is sampled.
      const int stride = options_.recorder->heartbeat_minute_stride();
      if ((t + 1 - start_) % stride == 0 || t + 1 == end_) {
        RunRecorder::Heartbeat heartbeat;
        heartbeat.slot = options_.recorder_slot;
        heartbeat.lane = static_cast<int>(lane_index);
        heartbeat.minute = t;
        heartbeat.invocations = lane.totals.invocations;
        heartbeat.cold_starts = lane.totals.cold_starts;
        heartbeat.loaded_instance_minutes =
            lane.totals.loaded_instance_minutes;
        heartbeat.wasted_memory_minutes =
            lane.totals.wasted_memory_minutes;
        heartbeat.loaded_instances = static_cast<uint32_t>(lane.mem.Count());
        if (lane.latency != nullptr) {
          heartbeat.queue_depth = lane.latency->live().queue_depth;
        }
        options_.recorder->EmitHeartbeat(heartbeat);
      }
    }
  }

  ++cursor_;
  if (stop_requested) stopped_ = true;
  return Status::OK();
}

Status SimStream::Step() {
  if (finished_) {
    return Status::OutOfRange("SimStream was consumed by Finish()");
  }
  if (stopped_) {
    return Status::Cancelled(
        "SimStream was stopped early at minute (=" + std::to_string(cursor_) +
        ")");
  }
  if (cursor_ >= end_) {
    return Status::OutOfRange(
        "SimStream is exhausted: cursor (=" + std::to_string(cursor_) +
        ") reached end_minute (=" + std::to_string(end_) + ")");
  }
  EnsureStarted();
  return StepLocked();
}

void SimStream::EnsureStarted() {
  if (started_) return;
  started_ = true;
  if (options_.recorder != nullptr) {
    simulate_span_ = options_.recorder->BeginSpan(
        "simulate", options_.recorder_slot, 0,
        lanes_.size() == 1
            ? lanes_[0].policy->name()
            : std::to_string(lanes_.size()) + " lockstep lanes");
  }
  StreamInfo info;
  info.train_minutes = options_.train_minutes;
  info.start_minute = start_;
  info.end_minute = end_;
  info.num_lanes = lanes_.size();
  info.num_functions = source_->num_functions();
  for (SimObserver* observer : observers_) observer->OnStreamStart(info);
}

Status SimStream::RunUntil(int minute) {
  if (finished_) {
    return Status::OutOfRange("SimStream was consumed by Finish()");
  }
  const int target = std::min(minute, end_);
  while (cursor_ < target && !stopped_) {
    SPES_RETURN_NOT_OK(Step());
  }
  if (stopped_ && cursor_ < target) {
    // Same signal Step() gives: an early stop left the target unreached.
    return Status::Cancelled(
        "SimStream was stopped early at minute (=" + std::to_string(cursor_) +
        ") before reaching minute (=" + std::to_string(target) + ")");
  }
  return Status::OK();
}

FleetMetrics SimStream::SnapshotMetrics(size_t lane_index) const {
  const Lane& lane = lanes_[lane_index];
  std::vector<FunctionAccount> accounts;
  lane.cols.Materialize(cursor_, lane.mem, &accounts);
  return ComputeFleetMetrics(lane.policy->name(), accounts,
                             lane.memory_series, lane.overhead_seconds);
}

Result<std::vector<SimulationOutcome>> SimStream::FinishAll() {
  if (finished_) {
    return Status::OutOfRange("SimStream was already consumed by Finish()");
  }
  // Even a zero-step window (train == horizon, or a stream restored at
  // its end) pairs OnStreamStart with OnStreamEnd, so observers always
  // get their sizing hook before any other callback.
  EnsureStarted();
  // An early stop is a documented way to end a stream: Finish()/FinishAll()
  // still deliver the partial-window outcome, so Cancelled is success here.
  const Status run = RunToEnd();
  if (!run.ok() && run.code() != StatusCode::kCancelled) return run;
  finished_ = true;
  if (options_.recorder != nullptr) {
    options_.recorder->EndSpan(simulate_span_);
    simulate_span_ = 0;
    options_.recorder->DecoderEvent(options_.recorder_slot,
                                    decoder_.blocks_decoded(),
                                    decoder_.invocations_decoded());
  }
  const ScopedSpan finish_span(options_.recorder, "finish",
                               options_.recorder_slot, 0);
  std::vector<SimulationOutcome> outcomes;
  outcomes.reserve(lanes_.size());
  for (Lane& lane : lanes_) {
    SimulationOutcome outcome;
    lane.cols.Materialize(cursor_, lane.mem, &outcome.accounts);
    outcome.metrics = ComputeFleetMetrics(lane.policy->name(),
                                          outcome.accounts,
                                          lane.memory_series,
                                          lane.overhead_seconds);
    outcome.memory_series = std::move(lane.memory_series);
    if (lane.latency != nullptr) {
      outcome.latency =
          std::make_shared<const LatencyOutcome>(lane.latency->TakeOutcome());
    }
    outcomes.push_back(std::move(outcome));
  }
  for (SimObserver* observer : observers_) {
    for (size_t lane = 0; lane < outcomes.size(); ++lane) {
      observer->OnStreamEnd(lane, outcomes[lane]);
    }
  }
  return outcomes;
}

Result<SimulationOutcome> SimStream::Finish() {
  if (lanes_.size() != 1) {
    return Status::InvalidArgument(
        "Finish() requires a single-lane stream (this one has " +
        std::to_string(lanes_.size()) + " lanes); use FinishAll()");
  }
  SPES_ASSIGN_OR_RETURN(std::vector<SimulationOutcome> outcomes, FinishAll());
  return std::move(outcomes[0]);
}

Result<SimCheckpoint> SimStream::Checkpoint() const {
  if (finished_) {
    return Status::OutOfRange(
        "cannot Checkpoint a stream consumed by Finish()");
  }
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (!lanes_[i].policy->SupportsCheckpoint()) {
      return Status::NotImplemented(
          "policy '" + lanes_[i].policy->name() + "' (lane " +
          std::to_string(i) + ") does not support checkpointing");
    }
  }
  SimCheckpoint checkpoint;
  checkpoint.cursor = cursor_;
  checkpoint.train_minutes = options_.train_minutes;
  checkpoint.end_minute = end_;
  checkpoint.pin_executing_functions = options_.pin_executing_functions;
  checkpoint.num_functions = source_->num_functions();
  checkpoint.stopped = stopped_;
  checkpoint.lanes.reserve(lanes_.size());
  for (const Lane& lane : lanes_) {
    SimCheckpoint::Lane out;
    out.policy_name = lane.policy->name();
    lane.cols.Materialize(cursor_, lane.mem, &out.accounts);
    out.memory_series = lane.memory_series;
    out.loaded = lane.mem.ToBytes();
    out.totals = lane.totals;
    out.overhead_seconds = lane.overhead_seconds;
    SPES_ASSIGN_OR_RETURN(out.policy_state, lane.policy->SaveState());
    if (lane.latency != nullptr) out.latency_state = lane.latency->SaveState();
    checkpoint.lanes.push_back(std::move(out));
  }
  if (options_.recorder != nullptr) {
    options_.recorder->CheckpointEvent("save", options_.recorder_slot,
                                       static_cast<uint64_t>(cursor_));
  }
  return checkpoint;
}

Status SimStream::Restore(const SimCheckpoint& checkpoint) {
  if (finished_) {
    return Status::OutOfRange("cannot Restore a stream consumed by Finish()");
  }
  const size_t n = source_->num_functions();
  if (checkpoint.num_functions != n) {
    return Status::InvalidArgument(
        "checkpoint num_functions (=" +
        std::to_string(checkpoint.num_functions) +
        ") does not match this stream's trace (=" + std::to_string(n) + ")");
  }
  if (checkpoint.train_minutes != options_.train_minutes) {
    return Status::InvalidArgument(
        "checkpoint train_minutes (=" +
        std::to_string(checkpoint.train_minutes) +
        ") does not match this stream (=" +
        std::to_string(options_.train_minutes) + ")");
  }
  if (checkpoint.end_minute != end_) {
    return Status::InvalidArgument(
        "checkpoint end_minute (=" + std::to_string(checkpoint.end_minute) +
        ") does not match this stream (=" + std::to_string(end_) + ")");
  }
  if (checkpoint.pin_executing_functions !=
      options_.pin_executing_functions) {
    return Status::InvalidArgument(
        "checkpoint pin_executing_functions (=" +
        std::string(checkpoint.pin_executing_functions ? "true" : "false") +
        ") does not match this stream");
  }
  if (checkpoint.cursor < start_ || checkpoint.cursor > end_) {
    return Status::InvalidArgument(
        "checkpoint cursor (=" + std::to_string(checkpoint.cursor) +
        ") is outside this stream's window [" + std::to_string(start_) +
        ", " + std::to_string(end_) + "]");
  }
  if (checkpoint.lanes.size() != lanes_.size()) {
    return Status::InvalidArgument(
        "checkpoint has (=" + std::to_string(checkpoint.lanes.size()) +
        ") lanes but this stream has (=" + std::to_string(lanes_.size()) +
        ")");
  }
  const size_t expected_series =
      static_cast<size_t>(checkpoint.cursor - start_);
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const SimCheckpoint::Lane& in = checkpoint.lanes[i];
    if (in.policy_name != lanes_[i].policy->name()) {
      return Status::InvalidArgument(
          "checkpoint lane " + std::to_string(i) + " holds policy '" +
          in.policy_name + "' but this stream has '" +
          lanes_[i].policy->name() + "'");
    }
    if (in.accounts.size() != n || in.loaded.size() != n) {
      return Status::InvalidArgument(
          "checkpoint lane " + std::to_string(i) +
          " is sized for (=" + std::to_string(in.accounts.size()) +
          ") functions, expected (=" + std::to_string(n) + ")");
    }
    if (in.memory_series.size() != expected_series) {
      return Status::InvalidArgument(
          "checkpoint lane " + std::to_string(i) + " memory series has (=" +
          std::to_string(in.memory_series.size()) +
          ") entries but the cursor implies (=" +
          std::to_string(expected_series) + ")");
    }
    // A LatencyLane blob is never empty, so presence of latency state is
    // exactly "the origin stream ran with a latency block".
    if (in.latency_state.empty() != (lanes_[i].latency == nullptr)) {
      return Status::InvalidArgument(
          "checkpoint lane " + std::to_string(i) +
          (in.latency_state.empty()
               ? " has no latency state but this stream has a latency block"
               : " carries latency state but this stream has no latency "
                 "block"));
    }
  }

  // Shape checks all passed; hand the policies their state, then reinstate
  // the engine-side counters. A RestoreState failure here (e.g. a corrupt
  // policy blob) leaves the stream in an unspecified mix of old and new
  // state — callers must discard the stream on a non-OK Restore.
  for (size_t i = 0; i < lanes_.size(); ++i) {
    SPES_RETURN_NOT_OK(
        lanes_[i].policy->RestoreState(checkpoint.lanes[i].policy_state));
    if (lanes_[i].latency != nullptr) {
      SPES_RETURN_NOT_OK(lanes_[i].latency->RestoreState(
          checkpoint.lanes[i].latency_state, expected_series));
    }
  }
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const SimCheckpoint::Lane& in = checkpoint.lanes[i];
    Lane& lane = lanes_[i];
    lane.memory_series = in.memory_series;
    lane.totals = in.totals;
    lane.overhead_seconds = in.overhead_seconds;
    MemSet mem(n);
    for (size_t f = 0; f < n; ++f) {
      if (in.loaded[f]) mem.Add(f);
    }
    lane.mem = std::move(mem);
    lane.cols.LoadFrom(in.accounts, lane.mem, checkpoint.cursor);
  }
  cursor_ = checkpoint.cursor;
  stopped_ = checkpoint.stopped;
  if (options_.recorder != nullptr) {
    options_.recorder->CheckpointEvent("restore", options_.recorder_slot,
                                       static_cast<uint64_t>(cursor_));
  }
  return Status::OK();
}

std::string SerializeCheckpoint(const SimCheckpoint& checkpoint) {
  bool has_latency = false;
  for (const SimCheckpoint::Lane& lane : checkpoint.lanes) {
    if (!lane.latency_state.empty()) has_latency = true;
  }
  BinaryWriter w;
  w.PutBytes(kCheckpointMagic);
  w.PutU32(has_latency ? kCheckpointVersionLatency : kCheckpointVersion);
  w.PutI32(checkpoint.cursor);
  w.PutI32(checkpoint.train_minutes);
  w.PutI32(checkpoint.end_minute);
  w.PutBool(checkpoint.pin_executing_functions);
  w.PutU64(checkpoint.num_functions);
  w.PutBool(checkpoint.stopped);
  w.PutU64(checkpoint.lanes.size());
  for (const SimCheckpoint::Lane& lane : checkpoint.lanes) {
    w.PutBytes(lane.policy_name);
    w.PutU64(lane.accounts.size());
    for (const FunctionAccount& acc : lane.accounts) {
      w.PutU64(acc.invocations);
      w.PutU64(acc.invoked_minutes);
      w.PutU64(acc.cold_starts);
      w.PutU64(acc.loaded_minutes);
      w.PutU64(acc.wasted_minutes);
    }
    w.PutU64(lane.memory_series.size());
    for (uint32_t v : lane.memory_series) w.PutU32(v);
    w.PutU64(lane.loaded.size());
    for (uint8_t v : lane.loaded) w.PutU8(v);
    w.PutU64(lane.totals.invocations);
    w.PutU64(lane.totals.cold_starts);
    w.PutU64(lane.totals.loaded_instance_minutes);
    w.PutU64(lane.totals.wasted_memory_minutes);
    w.PutDouble(lane.overhead_seconds);
    w.PutBytes(lane.policy_state);
    if (has_latency) w.PutBytes(lane.latency_state);
  }
  return w.Take();
}

Result<SimCheckpoint> ParseCheckpoint(const std::string& bytes) {
  BinaryReader r(bytes);
  SPES_ASSIGN_OR_RETURN(const std::string magic, r.Bytes());
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument(
        "not a SPES checkpoint (bad magic tag)");
  }
  SPES_ASSIGN_OR_RETURN(const uint32_t version, r.U32());
  if (version != kCheckpointVersion && version != kCheckpointVersionLatency) {
    return Status::InvalidArgument(
        "unsupported checkpoint version (=" + std::to_string(version) +
        "), expected (=" + std::to_string(kCheckpointVersion) + ") or (=" +
        std::to_string(kCheckpointVersionLatency) + ")");
  }
  SimCheckpoint checkpoint;
  SPES_ASSIGN_OR_RETURN(checkpoint.cursor, r.I32());
  SPES_ASSIGN_OR_RETURN(checkpoint.train_minutes, r.I32());
  SPES_ASSIGN_OR_RETURN(checkpoint.end_minute, r.I32());
  SPES_ASSIGN_OR_RETURN(checkpoint.pin_executing_functions, r.Bool());
  SPES_ASSIGN_OR_RETURN(checkpoint.num_functions, r.U64());
  SPES_ASSIGN_OR_RETURN(checkpoint.stopped, r.Bool());
  // Minimal encoded lane: 80 bytes (empty name/blob/vector prefixes +
  // totals + overhead) — bounds reserve() against corrupt counts.
  SPES_ASSIGN_OR_RETURN(const uint64_t num_lanes, r.Length(80));
  checkpoint.lanes.reserve(num_lanes);
  for (uint64_t i = 0; i < num_lanes; ++i) {
    SimCheckpoint::Lane lane;
    SPES_ASSIGN_OR_RETURN(lane.policy_name, r.Bytes());
    SPES_ASSIGN_OR_RETURN(const uint64_t num_accounts, r.Length(40));
    lane.accounts.reserve(num_accounts);
    for (uint64_t k = 0; k < num_accounts; ++k) {
      FunctionAccount acc;
      SPES_ASSIGN_OR_RETURN(acc.invocations, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.invoked_minutes, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.cold_starts, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.loaded_minutes, r.U64());
      SPES_ASSIGN_OR_RETURN(acc.wasted_minutes, r.U64());
      lane.accounts.push_back(acc);
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t num_series, r.Length(4));
    lane.memory_series.reserve(num_series);
    for (uint64_t k = 0; k < num_series; ++k) {
      SPES_ASSIGN_OR_RETURN(const uint32_t v, r.U32());
      lane.memory_series.push_back(v);
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t num_loaded, r.Length(1));
    lane.loaded.reserve(num_loaded);
    for (uint64_t k = 0; k < num_loaded; ++k) {
      SPES_ASSIGN_OR_RETURN(const uint8_t v, r.U8());
      lane.loaded.push_back(v);
    }
    SPES_ASSIGN_OR_RETURN(lane.totals.invocations, r.U64());
    SPES_ASSIGN_OR_RETURN(lane.totals.cold_starts, r.U64());
    SPES_ASSIGN_OR_RETURN(lane.totals.loaded_instance_minutes, r.U64());
    SPES_ASSIGN_OR_RETURN(lane.totals.wasted_memory_minutes, r.U64());
    SPES_ASSIGN_OR_RETURN(lane.overhead_seconds, r.Double());
    SPES_ASSIGN_OR_RETURN(lane.policy_state, r.Bytes());
    if (version >= kCheckpointVersionLatency) {
      SPES_ASSIGN_OR_RETURN(lane.latency_state, r.Bytes());
    }
    checkpoint.lanes.push_back(std::move(lane));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(r.remaining()) +
        " trailing bytes");
  }
  return checkpoint;
}

}  // namespace spes
