// The declarative Scenario API: a simulation scenario as data.
//
// A ScenarioSpec captures everything one figure point needs — where the
// trace comes from (generator config or an Azure-format CSV directory),
// an ordered chain of trace transforms (trace/transform.h) applied after
// realization, the train/simulate window, the engine knobs, and the policy
// as a registry spec (core/policy_registry.h). RunScenario() realizes the
// trace, builds the policy and replays it; a ScenarioSession caches one
// realized trace — plus every transformed variant it is asked for — so
// many specs can run against it; a TraceCache shares realized traces
// across specs keyed on source + transform chain; and SuiteRunner
// (runner/suite_runner.h) accepts a whole vector<ScenarioSpec> so a figure
// sweep — including a sweep over stressed workload variants — is a batch
// of data, not hand-wired Simulate() calls.

#ifndef SPES_SIM_SCENARIO_H_
#define SPES_SIM_SCENARIO_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "core/policy_registry.h"
#include "sim/engine.h"
#include "sim/observer.h"
#include "sim/stream.h"
#include "trace/generator.h"
#include "trace/trace.h"
#include "trace/transform.h"

namespace spes {

/// \brief Where a scenario's workload comes from, plus how it is stressed.
struct TraceSpec {
  enum class Source {
    /// No materializable source: the trace is supplied at run time via
    /// RunScenario(trace, spec) or a ScenarioSession (hand-built fleets).
    kProvided,
    /// Synthesized by trace/generator with `generator`.
    kGenerator,
    /// Parsed from Azure-format daily CSVs under `csv_dir`.
    kAzureCsvDir,
    /// Read from a packed binary trace file (trace/trace_file.h) at
    /// `trace_file`. RealizeTrace() loads it fully; TraceCache::OpenStream
    /// serves it as a chunk-streamed source without materializing.
    kTraceFile,
  };

  Source source = Source::kProvided;
  GeneratorConfig generator;
  std::string csv_dir;
  std::string trace_file;

  /// Transform chain applied, in order, after the source is realized
  /// (trace/transform.h). Empty means the raw source trace.
  std::vector<TransformSpec> transforms;

  /// \brief Fluent chain builder: appends one transform step.
  ///   TraceSpec::FromGenerator(cfg)
  ///       .Then({"load_scale", {{"factor", 2.0}}})
  ///       .Then({"inject_burst", {{"at", 720}}});
  TraceSpec& Then(TransformSpec transform) {
    transforms.push_back(std::move(transform));
    return *this;
  }

  /// \brief A generator-backed spec (no transforms).
  static TraceSpec FromGenerator(const GeneratorConfig& config) {
    TraceSpec spec;
    spec.source = Source::kGenerator;
    spec.generator = config;
    return spec;
  }

  /// \brief An Azure-CSV-backed spec (no transforms).
  static TraceSpec FromAzureCsvDir(std::string dir) {
    TraceSpec spec;
    spec.source = Source::kAzureCsvDir;
    spec.csv_dir = std::move(dir);
    return spec;
  }

  /// \brief A packed-trace-file-backed spec (no transforms).
  static TraceSpec FromTraceFile(std::string path) {
    TraceSpec spec;
    spec.source = Source::kTraceFile;
    spec.trace_file = std::move(path);
    return spec;
  }
};

/// \brief Canonical cache key of a trace spec: the source fingerprint
/// (every generator field, or the CSV directory) plus the formatted
/// transform chain. Equal keys realize bitwise-identical traces, so the
/// key is what TraceCache and ScenarioSession deduplicate on.
std::string TraceSpecKey(const TraceSpec& spec);

/// \brief One simulation scenario, fully described as data.
struct ScenarioSpec {
  /// Display label for reports; the policy's name() when empty.
  std::string label;
  TraceSpec trace;
  PolicySpec policy;
  SimOptions options;
  /// Observers attached to the run's SimStream (borrowed; must outlive
  /// the run). Every entry point — RunScenario, ScenarioSession::Run,
  /// OpenScenario, the lockstep batch forms and the SuiteRunner spec
  /// batches — honours them; null entries are ignored.
  std::vector<SimObserver*> observers;
  /// When set, the scenario simulates a multi-node cluster
  /// (cluster/cluster.h): the run goes through a ClusterSession instead
  /// of a single SimStream, `policy` is instantiated once per node, and
  /// the outcome carries the per-node breakdown in
  /// ScenarioOutcome::cluster. Cluster specs cannot be opened as a raw
  /// SimStream (OpenScenario) or share a lockstep stream (RunLockstep).
  std::optional<ClusterSpec> cluster;
};

/// \brief Up-front spec validation: an empty policy name or invalid
/// SimOptions window yields InvalidArgument naming the bad field. Trace
/// source problems surface later, from RealizeTrace().
Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// \brief Materializes the spec's trace source and applies its transform
/// chain. Source::kProvided is an error here — such specs only run with
/// an externally supplied trace.
Result<Trace> RealizeTrace(const TraceSpec& spec);

/// \brief Outcome of one scenario: the simulation result plus the trained
/// policy instance (kept alive for per-type breakdowns and inspection).
/// For cluster scenarios, `outcome` is the fleet-wide aggregate, `policy`
/// is null (the per-node instances live in the cluster breakdown), and
/// `cluster` carries the full ClusterOutcome.
struct ScenarioOutcome {
  SimulationOutcome outcome;
  std::unique_ptr<Policy> policy;
  std::shared_ptr<const ClusterOutcome> cluster;
};

/// \brief Runs `spec` against an externally supplied trace (the spec's
/// trace source and transforms are ignored): validates, builds the policy
/// through PolicyRegistry::Global(), and simulates.
Result<ScenarioOutcome> RunScenario(const Trace& trace,
                                    const ScenarioSpec& spec);

/// \brief One-shot entry point: realizes the spec's trace source, applies
/// its transform chain, then runs as above.
Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec);

/// \brief Runs `spec` against a chunk-streamed source (the spec's trace
/// source is ignored; e.g. a TraceFileSource over a packed trace that
/// would not fit in memory). The spec must not carry transforms —
/// transforms need a realized trace; pack the transformed workload
/// instead (a TraceCache with a pack directory does exactly that).
/// Cluster specs drive a ClusterSession over the source. Outcomes are
/// bitwise-identical to running the realized trace in memory.
Result<ScenarioOutcome> RunScenarioStreamed(TraceSource& source,
                                            const ScenarioSpec& spec);

/// \brief An open, incrementally drivable scenario: the registry-built
/// policy plus the SimStream over it, with the spec's observers already
/// attached. Move-only; the trace must outlive it.
struct ScenarioStream {
  std::unique_ptr<Policy> policy;
  SimStream stream;
};

/// \brief Opens `spec` as a stream over an externally supplied trace (the
/// spec's trace source and transforms are ignored, like RunScenario):
/// validate, build the policy, train it, position the cursor — but leave
/// the driving (Step/RunUntil/Checkpoint/Finish) to the caller.
Result<ScenarioStream> OpenScenario(const Trace& trace,
                                    const ScenarioSpec& spec);

/// \brief Lockstep batch form: every spec becomes one lane of a single
/// SimStream, so the whole sweep walks `trace` ONCE — one shared arrival
/// decode per minute — instead of once per policy. Requirements, each
/// yielding InvalidArgument naming the offending spec and values:
/// every spec must validate, and every spec must carry the same
/// SimOptions as specs[0] (lockstep lanes share one cursor). The specs'
/// trace sources/transforms are ignored; the union of all specs'
/// observers is attached (MinuteView::lane tells runs apart). Outcomes
/// are returned in spec order.
Result<std::vector<ScenarioOutcome>> RunLockstep(
    const Trace& trace, const std::vector<ScenarioSpec>& specs);

/// \brief Realized-trace cache shared across specs: Get() materializes
/// each distinct (source, transform chain) — see TraceSpecKey() — exactly
/// once and hands out shared, immutable traces. Thread-safe; the
/// trace-less SuiteRunner::Run(specs) overload uses one per batch so a
/// sweep over N stressed variants of one source realizes the source once
/// per variant, not once per spec.
class TraceCache {
 public:
  /// \brief Purely in-memory cache (the original behaviour).
  TraceCache() = default;

  /// \brief Adds a disk tier: realized traces are packed once into
  /// `pack_dir` (created on demand) as binary trace files named by the
  /// TraceSpecKey fingerprint, so later misses — in this process or any
  /// other pointed at the same directory — reopen the packed file instead
  /// of re-realizing the source ("realize once, reopen many").
  /// OpenStream() additionally hands out chunk-streamed sources over the
  /// packed files without materializing the trace at all.
  explicit TraceCache(std::string pack_dir) : pack_dir_(std::move(pack_dir)) {}

  /// \brief The realized trace for `spec`, materializing on first use.
  /// Source::kProvided yields InvalidArgument (nothing to realize). With
  /// a disk tier, a miss realizes + packs the spec, then loads the packed
  /// file (or just loads it, if an earlier run left it behind).
  Result<std::shared_ptr<const Trace>> Get(const TraceSpec& spec);

  /// \brief A chunk-streamed TraceSource for `spec`. A kTraceFile spec
  /// without transforms opens its file directly; everything else needs
  /// the disk tier (InvalidArgument without one): the spec is realized
  /// and packed once — transform chains are applied *before* packing, so
  /// the stream serves the transformed workload — and every call opens a
  /// fresh handle over the packed file.
  Result<std::unique_ptr<TraceSource>> OpenStream(const TraceSpec& spec);

  /// \brief Packs `spec` into the disk tier and returns the packed file's
  /// path (realizing only when the file does not exist yet). Requires a
  /// disk tier.
  Result<std::string> EnsurePacked(const TraceSpec& spec);

  /// \brief Number of distinct realized traces held in memory.
  [[nodiscard]] size_t size() const;

  /// \brief Attaches an optional observability recorder: Get() emits
  /// cache hit/miss events and realize spans, EnsurePacked() emits pack
  /// events and pack spans. Pass nullptr to detach. The recorder must
  /// outlive the cache's use; set it before sharing the cache across
  /// threads (the pointer itself is unsynchronized).
  void set_recorder(RunRecorder* recorder) { recorder_ = recorder; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Trace>> by_key_;
  /// Disk tier root; empty = memory only. pack_mu_ serializes packing so
  /// concurrent misses on one spec realize it exactly once.
  std::string pack_dir_;
  std::mutex pack_mu_;
  /// Optional observability hook (obs/recorder.h); never feeds results.
  RunRecorder* recorder_ = nullptr;
};

/// \brief A realized workload that many scenarios run against. Opening a
/// session materializes the trace once (including the opening spec's own
/// transform chain); Run() then costs only the simulation — except that a
/// spec whose TraceSpec carries transforms runs against the session's
/// base trace with that chain applied, cached per distinct chain. The
/// base trace is read-only and the variant cache is internally locked, so
/// concurrent Run() calls (e.g. through SuiteRunner) are safe.
class ScenarioSession {
 public:
  /// \brief Wraps an already-built trace (hand-crafted fleets).
  explicit ScenarioSession(Trace trace)
      : trace_(std::make_shared<const Trace>(std::move(trace))),
        variants_(std::make_shared<VariantCache>()) {}

  /// \brief Materializes `source` (with its transforms) into a session.
  static Result<ScenarioSession> Open(const TraceSpec& source);

  /// \brief The session's base (untransformed) trace.
  [[nodiscard]] const Trace& trace() const { return *trace_; }

  /// \brief Runs `spec` against the base trace, with spec.trace.transforms
  /// (if any) applied on top — the spec's trace *source* is ignored.
  [[nodiscard]] Result<ScenarioOutcome> Run(const ScenarioSpec& spec) const;

  /// \brief Lockstep batch over the session's workload: one SimStream,
  /// one trace walk, N policy lanes (see the free RunLockstep above). On
  /// top of its requirements, every spec must carry the same transform
  /// chain (the lanes share one realized workload); the shared chain is
  /// applied through the session's variant cache.
  [[nodiscard]] Result<std::vector<ScenarioOutcome>> RunLockstep(
      const std::vector<ScenarioSpec>& specs) const;

  /// \brief The base trace with `chain` applied, realized at most once
  /// per distinct chain (keyed by FormatTransformChain).
  [[nodiscard]] Result<std::shared_ptr<const Trace>> TransformedTrace(
      const std::vector<TransformSpec>& chain) const;

 private:
  struct VariantCache {
    std::mutex mu;
    std::map<std::string, std::shared_ptr<const Trace>> by_chain;
  };

  std::shared_ptr<const Trace> trace_;
  std::shared_ptr<VariantCache> variants_;
};

}  // namespace spes

#endif  // SPES_SIM_SCENARIO_H_
