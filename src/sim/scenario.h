// The declarative Scenario API: a simulation scenario as data.
//
// A ScenarioSpec captures everything one figure point needs — where the
// trace comes from (generator config or an Azure-format CSV directory),
// the train/simulate window, the engine knobs, and the policy as a
// registry spec (core/policy_registry.h). RunScenario() realizes the
// trace, builds the policy and replays it; a ScenarioSession caches one
// realized trace so many specs can run against it; and SuiteRunner
// (runner/suite_runner.h) accepts a whole vector<ScenarioSpec> so a figure
// sweep is a batch of data, not hand-wired Simulate() calls.

#ifndef SPES_SIM_SCENARIO_H_
#define SPES_SIM_SCENARIO_H_

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "core/policy_registry.h"
#include "sim/engine.h"
#include "trace/generator.h"
#include "trace/trace.h"

namespace spes {

/// \brief Where a scenario's workload comes from.
struct TraceSpec {
  enum class Source {
    /// No materializable source: the trace is supplied at run time via
    /// RunScenario(trace, spec) or a ScenarioSession (hand-built fleets).
    kProvided,
    /// Synthesized by trace/generator with `generator`.
    kGenerator,
    /// Parsed from Azure-format daily CSVs under `csv_dir`.
    kAzureCsvDir,
  };

  Source source = Source::kProvided;
  GeneratorConfig generator;
  std::string csv_dir;

  static TraceSpec FromGenerator(const GeneratorConfig& config) {
    TraceSpec spec;
    spec.source = Source::kGenerator;
    spec.generator = config;
    return spec;
  }

  static TraceSpec FromAzureCsvDir(std::string dir) {
    TraceSpec spec;
    spec.source = Source::kAzureCsvDir;
    spec.csv_dir = std::move(dir);
    return spec;
  }
};

/// \brief One simulation scenario, fully described as data.
struct ScenarioSpec {
  /// Display label for reports; the policy's name() when empty.
  std::string label;
  TraceSpec trace;
  PolicySpec policy;
  SimOptions options;
};

/// \brief Up-front spec validation: an empty policy name or invalid
/// SimOptions window yields InvalidArgument naming the bad field. Trace
/// source problems surface later, from RealizeTrace().
Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// \brief Materializes the spec's trace source. Source::kProvided is an
/// error here — such specs only run with an externally supplied trace.
Result<Trace> RealizeTrace(const TraceSpec& spec);

/// \brief Outcome of one scenario: the simulation result plus the trained
/// policy instance (kept alive for per-type breakdowns and inspection).
struct ScenarioOutcome {
  SimulationOutcome outcome;
  std::unique_ptr<Policy> policy;
};

/// \brief Runs `spec` against an externally supplied trace (the spec's
/// trace source is ignored): validates, builds the policy through
/// PolicyRegistry::Global(), and simulates.
Result<ScenarioOutcome> RunScenario(const Trace& trace,
                                    const ScenarioSpec& spec);

/// \brief One-shot entry point: realizes the spec's trace source, then
/// runs as above.
Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec);

/// \brief A realized workload that many scenarios run against. Opening a
/// session materializes the trace once; Run() then costs only the
/// simulation. The session is read-only after construction, so concurrent
/// Run() calls (e.g. through SuiteRunner) are safe.
class ScenarioSession {
 public:
  /// \brief Wraps an already-built trace (hand-crafted fleets).
  explicit ScenarioSession(Trace trace) : trace_(std::move(trace)) {}

  /// \brief Materializes `source` into a session.
  static Result<ScenarioSession> Open(const TraceSpec& source);

  const Trace& trace() const { return trace_; }

  Result<ScenarioOutcome> Run(const ScenarioSpec& spec) const {
    return RunScenario(trace_, spec);
  }

 private:
  Trace trace_;
};

}  // namespace spes

#endif  // SPES_SIM_SCENARIO_H_
