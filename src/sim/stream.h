// SimStream: the incremental, observable simulation session the engine is
// built on.
//
// A stream is opened over a trace and one or more policies, then driven
// minute-by-minute: Step() simulates one minute, RunUntil(t) advances to an
// absolute minute, Finish()/FinishAll() run to the end of the window and
// return the outcome(s). The §V-A semantics of the batch engine — train
// prefix, per-minute policy step, engine-side cold-start accounting,
// execution pinning — are preserved bit-for-bit; Simulate() in sim/engine.h
// is now a thin wrapper over a full-window stream.
//
// Three capabilities come with the session form:
//   * SimObserver hooks (sim/observer.h): per-minute callbacks with the
//     lane's arrivals, MemSet and incremental counters — time-series
//     capture, live snapshots, progress, early stop.
//   * Checkpoint()/Restore(): snapshot the engine cursor, per-function
//     accounts and (for checkpointable policies) the policy-visible state;
//     SerializeCheckpoint()/ParseCheckpoint() turn snapshots into bytes
//     for cross-process resume.
//   * Lockstep lanes: N policies advance over ONE shared arrival decode
//     per minute, so a policy sweep walks the trace once instead of once
//     per policy.

#ifndef SPES_SIM_STREAM_H_
#define SPES_SIM_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "latency/latency.h"
#include "sim/accounting.h"
#include "sim/columnar.h"
#include "sim/engine.h"
#include "sim/memset.h"
#include "sim/observer.h"
#include "sim/policy.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace spes {

/// \brief A resumable snapshot of a SimStream: the cursor plus, per lane,
/// every counter the engine maintains and the policy's serialized state.
/// Produced by SimStream::Checkpoint(), consumed by SimStream::Restore();
/// SerializeCheckpoint()/ParseCheckpoint() round-trip it through bytes.
struct SimCheckpoint {
  /// Next minute to simulate when resumed.
  int cursor = 0;
  /// The window the stream was created with (validated on Restore).
  int train_minutes = 0;
  int end_minute = 0;  ///< resolved end (never 0 unless the window is empty)
  bool pin_executing_functions = true;
  uint64_t num_functions = 0;
  bool stopped = false;  ///< an early stop was requested before the snapshot

  struct Lane {
    std::string policy_name;  ///< Policy::name(), validated on Restore
    std::vector<FunctionAccount> accounts;
    std::vector<uint32_t> memory_series;
    std::vector<uint8_t> loaded;  ///< MemSet membership bytes
    LiveTotals totals;
    double overhead_seconds = 0.0;
    std::string policy_state;  ///< Policy::SaveState() blob
    /// LatencyLane::SaveState() blob when the stream ran with a latency
    /// block; empty otherwise. Serialized checkpoints stay at version 1
    /// (byte-identical to before the latency subsystem existed) when
    /// every lane's blob is empty; any non-empty blob bumps the tag to
    /// version 2.
    std::string latency_state;
  };
  std::vector<Lane> lanes;
};

/// \brief Byte form of a checkpoint (magic-tagged, little-endian).
std::string SerializeCheckpoint(const SimCheckpoint& checkpoint);

/// \brief Parses bytes produced by SerializeCheckpoint(); truncated or
/// corrupt input yields InvalidArgument instead of undefined behaviour.
Result<SimCheckpoint> ParseCheckpoint(const std::string& bytes);

/// \brief An incremental simulation session. Create() trains the
/// policy/policies and positions the cursor at the first simulated minute.
/// The trace, policies and observers are borrowed and must outlive the
/// stream. Not thread-safe; drive each stream from one thread.
class SimStream {
 public:
  /// \brief Single-policy stream. Fails like Simulate() on a null policy,
  /// an invalid window, or a train window past the trace horizon.
  static Result<SimStream> Create(const Trace& trace, Policy* policy,
                                  const SimOptions& options);

  /// \brief Lockstep multi-policy stream: every lane advances over one
  /// shared arrival decode per minute. Lanes must be distinct, non-null
  /// policy instances (each lane owns its MemSet and counters).
  static Result<SimStream> Create(const Trace& trace,
                                  std::vector<Policy*> policies,
                                  const SimOptions& options);

  /// \brief Streamed single-policy stream over any TraceSource (e.g. a
  /// packed trace file): arrivals are pulled in chunked minute windows, so
  /// the full trace never needs to exist in memory. The policy trains on
  /// the materialized train prefix; policies whose RequiresFullTrace() is
  /// true are rejected with InvalidArgument. The source must outlive the
  /// stream. Outcomes are bitwise-identical to the in-memory overloads.
  static Result<SimStream> Create(TraceSource& source, Policy* policy,
                                  const SimOptions& options);

  /// \brief Streamed lockstep form; see the TraceSource overload above.
  static Result<SimStream> Create(TraceSource& source,
                                  std::vector<Policy*> policies,
                                  const SimOptions& options);

  /// \brief Attaches a per-minute observer (borrowed). Must be called
  /// before the first Step(); OnStreamStart fires at that first step.
  void AddObserver(SimObserver* observer);

  /// \name Cursor state
  /// @{
  [[nodiscard]] int cursor() const { return cursor_; }          ///< next minute to run
  [[nodiscard]] int start_minute() const { return start_; }     ///< == train_minutes
  [[nodiscard]] int end_minute() const { return end_; }         ///< resolved end
  [[nodiscard]] size_t num_lanes() const { return lanes_.size(); }
  [[nodiscard]] const Policy* policy(size_t lane) const { return lanes_[lane].policy; }
  /// Minutes decoded so far: one arrival decode serves every lane, so
  /// this counts simulated minutes, not minutes x lanes.
  [[nodiscard]] int64_t minutes_decoded() const { return minutes_decoded_; }
  /// True once the cursor reached end_minute(), an observer (or
  /// RequestStop) halted the stream, or Finish()/FinishAll() consumed it.
  [[nodiscard]] bool done() const { return finished_ || stopped_ || cursor_ >= end_; }
  /// True when the stream halted before end_minute().
  [[nodiscard]] bool stopped_early() const { return stopped_; }
  /// @}

  /// \brief Simulates one minute across all lanes. Cancelled once the
  /// stream was stopped early (observer or RequestStop), OutOfRange once
  /// it is exhausted or consumed by Finish().
  Status Step();

  /// \brief Steps until the cursor reaches min(minute, end_minute()). A
  /// minute at or before the cursor is a no-op. Cancelled when an early
  /// stop (observer or RequestStop) halts the stream short of the target;
  /// OutOfRange if the stream was already consumed by Finish().
  Status RunUntil(int minute);

  /// \brief Convenience: RunUntil(end_minute()).
  Status RunToEnd() { return RunUntil(end_); }

  /// \brief Live fleet metrics of one lane over the minutes simulated so
  /// far (wall-clock overhead included). O(n) — fine per snapshot, use an
  /// observer with LiveTotals for per-minute monitoring.
  [[nodiscard]] FleetMetrics SnapshotMetrics(size_t lane) const;

  /// \brief Runs to the end of the window (unless already stopped) and
  /// returns the single lane's outcome, consuming the stream. Requires a
  /// single-lane stream; lockstep streams use FinishAll().
  Result<SimulationOutcome> Finish();

  /// \brief Runs to the end of the window (unless already stopped) and
  /// returns every lane's outcome in lane order, consuming the stream.
  Result<std::vector<SimulationOutcome>> FinishAll();

  /// \brief Halts the stream as if an observer returned false; done()
  /// becomes true, further Step()/RunUntil() calls return Cancelled, and
  /// Finish() returns the partial-window outcome.
  void RequestStop() { stopped_ = true; }

  /// \brief Snapshot of the cursor, per-lane counters and policy state.
  /// Every lane's policy must support checkpointing (NotImplemented
  /// naming the first lane that does not, otherwise). Fails once the
  /// stream has been consumed by Finish()/FinishAll().
  [[nodiscard]] Result<SimCheckpoint> Checkpoint() const;

  /// \brief Rewinds/forwards this stream to `checkpoint`. The stream must
  /// have been created over the same trace, window and policy line-up as
  /// the checkpoint's origin (validated field by field, InvalidArgument
  /// naming the mismatch); policies are handed their serialized state.
  /// After a successful restore the stream continues from
  /// checkpoint.cursor exactly as the original would have.
  Status Restore(const SimCheckpoint& checkpoint);

 private:
  struct Lane {
    Policy* policy = nullptr;
    MemSet mem{0};
    /// Columnar (SoA) per-function counters — the hot-loop representation.
    LaneColumns cols;
    std::vector<uint32_t> memory_series;
    LiveTotals totals;
    double overhead_seconds = 0.0;
    /// Classic account view, materialized on demand (observers attached,
    /// snapshots, checkpoints, outcomes); empty on the fast path.
    std::vector<FunctionAccount> scratch_accounts;
    /// Per-lane latency/queue state when SimOptions.latency is set; null
    /// (and the latency path untouched) otherwise.
    std::unique_ptr<LatencyLane> latency;
  };

  SimStream(TraceSource* source, std::unique_ptr<TraceSource> owned,
            const SimOptions& options, int end);

  /// Delivers OnStreamStart exactly once, before any other callback.
  void EnsureStarted();

  /// Builds each lane's LatencyLane from options_.latency (called by the
  /// Create() overloads after the lanes exist).
  Status EnableLatency();

  /// One simulated minute for every lane over a single arrival decode.
  /// Fails (without advancing the cursor) when the source fails mid-run —
  /// only possible for disk-backed sources.
  Status StepLocked();

  /// The in-memory adapter when created from a Trace; null for borrowed
  /// sources. Heap-allocated so source_ stays stable across moves.
  std::unique_ptr<TraceSource> owned_source_;
  TraceSource* source_;
  SimOptions options_;
  int start_;
  int end_;
  int cursor_;
  bool started_ = false;   ///< OnStreamStart delivered
  bool stopped_ = false;   ///< early stop requested
  bool finished_ = false;  ///< outcomes moved out
  int64_t minutes_decoded_ = 0;
  std::vector<Lane> lanes_;
  std::vector<SimObserver*> observers_;

  /// Block-transposed minute-major decode shared by every lane.
  ArrivalDecoder decoder_;
  /// This minute's arrivals, copied from the decoder block (the Policy
  /// API takes a vector); reused across steps.
  std::vector<Invocation> arrivals_;
  /// Per-request sampling keys shared by every latency lane; null when
  /// the latency subsystem is disabled.
  std::shared_ptr<const std::vector<uint64_t>> latency_hashes_;
  /// Scratch: this minute's per-arrival cold flags (latency path only).
  std::vector<uint8_t> cold_flags_;
  /// Open "simulate" span token when SimOptions.recorder is set; closed
  /// by FinishAll(). Observability only — never feeds sim state.
  uint64_t simulate_span_ = 0;
};

}  // namespace spes

#endif  // SPES_SIM_STREAM_H_
