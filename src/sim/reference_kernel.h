// The naive object-per-function simulation loop, kept verbatim as the
// differential-testing oracle (and speedup baseline) for the columnar
// kernel behind SimStream.
//
// SimulateReference() reproduces the seed engine exactly: a full O(n)
// arrival-decode scan per minute, byte-per-function membership mirrors,
// and an O(n) residency pass striding array-of-struct FunctionAccounts.
// It intentionally shares NO hot-path code with sim/columnar.* — only the
// Policy/MemSet API and ComputeFleetMetrics — so tests can assert that the
// fast kernel's accounts, totals and memory series are bitwise-equal to an
// independent implementation (tests/columnar_diff_test.cc), and benches
// can report the honest before/after ratio.

#ifndef SPES_SIM_REFERENCE_KERNEL_H_
#define SPES_SIM_REFERENCE_KERNEL_H_

#include "common/status.h"
#include "sim/accounting.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "trace/trace.h"

namespace spes {

/// \brief Batch simulation of `policy` over `trace` using the naive
/// per-function reference loop. Same contract and semantics as
/// Simulate(); exists solely for differential testing and benchmarking.
Result<SimulationOutcome> SimulateReference(const Trace& trace,
                                            Policy* policy,
                                            const SimOptions& options);

}  // namespace spes

#endif  // SPES_SIM_REFERENCE_KERNEL_H_
