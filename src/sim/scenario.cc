#include "sim/scenario.h"

#include <utility>

#include "trace/azure_csv.h"

namespace spes {

namespace {

/// Serializes every generator field, so two configs share a cache key iff
/// they generate bitwise-identical traces. Field order is fixed.
std::string GeneratorFingerprint(const GeneratorConfig& config) {
  const auto d = [](double value) {
    return FormatParamValue(ParamValue(value));
  };
  return "generator{num_functions=" + std::to_string(config.num_functions) +
         ",days=" + std::to_string(config.days) +
         ",seed=" + std::to_string(config.seed) +
         ",mean_functions_per_app=" + d(config.mean_functions_per_app) +
         ",mean_apps_per_owner=" + d(config.mean_apps_per_owner) +
         ",concept_shift_fraction=" + d(config.concept_shift_fraction) +
         ",unseen_fraction=" + d(config.unseen_fraction) +
         ",unseen_days=" + std::to_string(config.unseen_days) +
         ",chain_app_fraction=" + d(config.chain_app_fraction) +
         ",chain_follow_probability=" + d(config.chain_follow_probability) +
         ",chain_max_lag=" + std::to_string(config.chain_max_lag) +
         ",intensity_zipf_exponent=" + d(config.intensity_zipf_exponent) +
         "}";
}

}  // namespace

std::string TraceSpecKey(const TraceSpec& spec) {
  std::string key;
  switch (spec.source) {
    case TraceSpec::Source::kProvided:
      key = "provided";
      break;
    case TraceSpec::Source::kGenerator:
      key = GeneratorFingerprint(spec.generator);
      break;
    case TraceSpec::Source::kAzureCsvDir:
      key = "csv{dir=" + spec.csv_dir + "}";
      break;
  }
  if (!spec.transforms.empty()) {
    key += " | " + FormatTransformChain(spec.transforms);
  }
  return key;
}

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  if (spec.policy.name.empty()) {
    return Status::InvalidArgument(
        "ScenarioSpec.policy.name must not be empty");
  }
  return ValidateSimOptions(spec.options);
}

Result<Trace> RealizeTrace(const TraceSpec& spec) {
  Result<Trace> realized = [&spec]() -> Result<Trace> {
    switch (spec.source) {
      case TraceSpec::Source::kProvided:
        return Status::InvalidArgument(
            "TraceSpec.source is kProvided (no materializable source); pass "
            "the trace via RunScenario(trace, spec) or ScenarioSession");
      case TraceSpec::Source::kGenerator: {
        SPES_ASSIGN_OR_RETURN(GeneratedTrace generated,
                              GenerateTrace(spec.generator));
        return std::move(generated.trace);
      }
      case TraceSpec::Source::kAzureCsvDir:
        if (spec.csv_dir.empty()) {
          return Status::InvalidArgument(
              "TraceSpec.csv_dir must not be empty for Source::kAzureCsvDir");
        }
        return ReadAzureTraceDir(spec.csv_dir);
    }
    return Status::Internal("unhandled TraceSpec::Source");
  }();
  if (!realized.ok() || spec.transforms.empty()) return realized;
  return ApplyTransforms(std::move(realized).ValueOrDie(), spec.transforms);
}

namespace {

/// Shared core: build the policy and simulate. Both public entry points
/// validate exactly once before calling this.
Result<ScenarioOutcome> RunValidated(const Trace& trace,
                                     const ScenarioSpec& spec) {
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                        PolicyRegistry::Global().Create(spec.policy));
  SPES_ASSIGN_OR_RETURN(SimulationOutcome outcome,
                        Simulate(trace, policy.get(), spec.options));
  ScenarioOutcome result;
  result.outcome = std::move(outcome);
  result.policy = std::move(policy);
  return result;
}

}  // namespace

Result<ScenarioOutcome> RunScenario(const Trace& trace,
                                    const ScenarioSpec& spec) {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  return RunValidated(trace, spec);
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec) {
  // Validate before realizing: a bad spec must not cost a trace build.
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  SPES_ASSIGN_OR_RETURN(const Trace trace, RealizeTrace(spec.trace));
  return RunValidated(trace, spec);
}

Result<std::shared_ptr<const Trace>> TraceCache::Get(const TraceSpec& spec) {
  const std::string key = TraceSpecKey(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) return it->second;
  }
  // Realize outside the lock: trace builds are the expensive part and
  // distinct keys should not serialize on each other. A racing double
  // realization of the same key is benign (both are bitwise identical;
  // the first insert wins).
  SPES_ASSIGN_OR_RETURN(Trace trace, RealizeTrace(spec));
  auto shared = std::make_shared<const Trace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mu_);
  return by_key_.emplace(key, std::move(shared)).first->second;
}

size_t TraceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_key_.size();
}

Result<ScenarioSession> ScenarioSession::Open(const TraceSpec& source) {
  SPES_ASSIGN_OR_RETURN(Trace trace, RealizeTrace(source));
  return ScenarioSession(std::move(trace));
}

Result<std::shared_ptr<const Trace>> ScenarioSession::TransformedTrace(
    const std::vector<TransformSpec>& chain) const {
  if (chain.empty()) return trace_;
  const std::string key = FormatTransformChain(chain);
  {
    std::lock_guard<std::mutex> lock(variants_->mu);
    auto it = variants_->by_chain.find(key);
    if (it != variants_->by_chain.end()) return it->second;
  }
  SPES_ASSIGN_OR_RETURN(Trace transformed, ApplyTransforms(*trace_, chain));
  auto shared = std::make_shared<const Trace>(std::move(transformed));
  std::lock_guard<std::mutex> lock(variants_->mu);
  return variants_->by_chain.emplace(key, std::move(shared)).first->second;
}

Result<ScenarioOutcome> ScenarioSession::Run(const ScenarioSpec& spec) const {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  SPES_ASSIGN_OR_RETURN(std::shared_ptr<const Trace> trace,
                        TransformedTrace(spec.trace.transforms));
  return RunValidated(*trace, spec);
}

}  // namespace spes
