#include "sim/scenario.h"

#include <utility>

#include "trace/azure_csv.h"

namespace spes {

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  if (spec.policy.name.empty()) {
    return Status::InvalidArgument(
        "ScenarioSpec.policy.name must not be empty");
  }
  return ValidateSimOptions(spec.options);
}

Result<Trace> RealizeTrace(const TraceSpec& spec) {
  switch (spec.source) {
    case TraceSpec::Source::kProvided:
      return Status::InvalidArgument(
          "TraceSpec.source is kProvided (no materializable source); pass "
          "the trace via RunScenario(trace, spec) or ScenarioSession");
    case TraceSpec::Source::kGenerator: {
      SPES_ASSIGN_OR_RETURN(GeneratedTrace generated,
                            GenerateTrace(spec.generator));
      return std::move(generated.trace);
    }
    case TraceSpec::Source::kAzureCsvDir:
      if (spec.csv_dir.empty()) {
        return Status::InvalidArgument(
            "TraceSpec.csv_dir must not be empty for Source::kAzureCsvDir");
      }
      return ReadAzureTraceDir(spec.csv_dir);
  }
  return Status::Internal("unhandled TraceSpec::Source");
}

namespace {

/// Shared core: build the policy and simulate. Both public entry points
/// validate exactly once before calling this.
Result<ScenarioOutcome> RunValidated(const Trace& trace,
                                     const ScenarioSpec& spec) {
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                        PolicyRegistry::Global().Create(spec.policy));
  SPES_ASSIGN_OR_RETURN(SimulationOutcome outcome,
                        Simulate(trace, policy.get(), spec.options));
  ScenarioOutcome result;
  result.outcome = std::move(outcome);
  result.policy = std::move(policy);
  return result;
}

}  // namespace

Result<ScenarioOutcome> RunScenario(const Trace& trace,
                                    const ScenarioSpec& spec) {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  return RunValidated(trace, spec);
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec) {
  // Validate before realizing: a bad spec must not cost a trace build.
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  SPES_ASSIGN_OR_RETURN(const Trace trace, RealizeTrace(spec.trace));
  return RunValidated(trace, spec);
}

Result<ScenarioSession> ScenarioSession::Open(const TraceSpec& source) {
  SPES_ASSIGN_OR_RETURN(Trace trace, RealizeTrace(source));
  return ScenarioSession(std::move(trace));
}

}  // namespace spes
