#include "sim/scenario.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/recorder.h"
#include "trace/azure_csv.h"
#include "trace/trace_file.h"

namespace spes {

namespace {

/// Serializes every generator field, so two configs share a cache key iff
/// they generate bitwise-identical traces. Field order is fixed.
std::string GeneratorFingerprint(const GeneratorConfig& config) {
  const auto d = [](double value) {
    return FormatParamValue(ParamValue(value));
  };
  return "generator{num_functions=" + std::to_string(config.num_functions) +
         ",days=" + std::to_string(config.days) +
         ",seed=" + std::to_string(config.seed) +
         ",mean_functions_per_app=" + d(config.mean_functions_per_app) +
         ",mean_apps_per_owner=" + d(config.mean_apps_per_owner) +
         ",concept_shift_fraction=" + d(config.concept_shift_fraction) +
         ",unseen_fraction=" + d(config.unseen_fraction) +
         ",unseen_days=" + std::to_string(config.unseen_days) +
         ",chain_app_fraction=" + d(config.chain_app_fraction) +
         ",chain_follow_probability=" + d(config.chain_follow_probability) +
         ",chain_max_lag=" + std::to_string(config.chain_max_lag) +
         ",intensity_zipf_exponent=" + d(config.intensity_zipf_exponent) +
         ",rare_fraction=" + d(config.rare_fraction) + "}";
}

/// Stable file name for a packed trace: FNV-1a 64 over the spec key, hex,
/// with a format-identifying extension. The key is the full fingerprint,
/// so distinct specs land in distinct files.
std::string PackedFileName(const std::string& key) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(hex) + ".spt";
}

}  // namespace

std::string TraceSpecKey(const TraceSpec& spec) {
  std::string key;
  switch (spec.source) {
    case TraceSpec::Source::kProvided:
      key = "provided";
      break;
    case TraceSpec::Source::kGenerator:
      key = GeneratorFingerprint(spec.generator);
      break;
    case TraceSpec::Source::kAzureCsvDir:
      key = "csv{dir=" + spec.csv_dir + "}";
      break;
    case TraceSpec::Source::kTraceFile:
      key = "trace_file{path=" + spec.trace_file + "}";
      break;
  }
  if (!spec.transforms.empty()) {
    key += " | " + FormatTransformChain(spec.transforms);
  }
  return key;
}

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  if (spec.policy.name.empty()) {
    return Status::InvalidArgument(
        "ScenarioSpec.policy.name must not be empty");
  }
  if (spec.cluster.has_value()) {
    SPES_RETURN_NOT_OK(ValidateClusterSpec(*spec.cluster));
  }
  return ValidateSimOptions(spec.options);
}

Result<Trace> RealizeTrace(const TraceSpec& spec) {
  Result<Trace> realized = [&spec]() -> Result<Trace> {
    switch (spec.source) {
      case TraceSpec::Source::kProvided:
        return Status::InvalidArgument(
            "TraceSpec.source is kProvided (no materializable source); pass "
            "the trace via RunScenario(trace, spec) or ScenarioSession");
      case TraceSpec::Source::kGenerator: {
        SPES_ASSIGN_OR_RETURN(GeneratedTrace generated,
                              GenerateTrace(spec.generator));
        return std::move(generated.trace);
      }
      case TraceSpec::Source::kAzureCsvDir:
        if (spec.csv_dir.empty()) {
          return Status::InvalidArgument(
              "TraceSpec.csv_dir must not be empty for Source::kAzureCsvDir");
        }
        return ReadAzureTraceDir(spec.csv_dir);
      case TraceSpec::Source::kTraceFile:
        if (spec.trace_file.empty()) {
          return Status::InvalidArgument(
              "TraceSpec.trace_file must not be empty for "
              "Source::kTraceFile");
        }
        return ReadTraceFile(spec.trace_file);
    }
    return Status::Internal("unhandled TraceSpec::Source");
  }();
  if (!realized.ok() || spec.transforms.empty()) return realized;
  return ApplyTransforms(std::move(realized).ValueOrDie(), spec.transforms);
}

namespace {

/// Shared core: build the policy, open the stream with the spec's
/// observers attached. Public entry points validate exactly once before
/// calling this.
Result<ScenarioStream> OpenValidated(const Trace& trace,
                                     const ScenarioSpec& spec) {
  if (spec.cluster.has_value()) {
    return Status::InvalidArgument(
        "cluster scenarios cannot be opened as a single SimStream; drive a "
        "ClusterSession (cluster/cluster.h) instead");
  }
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                        PolicyRegistry::Global().Create(spec.policy));
  SPES_ASSIGN_OR_RETURN(SimStream stream,
                        SimStream::Create(trace, policy.get(), spec.options));
  for (SimObserver* observer : spec.observers) stream.AddObserver(observer);
  return ScenarioStream{std::move(policy), std::move(stream)};
}

/// Shared core: open and drain the stream — or, for a cluster spec, drive
/// a ClusterSession over the same workload and surface the fleet-wide
/// aggregate plus the per-node breakdown.
Result<ScenarioOutcome> RunValidated(const Trace& trace,
                                     const ScenarioSpec& spec) {
  if (spec.cluster.has_value()) {
    SPES_ASSIGN_OR_RETURN(
        ClusterSession session,
        ClusterSession::Create(trace, *spec.cluster, spec.policy,
                               spec.options));
    for (SimObserver* observer : spec.observers) {
      session.AddObserver(observer);
    }
    SPES_ASSIGN_OR_RETURN(ClusterOutcome cluster, session.Finish());
    ScenarioOutcome result;
    result.outcome = cluster.fleet;  // per-node detail keeps its own copy
    result.cluster =
        std::make_shared<const ClusterOutcome>(std::move(cluster));
    return result;
  }
  SPES_ASSIGN_OR_RETURN(ScenarioStream open, OpenValidated(trace, spec));
  SPES_ASSIGN_OR_RETURN(SimulationOutcome outcome, open.stream.Finish());
  ScenarioOutcome result;
  result.outcome = std::move(outcome);
  result.policy = std::move(open.policy);
  return result;
}

/// Lockstep core over a realized workload: validates the spec line-up,
/// builds every policy, runs one multi-lane stream.
Result<std::vector<ScenarioOutcome>> RunLockstepValidatedTrace(
    const Trace& trace, const std::vector<ScenarioSpec>& specs) {
  std::vector<ScenarioOutcome> results;
  if (specs.empty()) return results;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].cluster.has_value()) {
      return Status::InvalidArgument(
          "lockstep spec " + std::to_string(i) +
          ": cluster scenarios cannot share a lockstep stream (each cluster "
          "is its own multi-lane session); run them through "
          "SuiteRunner::Run or RunScenario");
    }
    Status status = ValidateScenarioSpec(specs[i]);
    if (!status.ok()) {
      return Status(status.code(), "lockstep spec " + std::to_string(i) +
                                       (specs[i].label.empty()
                                            ? ""
                                            : " ('" + specs[i].label + "')") +
                                       ": " + status.message());
    }
    const SimOptions& a = specs[i].options;
    const SimOptions& b = specs[0].options;
    if (a.train_minutes != b.train_minutes) {
      return Status::InvalidArgument(
          "lockstep lanes share one cursor: spec " + std::to_string(i) +
          " train_minutes (=" + std::to_string(a.train_minutes) +
          ") differs from spec 0 (=" + std::to_string(b.train_minutes) + ")");
    }
    if (a.end_minute != b.end_minute) {
      return Status::InvalidArgument(
          "lockstep lanes share one cursor: spec " + std::to_string(i) +
          " end_minute (=" + std::to_string(a.end_minute) +
          ") differs from spec 0 (=" + std::to_string(b.end_minute) + ")");
    }
    if (a.pin_executing_functions != b.pin_executing_functions) {
      return Status::InvalidArgument(
          "lockstep lanes share one engine: spec " + std::to_string(i) +
          " pin_executing_functions differs from spec 0");
    }
    if (a.latency != b.latency) {
      return Status::InvalidArgument(
          "lockstep lanes share one engine: spec " + std::to_string(i) +
          " latency block (=\"" +
          (a.latency.has_value() ? FormatLatencySpec(*a.latency) : "") +
          "\") differs from spec 0 (=\"" +
          (b.latency.has_value() ? FormatLatencySpec(*b.latency) : "") +
          "\")");
    }
  }
  std::vector<std::unique_ptr<Policy>> policies;
  std::vector<Policy*> lanes;
  policies.reserve(specs.size());
  lanes.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<std::unique_ptr<Policy>> built =
        PolicyRegistry::Global().Create(specs[i].policy);
    if (!built.ok()) {
      Status status = built.status();
      return Status(status.code(), "lockstep spec " + std::to_string(i) +
                                       ": " + status.message());
    }
    policies.push_back(std::move(built).ValueOrDie());
    lanes.push_back(policies.back().get());
  }
  SPES_ASSIGN_OR_RETURN(
      SimStream stream,
      SimStream::Create(trace, std::move(lanes), specs[0].options));
  for (const ScenarioSpec& spec : specs) {
    for (SimObserver* observer : spec.observers) {
      stream.AddObserver(observer);
    }
  }
  SPES_ASSIGN_OR_RETURN(std::vector<SimulationOutcome> outcomes,
                        stream.FinishAll());
  results.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ScenarioOutcome result;
    result.outcome = std::move(outcomes[i]);
    result.policy = std::move(policies[i]);
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace

Result<ScenarioOutcome> RunScenario(const Trace& trace,
                                    const ScenarioSpec& spec) {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  return RunValidated(trace, spec);
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec) {
  // Validate before realizing: a bad spec must not cost a trace build.
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  ScopedSpan realize_span(spec.options.recorder, "realize",
                          spec.options.recorder_slot, 0,
                          TraceSpecKey(spec.trace));
  SPES_ASSIGN_OR_RETURN(const Trace trace, RealizeTrace(spec.trace));
  realize_span.End();
  return RunValidated(trace, spec);
}

Result<ScenarioOutcome> RunScenarioStreamed(TraceSource& source,
                                            const ScenarioSpec& spec) {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  if (!spec.trace.transforms.empty()) {
    return Status::InvalidArgument(
        "streamed scenarios cannot apply transform chains (transforms need "
        "a realized trace); pack the transformed workload instead — a "
        "TraceCache with a pack directory applies transforms before "
        "packing");
  }
  if (spec.cluster.has_value()) {
    SPES_ASSIGN_OR_RETURN(ClusterSession session,
                          ClusterSession::Create(source, *spec.cluster,
                                                 spec.policy, spec.options));
    for (SimObserver* observer : spec.observers) {
      session.AddObserver(observer);
    }
    SPES_ASSIGN_OR_RETURN(ClusterOutcome cluster, session.Finish());
    ScenarioOutcome result;
    result.outcome = cluster.fleet;  // per-node detail keeps its own copy
    result.cluster =
        std::make_shared<const ClusterOutcome>(std::move(cluster));
    return result;
  }
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                        PolicyRegistry::Global().Create(spec.policy));
  SPES_ASSIGN_OR_RETURN(SimStream stream,
                        SimStream::Create(source, policy.get(), spec.options));
  for (SimObserver* observer : spec.observers) stream.AddObserver(observer);
  SPES_ASSIGN_OR_RETURN(SimulationOutcome outcome, stream.Finish());
  ScenarioOutcome result;
  result.outcome = std::move(outcome);
  result.policy = std::move(policy);
  return result;
}

Result<ScenarioStream> OpenScenario(const Trace& trace,
                                    const ScenarioSpec& spec) {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  return OpenValidated(trace, spec);
}

Result<std::vector<ScenarioOutcome>> RunLockstep(
    const Trace& trace, const std::vector<ScenarioSpec>& specs) {
  return RunLockstepValidatedTrace(trace, specs);
}

Result<std::shared_ptr<const Trace>> TraceCache::Get(const TraceSpec& spec) {
  const std::string key = TraceSpecKey(spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      if (recorder_ != nullptr) recorder_->CacheEvent("hit", key);
      return it->second;
    }
  }
  if (recorder_ != nullptr) recorder_->CacheEvent("miss", key);
  // Realize outside the lock: trace builds are the expensive part and
  // distinct keys should not serialize on each other. A racing double
  // realization of the same key is benign (both are bitwise identical;
  // the first insert wins).
  const ScopedSpan realize_span(recorder_, "realize", 0, 0, key);
  Trace trace;
  if (!pack_dir_.empty() && spec.source != TraceSpec::Source::kProvided) {
    // Disk tier: realize + pack once (or reuse a pack an earlier run left
    // behind), then load the packed bytes. The pack round-trips the trace
    // bit for bit, so callers cannot tell the tiers apart.
    SPES_ASSIGN_OR_RETURN(const std::string path, EnsurePacked(spec));
    SPES_ASSIGN_OR_RETURN(trace, ReadTraceFile(path));
  } else {
    SPES_ASSIGN_OR_RETURN(trace, RealizeTrace(spec));
  }
  auto shared = std::make_shared<const Trace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mu_);
  return by_key_.emplace(key, std::move(shared)).first->second;
}

Result<std::string> TraceCache::EnsurePacked(const TraceSpec& spec) {
  if (pack_dir_.empty()) {
    return Status::InvalidArgument(
        "TraceCache has no disk tier; construct it with a pack directory "
        "to pack traces");
  }
  const std::string key = TraceSpecKey(spec);
  // One packer at a time: concurrent misses on the same spec must realize
  // it once, and realization is far more expensive than the serialization.
  std::lock_guard<std::mutex> lock(pack_mu_);
  std::error_code ec;
  std::filesystem::create_directories(pack_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create trace pack directory '" +
                           pack_dir_ + "': " + ec.message());
  }
  const std::string path =
      (std::filesystem::path(pack_dir_) / PackedFileName(key)).string();
  if (std::filesystem::exists(path, ec)) return path;
  if (recorder_ != nullptr) recorder_->CacheEvent("pack", key);
  const ScopedSpan pack_span(recorder_, "pack", 0, 0, key);
  SPES_ASSIGN_OR_RETURN(Trace trace, RealizeTrace(spec));
  // Write to a temp name and rename into place, so a concurrent reader
  // (another process sharing the directory) never sees a partial pack.
  const std::string tmp = path + ".tmp";
  SPES_ASSIGN_OR_RETURN(const TraceFileStats stats,
                        WriteTraceFile(trace, tmp));
  (void)stats;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot move packed trace into place at '" +
                           path + "': " + ec.message());
  }
  return path;
}

Result<std::unique_ptr<TraceSource>> TraceCache::OpenStream(
    const TraceSpec& spec) {
  // A trace-file spec with no transforms already IS the packed form.
  if (spec.source == TraceSpec::Source::kTraceFile &&
      spec.transforms.empty()) {
    SPES_ASSIGN_OR_RETURN(std::unique_ptr<TraceFileSource> source,
                          OpenTraceFile(spec.trace_file));
    return std::unique_ptr<TraceSource>(std::move(source));
  }
  if (spec.source == TraceSpec::Source::kProvided) {
    return Status::InvalidArgument(
        "TraceSpec.source is kProvided (no materializable source); streams "
        "only serve realizable specs");
  }
  SPES_ASSIGN_OR_RETURN(const std::string path, EnsurePacked(spec));
  SPES_ASSIGN_OR_RETURN(std::unique_ptr<TraceFileSource> source,
                        OpenTraceFile(path));
  return std::unique_ptr<TraceSource>(std::move(source));
}

size_t TraceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_key_.size();
}

Result<ScenarioSession> ScenarioSession::Open(const TraceSpec& source) {
  SPES_ASSIGN_OR_RETURN(Trace trace, RealizeTrace(source));
  return ScenarioSession(std::move(trace));
}

Result<std::shared_ptr<const Trace>> ScenarioSession::TransformedTrace(
    const std::vector<TransformSpec>& chain) const {
  if (chain.empty()) return trace_;
  const std::string key = FormatTransformChain(chain);
  {
    std::lock_guard<std::mutex> lock(variants_->mu);
    auto it = variants_->by_chain.find(key);
    if (it != variants_->by_chain.end()) return it->second;
  }
  SPES_ASSIGN_OR_RETURN(Trace transformed, ApplyTransforms(*trace_, chain));
  auto shared = std::make_shared<const Trace>(std::move(transformed));
  std::lock_guard<std::mutex> lock(variants_->mu);
  return variants_->by_chain.emplace(key, std::move(shared)).first->second;
}

Result<ScenarioOutcome> ScenarioSession::Run(const ScenarioSpec& spec) const {
  SPES_RETURN_NOT_OK(ValidateScenarioSpec(spec));
  SPES_ASSIGN_OR_RETURN(std::shared_ptr<const Trace> trace,
                        TransformedTrace(spec.trace.transforms));
  return RunValidated(*trace, spec);
}

Result<std::vector<ScenarioOutcome>> ScenarioSession::RunLockstep(
    const std::vector<ScenarioSpec>& specs) const {
  if (specs.empty()) return std::vector<ScenarioOutcome>{};
  // Lockstep lanes share one workload, so every spec must request the
  // same stressed variant of the session's base trace.
  const std::string chain = FormatTransformChain(specs[0].trace.transforms);
  for (size_t i = 1; i < specs.size(); ++i) {
    const std::string other = FormatTransformChain(specs[i].trace.transforms);
    if (other != chain) {
      return Status::InvalidArgument(
          "lockstep lanes share one workload: spec " + std::to_string(i) +
          " transform chain (=\"" + other + "\") differs from spec 0 (=\"" +
          chain + "\")");
    }
  }
  SPES_ASSIGN_OR_RETURN(std::shared_ptr<const Trace> trace,
                        TransformedTrace(specs[0].trace.transforms));
  return RunLockstepValidatedTrace(*trace, specs);
}

}  // namespace spes
