#include "sim/accounting.h"

#include <algorithm>

#include "common/stats.h"

namespace spes {

FleetMetrics ComputeFleetMetrics(const std::string& policy_name,
                                 const std::vector<FunctionAccount>& accounts,
                                 const std::vector<uint32_t>& memory_series,
                                 double overhead_seconds) {
  FleetMetrics m;
  m.policy_name = policy_name;
  m.overhead_seconds = overhead_seconds;

  uint64_t invoked_loaded_minutes = 0;
  int64_t always_cold = 0, zero_cold = 0;
  for (const FunctionAccount& acc : accounts) {
    m.wasted_memory_minutes += acc.wasted_minutes;
    m.loaded_instance_minutes += acc.loaded_minutes;
    invoked_loaded_minutes += acc.loaded_minutes - acc.wasted_minutes;
    if (acc.invocations == 0) continue;
    const double csr = acc.ColdStartRate();
    m.csr.push_back(csr);
    m.total_cold_starts += acc.cold_starts;
    m.total_invocations += acc.invocations;
    if (csr >= 1.0) ++always_cold;
    if (csr <= 0.0) ++zero_cold;
  }

  if (!m.csr.empty()) {
    m.q3_csr = Percentile(m.csr, 75.0);
    m.p90_csr = Percentile(m.csr, 90.0);
    m.median_csr = Percentile(m.csr, 50.0);
    m.always_cold_fraction =
        static_cast<double>(always_cold) / static_cast<double>(m.csr.size());
    m.zero_cold_fraction =
        static_cast<double>(zero_cold) / static_cast<double>(m.csr.size());
  }

  if (!memory_series.empty()) {
    uint64_t sum = 0;
    for (uint32_t v : memory_series) {
      sum += v;
      m.max_memory = std::max<uint64_t>(m.max_memory, v);
    }
    m.average_memory =
        static_cast<double>(sum) / static_cast<double>(memory_series.size());
    m.overhead_seconds_per_minute =
        overhead_seconds / static_cast<double>(memory_series.size());
  }

  if (m.loaded_instance_minutes > 0) {
    m.emcr = static_cast<double>(invoked_loaded_minutes) /
             static_cast<double>(m.loaded_instance_minutes);
  }
  return m;
}

}  // namespace spes
