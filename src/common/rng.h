// Deterministic pseudo-random number generation for workload synthesis.
//
// All stochastic behaviour in this repository flows through Rng so that a
// (seed, parameters) pair fully determines a generated trace and therefore
// every downstream experiment. The engine is xoshiro256** seeded via
// splitmix64, the combination recommended by the xoshiro authors; both are
// implemented here so the repository has no dependence on unspecified
// standard-library engine behaviour.

#ifndef SPES_COMMON_RNG_H_
#define SPES_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spes {

/// \brief splitmix64 step: used for seeding and cheap hash mixing.
uint64_t SplitMix64(uint64_t* state);

/// \brief Stable name-keyed seed: FNV-1a over `name`, finalized with
/// splitmix64 against `seed`. Keyed by *name* (not fleet index) so
/// selections survive reordering/filtering upstream; shared by the
/// stochastic trace transforms and the cluster hash/locality routers.
uint64_t MixNameSeed(const std::string& name, uint64_t seed);

/// \brief Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the engine; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// \brief Next raw 64-bit value.
  uint64_t NextU64();

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double UniformDouble();

  /// \brief Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// \brief True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Poisson-distributed count with the given mean (>= 0).
  ///
  /// Uses Knuth's method for small means and a normal approximation with
  /// rounding for means above 30, which is ample for per-minute invocation
  /// counts.
  int64_t Poisson(double mean);

  /// \brief Exponential variate with the given rate (> 0).
  double Exponential(double rate);

  /// \brief Standard normal variate (Box-Muller).
  double Normal(double mean, double stddev);

  /// \brief Zipf-distributed integer in [1, n] with exponent s > 0.
  ///
  /// Used to reproduce the heavy-tailed invocation-count distribution of
  /// Fig. 3: a small number of hyper-frequent functions and a long tail of
  /// rarely invoked ones.
  int64_t Zipf(int64_t n, double s);

  /// \brief Pareto (Lomax) variate: heavy-tailed positive double.
  double Pareto(double scale, double shape);

  /// \brief Samples an index according to `weights` (need not be normalized).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Derives an independent child generator (for per-function streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace spes

#endif  // SPES_COMMON_RNG_H_
