// Descriptive statistics used throughout SPES's categorization rules:
// percentiles, modes, coefficient of variation, medians, CDFs and a simple
// least-squares linear fit (for the Fig. 13 trade-off analysis).

#ifndef SPES_COMMON_STATS_H_
#define SPES_COMMON_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace spes {

/// \brief Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);
double Mean(const std::vector<int64_t>& xs);

/// \brief Population standard deviation; 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& xs);
double StdDev(const std::vector<int64_t>& xs);

/// \brief Coefficient of variation: stddev / mean; 0 when the mean is 0.
///
/// SPES's "regular" rule declares a function periodic when the CV of its
/// waiting times is <= 0.01.
double CoefficientOfVariation(const std::vector<int64_t>& xs);

/// \brief p-th percentile (p in [0,100]) with linear interpolation.
///
/// Matches numpy.percentile's default ("linear") so that thresholds such as
/// P95({WT}) - P5({WT}) <= 1 behave as in the paper's reference tooling.
/// Returns 0 for an empty input.
double Percentile(std::vector<double> xs, double p);
double Percentile(std::vector<int64_t> xs, double p);

/// \brief Median; 0 for an empty input.
double Median(const std::vector<int64_t>& xs);

/// \brief A value and how many times it occurs.
struct ModeEntry {
  int64_t value = 0;
  int64_t count = 0;
  bool operator==(const ModeEntry&) const = default;
};

/// \brief The n most frequent values, ordered by descending count
/// (ties broken by ascending value for determinism).
std::vector<ModeEntry> TopModes(const std::vector<int64_t>& xs, int n);

/// \brief Values that occur strictly more than once, most frequent first.
///
/// This is the predictive-value rule for SPES's "possible" type.
std::vector<ModeEntry> RepeatedValues(const std::vector<int64_t>& xs);

/// \brief Empirical CDF point: (value, fraction of samples <= value).
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// \brief Builds an empirical CDF over the samples (sorted by value).
std::vector<CdfPoint> EmpiricalCdf(const std::vector<double>& xs);

/// \brief Least-squares fit y = slope * x + intercept.
///
/// Used by the Fig. 13 harness to report the linear memory-vs-CSR
/// relationship the paper observes. Requires xs.size() == ys.size() >= 2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 1 means a perfect fit.
  double r_squared = 0.0;
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace spes

#endif  // SPES_COMMON_STATS_H_
