// Descriptive statistics used throughout SPES's categorization rules:
// percentiles, modes, coefficient of variation, medians, CDFs and a simple
// least-squares linear fit (for the Fig. 13 trade-off analysis) — plus the
// mergeable fixed-bucket latency histogram the SLO reporting is built on.

#ifndef SPES_COMMON_STATS_H_
#define SPES_COMMON_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spes {

class BinaryWriter;  // common/binary_io.h
class BinaryReader;

/// \brief Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);
double Mean(const std::vector<int64_t>& xs);

/// \brief Population standard deviation; 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& xs);
double StdDev(const std::vector<int64_t>& xs);

/// \brief Coefficient of variation: stddev / mean; 0 when the mean is 0.
///
/// SPES's "regular" rule declares a function periodic when the CV of its
/// waiting times is <= 0.01.
double CoefficientOfVariation(const std::vector<int64_t>& xs);

/// \brief p-th percentile (p in [0,100]) with linear interpolation.
///
/// Matches numpy.percentile's default ("linear") so that thresholds such as
/// P95({WT}) - P5({WT}) <= 1 behave as in the paper's reference tooling.
/// Returns 0 for an empty input.
double Percentile(std::vector<double> xs, double p);
double Percentile(std::vector<int64_t> xs, double p);

/// \brief q-th quantile (q in [0,1]) with linear interpolation; the
/// fraction-domain twin of Percentile() (Quantile(xs, q) ==
/// Percentile(xs, 100*q)). Returns 0 for an empty input.
double Quantile(std::vector<double> xs, double q);
double Quantile(std::vector<int64_t> xs, double q);

/// \brief Median; 0 for an empty input.
double Median(const std::vector<int64_t>& xs);

/// \brief A mergeable fixed-bucket histogram over non-negative integer
/// samples (the latency subsystem records end-to-end times in
/// microseconds).
///
/// Bucketing is log2-linear (HDR-histogram style): values below 32 get
/// exact unit buckets; above that, each power-of-two octave is split into
/// 32 linear sub-buckets, so every bucket's relative width — and therefore
/// the worst-case quantile error — is bounded by 1/32 (~3%). The bucket
/// index is pure integer bit arithmetic, so recording is deterministic on
/// every platform, and two histograms with the same geometry merge
/// *exactly* (counts add), which is what lets per-node histograms combine
/// into a fleet histogram with no approximation beyond the shared
/// bucketing.
class FixedBucketHistogram {
 public:
  /// Linear sub-buckets per octave; also the width of the exact range.
  static constexpr uint64_t kSubBuckets = 32;
  static constexpr uint64_t kSubBits = 5;  ///< log2(kSubBuckets)

  FixedBucketHistogram();

  /// \brief Records one sample.
  void Record(uint64_t value);
  /// \brief Records `count` identical samples.
  void RecordMany(uint64_t value, uint64_t count);

  [[nodiscard]] uint64_t TotalCount() const { return total_count_; }
  [[nodiscard]] uint64_t Sum() const { return sum_; }
  /// Smallest/largest recorded sample; 0 when empty.
  [[nodiscard]] uint64_t Min() const { return total_count_ == 0 ? 0 : min_; }
  [[nodiscard]] uint64_t Max() const { return max_; }
  [[nodiscard]] double Mean() const {
    return total_count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(total_count_);
  }

  /// \brief The representative value at quantile q in [0, 1] (0 when
  /// empty): the midpoint of the first bucket whose cumulative count
  /// reaches ceil(q * TotalCount()), clamped into [Min(), Max()] so the
  /// extremes are exact.
  [[nodiscard]] uint64_t ValueAtQuantile(double q) const;

  /// \brief Exact merge: bucket counts, totals and extrema combine with
  /// no precision loss (both sides always share the fixed geometry).
  void Merge(const FixedBucketHistogram& other);

  /// \brief Appends the histogram to `writer` in sparse (index, count)
  /// varint form — empty buckets cost nothing.
  void SerializeTo(BinaryWriter* writer) const;

  /// \brief Parses bytes produced by SerializeTo(); truncated or corrupt
  /// input (bad indexes, inconsistent totals) yields InvalidArgument.
  static Result<FixedBucketHistogram> ParseFrom(BinaryReader* reader);

  bool operator==(const FixedBucketHistogram&) const = default;

 private:
  /// Bucket index of a sample (total order, contiguous from 0).
  [[nodiscard]] static size_t BucketIndex(uint64_t value);
  /// Midpoint representative of bucket `index`.
  [[nodiscard]] static uint64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// \brief A value and how many times it occurs.
struct ModeEntry {
  int64_t value = 0;
  int64_t count = 0;
  bool operator==(const ModeEntry&) const = default;
};

/// \brief The n most frequent values, ordered by descending count
/// (ties broken by ascending value for determinism).
std::vector<ModeEntry> TopModes(const std::vector<int64_t>& xs, int n);

/// \brief Values that occur strictly more than once, most frequent first.
///
/// This is the predictive-value rule for SPES's "possible" type.
std::vector<ModeEntry> RepeatedValues(const std::vector<int64_t>& xs);

/// \brief Empirical CDF point: (value, fraction of samples <= value).
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// \brief Builds an empirical CDF over the samples (sorted by value).
std::vector<CdfPoint> EmpiricalCdf(const std::vector<double>& xs);

/// \brief Least-squares fit y = slope * x + intercept.
///
/// Used by the Fig. 13 harness to report the linear memory-vs-CSR
/// relationship the paper observes. Requires xs.size() == ys.size() >= 2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 1 means a perfect fit.
  double r_squared = 0.0;
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace spes

#endif  // SPES_COMMON_STATS_H_
