// One-sample Kolmogorov–Smirnov tests.
//
// Section III-B1 of the paper uses the KS test to show that 68.12% of
// timer-triggered functions have (quasi-)periodic inter-invocation gaps and
// that 45.02% of HTTP-triggered functions follow a Poisson arrival process.
// The `bench_sec3_trigger_regularity` harness reproduces those population
// fractions on the synthetic trace with these routines.

#ifndef SPES_COMMON_KS_TEST_H_
#define SPES_COMMON_KS_TEST_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace spes {

/// \brief Result of a one-sample KS test.
struct KsResult {
  /// Supremum distance between the empirical CDF and the reference CDF.
  double statistic = 0.0;
  /// Asymptotic p-value (Kolmogorov distribution); conservative for
  /// discrete references, as noted by Noether (1963) — cited by the paper.
  double p_value = 0.0;
  /// Convenience: p_value >= 0.05, i.e. the sample is consistent with the
  /// reference distribution at the 5% level.
  bool consistent = false;
};

/// \brief One-sample KS test of `samples` against a reference CDF.
///
/// \param samples observed values (need not be sorted; must be non-empty).
/// \param cdf the reference cumulative distribution function F(x).
KsResult KsTest(const std::vector<double>& samples,
                const std::function<double(double)>& cdf);

/// \brief Tests whether integer gaps are consistent with a (quasi-)periodic
/// process: a normal distribution centred on the sample mean with the
/// sample's dispersion (floored at a small epsilon).
KsResult KsTestPeriodic(const std::vector<int64_t>& gaps);

/// \brief Tests whether integer gaps are consistent with Poisson arrivals,
/// i.e. exponentially distributed inter-arrival gaps with the sample rate.
KsResult KsTestExponential(const std::vector<int64_t>& gaps);

/// \brief Survival function of the Kolmogorov distribution,
/// Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2).
double KolmogorovSurvival(double x);

}  // namespace spes

#endif  // SPES_COMMON_KS_TEST_H_
