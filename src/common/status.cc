#include "common/status.h"

#include <cstdio>
#include <ostream>

namespace spes {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace spes
