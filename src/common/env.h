// Environment-variable overrides for bench/example scale knobs.

#ifndef SPES_COMMON_ENV_H_
#define SPES_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace spes {

/// \brief Reads an integer environment variable, or `fallback` when unset
/// or unparsable.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// \brief Reads a double environment variable, or `fallback`.
double GetEnvDouble(const char* name, double fallback);

/// \brief Reads a string environment variable, or `fallback`.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace spes

#endif  // SPES_COMMON_ENV_H_
