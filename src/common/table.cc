#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace spes {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) std::abort();
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out += "  ";
    }
    out += '\n';
    return out;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 < widths.size()) sep += "  ";
  }
  out += sep + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

namespace {

/// Quotes a CSV cell only when it needs it (comma, quote or newline).
std::string CsvCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Table::ToCsv() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvCell(row[c]);
    }
    out += '\n';
    return out;
  };
  std::string out = render_row(headers_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToJson() const {
  std::string out = "[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += ',';
      out += JsonEscape(headers_[c]);
      out += ':';
      out += JsonEscape(rows_[r][c]);
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

std::string AsciiBar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar(filled, '#');
  bar.append(static_cast<size_t>(width - filled), ' ');
  return bar;
}

}  // namespace spes
