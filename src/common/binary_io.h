// Little-endian binary (de)serialization for checkpoint blobs.
//
// BinaryWriter appends fixed-width primitives to a std::string;
// BinaryReader consumes them with bounds checking, turning truncated or
// corrupt input into InvalidArgument instead of undefined behaviour. Both
// sides fix the byte order, so blobs written on one host parse on any
// other. Used by SimStream checkpoints and the checkpointable policies.

#ifndef SPES_COMMON_BINARY_IO_H_
#define SPES_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace spes {

/// \brief Append-only little-endian encoder.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI32(int32_t v) { PutFixed(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  /// \brief Exact bit pattern of the double (IEEE-754, little-endian), so
  /// a round trip is bitwise lossless.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }

  /// \brief Length-prefixed byte string.
  void PutBytes(const std::string& bytes) {
    PutU64(bytes.size());
    out_.append(bytes);
  }

  /// \name LEB128 varints (canonical form)
  ///
  /// Seven payload bits per byte, least-significant group first, high bit
  /// as the continuation flag. The encoder always emits the minimal form,
  /// which is what the readers below accept — so varint fields are
  /// byte-for-byte canonical and a re-encode of parsed data reproduces the
  /// input exactly. A uint64_t takes at most 10 bytes.
  /// @{
  void PutVarU64(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
  }
  void PutVarU32(uint32_t v) { PutVarU64(v); }

  /// \brief Varint-length-prefixed byte string (compact alternative to
  /// PutBytes for high-multiplicity records such as trace-file tables).
  void PutVarBytes(const std::string& bytes) {
    PutVarU64(bytes.size());
    out_.append(bytes);
  }
  /// @}

  [[nodiscard]] const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  template <typename U>
  void PutFixed(U v) {
    for (size_t i = 0; i < sizeof(U); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
/// The buffer must outlive the reader.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& in) : in_(in) {}
  /// A temporary would dangle the moment the constructor returns (the
  /// reader borrows the buffer); make that a compile error.
  explicit BinaryReader(const std::string&& in) = delete;

  Result<uint8_t> U8() {
    SPES_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(in_[pos_++]);
  }
  Result<bool> Bool() {
    SPES_ASSIGN_OR_RETURN(const uint8_t v, U8());
    return v != 0;
  }
  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }
  Result<int32_t> I32() {
    SPES_ASSIGN_OR_RETURN(const uint32_t v, Fixed<uint32_t>());
    return static_cast<int32_t>(v);
  }
  Result<int64_t> I64() {
    SPES_ASSIGN_OR_RETURN(const uint64_t v, Fixed<uint64_t>());
    return static_cast<int64_t>(v);
  }
  Result<double> Double() {
    SPES_ASSIGN_OR_RETURN(const uint64_t bits, Fixed<uint64_t>());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::string> Bytes() {
    SPES_ASSIGN_OR_RETURN(const uint64_t size, U64());
    // Need() compares the announced size against the bytes remaining in
    // 64-bit arithmetic, so a hostile length field near UINT64_MAX is
    // rejected here — it can neither wrap the cursor nor reach substr
    // (where size_t narrowing on a 32-bit host could otherwise truncate).
    SPES_RETURN_NOT_OK(Need(size));
    std::string bytes = in_.substr(pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return bytes;
  }

  /// \name Hardened LEB128 varint decoding
  ///
  /// Rejects three classes of hostile input with InvalidArgument: values
  /// that overflow the target width, encodings longer than the maximal
  /// 10-byte form (a continuation chain that never terminates in range),
  /// and non-minimal encodings (a redundant trailing 0x00 group, e.g.
  /// `80 00` for zero) — so every accepted varint has exactly one byte
  /// representation and re-encoding reproduces the input.
  /// @{
  Result<uint64_t> VarU64() {
    uint64_t value = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      SPES_ASSIGN_OR_RETURN(const uint8_t byte, U8());
      const uint64_t group = byte & 0x7f;
      if (shift == 63 && group > 1) {
        return Status::InvalidArgument(
            "corrupt varint: value overflows uint64 at offset " +
            std::to_string(pos_ - 1));
      }
      value |= group << shift;
      if ((byte & 0x80) == 0) {
        if (shift > 0 && byte == 0) {
          return Status::InvalidArgument(
              "corrupt varint: non-minimal encoding at offset " +
              std::to_string(pos_ - 1));
        }
        return value;
      }
    }
    return Status::InvalidArgument(
        "corrupt varint: continuation past the 10-byte maximum at offset " +
        std::to_string(pos_));
  }
  Result<uint32_t> VarU32() {
    SPES_ASSIGN_OR_RETURN(const uint64_t v, VarU64());
    if (v > UINT32_MAX) {
      return Status::InvalidArgument(
          "corrupt varint: value " + std::to_string(v) +
          " overflows uint32 before offset " + std::to_string(pos_));
    }
    return static_cast<uint32_t>(v);
  }

  /// \brief Varint-length-prefixed byte string (inverse of PutVarBytes),
  /// with the announced size validated against the bytes remaining before
  /// any allocation happens.
  Result<std::string> VarBytes() {
    SPES_ASSIGN_OR_RETURN(const uint64_t size, VarU64());
    SPES_RETURN_NOT_OK(Need(size));
    std::string bytes = in_.substr(pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return bytes;
  }

  /// \brief Varint element count validated like Length(): `count` elements
  /// need at least count * min_element_bytes of the remaining input, with
  /// the comparison phrased as a division so it cannot overflow.
  Result<uint64_t> VarLength(uint64_t min_element_bytes) {
    if (min_element_bytes == 0) {
      return Status::Internal(
          "VarLength() requires a positive min_element_bytes");
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t count, VarU64());
    if (count > (in_.size() - pos_) / min_element_bytes) {
      return Status::InvalidArgument(
          "corrupt blob: element count (=" + std::to_string(count) +
          ") exceeds the remaining " + std::to_string(in_.size() - pos_) +
          " bytes");
    }
    return count;
  }
  /// @}

  /// \brief A length announced in the blob, validated against the bytes
  /// actually remaining so a corrupt count cannot drive a huge allocation:
  /// `count` elements need at least count * min_element_bytes bytes, and
  /// the comparison is phrased as a division so it cannot overflow.
  /// `min_element_bytes` is the smallest encoding of one element and must
  /// be positive (a zero would disable the bound — programming error).
  Result<uint64_t> Length(uint64_t min_element_bytes) {
    if (min_element_bytes == 0) {
      return Status::Internal(
          "Length() requires a positive min_element_bytes");
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t count, U64());
    if (count > (in_.size() - pos_) / min_element_bytes) {
      return Status::InvalidArgument(
          "corrupt blob: element count (=" + std::to_string(count) +
          ") exceeds the remaining " +
          std::to_string(in_.size() - pos_) + " bytes");
    }
    return count;
  }

  [[nodiscard]] bool AtEnd() const { return pos_ == in_.size(); }
  [[nodiscard]] size_t remaining() const { return in_.size() - pos_; }

 private:
  /// All comparisons run on uint64_t with pos_ <= in_.size() as the loop
  /// invariant, so `in_.size() - pos_` never underflows and an
  /// attacker-controlled `bytes` cannot wrap the check.
  [[nodiscard]] Status Need(uint64_t bytes) const {
    if (bytes > in_.size() - pos_) {
      return Status::InvalidArgument(
          "truncated blob: need " + std::to_string(bytes) +
          " more bytes at offset " + std::to_string(pos_) + ", have " +
          std::to_string(in_.size() - pos_));
    }
    return Status::OK();
  }

  template <typename U>
  Result<U> Fixed() {
    SPES_RETURN_NOT_OK(Need(sizeof(U)));
    U v = 0;
    for (size_t i = 0; i < sizeof(U); ++i) {
      v |= static_cast<U>(static_cast<uint8_t>(in_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(U);
    return v;
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace spes

#endif  // SPES_COMMON_BINARY_IO_H_
