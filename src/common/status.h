// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
//
// The library does not throw exceptions across public API boundaries.
// Fallible operations return a Status (or a Result<T> carrying a value),
// and callers are expected to check them. See the SPES_RETURN_NOT_OK and
// SPES_ASSIGN_OR_RETURN convenience macros at the bottom of this header.

#ifndef SPES_COMMON_STATUS_H_
#define SPES_COMMON_STATUS_H_

#include <cstdlib>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace spes {

/// \brief Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kCancelled,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation. Non-OK statuses carry a message
/// describing the failure. Status is cheap to move and copy.
///
/// The class is [[nodiscard]]: ignoring a returned Status is a compile
/// warning (an error under -Werror and in the CI unused-result probe),
/// because a silently dropped error is exactly how a golden drifts.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// @}

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  /// \brief Renders "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// \brief Aborts the process with the status message if not OK.
  ///
  /// Intended for examples and benches where failure is unrecoverable.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or a non-OK Status.
///
/// Result<T> is the value-carrying companion of Status. Accessing the value
/// of an errored Result aborts, so callers must test ok() (or use
/// SPES_ASSIGN_OR_RETURN). Like Status it is [[nodiscard]]: a dropped
/// Result discards both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; this is a programming error.
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status, or OK when a value is present.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Borrow the value; aborts if this Result holds an error.
  [[nodiscard]] const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  /// \brief Move the value out; aborts if this Result holds an error.
  T ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Returns the value or `fallback` when errored.
  [[nodiscard]] T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace spes

/// Propagates a non-OK Status to the caller.
#define SPES_RETURN_NOT_OK(expr)                   \
  do {                                             \
    ::spes::Status _spes_status = (expr);          \
    if (!_spes_status.ok()) return _spes_status;   \
  } while (false)

#define SPES_CONCAT_IMPL(a, b) a##b
#define SPES_CONCAT(a, b) SPES_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define SPES_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto SPES_CONCAT(_spes_result_, __LINE__) = (rexpr);           \
  if (!SPES_CONCAT(_spes_result_, __LINE__).ok())                \
    return SPES_CONCAT(_spes_result_, __LINE__).status();        \
  lhs = std::move(SPES_CONCAT(_spes_result_, __LINE__)).ValueOrDie()

#endif  // SPES_COMMON_STATUS_H_
