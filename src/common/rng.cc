#include "common/rng.h"

#include <cmath>
#include <cstdlib>

namespace spes {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t MixNameSeed(const std::string& name, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis / prime
  for (unsigned char c : name) h = (h ^ c) * 1099511628211ULL;
  uint64_t state = h ^ (seed + 0x9e3779b97f4a7c15ULL);
  return SplitMix64(&state);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) std::abort();
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    double product = UniformDouble();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation, adequate for workload synthesis at high rates.
  const double value = Normal(mean, std::sqrt(mean));
  return value < 0.0 ? 0 : static_cast<int64_t>(std::llround(value));
}

double Rng::Exponential(double rate) {
  if (rate <= 0.0) std::abort();
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 0) std::abort();
  if (n == 1) return 1;
  // Classic acceptance-rejection with a Pareto envelope (Devroye):
  // exact for s > 1 and fast enough for trace synthesis. Exponents at or
  // below 1 are clamped just above 1, which is indistinguishable at the
  // fleet sizes we generate.
  if (s <= 1.0) s = 1.0 + 1e-3;
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u;
    do {
      u = UniformDouble();
    } while (u <= 0.0);
    const double v = UniformDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<int64_t>(x);
    }
  }
}

double Rng::Pareto(double scale, double shape) {
  if (scale <= 0.0 || shape <= 0.0) std::abort();
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) std::abort();
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace spes
