#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace spes {

namespace {

template <typename T>
double MeanImpl(const std::vector<T>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (T x : xs) sum += static_cast<double>(x);
  return sum / static_cast<double>(xs.size());
}

template <typename T>
double StdDevImpl(const std::vector<T>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = MeanImpl(xs);
  double acc = 0.0;
  for (T x : xs) {
    const double d = static_cast<double>(x) - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double Mean(const std::vector<double>& xs) { return MeanImpl(xs); }
double Mean(const std::vector<int64_t>& xs) { return MeanImpl(xs); }
double StdDev(const std::vector<double>& xs) { return StdDevImpl(xs); }
double StdDev(const std::vector<int64_t>& xs) { return StdDevImpl(xs); }

double CoefficientOfVariation(const std::vector<int64_t>& xs) {
  const double mu = Mean(xs);
  if (mu == 0.0) return 0.0;
  return StdDev(xs) / mu;
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

double Percentile(std::vector<int64_t> xs, double p) {
  std::vector<double> ds(xs.begin(), xs.end());
  std::sort(ds.begin(), ds.end());
  return PercentileSorted(ds, p);
}

double Median(const std::vector<int64_t>& xs) { return Percentile(xs, 50.0); }

std::vector<ModeEntry> TopModes(const std::vector<int64_t>& xs, int n) {
  if (n <= 0 || xs.empty()) return {};
  std::map<int64_t, int64_t> counts;
  for (int64_t x : xs) ++counts[x];
  std::vector<ModeEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [value, count] : counts) entries.push_back({value, count});
  std::sort(entries.begin(), entries.end(),
            [](const ModeEntry& a, const ModeEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  if (entries.size() > static_cast<size_t>(n)) entries.resize(n);
  return entries;
}

std::vector<ModeEntry> RepeatedValues(const std::vector<int64_t>& xs) {
  std::vector<ModeEntry> modes =
      TopModes(xs, static_cast<int>(xs.size()));
  std::vector<ModeEntry> repeated;
  for (const ModeEntry& m : modes) {
    if (m.count > 1) repeated.push_back(m);
  }
  return repeated;
}

std::vector<CdfPoint> EmpiricalCdf(const std::vector<double>& xs) {
  if (xs.empty()) return {};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values into a single step.
    if (!cdf.empty() && cdf.back().value == sorted[i]) {
      cdf.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const double n = static_cast<double>(xs.size());
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) fit.r_squared = (sxy * sxy) / (sxx * syy);
  (void)n;
  return fit;
}

}  // namespace spes
