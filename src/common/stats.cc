#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "common/binary_io.h"

namespace spes {

namespace {

template <typename T>
double MeanImpl(const std::vector<T>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (T x : xs) sum += static_cast<double>(x);
  return sum / static_cast<double>(xs.size());
}

template <typename T>
double StdDevImpl(const std::vector<T>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = MeanImpl(xs);
  double acc = 0.0;
  for (T x : xs) {
    const double d = static_cast<double>(x) - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double Mean(const std::vector<double>& xs) { return MeanImpl(xs); }
double Mean(const std::vector<int64_t>& xs) { return MeanImpl(xs); }
double StdDev(const std::vector<double>& xs) { return StdDevImpl(xs); }
double StdDev(const std::vector<int64_t>& xs) { return StdDevImpl(xs); }

double CoefficientOfVariation(const std::vector<int64_t>& xs) {
  const double mu = Mean(xs);
  if (mu == 0.0) return 0.0;
  return StdDev(xs) / mu;
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

double Percentile(std::vector<int64_t> xs, double p) {
  std::vector<double> ds(xs.begin(), xs.end());
  std::sort(ds.begin(), ds.end());
  return PercentileSorted(ds, p);
}

double Quantile(std::vector<double> xs, double q) {
  return Percentile(std::move(xs), q * 100.0);
}

double Quantile(std::vector<int64_t> xs, double q) {
  return Percentile(std::move(xs), q * 100.0);
}

double Median(const std::vector<int64_t>& xs) { return Percentile(xs, 50.0); }

namespace {

/// Highest possible bucket index + 1: the top bit of a uint64 sample is
/// bit 63, whose octave block is 63 - kSubBits + 1 = 59, and each block
/// holds kSubBuckets buckets — so 60 blocks cover the full domain.
constexpr size_t kNumBuckets =
    (64 - FixedBucketHistogram::kSubBits + 1) *
    FixedBucketHistogram::kSubBuckets;

}  // namespace

FixedBucketHistogram::FixedBucketHistogram() : counts_(kNumBuckets, 0) {}

size_t FixedBucketHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // Octave of the sample's top bit, split into kSubBuckets linear
  // sub-buckets by the bits just below it. Contiguous with the exact
  // range: the first octave block maps [32, 63] to indexes [32, 63].
  const uint64_t top = static_cast<uint64_t>(std::bit_width(value)) - 1;
  const uint64_t shift = top - kSubBits;
  const uint64_t sub = (value >> shift) & (kSubBuckets - 1);
  const uint64_t block = top - kSubBits + 1;
  return static_cast<size_t>(block * kSubBuckets + sub);
}

uint64_t FixedBucketHistogram::BucketMidpoint(size_t index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);  // exact
  const uint64_t block = static_cast<uint64_t>(index) >> kSubBits;
  const uint64_t sub = static_cast<uint64_t>(index) & (kSubBuckets - 1);
  const uint64_t shift = block - 1;
  const uint64_t lo = (kSubBuckets + sub) << shift;
  const uint64_t width = uint64_t{1} << shift;
  return lo + (width >> 1);
}

void FixedBucketHistogram::Record(uint64_t value) { RecordMany(value, 1); }

void FixedBucketHistogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  counts_[BucketIndex(value)] += count;
  if (total_count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  total_count_ += count;
  sum_ += value * count;
}

uint64_t FixedBucketHistogram::ValueAtQuantile(double q) const {
  if (total_count_ == 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  uint64_t target = static_cast<uint64_t>(
      std::ceil(clamped * static_cast<double>(total_count_)));
  target = std::min(std::max<uint64_t>(target, 1), total_count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      // The midpoint can under/overshoot the recorded extremes by up to
      // half a bucket; clamping makes Min()/Max() exact at q=0 / q=1.
      return std::min(std::max(BucketMidpoint(i), Min()), max_);
    }
  }
  return max_;  // unreachable: cumulative reaches total_count_
}

void FixedBucketHistogram::Merge(const FixedBucketHistogram& other) {
  if (other.total_count_ == 0) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (total_count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

void FixedBucketHistogram::SerializeTo(BinaryWriter* writer) const {
  writer->PutVarU64(total_count_);
  writer->PutVarU64(sum_);
  writer->PutVarU64(min_);
  writer->PutVarU64(max_);
  uint64_t occupied = 0;
  for (uint64_t c : counts_) occupied += c != 0 ? 1 : 0;
  writer->PutVarU64(occupied);
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    writer->PutVarU64(i);
    writer->PutVarU64(counts_[i]);
  }
}

Result<FixedBucketHistogram> FixedBucketHistogram::ParseFrom(
    BinaryReader* reader) {
  FixedBucketHistogram histogram;
  SPES_ASSIGN_OR_RETURN(histogram.total_count_, reader->VarU64());
  SPES_ASSIGN_OR_RETURN(histogram.sum_, reader->VarU64());
  SPES_ASSIGN_OR_RETURN(histogram.min_, reader->VarU64());
  SPES_ASSIGN_OR_RETURN(histogram.max_, reader->VarU64());
  SPES_ASSIGN_OR_RETURN(const uint64_t occupied, reader->VarLength(2));
  uint64_t running = 0;
  int64_t previous = -1;
  for (uint64_t k = 0; k < occupied; ++k) {
    SPES_ASSIGN_OR_RETURN(const uint64_t index, reader->VarU64());
    SPES_ASSIGN_OR_RETURN(const uint64_t count, reader->VarU64());
    if (index >= kNumBuckets) {
      return Status::InvalidArgument(
          "corrupt histogram: bucket index (=" + std::to_string(index) +
          ") is out of range");
    }
    if (static_cast<int64_t>(index) <= previous) {
      return Status::InvalidArgument(
          "corrupt histogram: bucket indexes are not strictly increasing");
    }
    if (count == 0) {
      return Status::InvalidArgument(
          "corrupt histogram: empty bucket (=" + std::to_string(index) +
          ") was serialized");
    }
    previous = static_cast<int64_t>(index);
    histogram.counts_[index] = count;
    running += count;
  }
  if (running != histogram.total_count_) {
    return Status::InvalidArgument(
        "corrupt histogram: bucket counts sum to " + std::to_string(running) +
        " but the total says " + std::to_string(histogram.total_count_));
  }
  if (histogram.total_count_ == 0 &&
      (histogram.sum_ != 0 || histogram.min_ != 0 || histogram.max_ != 0)) {
    return Status::InvalidArgument(
        "corrupt histogram: empty histogram carries non-zero aggregates");
  }
  return histogram;
}

std::vector<ModeEntry> TopModes(const std::vector<int64_t>& xs, int n) {
  if (n <= 0 || xs.empty()) return {};
  std::map<int64_t, int64_t> counts;
  for (int64_t x : xs) ++counts[x];
  std::vector<ModeEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [value, count] : counts) entries.push_back({value, count});
  std::sort(entries.begin(), entries.end(),
            [](const ModeEntry& a, const ModeEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  if (entries.size() > static_cast<size_t>(n)) entries.resize(n);
  return entries;
}

std::vector<ModeEntry> RepeatedValues(const std::vector<int64_t>& xs) {
  std::vector<ModeEntry> modes =
      TopModes(xs, static_cast<int>(xs.size()));
  std::vector<ModeEntry> repeated;
  for (const ModeEntry& m : modes) {
    if (m.count > 1) repeated.push_back(m);
  }
  return repeated;
}

std::vector<CdfPoint> EmpiricalCdf(const std::vector<double>& xs) {
  if (xs.empty()) return {};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values into a single step.
    if (!cdf.empty() && cdf.back().value == sorted[i]) {
      cdf.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const double n = static_cast<double>(xs.size());
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) fit.r_squared = (sxy * sxy) / (sxx * syy);
  (void)n;
  return fit;
}

}  // namespace spes
