// Fixed-width ASCII table rendering for the benchmark harnesses.
//
// Every bench binary prints the rows/series of its paper figure with this
// printer so outputs are uniform and diffable across runs.

#ifndef SPES_COMMON_TABLE_H_
#define SPES_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spes {

/// \brief A simple left-aligned ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// \brief Appends a pre-formatted row; must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// \brief Renders the table with a header separator line.
  [[nodiscard]] std::string ToString() const;

  /// \brief RFC-4180-style CSV: header row then data rows; cells
  /// containing commas, quotes or newlines are quoted with doubled
  /// quotes. Machine-readable counterpart of ToString() for artifacts.
  [[nodiscard]] std::string ToCsv() const;

  /// \brief JSON array of row objects keyed by header, e.g.
  /// `[{"policy":"SPES","Q3-CSR":"0.0516"}, ...]`. Cell values are
  /// emitted as JSON strings exactly as formatted (no numeric
  /// re-parsing), so output is stable across locales and runs.
  [[nodiscard]] std::string ToJson() const;

  /// \brief Renders and writes to stdout.
  void Print() const;

  [[nodiscard]] size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Renders `s` as a quoted JSON string literal (escapes quotes,
/// backslashes and control characters). Shared by Table::ToJson and the
/// bench harness JSON envelopes.
std::string JsonEscape(const std::string& s);

/// \brief Formats a double with the given number of decimals.
std::string FormatDouble(double value, int decimals);

/// \brief Formats a fraction (0..1) as a percentage string, e.g. "49.77%".
std::string FormatPercent(double fraction, int decimals);

/// \brief Renders a horizontal ASCII bar of proportional width.
std::string AsciiBar(double fraction, int width);

}  // namespace spes

#endif  // SPES_COMMON_TABLE_H_
