#include "common/ks_test.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace spes {

double KolmogorovSurvival(double x) {
  if (x <= 0.0) return 1.0;
  // The series converges very fast for x >~ 0.3; below that the survival
  // probability is essentially 1.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        std::exp(-2.0 * k * k * x * x) * (k % 2 == 1 ? 1.0 : -1.0);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  const double q = 2.0 * sum;
  return std::clamp(q, 0.0, 1.0);
}

KsResult KsTest(const std::vector<double>& samples,
                const std::function<double(double)>& cdf) {
  KsResult result;
  if (samples.empty()) return result;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double ecdf_hi = static_cast<double>(i + 1) / n;
    const double ecdf_lo = static_cast<double>(i) / n;
    d = std::max(d, std::max(std::abs(ecdf_hi - f), std::abs(f - ecdf_lo)));
  }
  result.statistic = d;
  const double sqrt_n = std::sqrt(n);
  // Asymptotic correction per Stephens (1970).
  const double arg = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  result.p_value = KolmogorovSurvival(arg);
  result.consistent = result.p_value >= 0.05;
  return result;
}

KsResult KsTestPeriodic(const std::vector<int64_t>& gaps) {
  if (gaps.empty()) return {};
  const double mu = Mean(gaps);
  double sigma = StdDev(gaps);
  // A strictly periodic signal has sigma == 0; treat a tight cluster around
  // the mean as periodic by flooring the dispersion at half a slot. With
  // this floor, a perfectly periodic sample yields D ~ 0.5 relative to the
  // smoothed reference, so test against a tolerance band instead: the gaps
  // are "periodic" when nearly all mass is within one slot of the mean.
  if (sigma < 0.5) sigma = 0.5;
  std::vector<double> xs(gaps.begin(), gaps.end());
  const double kInvSqrt2 = 0.7071067811865476;
  auto normal_cdf = [mu, sigma, kInvSqrt2](double x) {
    return 0.5 * std::erfc(-(x - mu) / sigma * kInvSqrt2);
  };
  KsResult ks = KsTest(xs, normal_cdf);
  // Quasi-periodicity escape hatch: if >= 95% of gaps are within 1 slot of
  // the mode, call the sample periodic regardless of the smoothed KS result.
  std::vector<ModeEntry> modes = TopModes(gaps, 1);
  if (!modes.empty()) {
    int64_t near = 0;
    for (int64_t g : gaps) {
      if (std::llabs(g - modes[0].value) <= 1) ++near;
    }
    if (static_cast<double>(near) >=
        0.95 * static_cast<double>(gaps.size())) {
      ks.consistent = true;
      if (ks.p_value < 0.05) ks.p_value = 0.05;
    }
  }
  return ks;
}

KsResult KsTestExponential(const std::vector<int64_t>& gaps) {
  if (gaps.empty()) return {};
  const double mu = Mean(gaps);
  if (mu <= 0.0) return {};
  const double rate = 1.0 / mu;
  std::vector<double> xs;
  xs.reserve(gaps.size());
  // Jitter-free continuity correction: a gap recorded as k slots represents
  // a continuous delay in [k, k+1); evaluate the CDF at the interval middle.
  for (int64_t g : gaps) xs.push_back(static_cast<double>(g) + 0.5);
  auto exp_cdf = [rate](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
  };
  return KsTest(xs, exp_cdf);
}

}  // namespace spes
