#include "policies/oracle.h"

#include <memory>

#include "core/policy_registry.h"

namespace spes {

void RegisterOraclePolicy(PolicyRegistry& registry) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = "oracle";
  entry.summary =
      "Clairvoyant upper bound: loads exactly one minute ahead of every "
      "invocation";
  entry.factory =
      [](const PolicyParams&) -> Result<std::unique_ptr<Policy>> {
    return std::unique_ptr<Policy>(std::make_unique<OraclePolicy>());
  };
  registry.Register(std::move(entry)).CheckOK();
}

void OraclePolicy::Train(const Trace& trace, int train_minutes) {
  (void)train_minutes;
  trace_ = &trace;
}

void OraclePolicy::OnMinute(int t, const std::vector<Invocation>& arrivals,
                            MemSet* mem) {
  (void)arrivals;
  const int next = t + 1;
  const bool has_next = next < trace_->num_minutes();
  for (size_t f = 0; f < trace_->num_functions(); ++f) {
    const bool needed_next =
        has_next &&
        trace_->function(f).counts[static_cast<size_t>(next)] > 0;
    if (needed_next) {
      mem->Add(f);
    } else {
      mem->Remove(f);
    }
  }
}

}  // namespace spes
