#include "policies/defuse.h"

#include <algorithm>
#include <memory>

#include "core/policy_registry.h"

namespace spes {

void RegisterDefusePolicy(PolicyRegistry& registry) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = "defuse";
  entry.summary =
      "Defuse: dependency-guided pre-warming over hybrid-histogram "
      "keep-alive";
  const DefuseOptions defaults;
  entry.params = {
      {"dependency_window", ParamType::kInt,
       ParamValue(defaults.dependency_window),
       "max minutes between predecessor and dependent"},
      {"min_confidence", ParamType::kDouble,
       ParamValue(defaults.min_confidence),
       "min P(B within window | A) for a strong dependency"},
      {"min_support", ParamType::kInt, ParamValue(defaults.min_support),
       "min predecessor arrivals before confidence is trusted"},
      {"prewarm_hold_minutes", ParamType::kInt,
       ParamValue(defaults.prewarm_hold_minutes),
       "minutes a dependency pre-warm keeps the target loaded"},
      {"fallback_keepalive_minutes", ParamType::kInt,
       ParamValue(defaults.fallback_keepalive_minutes),
       "fixed keep-alive for sparse-history functions"},
  };
  entry.factory =
      [](const PolicyParams& params) -> Result<std::unique_ptr<Policy>> {
    DefuseOptions options;
    SPES_ASSIGN_OR_RETURN(
        const int64_t window,
        IntParamInRange(params, "defuse", "dependency_window", 1));
    options.dependency_window = static_cast<int>(window);
    SPES_ASSIGN_OR_RETURN(
        options.min_confidence,
        DoubleParamInRange(params, "defuse", "min_confidence", 0.0, 1.0));
    SPES_ASSIGN_OR_RETURN(const int64_t support,
                          IntParamInRange(params, "defuse", "min_support", 0));
    options.min_support = static_cast<int>(support);
    SPES_ASSIGN_OR_RETURN(
        const int64_t hold,
        IntParamInRange(params, "defuse", "prewarm_hold_minutes", 0));
    options.prewarm_hold_minutes = static_cast<int>(hold);
    SPES_ASSIGN_OR_RETURN(
        const int64_t fallback,
        IntParamInRange(params, "defuse", "fallback_keepalive_minutes", 1));
    options.fallback_keepalive_minutes = static_cast<int>(fallback);
    return std::unique_ptr<Policy>(std::make_unique<DefusePolicy>(options));
  };
  registry.Register(std::move(entry)).CheckOK();
}

namespace {

HybridOptions KeepAliveOptions(const DefuseOptions& options) {
  HybridOptions hybrid;
  hybrid.fallback_keepalive_minutes = options.fallback_keepalive_minutes;
  return hybrid;
}

}  // namespace

DefusePolicy::DefusePolicy(DefuseOptions options)
    : options_(options),
      keepalive_(HybridGranularity::kFunction, KeepAliveOptions(options)) {}

std::string DefusePolicy::name() const { return "Defuse"; }

void DefusePolicy::Train(const Trace& trace, int train_minutes) {
  const size_t n = trace.num_functions();
  keepalive_.Train(trace, train_minutes);
  prewarm_hold_until_.assign(n, -1);
  successors_.assign(n, {});

  // Per-function arrival minutes for dependency mining.
  std::vector<std::vector<int>> arrival_minutes(n);
  for (size_t f = 0; f < n; ++f) {
    const auto& counts = trace.function(f).counts;
    for (int t = 0; t < train_minutes; ++t) {
      if (counts[static_cast<size_t>(t)] > 0) {
        arrival_minutes[f].push_back(t);
      }
    }
  }

  // Strong-dependency mining over same-app pairs.
  for (const auto& [app, members] : trace.GroupByApp()) {
    if (members.size() < 2) continue;
    for (size_t a : members) {
      const auto& a_times = arrival_minutes[a];
      if (static_cast<int>(a_times.size()) < options_.min_support) continue;
      for (size_t b : members) {
        if (a == b) continue;
        const auto& b_times = arrival_minutes[b];
        if (b_times.empty()) continue;
        // Count A-arrivals followed by a B-arrival within the window.
        int followed = 0;
        size_t j = 0;
        for (int ta : a_times) {
          while (j < b_times.size() && b_times[j] <= ta) ++j;
          if (j < b_times.size() &&
              b_times[j] - ta <= options_.dependency_window) {
            ++followed;
          }
        }
        const double confidence =
            static_cast<double>(followed) /
            static_cast<double>(a_times.size());
        if (confidence >= options_.min_confidence) {
          successors_[a].push_back(static_cast<uint32_t>(b));
        }
      }
    }
  }
}

void DefusePolicy::OnMinute(int t, const std::vector<Invocation>& arrivals,
                            MemSet* mem) {
  // Histogram keep-alive / pre-warm windows first...
  keepalive_.OnMinute(t, arrivals, mem);

  // ...then dependency pre-warms override evictions for held targets.
  for (const Invocation& inv : arrivals) {
    for (uint32_t succ : successors_[inv.function]) {
      prewarm_hold_until_[succ] = std::max(
          prewarm_hold_until_[succ], t + options_.prewarm_hold_minutes);
    }
  }
  for (size_t f = 0; f < prewarm_hold_until_.size(); ++f) {
    if (prewarm_hold_until_[f] >= t) mem->Add(f);
  }
}

int64_t DefusePolicy::CountFallbackFunctions() const {
  return keepalive_.CountFallbackUnits();
}

}  // namespace spes
