#include "policies/fixed_keepalive.h"

#include <memory>
#include <utility>

#include "common/binary_io.h"
#include "core/policy_registry.h"

namespace spes {

void RegisterFixedKeepAlivePolicy(PolicyRegistry& registry) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = "fixed_keepalive";
  entry.summary =
      "Industry default: keep each instance warm for a fixed window after "
      "its last use";
  entry.params = {{"minutes", ParamType::kInt, ParamValue(10),
                   "keep-alive window after the last arrival (>= 1)"}};
  entry.factory =
      [](const PolicyParams& params) -> Result<std::unique_ptr<Policy>> {
    SPES_ASSIGN_OR_RETURN(
        const int64_t minutes,
        IntParamInRange(params, "fixed_keepalive", "minutes", 1));
    return std::unique_ptr<Policy>(
        std::make_unique<FixedKeepAlivePolicy>(static_cast<int>(minutes)));
  };
  registry.Register(std::move(entry)).CheckOK();
}

FixedKeepAlivePolicy::FixedKeepAlivePolicy(int keepalive_minutes)
    : keepalive_minutes_(keepalive_minutes < 1 ? 1 : keepalive_minutes) {}

std::string FixedKeepAlivePolicy::name() const {
  return "Fixed-" + std::to_string(keepalive_minutes_) + "min";
}

void FixedKeepAlivePolicy::Train(const Trace& trace, int train_minutes) {
  (void)train_minutes;  // No offline modelling: purely reactive.
  last_arrival_.assign(trace.num_functions(), -1);
}

void FixedKeepAlivePolicy::OnMinute(int t,
                                    const std::vector<Invocation>& arrivals,
                                    MemSet* mem) {
  for (const Invocation& inv : arrivals) last_arrival_[inv.function] = t;
  // Walk only the loaded ids (ascending, like the old full scan); the
  // callback may evict the id it was handed.
  mem->ForEachLoaded([this, t, mem](size_t f) {
    const int last = last_arrival_[f];
    if (last < 0 || t - last >= keepalive_minutes_) mem->Remove(f);
  });
}

Result<std::string> FixedKeepAlivePolicy::SaveState() const {
  BinaryWriter w;
  w.PutI32(keepalive_minutes_);
  w.PutU64(last_arrival_.size());
  for (int last : last_arrival_) w.PutI32(last);
  return w.Take();
}

Status FixedKeepAlivePolicy::RestoreState(const std::string& blob) {
  BinaryReader r(blob);
  SPES_ASSIGN_OR_RETURN(const int32_t minutes, r.I32());
  if (minutes != keepalive_minutes_) {
    return Status::InvalidArgument(
        "checkpoint was taken with keepalive minutes (=" +
        std::to_string(minutes) + ") but this policy has (=" +
        std::to_string(keepalive_minutes_) + ")");
  }
  SPES_ASSIGN_OR_RETURN(const uint64_t n, r.Length(4));
  // The blob must describe the fleet this policy was trained on —
  // OnMinute indexes last_arrival_ by function id, so restoring a
  // different fleet size would read/write out of bounds.
  if (n != last_arrival_.size()) {
    return Status::InvalidArgument(
        "fixed_keepalive state blob describes (=" + std::to_string(n) +
        ") functions but this policy was trained on (=" +
        std::to_string(last_arrival_.size()) + ")");
  }
  std::vector<int> restored;
  restored.reserve(n);
  for (uint64_t f = 0; f < n; ++f) {
    SPES_ASSIGN_OR_RETURN(const int32_t last, r.I32());
    restored.push_back(last);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "fixed_keepalive state blob has trailing bytes");
  }
  last_arrival_ = std::move(restored);
  return Status::OK();
}

}  // namespace spes
