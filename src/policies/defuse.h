// Defuse (Shen et al., ICDCS 2021): a dependency-guided function scheduler.
//
// Defuse mines inter-function dependencies from invocation histories and
// pre-warms a function when one of its mined predecessors fires. For the
// keep-alive decision it reuses the histogram windows of Shahrad et al.'s
// hybrid policy at function granularity, falling back to a short fixed
// keep-alive for functions whose histories are too sparse (the SPES paper
// notes this fallback covers >32% of functions on the Azure trace).
//
// Dependency mining follows Defuse's "strong dependency" notion: ordered
// pairs (A -> B) where B fires within a short window after A with high
// confidence and sufficient support. The candidate space is restricted to
// function pairs sharing an application — the workflow structures
// dependencies arise from — which keeps mining near-linear in fleet size.

#ifndef SPES_POLICIES_DEFUSE_H_
#define SPES_POLICIES_DEFUSE_H_

#include <string>
#include <vector>

#include "policies/hybrid_histogram.h"
#include "sim/policy.h"

namespace spes {

class PolicyRegistry;

/// \brief Registers "defuse{dependency_window=10,...}" (see
/// policy_registry.h).
void RegisterDefusePolicy(PolicyRegistry& registry);

/// \brief Tuning knobs for Defuse.
struct DefuseOptions {
  /// Max minutes between a predecessor firing and the dependent firing.
  int dependency_window = 10;
  /// Minimum P(B within window | A) to call A -> B a strong dependency.
  double min_confidence = 0.5;
  /// Minimum number of A arrivals before confidence is trusted.
  int min_support = 10;
  /// Minutes a dependency-triggered pre-warm keeps the target loaded.
  int prewarm_hold_minutes = 10;
  /// Keep-alive fallback for sparse-history functions (original paper
  /// uses a 10-minute fixed window).
  int fallback_keepalive_minutes = 10;
};

/// \brief Dependency-guided keep-alive/pre-warm scheduler.
class DefusePolicy : public Policy {
 public:
  explicit DefusePolicy(DefuseOptions options = {});

  [[nodiscard]] std::string name() const override;
  void Train(const Trace& trace, int train_minutes) override;
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override;

  /// \brief Mined strong dependencies (A -> B), for tests/analysis.
  [[nodiscard]] const std::vector<std::vector<uint32_t>>& successors() const {
    return successors_;
  }
  /// \brief Functions scheduled by the fixed fallback (no usable histogram).
  [[nodiscard]] int64_t CountFallbackFunctions() const;

 private:
  DefuseOptions options_;
  /// Keep-alive engine: hybrid histogram windows at function granularity.
  HybridHistogramPolicy keepalive_;
  std::vector<std::vector<uint32_t>> successors_;  // A -> {B...}
  std::vector<int> prewarm_hold_until_;  // dependency pre-warm expiry
};

}  // namespace spes

#endif  // SPES_POLICIES_DEFUSE_H_
