// Clairvoyant upper bound: loads a function exactly one minute before each
// invocation and evicts it as soon as no invocation is imminent. With a
// one-minute prediction horizon it achieves zero cold starts (after the
// first simulated minute) and zero wasted memory — the ideal scheduler the
// paper's introduction describes. Used by tests as a bound and by benches
// as a sanity row; not a baseline from the paper.

#ifndef SPES_POLICIES_ORACLE_H_
#define SPES_POLICIES_ORACLE_H_

#include <string>
#include <vector>

#include "sim/policy.h"

namespace spes {

class PolicyRegistry;

/// \brief Registers "oracle" (see policy_registry.h).
void RegisterOraclePolicy(PolicyRegistry& registry);

/// \brief Perfect-future scheduler (lower-bounds both CSR and WMT).
class OraclePolicy : public Policy {
 public:
  OraclePolicy() = default;

  [[nodiscard]] std::string name() const override { return "Oracle"; }
  void Train(const Trace& trace, int train_minutes) override;
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override;

  /// \brief The oracle reads minute t+1 of the trace bound at Train(), so
  /// it cannot run over a streamed source that materializes only the train
  /// prefix.
  [[nodiscard]] bool RequiresFullTrace() const override { return true; }

  /// \name Checkpointing: the oracle keeps no online-mutable state (its
  /// only member is the trace bound at Train()), so its blob is empty.
  /// @{
  [[nodiscard]] bool SupportsCheckpoint() const override { return true; }
  [[nodiscard]] Result<std::string> SaveState() const override { return std::string(); }
  Status RestoreState(const std::string& blob) override {
    return blob.empty()
               ? Status::OK()
               : Status::InvalidArgument(
                     "oracle state blob must be empty, got " +
                     std::to_string(blob.size()) + " bytes");
  }
  /// @}

 private:
  const Trace* trace_ = nullptr;
};

}  // namespace spes

#endif  // SPES_POLICIES_ORACLE_H_
