#include "policies/hybrid_histogram.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "core/policy_registry.h"

namespace spes {

void RegisterHybridHistogramPolicy(PolicyRegistry& registry) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = "hybrid_histogram";
  entry.summary =
      "Shahrad et al. hybrid histogram keep-alive/pre-warm (Azure Functions' "
      "adaptive policy)";
  const HybridOptions defaults;
  entry.params = {
      {"granularity", ParamType::kString, ParamValue("function"),
       "scheduling unit: 'function' (HF) or 'application' (HA)"},
      {"range_minutes", ParamType::kInt,
       ParamValue(defaults.histogram_range_minutes),
       "IAT histogram span in minutes (>= 1)"},
      {"head_percentile", ParamType::kDouble,
       ParamValue(defaults.head_percentile), "pre-warm point percentile"},
      {"tail_percentile", ParamType::kDouble,
       ParamValue(defaults.tail_percentile), "keep-alive horizon percentile"},
      {"margin_fraction", ParamType::kDouble,
       ParamValue(defaults.margin_fraction),
       "safety margin widening [head, tail]"},
      {"min_samples", ParamType::kInt, ParamValue(defaults.min_samples),
       "representativeness floor (samples)"},
      {"max_oob_fraction", ParamType::kDouble,
       ParamValue(defaults.max_oob_fraction),
       "representativeness ceiling (out-of-bounds share)"},
      {"fallback_keepalive_minutes", ParamType::kInt,
       ParamValue(defaults.fallback_keepalive_minutes),
       "fixed keep-alive for non-representative units"},
  };
  entry.factory =
      [](const PolicyParams& params) -> Result<std::unique_ptr<Policy>> {
    const std::string& granularity = params.GetString("granularity");
    HybridGranularity unit;
    if (granularity == "function") {
      unit = HybridGranularity::kFunction;
    } else if (granularity == "application") {
      unit = HybridGranularity::kApplication;
    } else {
      return Status::InvalidArgument(
          "hybrid_histogram parameter 'granularity' must be 'function' or "
          "'application', got '" +
          granularity + "'");
    }
    HybridOptions options;
    SPES_ASSIGN_OR_RETURN(
        const int64_t range,
        IntParamInRange(params, "hybrid_histogram", "range_minutes", 1));
    options.histogram_range_minutes = static_cast<int>(range);
    SPES_ASSIGN_OR_RETURN(
        options.head_percentile,
        DoubleParamInRange(params, "hybrid_histogram", "head_percentile",
                           0.0, 100.0));
    SPES_ASSIGN_OR_RETURN(
        options.tail_percentile,
        DoubleParamInRange(params, "hybrid_histogram", "tail_percentile",
                           0.0, 100.0));
    SPES_ASSIGN_OR_RETURN(
        options.margin_fraction,
        DoubleParamInRange(params, "hybrid_histogram", "margin_fraction",
                           0.0, 1.0));
    SPES_ASSIGN_OR_RETURN(
        const int64_t samples,
        IntParamInRange(params, "hybrid_histogram", "min_samples", 0));
    options.min_samples = static_cast<int>(samples);
    SPES_ASSIGN_OR_RETURN(
        options.max_oob_fraction,
        DoubleParamInRange(params, "hybrid_histogram", "max_oob_fraction",
                           0.0, 1.0));
    SPES_ASSIGN_OR_RETURN(
        const int64_t fallback,
        IntParamInRange(params, "hybrid_histogram",
                        "fallback_keepalive_minutes", 1));
    options.fallback_keepalive_minutes = static_cast<int>(fallback);
    return std::unique_ptr<Policy>(
        std::make_unique<HybridHistogramPolicy>(unit, options));
  };
  registry.Register(std::move(entry)).CheckOK();
}

HybridHistogramPolicy::HybridHistogramPolicy(HybridGranularity granularity,
                                             HybridOptions options)
    : granularity_(granularity), options_(options) {}

std::string HybridHistogramPolicy::name() const {
  return granularity_ == HybridGranularity::kApplication
             ? "Hybrid-Application"
             : "Hybrid-Function";
}

void HybridHistogramPolicy::RefreshWindow(UnitState* unit) const {
  unit->use_histogram = unit->histogram.Representative(
      options_.min_samples, options_.max_oob_fraction);
  if (!unit->use_histogram) {
    unit->prewarm_after = 0;  // stay loaded from the arrival on
    unit->unload_after = options_.fallback_keepalive_minutes;
    return;
  }
  const int head = unit->histogram.PercentileMinute(options_.head_percentile);
  const int tail = unit->histogram.PercentileMinute(options_.tail_percentile);
  // 10% margin: pre-warm earlier, keep alive longer.
  int prewarm = static_cast<int>(
      std::floor(head * (1.0 - options_.margin_fraction)));
  int unload = static_cast<int>(
      std::ceil(tail * (1.0 + options_.margin_fraction)));
  if (prewarm < 0) prewarm = 0;
  if (unload <= prewarm) unload = prewarm + 1;
  // A head at/below one minute means the unit re-fires immediately: keep it
  // loaded from the arrival instead of evict-then-reload.
  if (prewarm <= 1) prewarm = 0;
  unit->prewarm_after = prewarm;
  unit->unload_after = unload;
}

void HybridHistogramPolicy::Train(const Trace& trace, int train_minutes) {
  const size_t n = trace.num_functions();
  unit_of_function_.assign(n, 0);
  functions_of_unit_.clear();
  units_.clear();

  if (granularity_ == HybridGranularity::kFunction) {
    functions_of_unit_.resize(n);
    units_.reserve(n);
    for (size_t f = 0; f < n; ++f) {
      unit_of_function_[f] = static_cast<uint32_t>(f);
      functions_of_unit_[f] = {static_cast<uint32_t>(f)};
      units_.emplace_back(options_.histogram_range_minutes);
    }
  } else {
    std::unordered_map<std::string, uint32_t> app_unit;
    for (size_t f = 0; f < n; ++f) {
      const std::string& app = trace.function(f).meta.app;
      auto [it, inserted] =
          app_unit.emplace(app, static_cast<uint32_t>(units_.size()));
      if (inserted) {
        units_.emplace_back(options_.histogram_range_minutes);
        functions_of_unit_.emplace_back();
      }
      unit_of_function_[f] = it->second;
      functions_of_unit_[it->second].push_back(static_cast<uint32_t>(f));
    }
  }
  unit_arrived_.assign(units_.size(), 0);

  // Offline pass: accumulate unit-level IATs over the training window.
  std::vector<int> last(units_.size(), -1);
  for (int t = 0; t < train_minutes; ++t) {
    for (size_t u = 0; u < units_.size(); ++u) {
      bool arrived = false;
      for (uint32_t f : functions_of_unit_[u]) {
        if (trace.function(f).counts[static_cast<size_t>(t)] > 0) {
          arrived = true;
          break;
        }
      }
      if (!arrived) continue;
      if (last[u] >= 0) units_[u].histogram.Record(t - last[u]);
      last[u] = t;
    }
  }
  for (UnitState& unit : units_) RefreshWindow(&unit);
}

void HybridHistogramPolicy::ApplyUnitSchedule(int t, size_t unit_index,
                                              MemSet* mem) {
  UnitState& unit = units_[unit_index];
  if (unit.last_arrival < 0) {
    // Never seen: evict anything resident (nothing should be).
    for (uint32_t f : functions_of_unit_[unit_index]) mem->Remove(f);
    return;
  }
  const int since = t - unit.last_arrival;
  const bool resident =
      since >= unit.prewarm_after && since < unit.unload_after;
  for (uint32_t f : functions_of_unit_[unit_index]) {
    if (resident) {
      mem->Add(f);
    } else {
      mem->Remove(f);
    }
  }
}

void HybridHistogramPolicy::OnMinute(int t,
                                     const std::vector<Invocation>& arrivals,
                                     MemSet* mem) {
  std::fill(unit_arrived_.begin(), unit_arrived_.end(), 0);
  for (const Invocation& inv : arrivals) {
    unit_arrived_[unit_of_function_[inv.function]] = 1;
  }
  for (size_t u = 0; u < units_.size(); ++u) {
    UnitState& unit = units_[u];
    if (unit_arrived_[u]) {
      // Online histogram update + window refresh on every arrival.
      if (unit.last_arrival >= 0) {
        unit.histogram.Record(t - unit.last_arrival);
      }
      unit.last_arrival = t;
      RefreshWindow(&unit);
    }
    ApplyUnitSchedule(t, u, mem);
  }
}

int64_t HybridHistogramPolicy::CountFallbackUnits() const {
  return std::count_if(units_.begin(), units_.end(),
                       [](const UnitState& u) { return !u.use_histogram; });
}

}  // namespace spes
