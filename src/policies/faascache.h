// FaasCache (Fuerst & Sharma, ASPLOS 2021): keep-alive as object caching.
//
// FaasCache treats warm containers as cache objects and applies
// Greedy-Dual-Size-Frequency (GDSF) eviction: every executed function stays
// resident until memory pressure forces eviction of the lowest-priority
// instance, where
//
//   priority(f) = clock + frequency(f) * cost(f) / size(f)
//
// and the cache clock is advanced to the priority of each evicted victim
// (the aging mechanism of GDSF). Under the paper's simulation principles
// cost and size are uniform, so priority reduces to clock + frequency.
//
// The policy requires a memory capacity; the SPES paper provisions it with
// the maximum memory SPES itself used during the simulation.

#ifndef SPES_POLICIES_FAASCACHE_H_
#define SPES_POLICIES_FAASCACHE_H_

#include <string>
#include <vector>

#include "sim/policy.h"

namespace spes {

class PolicyRegistry;

/// \brief Registers "faascache{capacity=N}" (see policy_registry.h).
void RegisterFaasCachePolicy(PolicyRegistry& registry);

/// \brief GDSF keep-alive cache with a fixed capacity (instances).
class FaasCachePolicy : public Policy {
 public:
  /// \param capacity_instances maximum resident instances (> 0).
  explicit FaasCachePolicy(size_t capacity_instances);

  [[nodiscard]] std::string name() const override;
  void Train(const Trace& trace, int train_minutes) override;
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override;

  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] double clock() const { return clock_; }

 private:
  size_t capacity_;
  double clock_ = 0.0;
  std::vector<double> frequency_;
  std::vector<double> priority_;
  std::vector<uint8_t> pinned_;  // arrived this minute: not evictable
};

}  // namespace spes

#endif  // SPES_POLICIES_FAASCACHE_H_
