#include "policies/faascache.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "core/policy_registry.h"

namespace spes {

void RegisterFaasCachePolicy(PolicyRegistry& registry) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = "faascache";
  entry.summary =
      "FaasCache: GDSF keep-alive caching under a fixed instance capacity";
  entry.params = {{"capacity", ParamType::kInt, ParamValue(1024),
                   "maximum resident instances (> 0); the paper provisions "
                   "it with SPES's peak memory"}};
  entry.factory =
      [](const PolicyParams& params) -> Result<std::unique_ptr<Policy>> {
    // Capacity is a size_t, not an int: only the lower bound matters.
    SPES_ASSIGN_OR_RETURN(
        const int64_t capacity,
        IntParamInRange(params, "faascache", "capacity", 1,
                        std::numeric_limits<int64_t>::max()));
    return std::unique_ptr<Policy>(
        std::make_unique<FaasCachePolicy>(static_cast<size_t>(capacity)));
  };
  registry.Register(std::move(entry)).CheckOK();
}

FaasCachePolicy::FaasCachePolicy(size_t capacity_instances)
    : capacity_(capacity_instances == 0 ? 1 : capacity_instances) {}

std::string FaasCachePolicy::name() const { return "FaasCache"; }

void FaasCachePolicy::Train(const Trace& trace, int train_minutes) {
  (void)train_minutes;  // FaasCache is purely online.
  frequency_.assign(trace.num_functions(), 0.0);
  priority_.assign(trace.num_functions(), 0.0);
  pinned_.assign(trace.num_functions(), 0);
  clock_ = 0.0;
}

void FaasCachePolicy::OnMinute(int t, const std::vector<Invocation>& arrivals,
                               MemSet* mem) {
  (void)t;
  std::fill(pinned_.begin(), pinned_.end(), 0);
  for (const Invocation& inv : arrivals) {
    const size_t f = inv.function;
    frequency_[f] += static_cast<double>(inv.count);
    // Uniform cost/size: priority = clock + frequency.
    priority_[f] = clock_ + frequency_[f];
    pinned_[f] = 1;
  }

  // Enforce the capacity by evicting the minimum-priority resident victim;
  // executing functions are unevictable this minute.
  while (mem->Count() > capacity_) {
    double best = 0.0;
    int64_t victim = -1;
    // Resident ids come out ascending, so ties keep the lowest id just
    // like the old full scan (strict < keeps the first minimum seen).
    mem->ForEachLoaded([this, &best, &victim](size_t f) {
      if (pinned_[f]) return;
      if (victim < 0 || priority_[f] < best) {
        best = priority_[f];
        victim = static_cast<int64_t>(f);
      }
    });
    if (victim < 0) break;  // everything resident is executing
    mem->Remove(static_cast<size_t>(victim));
    clock_ = best;  // GDSF aging
  }
}

}  // namespace spes
