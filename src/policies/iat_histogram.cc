#include "policies/iat_histogram.h"

#include <cstddef>

namespace spes {

IatHistogram::IatHistogram(int range_minutes)
    : bins_(range_minutes < 1 ? 1 : static_cast<size_t>(range_minutes), 0) {}

void IatHistogram::Record(int iat_minutes) {
  if (iat_minutes <= 0) return;
  ++total_;
  if (iat_minutes > static_cast<int>(bins_.size())) {
    ++oob_;
    return;
  }
  ++bins_[static_cast<size_t>(iat_minutes - 1)];
}

double IatHistogram::OutOfBoundsFraction() const {
  return total_ == 0
             ? 0.0
             : static_cast<double>(oob_) / static_cast<double>(total_);
}

int IatHistogram::PercentileMinute(double p) const {
  const int64_t in_range = total_ - oob_;
  if (in_range <= 0) return 0;
  const double target =
      p / 100.0 * static_cast<double>(in_range);
  int64_t cumulative = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    cumulative += bins_[i];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return static_cast<int>(i) + 1;
    }
  }
  return static_cast<int>(bins_.size());
}

bool IatHistogram::Representative(int min_samples,
                                  double max_oob_fraction) const {
  if (total_ < min_samples) return false;
  return OutOfBoundsFraction() <= max_oob_fraction;
}

}  // namespace spes
