// Bounded inter-arrival-time (IAT) histogram, the data structure at the
// heart of the Hybrid policy of Shahrad et al. ("Serverless in the Wild",
// ATC'20) and of Defuse's keep-alive component.
//
// The histogram tracks IATs in 1-minute bins up to a fixed range (4 hours
// in the original paper); arrivals further apart are counted out-of-bounds.
// From the histogram the policy derives a "head" (5th-percentile) pre-warm
// delay and a "tail" (99th-percentile) keep-alive horizon.

#ifndef SPES_POLICIES_IAT_HISTOGRAM_H_
#define SPES_POLICIES_IAT_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace spes {

/// \brief Fixed-range minute-bin IAT histogram with percentile queries.
class IatHistogram {
 public:
  /// \param range_minutes histogram span; IATs >= range count out-of-bounds.
  explicit IatHistogram(int range_minutes = 240);

  /// \brief Records one inter-arrival time (minutes, > 0).
  void Record(int iat_minutes);

  /// \brief Total recorded IATs, including out-of-bounds.
  [[nodiscard]] int64_t TotalCount() const { return total_; }
  [[nodiscard]] int64_t OutOfBoundsCount() const { return oob_; }

  /// \brief Fraction of IATs beyond the histogram range (0 when empty).
  [[nodiscard]] double OutOfBoundsFraction() const;

  /// \brief Smallest bin value whose cumulative in-range count reaches
  /// `p` percent of in-range mass. Returns 0 when no in-range samples.
  [[nodiscard]] int PercentileMinute(double p) const;

  /// \brief Whether the histogram is usable for head/tail scheduling:
  /// enough samples and a bounded out-of-bounds share.
  ///
  /// Mirrors the "pattern is representative" test of Shahrad et al.;
  /// policies fall back to a fixed keep-alive otherwise.
  [[nodiscard]] bool Representative(int min_samples = 10,
                      double max_oob_fraction = 0.5) const;

  [[nodiscard]] int range_minutes() const { return static_cast<int>(bins_.size()); }

 private:
  std::vector<int32_t> bins_;
  int64_t total_ = 0;
  int64_t oob_ = 0;
};

}  // namespace spes

#endif  // SPES_POLICIES_IAT_HISTOGRAM_H_
