// The Hybrid histogram policy of Shahrad et al. ("Serverless in the Wild",
// USENIX ATC 2020), the production policy behind Azure Functions' adaptive
// keep-alive, reproduced at two granularities:
//
//   * Hybrid-Application (HA): the original — the scheduling unit is the
//     application; all functions of an app share one warm environment, so
//     an arrival for any of them warms (and keeps warm) the whole app.
//   * Hybrid-Function (HF): the function-granular derivation used by Defuse
//     and by the SPES paper as an additional baseline.
//
// Per unit, the policy maintains a 4-hour IAT histogram. When the histogram
// is representative it unloads the unit right after execution, re-loads it
// `head` (5th percentile) minutes after the last arrival, and keeps it until
// `tail` (99th percentile) minutes. A 10% safety margin widens the window.
// Units without a representative histogram use a fixed keep-alive fallback.

#ifndef SPES_POLICIES_HYBRID_HISTOGRAM_H_
#define SPES_POLICIES_HYBRID_HISTOGRAM_H_

#include <string>
#include <vector>

#include "policies/iat_histogram.h"
#include "sim/policy.h"

namespace spes {

class PolicyRegistry;

/// \brief Registers "hybrid_histogram{granularity=function|application,...}"
/// (see policy_registry.h).
void RegisterHybridHistogramPolicy(PolicyRegistry& registry);

/// \brief Scheduling granularity for the hybrid policy.
enum class HybridGranularity { kApplication, kFunction };

/// \brief Tuning knobs (defaults follow the original paper).
struct HybridOptions {
  int histogram_range_minutes = 240;  ///< 4-hour IAT window
  double head_percentile = 5.0;       ///< pre-warm point
  double tail_percentile = 99.0;      ///< keep-alive horizon
  double margin_fraction = 0.10;      ///< widen [head, tail] by +/-10%
  int min_samples = 10;               ///< representativeness floor
  double max_oob_fraction = 0.5;      ///< representativeness ceiling
  /// Units without a representative histogram use the provider's standard
  /// fixed keep-alive (Azure's default was 20 minutes).
  int fallback_keepalive_minutes = 20;
};

/// \brief Shahrad et al.'s hybrid histogram keep-alive / pre-warm policy.
class HybridHistogramPolicy : public Policy {
 public:
  HybridHistogramPolicy(HybridGranularity granularity,
                        HybridOptions options = {});

  [[nodiscard]] std::string name() const override;
  void Train(const Trace& trace, int train_minutes) override;
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override;

  /// \brief Number of units using the fixed-keep-alive fallback (after
  /// training); exposed for tests and analysis.
  [[nodiscard]] int64_t CountFallbackUnits() const;

 private:
  struct UnitState {
    IatHistogram histogram;
    int last_arrival = -1;
    // Scheduling window relative to last arrival; refreshed per arrival.
    int prewarm_after = 0;   // load at last_arrival + prewarm_after
    int unload_after = 0;    // evict at last_arrival + unload_after
    bool use_histogram = false;

    explicit UnitState(int range) : histogram(range) {}
  };

  void RefreshWindow(UnitState* unit) const;
  void ApplyUnitSchedule(int t, size_t unit_index, MemSet* mem);

  HybridGranularity granularity_;
  HybridOptions options_;
  std::vector<UnitState> units_;
  /// function index -> unit index
  std::vector<uint32_t> unit_of_function_;
  /// unit index -> member function indices
  std::vector<std::vector<uint32_t>> functions_of_unit_;
  /// scratch: whether each unit had an arrival this minute
  std::vector<uint8_t> unit_arrived_;
};

}  // namespace spes

#endif  // SPES_POLICIES_HYBRID_HISTOGRAM_H_
