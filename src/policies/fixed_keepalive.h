// Fixed keep-alive: the industry-default policy (e.g. OpenWhisk/Azure-style
// "keep the container for N minutes after the last use"). The paper's
// baseline uses N = 10 minutes. No pre-warming.

#ifndef SPES_POLICIES_FIXED_KEEPALIVE_H_
#define SPES_POLICIES_FIXED_KEEPALIVE_H_

#include <string>
#include <vector>

#include "sim/policy.h"

namespace spes {

class PolicyRegistry;

/// \brief Registers "fixed_keepalive{minutes=10}" (see policy_registry.h).
void RegisterFixedKeepAlivePolicy(PolicyRegistry& registry);

/// \brief Keeps each instance loaded for a fixed window after its last
/// arrival, then evicts it.
class FixedKeepAlivePolicy : public Policy {
 public:
  explicit FixedKeepAlivePolicy(int keepalive_minutes = 10);

  [[nodiscard]] std::string name() const override;
  void Train(const Trace& trace, int train_minutes) override;
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override;

  /// \name Checkpointing: the window plus per-function last arrivals.
  /// @{
  [[nodiscard]] bool SupportsCheckpoint() const override { return true; }
  [[nodiscard]] Result<std::string> SaveState() const override;
  Status RestoreState(const std::string& blob) override;
  /// @}

  [[nodiscard]] int keepalive_minutes() const { return keepalive_minutes_; }

 private:
  int keepalive_minutes_;
  std::vector<int> last_arrival_;
};

}  // namespace spes

#endif  // SPES_POLICIES_FIXED_KEEPALIVE_H_
