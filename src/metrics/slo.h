// SLO reporting over the opt-in latency subsystem (latency/latency.h):
// per-policy and per-node p50/p95/p99 tables the bench harnesses print,
// built from finalized LatencyOutcome summaries.

#ifndef SPES_METRICS_SLO_H_
#define SPES_METRICS_SLO_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/table.h"
#include "latency/latency.h"

namespace spes {

/// \brief One labelled row of an SLO comparison: a policy, a node, or a
/// whole sweep cell. `latency` is borrowed and must be finalized (as
/// every outcome handed out by the engine already is).
struct LatencySloRow {
  std::string label;
  const LatencyOutcome* latency = nullptr;
};

/// \brief One comparison row per entry: offered/served/cold counts, the
/// p50/p95/p99/mean/max end-to-end summary, timeout and shed rates, and
/// the peak queue depth. Null-latency rows are skipped (a run without a
/// latency block has nothing to report).
Table BuildLatencySloTable(const std::vector<LatencySloRow>& rows);

/// \brief Per-node SLO breakdown of one cluster run, fleet summary row
/// last — the latency counterpart of BuildClusterNodeTable(). Requires
/// the run to have had a latency block (every NodeOutcome carries one).
Table BuildClusterLatencySloTable(const ClusterOutcome& outcome);

}  // namespace spes

#endif  // SPES_METRICS_SLO_H_
