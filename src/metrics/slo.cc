#include "metrics/slo.h"

#include <string>

namespace spes {

namespace {

const std::vector<std::string>& SloHeaders() {
  static const std::vector<std::string> headers = {
      "label",      "offered",   "served",  "cold",      "p50 ms",
      "p95 ms",     "p99 ms",    "mean ms", "max ms",    "timeouts",
      "timeout %",  "shed",      "shed %",  "max depth"};
  return headers;
}

std::vector<std::string> SloCells(const std::string& label,
                                  const LatencyOutcome& latency) {
  return {label,
          std::to_string(latency.offered()),
          std::to_string(latency.served),
          std::to_string(latency.cold_served),
          FormatDouble(latency.p50_ms, 3),
          FormatDouble(latency.p95_ms, 3),
          FormatDouble(latency.p99_ms, 3),
          FormatDouble(latency.mean_ms, 3),
          FormatDouble(latency.max_ms, 3),
          std::to_string(latency.timeouts),
          FormatPercent(latency.timeout_rate, 2),
          std::to_string(latency.shed),
          FormatPercent(latency.shed_rate, 2),
          std::to_string(latency.max_queue_depth)};
}

}  // namespace

Table BuildLatencySloTable(const std::vector<LatencySloRow>& rows) {
  Table table(SloHeaders());
  for (const LatencySloRow& row : rows) {
    if (row.latency == nullptr) continue;
    table.AddRow(SloCells(row.label, *row.latency));
  }
  return table;
}

Table BuildClusterLatencySloTable(const ClusterOutcome& outcome) {
  Table table(SloHeaders());
  for (const NodeOutcome& node : outcome.nodes) {
    if (node.sim.latency == nullptr) continue;
    table.AddRow(SloCells("node " + std::to_string(node.node) + " (" +
                              node.final_state + ")",
                          *node.sim.latency));
  }
  if (outcome.fleet.latency != nullptr) {
    table.AddRow(SloCells("fleet", *outcome.fleet.latency));
  }
  return table;
}

}  // namespace spes
