// Cross-policy reporting: the comparison rows, CDF tables and per-type
// breakdowns that the bench harnesses print for each paper figure.

#ifndef SPES_METRICS_REPORT_H_
#define SPES_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/table.h"
#include "core/spes_policy.h"
#include "sim/accounting.h"
#include "sim/observers.h"

namespace spes {

/// \brief One comparison row per policy: CSR percentiles, memory, WMT,
/// EMCR, always-cold — normalized against a reference policy (SPES).
Table BuildComparisonTable(const std::vector<FleetMetrics>& metrics,
                           const std::string& reference_policy);

/// \brief Fig. 8-style table: for each policy, the CSR value at a ladder of
/// CDF fractions, plus the CDF value at CSR == 0 (fully-warm share).
Table BuildCsrCdfTable(const std::vector<FleetMetrics>& metrics);

/// \brief Per-type aggregation over a SPES run (Figs. 10 and 12).
struct TypeBreakdownRow {
  FunctionType type = FunctionType::kUnknown;
  int64_t num_functions = 0;
  uint64_t invocations = 0;
  uint64_t cold_starts = 0;
  uint64_t wasted_minutes = 0;
  double mean_csr = 0.0;        ///< mean per-function CSR within the type
  double wmt_per_invocation = 0.0;  ///< "ratio of WMT" of §V-C1
};

/// \brief Aggregates per-function accounts by the SPES type of each
/// function. `policy` must be the SpesPolicy the outcome was produced with.
std::vector<TypeBreakdownRow> BreakdownByType(
    const SpesPolicy& policy, const std::vector<FunctionAccount>& accounts);

Table BuildTypeBreakdownTable(const std::vector<TypeBreakdownRow>& rows);

/// \brief Relative improvement (a - b) / a, e.g. CSR reduction vs baseline.
double RelativeReduction(double baseline, double improved);

/// \brief Minute-by-minute table from a TimeSeriesObserver capture: one
/// row per sampled minute, and per lane a "<label> loaded" and
/// "<label> cold" column (cumulative cold starts). Lanes must be sampled
/// on the same minutes (they are, when captured by one observer on one
/// stream); `labels` must match the lane count, empty labels fall back
/// to "lane<k>".
Table BuildTimelineTable(const std::vector<std::string>& labels,
                         const std::vector<std::vector<MinuteSample>>& series);

/// \brief How unevenly a cluster run spread its work and memory across
/// nodes. Nodes that never joined (an `add` event past the window) are
/// excluded; failed and drained nodes count for the minutes they served.
struct ClusterImbalance {
  /// Nodes included in the statistics.
  int64_t num_nodes = 0;
  /// Coefficient of variation (stddev / mean) of per-node invocations.
  double invocation_cv = 0.0;
  /// Peak node invocations over the per-node mean (1.0 = perfectly even).
  double invocation_peak_ratio = 0.0;
  /// Coefficient of variation of per-node average loaded instances.
  double memory_cv = 0.0;
  /// Largest single-node share of the fleet's cold starts.
  double cold_start_peak_share = 0.0;
};

ClusterImbalance ComputeClusterImbalance(const ClusterOutcome& outcome);

/// \brief Per-node breakdown of one cluster run — invocations, cold
/// starts, CSR, memory, WMT, pressure evictions, re-routes — with a
/// fleet-wide summary row last.
Table BuildClusterNodeTable(const ClusterOutcome& outcome);

}  // namespace spes

#endif  // SPES_METRICS_REPORT_H_
