#include "metrics/report.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/stats.h"

namespace spes {

double RelativeReduction(double baseline, double improved) {
  if (baseline == 0.0) return 0.0;
  return (baseline - improved) / baseline;
}

Table BuildComparisonTable(const std::vector<FleetMetrics>& metrics,
                           const std::string& reference_policy) {
  const FleetMetrics* ref = nullptr;
  for (const FleetMetrics& m : metrics) {
    if (m.policy_name == reference_policy) ref = &m;
  }
  Table table({"policy", "Q3-CSR", "P90-CSR", "always-cold", "zero-cold",
               "norm-mem", "norm-WMT", "EMCR", "overhead-s/min"});
  for (const FleetMetrics& m : metrics) {
    const double norm_mem =
        (ref != nullptr && ref->average_memory > 0.0)
            ? m.average_memory / ref->average_memory
            : m.average_memory;
    const double norm_wmt =
        (ref != nullptr && ref->wasted_memory_minutes > 0)
            ? static_cast<double>(m.wasted_memory_minutes) /
                  static_cast<double>(ref->wasted_memory_minutes)
            : static_cast<double>(m.wasted_memory_minutes);
    table.AddRow({m.policy_name, FormatDouble(m.q3_csr, 4),
                  FormatDouble(m.p90_csr, 4),
                  FormatPercent(m.always_cold_fraction, 2),
                  FormatPercent(m.zero_cold_fraction, 2),
                  FormatDouble(norm_mem, 3), FormatDouble(norm_wmt, 3),
                  FormatPercent(m.emcr, 2),
                  FormatDouble(m.overhead_seconds_per_minute, 5)});
  }
  return table;
}

Table BuildCsrCdfTable(const std::vector<FleetMetrics>& metrics) {
  static const double kFractions[] = {0.10, 0.25, 0.50, 0.75,
                                      0.90, 0.95, 0.99};
  std::vector<std::string> headers = {"policy", "P(CSR=0)"};
  for (double f : kFractions) {
    headers.push_back("CSR@" + FormatPercent(f, 0));
  }
  Table table(headers);
  for (const FleetMetrics& m : metrics) {
    std::vector<std::string> row = {m.policy_name,
                                    FormatPercent(m.zero_cold_fraction, 2)};
    for (double f : kFractions) {
      row.push_back(FormatDouble(Percentile(m.csr, f * 100.0), 4));
    }
    table.AddRow(row);
  }
  return table;
}

std::vector<TypeBreakdownRow> BreakdownByType(
    const SpesPolicy& policy, const std::vector<FunctionAccount>& accounts) {
  std::vector<TypeBreakdownRow> rows(kNumFunctionTypes);
  std::vector<std::vector<double>> csr_samples(kNumFunctionTypes);
  for (int k = 0; k < kNumFunctionTypes; ++k) {
    rows[static_cast<size_t>(k)].type = static_cast<FunctionType>(k);
  }
  for (size_t f = 0; f < accounts.size(); ++f) {
    const size_t k = static_cast<size_t>(policy.TypeOf(f));
    TypeBreakdownRow& row = rows[k];
    ++row.num_functions;
    row.invocations += accounts[f].invocations;
    row.cold_starts += accounts[f].cold_starts;
    row.wasted_minutes += accounts[f].wasted_minutes;
    if (accounts[f].invocations > 0) {
      csr_samples[k].push_back(accounts[f].ColdStartRate());
    }
  }
  for (size_t k = 0; k < rows.size(); ++k) {
    rows[k].mean_csr = Mean(csr_samples[k]);
    if (rows[k].invocations > 0) {
      rows[k].wmt_per_invocation =
          static_cast<double>(rows[k].wasted_minutes) /
          static_cast<double>(rows[k].invocations);
    }
  }
  return rows;
}

Table BuildTimelineTable(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<MinuteSample>>& series) {
  std::vector<std::string> headers{"minute"};
  for (size_t k = 0; k < series.size(); ++k) {
    const std::string label = (k < labels.size() && !labels[k].empty())
                                  ? labels[k]
                                  : "lane" + std::to_string(k);
    headers.push_back(label + " loaded");
    headers.push_back(label + " cold");
  }
  Table table(std::move(headers));
  size_t rows = 0;
  for (const std::vector<MinuteSample>& lane : series) {
    rows = std::max(rows, lane.size());
  }
  for (size_t i = 0; i < rows; ++i) {
    // Lanes captured by one observer on one stream share their minutes;
    // take the row's minute from the first lane that has this sample.
    std::string minute = "-";
    for (const std::vector<MinuteSample>& lane : series) {
      if (i < lane.size()) {
        minute = std::to_string(lane[i].minute);
        break;
      }
    }
    std::vector<std::string> cells{std::move(minute)};
    for (const std::vector<MinuteSample>& lane : series) {
      if (i < lane.size()) {
        cells.push_back(std::to_string(lane[i].loaded_instances));
        cells.push_back(std::to_string(lane[i].cold_starts));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    table.AddRow(std::move(cells));
  }
  return table;
}

ClusterImbalance ComputeClusterImbalance(const ClusterOutcome& outcome) {
  ClusterImbalance imbalance;
  std::vector<double> invocations;
  std::vector<double> memory;
  uint64_t peak_cold = 0;
  for (const NodeOutcome& node : outcome.nodes) {
    if (node.final_state == "pending") continue;
    invocations.push_back(
        static_cast<double>(node.sim.metrics.total_invocations));
    memory.push_back(node.sim.metrics.average_memory);
    peak_cold = std::max(peak_cold, node.sim.metrics.total_cold_starts);
  }
  imbalance.num_nodes = static_cast<int64_t>(invocations.size());
  if (invocations.empty()) return imbalance;

  const auto cv_and_peak = [](const std::vector<double>& values) {
    double sum = 0.0;
    double peak = 0.0;
    for (double v : values) {
      sum += v;
      peak = std::max(peak, v);
    }
    const double mean = sum / static_cast<double>(values.size());
    if (mean == 0.0) return std::pair<double, double>{0.0, 0.0};
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    return std::pair<double, double>{std::sqrt(var) / mean, peak / mean};
  };
  const auto [inv_cv, inv_peak] = cv_and_peak(invocations);
  imbalance.invocation_cv = inv_cv;
  imbalance.invocation_peak_ratio = inv_peak;
  imbalance.memory_cv = cv_and_peak(memory).first;
  const uint64_t fleet_cold = outcome.fleet.metrics.total_cold_starts;
  imbalance.cold_start_peak_share =
      fleet_cold == 0 ? 0.0
                      : static_cast<double>(peak_cold) /
                            static_cast<double>(fleet_cold);
  return imbalance;
}

Table BuildClusterNodeTable(const ClusterOutcome& outcome) {
  Table table({"node", "state", "invocations", "cold starts", "Q3-CSR",
               "avg mem", "peak mem", "WMT", "pressure evict",
               "reroutes in"});
  uint64_t pressure = 0;
  for (const NodeOutcome& node : outcome.nodes) {
    const FleetMetrics& m = node.sim.metrics;
    pressure += node.pressure_evictions;
    table.AddRow({std::to_string(node.node), node.final_state,
                  std::to_string(m.total_invocations),
                  std::to_string(m.total_cold_starts),
                  FormatDouble(m.q3_csr, 4), FormatDouble(m.average_memory, 1),
                  std::to_string(m.max_memory),
                  std::to_string(m.wasted_memory_minutes),
                  std::to_string(node.pressure_evictions),
                  std::to_string(node.reroutes_in)});
  }
  const FleetMetrics& fleet = outcome.fleet.metrics;
  table.AddRow({"fleet", "-", std::to_string(fleet.total_invocations),
                std::to_string(fleet.total_cold_starts),
                FormatDouble(fleet.q3_csr, 4),
                FormatDouble(fleet.average_memory, 1),
                std::to_string(fleet.max_memory),
                std::to_string(fleet.wasted_memory_minutes),
                std::to_string(pressure),
                std::to_string(outcome.reroutes)});
  return table;
}

Table BuildTypeBreakdownTable(const std::vector<TypeBreakdownRow>& rows) {
  Table table({"type", "functions", "invocations", "cold-starts", "mean-CSR",
               "WMT/invocation"});
  for (const TypeBreakdownRow& row : rows) {
    if (row.num_functions == 0) continue;
    table.AddRow({FunctionTypeToString(row.type),
                  std::to_string(row.num_functions),
                  std::to_string(row.invocations),
                  std::to_string(row.cold_starts),
                  FormatDouble(row.mean_csr, 4),
                  FormatDouble(row.wmt_per_invocation, 3)});
  }
  return table;
}

}  // namespace spes
