// SPES function taxonomy (Table I + §IV-B): five deterministic types,
// three indeterminate assignments, the online-only "newly possible" type,
// and "unknown" for functions with no usable history.

#ifndef SPES_CORE_TYPES_H_
#define SPES_CORE_TYPES_H_

#include <cstdint>

namespace spes {

/// \brief SPES's function categories, in categorization priority order for
/// the deterministic types (an earlier match excludes later ones).
enum class FunctionType : uint8_t {
  kUnknown = 0,      ///< no meaningful history; cold starts tolerated
  kAlwaysWarm,       ///< active virtually every slot; never evicted
  kRegular,          ///< periodic WTs (after slacking); predict by median WT
  kApproRegular,     ///< quasi-periodic; predict by the first n WT modes
  kDense,            ///< frequent, short gaps; stay loaded unless idle long
  kSuccessive,       ///< strong temporal locality; ride out each wave
  kPulsed,           ///< weak temporal locality; tolerate first cold start
  kCorrelated,       ///< predicted by linked functions' invocations
  kPossible,         ///< rare but with repeated WTs as predictive values
  kNewlyPossible,    ///< "possible" discovered online (adaptive S3)
};

inline constexpr int kNumFunctionTypes = 10;

/// \brief Stable display name (matches the paper's figure labels).
inline const char* FunctionTypeToString(FunctionType type) {
  switch (type) {
    case FunctionType::kUnknown:
      return "unknown";
    case FunctionType::kAlwaysWarm:
      return "always-warm";
    case FunctionType::kRegular:
      return "regular";
    case FunctionType::kApproRegular:
      return "appro-regular";
    case FunctionType::kDense:
      return "dense";
    case FunctionType::kSuccessive:
      return "successive";
    case FunctionType::kPulsed:
      return "pulsed";
    case FunctionType::kCorrelated:
      return "correlated";
    case FunctionType::kPossible:
      return "possible";
    case FunctionType::kNewlyPossible:
      return "newly-possible";
  }
  return "?";
}

}  // namespace spes

#endif  // SPES_CORE_TYPES_H_
