#include "core/slacking.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace spes {

std::vector<int64_t> TrimBoundaryWts(const std::vector<int64_t>& wts) {
  if (wts.size() < 3) return {};
  return std::vector<int64_t>(wts.begin() + 1, wts.end() - 1);
}

int64_t MergeAnchorMode(const std::vector<int64_t>& wts) {
  if (wts.empty()) return 0;
  std::map<int64_t, int64_t> counts;
  for (int64_t w : wts) ++counts[w];
  int64_t best_value = 0, best_count = 0;
  for (const auto& [value, count] : counts) {
    // >= prefers the larger value on count ties: the structural period,
    // not its small fragments.
    if (count >= best_count) {
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

std::vector<int64_t> MergeAdjacentSmallWts(const std::vector<int64_t>& wts,
                                           int64_t tolerance) {
  if (wts.size() < 2) return wts;
  const int64_t mode = MergeAnchorMode(wts);
  if (mode <= 0) return wts;
  if (tolerance < 0) tolerance = std::max<int64_t>(1, mode / 100);

  // Greedy accumulation with one-step lookahead: adjacent WTs merge while
  // the running sum stays at or below mode + tolerance AND absorbing the
  // next WT moves the sum closer to the mode. An accumulated gap is
  // emitted once it lands within tolerance of the mode (or once the next
  // WT would overshoot). This realises the paper's rule — mode-like WTs
  // gradually swallow their adjacent small fragments — and turns
  // (1439, 1438, 1, 1439, 1438, 1) into (1439, 1439, 1439, 1439).
  std::vector<int64_t> merged;
  merged.reserve(wts.size());
  size_t i = 0;
  while (i < wts.size()) {
    int64_t acc = wts[i];
    while (i + 1 < wts.size()) {
      const int64_t next = acc + wts[i + 1];
      if (next > mode + tolerance) break;
      if (std::llabs(next - mode) > std::llabs(acc - mode)) break;
      acc = next;
      ++i;
    }
    merged.push_back(acc);
    ++i;
  }
  return merged;
}

}  // namespace spes
