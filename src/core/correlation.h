// Co-occurrence rate (COR) and T-lagged COR (§III-B2, §IV-B D2).
//
// COR of a target with respect to a candidate is the fraction of the
// target's invoked slots at which the candidate is also invoked. The
// T-lagged variant shifts the candidate forward by T slots, so a high
// T-COR means "the candidate firing at time s predicts the target at
// s + T" — exactly the structure of chained/fan-out workflows. Functions
// whose best T-COR (T <= 10) reaches a threshold are linked; the candidate
// then serves as a pre-warm indicator for the target.

#ifndef SPES_CORE_CORRELATION_H_
#define SPES_CORE_CORRELATION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace spes {

/// \brief Plain (lag-0) co-occurrence rate of `target` w.r.t. `candidate`:
/// |{t : target[t]>0 and candidate[t]>0}| / |{t : target[t]>0}|.
/// Returns 0 when the target never fires.
double CoOccurrenceRate(std::span<const uint32_t> target,
                        std::span<const uint32_t> candidate);

/// \brief T-lagged COR: candidate shifted forward by `lag` slots, i.e.
/// |{t : target[t]>0 and candidate[t-lag]>0}| / |{t : target[t]>0}|.
double LaggedCoOccurrenceRate(std::span<const uint32_t> target,
                              std::span<const uint32_t> candidate, int lag);

/// \brief Best lag in [0, max_lag] and its T-COR value.
struct BestLag {
  int lag = 0;
  double cor = 0.0;
};
BestLag BestLaggedCor(std::span<const uint32_t> target,
                      std::span<const uint32_t> candidate, int max_lag);

/// \brief A mined predictive link: candidate -> target with a fixed lag.
struct CorrelationLink {
  uint32_t target = 0;
  uint32_t candidate = 0;
  int lag = 0;
  double cor = 0.0;
};

/// \brief BestLaggedCor computed from the target's pre-extracted arrival
/// slots: O(max_lag * |target arrivals|) instead of scanning the horizon
/// per lag. Equivalent to BestLaggedCor on the corresponding series.
BestLag BestLaggedCorFromSlots(const std::vector<int>& target_slots,
                               std::span<const uint32_t> candidate,
                               int max_lag);

}  // namespace spes

#endif  // SPES_CORE_CORRELATION_H_
