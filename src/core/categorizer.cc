#include "core/categorizer.h"

#include <algorithm>

#include "common/stats.h"
#include "core/slacking.h"
#include "trace/trace.h"

namespace spes {

bool WtsLookRegular(const std::vector<int64_t>& wts,
                    const SpesConfig& config) {
  if (wts.empty()) return false;
  const double band =
      Percentile(wts, 95.0) - Percentile(wts, 5.0);
  if (band <= config.regular_percentile_band) return true;
  return CoefficientOfVariation(wts) <= config.regular_cv_max;
}

bool PassesRegularWithSlacking(const std::vector<int64_t>& wts,
                               const SpesConfig& config,
                               std::vector<int64_t>* regular_wts) {
  if (static_cast<int>(wts.size()) < config.min_wts_for_regular) return false;
  if (WtsLookRegular(wts, config)) {
    if (regular_wts != nullptr) *regular_wts = wts;
    return true;
  }
  // Slack 1: the boundary WTs of an observation window are unreliable.
  const std::vector<int64_t> trimmed = TrimBoundaryWts(wts);
  if (static_cast<int>(trimmed.size()) >= config.min_wts_for_regular &&
      WtsLookRegular(trimmed, config)) {
    if (regular_wts != nullptr) *regular_wts = trimmed;
    return true;
  }
  // Slack 2: merge fragmented gaps back into mode-sized WTs.
  const std::vector<int64_t> merged = MergeAdjacentSmallWts(wts);
  if (static_cast<int>(merged.size()) >= config.min_wts_for_regular &&
      merged.size() < wts.size() && WtsLookRegular(merged, config)) {
    if (regular_wts != nullptr) *regular_wts = merged;
    return true;
  }
  // Slack 3: both together — a horizon-truncated boundary fragment can
  // survive merging (nothing to complete it), so trim the merged sequence.
  const std::vector<int64_t> merged_trimmed = TrimBoundaryWts(merged);
  if (static_cast<int>(merged_trimmed.size()) >= config.min_wts_for_regular &&
      merged.size() < wts.size() && WtsLookRegular(merged_trimmed, config)) {
    if (regular_wts != nullptr) *regular_wts = merged_trimmed;
    return true;
  }
  return false;
}

namespace {

/// Table I row 1: invoked at every slot, or total idle time at most
/// a thousandth of the observing window.
bool IsAlwaysWarm(const SeriesFeatures& features, int64_t window,
                  const SpesConfig& config) {
  if (features.total_invocations == 0 || window <= 0) return false;
  const int64_t idle = window - features.active_slots;
  return idle * config.always_warm_idle_divisor <= window;
}

bool IsApproRegular(const std::vector<int64_t>& wts, const SpesConfig& config,
                    std::vector<int64_t>* mode_values) {
  if (static_cast<int>(wts.size()) < config.min_wts_for_regular) return false;
  const std::vector<ModeEntry> modes = TopModes(wts, config.appro_num_modes);
  // Quasi-periodicity implies a *period*: when the dominant gap is within
  // the dense constant, the function is frequent-irregular traffic, which
  // the dense type (next in priority) captures with a cheaper strategy.
  if (static_cast<double>(modes.front().value) <= config.dense_p90_max) {
    return false;
  }
  // A "frequently appearing value" must appear more than once: singleton
  // WTs carry no quasi-periodic evidence.
  int64_t covered = 0;
  for (const ModeEntry& m : modes) {
    if (m.count >= 2) covered += m.count;
  }
  if (static_cast<double>(covered) <
      config.appro_coverage * static_cast<double>(wts.size())) {
    return false;
  }
  if (mode_values != nullptr) {
    mode_values->clear();
    for (const ModeEntry& m : modes) {
      if (m.count >= 2) mode_values->push_back(m.value);
    }
  }
  return true;
}

bool IsDense(const std::vector<int64_t>& wts, const SpesConfig& config) {
  if (wts.empty()) return false;
  return Percentile(wts, 90.0) <= config.dense_p90_max;
}

bool IsSuccessive(const SeriesFeatures& features, const SpesConfig& config) {
  if (static_cast<int>(features.ats.size()) < config.successive_min_waves) {
    return false;
  }
  const int64_t min_at =
      *std::min_element(features.ats.begin(), features.ats.end());
  const int64_t min_an =
      *std::min_element(features.ans.begin(), features.ans.end());
  return min_at >= config.successive_gamma1 &&
         min_an >= config.successive_gamma2;
}

}  // namespace

PredictiveModel FitPossibleModel(const std::vector<int64_t>& wts,
                                 const SpesConfig& config) {
  PredictiveModel model;
  const std::vector<ModeEntry> repeated = RepeatedValues(wts);
  if (repeated.empty()) return model;  // kUnknown
  model.type = FunctionType::kPossible;
  for (const ModeEntry& m : repeated) {
    if (static_cast<int>(model.values.size()) >= config.possible_max_values) {
      break;
    }
    model.values.push_back(m.value);
  }
  // §IV-D: a narrow value range is treated as a continuous interval.
  const auto [lo_it, hi_it] =
      std::minmax_element(model.values.begin(), model.values.end());
  if (*hi_it - *lo_it <= config.possible_range_discrete_threshold &&
      model.values.size() > 1) {
    model.continuous = true;
    model.range_lo = *lo_it;
    model.range_hi = *hi_it;
  }
  model.offline_wt_stddev = StdDev(wts);
  return model;
}

PredictiveModel CategorizeDeterministic(std::span<const uint32_t> counts,
                                        const SpesConfig& config) {
  PredictiveModel model;
  const SeriesFeatures features = ExtractSeriesFeatures(counts);
  if (features.total_invocations == 0) return model;  // kUnknown

  model.offline_wt_stddev = StdDev(features.wts);

  // Priority 1: always warm (no predictive values needed).
  if (IsAlwaysWarm(features, static_cast<int64_t>(counts.size()), config)) {
    model.type = FunctionType::kAlwaysWarm;
    return model;
  }

  // Priority 2: regular (raw -> trimmed -> merged).
  std::vector<int64_t> regular_wts;
  if (PassesRegularWithSlacking(features.wts, config, &regular_wts)) {
    model.type = FunctionType::kRegular;
    model.values = {static_cast<int64_t>(Median(regular_wts) + 0.5)};
    model.offline_wt_stddev = StdDev(regular_wts);
    return model;
  }

  // Priority 3: appro-regular (top-n modes dominate the WT sequence).
  std::vector<int64_t> mode_values;
  if (IsApproRegular(features.wts, config, &mode_values)) {
    model.type = FunctionType::kApproRegular;
    model.values = std::move(mode_values);
    return model;
  }

  // Priority 4: dense (P90 of WTs below the small constant).
  if (IsDense(features.wts, config)) {
    model.type = FunctionType::kDense;
    const std::vector<ModeEntry> modes =
        TopModes(features.wts, config.dense_num_modes);
    int64_t lo = modes.front().value, hi = modes.front().value;
    for (const ModeEntry& m : modes) {
      lo = std::min(lo, m.value);
      hi = std::max(hi, m.value);
    }
    model.continuous = true;
    model.range_lo = lo;
    model.range_hi = hi;
    return model;
  }

  // Priority 5: successive (strong temporal locality).
  if (IsSuccessive(features, config)) {
    model.type = FunctionType::kSuccessive;
    return model;
  }

  return model;  // kUnknown: caller tries indeterminate assignment
}

PredictiveModel CategorizeWithForgetting(std::span<const uint32_t> counts,
                                         const SpesConfig& config) {
  PredictiveModel model = CategorizeDeterministic(counts, config);
  if (model.type != FunctionType::kUnknown || !config.enable_forgetting) {
    return model;
  }
  // Drop whole days from the front, one at a time, down to half the window
  // (§IV-B1): recent behaviour outranks stale behaviour.
  const int days = static_cast<int>(counts.size()) / kMinutesPerDay;
  for (int drop = 1; drop <= days / 2; ++drop) {
    const size_t offset = static_cast<size_t>(drop) * kMinutesPerDay;
    if (offset >= counts.size()) break;
    PredictiveModel suffix_model =
        CategorizeDeterministic(counts.subspan(offset), config);
    if (suffix_model.type != FunctionType::kUnknown) {
      suffix_model.forgotten_prefix_minutes = static_cast<int>(offset);
      return suffix_model;
    }
  }
  return model;
}

}  // namespace spes
