#include "core/spes_policy.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/binary_io.h"
#include "common/stats.h"
#include "core/policy_registry.h"
#include "core/validation.h"

namespace spes {

void RegisterSpesPolicy(PolicyRegistry& registry) {
  PolicyRegistry::Entry entry;
  entry.canonical_name = "spes";
  entry.summary =
      "SPES: differentiated rule-based provisioning by invocation-pattern "
      "category";
  const SpesConfig defaults;
  // The spec surface exposes the provision/ablation knobs the paper sweeps
  // (Figs. 13-15); the Table I definitional constants stay code-level.
  entry.params = {
      {"theta_prewarm", ParamType::kInt, ParamValue(defaults.theta_prewarm),
       "pre-load window around a predicted invocation (>= 0)"},
      {"givenup_scaler", ParamType::kInt, ParamValue(defaults.givenup_scaler),
       "multiplier on every theta_givenup (>= 1, the Fig. 13(b) scaler)"},
      {"theta_givenup_default", ParamType::kInt,
       ParamValue(defaults.theta_givenup_default),
       "eviction threshold for most types (idle minutes)"},
      {"theta_givenup_dense", ParamType::kInt,
       ParamValue(defaults.theta_givenup_dense),
       "eviction threshold for dense functions"},
      {"theta_givenup_pulsed", ParamType::kInt,
       ParamValue(defaults.theta_givenup_pulsed),
       "eviction threshold for pulsed functions"},
      {"alpha", ParamType::kDouble, ParamValue(defaults.alpha),
       "rise-rate scaling in the indeterminate assignment"},
      {"enable_correlated", ParamType::kBool,
       ParamValue(defaults.enable_correlated),
       "training-time correlation links (Fig. 14 'w/o Corr' when false)"},
      {"enable_online_corr", ParamType::kBool,
       ParamValue(defaults.enable_online_corr),
       "online correlation for unseen functions"},
      {"enable_forgetting", ParamType::kBool,
       ParamValue(defaults.enable_forgetting),
       "recent-suffix re-categorization of unknowns (Fig. 15)"},
      {"enable_adjusting", ParamType::kBool,
       ParamValue(defaults.enable_adjusting),
       "online drift correction and late categorization (Fig. 15)"},
  };
  entry.factory =
      [](const PolicyParams& params) -> Result<std::unique_ptr<Policy>> {
    SpesConfig config;
    SPES_ASSIGN_OR_RETURN(
        const int64_t prewarm,
        IntParamInRange(params, "spes", "theta_prewarm", 0));
    config.theta_prewarm = static_cast<int>(prewarm);
    SPES_ASSIGN_OR_RETURN(
        const int64_t scaler,
        IntParamInRange(params, "spes", "givenup_scaler", 1));
    config.givenup_scaler = static_cast<int>(scaler);
    SPES_ASSIGN_OR_RETURN(
        const int64_t givenup_default,
        IntParamInRange(params, "spes", "theta_givenup_default", 0));
    config.theta_givenup_default = static_cast<int>(givenup_default);
    SPES_ASSIGN_OR_RETURN(
        const int64_t givenup_dense,
        IntParamInRange(params, "spes", "theta_givenup_dense", 0));
    config.theta_givenup_dense = static_cast<int>(givenup_dense);
    SPES_ASSIGN_OR_RETURN(
        const int64_t givenup_pulsed,
        IntParamInRange(params, "spes", "theta_givenup_pulsed", 0));
    config.theta_givenup_pulsed = static_cast<int>(givenup_pulsed);
    // Any positive finite scaling is meaningful (the paper uses 0.5).
    SPES_ASSIGN_OR_RETURN(
        config.alpha,
        DoubleParamInRange(params, "spes", "alpha", 1e-9, 1e9));
    config.enable_correlated = params.GetBool("enable_correlated");
    config.enable_online_corr = params.GetBool("enable_online_corr");
    config.enable_forgetting = params.GetBool("enable_forgetting");
    config.enable_adjusting = params.GetBool("enable_adjusting");
    return std::unique_ptr<Policy>(std::make_unique<SpesPolicy>(config));
  };
  registry.Register(std::move(entry)).CheckOK();
}

SpesPolicy::SpesPolicy(SpesConfig config) : config_(config) {}

int SpesPolicy::GivenUpThreshold(FunctionType type) const {
  int base = config_.theta_givenup_default;
  if (type == FunctionType::kDense) base = config_.theta_givenup_dense;
  if (type == FunctionType::kPulsed) base = config_.theta_givenup_pulsed;
  return base * std::max(1, config_.givenup_scaler);
}

bool SpesPolicy::PredictNearInvocation(const FunctionState& state,
                                       int t) const {
  const PredictiveModel& model = state.model;
  if (model.type == FunctionType::kAlwaysWarm) return true;
  if (state.last_arrival < 0) return false;
  const int theta = config_.theta_prewarm;
  if (model.type == FunctionType::kRegular && state.next_predicted >= 0) {
    // Lattice prediction (advanced in OnMinute when an event is dropped).
    return std::llabs(state.next_predicted - static_cast<int64_t>(t)) <=
           theta;
  }
  if (model.continuous) {
    // Dense (and narrow-possible): any time inside last + [lo, hi].
    return t + theta >= state.last_arrival + model.range_lo &&
           t - theta <= state.last_arrival + model.range_hi;
  }
  for (int64_t v : model.values) {
    const int64_t predicted = state.last_arrival + v;
    if (std::llabs(predicted - static_cast<int64_t>(t)) <= theta) return true;
  }
  return false;
}

void SpesPolicy::Train(const Trace& trace, int train_minutes) {
  const size_t n = trace.num_functions();
  states_.assign(n, FunctionState{});
  links_by_candidate_.assign(n, {});
  online_corr_.clear();
  invoked_now_.assign(n, 0);
  forgetting_recategorized_ = 0;
  online_recategorized_ = 0;

  const int validation_begin =
      std::max(0, train_minutes - config_.validation_minutes);

  // --- Pass 1: features + deterministic categorization. --------------------
  std::vector<std::vector<int64_t>> training_wts(n);
  std::vector<size_t> indeterminate;
  for (size_t f = 0; f < n; ++f) {
    const auto counts = trace.Slice(f, 0, train_minutes);
    const SeriesFeatures features = ExtractSeriesFeatures(counts);
    FunctionState& st = states_[f];
    st.seen_in_training = features.total_invocations > 0;
    if (features.last_invoked >= 0) {
      st.last_arrival = static_cast<int>(features.last_invoked);
      st.current_wt = train_minutes - 1 - st.last_arrival;
    }
    training_wts[f] = features.wts;
    if (!st.seen_in_training) continue;  // unseen: handled by online corr

    st.model = CategorizeDeterministic(counts, config_);
    if (st.model.type == FunctionType::kUnknown && config_.enable_forgetting) {
      PredictiveModel recovered = CategorizeWithForgetting(counts, config_);
      if (recovered.type != FunctionType::kUnknown) {
        st.model = recovered;
        ++forgetting_recategorized_;
      }
    }
    // Near-empty histories (a couple of invoked minutes) carry no signal
    // for the supplementary strategies either: leave them unknown.
    if (st.model.type == FunctionType::kUnknown &&
        features.active_slots >= config_.indeterminate_min_invoked_minutes) {
      indeterminate.push_back(f);
    }
  }

  // --- Pass 2: indeterminate assignment by validation replay. --------------
  const auto by_app = trace.GroupByApp();
  const auto by_owner = trace.GroupByOwner();
  for (size_t f : indeterminate) {
    FunctionState& st = states_[f];
    const auto validation = trace.Slice(f, validation_begin, train_minutes);

    // Candidate functions: share the application or owner (§IV-B D2).
    std::vector<CorrelationLink> links;
    if (config_.enable_correlated) {
      const std::vector<int> target_slots_vec = [&] {
        std::vector<int> slots;
        const auto train_slice = trace.Slice(f, 0, train_minutes);
        for (size_t t = 0; t < train_slice.size(); ++t) {
          if (train_slice[t] > 0) slots.push_back(static_cast<int>(t));
        }
        return slots;
      }();
      if (static_cast<int>(target_slots_vec.size()) >=
          config_.tcor_min_target_arrivals) {
        std::vector<size_t> candidates;
        auto app_it = by_app.find(trace.function(f).meta.app);
        if (app_it != by_app.end()) {
          candidates.insert(candidates.end(), app_it->second.begin(),
                            app_it->second.end());
        }
        auto owner_it = by_owner.find(trace.function(f).meta.owner);
        if (owner_it != by_owner.end()) {
          candidates.insert(candidates.end(), owner_it->second.begin(),
                            owner_it->second.end());
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
        for (size_t c : candidates) {
          if (c == f || !states_[c].seen_in_training) continue;
          const auto candidate_slice = trace.Slice(c, 0, train_minutes);
          const BestLag best = BestLaggedCorFromSlots(
              target_slots_vec, candidate_slice, config_.tcor_max_lag);
          if (best.cor < config_.tcor_threshold) continue;
          // Precision check: how often does a candidate firing actually
          // precede a target invocation? (Guards against hyperactive
          // candidates that would pre-warm the target non-stop.)
          int64_t cand_fires = 0, followed = 0;
          const auto target_slice = trace.Slice(f, 0, train_minutes);
          for (size_t s = 0; s < candidate_slice.size(); ++s) {
            if (candidate_slice[s] == 0) continue;
            ++cand_fires;
            const size_t lo = s + static_cast<size_t>(std::max(
                                      0, best.lag - config_.theta_prewarm));
            const size_t hi =
                s + static_cast<size_t>(best.lag + config_.theta_prewarm);
            for (size_t u = lo; u <= hi && u < target_slice.size(); ++u) {
              if (target_slice[u] > 0) {
                ++followed;
                break;
              }
            }
          }
          const double precision =
              cand_fires == 0 ? 0.0
                              : static_cast<double>(followed) /
                                    static_cast<double>(cand_fires);
          if (precision < config_.tcor_min_precision) continue;
          links.push_back({static_cast<uint32_t>(f),
                           static_cast<uint32_t>(c), best.lag, best.cor});
        }
      }
    }

    // D1: pulsed replay.
    const StrategyCost pulsed = ReplayPulsed(
        validation,
        config_.theta_givenup_pulsed * std::max(1, config_.givenup_scaler));
    // D2: correlated replay over the validation slices of linked functions.
    std::vector<std::span<const uint32_t>> cand_validation;
    std::vector<int> lags;
    for (const CorrelationLink& link : links) {
      cand_validation.push_back(
          trace.Slice(link.candidate, validation_begin, train_minutes));
      lags.push_back(link.lag);
    }
    const StrategyCost correlated =
        ReplayCorrelated(validation, cand_validation, lags,
                         config_.corr_prewarm_hold, config_.theta_prewarm);
    // D3: possible replay from repeated training WTs.
    const PredictiveModel possible_model =
        FitPossibleModel(training_wts[f], config_);
    const StrategyCost possible =
        ReplayPossible(validation, possible_model, config_);

    const AssignmentDecision decision =
        ChooseAssignment(pulsed, correlated, possible, config_.alpha);
    switch (decision.type) {
      case FunctionType::kPulsed:
        st.model = PredictiveModel{};
        st.model.type = FunctionType::kPulsed;
        st.model.offline_wt_stddev = StdDev(training_wts[f]);
        break;
      case FunctionType::kCorrelated:
        st.model = PredictiveModel{};
        st.model.type = FunctionType::kCorrelated;
        for (const CorrelationLink& link : links) {
          links_by_candidate_[link.candidate].push_back(link);
        }
        break;
      case FunctionType::kPossible:
        st.model = possible_model;
        break;
      default:
        break;  // stays kUnknown: cold starts tolerated
    }
  }

  // Seed lattice predictions so regular functions are covered from the
  // first simulated minute.
  for (FunctionState& st : states_) {
    if (st.model.type == FunctionType::kRegular && !st.model.values.empty() &&
        st.model.values[0] > 0 && st.last_arrival >= 0) {
      st.next_predicted = st.last_arrival + st.model.values[0];
    }
  }

  // --- Pass 3: online-correlation setup for unseen functions (§IV-C2). -----
  if (config_.enable_online_corr) {
    for (size_t f = 0; f < n; ++f) {
      if (states_[f].seen_in_training) {
        continue;
      }
      OnlineCorrState corr;
      corr.target = static_cast<uint32_t>(f);
      const TriggerType trigger = trace.function(f).meta.trigger;
      // Prefer same-app, then same-owner, then any same-trigger function.
      auto consider = [&](size_t c) {
        if (c == f || !states_[c].seen_in_training) return;
        if (trace.function(c).meta.trigger != trigger) return;
        if (static_cast<int>(corr.candidates.size()) >=
            config_.online_corr_max_candidates) {
          return;
        }
        const uint32_t cand = static_cast<uint32_t>(c);
        if (std::find(corr.candidates.begin(), corr.candidates.end(), cand) ==
            corr.candidates.end()) {
          corr.candidates.push_back(cand);
        }
      };
      auto app_it = by_app.find(trace.function(f).meta.app);
      if (app_it != by_app.end()) {
        for (size_t c : app_it->second) consider(c);
      }
      auto owner_it = by_owner.find(trace.function(f).meta.owner);
      if (owner_it != by_owner.end()) {
        for (size_t c : owner_it->second) consider(c);
      }
      for (size_t c = 0;
           c < n && static_cast<int>(corr.candidates.size()) <
                        config_.online_corr_max_candidates;
           ++c) {
        consider(c);
      }
      if (!corr.candidates.empty()) {
        corr.active.assign(corr.candidates.size(), 1);
        corr.co_count.assign(corr.candidates.size(), 0);
        online_corr_.push_back(std::move(corr));
      }
    }
  }
}

void SpesPolicy::MaybeAdjustPredictiveValues(FunctionState* state) {
  if (!config_.enable_adjusting) return;
  PredictiveModel& model = state->model;
  const int samples = static_cast<int>(state->online_wts.size());
  // S1: only act with enough fresh WTs since the last adjustment.
  if (samples < config_.adjust_min_samples ||
      samples - state->adjust_cursor < config_.adjust_min_samples) {
    return;
  }
  state->adjust_cursor = samples;
  const double gate = std::max(model.offline_wt_stddev, 1.0);

  switch (model.type) {
    case FunctionType::kRegular: {
      // S2: replace the median predictive value by the old/new mean when
      // the online median drifts beyond the offline dispersion.
      const double online_median = Median(state->online_wts);
      if (!model.values.empty() &&
          std::abs(online_median - static_cast<double>(model.values[0])) >
              gate) {
        model.values[0] = static_cast<int64_t>(
            (static_cast<double>(model.values[0]) + online_median) / 2.0 +
            0.5);
      }
      return;
    }
    case FunctionType::kApproRegular: {
      // Pair each predictive value with its NEAREST online mode (the rank
      // order of tightly clustered quasi-period modes is unstable between
      // the offline and online windows) and average only on genuine drift.
      const std::vector<ModeEntry> online_modes =
          TopModes(state->online_wts, config_.appro_num_modes);
      if (online_modes.empty()) return;
      for (int64_t& value : model.values) {
        int64_t nearest = online_modes.front().value;
        for (const ModeEntry& m : online_modes) {
          if (std::llabs(m.value - value) < std::llabs(nearest - value)) {
            nearest = m.value;
          }
        }
        if (std::abs(static_cast<double>(nearest) -
                     static_cast<double>(value)) > gate) {
          value = (value + nearest) / 2;
        }
      }
      return;
    }
    case FunctionType::kDense: {
      const std::vector<ModeEntry> online_modes =
          TopModes(state->online_wts, config_.dense_num_modes);
      if (online_modes.empty()) return;
      int64_t lo = online_modes.front().value, hi = lo;
      for (const ModeEntry& m : online_modes) {
        lo = std::min(lo, m.value);
        hi = std::max(hi, m.value);
      }
      const double old_mid =
          static_cast<double>(model.range_lo + model.range_hi) / 2.0;
      const double new_mid = static_cast<double>(lo + hi) / 2.0;
      if (std::abs(new_mid - old_mid) > gate) {
        model.range_lo = (model.range_lo + lo) / 2;
        model.range_hi = (model.range_hi + hi + 1) / 2;
      }
      return;
    }
    case FunctionType::kPossible:
    case FunctionType::kNewlyPossible: {
      // Merge newly repeated online WTs into the predictive set.
      for (const ModeEntry& m : RepeatedValues(state->online_wts)) {
        if (static_cast<int>(model.values.size()) >=
            config_.possible_max_values) {
          break;
        }
        if (std::find(model.values.begin(), model.values.end(), m.value) ==
            model.values.end()) {
          model.values.push_back(m.value);
        }
      }
      return;
    }
    default:
      return;
  }
}

void SpesPolicy::MaybeLateCategorize(FunctionState* state) {
  if (!config_.enable_adjusting) return;
  if (state->model.type != FunctionType::kUnknown) return;
  if (static_cast<int>(state->online_wts.size()) <
      config_.newly_possible_min_wts) {
    return;
  }
  // S3: an unknown/unseen function whose online WTs develop repeated modes
  // becomes "newly possible" and gains predictive values.
  PredictiveModel fitted = FitPossibleModel(state->online_wts, config_);
  if (fitted.type == FunctionType::kPossible) {
    fitted.type = FunctionType::kNewlyPossible;
    state->model = fitted;
    ++online_recategorized_;
  }
}

void SpesPolicy::UpdateOnlineCorrelations(int t, MemSet* mem) {
  for (OnlineCorrState& corr : online_corr_) {
    FunctionState& target_state = states_[corr.target];
    const bool target_fired = invoked_now_[corr.target] != 0;
    if (target_fired) {
      ++corr.target_arrivals;
      corr.grants_since_arrival = 0;
    }

    double max_cor = 0.0;
    for (size_t k = 0; k < corr.candidates.size(); ++k) {
      const FunctionState& cand = states_[corr.candidates[k]];
      const bool cand_recent =
          cand.last_arrival >= 0 &&
          t - cand.last_arrival <= config_.tcor_max_lag;
      if (target_fired && cand_recent) ++corr.co_count[k];
      if (corr.target_arrivals > 0) {
        max_cor = std::max(
            max_cor, static_cast<double>(corr.co_count[k]) /
                         static_cast<double>(corr.target_arrivals));
      }
    }
    // Keep/expel candidates relative to the running maximum (§IV-C2): a
    // candidate far below the best is dropped, and readmitted if its COR
    // climbs back near the maximum.
    if (corr.target_arrivals >= 3) {
      for (size_t k = 0; k < corr.candidates.size(); ++k) {
        const double cor = static_cast<double>(corr.co_count[k]) /
                           static_cast<double>(corr.target_arrivals);
        if (max_cor - cor > config_.online_corr_drop_gap) {
          corr.active[k] = 0;
        } else if (max_cor - cor < config_.online_corr_drop_gap / 3.0) {
          corr.active[k] = 1;
        }
      }
    }
    // Pre-warm the target whenever an active candidate fires (the paper's
    // aggressive initial phase; candidates are pruned by COR over time).
    for (size_t k = 0; k < corr.candidates.size(); ++k) {
      if (!corr.active[k] || !invoked_now_[corr.candidates[k]]) continue;
      mem->Add(corr.target);
      const int new_hold = t + config_.corr_prewarm_hold;
      if (new_hold > target_state.corr_hold_until) {
        target_state.corr_hold_until = new_hold;
        ++corr.grants_since_arrival;
      }
      break;
    }
  }
}

void SpesPolicy::OnMinute(int t, const std::vector<Invocation>& arrivals,
                          MemSet* mem) {
  std::fill(invoked_now_.begin(), invoked_now_.end(), 0);

  // --- Arrival handling (Algorithm 1 lines 3-12). ---------------------------
  for (const Invocation& inv : arrivals) {
    const size_t f = inv.function;
    invoked_now_[f] = 1;
    FunctionState& st = states_[f];
    if (st.last_arrival >= 0 && st.current_wt > 0) {
      st.online_wts.push_back(st.current_wt);  // a completed WT (S1)
      MaybeAdjustPredictiveValues(&st);
      MaybeLateCategorize(&st);
    }
    st.last_arrival = t;
    st.current_wt = 0;
    if (st.model.type == FunctionType::kRegular && !st.model.values.empty() &&
        st.model.values[0] > 0) {
      st.next_predicted = t + st.model.values[0];
    }
    // Correlated pre-warm: this arrival predicts linked targets at t + lag;
    // load them now (lag <= theta_max) and hold through the window.
    for (const CorrelationLink& link : links_by_candidate_[f]) {
      mem->Add(link.target);
      states_[link.target].corr_hold_until =
          std::max(states_[link.target].corr_hold_until,
                   t + link.lag + config_.theta_prewarm);
    }
  }

  // --- Adaptive handling of unseen functions (§IV-C2). ---------------------
  UpdateOnlineCorrelations(t, mem);

  // --- Idle handling: pre-load or give up (Algorithm 1 lines 13-20). -------
  for (size_t f = 0; f < states_.size(); ++f) {
    if (invoked_now_[f]) continue;
    FunctionState& st = states_[f];
    if (st.last_arrival >= 0) ++st.current_wt;

    // Lattice advance for regular functions: a prediction that passed
    // without an arrival was a dropped event; keep the phase and predict
    // one period later.
    if (st.model.type == FunctionType::kRegular && !st.model.values.empty() &&
        st.model.values[0] > 0 && st.last_arrival >= 0) {
      if (st.next_predicted < 0) {
        st.next_predicted = st.last_arrival + st.model.values[0];
      }
      while (st.next_predicted + config_.theta_prewarm <
             static_cast<int64_t>(t)) {
        st.next_predicted += st.model.values[0];
      }
    }

    const bool held = t <= st.corr_hold_until;
    const bool preload = held || PredictNearInvocation(st, t);
    if (preload) {
      mem->Add(f);
      continue;
    }
    if (!mem->Contains(f)) continue;
    if (st.last_arrival < 0) {
      // Pre-warmed by correlation but never invoked: drop once the hold
      // expires.
      mem->Remove(f);
      continue;
    }
    if (st.current_wt >= GivenUpThreshold(st.model.type)) mem->Remove(f);
  }
}

namespace {

void PutI64Vector(BinaryWriter* w, const std::vector<int64_t>& values) {
  w->PutU64(values.size());
  for (int64_t v : values) w->PutI64(v);
}

Result<std::vector<int64_t>> GetI64Vector(BinaryReader* r) {
  SPES_ASSIGN_OR_RETURN(const uint64_t n, r->Length(8));
  std::vector<int64_t> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SPES_ASSIGN_OR_RETURN(const int64_t v, r->I64());
    values.push_back(v);
  }
  return values;
}

}  // namespace

Result<std::string> SpesPolicy::SaveState() const {
  BinaryWriter w;
  w.PutU64(states_.size());
  for (const FunctionState& st : states_) {
    w.PutU8(static_cast<uint8_t>(st.model.type));
    PutI64Vector(&w, st.model.values);
    w.PutI64(st.model.range_lo);
    w.PutI64(st.model.range_hi);
    w.PutBool(st.model.continuous);
    w.PutDouble(st.model.offline_wt_stddev);
    w.PutI32(st.model.forgotten_prefix_minutes);
    w.PutI32(st.last_arrival);
    w.PutI32(st.current_wt);
    w.PutBool(st.seen_in_training);
    w.PutI32(st.corr_hold_until);
    w.PutI64(st.next_predicted);
    PutI64Vector(&w, st.online_wts);
    w.PutI32(st.adjust_cursor);
  }
  w.PutU64(links_by_candidate_.size());
  for (const std::vector<CorrelationLink>& links : links_by_candidate_) {
    w.PutU64(links.size());
    for (const CorrelationLink& link : links) {
      w.PutU32(link.target);
      w.PutU32(link.candidate);
      w.PutI32(link.lag);
      w.PutDouble(link.cor);
    }
  }
  w.PutU64(online_corr_.size());
  for (const OnlineCorrState& corr : online_corr_) {
    w.PutU32(corr.target);
    w.PutU64(corr.candidates.size());
    for (uint32_t c : corr.candidates) w.PutU32(c);
    for (uint8_t a : corr.active) w.PutU8(a);
    for (int32_t n : corr.co_count) w.PutI32(n);
    w.PutI32(corr.target_arrivals);
    w.PutI32(corr.grants_since_arrival);
  }
  w.PutI64(forgetting_recategorized_);
  w.PutI64(online_recategorized_);
  return w.Take();
}

Status SpesPolicy::RestoreState(const std::string& blob) {
  // Parse into temporaries and commit only at the end, so a truncated or
  // corrupt blob leaves the policy untouched.
  BinaryReader r(blob);
  // Minimal encoded FunctionState: 71 bytes (all scalars + two empty
  // vectors) — keeps a corrupt count from driving a huge reserve().
  SPES_ASSIGN_OR_RETURN(const uint64_t n, r.Length(71));
  // The blob must describe the fleet this policy was trained on: every
  // OnMinute path indexes states_/invoked_now_ by function id, so a
  // size mismatch (or any out-of-range id below) would be heap OOB.
  if (n != states_.size()) {
    return Status::InvalidArgument(
        "spes state blob describes (=" + std::to_string(n) +
        ") functions but this policy was trained on (=" +
        std::to_string(states_.size()) + ")");
  }
  std::vector<FunctionState> states;
  states.reserve(n);
  for (uint64_t f = 0; f < n; ++f) {
    FunctionState st;
    SPES_ASSIGN_OR_RETURN(const uint8_t type, r.U8());
    if (type >= kNumFunctionTypes) {
      return Status::InvalidArgument(
          "spes state blob holds function type (=" + std::to_string(type) +
          "), valid types are [0, " + std::to_string(kNumFunctionTypes) +
          ")");
    }
    st.model.type = static_cast<FunctionType>(type);
    SPES_ASSIGN_OR_RETURN(st.model.values, GetI64Vector(&r));
    SPES_ASSIGN_OR_RETURN(st.model.range_lo, r.I64());
    SPES_ASSIGN_OR_RETURN(st.model.range_hi, r.I64());
    SPES_ASSIGN_OR_RETURN(st.model.continuous, r.Bool());
    SPES_ASSIGN_OR_RETURN(st.model.offline_wt_stddev, r.Double());
    SPES_ASSIGN_OR_RETURN(st.model.forgotten_prefix_minutes, r.I32());
    SPES_ASSIGN_OR_RETURN(st.last_arrival, r.I32());
    SPES_ASSIGN_OR_RETURN(st.current_wt, r.I32());
    SPES_ASSIGN_OR_RETURN(st.seen_in_training, r.Bool());
    SPES_ASSIGN_OR_RETURN(st.corr_hold_until, r.I32());
    SPES_ASSIGN_OR_RETURN(st.next_predicted, r.I64());
    SPES_ASSIGN_OR_RETURN(st.online_wts, GetI64Vector(&r));
    SPES_ASSIGN_OR_RETURN(st.adjust_cursor, r.I32());
    states.push_back(std::move(st));
  }
  SPES_ASSIGN_OR_RETURN(const uint64_t num_candidates, r.Length(8));
  if (num_candidates != n) {
    return Status::InvalidArgument(
        "spes state blob has (=" + std::to_string(num_candidates) +
        ") link lists for (=" + std::to_string(n) + ") functions");
  }
  std::vector<std::vector<CorrelationLink>> links_by_candidate(num_candidates);
  for (uint64_t c = 0; c < num_candidates; ++c) {
    SPES_ASSIGN_OR_RETURN(const uint64_t num_links, r.Length(20));
    links_by_candidate[c].reserve(num_links);
    for (uint64_t k = 0; k < num_links; ++k) {
      CorrelationLink link;
      SPES_ASSIGN_OR_RETURN(link.target, r.U32());
      SPES_ASSIGN_OR_RETURN(link.candidate, r.U32());
      SPES_ASSIGN_OR_RETURN(link.lag, r.I32());
      SPES_ASSIGN_OR_RETURN(link.cor, r.Double());
      if (link.target >= n || link.candidate >= n) {
        return Status::InvalidArgument(
            "spes state blob holds correlation link with function id (=" +
            std::to_string(std::max(link.target, link.candidate)) +
            ") outside the fleet (=" + std::to_string(n) + " functions)");
      }
      links_by_candidate[c].push_back(link);
    }
  }
  // Minimal encoded OnlineCorrState: 20 bytes (target + empty candidate
  // list + the two counters).
  SPES_ASSIGN_OR_RETURN(const uint64_t num_corr, r.Length(20));
  std::vector<OnlineCorrState> online_corr;
  online_corr.reserve(num_corr);
  for (uint64_t i = 0; i < num_corr; ++i) {
    OnlineCorrState corr;
    SPES_ASSIGN_OR_RETURN(corr.target, r.U32());
    if (corr.target >= n) {
      return Status::InvalidArgument(
          "spes state blob holds online-correlation target (=" +
          std::to_string(corr.target) + ") outside the fleet (=" +
          std::to_string(n) + " functions)");
    }
    SPES_ASSIGN_OR_RETURN(const uint64_t num_cand, r.Length(9));
    corr.candidates.reserve(num_cand);
    for (uint64_t k = 0; k < num_cand; ++k) {
      SPES_ASSIGN_OR_RETURN(const uint32_t c, r.U32());
      if (c >= n) {
        return Status::InvalidArgument(
            "spes state blob holds online-correlation candidate (=" +
            std::to_string(c) + ") outside the fleet (=" +
            std::to_string(n) + " functions)");
      }
      corr.candidates.push_back(c);
    }
    corr.active.reserve(num_cand);
    for (uint64_t k = 0; k < num_cand; ++k) {
      SPES_ASSIGN_OR_RETURN(const uint8_t a, r.U8());
      corr.active.push_back(a);
    }
    corr.co_count.reserve(num_cand);
    for (uint64_t k = 0; k < num_cand; ++k) {
      SPES_ASSIGN_OR_RETURN(const int32_t v, r.I32());
      corr.co_count.push_back(v);
    }
    SPES_ASSIGN_OR_RETURN(corr.target_arrivals, r.I32());
    SPES_ASSIGN_OR_RETURN(corr.grants_since_arrival, r.I32());
    online_corr.push_back(std::move(corr));
  }
  int64_t forgetting = 0, online = 0;
  SPES_ASSIGN_OR_RETURN(forgetting, r.I64());
  SPES_ASSIGN_OR_RETURN(online, r.I64());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("spes state blob has trailing bytes");
  }

  states_ = std::move(states);
  links_by_candidate_ = std::move(links_by_candidate);
  online_corr_ = std::move(online_corr);
  invoked_now_.assign(states_.size(), 0);
  forgetting_recategorized_ = forgetting;
  online_recategorized_ = online;
  return Status::OK();
}

std::array<int64_t, kNumFunctionTypes> SpesPolicy::CountByType() const {
  std::array<int64_t, kNumFunctionTypes> counts{};
  for (const FunctionState& st : states_) {
    ++counts[static_cast<size_t>(st.model.type)];
  }
  return counts;
}

}  // namespace spes
