// Indeterminate function assignment (§IV-B2).
//
// Functions that no deterministic definition captures are assigned to one
// of three supplementary strategies by *replaying a validation window*
// under each strategy and comparing the cold starts (cs) and wasted memory
// (wm) each incurs:
//
//   D1 pulsed:     tolerate the first cold start of a burst and stay warm
//                  until the idle time reaches theta_givenup_pulsed;
//   D2 correlated: pre-warm whenever a linked (high T-COR) function fires;
//   D3 possible:   predict the next invocation from repeated WT values.
//
// If one strategy minimises both cs and wm it wins outright. Otherwise the
// rise-rate rule applies: with i the cs-minimiser and j the wm-minimiser,
// compute dcs = (cs_j - cs_i)/cs_i and dwm = (wm_i - wm_j)/wm_j and pick i
// iff dcs * alpha <= dwm (small alpha favours cold-start reduction).

#ifndef SPES_CORE_VALIDATION_H_
#define SPES_CORE_VALIDATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/categorizer.h"
#include "core/config.h"
#include "core/correlation.h"
#include "core/types.h"

namespace spes {

/// \brief Cold starts and wasted memory a strategy incurred in validation.
struct StrategyCost {
  int64_t cold_starts = 0;
  int64_t wasted_minutes = 0;
  bool feasible = false;  ///< strategy applicable to this function at all
};

/// \brief Replays a keep-alive-for-theta strategy (D1 pulsed) over the
/// validation slice of one function.
StrategyCost ReplayPulsed(std::span<const uint32_t> validation, int theta);

/// \brief Replays the correlated strategy: the target pre-warms for
/// `hold` minutes whenever any linked candidate fires `lag` slots earlier.
///
/// `candidate_validation` holds the linked candidates' validation slices
/// (parallel to `lags`). Infeasible when there are no links.
StrategyCost ReplayCorrelated(
    std::span<const uint32_t> validation,
    const std::vector<std::span<const uint32_t>>& candidate_validation,
    const std::vector<int>& lags, int hold, int theta_prewarm);

/// \brief Replays the possible strategy: predict the next invocation as
/// last-arrival + each repeated WT value; pre-load within +/-theta_prewarm
/// of a prediction; evict after theta_givenup idle minutes otherwise.
/// Infeasible when the training WTs have no repeated value.
StrategyCost ReplayPossible(std::span<const uint32_t> validation,
                            const PredictiveModel& possible_model,
                            const SpesConfig& config);

/// \brief Outcome of the three-way comparison.
struct AssignmentDecision {
  FunctionType type = FunctionType::kUnknown;
  StrategyCost pulsed;
  StrategyCost correlated;
  StrategyCost possible;
};

/// \brief Applies the paper's dominant-winner / rise-rate selection over
/// the three strategy costs. Returns kUnknown when none is feasible.
AssignmentDecision ChooseAssignment(const StrategyCost& pulsed,
                                    const StrategyCost& correlated,
                                    const StrategyCost& possible,
                                    double alpha);

}  // namespace spes

#endif  // SPES_CORE_VALIDATION_H_
