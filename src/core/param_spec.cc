#include "core/param_spec.h"

#include <charconv>
#include <cstdlib>
#include <utility>

namespace spes {

namespace {

std::string Trimmed(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

/// Value grammar: bool keywords, then int, then double, else bare string.
ParamValue ParseValueToken(const std::string& token) {
  if (token == "true") return ParamValue(true);
  if (token == "false") return ParamValue(false);
  {
    int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
      return ParamValue(value);
    }
  }
  {
    // from_chars, like the to_chars formatter, is locale-independent;
    // strtod would mis-parse "0.25" under comma-decimal locales.
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
      return ParamValue(value);
    }
  }
  return ParamValue(token);
}

}  // namespace

const char* ParamTypeToString(ParamType type) {
  switch (type) {
    case ParamType::kBool:
      return "bool";
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kString:
      return "string";
  }
  return "unknown";
}

ParamType ParamValue::type() const {
  switch (repr_.index()) {
    case 0:
      return ParamType::kBool;
    case 1:
      return ParamType::kInt;
    case 2:
      return ParamType::kDouble;
    default:
      return ParamType::kString;
  }
}

std::string FormatParamValue(const ParamValue& value) {
  switch (value.type()) {
    case ParamType::kBool:
      return value.AsBool() ? "true" : "false";
    case ParamType::kInt:
      return std::to_string(value.AsInt());
    case ParamType::kDouble: {
      char buf[64];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), value.AsDouble());
      std::string text(buf, ptr);
      // Shortest form may look integral ("5"); keep the double-ness so the
      // text re-parses to the same ParamValue alternative.
      if (text.find_first_of(".eEni") == std::string::npos) text += ".0";
      return text;
    }
    case ParamType::kString:
      return value.AsString();
  }
  return "";
}

bool IsSpecIdentifier(const std::string& text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!(c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

Result<NamedSpec> ParseNamedSpec(const std::string& text,
                                 const std::string& kind) {
  const std::string trimmed = Trimmed(text);
  NamedSpec spec;
  const size_t brace = trimmed.find('{');
  if (brace == std::string::npos) {
    spec.name = trimmed;
  } else {
    if (trimmed.back() != '}') {
      return Status::InvalidArgument(kind + " spec '" + trimmed +
                                     "' has an unterminated '{'");
    }
    spec.name = Trimmed(trimmed.substr(0, brace));
    const std::string body =
        trimmed.substr(brace + 1, trimmed.size() - brace - 2);
    // Braces cannot appear inside parameter names or values, so any left
    // in the body are stray ("spes{x=2}}" must not parse as x="2}").
    if (body.find_first_of("{}") != std::string::npos) {
      return Status::InvalidArgument(kind + " spec '" + trimmed +
                                     "' has mismatched braces");
    }
    if (!Trimmed(body).empty()) {
      size_t start = 0;
      while (start <= body.size()) {
        size_t comma = body.find(',', start);
        if (comma == std::string::npos) comma = body.size();
        const std::string item = body.substr(start, comma - start);
        const size_t eq = item.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument(kind + " spec parameter '" +
                                         Trimmed(item) +
                                         "' is not of the form key=value");
        }
        const std::string key = Trimmed(item.substr(0, eq));
        const std::string value = Trimmed(item.substr(eq + 1));
        if (!IsSpecIdentifier(key)) {
          return Status::InvalidArgument(kind + " spec parameter name '" +
                                         key + "' is not an identifier");
        }
        if (value.empty()) {
          return Status::InvalidArgument(kind + " spec parameter '" + key +
                                         "' has an empty value");
        }
        if (spec.params.count(key) > 0) {
          return Status::InvalidArgument(kind + " spec parameter '" + key +
                                         "' is given twice");
        }
        spec.params.emplace(key, ParseValueToken(value));
        start = comma + 1;
        if (comma == body.size()) break;
      }
    }
  }
  if (!IsSpecIdentifier(spec.name)) {
    return Status::InvalidArgument(kind + " spec name '" + spec.name +
                                   "' is not an identifier");
  }
  return spec;
}

std::string FormatNamedSpec(const NamedSpec& spec) {
  if (spec.params.empty()) return spec.name;
  std::string text = spec.name + "{";
  bool first = true;
  for (const auto& [key, value] : spec.params) {
    if (!first) text += ",";
    first = false;
    text += key + "=" + FormatParamValue(value);
  }
  return text + "}";
}

const ParamValue& ParamMap::At(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    // Factories only read parameters they declared; the registry merged the
    // defaults, so a miss is a programming error in the registration.
    std::abort();
  }
  return it->second;
}

bool ParamMap::GetBool(const std::string& name) const {
  return At(name).AsBool();
}
int64_t ParamMap::GetInt(const std::string& name) const {
  return At(name).AsInt();
}
double ParamMap::GetDouble(const std::string& name) const {
  return At(name).AsDouble();
}
const std::string& ParamMap::GetString(const std::string& name) const {
  return At(name).AsString();
}

Status ValidateParamSchema(const std::string& kind, const std::string& owner,
                           const std::vector<ParamSpec>& params) {
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].default_value.type() != params[i].type) {
      return Status::InvalidArgument(
          kind + " '" + owner + "' parameter '" + params[i].name +
          "' default does not match its declared type");
    }
    for (size_t j = i + 1; j < params.size(); ++j) {
      if (params[i].name == params[j].name) {
        return Status::InvalidArgument(kind + " '" + owner +
                                       "' declares parameter '" +
                                       params[i].name + "' twice");
      }
    }
  }
  return Status::OK();
}

Result<ParamMap> MergeSpecParams(const std::string& kind,
                                 const NamedSpec& spec,
                                 const std::vector<ParamSpec>& declared) {
  std::map<std::string, ParamValue> merged;
  for (const ParamSpec& param : declared) {
    merged[param.name] = param.default_value;
  }
  for (const auto& [key, value] : spec.params) {
    const ParamSpec* match = nullptr;
    for (const ParamSpec& param : declared) {
      if (param.name == key) {
        match = &param;
        break;
      }
    }
    if (match == nullptr) {
      std::vector<std::string> accepted;
      for (const ParamSpec& param : declared) {
        accepted.push_back(param.name);
      }
      return Status::InvalidArgument(
          "unknown parameter '" + key + "' for " + kind + " '" + spec.name +
          "'; accepted: " +
          (accepted.empty() ? "(none)" : JoinNames(accepted)));
    }
    if (value.type() == match->type) {
      merged[key] = value;
    } else if (match->type == ParamType::kDouble &&
               value.type() == ParamType::kInt) {
      merged[key] = ParamValue(static_cast<double>(value.AsInt()));
    } else {
      return Status::InvalidArgument(
          "parameter '" + key + "' of " + kind + " '" + spec.name +
          "' expects " + ParamTypeToString(match->type) + ", got " +
          ParamTypeToString(value.type()) + " (" + FormatParamValue(value) +
          ")");
    }
  }
  return ParamMap(std::move(merged));
}

Result<int64_t> IntParamInRange(const ParamMap& params,
                                const std::string& owner,
                                const std::string& name, int64_t min_value,
                                int64_t max_value) {
  const int64_t value = params.GetInt(name);
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        owner + " parameter '" + name + "' must be in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) +
        "], got " + std::to_string(value));
  }
  return value;
}

Result<double> DoubleParamInRange(const ParamMap& params,
                                  const std::string& owner,
                                  const std::string& name, double min_value,
                                  double max_value) {
  const double value = params.GetDouble(name);
  // NaN fails both comparisons below only via negation, so spell the
  // acceptance condition positively.
  if (!(value >= min_value && value <= max_value)) {
    return Status::InvalidArgument(
        owner + " parameter '" + name + "' must be in [" +
        FormatParamValue(ParamValue(min_value)) + ", " +
        FormatParamValue(ParamValue(max_value)) + "], got " +
        FormatParamValue(ParamValue(value)));
  }
  return value;
}

}  // namespace spes
