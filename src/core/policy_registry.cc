#include "core/policy_registry.h"

#include <utility>

#include "core/spes_policy.h"
#include "policies/defuse.h"
#include "policies/faascache.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"
#include "policies/oracle.h"

namespace spes {

Result<PolicySpec> ParsePolicySpec(const std::string& text) {
  return ParseNamedSpec(text, "policy");
}

std::string FormatPolicySpec(const PolicySpec& spec) {
  return FormatNamedSpec(spec);
}

Status PolicyRegistry::Register(Entry entry) {
  if (!IsSpecIdentifier(entry.canonical_name)) {
    return Status::InvalidArgument("policy canonical name '" +
                                   entry.canonical_name +
                                   "' is not an identifier");
  }
  if (!entry.factory) {
    return Status::InvalidArgument("policy '" + entry.canonical_name +
                                   "' registered without a factory");
  }
  SPES_RETURN_NOT_OK(
      ValidateParamSchema("policy", entry.canonical_name, entry.params));
  const std::string name = entry.canonical_name;
  if (!entries_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("policy '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Policy>> PolicyRegistry::Create(
    const PolicySpec& spec) const {
  if (spec.name.empty()) {
    return Status::InvalidArgument("PolicySpec.name must not be empty");
  }
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    return Status::NotFound("unknown policy '" + spec.name +
                            "'; registered policies: " + JoinNames(Names()));
  }
  SPES_ASSIGN_OR_RETURN(PolicyParams params,
                        MergeSpecParams("policy", spec, entry->params));
  return entry->factory(params);
}

Result<std::unique_ptr<Policy>> PolicyRegistry::CreateFromString(
    const std::string& text) const {
  SPES_ASSIGN_OR_RETURN(const PolicySpec spec, ParsePolicySpec(text));
  return Create(spec);
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

const PolicyRegistry::Entry* PolicyRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    RegisterSpesPolicy(*r);
    RegisterDefusePolicy(*r);
    RegisterFaasCachePolicy(*r);
    RegisterFixedKeepAlivePolicy(*r);
    RegisterHybridHistogramPolicy(*r);
    RegisterOraclePolicy(*r);
    return r;
  }();
  return *registry;
}

}  // namespace spes
