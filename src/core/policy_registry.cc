#include "core/policy_registry.h"

#include <charconv>
#include <cstdlib>
#include <utility>

#include "core/spes_policy.h"
#include "policies/defuse.h"
#include "policies/faascache.h"
#include "policies/fixed_keepalive.h"
#include "policies/hybrid_histogram.h"
#include "policies/oracle.h"

namespace spes {

namespace {

std::string Trimmed(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

bool IsIdentifier(const std::string& text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!(c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

/// Value grammar: bool keywords, then int, then double, else bare string.
ParamValue ParseValueToken(const std::string& token) {
  if (token == "true") return ParamValue(true);
  if (token == "false") return ParamValue(false);
  {
    int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
      return ParamValue(value);
    }
  }
  {
    // from_chars, like the to_chars formatter, is locale-independent;
    // strtod would mis-parse "0.25" under comma-decimal locales.
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
      return ParamValue(value);
    }
  }
  return ParamValue(token);
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace

const char* ParamTypeToString(ParamType type) {
  switch (type) {
    case ParamType::kBool:
      return "bool";
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kString:
      return "string";
  }
  return "unknown";
}

ParamType ParamValue::type() const {
  switch (repr_.index()) {
    case 0:
      return ParamType::kBool;
    case 1:
      return ParamType::kInt;
    case 2:
      return ParamType::kDouble;
    default:
      return ParamType::kString;
  }
}

std::string FormatParamValue(const ParamValue& value) {
  switch (value.type()) {
    case ParamType::kBool:
      return value.AsBool() ? "true" : "false";
    case ParamType::kInt:
      return std::to_string(value.AsInt());
    case ParamType::kDouble: {
      char buf[64];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), value.AsDouble());
      std::string text(buf, ptr);
      // Shortest form may look integral ("5"); keep the double-ness so the
      // text re-parses to the same ParamValue alternative.
      if (text.find_first_of(".eEni") == std::string::npos) text += ".0";
      return text;
    }
    case ParamType::kString:
      return value.AsString();
  }
  return "";
}

Result<PolicySpec> ParsePolicySpec(const std::string& text) {
  const std::string trimmed = Trimmed(text);
  PolicySpec spec;
  const size_t brace = trimmed.find('{');
  if (brace == std::string::npos) {
    spec.name = trimmed;
  } else {
    if (trimmed.back() != '}') {
      return Status::InvalidArgument("policy spec '" + trimmed +
                                     "' has an unterminated '{'");
    }
    spec.name = Trimmed(trimmed.substr(0, brace));
    const std::string body =
        trimmed.substr(brace + 1, trimmed.size() - brace - 2);
    // Braces cannot appear inside parameter names or values, so any left
    // in the body are stray ("spes{x=2}}" must not parse as x="2}").
    if (body.find_first_of("{}") != std::string::npos) {
      return Status::InvalidArgument("policy spec '" + trimmed +
                                     "' has mismatched braces");
    }
    if (!Trimmed(body).empty()) {
      size_t start = 0;
      while (start <= body.size()) {
        size_t comma = body.find(',', start);
        if (comma == std::string::npos) comma = body.size();
        const std::string item = body.substr(start, comma - start);
        const size_t eq = item.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument("policy spec parameter '" +
                                         Trimmed(item) +
                                         "' is not of the form key=value");
        }
        const std::string key = Trimmed(item.substr(0, eq));
        const std::string value = Trimmed(item.substr(eq + 1));
        if (!IsIdentifier(key)) {
          return Status::InvalidArgument("policy spec parameter name '" + key +
                                         "' is not an identifier");
        }
        if (value.empty()) {
          return Status::InvalidArgument("policy spec parameter '" + key +
                                         "' has an empty value");
        }
        if (spec.params.count(key) > 0) {
          return Status::InvalidArgument("policy spec parameter '" + key +
                                         "' is given twice");
        }
        spec.params.emplace(key, ParseValueToken(value));
        start = comma + 1;
        if (comma == body.size()) break;
      }
    }
  }
  if (!IsIdentifier(spec.name)) {
    return Status::InvalidArgument("policy spec name '" + spec.name +
                                   "' is not an identifier");
  }
  return spec;
}

std::string FormatPolicySpec(const PolicySpec& spec) {
  if (spec.params.empty()) return spec.name;
  std::string text = spec.name + "{";
  bool first = true;
  for (const auto& [key, value] : spec.params) {
    if (!first) text += ",";
    first = false;
    text += key + "=" + FormatParamValue(value);
  }
  return text + "}";
}

const ParamValue& PolicyParams::At(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    // Factories only read parameters they declared; the registry merged the
    // defaults, so a miss is a programming error in the registration.
    std::abort();
  }
  return it->second;
}

bool PolicyParams::GetBool(const std::string& name) const {
  return At(name).AsBool();
}
int64_t PolicyParams::GetInt(const std::string& name) const {
  return At(name).AsInt();
}
double PolicyParams::GetDouble(const std::string& name) const {
  return At(name).AsDouble();
}
const std::string& PolicyParams::GetString(const std::string& name) const {
  return At(name).AsString();
}

Result<int64_t> IntParamInRange(const PolicyParams& params,
                                const std::string& policy,
                                const std::string& name, int64_t min_value,
                                int64_t max_value) {
  const int64_t value = params.GetInt(name);
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        policy + " parameter '" + name + "' must be in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) +
        "], got " + std::to_string(value));
  }
  return value;
}

Result<double> DoubleParamInRange(const PolicyParams& params,
                                  const std::string& policy,
                                  const std::string& name, double min_value,
                                  double max_value) {
  const double value = params.GetDouble(name);
  // NaN fails both comparisons below only via negation, so spell the
  // acceptance condition positively.
  if (!(value >= min_value && value <= max_value)) {
    return Status::InvalidArgument(
        policy + " parameter '" + name + "' must be in [" +
        FormatParamValue(ParamValue(min_value)) + ", " +
        FormatParamValue(ParamValue(max_value)) + "], got " +
        FormatParamValue(ParamValue(value)));
  }
  return value;
}

Status PolicyRegistry::Register(Entry entry) {
  if (!IsIdentifier(entry.canonical_name)) {
    return Status::InvalidArgument("policy canonical name '" +
                                   entry.canonical_name +
                                   "' is not an identifier");
  }
  if (!entry.factory) {
    return Status::InvalidArgument("policy '" + entry.canonical_name +
                                   "' registered without a factory");
  }
  for (size_t i = 0; i < entry.params.size(); ++i) {
    if (entry.params[i].default_value.type() != entry.params[i].type) {
      return Status::InvalidArgument(
          "policy '" + entry.canonical_name + "' parameter '" +
          entry.params[i].name + "' default does not match its declared type");
    }
    for (size_t j = i + 1; j < entry.params.size(); ++j) {
      if (entry.params[i].name == entry.params[j].name) {
        return Status::InvalidArgument("policy '" + entry.canonical_name +
                                       "' declares parameter '" +
                                       entry.params[i].name + "' twice");
      }
    }
  }
  const std::string name = entry.canonical_name;
  if (!entries_.emplace(name, std::move(entry)).second) {
    return Status::AlreadyExists("policy '" + name +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Policy>> PolicyRegistry::Create(
    const PolicySpec& spec) const {
  if (spec.name.empty()) {
    return Status::InvalidArgument("PolicySpec.name must not be empty");
  }
  const Entry* entry = Find(spec.name);
  if (entry == nullptr) {
    return Status::NotFound("unknown policy '" + spec.name +
                            "'; registered policies: " + JoinNames(Names()));
  }

  std::map<std::string, ParamValue> merged;
  for (const ParamSpec& param : entry->params) {
    merged[param.name] = param.default_value;
  }
  for (const auto& [key, value] : spec.params) {
    const ParamSpec* declared = nullptr;
    for (const ParamSpec& param : entry->params) {
      if (param.name == key) {
        declared = &param;
        break;
      }
    }
    if (declared == nullptr) {
      std::vector<std::string> accepted;
      for (const ParamSpec& param : entry->params) {
        accepted.push_back(param.name);
      }
      return Status::InvalidArgument(
          "unknown parameter '" + key + "' for policy '" + spec.name +
          "'; accepted: " +
          (accepted.empty() ? "(none)" : JoinNames(accepted)));
    }
    if (value.type() == declared->type) {
      merged[key] = value;
    } else if (declared->type == ParamType::kDouble &&
               value.type() == ParamType::kInt) {
      merged[key] = ParamValue(static_cast<double>(value.AsInt()));
    } else {
      return Status::InvalidArgument(
          "parameter '" + key + "' of policy '" + spec.name + "' expects " +
          ParamTypeToString(declared->type) + ", got " +
          ParamTypeToString(value.type()) + " (" + FormatParamValue(value) +
          ")");
    }
  }
  return entry->factory(PolicyParams(std::move(merged)));
}

Result<std::unique_ptr<Policy>> PolicyRegistry::CreateFromString(
    const std::string& text) const {
  SPES_ASSIGN_OR_RETURN(const PolicySpec spec, ParsePolicySpec(text));
  return Create(spec);
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

const PolicyRegistry::Entry* PolicyRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    RegisterSpesPolicy(*r);
    RegisterDefusePolicy(*r);
    RegisterFaasCachePolicy(*r);
    RegisterFixedKeepAlivePolicy(*r);
    RegisterHybridHistogramPolicy(*r);
    RegisterOraclePolicy(*r);
    return r;
  }();
  return *registry;
}

}  // namespace spes
