#include "core/series_features.h"

namespace spes {

SeriesFeatures ExtractSeriesFeatures(std::span<const uint32_t> counts) {
  SeriesFeatures out;
  int64_t idle_run = 0;
  int64_t active_run = 0;
  int64_t active_sum = 0;
  bool seen_invocation = false;

  for (size_t t = 0; t < counts.size(); ++t) {
    const uint32_t c = counts[t];
    if (c > 0) {
      if (seen_invocation && idle_run > 0) {
        // An idle run terminated by this arrival is a completed WT.
        out.wts.push_back(idle_run);
      }
      idle_run = 0;
      ++active_run;
      active_sum += c;
      ++out.active_slots;
      out.total_invocations += c;
      if (out.first_invoked < 0) out.first_invoked = static_cast<int64_t>(t);
      out.last_invoked = static_cast<int64_t>(t);
      seen_invocation = true;
    } else {
      if (active_run > 0) {
        out.ats.push_back(active_run);
        out.ans.push_back(active_sum);
        active_run = 0;
        active_sum = 0;
      }
      if (seen_invocation) ++idle_run;
    }
  }
  if (active_run > 0) {
    out.ats.push_back(active_run);
    out.ans.push_back(active_sum);
  }
  return out;
}

std::vector<int> InvokedSlots(std::span<const uint32_t> counts) {
  std::vector<int> slots;
  for (size_t t = 0; t < counts.size(); ++t) {
    if (counts[t] > 0) slots.push_back(static_cast<int>(t));
  }
  return slots;
}

}  // namespace spes
