#include "core/validation.h"

#include <algorithm>
#include <limits>

namespace spes {

StrategyCost ReplayPulsed(std::span<const uint32_t> validation, int theta) {
  StrategyCost cost;
  cost.feasible = true;
  bool loaded = false;
  int idle = 0;
  for (uint32_t c : validation) {
    if (c > 0) {
      if (!loaded) ++cost.cold_starts;
      loaded = true;
      idle = 0;
    } else if (loaded) {
      ++idle;
      if (idle >= theta) {
        loaded = false;
      } else {
        ++cost.wasted_minutes;
      }
    }
  }
  return cost;
}

StrategyCost ReplayCorrelated(
    std::span<const uint32_t> validation,
    const std::vector<std::span<const uint32_t>>& candidate_validation,
    const std::vector<int>& lags, int hold, int theta_prewarm) {
  StrategyCost cost;
  if (candidate_validation.empty()) return cost;  // infeasible
  cost.feasible = true;
  bool loaded = false;
  int hold_until = -1;
  const int n = static_cast<int>(validation.size());
  for (int t = 0; t < n; ++t) {
    // A candidate firing at t - lag signals an imminent target invocation;
    // pre-warm slightly early (theta_prewarm) and hold briefly.
    for (size_t k = 0; k < candidate_validation.size(); ++k) {
      const int lag = lags[k];
      const int fire_from = t - lag - theta_prewarm;
      for (int s = std::max(0, fire_from); s <= t; ++s) {
        if (s < static_cast<int>(candidate_validation[k].size()) &&
            candidate_validation[k][static_cast<size_t>(s)] > 0 &&
            t - s <= lag + theta_prewarm) {
          hold_until = std::max(hold_until, s + lag + hold);
          break;
        }
      }
    }
    const bool invoked = validation[static_cast<size_t>(t)] > 0;
    const bool prewarmed = t <= hold_until;
    if (invoked) {
      if (!loaded && !prewarmed) ++cost.cold_starts;
      loaded = true;
    } else {
      if (prewarmed) {
        ++cost.wasted_minutes;
        loaded = true;
      } else {
        loaded = false;
      }
    }
  }
  return cost;
}

StrategyCost ReplayPossible(std::span<const uint32_t> validation,
                            const PredictiveModel& possible_model,
                            const SpesConfig& config) {
  StrategyCost cost;
  if (possible_model.type != FunctionType::kPossible) return cost;
  cost.feasible = true;
  const int theta_p = config.theta_prewarm;
  const int theta_g = config.theta_givenup_default * config.givenup_scaler;
  int last_arrival = -1;
  bool loaded = false;
  int idle = 0;
  const int n = static_cast<int>(validation.size());
  for (int t = 0; t < n; ++t) {
    const bool invoked = validation[static_cast<size_t>(t)] > 0;
    // Prediction: next invocation at last_arrival + v for each value v
    // (or anywhere inside the continuous range).
    bool predicted_near = false;
    if (last_arrival >= 0) {
      if (possible_model.continuous) {
        predicted_near =
            t + theta_p >= last_arrival + possible_model.range_lo &&
            t - theta_p <= last_arrival + possible_model.range_hi;
      } else {
        for (int64_t v : possible_model.values) {
          const int64_t predicted = last_arrival + v;
          if (std::llabs(predicted - t) <= theta_p) {
            predicted_near = true;
            break;
          }
        }
      }
    }
    if (invoked) {
      if (!loaded && !predicted_near) ++cost.cold_starts;
      loaded = true;
      idle = 0;
      last_arrival = t;
    } else {
      ++idle;
      if (predicted_near) {
        loaded = true;
        ++cost.wasted_minutes;
      } else if (loaded) {
        if (idle >= theta_g) {
          loaded = false;
        } else {
          ++cost.wasted_minutes;
        }
      }
    }
  }
  return cost;
}

namespace {

constexpr int64_t kInfeasibleCost = std::numeric_limits<int64_t>::max() / 4;

int64_t CsOf(const StrategyCost& c) {
  return c.feasible ? c.cold_starts : kInfeasibleCost;
}
int64_t WmOf(const StrategyCost& c) {
  return c.feasible ? c.wasted_minutes : kInfeasibleCost;
}

}  // namespace

AssignmentDecision ChooseAssignment(const StrategyCost& pulsed,
                                    const StrategyCost& correlated,
                                    const StrategyCost& possible,
                                    double alpha) {
  AssignmentDecision decision;
  decision.pulsed = pulsed;
  decision.correlated = correlated;
  decision.possible = possible;
  if (!pulsed.feasible && !correlated.feasible && !possible.feasible) {
    return decision;  // kUnknown
  }

  const FunctionType types[3] = {FunctionType::kPulsed,
                                 FunctionType::kCorrelated,
                                 FunctionType::kPossible};
  const StrategyCost* costs[3] = {&pulsed, &correlated, &possible};

  int cs_winner = 0, wm_winner = 0;
  for (int i = 1; i < 3; ++i) {
    if (CsOf(*costs[i]) < CsOf(*costs[cs_winner])) cs_winner = i;
    if (WmOf(*costs[i]) < WmOf(*costs[wm_winner])) wm_winner = i;
  }
  if (cs_winner == wm_winner) {
    decision.type = types[cs_winner];  // dominant winner
    return decision;
  }
  // Rise-rate rule: dcs is the relative cold-start penalty of taking the
  // wm-winner; dwm the relative memory penalty of taking the cs-winner.
  // The cs-winner prevails when its cold-start advantage outweighs the
  // alpha-scaled memory penalty (dcs >= alpha * dwm) — smaller alpha puts
  // more importance on cold starts, per §IV-B2. (The paper's formula as
  // printed compares dcs*alpha <= dwm, which inverts as the cs-winner's
  // advantage grows; this reading matches the stated role of alpha and
  // the paper's observed aggressive assignment of "possible" functions.)
  const double cs_i = static_cast<double>(CsOf(*costs[cs_winner]));
  const double cs_j = static_cast<double>(CsOf(*costs[wm_winner]));
  const double wm_i = static_cast<double>(WmOf(*costs[cs_winner]));
  const double wm_j = static_cast<double>(WmOf(*costs[wm_winner]));
  const double dcs = (cs_j - cs_i) / std::max(cs_i, 1.0);
  const double dwm = (wm_i - wm_j) / std::max(wm_j, 1.0);
  decision.type = dcs >= alpha * dwm ? types[cs_winner] : types[wm_winner];
  return decision;
}

}  // namespace spes
