#include "core/correlation.h"

namespace spes {

double CoOccurrenceRate(std::span<const uint32_t> target,
                        std::span<const uint32_t> candidate) {
  return LaggedCoOccurrenceRate(target, candidate, 0);
}

double LaggedCoOccurrenceRate(std::span<const uint32_t> target,
                              std::span<const uint32_t> candidate, int lag) {
  if (lag < 0) lag = 0;
  int64_t invoked = 0, co = 0;
  const size_t n = std::min(target.size(), candidate.size());
  for (size_t t = 0; t < n; ++t) {
    if (target[t] == 0) continue;
    ++invoked;
    if (t >= static_cast<size_t>(lag) && candidate[t - lag] > 0) ++co;
  }
  if (invoked == 0) return 0.0;
  return static_cast<double>(co) / static_cast<double>(invoked);
}

BestLag BestLaggedCor(std::span<const uint32_t> target,
                      std::span<const uint32_t> candidate, int max_lag) {
  BestLag best;
  for (int lag = 0; lag <= max_lag; ++lag) {
    const double cor = LaggedCoOccurrenceRate(target, candidate, lag);
    if (cor > best.cor) {
      best.cor = cor;
      best.lag = lag;
    }
  }
  return best;
}

BestLag BestLaggedCorFromSlots(const std::vector<int>& target_slots,
                               std::span<const uint32_t> candidate,
                               int max_lag) {
  BestLag best;
  if (target_slots.empty()) return best;
  const double denom = static_cast<double>(target_slots.size());
  for (int lag = 0; lag <= max_lag; ++lag) {
    int64_t co = 0;
    for (int t : target_slots) {
      const int s = t - lag;
      if (s >= 0 && s < static_cast<int>(candidate.size()) &&
          candidate[static_cast<size_t>(s)] > 0) {
        ++co;
      }
    }
    const double cor = static_cast<double>(co) / denom;
    if (cor > best.cor) {
      best.cor = cor;
      best.lag = lag;
    }
  }
  return best;
}

}  // namespace spes
