// Shared typed-parameter machinery for registry-built components.
//
// Two registries build instances from data: PolicyRegistry
// (core/policy_registry.h) builds provisioning policies and
// TransformRegistry (trace/transform.h) builds trace transforms. Both
// speak the same spec language — `name{param=value,...}` strings, typed
// parameter schemas with defaults, Result<> errors naming the offending
// field — so the common plumbing lives here: the ParamValue variant, the
// NamedSpec structure, spec-string parse/format, schema validation, and
// the default-merging type check. Error messages are parameterized by a
// `kind` noun ("policy", "transform") so each registry keeps precise,
// caller-facing diagnostics.

#ifndef SPES_CORE_PARAM_SPEC_H_
#define SPES_CORE_PARAM_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace spes {

/// \brief Type tag of a declared parameter.
enum class ParamType { kBool, kInt, kDouble, kString };

/// \brief Stable lowercase name of a ParamType ("bool", "int", ...).
const char* ParamTypeToString(ParamType type);

/// \brief A typed parameter value: bool, int, double or string.
///
/// A dedicated class (rather than a bare std::variant) so that string
/// literals construct a string value — `ParamValue("function")` — instead
/// of silently converting the pointer to bool.
class ParamValue {
 public:
  ParamValue() : repr_(int64_t{0}) {}
  ParamValue(bool value) : repr_(value) {}                  // NOLINT
  ParamValue(int value) : repr_(int64_t{value}) {}          // NOLINT
  ParamValue(int64_t value) : repr_(value) {}               // NOLINT
  ParamValue(uint64_t value)                                // NOLINT
      : repr_(static_cast<int64_t>(value)) {}
  ParamValue(double value) : repr_(value) {}                // NOLINT
  ParamValue(const char* value) : repr_(std::string(value)) {}  // NOLINT
  ParamValue(std::string value) : repr_(std::move(value)) {}    // NOLINT

  [[nodiscard]] ParamType type() const;

  /// \name Typed access; the value must hold the requested alternative.
  /// @{
  [[nodiscard]] bool AsBool() const { return std::get<bool>(repr_); }
  [[nodiscard]] int64_t AsInt() const { return std::get<int64_t>(repr_); }
  [[nodiscard]] double AsDouble() const { return std::get<double>(repr_); }
  [[nodiscard]] const std::string& AsString() const { return std::get<std::string>(repr_); }
  /// @}

  bool operator==(const ParamValue& other) const = default;

 private:
  std::variant<bool, int64_t, double, std::string> repr_;
};

/// \brief Renders a value in spec-string form ("true", "10", "0.5", ...).
/// Doubles use the shortest round-trippable decimal form and always carry
/// a '.' or exponent so they re-parse as doubles.
std::string FormatParamValue(const ParamValue& value);

/// \brief Declaration of one parameter a registered component accepts.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kInt;
  ParamValue default_value;
  std::string description;
};

/// \brief A registry-buildable component as data: canonical name plus
/// parameter overrides. Parameters not listed take the registered
/// defaults. PolicySpec and TransformSpec are aliases of this type.
struct NamedSpec {
  std::string name;
  std::map<std::string, ParamValue> params;

  bool operator==(const NamedSpec& other) const = default;
};

/// \brief True when `text` is a valid canonical/parameter identifier
/// (non-empty, only [A-Za-z0-9_]).
bool IsSpecIdentifier(const std::string& text);

/// \brief Joins names with ", " for error messages and catalogs.
std::string JoinNames(const std::vector<std::string>& names);

/// \brief Parses `name{param=value,...}` (the braces are optional when no
/// parameters are overridden). Values parse as bool (`true`/`false`),
/// int, double, or — failing those — a bare string. `kind` is the noun
/// used in error messages ("policy", "transform").
Result<NamedSpec> ParseNamedSpec(const std::string& text,
                                 const std::string& kind);

/// \brief Inverse of ParseNamedSpec: canonical `name{k=v,...}` form with
/// keys in lexicographic order; just `name` when no overrides.
std::string FormatNamedSpec(const NamedSpec& spec);

/// \brief Validated parameters handed to a registered factory: the
/// registered defaults overlaid with the spec's (type-checked) overrides,
/// so every declared parameter is present with its declared type.
class ParamMap {
 public:
  explicit ParamMap(std::map<std::string, ParamValue> values)
      : values_(std::move(values)) {}

  [[nodiscard]] bool GetBool(const std::string& name) const;
  [[nodiscard]] int64_t GetInt(const std::string& name) const;
  [[nodiscard]] double GetDouble(const std::string& name) const;
  [[nodiscard]] const std::string& GetString(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, ParamValue>& values() const { return values_; }

 private:
  [[nodiscard]] const ParamValue& At(const std::string& name) const;

  std::map<std::string, ParamValue> values_;
};

/// \brief Registration-time schema check shared by the registries: every
/// declared default must match its declared type and no parameter may be
/// declared twice. Errors read "<kind> '<owner>' parameter '<p>' ...".
Status ValidateParamSchema(const std::string& kind, const std::string& owner,
                           const std::vector<ParamSpec>& params);

/// \brief Build-time parameter resolution shared by the registries:
/// overlays `spec.params` onto the declared defaults, rejecting unknown
/// parameters and type mismatches (ints coerce to doubles, nothing else
/// converts) with InvalidArgument naming the offending field.
Result<ParamMap> MergeSpecParams(const std::string& kind,
                                 const NamedSpec& spec,
                                 const std::vector<ParamSpec>& declared);

/// \brief Factory helper: fetches int parameter `name` and checks it lies
/// in [min_value, max_value] (the default ceiling is INT_MAX, so the value
/// also fits an `int` without truncation). Out-of-range values yield
/// InvalidArgument naming the owning component and parameter.
Result<int64_t> IntParamInRange(const ParamMap& params,
                                const std::string& owner,
                                const std::string& name, int64_t min_value,
                                int64_t max_value = 2147483647);

/// \brief Factory helper: fetches double parameter `name` and checks it
/// lies in [min_value, max_value]; out-of-range (or non-finite) values
/// yield InvalidArgument naming the owning component and parameter.
Result<double> DoubleParamInRange(const ParamMap& params,
                                  const std::string& owner,
                                  const std::string& name, double min_value,
                                  double max_value);

}  // namespace spes

#endif  // SPES_CORE_PARAM_SPEC_H_
