// Deterministic function categorization (§IV-A) with the "forgetting"
// adaptive strategy (§IV-B1), producing per-function predictive models.
//
// Categorization follows Table I's priority: always-warm, then regular
// (with slacking), appro-regular, dense, successive. A function matching an
// earlier type never reaches a later one. Functions matching none are
// handed to the indeterminate assignment (validation.h).

#ifndef SPES_CORE_CATEGORIZER_H_
#define SPES_CORE_CATEGORIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/series_features.h"
#include "core/types.h"

namespace spes {

/// \brief Per-function predictive model: the type plus the values used to
/// predict the next invocation (§IV-D).
struct PredictiveModel {
  FunctionType type = FunctionType::kUnknown;

  /// Discrete predictive WT values:
  ///   regular       -> { median(WT) }
  ///   appro-regular -> first n WT modes
  ///   possible      -> WT values occurring more than once
  std::vector<int64_t> values;

  /// Continuous predictive interval (dense: range of the first k WT modes;
  /// possible with a narrow value range). Valid when `continuous` is true.
  int64_t range_lo = 0;
  int64_t range_hi = 0;
  bool continuous = false;

  /// Dispersion of the offline WTs (the adjusting strategy's drift gate).
  double offline_wt_stddev = 0.0;

  /// Minutes of history the model was fit on after forgetting trimmed the
  /// prefix (0 = full window used).
  int forgotten_prefix_minutes = 0;
};

/// \brief Tests the Table I "regular" rule (before slacking) on a WT set.
bool WtsLookRegular(const std::vector<int64_t>& wts, const SpesConfig& config);

/// \brief Full regular test: raw WTs, then boundary-trimmed, then merged.
///
/// On success, *regular_wts receives the WT sequence variant that passed
/// (used to fit the median predictive value).
bool PassesRegularWithSlacking(const std::vector<int64_t>& wts,
                               const SpesConfig& config,
                               std::vector<int64_t>* regular_wts);

/// \brief Attempts deterministic categorization of one count sequence.
///
/// Returns a model with type kUnknown when no deterministic type matches.
PredictiveModel CategorizeDeterministic(std::span<const uint32_t> counts,
                                        const SpesConfig& config);

/// \brief Deterministic categorization with forgetting: retries on suffixes
/// of the window, dropping whole days from the front down to half the
/// window, and keeps the first (most-history) success.
PredictiveModel CategorizeWithForgetting(std::span<const uint32_t> counts,
                                         const SpesConfig& config);

/// \brief Fits the "possible" predictive values (repeated WTs) if any;
/// returns a kUnknown model when the WT multiset has no repeats.
PredictiveModel FitPossibleModel(const std::vector<int64_t>& wts,
                                 const SpesConfig& config);

}  // namespace spes

#endif  // SPES_CORE_CATEGORIZER_H_
