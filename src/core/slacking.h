// WT slacking rules used by the "regular" categorization (§IV-A2).
//
// Real timers jitter: the first/last WTs of an observation window are
// truncated, and periodic events occasionally split one nominal gap into a
// large WT plus small fragments (blocked deliveries, stray extra events).
// SPES therefore re-tests regularity after (a) trimming the boundary WTs
// and (b) merging adjacent small WTs back into mode-sized gaps, turning
// e.g. (1439, 1438, 1, 1439, 1438, 1) into (1439, 1439, 1439, 1439).

#ifndef SPES_CORE_SLACKING_H_
#define SPES_CORE_SLACKING_H_

#include <cstdint>
#include <vector>

namespace spes {

/// \brief Returns the sequence without its first and last elements
/// (empty when fewer than 3 elements).
std::vector<int64_t> TrimBoundaryWts(const std::vector<int64_t>& wts);

/// \brief Merges runs of adjacent small WTs into mode-valued WTs.
///
/// The reference value is the WT mode (most frequent value; ties broken
/// toward the LARGEST value, since the structural gap dominates fragments).
/// Scanning left to right, consecutive WTs are accumulated until the sum
/// lands within `tolerance` of the mode, at which point the accumulated
/// value is emitted; accumulation also flushes when it would overshoot
/// (mode + tolerance), so no mass is lost. A sequence already matching the
/// mode everywhere is returned unchanged.
///
/// \param tolerance closeness to the mode; defaults to max(1, mode/100).
std::vector<int64_t> MergeAdjacentSmallWts(const std::vector<int64_t>& wts,
                                           int64_t tolerance = -1);

/// \brief The mode value the merge rule anchors on (ties -> largest value).
/// Returns 0 for an empty sequence.
int64_t MergeAnchorMode(const std::vector<int64_t>& wts);

}  // namespace spes

#endif  // SPES_CORE_SLACKING_H_
