// Policy registry: every provisioning policy self-registers under a
// canonical lowercase name ("spes", "fixed_keepalive", ...) together with a
// typed parameter schema, so a policy instance can be built from data — a
// PolicySpec — instead of a hand-wired constructor call. This is the
// factory layer behind the Scenario API (sim/scenario.h): benches, examples
// and config-driven workloads describe *which* policy with *which* knobs,
// and the registry validates the spec and produces the instance.
//
// Spec strings follow the convention `name{param=value,param=value}`, e.g.
//   fixed_keepalive{minutes=10}
//   hybrid_histogram{granularity=application,tail_percentile=99}
//   spes{theta_prewarm=3,enable_online_corr=false}
// ParsePolicySpec()/FormatPolicySpec() convert between the string and
// structured forms; the round trip is exact for every value the parser
// itself produces (values are unquoted, so a *string* parameter whose
// text reads as a number or bool — none of the built-in schemas has one —
// would re-parse as that type).
//
// All failure modes are Result<>/Status-based: unknown policy names,
// duplicate registration, unknown parameters, ill-typed parameters and
// out-of-domain values never abort.

#ifndef SPES_CORE_POLICY_REGISTRY_H_
#define SPES_CORE_POLICY_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "sim/policy.h"

namespace spes {

/// \brief Type tag of a policy parameter.
enum class ParamType { kBool, kInt, kDouble, kString };

/// \brief Stable lowercase name of a ParamType ("bool", "int", ...).
const char* ParamTypeToString(ParamType type);

/// \brief A typed parameter value: bool, int, double or string.
///
/// A dedicated class (rather than a bare std::variant) so that string
/// literals construct a string value — `ParamValue("function")` — instead
/// of silently converting the pointer to bool.
class ParamValue {
 public:
  ParamValue() : repr_(int64_t{0}) {}
  ParamValue(bool value) : repr_(value) {}                  // NOLINT
  ParamValue(int value) : repr_(int64_t{value}) {}          // NOLINT
  ParamValue(int64_t value) : repr_(value) {}               // NOLINT
  ParamValue(uint64_t value)                                // NOLINT
      : repr_(static_cast<int64_t>(value)) {}
  ParamValue(double value) : repr_(value) {}                // NOLINT
  ParamValue(const char* value) : repr_(std::string(value)) {}  // NOLINT
  ParamValue(std::string value) : repr_(std::move(value)) {}    // NOLINT

  ParamType type() const;

  /// \name Typed access; the value must hold the requested alternative.
  /// @{
  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  /// @}

  bool operator==(const ParamValue& other) const = default;

 private:
  std::variant<bool, int64_t, double, std::string> repr_;
};

/// \brief Renders a value in spec-string form ("true", "10", "0.5", ...).
/// Doubles use the shortest round-trippable decimal form and always carry
/// a '.' or exponent so they re-parse as doubles.
std::string FormatParamValue(const ParamValue& value);

/// \brief Declaration of one parameter a policy accepts.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kInt;
  ParamValue default_value;
  std::string description;
};

/// \brief A policy as data: canonical name plus parameter overrides.
/// Parameters not listed take the registered defaults.
struct PolicySpec {
  std::string name;
  std::map<std::string, ParamValue> params;
};

/// \brief Parses `name{param=value,...}` (the braces are optional when no
/// parameters are overridden). Values parse as bool (`true`/`false`),
/// int, double, or — failing those — a bare string.
Result<PolicySpec> ParsePolicySpec(const std::string& text);

/// \brief Inverse of ParsePolicySpec: canonical `name{k=v,...}` form with
/// keys in lexicographic order; just `name` when no overrides.
std::string FormatPolicySpec(const PolicySpec& spec);

/// \brief Validated parameters handed to a registered factory: the
/// registered defaults overlaid with the spec's (type-checked) overrides,
/// so every declared parameter is present with its declared type.
class PolicyParams {
 public:
  explicit PolicyParams(std::map<std::string, ParamValue> values)
      : values_(std::move(values)) {}

  bool GetBool(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  const std::map<std::string, ParamValue>& values() const { return values_; }

 private:
  const ParamValue& At(const std::string& name) const;

  std::map<std::string, ParamValue> values_;
};

/// \brief Builds a policy instance from validated parameters. May reject
/// out-of-domain values (e.g. a non-positive capacity) with a Status.
using RegistryFactory =
    std::function<Result<std::unique_ptr<Policy>>(const PolicyParams&)>;

/// \brief Factory helper: fetches int parameter `name` and checks it lies
/// in [min_value, max_value] (the default ceiling is INT_MAX, so the value
/// also fits an `int` without truncation). Out-of-range values yield
/// InvalidArgument naming the policy and parameter.
Result<int64_t> IntParamInRange(const PolicyParams& params,
                                const std::string& policy,
                                const std::string& name, int64_t min_value,
                                int64_t max_value = 2147483647);

/// \brief Factory helper: fetches double parameter `name` and checks it
/// lies in [min_value, max_value]; out-of-range (or non-finite) values
/// yield InvalidArgument naming the policy and parameter.
Result<double> DoubleParamInRange(const PolicyParams& params,
                                  const std::string& policy,
                                  const std::string& name, double min_value,
                                  double max_value);

/// \brief Name -> (schema, factory) table for provisioning policies.
///
/// Global() holds every built-in policy (each src/policies/ and
/// src/core/spes_policy.cc file registers its own entry); additional
/// registries can be constructed freely, e.g. by tests.
class PolicyRegistry {
 public:
  /// \brief One registered policy.
  struct Entry {
    /// Canonical lowercase identifier, e.g. "fixed_keepalive".
    std::string canonical_name;
    /// One-line human description for catalogs.
    std::string summary;
    /// Accepted parameters with defaults; order is the display order.
    std::vector<ParamSpec> params;
    RegistryFactory factory;
  };

  /// \brief Adds an entry. Fails with AlreadyExists when the name is taken
  /// and InvalidArgument on an empty name, a missing factory, or a
  /// duplicated parameter declaration.
  Status Register(Entry entry);

  /// \brief Builds a policy from `spec`: unknown names yield NotFound;
  /// unknown parameters, type mismatches (ints coerce to doubles, nothing
  /// else converts) and rejected values yield InvalidArgument naming the
  /// offending field.
  Result<std::unique_ptr<Policy>> Create(const PolicySpec& spec) const;

  /// \brief Convenience: Create(ParsePolicySpec(text)).
  Result<std::unique_ptr<Policy>> CreateFromString(
      const std::string& text) const;

  bool Contains(const std::string& name) const;

  /// \brief Registered canonical names in lexicographic order.
  std::vector<std::string> Names() const;

  /// \brief Introspection: the entry for `name`, or nullptr when unknown.
  const Entry* Find(const std::string& name) const;

  /// \brief The process-wide registry, with all built-in policies
  /// registered on first use. Registration of additional entries is not
  /// synchronized; do it before fanning out worker threads.
  static PolicyRegistry& Global();

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace spes

#endif  // SPES_CORE_POLICY_REGISTRY_H_
