// Policy registry: every provisioning policy self-registers under a
// canonical lowercase name ("spes", "fixed_keepalive", ...) together with a
// typed parameter schema, so a policy instance can be built from data — a
// PolicySpec — instead of a hand-wired constructor call. This is the
// factory layer behind the Scenario API (sim/scenario.h): benches, examples
// and config-driven workloads describe *which* policy with *which* knobs,
// and the registry validates the spec and produces the instance.
//
// Spec strings follow the convention `name{param=value,param=value}`, e.g.
//   fixed_keepalive{minutes=10}
//   hybrid_histogram{granularity=application,tail_percentile=99}
//   spes{theta_prewarm=3,enable_online_corr=false}
// ParsePolicySpec()/FormatPolicySpec() convert between the string and
// structured forms; the round trip is exact for every value the parser
// itself produces (values are unquoted, so a *string* parameter whose
// text reads as a number or bool — none of the built-in schemas has one —
// would re-parse as that type).
//
// The typed-parameter machinery (ParamValue, ParamSpec, spec-string
// grammar, default merging) is shared with the trace-transform registry
// (trace/transform.h) and lives in core/param_spec.h.
//
// All failure modes are Result<>/Status-based: unknown policy names,
// duplicate registration, unknown parameters, ill-typed parameters and
// out-of-domain values never abort.

#ifndef SPES_CORE_POLICY_REGISTRY_H_
#define SPES_CORE_POLICY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/param_spec.h"
#include "sim/policy.h"

namespace spes {

/// \brief A policy as data: canonical name plus parameter overrides.
/// Parameters not listed take the registered defaults.
using PolicySpec = NamedSpec;

/// \brief Validated parameters handed to a registered policy factory.
using PolicyParams = ParamMap;

/// \brief Parses `name{param=value,...}` (the braces are optional when no
/// parameters are overridden). Values parse as bool (`true`/`false`),
/// int, double, or — failing those — a bare string.
Result<PolicySpec> ParsePolicySpec(const std::string& text);

/// \brief Inverse of ParsePolicySpec: canonical `name{k=v,...}` form with
/// keys in lexicographic order; just `name` when no overrides.
std::string FormatPolicySpec(const PolicySpec& spec);

/// \brief Builds a policy instance from validated parameters. May reject
/// out-of-domain values (e.g. a non-positive capacity) with a Status.
using RegistryFactory =
    std::function<Result<std::unique_ptr<Policy>>(const PolicyParams&)>;

/// \brief Name -> (schema, factory) table for provisioning policies.
///
/// Global() holds every built-in policy (each src/policies/ and
/// src/core/spes_policy.cc file registers its own entry); additional
/// registries can be constructed freely, e.g. by tests.
class PolicyRegistry {
 public:
  /// \brief One registered policy.
  struct Entry {
    /// Canonical lowercase identifier, e.g. "fixed_keepalive".
    std::string canonical_name;
    /// One-line human description for catalogs.
    std::string summary;
    /// Accepted parameters with defaults; order is the display order.
    std::vector<ParamSpec> params;
    RegistryFactory factory;
  };

  /// \brief Adds an entry. Fails with AlreadyExists when the name is taken
  /// and InvalidArgument on an empty name, a missing factory, or a
  /// duplicated parameter declaration.
  Status Register(Entry entry);

  /// \brief Builds a policy from `spec`: unknown names yield NotFound;
  /// unknown parameters, type mismatches (ints coerce to doubles, nothing
  /// else converts) and rejected values yield InvalidArgument naming the
  /// offending field.
  [[nodiscard]] Result<std::unique_ptr<Policy>> Create(const PolicySpec& spec) const;

  /// \brief Convenience: Create(ParsePolicySpec(text)).
  [[nodiscard]] Result<std::unique_ptr<Policy>> CreateFromString(
      const std::string& text) const;

  /// \brief True when `name` is registered.
  [[nodiscard]] bool Contains(const std::string& name) const;

  /// \brief Registered canonical names in lexicographic order.
  [[nodiscard]] std::vector<std::string> Names() const;

  /// \brief Introspection: the entry for `name`, or nullptr when unknown.
  [[nodiscard]] const Entry* Find(const std::string& name) const;

  /// \brief The process-wide registry, with all built-in policies
  /// registered on first use. Registration of additional entries is not
  /// synchronized; do it before fanning out worker threads.
  static PolicyRegistry& Global();

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace spes

#endif  // SPES_CORE_POLICY_REGISTRY_H_
