// Waiting-time / active-time / active-number extraction (§IV definitions).
//
// Given a per-slot invocation-count sequence, SPES derives
//   WT — lengths of idle runs strictly between two invoked slots,
//   AT — lengths of maximal invoked runs,
//   AN — total invocations within each active run.
// The paper's worked example: (28,0,12,1,0,0,0,7) yields WT=(1,3),
// AT=(1,2,1), AN=(28,13,7). Leading idle slots (before the first
// invocation) and the trailing idle run (not yet terminated by an arrival)
// are NOT waiting times.

#ifndef SPES_CORE_SERIES_FEATURES_H_
#define SPES_CORE_SERIES_FEATURES_H_

#include <cstdint>
#include <span>
#include <vector>

namespace spes {

/// \brief WT/AT/AN triple of an invocation-count sequence.
struct SeriesFeatures {
  std::vector<int64_t> wts;  ///< waiting times (idle-run lengths)
  std::vector<int64_t> ats;  ///< active times (invoked-run lengths)
  std::vector<int64_t> ans;  ///< active numbers (arrivals per active run)

  /// Slots with at least one arrival.
  int64_t active_slots = 0;
  /// Total arrivals over the sequence.
  uint64_t total_invocations = 0;
  /// Index of the first invoked slot, -1 when never invoked.
  int64_t first_invoked = -1;
  /// Index of the last invoked slot, -1 when never invoked.
  int64_t last_invoked = -1;
};

/// \brief Extracts WT/AT/AN and summary counters from `counts`.
SeriesFeatures ExtractSeriesFeatures(std::span<const uint32_t> counts);

/// \brief Slot indices with at least one arrival (ascending).
std::vector<int> InvokedSlots(std::span<const uint32_t> counts);

}  // namespace spes

#endif  // SPES_CORE_SERIES_FEATURES_H_
