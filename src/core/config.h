// All tunables of SPES, with the defaults used in the paper's evaluation
// (§V-A2: theta_prewarm = 2; theta_givenup = 5 for dense/pulsed and 1 for
// the other types) and the definitional constants of Table I.

#ifndef SPES_CORE_CONFIG_H_
#define SPES_CORE_CONFIG_H_

namespace spes {

/// \brief Configuration for SPES categorization, prediction and provision.
struct SpesConfig {
  // --- Table I definitional constants -------------------------------------

  /// Always-warm: total idle time <= horizon / always_warm_idle_divisor
  /// (the paper's "one-thousandth the observing time").
  int always_warm_idle_divisor = 1000;

  /// Regular: P95({WT}) - P5({WT}) <= regular_percentile_band ...
  double regular_percentile_band = 1.0;
  /// ... or CV({WT}) <= regular_cv_max.
  double regular_cv_max = 0.01;
  /// Minimum completed WTs before a function can be called (appro-)regular.
  int min_wts_for_regular = 3;

  /// Appro-regular: the first `appro_num_modes` WT modes must cover at least
  /// `appro_coverage` of the WT sequence.
  int appro_num_modes = 3;
  double appro_coverage = 0.9;

  /// Dense: P90({WT}) <= dense_p90_max (the paper's "small constant").
  double dense_p90_max = 2.0;
  /// Number of WT modes whose range forms the dense predictive interval.
  int dense_num_modes = 3;

  /// Successive: min({AT}) >= successive_gamma1 and
  /// min({AN}) >= successive_gamma2, with gamma1 < gamma2.
  int successive_gamma1 = 3;
  int successive_gamma2 = 5;
  /// Minimum number of waves before the successive pattern is trusted.
  int successive_min_waves = 2;

  // --- Indeterminate assignment (§IV-B) ------------------------------------

  /// Scaling factor of the rise-rate rule; smaller alpha weights cold starts
  /// more heavily than wasted memory.
  double alpha = 0.5;
  /// Minimum invoked minutes in training before the indeterminate
  /// assignment is attempted; sparser functions stay "unknown" (the paper
  /// leaves near-empty histories uncategorized).
  int indeterminate_min_invoked_minutes = 3;
  /// Validation window replayed when assigning indeterminate functions.
  int validation_minutes = 2 * 1440;
  /// T-lagged co-occurrence threshold for linking functions, and max lag.
  double tcor_threshold = 0.5;
  int tcor_max_lag = 10;
  /// Minimum arrivals of the target before a T-COR is trusted.
  int tcor_min_target_arrivals = 5;
  /// Precision floor for a link: the fraction of the candidate's firings
  /// that are actually followed by the target (within lag +- prewarm).
  /// T-COR alone is recall-oriented; a hyperactive candidate would
  /// otherwise pre-warm the target constantly and burn memory.
  double tcor_min_precision = 0.15;

  /// "Possible": treat predictive values as discrete when their range
  /// exceeds this threshold, continuous otherwise (§IV-D).
  int possible_range_discrete_threshold = 10;
  /// Cap on stored predictive values for "possible" functions.
  int possible_max_values = 5;

  // --- Provision parameters (§IV-D, §V-A2) ---------------------------------

  /// Pre-load when a predicted invocation falls in [t - theta, t + theta].
  int theta_prewarm = 2;
  /// Eviction thresholds: evict when the current WT reaches theta_givenup.
  int theta_givenup_default = 1;
  int theta_givenup_dense = 5;
  int theta_givenup_pulsed = 5;
  /// Multiplier applied to every theta_givenup (the Fig. 13(b) scaler).
  int givenup_scaler = 1;

  // --- Adaptive strategies (§IV-C) ------------------------------------------

  /// Online WTs required before the adjusting strategy activates (S1).
  int adjust_min_samples = 5;
  /// Minimum online WTs with a repeated mode before an unknown/unseen
  /// function is late-categorized as newly-possible (S3).
  int newly_possible_min_wts = 3;
  /// Online correlation: max same-trigger candidates tracked per unseen
  /// function, and the COR gap that expels a candidate.
  int online_corr_max_candidates = 20;
  double online_corr_drop_gap = 0.3;
  /// Minutes a correlation-triggered pre-warm holds the target loaded.
  int corr_prewarm_hold = 12;

  // --- Ablation switches (RQ4) ----------------------------------------------

  bool enable_correlated = true;    ///< Fig. 14 "w/o Corr" when false
  bool enable_online_corr = true;   ///< Fig. 14 "w/o Online-Corr" when false
  bool enable_forgetting = true;    ///< Fig. 15 "w/o Forgetting" when false
  bool enable_adjusting = true;     ///< Fig. 15 "w/o Adjusting" when false
};

}  // namespace spes

#endif  // SPES_CORE_CONFIG_H_
