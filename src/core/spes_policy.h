// SPES: the differentiated provisioning scheduler (§IV, Algorithm 1).
//
// Offline (Train): per-function WT/AT/AN features are extracted from the
// training window; functions are categorized deterministically (with the
// forgetting fallback), indeterminate functions are assigned to pulsed /
// correlated / possible by validation replay, and inter-function
// correlation links are mined from T-lagged co-occurrence.
//
// Online (OnMinute): arrivals refresh each function's waiting-time state
// and (adaptive strategy S2) drift-adjust its predictive values; unknown
// and unseen functions are late-categorized when their online WTs develop
// repeated modes (S3); unseen functions are pre-warmed through same-trigger
// online correlation. Provision follows Algorithm 1: a function is
// pre-loaded when a predicted invocation falls within +/-theta_prewarm of
// now, and evicted once its current WT reaches its type's theta_givenup.

#ifndef SPES_CORE_SPES_POLICY_H_
#define SPES_CORE_SPES_POLICY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/categorizer.h"
#include "core/config.h"
#include "core/correlation.h"
#include "core/types.h"
#include "sim/policy.h"

namespace spes {

class PolicyRegistry;

/// \brief Registers "spes{theta_prewarm=2,...}" (see policy_registry.h).
void RegisterSpesPolicy(PolicyRegistry& registry);

/// \brief The SPES provisioning policy.
class SpesPolicy : public Policy {
 public:
  explicit SpesPolicy(SpesConfig config = {});

  [[nodiscard]] std::string name() const override { return "SPES"; }
  void Train(const Trace& trace, int train_minutes) override;
  void OnMinute(int t, const std::vector<Invocation>& arrivals,
                MemSet* mem) override;

  /// \name Checkpointing: every field OnMinute() mutates — per-function
  /// states (including the predictive models, which drift under S2/S3),
  /// correlation links, online-correlation trackers and the adaptive
  /// counters. The config is NOT serialized; restore into a policy
  /// constructed with the same SpesConfig.
  /// @{
  [[nodiscard]] bool SupportsCheckpoint() const override { return true; }
  [[nodiscard]] Result<std::string> SaveState() const override;
  Status RestoreState(const std::string& blob) override;
  /// @}

  /// \brief Current type of function `f` (may change online via S3).
  [[nodiscard]] FunctionType TypeOf(size_t f) const { return states_[f].model.type; }

  /// \brief Number of functions per type after training/simulation.
  [[nodiscard]] std::array<int64_t, kNumFunctionTypes> CountByType() const;

  /// \brief Mined candidate->target links (training-time "correlated").
  [[nodiscard]] const std::vector<std::vector<CorrelationLink>>& links_by_candidate() const {
    return links_by_candidate_;
  }

  [[nodiscard]] const SpesConfig& config() const { return config_; }

  /// \brief Number of unknown functions re-categorized by forgetting
  /// (training) and by online adjusting (S3), for the Fig. 15 analysis.
  [[nodiscard]] int64_t forgetting_recategorized() const {
    return forgetting_recategorized_;
  }
  [[nodiscard]] int64_t online_recategorized() const { return online_recategorized_; }

 private:
  struct FunctionState {
    PredictiveModel model;
    int last_arrival = -1;  ///< absolute minute of the most recent arrival
    int current_wt = 0;     ///< idle minutes since last arrival
    bool seen_in_training = false;
    /// Correlation-triggered pre-warm hold (absolute minute, inclusive).
    int corr_hold_until = -1;
    /// Regular functions predict on a phase lattice: when a predicted
    /// invocation passes unfulfilled (a dropped timer event), the next
    /// prediction advances by the period instead of losing the phase.
    int64_t next_predicted = -1;
    std::vector<int64_t> online_wts;  ///< S1: WTs observed online
    int adjust_cursor = 0;            ///< online WTs consumed by last S2 run
  };

  /// Online-correlation tracking for one unseen/unknown function (§IV-C2).
  struct OnlineCorrState {
    uint32_t target = 0;
    std::vector<uint32_t> candidates;
    std::vector<uint8_t> active;    // candidate still considered
    std::vector<int32_t> co_count;  // co-occurrences with the target
    int32_t target_arrivals = 0;
    /// Pre-warm grants since the target last fired (telemetry for tuning
    /// the aggressiveness of the initial riding phase).
    int32_t grants_since_arrival = 0;
  };

  [[nodiscard]] int GivenUpThreshold(FunctionType type) const;
  [[nodiscard]] bool PredictNearInvocation(const FunctionState& state, int t) const;
  void MaybeAdjustPredictiveValues(FunctionState* state);
  void MaybeLateCategorize(FunctionState* state);
  void UpdateOnlineCorrelations(int t, MemSet* mem);

  SpesConfig config_;
  std::vector<FunctionState> states_;
  /// links_by_candidate_[c] = correlated targets pre-warmed when c fires.
  std::vector<std::vector<CorrelationLink>> links_by_candidate_;
  std::vector<OnlineCorrState> online_corr_;
  std::vector<uint8_t> invoked_now_;  // scratch
  int64_t forgetting_recategorized_ = 0;
  int64_t online_recategorized_ = 0;
};

}  // namespace spes

#endif  // SPES_CORE_SPES_POLICY_H_
